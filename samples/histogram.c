/* Histogram: the reductiontoarray extension. The destination bin of every
   increment is data-dependent, which standard OpenACC cannot reduce inside
   a parallel loop; the directive tells the compiler to give each GPU a
   private partial histogram and merge hierarchically.

   Try: dune exec bin/accc.exe -- run samples/histogram.c --gpus 2 --dump hist */
void main() {
  int n = 150000;
  int bins = 64;
  double data[n];
  double hist[bins];
  int i;
  int seed = 7;
  for (i = 0; i < n; i++) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    data[i] = (seed % 10000) / 10000.0;
  }
  for (i = 0; i < bins; i++) { hist[i] = 0.0; }
  #pragma acc data copyin(data[0:n]) copy(hist[0:bins])
  {
    #pragma acc parallel loop localaccess(data: stride(1))
    for (i = 0; i < n; i++) {
      int b = (int)(data[i] * 64.0);
      int b2 = min(b, bins - 1);
      #pragma acc reductiontoarray(+: hist)
      hist[b2] += 1.0;
    }
  }
}
