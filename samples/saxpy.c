/* SAXPY: the hello-world of OpenACC. Both vectors carry unit-stride
   localaccess windows, so they block-distribute across the GPUs.

   Try: dune exec bin/accc.exe -- run samples/saxpy.c --gpus 2 --dump y */
void main() {
  int n = 200000;
  double x[n];
  double y[n];
  double a = 2.5;
  int i;
  for (i = 0; i < n; i++) {
    x[i] = 0.001 * i;
    y[i] = 1.0;
  }
  #pragma acc data copyin(x[0:n]) copy(y[0:n])
  {
    #pragma acc parallel loop localaccess(x: stride(1), y: stride(1))
    for (i = 0; i < n; i++) {
      y[i] = y[i] + a * x[i];
    }
  }
}
