/* Dot product: scalar reduction across GPUs. Each device reduces its block
   privately; the runtime folds the partials into the host scalar.

   Try: dune exec bin/accc.exe -- run samples/dotproduct.c --gpus 2 --verbose */
void main() {
  int n = 400000;
  double x[n];
  double y[n];
  double dot = 0.0;
  int i;
  for (i = 0; i < n; i++) {
    x[i] = 0.0001 * i;
    y[i] = 1.0 - 0.0001 * i;
  }
  #pragma acc data copyin(x[0:n], y[0:n])
  {
    #pragma acc parallel loop reduction(+: dot) localaccess(x: stride(1), y: stride(1))
    for (i = 0; i < n; i++) {
      dot += x[i] * y[i];
    }
  }
}
