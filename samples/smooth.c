/* 1-D smoothing with halo windows and an adaptive if-clause: tiny inputs
   stay on the host (offload would be all latency), large ones offload.

   Try: dune exec bin/accc.exe -- run samples/smooth.c --gpus 2 */
void main() {
  int n = 120000;
  int sweeps = 3;
  double a[n];
  double b[n];
  int i;
  int it;
  for (i = 0; i < n; i++) {
    a[i] = 1.0 * (i % 101);
    b[i] = 0.0;
  }
  #pragma acc data copy(a[0:n]) copy(b[0:n])
  {
    for (it = 0; it < sweeps; it++) {
      #pragma acc parallel loop if(n > 4096) localaccess(a: stride(1, 2, 2), b: stride(1))
      for (i = 0; i < n; i++) {
        if (i > 1 && i < n - 2) {
          b[i] = 0.2 * (a[i-2] + a[i-1] + a[i] + a[i+1] + a[i+2]);
        }
      }
      #pragma acc parallel loop if(n > 4096) localaccess(b: stride(1, 2, 2), a: stride(1))
      for (i = 0; i < n; i++) {
        if (i > 1 && i < n - 2) {
          a[i] = 0.2 * (b[i-2] + b[i-1] + b[i] + b[i+1] + b[i+2]);
        }
      }
    }
  }
}
