/* 2-D heat diffusion with nested parallelism (the paper's §VI future work,
   both halves): rows distribute across GPUs with halo rows (the 2-D
   localaccess window), and the inner column loop maps to vector lanes.

   Try: dune exec bin/accc.exe -- run samples/heat2d.c --gpus 2 --trace */
void main() {
  int rows = 256;
  int cols = 256;
  int sweeps = 4;
  double u[rows][cols];
  double v[rows][cols];
  int r;
  int c;
  int it;
  for (r = 0; r < rows; r++) {
    for (c = 0; c < cols; c++) {
      u[r][c] = 1.0 * ((r + c) % 37);
      v[r][c] = 0.0;
    }
  }
  #pragma acc data copy(u[0:rows*cols]) copy(v[0:rows*cols])
  {
    for (it = 0; it < sweeps; it++) {
      #pragma acc parallel loop localaccess(u: stride(cols, cols, cols), v: stride(cols))
      for (r = 0; r < rows; r++) {
        if (r > 0 && r < rows - 1) {
          #pragma acc loop vector(128)
          for (c = 1; c < cols - 1; c++) {
            v[r][c] = 0.25 * (u[r-1][c] + u[r+1][c] + u[r][c-1] + u[r][c+1]);
          }
        }
      }
      #pragma acc parallel loop localaccess(v: stride(cols, cols, cols), u: stride(cols))
      for (r = 0; r < rows; r++) {
        if (r > 0 && r < rows - 1) {
          #pragma acc loop vector(128)
          for (c = 1; c < cols - 1; c++) {
            u[r][c] = 0.25 * (v[r-1][c] + v[r+1][c] + v[r][c-1] + v[r][c+1]);
          }
        }
      }
    }
  }
}
