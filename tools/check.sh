#!/bin/sh
# The repo's verify flow: formatting, build, tests — what CI runs and
# what a PR must keep green.
#
#   tools/check.sh            # check everything
#   tools/check.sh --fix      # auto-promote dune-file formatting first
#
# Formatting is enforced for dune files only (dune-project limits @fmt
# with `enabled_for dune`): the pinned .ocamlformat records the OCaml
# style, but the check must pass in environments without the ocamlformat
# binary installed.
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--fix" ]; then
  dune build @fmt --auto-promote
else
  dune build @fmt
fi
dune build
dune runtest
# Fleet smoke: replay a 3-job trace through every scheduling policy. The
# fleet's simulated-time watchdog makes an admission deadlock fail loudly
# (Fleet.Deadlock names the wedged job id) instead of hanging CI.
dune exec bench/main.exe -- --smoke --scale small fleet
echo "check.sh: all green"
