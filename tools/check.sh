#!/bin/sh
# The repo's verify flow: formatting, build, tests — what CI runs and
# what a PR must keep green.
#
#   tools/check.sh            # check everything
#   tools/check.sh --fix      # auto-promote dune-file formatting first
#
# Formatting is enforced for dune files only (dune-project limits @fmt
# with `enabled_for dune`): the pinned .ocamlformat records the OCaml
# style, but the check must pass in environments without the ocamlformat
# binary installed.
set -eu
cd "$(dirname "$0")/.."

if [ "${1:-}" = "--fix" ]; then
  dune build @fmt --auto-promote
else
  dune build @fmt
fi
dune build
dune runtest
# Fleet smoke: replay a 3-job trace through every scheduling policy. The
# fleet's simulated-time watchdog makes an admission deadlock fail loudly
# (Fleet.Deadlock names the wedged job id) instead of hanging CI.
dune exec bench/main.exe -- --smoke --scale small fleet
# Simulator fast-path smoke: drive a small transfer storm through both
# fabric allocators; the bench fails loudly if the incremental path ever
# diverges from the from-scratch reference (see docs/PERF.md).
dune exec bench/main.exe -- --smoke sim
# Fusion smoke: run the fusion-friendly apps with --fuse off vs on and
# check both against the sequential reference (see docs/FUSION.md).
dune exec bench/main.exe -- --smoke fusion
# Scale-out smoke: jacobi + spmv on a spec-built machine, 1-D vs 2-D
# decomposition crossed with star vs ring collectives; the bench fails
# loudly if any combination diverges from the sequential reference
# (see docs/TOPOLOGY.md).
dune exec bench/main.exe -- --smoke scale
# The CLI must reject a --gpus count its --machine spec cannot supply
# (printable error, no silent clamp).
if dune exec bin/accc.exe -- run samples/heat2d.c --machine cluster:2x2 --gpus 9 >/dev/null 2>&1; then
  echo "check.sh: accc accepted --gpus 9 on a 4-GPU machine" >&2
  exit 1
fi
# Observability smoke: a traced run and a metered fleet replay, with the
# emitted artifacts validated for internal consistency (the trace parses
# and every flow event references a recorded span; every Prometheus
# series carries a # TYPE).
obs_tmp="$(mktemp -d)"
trap 'rm -rf "$obs_tmp"' EXIT
dune exec bin/accc.exe -- run samples/heat2d.c --machine cluster --overlap on \
  --trace-json "$obs_tmp/run_trace.json" --blame > /dev/null
dune exec bin/accc.exe -- serve samples/fleet.trace \
  --metrics "$obs_tmp/fleet.prom" --trace-json "$obs_tmp/fleet_trace.json" > /dev/null
dune exec tools/validate_obs/validate_obs.exe -- trace "$obs_tmp/run_trace.json"
dune exec tools/validate_obs/validate_obs.exe -- trace "$obs_tmp/fleet_trace.json"
dune exec tools/validate_obs/validate_obs.exe -- metrics "$obs_tmp/fleet.prom"
echo "check.sh: all green"
