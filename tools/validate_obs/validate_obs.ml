(* Validate the observability artifacts the CLI emits, for check.sh:

     validate_obs trace FILE.json    # chrome trace: spans + flow events
     validate_obs metrics FILE.prom  # Prometheus text exposition

   Hand-rolled parsing (no JSON library in the build), same spirit as
   test/test_bench_artifacts.ml: the goal is that a malformed or
   internally inconsistent artifact fails CI loudly, not to be a general
   parser. *)

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("validate_obs: " ^ msg); exit 1) fmt

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> fail "%s" e
  | ic ->
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s

(* ---------------- minimal JSON ---------------- *)

type json = Null | Bool of bool | Num of float | Str of string | Arr of json list | Obj of (string * json) list

let parse_json file (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let bad msg = fail "%s: %s at byte %d" file msg !pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else bad ("expected " ^ word)
  in
  let parse_string () =
    (match peek () with Some '"' -> advance () | _ -> bad "expected '\"'");
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> bad "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' ->
              Buffer.add_char b '\n';
              advance ();
              go ()
          | Some c ->
              Buffer.add_char b c;
              advance ();
              go ()
          | None -> bad "unterminated escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then bad "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> bad "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let members = ref [] in
          let rec member () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            (match peek () with Some ':' -> advance () | _ -> bad "expected ':'");
            let v = parse_value () in
            members := (key, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                member ()
            | Some '}' -> advance ()
            | _ -> bad "expected ',' or '}'"
          in
          member ();
          Obj (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec item () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                item ()
            | Some ']' -> advance ()
            | _ -> bad "expected ',' or ']'"
          in
          item ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> bad "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then bad "trailing garbage";
  v

(* ---------------- chrome trace ---------------- *)

let validate_trace file =
  let events =
    match parse_json file (read_file file) with
    | Arr events -> events
    | _ -> fail "%s: top level is not an array" file
  in
  let str key = function Obj kvs -> (match List.assoc_opt key kvs with Some (Str s) -> Some s | _ -> None) | _ -> None in
  let arg key = function
    | Obj kvs -> (
        match List.assoc_opt "args" kvs with
        | Some (Obj args) -> List.assoc_opt key args
        | _ -> None)
    | _ -> None
  in
  let span_ids = Hashtbl.create 256 in
  let spans = ref 0 and flow_s = ref 0 and flow_f = ref 0 and meta = ref 0 in
  List.iter
    (fun ev ->
      match str "ph" ev with
      | Some "X" -> (
          incr spans;
          match arg "span" ev with
          | Some (Num id) -> Hashtbl.replace span_ids id ()
          | _ -> fail "%s: an X event is missing args.span" file)
      | Some "M" -> incr meta
      | _ -> ())
    events;
  List.iter
    (fun ev ->
      match str "ph" ev with
      | Some (("s" | "f") as ph) -> (
          if ph = "s" then incr flow_s else incr flow_f;
          match arg "span" ev with
          | Some (Num id) ->
              if not (Hashtbl.mem span_ids id) then
                fail "%s: flow %s event references unknown span %g" file ph id
          | _ -> fail "%s: a flow event is missing args.span" file)
      | _ -> ())
    events;
  if !spans = 0 then fail "%s: no spans" file;
  if !meta = 0 then fail "%s: no metadata (M) events" file;
  if !flow_s <> !flow_f then fail "%s: %d flow starts vs %d finishes" file !flow_s !flow_f;
  Printf.printf "validate_obs: %s ok (%d spans, %d flow edges, %d metadata events)\n" file !spans
    !flow_s !meta

(* ---------------- prometheus exposition ---------------- *)

let family_of series =
  let base = match String.index_opt series '{' with Some i -> String.sub series 0 i | None -> series in
  let strip suffix s =
    let sl = String.length suffix and l = String.length s in
    if l > sl && String.sub s (l - sl) sl = suffix then Some (String.sub s 0 (l - sl)) else None
  in
  match strip "_bucket" base with
  | Some f -> f
  | None -> (
      match strip "_sum" base with
      | Some f -> f
      | None -> ( match strip "_count" base with Some f -> f | None -> base))

let validate_metrics file =
  let types = Hashtbl.create 16 in
  let samples = ref 0 in
  List.iter
    (fun line ->
      if line = "" then ()
      else if line.[0] = '#' then (
        match String.split_on_char ' ' line with
        | "#" :: "TYPE" :: name :: [ kind ] ->
            if not (List.mem kind [ "counter"; "gauge"; "histogram" ]) then
              fail "%s: unknown kind %s for %s" file kind name;
            Hashtbl.replace types name ()
        | "#" :: "HELP" :: _ :: _ -> ()
        | _ -> fail "%s: malformed comment line: %s" file line)
      else
        match String.rindex_opt line ' ' with
        | None -> fail "%s: malformed sample line: %s" file line
        | Some i -> (
            let series = String.sub line 0 i in
            let v = String.sub line (i + 1) (String.length line - i - 1) in
            match float_of_string_opt v with
            | None -> fail "%s: unparsable value in: %s" file line
            | Some _ ->
                incr samples;
                if not (Hashtbl.mem types (family_of series)) then
                  fail "%s: series %s has no preceding # TYPE" file series))
    (String.split_on_char '\n' (read_file file));
  if !samples = 0 then fail "%s: no samples" file;
  Printf.printf "validate_obs: %s ok (%d samples, %d typed families)\n" file !samples
    (Hashtbl.length types)

let () =
  match Sys.argv with
  | [| _; "trace"; file |] -> validate_trace file
  | [| _; "metrics"; file |] -> validate_metrics file
  | _ ->
      prerr_endline "usage: validate_obs (trace|metrics) FILE";
      exit 2
