(* accc: the mgacc compiler driver.

   Compile and run mini-C/OpenACC programs on the simulated machines:

     accc run prog.c --machine desktop --gpus 2
     accc run prog.c --variant openmp
     accc check prog.c            (plans and placement decisions)
     accc pretty prog.c           (normalized source) *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let read_program path =
  try Ok (Mgacc.parse_file path) with
  | Mgacc.Loc.Error (loc, msg) -> Error (Printf.sprintf "%s: %s" (Mgacc.Loc.to_string loc) msg)
  | Sys_error e -> Error e

let machine_of name =
  Result.map
    (fun spec -> (spec, fun () -> Mgacc.Machine.of_spec spec))
    (Mgacc.Machine.spec_of_string name)

(* [--gpus] must fit the machine the spec builds — reject loudly rather
   than silently clamping to whatever the machine happens to have. *)
let gpus_consistent ~gpus spec =
  let avail = Mgacc.Machine.spec_gpus spec in
  if gpus = 0 || (gpus >= 1 && gpus <= avail) then Ok ()
  else
    Error
      (Printf.sprintf
         "--gpus %d is inconsistent with --machine %s, which has %d GPU%s (pick 1..%d or a \
          larger topology, e.g. %s)"
         gpus
         (Mgacc.Machine.spec_to_string spec)
         avail
         (if avail = 1 then "" else "s")
         avail Mgacc.Machine.spec_grammar)

(* ---------------- run ---------------- *)

let arrays_declared_in_main (program : Mgacc.Ast.program) =
  match Mgacc.Ast.find_func program "main" with
  | None -> []
  | Some f ->
      List.filter_map
        (fun s ->
          match s.Mgacc.Ast.sdesc with
          | Mgacc.Ast.Sarray_decl (_, name, _) -> Some name
          | _ -> None)
        f.Mgacc.Ast.fbody

(* Compare every top-level array against a reference environment. *)
let check_against_arrays program ~reference:ref_env env =
  let failures = ref [] in
  List.iter
    (fun name ->
      match Mgacc.Host_interp.find_array_opt env name with
      | None -> ()
      | Some view -> (
          match view.Mgacc.View.elem with
          | Mgacc.Ast.Edouble ->
              let e = Mgacc.float_results ref_env name and g = Mgacc.float_results env name in
              Array.iteri
                (fun i v ->
                  if
                    !failures = []
                    && Float.abs (v -. e.(i)) > 1e-9 *. Float.max 1.0 (Float.abs e.(i))
                  then failures := Printf.sprintf "%s[%d]: %g vs %g" name i v e.(i) :: !failures)
                g
          | Mgacc.Ast.Eint ->
              let e = Mgacc.int_results ref_env name and g = Mgacc.int_results env name in
              Array.iteri
                (fun i v ->
                  if !failures = [] && v <> e.(i) then
                    failures := Printf.sprintf "%s[%d]: %d vs %d" name i v e.(i) :: !failures)
                g))
    (arrays_declared_in_main program);
  match !failures with
  | [] -> Ok ()
  | msg :: _ -> Error ("result mismatch vs sequential reference: " ^ msg)

let check_against_reference program env =
  match check_against_arrays program ~reference:(Mgacc.run_sequential program) env with
  | Ok () ->
      Format.printf "check: results match the sequential reference@.";
      Ok ()
  | Error _ as e -> e

let overlap_of = function
  | "on" -> Ok true
  | "off" -> Ok false
  | other -> Error (Printf.sprintf "unknown overlap mode %S (on|off)" other)

let fuse_of = function
  | "on" -> Ok true
  | "off" -> Ok false
  | other -> Error (Printf.sprintf "unknown fuse mode %S (on|off)" other)

let coherence_of = function
  | "eager" -> Ok Mgacc.Rt_config.Eager
  | "lazy" -> Ok Mgacc.Rt_config.Lazy
  | other -> Error (Printf.sprintf "unknown coherence mode %S (eager|lazy)" other)

let decomp_of = function
  | "1d" -> Ok false
  | "2d" -> Ok true
  | other -> Error (Printf.sprintf "unknown decomposition %S (1d|2d)" other)

let run_cmd file machine_name variant gpus schedule_name overlap_name coherence_name
    collective_name fuse_name decomp_name chunk_kb no_distribution no_layout no_misscheck
    single_level_dirty dump_arrays show_trace trace_json blame json_report check_results verbose =
  setup_logs verbose;
  let ( let* ) = Result.bind in
  let* program = read_program file in
  let* spec, fresh_machine = machine_of machine_name in
  let* () = gpus_consistent ~gpus spec in
  let* schedule = Mgacc.Sched_policy.of_string schedule_name in
  let* overlap = overlap_of overlap_name in
  let* coherence = coherence_of coherence_name in
  let* collective = Mgacc.Rt_config.collective_of_string collective_name in
  let* fuse = fuse_of fuse_name in
  let* decomp2d = decomp_of decomp_name in
  try
    match variant with
    | "seq" ->
        let env = Mgacc.run_sequential program in
        List.iter
          (fun name ->
            match Mgacc.Host_interp.find_array_opt env name with
            | Some view when view.Mgacc.View.elem = Mgacc.Ast.Edouble ->
                let a = Mgacc.float_results env name in
                Format.printf "%s = [|%s ...|]@." name
                  (String.concat "; "
                     (List.map (Printf.sprintf "%g") (Array.to_list (Array.sub a 0 (min 8 (Array.length a))))))
            | Some _ ->
                let a = Mgacc.int_results env name in
                Format.printf "%s = [|%s ...|]@." name
                  (String.concat "; "
                     (List.map string_of_int (Array.to_list (Array.sub a 0 (min 8 (Array.length a))))))
            | None -> Format.printf "%s: no such array@." name)
          dump_arrays;
        Ok ()
    | "openmp" ->
        let machine = fresh_machine () in
        let _, report = Mgacc.run_openmp ~machine program in
        Format.printf "%a@." Mgacc.Report.pp report;
        Ok ()
    | "acc" ->
        let machine = fresh_machine () in
        let translator =
          {
            Mgacc.Kernel_plan.enable_distribution = not no_distribution;
            enable_layout_transform = not no_layout;
            enable_miss_check_elim = not no_misscheck;
            enable_fusion = fuse;
            enable_decomp2d = decomp2d;
          }
        in
        let config =
          Mgacc.Rt_config.make
            ?num_gpus:(if gpus = 0 then None else Some gpus)
            ~schedule ~overlap ~coherence ~collective
            ~chunk_bytes:(chunk_kb * 1024)
            ~two_level_dirty:(not single_level_dirty) ~translator machine
        in
        let env, report = Mgacc.run_acc ~config ~with_blame:blame ~machine program in
        if json_report then print_endline (Mgacc.Report.to_json report)
        else begin
          Format.printf "%a@." Mgacc.Report.pp report;
          if blame then Format.printf "@.%a@." Mgacc.Report.pp_blame report
        end;
        List.iter
          (fun name ->
            match Mgacc.Host_interp.find_array_opt env name with
            | Some view when view.Mgacc.View.elem = Mgacc.Ast.Edouble ->
                let a = Mgacc.float_results env name in
                Format.printf "%s[0..%d] = %s@." name
                  (min 7 (Array.length a - 1))
                  (String.concat "; "
                     (List.map (Printf.sprintf "%g") (Array.to_list (Array.sub a 0 (min 8 (Array.length a))))))
            | Some _ ->
                let a = Mgacc.int_results env name in
                Format.printf "%s[0..%d] = %s@." name
                  (min 7 (Array.length a - 1))
                  (String.concat "; "
                     (List.map string_of_int (Array.to_list (Array.sub a 0 (min 8 (Array.length a))))))
            | None -> Format.printf "%s: no such array@." name)
          dump_arrays;
        if show_trace then
          Format.printf "@.%a@." (Mgacc.Trace.pp_gantt ~width:100) machine.Mgacc.Machine.trace;
        (match trace_json with
        | Some path ->
            let oc = open_out path in
            output_string oc (Mgacc.Trace.to_chrome_json machine.Mgacc.Machine.trace);
            close_out oc;
            Format.printf "trace written to %s (load in chrome://tracing or perfetto)@." path
        | None -> ());
        if check_results then check_against_reference program env else Ok ()
    | other -> Error (Printf.sprintf "unknown variant %S (acc|openmp|seq)" other)
  with
  | Mgacc.Loc.Error (loc, msg) -> Error (Printf.sprintf "%s: %s" (Mgacc.Loc.to_string loc) msg)
  | Mgacc.Memory.Out_of_device_memory { device_id; requested; available } ->
      Error
        (Printf.sprintf "device %d out of memory: requested %s, available %s" device_id
           (Mgacc.Bytesize.to_string requested)
           (Mgacc.Bytesize.to_string available))
  | Mgacc.Launch.Window_violation { array; index; gpu; what } ->
      Error
        (Printf.sprintf
           "localaccess violation on GPU %d: array %s index %d (%s) — the directive does not \
            cover this access"
           gpu array index what)

(* ---------------- scale ---------------- *)

(* A mini Fig. 7 for the user's own program: OpenMP baseline plus the
   proposal on every GPU count of the chosen machine, with correctness
   checked against the sequential reference at each configuration. *)
let scale_cmd file machine_name =
  let ( let* ) = Result.bind in
  let* program = read_program file in
  let* _spec, fresh_machine = machine_of machine_name in
  try
    let probe = fresh_machine () in
    let max_gpus = Mgacc.Machine.num_gpus probe in
    let ref_env = Mgacc.run_sequential program in
    let machine = fresh_machine () in
    let _, omp = Mgacc.run_openmp ~machine program in
    let t = Mgacc.Table.create ~headers:[ "variant"; "total"; "vs OpenMP"; "CPU-GPU"; "GPU-GPU"; "check" ] in
    Mgacc.Table.add_row t
      [ omp.Mgacc.Report.variant; Printf.sprintf "%.6fs" omp.Mgacc.Report.total_time; "1.00x";
        "-"; "-"; "-" ];
    for gpus = 1 to max_gpus do
      let machine = fresh_machine () in
      let config = Mgacc.Rt_config.make ~num_gpus:gpus machine in
      let env, r = Mgacc.run_acc ~config ~machine program in
      let ok =
        match check_against_arrays program ~reference:ref_env env with
        | Ok () -> "ok"
        | Error _ -> "MISMATCH"
      in
      Mgacc.Table.add_row t
        [
          r.Mgacc.Report.variant;
          Printf.sprintf "%.6fs" r.Mgacc.Report.total_time;
          Printf.sprintf "%.2fx" (Mgacc.Report.speedup_vs r ~baseline:omp);
          Printf.sprintf "%.6fs" r.Mgacc.Report.cpu_gpu_time;
          Printf.sprintf "%.6fs" r.Mgacc.Report.gpu_gpu_time;
          ok;
        ]
    done;
    Mgacc.Table.print t;
    Ok ()
  with
  | Mgacc.Loc.Error (loc, msg) -> Error (Printf.sprintf "%s: %s" (Mgacc.Loc.to_string loc) msg)
  | Mgacc.Launch.Window_violation { array; index; gpu; what } ->
      Error (Printf.sprintf "localaccess violation on GPU %d: array %s index %d (%s)" gpu array index what)

(* ---------------- serve ---------------- *)

(* Replay a job-trace file through the fleet scheduler: each line is
   "<submit-seconds> <tenant> <program.c>" (paths relative to the trace
   file). Prints per-job admission results and the fleet summary. *)
let write_file path contents = Out_channel.with_open_bin path (fun oc -> output_string oc contents)

let serve_cmd trace_file machine_name policy_name gpus max_concurrent budget_mb watchdog keep_cold
    json_out metrics_out events_out trace_json verbose =
  setup_logs verbose;
  let ( let* ) = Result.bind in
  let* spec, fresh_machine = machine_of machine_name in
  let* () = gpus_consistent ~gpus spec in
  let* policy = Mgacc.Fleet.policy_of_string policy_name in
  try
    let jobs = Mgacc.Fleet_job.load_trace trace_file in
    if jobs = [] then Error (Printf.sprintf "%s: no jobs in trace" trace_file)
    else begin
      let machine = fresh_machine () in
      let config =
        Mgacc.Fleet.configure ~policy
          ?num_gpus:(if gpus = 0 then None else Some gpus)
          ~max_concurrent
          ?mem_budget:(if budget_mb = 0 then None else Some (budget_mb * 1024 * 1024))
          ?watchdog_seconds:(if watchdog <= 0.0 then None else Some watchdog)
          ~keep_warm:(not keep_cold) machine
      in
      let outcome = Mgacc.Fleet.run config jobs in
      if json_out then print_endline (Mgacc.Fleet.to_json outcome)
      else begin
        Format.printf "%a@." Mgacc.Fleet.pp_outcome outcome;
        if verbose then
          List.iter
            (fun (r : Mgacc.Fleet.job_result) ->
              Format.printf "job %2d %a@." r.Mgacc.Fleet.spec.Mgacc.Fleet_job.id Mgacc.Report.pp
                r.Mgacc.Fleet.report)
            outcome.Mgacc.Fleet.jobs
      end;
      (match metrics_out with
      | Some path ->
          write_file path (Mgacc.Metrics.to_prometheus outcome.Mgacc.Fleet.metrics);
          Format.eprintf "metrics written to %s@." path
      | None -> ());
      (match events_out with
      | Some path ->
          write_file path (Mgacc.Metrics.events_to_jsonl outcome.Mgacc.Fleet.metrics);
          Format.eprintf "events written to %s@." path
      | None -> ());
      (match trace_json with
      | Some path ->
          write_file path
            (Mgacc.Trace.to_chrome_json ~process_name:"mgacc fleet" outcome.Mgacc.Fleet.trace);
          Format.eprintf "fleet trace written to %s (load in chrome://tracing or perfetto)@." path
      | None -> ());
      Ok ()
    end
  with
  | Mgacc.Loc.Error (loc, msg) -> Error (Printf.sprintf "%s: %s" (Mgacc.Loc.to_string loc) msg)
  | Mgacc.Fleet.Deadlock { job; reason } ->
      Error (Printf.sprintf "admission deadlock: job %d: %s" job reason)
  | Failure msg | Sys_error msg -> Error msg

(* ---------------- check ---------------- *)

let check_cmd file =
  let ( let* ) = Result.bind in
  let* program = read_program file in
  try
    let plans = Mgacc.compile program in
    Format.printf "%s: %d parallel loop(s)@.@." file (Mgacc.Program_plan.loop_count plans);
    List.iter
      (fun plan ->
        let loop = plan.Mgacc.Kernel_plan.loop in
        Format.printf "loop %d at %s (var %s):@." loop.Mgacc.Loop_info.loop_id
          (Mgacc.Loc.to_string loop.Mgacc.Loop_info.loop_loc)
          loop.Mgacc.Loop_info.loop_var;
        List.iter
          (fun c ->
            Format.printf "  %a%s%s@." Mgacc.Array_config.pp c
              (if Mgacc.Kernel_plan.needs_miss_check plan c.Mgacc.Array_config.array then
                 " [miss-checked]"
               else "")
              (if Mgacc.Kernel_plan.layout_transformed plan c.Mgacc.Array_config.array then
                 " [transposed]"
               else ""))
          plan.Mgacc.Kernel_plan.configs;
        Format.printf "@.")
      (Mgacc.Program_plan.all_plans plans);
    Ok ()
  with Mgacc.Loc.Error (loc, msg) ->
    Error (Printf.sprintf "%s: %s" (Mgacc.Loc.to_string loc) msg)

(* ---------------- pretty ---------------- *)

let pretty_cmd file =
  Result.map (fun p -> print_string (Mgacc.Pretty.program_to_string p)) (read_program file)

(* ---------------- cmdliner wiring ---------------- *)

let file_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"mini-C source")

let exits_of = function Ok () -> 0 | Error msg -> Printf.eprintf "accc: %s\n" msg; 1

let machine_doc =
  "a preset (desktop, desktop-mixed, supernode, cluster) or a generative topology spec: \
   cluster:NxM, fattree:NxM[:OVERSUB], multirail:NxM[:RAILS] or nvmesh:NxM (N nodes of M GPUs \
   each, e.g. fattree:8x4)"

let run_term =
  let machine =
    Arg.(value & opt string "desktop" & info [ "machine"; "m" ] ~docv:"SPEC" ~doc:machine_doc)
  in
  let variant =
    Arg.(value & opt string "acc" & info [ "variant"; "v" ] ~docv:"V" ~doc:"acc, openmp or seq")
  in
  let gpus = Arg.(value & opt int 0 & info [ "gpus"; "g" ] ~docv:"N" ~doc:"GPU count (default: all)") in
  let schedule =
    Arg.(value & opt string "static"
         & info [ "schedule" ] ~docv:"POLICY"
             ~doc:"iteration partitioning: static (equal split), proportional or adaptive")
  in
  let overlap =
    Arg.(value & opt string "off"
         & info [ "overlap" ] ~docv:"on|off"
             ~doc:"dependency-driven communication/computation overlap (off = barrier semantics)")
  in
  let coherence =
    Arg.(value & opt string "eager"
         & info [ "coherence" ] ~docv:"eager|lazy"
             ~doc:"inter-GPU replica coherence: eager ships every dirty chunk everywhere after \
                   each loop; lazy ships only the next reader's window and pulls the rest on \
                   demand")
  in
  let collective =
    Arg.(value & opt string "direct"
         & info [ "collective" ] ~docv:"direct|ring|auto"
             ~doc:"broadcast-group transfer planning: direct keeps the legacy star/tree \
                   schedules bit for bit; ring forces node-grouped pipelined rings; auto picks \
                   direct, ring or hierarchical staging per group from a payload/topology cost \
                   model")
  in
  let fuse =
    Arg.(value & opt string "off"
         & info [ "fuse" ] ~docv:"on|off"
             ~doc:"translator kernel-fusion pass: fuse adjacent compatible parallel loops, \
                   contract group-local temporaries and transpose strided read-only arrays when \
                   the cost model finds it profitable (off = today's one-loop-one-kernel plans, \
                   bit for bit)")
  in
  let decomp =
    Arg.(value & opt string "1d"
         & info [ "decomp" ] ~docv:"1d|2d"
             ~doc:"block decomposition of distributed arrays: 1d slices whole rows per GPU \
                   (today's plans, bit for bit); 2d tiles row-major arrays over a GPU grid so \
                   stencil halo traffic scales with the tile perimeter instead of the row width")
  in
  let chunk = Arg.(value & opt int 1024 & info [ "chunk-kb" ] ~docv:"KB" ~doc:"dirty-bit chunk size") in
  let no_dist = Arg.(value & flag & info [ "no-distribution" ] ~doc:"ignore localaccess placement") in
  let no_layout = Arg.(value & flag & info [ "no-layout-transform" ] ~doc:"disable transposition") in
  let no_misscheck = Arg.(value & flag & info [ "no-misscheck-elim" ] ~doc:"always check writes") in
  let single_level = Arg.(value & flag & info [ "single-level-dirty" ] ~doc:"one-level dirty bits") in
  let dump = Arg.(value & opt_all string [] & info [ "dump" ] ~docv:"ARRAY" ~doc:"print array head") in
  let trace = Arg.(value & flag & info [ "trace" ] ~doc:"print the execution Gantt chart") in
  let verbose = Arg.(value & flag & info [ "verbose"; "d" ] ~doc:"debug logging of runtime decisions") in
  let trace_json =
    Arg.(value & opt (some string) None & info [ "trace-json" ] ~docv:"FILE" ~doc:"write a Chrome trace-event file")
  in
  let blame =
    Arg.(value & flag
         & info [ "blame" ]
             ~doc:"print the critical-path blame tables: per-category exposed/hidden time and \
                   the top (category, label) rows of the makespan (included in --json)")
  in
  let check_results =
    Arg.(value & flag & info [ "check" ] ~doc:"validate results against the sequential reference")
  in
  let json_report =
    Arg.(value & flag
         & info [ "json" ] ~doc:"print the report as one JSON object (includes coherence counters)")
  in
  Term.(
    const (fun file m v g sch ov coh col fu de c nd nl nm sl d tr tj bl js ck vb ->
        exits_of (run_cmd file m v g sch ov coh col fu de c nd nl nm sl d tr tj bl js ck vb))
    $ file_arg $ machine $ variant $ gpus $ schedule $ overlap $ coherence $ collective $ fuse
    $ decomp $ chunk $ no_dist $ no_layout $ no_misscheck $ single_level $ dump $ trace
    $ trace_json $ blame $ json_report $ check_results $ verbose)

let check_term = Term.(const (fun file -> exits_of (check_cmd file)) $ file_arg)

let serve_term =
  let trace_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE"
         ~doc:"job trace: one '<submit-seconds> <tenant> <program.c>' per line")
  in
  let machine =
    Arg.(value & opt string "cluster"
         & info [ "machine"; "m" ] ~docv:"SPEC" ~doc:machine_doc)
  in
  let policy =
    Arg.(value & opt string "fifo"
         & info [ "policy" ] ~docv:"P"
             ~doc:"admission order: fifo, sjf (shortest job first, roofline-estimated) or fair \
                   (least-service tenant first)")
  in
  let gpus = Arg.(value & opt int 0 & info [ "gpus"; "g" ] ~docv:"N" ~doc:"GPUs per job (default: all)") in
  let max_concurrent =
    Arg.(value & opt int 1 & info [ "max-concurrent" ] ~docv:"N" ~doc:"jobs admitted at once")
  in
  let budget =
    Arg.(value & opt int 0
         & info [ "mem-budget-mb" ] ~docv:"MB"
             ~doc:"admission memory budget (default: the machine's total device memory)")
  in
  let watchdog =
    Arg.(value & opt float 0.0
         & info [ "watchdog" ] ~docv:"SECONDS"
             ~doc:"fail loudly if a job queues past this simulated time (default: effectively off)")
  in
  let keep_cold =
    Arg.(value & flag
         & info [ "no-warm-pool" ]
             ~doc:"release device memory at job end instead of keeping warm pools")
  in
  let json_out = Arg.(value & flag & info [ "json" ] ~doc:"print the fleet outcome as JSON") in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics" ] ~docv:"FILE"
             ~doc:"write fleet metrics (queue depth, resident bytes, per-tenant service, \
                   evictions) as Prometheus text exposition")
  in
  let events_out =
    Arg.(value & opt (some string) None
         & info [ "events" ] ~docv:"FILE"
             ~doc:"write the admission-loop event log (submit/admit/finish) as JSONL")
  in
  let trace_json =
    Arg.(value & opt (some string) None
         & info [ "trace-json" ] ~docv:"FILE"
             ~doc:"write a fleet-level Chrome trace-event Gantt: one row per tenant (queued and \
                   run spans) and one per GPU")
  in
  let verbose =
    Arg.(value & flag
         & info [ "verbose"; "d" ]
             ~doc:"debug logging of fleet decisions, plus one report line per completed job")
  in
  Term.(
    const (fun tr m p g mc b w kc js mo eo tj vb ->
        exits_of (serve_cmd tr m p g mc b w kc js mo eo tj vb))
    $ trace_arg $ machine $ policy $ gpus $ max_concurrent $ budget $ watchdog $ keep_cold
    $ json_out $ metrics_out $ events_out $ trace_json $ verbose)

let scale_term =
  let machine =
    Arg.(value & opt string "desktop" & info [ "machine"; "m" ] ~docv:"SPEC" ~doc:machine_doc)
  in
  Term.(const (fun file m -> exits_of (scale_cmd file m)) $ file_arg $ machine)
let pretty_term = Term.(const (fun file -> exits_of (pretty_cmd file)) $ file_arg)

let () =
  let run = Cmd.v (Cmd.info "run" ~doc:"compile and execute a program") run_term in
  let check = Cmd.v (Cmd.info "check" ~doc:"show the translator's plans") check_term in
  let serve =
    Cmd.v
      (Cmd.info "serve" ~doc:"replay a multi-tenant job trace through the fleet scheduler")
      serve_term
  in
  let scale = Cmd.v (Cmd.info "scale" ~doc:"OpenMP baseline + every GPU count, with verification") scale_term in
  let pretty = Cmd.v (Cmd.info "pretty" ~doc:"pretty-print the program") pretty_term in
  let main =
    Cmd.group
      (Cmd.info "accc" ~version:"1.0.0" ~doc:"multi-GPU OpenACC compiler on a simulated machine")
      [ run; check; serve; scale; pretty ]
  in
  exit (Cmd.eval' main)
