(* Schema validation of the committed BENCH_*.json benchmark artifacts.

   The bench harness (bench/main.ml) writes one JSON file per tracked
   experiment; these are committed so CI can trend them. A hand-rolled
   parser (no JSON library in the build) checks every artifact parses and
   carries the fields its consumers read, so a stale or hand-mangled
   artifact fails [dune runtest]. The coherence artifact additionally
   carries the acceptance bars of the lazy-coherence work: a >=30%
   replicated-traffic cut on at least two of {kmeans, bfs, spmv} at
   4 GPUs, results matching everywhere, and kmeans no slower under the
   overlap engine than under barriers. *)

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ---------------- a minimal JSON parser ---------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    (match peek () with Some '"' -> advance () | _ -> fail "expected '\"'");
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' ->
              Buffer.add_char b '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char b '\t';
              advance ();
              go ()
          | Some 'u' ->
              (* artifacts only carry ASCII; keep the escape verbatim *)
              Buffer.add_string b "\\u";
              advance ();
              go ()
          | Some c ->
              Buffer.add_char b c;
              advance ();
              go ()
          | None -> fail "unterminated escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let members = ref [] in
          let rec member () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            (match peek () with Some ':' -> advance () | _ -> fail "expected ':'");
            let v = parse_value () in
            members := (key, v) :: !members;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                member ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          member ();
          Obj (List.rev !members)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec item () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                item ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          item ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* ---------------- accessors ---------------- *)

let member file key = function
  | Obj kvs -> (
      match List.assoc_opt key kvs with
      | Some v -> v
      | None -> Alcotest.failf "%s: missing key %S" file key)
  | _ -> Alcotest.failf "%s: expected an object around %S" file key

let str file key obj =
  match member file key obj with
  | Str s -> s
  | _ -> Alcotest.failf "%s: %S is not a string" file key

let num file key obj =
  match member file key obj with
  | Num f -> f
  | _ -> Alcotest.failf "%s: %S is not a number" file key

let boolean file key obj =
  match member file key obj with
  | Bool b -> b
  | _ -> Alcotest.failf "%s: %S is not a bool" file key

let arr file key obj =
  match member file key obj with
  | Arr items -> items
  | _ -> Alcotest.failf "%s: %S is not an array" file key

(* ---------------- artifact discovery ---------------- *)

(* Tests execute inside the dune sandbox; the artifacts are declared as
   test deps, so walking up from the cwd finds the dune-copied versions
   (and running the binary from a source checkout finds the committed
   ones). *)
let find_artifact_dir () =
  let has_artifacts dir =
    match Sys.readdir dir with
    | entries ->
        Array.exists
          (fun e -> String.length e > 11 && String.sub e 0 6 = "BENCH_" && Filename.check_suffix e ".json")
          entries
    | exception Sys_error _ -> false
  in
  let rec walk dir depth =
    if depth > 8 then None
    else if has_artifacts dir then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else walk parent (depth + 1)
  in
  walk (Sys.getcwd ()) 0

let load name =
  match find_artifact_dir () with
  | None -> Alcotest.failf "no BENCH_*.json found walking up from %s" (Sys.getcwd ())
  | Some dir ->
      let path = Filename.concat dir name in
      if not (Sys.file_exists path) then Alcotest.failf "missing artifact %s in %s" name dir;
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      (name, parse_json contents)

(* ---------------- schemas ---------------- *)

(* Every artifact must record the runtime-flag configuration that
   produced it, so a trend reader never has to guess which switches a
   historical data point was measured under. *)
let check_flags file j keys =
  match member file "flags" j with
  | Obj kvs ->
      check Alcotest.bool "flags non-empty" true (kvs <> []);
      List.iter
        (fun k ->
          if not (List.mem_assoc k kvs) then
            Alcotest.failf "%s: flags missing %S (has: %s)" file k
              (String.concat ", " (List.map fst kvs)))
        keys
  | _ -> Alcotest.failf "%s: \"flags\" is not an object" file

let test_overlap_artifact () =
  let file, j = load "BENCH_overlap.json" in
  check Alcotest.bool "scale named" true (str file "scale" j <> "");
  check_flags file j [ "overlap"; "coherence"; "collective" ];
  let runs = arr file "runs" j in
  check Alcotest.bool "runs non-empty" true (runs <> []);
  List.iter
    (fun run ->
      ignore (str file "app" run);
      ignore (str file "machine" run);
      check Alcotest.bool "gpus >= 2" true (num file "gpus" run >= 2.0);
      check Alcotest.bool "barrier time > 0" true (num file "barrier_seconds" run > 0.0);
      check Alcotest.bool "overlap time > 0" true (num file "overlap_seconds" run > 0.0);
      check Alcotest.bool "hidden >= 0" true (num file "hidden_seconds" run >= 0.0);
      check Alcotest.bool "prefetch hits >= 0" true (num file "prefetch_hits" run >= 0.0);
      check Alcotest.bool "results match" true (boolean file "results_match" run))
    runs

let test_coherence_artifact () =
  let file, j = load "BENCH_coherence.json" in
  check Alcotest.bool "scale named" true (str file "scale" j <> "");
  check_flags file j [ "coherence"; "overlap"; "collective" ];
  let runs = arr file "runs" j in
  check Alcotest.bool "runs non-empty" true (runs <> []);
  let big_cuts_at_4 = ref [] in
  List.iter
    (fun run ->
      let app = str file "app" run in
      ignore (str file "machine" run);
      let gpus = num file "gpus" run in
      check Alcotest.bool "gpus >= 2" true (gpus >= 2.0);
      check Alcotest.bool "eager time > 0" true (num file "eager_seconds" run > 0.0);
      check Alcotest.bool "lazy time > 0" true (num file "lazy_seconds" run > 0.0);
      let eager = num file "eager_coh_bytes" run and lz = num file "lazy_coh_bytes" run in
      check Alcotest.bool "coh bytes >= 0" true (eager >= 0.0 && lz >= 0.0);
      List.iter
        (fun k -> check Alcotest.bool (k ^ " >= 0") true (num file k run >= 0.0))
        [
          "eager_gpu_gpu_bytes";
          "lazy_gpu_gpu_bytes";
          "lazy_shipped_bytes";
          "lazy_deferred_bytes";
          "lazy_pulled_bytes";
          "lazy_elided_bytes";
        ];
      check Alcotest.bool "lazy never ships more" true (lz <= eager);
      check Alcotest.bool "results match" true (boolean file "results_match" run);
      if gpus = 4.0 && List.mem app [ "kmeans"; "bfs"; "spmv" ] && lz <= 0.7 *. eager then
        big_cuts_at_4 := app :: !big_cuts_at_4)
    runs;
  if List.length !big_cuts_at_4 < 2 then
    Alcotest.failf "%s: <2 of kmeans/bfs/spmv cut >=30%% at 4 GPUs (got: %s)" file
      (String.concat ", " !big_cuts_at_4);
  let km = arr file "kmeans_overlap" j in
  check Alcotest.bool "kmeans overlap runs present" true (km <> []);
  List.iter
    (fun run ->
      let barrier = num file "barrier_seconds" run in
      let overlap = num file "overlap_seconds" run in
      check Alcotest.bool "results match" true (boolean file "results_match" run);
      if overlap > barrier *. 1.0005 then
        Alcotest.failf "%s: kmeans overlap slower than barrier (%.9gs vs %.9gs) on %s" file
          overlap barrier (str file "machine" run))
    km

let test_collective_artifact () =
  let file, j = load "BENCH_collective.json" in
  check Alcotest.bool "scale named" true (str file "scale" j <> "");
  check_flags file j [ "collective"; "coherence"; "overlap" ];
  let runs = arr file "runs" j in
  check Alcotest.bool "runs non-empty" true (runs <> []);
  let cluster_wins = ref [] in
  List.iter
    (fun run ->
      let app = str file "app" run in
      ignore (str file "machine" run);
      let gpus = num file "gpus" run in
      check Alcotest.bool "gpus >= 2" true (gpus >= 2.0);
      check Alcotest.bool "coherence named" true
        (List.mem (str file "coherence" run) [ "eager"; "lazy" ]);
      check Alcotest.bool "direct time > 0" true (num file "direct_seconds" run > 0.0);
      check Alcotest.bool "auto time > 0" true (num file "auto_seconds" run > 0.0);
      List.iter
        (fun k -> check Alcotest.bool (k ^ " >= 0") true (num file k run >= 0.0))
        [
          "direct_gpu_gpu_seconds";
          "auto_gpu_gpu_seconds";
          "gpu_gpu_bytes";
          "direct_wire_bytes";
          "auto_wire_bytes";
          "rings";
          "hierarchies";
          "segments";
        ];
      let dw = num file "direct_wire_bytes" run and aw = num file "auto_wire_bytes" run in
      (* the planner reshapes routes; it must never add wire traffic *)
      check Alcotest.bool "auto never adds wire bytes" true (aw <= dw);
      check Alcotest.bool "results match" true (boolean file "results_match" run);
      if gpus = 4.0 && List.mem app [ "kmeans"; "bfs"; "spmv" ] && aw < dw then
        cluster_wins := app :: !cluster_wins)
    runs;
  (* Acceptance bar: on the 4-GPU cluster at least one replica-heavy app
     must put strictly fewer bytes on the inter-node wire under auto. *)
  if !cluster_wins = [] then
    Alcotest.failf "%s: auto beat direct on wire bytes for none of kmeans/bfs/spmv at 4 GPUs" file

let test_fleet_artifact () =
  let file, j = load "BENCH_fleet.json" in
  check Alcotest.bool "scale named" true (str file "scale" j <> "");
  check_flags file j [ "policy"; "keep_warm" ];
  check Alcotest.string "runs on the cluster" "cluster" (str file "machine" j);
  check Alcotest.bool "gpus >= 2" true (num file "gpus" j >= 2.0);
  let jobs = num file "job_count" j in
  check (Alcotest.float 0.0) "the tracked trace is 20 jobs" 20.0 jobs;
  check Alcotest.bool "budget > 0" true (num file "mem_budget_bytes" j > 0.0);
  let policies = arr file "policies" j in
  let find name =
    match List.find_opt (fun p -> str file "policy" p = name) policies with
    | Some p -> p
    | None -> Alcotest.failf "%s: no %S entry in policies" file name
  in
  let fifo = find "fifo" and sjf = find "sjf" and fair = find "fair" in
  List.iter
    (fun p ->
      check (Alcotest.float 0.0) "all jobs completed" jobs (num file "job_count" p);
      check Alcotest.bool "makespan > 0" true (num file "makespan_seconds" p > 0.0);
      check Alcotest.bool "mean wait > 0" true (num file "mean_wait_seconds" p > 0.0);
      check Alcotest.bool "p95 latency > 0" true (num file "p95_latency_seconds" p > 0.0);
      check Alcotest.bool "throughput > 0" true (num file "throughput_jobs_per_s" p > 0.0);
      let fairness = num file "fairness" p in
      check Alcotest.bool "fairness in (0, 1]" true (fairness > 0.0 && fairness <= 1.0 +. 1e-9);
      check Alcotest.bool "every job hit or missed the cache" true
        (num file "cache_hits" p +. num file "cache_misses" p = jobs);
      check Alcotest.bool "evictions >= 0" true (num file "evictions" p >= 0.0);
      check Alcotest.bool "spilled bytes >= 0" true (num file "spilled_bytes" p >= 0.0))
    [ fifo; sjf; fair ];
  (* Acceptance bar: a backlog-aware policy must beat FIFO on mean queue
     wait without giving up throughput (within 5%). *)
  let fifo_wait = num file "mean_wait_seconds" fifo in
  let best_wait =
    Float.min (num file "mean_wait_seconds" sjf) (num file "mean_wait_seconds" fair)
  in
  if best_wait >= fifo_wait then
    Alcotest.failf "%s: neither sjf nor fair beats fifo on mean wait (%.9g vs %.9g)" file
      best_wait fifo_wait;
  let fifo_tp = num file "throughput_jobs_per_s" fifo in
  List.iter
    (fun p ->
      let tp = num file "throughput_jobs_per_s" p in
      if Float.abs (tp -. fifo_tp) > 0.05 *. fifo_tp then
        Alcotest.failf "%s: %s throughput %.9g strays >5%% from fifo's %.9g" file
          (str file "policy" p) tp fifo_tp)
    [ sjf; fair ]

let test_sim_artifact () =
  let file, j = load "BENCH_sim.json" in
  check_flags file j [ "allocator"; "storm" ];
  check Alcotest.string "runs on the cluster" "cluster" (str file "machine" j);
  let nodes = num file "nodes" j and gpn = num file "gpus_per_node" j in
  let gpus = num file "gpus" j in
  check (Alcotest.float 0.0) "gpus = nodes x gpus_per_node" (nodes *. gpn) gpus;
  (* The tracked storm is the 64-GPU configuration: that's the scale the
     tentpole speedup claim is made at. *)
  check (Alcotest.float 0.0) "tracked storm is 64 GPUs" 64.0 gpus;
  let flows = num file "flows" j in
  check Alcotest.bool "flows > 0" true (flows > 0.0);
  check Alcotest.bool "waves > 0" true (num file "waves" j > 0.0);
  check (Alcotest.float 0.0) "events = 2 x flows (arrival + completion)" (2.0 *. flows)
    (num file "events" j);
  check Alcotest.bool "iterations >= 3" true (num file "iterations" j >= 3.0);
  let side name =
    let s = member file name j in
    let median = num file "median_seconds" s in
    let spread = num file "spread_seconds" s in
    let eps = num file "events_per_second" s in
    check Alcotest.bool (name ^ " median > 0") true (median > 0.0);
    check Alcotest.bool (name ^ " spread >= 0") true (spread >= 0.0);
    (* events/s must be consistent with the median, not a stale stamp *)
    let expected = num file "events" j /. median in
    check Alcotest.bool (name ^ " events/s consistent with median") true
      (Float.abs (eps -. expected) <= 1e-6 *. expected);
    (median, eps)
  in
  let ref_median, _ = side "reference" in
  let inc_median, inc_eps = side "incremental" in
  let speedup = num file "speedup" j in
  check Alcotest.bool "speedup consistent with medians" true
    (Float.abs (speedup -. (ref_median /. inc_median)) <= 1e-6 *. speedup);
  (* Acceptance bars of the fast-path work: the incremental allocator is
     at least 10x the from-scratch reference at 64-GPU scale, and clears
     the committed absolute throughput floor. *)
  if speedup < 10.0 then
    Alcotest.failf "%s: incremental speedup %.2fx below the 10x bar" file speedup;
  let floor = num file "floor_events_per_second" j in
  check Alcotest.bool "floor > 0" true (floor > 0.0);
  if inc_eps < floor then
    Alcotest.failf "%s: incremental %.0f events/s below the committed floor %.0f" file inc_eps
      floor;
  (* A bench run with --machine adds a purely informational override
     cell; validate it when present (the pinned keys above must hold
     either way). *)
  match j with
  | Obj kvs -> (
      match List.assoc_opt "machine_override" kvs with
      | None -> ()
      | Some o ->
          check Alcotest.bool "override spec named" true (str file "spec" o <> "");
          check Alcotest.bool "override gpus >= 2" true (num file "gpus" o >= 2.0);
          check Alcotest.bool "override median > 0" true (num file "median_seconds" o > 0.0);
          check Alcotest.bool "override events/s > 0" true
            (num file "events_per_second" o > 0.0))
  | _ -> ()

let test_scale_artifact () =
  let file, j = load "BENCH_scale.json" in
  check Alcotest.bool "scale named" true (str file "scale" j <> "");
  check_flags file j [ "decomp"; "collective"; "coherence"; "overlap" ];
  let runs = arr file "runs" j in
  check Alcotest.bool "runs non-empty" true (runs <> []);
  (* indexed lookup: (app, gpus, decomp, collective) -> run *)
  let find ~app ~gpus ~decomp ~collective =
    match
      List.find_opt
        (fun run ->
          str file "app" run = app
          && num file "gpus" run = gpus
          && str file "decomp" run = decomp
          && str file "collective" run = collective)
        runs
    with
    | Some run -> run
    | None ->
        Alcotest.failf "%s: no run for %s at %g GPUs %s/%s" file app gpus decomp collective
  in
  let seen_gpus = ref [] in
  List.iter
    (fun run ->
      ignore (str file "app" run);
      ignore (str file "machine" run);
      let gpus = num file "gpus" run in
      check Alcotest.bool "gpus >= 4" true (gpus >= 4.0);
      if not (List.mem gpus !seen_gpus) then seen_gpus := gpus :: !seen_gpus;
      check Alcotest.bool "decomp named" true (List.mem (str file "decomp" run) [ "1d"; "2d" ]);
      check Alcotest.bool "collective named" true
        (List.mem (str file "collective" run) [ "star"; "ring" ]);
      check Alcotest.bool "time > 0" true (num file "seconds" run > 0.0);
      List.iter
        (fun k -> check Alcotest.bool (k ^ " >= 0") true (num file k run >= 0.0))
        [ "gpu_gpu_bytes"; "halo_bytes_per_gpu"; "wire_bytes"; "rings"; "hierarchies" ];
      (* per-GPU figure consistent with the total it was derived from *)
      check Alcotest.bool "halo/GPU consistent" true
        (Float.abs ((num file "halo_bytes_per_gpu" run *. gpus) -. num file "gpu_gpu_bytes" run)
        < gpus);
      (* Hard bar: values never ride the decomposition or the collective. *)
      check Alcotest.bool "results match" true (boolean file "results_match" run))
    runs;
  (* The tracked sweep covers the scale-out story: 4, 16 and 64 GPUs. *)
  List.iter
    (fun g ->
      if not (List.mem g !seen_gpus) then
        Alcotest.failf "%s: no runs at %g GPUs (the sweep is 4/16/64)" file g)
    [ 4.0; 16.0; 64.0 ];
  (* Acceptance bar 1: from 16 GPUs up, the 2-D tiles move strictly fewer
     per-GPU halo bytes than 1-D rows on the stencil (perimeter vs full
     row width), and the gap must hold at 64 too. *)
  List.iter
    (fun gpus ->
      let d1 =
        num file "halo_bytes_per_gpu" (find ~app:"jacobi" ~gpus ~decomp:"1d" ~collective:"star")
      in
      let d2 =
        num file "halo_bytes_per_gpu" (find ~app:"jacobi" ~gpus ~decomp:"2d" ~collective:"star")
      in
      if d2 >= d1 then
        Alcotest.failf "%s: 2-D halo/GPU %.0fB not below 1-D %.0fB at %g GPUs" file d2 d1 gpus)
    [ 16.0; 64.0 ];
  (* Acceptance bar 2: at 64 GPUs the ring schedule puts strictly fewer
     bytes on the inter-node wire than the star for the collective-heavy
     app, and the planner actually built rings. *)
  let star = find ~app:"spmv" ~gpus:64.0 ~decomp:"1d" ~collective:"star" in
  let ring = find ~app:"spmv" ~gpus:64.0 ~decomp:"1d" ~collective:"ring" in
  let sw = num file "wire_bytes" star and rw = num file "wire_bytes" ring in
  if rw >= sw then
    Alcotest.failf "%s: ring wire bytes %.0f not below star %.0f at 64 GPUs" file rw sw;
  check Alcotest.bool "rings were built" true (num file "rings" ring > 0.0)

let test_fusion_artifact () =
  let file, j = load "BENCH_fusion.json" in
  check Alcotest.bool "scale named" true (str file "scale" j <> "");
  check_flags file j [ "fuse"; "overlap"; "coherence"; "collective" ];
  let runs = arr file "runs" j in
  check Alcotest.bool "runs non-empty" true (runs <> []);
  let cluster_wins = ref [] in
  let contracted_somewhere = ref false in
  List.iter
    (fun run ->
      let app = str file "app" run in
      ignore (str file "machine" run);
      let gpus = num file "gpus" run in
      check Alcotest.bool "gpus >= 2" true (gpus >= 2.0);
      let unfused = num file "unfused_seconds" run and fused = num file "fused_seconds" run in
      check Alcotest.bool "unfused time > 0" true (unfused > 0.0);
      check Alcotest.bool "fused time > 0" true (fused > 0.0);
      let ucoh = num file "unfused_coh_bytes" run and fcoh = num file "fused_coh_bytes" run in
      check Alcotest.bool "coh bytes >= 0" true (ucoh >= 0.0 && fcoh >= 0.0);
      List.iter
        (fun k -> check Alcotest.bool (k ^ " >= 0") true (num file k run >= 0.0))
        [
          "unfused_gpu_gpu_bytes";
          "fused_gpu_gpu_bytes";
          "fused_kernels";
          "contracted_arrays";
          "relayouts";
        ];
      check Alcotest.bool "results match" true (boolean file "results_match" run);
      if num file "contracted_arrays" run >= 1.0 then contracted_somewhere := true;
      if
        gpus = 4.0
        && List.mem app [ "md"; "kmeans" ]
        && fused < unfused && fcoh < ucoh
      then cluster_wins := app :: !cluster_wins)
    runs;
  (* Acceptance bars of the fusion work: on the 4-GPU cluster both
     fusion-friendly apps are strictly faster AND ship strictly fewer
     coherence bytes fused, and at least one run shows a contracted
     temporary. *)
  List.iter
    (fun app ->
      if not (List.mem app !cluster_wins) then
        Alcotest.failf "%s: %s not strictly better fused on seconds and coh bytes at 4 GPUs"
          file app)
    [ "md"; "kmeans" ];
  if not !contracted_somewhere then
    Alcotest.failf "%s: no run demonstrates temporary contraction" file

let test_parser_rejects_garbage () =
  List.iter
    (fun bad ->
      match parse_json bad with
      | exception Bad _ -> ()
      | _ -> Alcotest.failf "parser accepted %S" bad)
    [ ""; "{"; "[1,]"; "{\"a\":}"; "truex"; "{\"a\":1} extra"; "\"unterminated" ]

let suite =
  [
    tc "json parser rejects malformed input" test_parser_rejects_garbage;
    tc "BENCH_overlap.json: schema + results" test_overlap_artifact;
    tc "BENCH_coherence.json: schema + acceptance bars" test_coherence_artifact;
    tc "BENCH_collective.json: schema + acceptance bars" test_collective_artifact;
    tc "BENCH_fleet.json: schema + acceptance bars" test_fleet_artifact;
    tc "BENCH_sim.json: schema + speedup and throughput bars" test_sim_artifact;
    tc "BENCH_scale.json: schema + scaling acceptance bars" test_scale_artifact;
    tc "BENCH_fusion.json: schema + acceptance bars" test_fusion_artifact;
  ]
