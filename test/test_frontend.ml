(* Frontend tests: lexer, parser, pretty-printer round trips, typechecker. *)

open Mgacc_minic

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ---------------- Lexer ---------------- *)

let toks src = List.map fst (Lexer.tokenize ~file:"t" src)

let test_lexer_basics () =
  check Alcotest.int "count" 6 (List.length (toks "int x = 42;"));
  (match toks "3.5 1e3 2.0e-2 7" with
  | [ Token.Tfloat_lit a; Token.Tfloat_lit b; Token.Tfloat_lit c; Token.Tint_lit 7; Token.Teof ] ->
      check (Alcotest.float 1e-12) "3.5" 3.5 a;
      check (Alcotest.float 1e-12) "1e3" 1000.0 b;
      check (Alcotest.float 1e-12) "2e-2" 0.02 c
  | _ -> Alcotest.fail "bad number lexing");
  match toks "a<=b && c>>2" with
  | [ Token.Tident "a"; Token.Tpunct "<="; Token.Tident "b"; Token.Tpunct "&&"; Token.Tident "c";
      Token.Tpunct ">>"; Token.Tint_lit 2; Token.Teof ] ->
      ()
  | _ -> Alcotest.fail "bad operator lexing"

let test_lexer_comments () =
  check Alcotest.int "line comment" 2 (List.length (toks "x // blah blah\n"));
  check Alcotest.int "block comment" 3 (List.length (toks "x /* multi\nline */ y"));
  Alcotest.check_raises "unterminated"
    (Loc.Error (Loc.make ~file:"t" ~line:1 ~col:3, "unterminated comment"))
    (fun () -> ignore (toks "x /* oops"))

let test_lexer_pragma () =
  match toks "#pragma acc parallel loop\nfor" with
  | [ Token.Tpragma p; Token.Tkw "for"; Token.Teof ] ->
      check Alcotest.string "payload" "acc parallel loop" p
  | _ -> Alcotest.fail "pragma not captured"

let test_lexer_locations () =
  let all = Lexer.tokenize ~file:"t" "a\n  b" in
  match all with
  | [ (_, la); (_, lb); _ ] ->
      check Alcotest.int "line a" 1 la.Loc.line;
      check Alcotest.int "line b" 2 lb.Loc.line;
      check Alcotest.int "col b" 3 lb.Loc.col
  | _ -> Alcotest.fail "token count"

let test_lexer_bad_char () =
  match toks "a @ b" with
  | exception Loc.Error (_, msg) -> check Alcotest.bool "mentions char" true (String.contains msg '@')
  | _ -> Alcotest.fail "expected error"

(* ---------------- Parser: expressions ---------------- *)

let pe src = Pretty.expr_to_string (Parser.parse_expr ~file:"t" src)

let test_parser_precedence () =
  check Alcotest.string "mul binds tighter" "(1 + (2 * 3))" (pe "1 + 2 * 3");
  check Alcotest.string "left assoc" "((10 - 4) - 3)" (pe "10 - 4 - 3");
  check Alcotest.string "cmp vs arith" "((a + 1) < (b * 2))" (pe "a + 1 < b * 2");
  check Alcotest.string "logical" "((a && b) || c)" (pe "a && b || c");
  check Alcotest.string "parens" "((1 + 2) * 3)" (pe "(1 + 2) * 3");
  check Alcotest.string "unary" "((-a) + b)" (pe "-a + b");
  check Alcotest.string "ternary" "(a ? b : (c ? d : e))" (pe "a ? b : c ? d : e");
  check Alcotest.string "shift" "((a << 2) + 1)" (pe "(a << 2) + 1");
  check Alcotest.string "cast" "((int)(a / b))" (pe "(int)(a / b)");
  check Alcotest.string "index" "a[((i * 3) + 1)]" (pe "a[i*3 + 1]");
  check Alcotest.string "call" "fmax(a, (b + 1))" (pe "fmax(a, b + 1)");
  check Alcotest.string "length" "__length(xs)" (pe "__length(xs)")

let test_parser_expr_errors () =
  let fails src =
    match Parser.parse_expr ~file:"t" src with
    | exception Loc.Error _ -> ()
    | _ -> Alcotest.failf "expected parse error for %S" src
  in
  fails "1 +";
  fails "a[";
  fails "f(a,)";
  fails "1 2"

(* ---------------- Parser: statements & programs ---------------- *)

let parse_main body =
  Parser.parse ~file:"t" (Printf.sprintf "void main() { %s }" body)

let test_parser_statements () =
  let p =
    parse_main
      {|
        int n = 10;
        double a[n];
        int i;
        for (i = 0; i < n; i++) { a[i] = 2.0 * i; }
        while (n > 0) { n = n - 1; if (n == 3) break; else continue; }
        i += 2; i--; a[0] /= 2.0;
      |}
  in
  match Ast.find_func p "main" with
  | Some f -> check Alcotest.int "statements" 8 (List.length f.Ast.fbody)
  | None -> Alcotest.fail "no main"

let test_parser_functions () =
  let p =
    Parser.parse ~file:"t"
      "double dot(double xs[], double ys[], int n) { int i; double s = 0.0; for (i = 0; i < n; \
       i++) { s += xs[i] * ys[i]; } return s; } void main() { }"
  in
  check Alcotest.int "two functions" 2 (List.length p.Ast.funcs);
  match Ast.find_func p "dot" with
  | Some f ->
      check Alcotest.int "params" 3 (List.length f.Ast.fparams);
      check Alcotest.string "ret" "double" (Ast.typ_to_string f.Ast.fret)
  | None -> Alcotest.fail "no dot"

let test_parser_directives () =
  let d s = Pretty.directive_to_string (Parser.parse_directive ~file:"t" ~line:1 s) in
  check Alcotest.string "parallel loop"
    "acc parallel loop copyin(a[0:n], b) reduction(+: s) gang vector(128)"
    (d "acc parallel loop copyin(a[0:n], b) reduction(+:s) gang vector(128)");
  check Alcotest.string "kernels alias" "acc parallel loop" (d "acc kernels loop");
  check Alcotest.string "data" "acc data copy(x[0:n])" (d "acc data copy(x[0:n])");
  check Alcotest.string "update" "acc update host(x[0:n], y)" (d "acc update host(x[0:n], y)");
  check Alcotest.string "localaccess"
    "acc localaccess(a: stride(3, 0, 0), b: stride(1, 1, 2))"
    (d "acc localaccess(a: stride(3), b: stride(1, 1, 2))");
  check Alcotest.string "reductiontoarray" "acc reductiontoarray(+: hist)"
    (d "acc reductiontoarray(+: hist)");
  check Alcotest.string "reductiontoarray max" "acc reductiontoarray(max: best)"
    (d "acc reductiontoarray(max: best[0:k])")

let test_parser_directive_errors () =
  let fails s =
    match Parser.parse_directive ~file:"t" ~line:1 s with
    | exception Loc.Error _ -> ()
    | _ -> Alcotest.failf "expected error for %S" s
  in
  fails "omp parallel";
  fails "acc wibble";
  fails "acc parallel loop copyin";
  fails "acc localaccess(a: wobble(1))";
  fails "acc update nowhere(x)"

let test_parser_pragma_attaches () =
  let p =
    parse_main
      {|
        int n = 4; double a[n]; int i;
        #pragma acc data copy(a[0:n])
        {
          #pragma acc localaccess(a: stride(1))
          #pragma acc parallel loop
          for (i = 0; i < n; i++) { a[i] = 1.0; }
        }
      |}
  in
  let f = Option.get (Ast.find_func p "main") in
  (* data pragma wraps the block; inside, two stacked pragmas wrap the for *)
  match List.rev f.Ast.fbody with
  | { Ast.sdesc = Ast.Spragma (Ast.Ddata _, { Ast.sdesc = Ast.Sblock [ inner ]; _ }); _ } :: _ -> (
      match inner.Ast.sdesc with
      | Ast.Spragma (Ast.Dlocalaccess _, { Ast.sdesc = Ast.Spragma (Ast.Dparallel_loop _, _); _ })
        ->
          ()
      | _ -> Alcotest.fail "pragma stack shape")
  | _ -> Alcotest.fail "data pragma shape"

let test_parser_2d_desugar () =
  let p =
    parse_main
      {|
        int n = 4; int m = 6;
        double a[n][m];
        int i; int j;
        for (i = 0; i < n; i++) { for (j = 0; j < m; j++) { a[i][j] = 1.0; } }
      |}
  in
  let f = Option.get (Ast.find_func p "main") in
  (* The declaration flattens to n*m elements. *)
  (match List.nth f.Ast.fbody 2 with
  | { Ast.sdesc = Ast.Sarray_decl (Ast.Edouble, "a", len); _ } ->
      check Alcotest.string "flattened length" "(n * m)" (Pretty.expr_to_string len)
  | _ -> Alcotest.fail "decl shape");
  (* The subscript desugars to row-major indexing. *)
  let rec find_assign s =
    match s.Ast.sdesc with
    | Ast.Sassign (Ast.Lindex ("a", idx), _, _) -> Some idx
    | Ast.Sfor (_, body) | Ast.Sblock body -> List.find_map find_assign body
    | _ -> None
  in
  match List.find_map find_assign f.Ast.fbody with
  | Some idx -> check Alcotest.string "row major" "((i * m) + j)" (Pretty.expr_to_string idx)
  | None -> Alcotest.fail "no assignment found"

let test_parser_2d_errors () =
  match
    Parser.parse ~file:"t" "void main() { double a[4]; a[1][2] = 0.0; }"
  with
  | exception Loc.Error (_, msg) ->
      check Alcotest.bool "names the array" true (String.length msg > 0)
  | _ -> Alcotest.fail "indexing a 1-D array twice must fail"

let test_roundtrip () =
  let src =
    {|
double norm(double xs[], int n) {
  double s = 0.0;
  int i;
  #pragma acc parallel loop reduction(+: s) localaccess(xs: stride(1))
  for (i = 0; i < n; i++) { s += xs[i] * xs[i]; }
  return sqrt(s);
}
void main() {
  int n = 100;
  double xs[n];
  int i;
  for (i = 0; i < n; i++) { xs[i] = 0.5 * i; }
  double r = norm(xs, n);
  if (r > 0.0) { r = r / 2.0; } else { r = 0.0; }
}
|}
  in
  let p1 = Parser.parse ~file:"t" src in
  let printed1 = Pretty.program_to_string p1 in
  let p2 = Parser.parse ~file:"t2" printed1 in
  let printed2 = Pretty.program_to_string p2 in
  check Alcotest.string "pretty fixpoint" printed1 printed2

(* ---------------- Typechecker ---------------- *)

let typecheck_src src = Typecheck.check_program (Parser.parse ~file:"t" src)

let accepts name src = (name, fun () -> typecheck_src src)

let rejects name src =
  ( name,
    fun () ->
      match typecheck_src src with
      | exception Loc.Error _ -> ()
      | () -> Alcotest.failf "expected a type error" )

let typecheck_cases =
  [
    accepts "numeric coercion int->double" "void main() { double x = 1; x = x + 2; }";
    accepts "array params" "double f(double a[], int i) { return a[i]; } void main() { }";
    accepts "ternary mixing" "void main() { int c = 1; double x = c ? 1.0 : 2; }";
    rejects "undeclared variable" "void main() { x = 1; }";
    rejects "redeclaration" "void main() { int x; int x; }";
    rejects "array as scalar" "void main() { double a[3]; a = 1.0; }";
    rejects "scalar indexed" "void main() { int x; x[0] = 1; }";
    rejects "double array index" "void main() { double a[3]; a[1.5] = 1.0; }";
    rejects "mod on double" "void main() { double x = 4.0; int y = x % 2; }";
    rejects "break outside loop" "void main() { break; }";
    rejects "void in expression" "void f() { } void main() { int x = f(); }";
    rejects "call arity" "int g(int x) { return x; } void main() { int y = g(1, 2); }";
    rejects "unknown function" "void main() { int y = nosuch(1); }";
    rejects "builtin arity" "void main() { double x = sqrt(1.0, 2.0); }";
    rejects "return value from void" "void main() { return 3; }";
    rejects "duplicate function" "void f() { } void f() { } void main() { }";
    rejects "directive names unknown array"
      "void main() { int i; \n#pragma acc parallel loop copyin(a[0:4])\nfor (i = 0; i < 4; i++) { } }";
    rejects "reduction on array"
      "void main() { double a[4]; int i; \n#pragma acc parallel loop reduction(+: a)\nfor (i = 0; i < 4; i++) { } }";
    rejects "parallel on non-loop"
      "void main() { int i; \n#pragma acc parallel loop\ni = 3; }";
    rejects "reductiontoarray on wrong statement"
      "void main() { double a[4]; int i;\n#pragma acc parallel loop\nfor (i = 0; i < 4; i++) { \n#pragma acc reductiontoarray(+: a)\ni = 2; } }";
    accepts "reductiontoarray well formed"
      "void main() { double a[4]; int i;\n#pragma acc parallel loop\nfor (i = 0; i < 4; i++) { \n#pragma acc reductiontoarray(+: a)\na[i % 2] += 1.0; } }";
  ]

let suite =
  [
    tc "lexer: numbers, idents, operators" test_lexer_basics;
    tc "lexer: comments" test_lexer_comments;
    tc "lexer: pragma lines" test_lexer_pragma;
    tc "lexer: locations" test_lexer_locations;
    tc "lexer: bad character" test_lexer_bad_char;
    tc "parser: operator precedence" test_parser_precedence;
    tc "parser: expression errors" test_parser_expr_errors;
    tc "parser: statements" test_parser_statements;
    tc "parser: functions" test_parser_functions;
    tc "parser: directives" test_parser_directives;
    tc "parser: directive errors" test_parser_directive_errors;
    tc "parser: pragma attachment" test_parser_pragma_attaches;
    tc "parser: 2-D arrays desugar row-major" test_parser_2d_desugar;
    tc "parser: 2-D subscript on 1-D array rejected" test_parser_2d_errors;
    tc "pretty: parse/print fixpoint" test_roundtrip;
  ]
  @ List.map (fun (name, f) -> tc ("typecheck: " ^ name) f) typecheck_cases
