(* Every sample program in samples/ must compile, pass the translator, run
   on 2 simulated GPUs, and agree with the sequential reference on all of
   its double arrays. This keeps the user-facing corpus honest. *)

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let samples_dir =
  (* dune runs tests from the build sandbox; locate the repo's samples. *)
  let rec find dir =
    let candidate = Filename.concat dir "samples" in
    if Sys.file_exists candidate && Sys.is_directory candidate then Some candidate
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else find parent
  in
  find (Sys.getcwd ())

let arrays_of env (program : Mgacc.Ast.program) =
  (* Every array declared in main that still exists at exit. *)
  match Mgacc.Ast.find_func program "main" with
  | None -> []
  | Some f ->
      List.filter_map
        (fun s ->
          match s.Mgacc.Ast.sdesc with
          | Mgacc.Ast.Sarray_decl (_, name, _) -> (
              match Mgacc.Host_interp.find_array_opt env name with
              | Some _ -> Some name
              | None -> None)
          | _ -> None)
        f.Mgacc.Ast.fbody

let check_sample path () =
  let program = Mgacc.parse_file path in
  (* The translator must produce plans without errors. *)
  let plans = Mgacc.compile program in
  check Alcotest.bool "has at least one parallel loop" true
    (Mgacc.Program_plan.loop_count plans >= 1);
  let ref_env = Mgacc.run_sequential program in
  let machine = Mgacc.Machine.desktop () in
  let config = Mgacc.Rt_config.make ~num_gpus:2 machine in
  let env, report = Mgacc.run_acc ~config ~machine program in
  check Alcotest.bool "executed loops" true (report.Mgacc.Report.loops >= 1);
  List.iter
    (fun name ->
      let view = Mgacc.Host_interp.find_array ref_env name in
      match view.Mgacc.View.elem with
      | Mgacc.Ast.Edouble ->
          let expected = Mgacc.float_results ref_env name in
          let got = Mgacc.float_results env name in
          Array.iteri
            (fun i v ->
              if Float.abs (v -. expected.(i)) > 1e-9 *. Float.max 1.0 (Float.abs expected.(i))
              then Alcotest.failf "%s: %s[%d] = %g, expected %g" path name i v expected.(i))
            got
      | Mgacc.Ast.Eint ->
          check (Alcotest.array Alcotest.int)
            (Printf.sprintf "%s: %s" path name)
            (Mgacc.int_results ref_env name) (Mgacc.int_results env name))
    (arrays_of ref_env program)

let suite =
  match samples_dir with
  | None -> [ tc "samples directory present" (fun () -> Alcotest.fail "samples/ not found") ]
  | Some dir ->
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".c")
      |> List.sort compare
      |> List.map (fun f -> tc ("sample: " ^ f) (check_sample (Filename.concat dir f)))
