(* Differential testing: random parallel-loop kernels must compute
   identical results through every execution path —

   - the tree-walking host interpreter (sequential reference),
   - the closure-compiled executor on one simulated GPU,
   - the full multi-GPU runtime on two GPUs (distribution, dirty-bit
     reconciliation, the whole BSP pipeline).

   Programs are generated from a small grammar designed to be safe by
   construction (indices stay in range, divisors never vanish) while still
   covering arithmetic, gathers, conditionals, inner sequential loops,
   compound assignment and scalar reductions. Both executors evaluate the
   same AST with OCaml float semantics, so results must match bitwise. *)

module Gen = QCheck2.Gen

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------------- expression generator ---------------- *)

(* Double-valued expressions over: a[i], b[i], b[idx[i]] (gather), the loop
   index, an inner counter k (when inside the inner loop), literals, and a
   private accumulator t. *)
let gen_dexpr ~in_inner =
  let base =
    [
      (3, Gen.return "a[i]");
      (3, Gen.return "b[i]");
      (2, Gen.return "b[idx[i]]");
      (2, Gen.map (Printf.sprintf "%.3f") (Gen.float_bound_inclusive 8.0));
      (2, Gen.return "(1.0 * i)");
      (1, Gen.return "t");
    ]
    @ (if in_inner then [ (2, Gen.return "(1.0 * k)"); (2, Gen.return "b[(i + k) % n]") ] else [])
  in
  let leaf = Gen.frequency base in
  let rec node depth =
    if depth = 0 then leaf
    else
      Gen.frequency
        [
          (3, leaf);
          ( 2,
            Gen.map2 (Printf.sprintf "(%s + %s)") (node (depth - 1)) (node (depth - 1)) );
          ( 2,
            Gen.map2 (Printf.sprintf "(%s - %s)") (node (depth - 1)) (node (depth - 1)) );
          ( 2,
            Gen.map2 (Printf.sprintf "(%s * %s)") (node (depth - 1)) (node (depth - 1)) );
          (* Division kept away from zero. *)
          (1, Gen.map (fun e -> Printf.sprintf "(%s / (fabs(b[i]) + 1.5))" e) (node (depth - 1)));
          (1, Gen.map (Printf.sprintf "sqrt(fabs(%s))") (node (depth - 1)));
          (1, Gen.map (Printf.sprintf "fmax(%s, 0.25)") (node (depth - 1)));
          (1, Gen.map (Printf.sprintf "(0.0 - %s)") (node (depth - 1)));
        ]
  in
  node 2

(* ---------------- statement generator ---------------- *)

let gen_stmt =
  let open Gen in
  frequency
    [
      (4, map (Printf.sprintf "a[i] = %s;") (gen_dexpr ~in_inner:false));
      (2, map (Printf.sprintf "a[i] += %s;") (gen_dexpr ~in_inner:false));
      (2, map (Printf.sprintf "t = %s;") (gen_dexpr ~in_inner:false));
      ( 2,
        map2
          (Printf.sprintf "if (b[i] > %.3f) { a[i] = %s; } else { t = t + 1.0; }")
          (float_bound_inclusive 4.0)
          (gen_dexpr ~in_inner:false) );
      ( 2,
        map
          (Printf.sprintf "{ int k; for (k = 0; k < 3; k++) { t = t + %s; } }")
          (gen_dexpr ~in_inner:true) );
      (1, map (Printf.sprintf "s += %s;") (gen_dexpr ~in_inner:false));
      (1, return "if (i % 7 == 0) { a[i] = t; }");
    ]

let gen_body = Gen.map (String.concat "\n        ") (Gen.list_size (Gen.int_range 1 5) gen_stmt)

let program_of_body body =
  Printf.sprintf
    {|void main() {
      int n = 257;
      double a[n];
      double b[n];
      int idx[n];
      int i;
      double s = 0.0;
      for (i = 0; i < n; i++) {
        a[i] = 0.125 * i;
        b[i] = 1.0 * ((i * 13) %% 17) - 4.0;
        idx[i] = (i * 31 + 7) %% n;
      }
      #pragma acc parallel loop reduction(+: s) localaccess(a: stride(1))
      for (i = 0; i < n; i++) {
        double t = 0.5;
        %s
      }
      a[0] = a[0] + 0.0;
    }|}
    body

let prop_equivalent body =
  let src = program_of_body body in
  let program =
    try Mgacc.parse_string ~name:"gen.c" src
    with Mgacc.Loc.Error (loc, msg) ->
      QCheck2.Test.fail_reportf "generated program does not parse: %s: %s@.%s"
        (Mgacc.Loc.to_string loc) msg src
  in
  let expected =
    try
      let env = Mgacc.run_sequential program in
      (Mgacc.float_results env "a", Mgacc.Host_interp.get_scalar env "s")
    with e ->
      QCheck2.Test.fail_reportf "sequential reference failed: %s@.%s" (Printexc.to_string e) src
  in
  let check_variant label env =
    let got = Mgacc.float_results env "a" in
    Array.iteri
      (fun j v ->
        if not (Float.equal v (fst expected).(j)) then
          QCheck2.Test.fail_reportf "%s: a[%d] = %.17g, reference %.17g@.%s" label j v
            (fst expected).(j) src)
      got;
    match (Mgacc.Host_interp.get_scalar env "s", snd expected) with
    | Mgacc.Host_interp.Vfloat g, Mgacc.Host_interp.Vfloat e ->
        (* Multi-GPU reduction reassociates the sum; allow relative eps. *)
        if Float.abs (g -. e) > 1e-9 *. Float.max 1.0 (Float.abs e) then
          QCheck2.Test.fail_reportf "%s: s = %.17g, reference %.17g@.%s" label g e src
    | _ -> QCheck2.Test.fail_reportf "%s: scalar kind mismatch" label
  in
  List.iter
    (fun gpus ->
      let machine = Mgacc.Machine.desktop () in
      let config = Mgacc.Rt_config.make ~num_gpus:gpus machine in
      match Mgacc.run_acc ~config ~machine program with
      | env, _ -> check_variant (Printf.sprintf "%d GPU(s)" gpus) env
      | exception e ->
          QCheck2.Test.fail_reportf "%d GPU(s) raised %s@.%s" gpus (Printexc.to_string e) src)
    [ 1; 2 ];
  (let machine = Mgacc.Machine.desktop () in
   match Mgacc.run_openmp ~machine program with
   | env, _ -> check_variant "openmp" env
   | exception e ->
       QCheck2.Test.fail_reportf "openmp raised %s@.%s" (Printexc.to_string e) src);
  true

let suite =
  [ qtest "random kernels: all execution paths agree" gen_body prop_equivalent ]
