(* Scheduler tests: split properties (QCheck), the roofline cost model,
   the feedback controller, the rebalance planner, the translator's
   schedule hints, and end-to-end policy behavior on the mixed machine —
   including the acceptance shapes: proportional/adaptive beat the equal
   split on the heterogeneous preset, and adaptive is a bit-identical
   no-op on homogeneous ones. *)

module Task_map = Mgacc_runtime.Task_map
module Interval = Mgacc_util.Interval
module Cost_model = Mgacc_sched.Cost_model
module Feedback = Mgacc_sched.Feedback
module Planner = Mgacc_sched.Planner
module Scheduler = Mgacc_sched.Scheduler
module Policy = Mgacc_sched.Policy
open Mgacc

let qtest ?(count = 300) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------------- Task_map.split properties ---------------- *)

let gen_split =
  QCheck2.Gen.(
    map
      (fun (lower, len, parts) -> (lower - 50, len, 1 + parts))
      (triple (int_bound 100) (int_bound 200) (int_bound 7)))

let contiguous_cover ~lower ~upper ranges =
  Array.length ranges > 0
  && ranges.(0).Task_map.start_ = lower
  && ranges.(Array.length ranges - 1).Task_map.stop_ = upper
  && Array.for_all (fun r -> r.Task_map.stop_ >= r.Task_map.start_) ranges
  && fst
       (Array.fold_left
          (fun (ok, prev) r -> (ok && r.Task_map.start_ = prev, r.Task_map.stop_))
          (true, lower) ranges)

let prop_split_contiguous_cover (lower, len, parts) =
  let upper = lower + len in
  contiguous_cover ~lower ~upper (Task_map.split ~lower ~upper ~parts)

let prop_split_sizes (lower, len, parts) =
  let upper = lower + len in
  let ranges = Task_map.split ~lower ~upper ~parts in
  let sizes = Array.map Task_map.length ranges in
  let mx = Array.fold_left max min_int sizes and mn = Array.fold_left min max_int sizes in
  Array.length ranges = parts && mx - mn <= 1

let prop_empty_range_window (lower, _, _) =
  let r = { Task_map.start_ = lower; stop_ = lower } in
  Interval.length (Task_map.window r ~stride:3 ~left:1 ~right:2 ~max_len:1000) = 0

(* ---------------- Task_map.split_weighted properties ---------------- *)

let gen_weighted =
  QCheck2.Gen.(
    triple (int_bound 100) (int_bound 300)
      (list_size (int_range 1 6) (map (fun x -> 0.02 +. float_of_int x) (int_bound 20))))

let prop_weighted_contiguous_cover (lower, len, ws) =
  let lower = lower - 50 and weights = Array.of_list ws in
  let upper = lower + len in
  contiguous_cover ~lower ~upper (Task_map.split_weighted ~lower ~upper ~weights)

(* Largest-remainder rounding: every part holds within one iteration of
   its exact quota. *)
let prop_weighted_quota (lower, len, ws) =
  let lower = lower - 50 and weights = Array.of_list ws in
  let upper = lower + len in
  let ranges = Task_map.split_weighted ~lower ~upper ~weights in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let n = float_of_int (upper - lower) in
  Array.length ranges = Array.length weights
  && Array.for_all2
       (fun r w ->
         Float.abs (float_of_int (Task_map.length r) -. (w /. total *. n)) < 1.0 +. 1e-9)
       ranges weights

let prop_weighted_equal_is_split (lower, len, parts) =
  let upper = lower + len in
  Task_map.split_weighted ~lower ~upper ~weights:(Array.make parts (1.0 /. float_of_int parts))
  = Task_map.split ~lower ~upper ~parts

(* ---------------- Cost model ---------------- *)

(* A zero cost makes the model fall back to its nominal memory-bound mix. *)
let nominal = Mgacc_gpusim.Cost.zero ()

let test_homogeneous () =
  Alcotest.(check bool) "desktop is homogeneous" true
    (Cost_model.homogeneous (Machine.desktop ()) ~num_gpus:2);
  Alcotest.(check bool) "mixed desktop is not" false
    (Cost_model.homogeneous (Machine.desktop_mixed ()) ~num_gpus:2)

let test_seed_weights () =
  let uniform =
    Cost_model.seed_weights (Machine.desktop ()) ~num_gpus:2 ~iterations:100000
      ~threads_per_iter:1 ~iter_cost:nominal
  in
  Alcotest.(check (array (float 1e-12))) "homogeneous seed is uniform" [| 0.5; 0.5 |] uniform;
  let w =
    Cost_model.seed_weights (Machine.desktop_mixed ()) ~num_gpus:2 ~iterations:100000
      ~threads_per_iter:1 ~iter_cost:nominal
  in
  Alcotest.(check bool) "C2075 earns the larger share" true (w.(0) > w.(1));
  Alcotest.(check (float 1e-9)) "weights sum to 1" 1.0 (w.(0) +. w.(1))

let gen_quantize =
  QCheck2.Gen.(list_size (int_range 1 6) (map (fun x -> 0.01 +. float_of_int x) (int_bound 50)))

let prop_quantize ws =
  let w = Cost_model.normalize (Array.of_list ws) in
  let q = Cost_model.quantize ~grid:64 w in
  let unit = 1.0 /. 64.0 in
  Float.abs (Array.fold_left ( +. ) 0.0 q -. 1.0) < 1e-9
  && Array.for_all
       (fun x ->
         x >= unit -. 1e-12 && Float.abs ((x /. unit) -. Float.round (x /. unit)) < 1e-9)
       q

(* ---------------- Feedback controller ---------------- *)

let test_feedback_unrated () =
  let fb = Feedback.create Feedback.default_knobs ~num_gpus:2 in
  Alcotest.(check bool) "no samples: unrated" true (Feedback.rates fb = None);
  Feedback.observe fb ~iterations:[| 100; 0 |] ~seconds:[| 1e-4; 0.0 |];
  Alcotest.(check bool) "device 1 never ran: still unrated" true (Feedback.rates fb = None)

let test_feedback_balanced () =
  let fb = Feedback.create Feedback.default_knobs ~num_gpus:2 in
  Feedback.observe fb ~iterations:[| 100; 100 |] ~seconds:[| 1e-4; 1e-4 |];
  Alcotest.(check (float 1e-9)) "equal rates: no predicted gain" 0.0
    (Feedback.predicted_gain fb ~current:[| 0.5; 0.5 |])

let test_feedback_skewed () =
  let fb = Feedback.create Feedback.default_knobs ~num_gpus:2 in
  Feedback.observe fb ~iterations:[| 100; 100 |] ~seconds:[| 1e-4; 3e-4 |];
  (match Feedback.proposed_weights fb with
  | None -> Alcotest.fail "expected a proposal once every device is rated"
  | Some w ->
      Alcotest.(check bool) "fast GPU earns the larger share" true (w.(0) > w.(1)));
  Alcotest.(check bool) "skew predicts a gain over the equal split" true
    (Feedback.predicted_gain fb ~current:[| 0.5; 0.5 |] > 0.2)

(* ---------------- Rebalance planner ---------------- *)

let planner_case ~bytes_per_iter =
  Planner.decide ~machine:(Machine.desktop ()) ~knobs:Feedback.default_knobs
    ~current:[| 0.5; 0.5 |]
    ~proposed:[| 0.65625; 0.34375 |]
    ~rates:[| 2e9; 1e9 |] ~iterations:1_000_000 ~bytes_per_iter

let test_planner_free_move () =
  match planner_case ~bytes_per_iter:0 with
  | Planner.Rebalance { predicted_gain; predicted_move; _ } ->
      Alcotest.(check bool) "gain positive" true (predicted_gain > 0.0);
      Alcotest.(check (float 1e-12)) "nothing to move" 0.0 predicted_move
  | Planner.Keep -> Alcotest.fail "large gain with free movement must rebalance"

let test_planner_expensive_move () =
  match planner_case ~bytes_per_iter:100_000 with
  | Planner.Keep -> ()
  | Planner.Rebalance { predicted_gain; predicted_move; _ } ->
      Alcotest.failf "movement (%.3gs) should have swamped the gain (%.3gs)" predicted_move
        predicted_gain

let test_planner_hysteresis () =
  match
    Planner.decide ~machine:(Machine.desktop ()) ~knobs:Feedback.default_knobs
      ~current:[| 0.5; 0.5 |]
      ~proposed:[| 0.505; 0.495 |]
      ~rates:[| 1.01e9; 0.99e9 |] ~iterations:1_000_000 ~bytes_per_iter:0
  with
  | Planner.Keep -> ()
  | Planner.Rebalance _ -> Alcotest.fail "sub-hysteresis gain must not churn the split"

(* ---------------- Scheduler unit behavior ---------------- *)

let weights_for sched ~workload =
  Scheduler.weights_for sched ~loop_id:0 ~iterations:100_000 ~threads_per_iter:1
    ~iter_cost:nominal ~workload

let test_scheduler_equal_policy () =
  let s =
    Scheduler.create ~machine:(Machine.desktop_mixed ()) ~num_gpus:2 ~policy:Policy.Equal
      ~knobs:Feedback.default_knobs
  in
  Alcotest.(check bool) "equal policy never proposes weights" true
    (weights_for s ~workload:Scheduler.Uniform = None)

let test_scheduler_proportional () =
  let homog =
    Scheduler.create ~machine:(Machine.desktop ()) ~num_gpus:2 ~policy:Policy.Proportional
      ~knobs:Feedback.default_knobs
  in
  Alcotest.(check bool) "homogeneous: fall back to the equal split" true
    (weights_for homog ~workload:Scheduler.Uniform = None);
  let mixed =
    Scheduler.create ~machine:(Machine.desktop_mixed ()) ~num_gpus:2 ~policy:Policy.Proportional
      ~knobs:Feedback.default_knobs
  in
  match weights_for mixed ~workload:Scheduler.Uniform with
  | None -> Alcotest.fail "mixed machine: expected a proportional seed"
  | Some w -> Alcotest.(check bool) "C2075 earns the larger share" true (w.(0) > w.(1))

let test_scheduler_adaptive_feedback () =
  let s =
    Scheduler.create ~machine:(Machine.desktop_mixed ()) ~num_gpus:2 ~policy:Policy.Adaptive
      ~knobs:Feedback.default_knobs
  in
  (* Irregular loops seed equal: the static model cannot see the skew. *)
  Alcotest.(check bool) "irregular: seed is the equal split" true
    (weights_for s ~workload:Scheduler.Irregular = None);
  let committed =
    Scheduler.observe s ~loop_id:0 ~iterations:[| 50_000; 50_000 |]
      ~seconds:[| 1e-4; 3e-4 |] ~total_iterations:100_000 ~bytes_per_iter:0
  in
  Alcotest.(check bool) "strong skew with free movement commits a re-split" true committed;
  Alcotest.(check int) "rebalance counted" 1 (Scheduler.rebalances s);
  match weights_for s ~workload:Scheduler.Irregular with
  | None -> Alcotest.fail "expected the committed re-split"
  | Some w -> Alcotest.(check bool) "re-split favors the fast GPU" true (w.(0) > w.(1))

(* ---------------- Translator schedule hints ---------------- *)

let hints_of source name =
  let program = parse_string ~name:(name ^ ".c") source in
  List.map Kernel_plan.schedule_hint (Program_plan.all_plans (compile program))

let test_schedule_hints () =
  let md = hints_of (Mgacc_apps.Md.app Mgacc_apps.Md.default_params).Mgacc_apps.App_common.source "md" in
  Alcotest.(check bool) "md is uniform (dynamic subscripts, fixed trips)" true
    (List.for_all (( = ) `Uniform) md);
  let km =
    hints_of (Mgacc_apps.Kmeans.app Mgacc_apps.Kmeans.default_params).Mgacc_apps.App_common.source "kmeans"
  in
  Alcotest.(check bool) "kmeans is uniform" true (List.for_all (( = ) `Uniform) km);
  let bfs = hints_of (Mgacc_apps.Bfs.app Mgacc_apps.Bfs.default_params).Mgacc_apps.App_common.source "bfs" in
  Alcotest.(check bool) "bfs is irregular (tainted trip count / frontier test)" true
    (List.exists (( = ) `Irregular) bfs)

(* ---------------- Empty-range launches ---------------- *)

let tiny_loop_source n =
  Printf.sprintf
    {|
void main() {
  double a[8];
  int i;
  for (i = 0; i < 8; i++) { a[i] = 1.0; }
  #pragma acc data copy(a[0:8])
  {
    #pragma acc parallel loop
    for (i = 0; i < %d; i++) { a[i] = a[i] + 1.0; }
  }
}
|}
    n

let run_with ~machine ~schedule source name =
  let program = parse_string ~name:(name ^ ".c") source in
  let config = Rt_config.make ~schedule machine in
  run_acc ~config ~machine program

let test_empty_launches () =
  (* One iteration over two GPUs: one GPU's range is empty and must not
     reach the profiler or the trace. *)
  let machine = Machine.desktop () in
  let env, report = run_with ~machine ~schedule:Policy.Equal (tiny_loop_source 1) "tiny1" in
  Alcotest.(check int) "1 iteration on 2 GPUs: a single kernel launch" 1
    report.Report.launches;
  Alcotest.(check (float 1e-12)) "the one iteration ran" 2.0 (float_results env "a").(0);
  let machine = Machine.desktop () in
  let _, report = run_with ~machine ~schedule:Policy.Equal (tiny_loop_source 0) "tiny0" in
  Alcotest.(check int) "0 iterations: no kernel launches at all" 0 report.Report.launches

(* ---------------- Homogeneous machines: adaptive is a no-op ---------------- *)

let test_adaptive_noop_on_homogeneous () =
  let app = Mgacc_apps.Kmeans.app { points = 2000; features = 8; clusters = 4; iterations = 4; seed = 11 } in
  let run schedule =
    let machine = Machine.desktop () in
    run_with ~machine ~schedule app.Mgacc_apps.App_common.source app.Mgacc_apps.App_common.name
  in
  let env_eq, r_eq = run Policy.Equal in
  let env_ad, r_ad = run Policy.Adaptive in
  Alcotest.(check int) "no re-splits on a homogeneous machine" 0 r_ad.Report.rebalances;
  Alcotest.(check (float 0.0)) "total time identical to the equal split" r_eq.Report.total_time
    r_ad.Report.total_time;
  Alcotest.(check (float 0.0)) "kernel time identical" r_eq.Report.kernel_time
    r_ad.Report.kernel_time;
  Alcotest.(check (float 0.0)) "traffic identical" r_eq.Report.cpu_gpu_time
    r_ad.Report.cpu_gpu_time;
  List.iter
    (fun name ->
      Alcotest.(check (array (float 0.0)))
        (name ^ " bit-identical") (float_results env_eq name) (float_results env_ad name))
    [ "centers" ]

(* ---------------- Adaptive rebalancing on a skewed irregular loop ------- *)

(* Triangular work (the inner trip count grows with the parallel index)
   defeats both the equal split and the static seed; only runtime feedback
   can see it. The mixed machine plus a block-distributed output array
   exercises the full path: feedback -> planner -> committed re-split ->
   GPU-to-GPU repartitioning of [a]. The loop is big enough that the
   amortized gain clears the fabric's 15us peer latency. *)
let skewed_source =
  {|
void main() {
  int n = 32768;
  double a[n];
  double b[64];
  int i;
  int t;
  for (i = 0; i < n; i++) { a[i] = 0.0; }
  for (i = 0; i < 64; i++) { b[i] = 0.5; }
  #pragma acc data copy(a[0:n]) copyin(b[0:64])
  {
    for (t = 0; t < 4; t++) {
      #pragma acc parallel loop localaccess(a: stride(1))
      for (i = 0; i < n; i++) {
        int w = (i * 64) / n;
        double s = 0.0;
        int k;
        for (k = 0; k < w; k++) { s = s + b[k]; }
        a[i] = a[i] + s;
      }
    }
  }
}
|}

let test_adaptive_rebalances_skew () =
  let hints = hints_of skewed_source "skew" in
  Alcotest.(check bool) "the skewed loop is flagged irregular" true
    (List.exists (( = ) `Irregular) hints);
  let machine = Machine.desktop_mixed () in
  let env, report = run_with ~machine ~schedule:Policy.Adaptive skewed_source "skew" in
  Alcotest.(check bool) "feedback committed at least one re-split" true
    (report.Report.rebalances > 0);
  let reference = run_sequential (parse_string ~name:"skew.c" skewed_source) in
  Alcotest.(check (array (float 0.0)))
    "results bit-identical to the sequential reference" (float_results reference "a")
    (float_results env "a")

(* ---------------- The balance study (the bench's smoke shape) ---------- *)

let test_balance_smoke () =
  let rows = Mgacc_apps.Balance_study.run ~smoke:true () in
  Alcotest.(check int) "3 apps x 3 policies" 9 (List.length rows);
  List.iter
    (fun (r : Mgacc_apps.Balance_study.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s verified" r.app (Policy.to_string r.policy))
        true r.ok)
    rows;
  let kernel app policy =
    let r = List.find (fun (r : Mgacc_apps.Balance_study.row) -> r.app = app && r.policy = policy) rows in
    r.report.Report.kernel_time
  in
  List.iter
    (fun app ->
      List.iter
        (fun policy ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s no slower than the equal split" app (Policy.to_string policy))
            true
            (kernel app policy <= kernel app Policy.Equal +. 1e-12))
        [ Policy.Proportional; Policy.Adaptive ])
    [ "md"; "kmeans" ]

let suite =
  [
    qtest "split: contiguous cover" gen_split prop_split_contiguous_cover;
    qtest "split: sizes within one" gen_split prop_split_sizes;
    qtest "split: empty range, empty window" gen_split prop_empty_range_window;
    qtest "split_weighted: contiguous cover" gen_weighted prop_weighted_contiguous_cover;
    qtest "split_weighted: largest-remainder quotas" gen_weighted prop_weighted_quota;
    qtest "split_weighted: equal weights = split" gen_split prop_weighted_equal_is_split;
    Alcotest.test_case "cost model: homogeneity detection" `Quick test_homogeneous;
    Alcotest.test_case "cost model: seed weights" `Quick test_seed_weights;
    qtest ~count:200 "cost model: quantize grid" gen_quantize prop_quantize;
    Alcotest.test_case "feedback: unrated until all sampled" `Quick test_feedback_unrated;
    Alcotest.test_case "feedback: balanced predicts nothing" `Quick test_feedback_balanced;
    Alcotest.test_case "feedback: skew favors the fast GPU" `Quick test_feedback_skewed;
    Alcotest.test_case "planner: free movement rebalances" `Quick test_planner_free_move;
    Alcotest.test_case "planner: expensive movement keeps" `Quick test_planner_expensive_move;
    Alcotest.test_case "planner: hysteresis" `Quick test_planner_hysteresis;
    Alcotest.test_case "scheduler: equal policy" `Quick test_scheduler_equal_policy;
    Alcotest.test_case "scheduler: proportional seeds" `Quick test_scheduler_proportional;
    Alcotest.test_case "scheduler: adaptive feedback" `Quick test_scheduler_adaptive_feedback;
    Alcotest.test_case "translator: schedule hints" `Quick test_schedule_hints;
    Alcotest.test_case "runtime: empty ranges launch nothing" `Quick test_empty_launches;
    Alcotest.test_case "adaptive: no-op on homogeneous machines" `Slow
      test_adaptive_noop_on_homogeneous;
    Alcotest.test_case "adaptive: rebalances a skewed irregular loop" `Slow
      test_adaptive_rebalances_skew;
    Alcotest.test_case "balance study: smoke" `Slow test_balance_smoke;
  ]
