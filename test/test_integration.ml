(* End-to-end tests: whole OpenACC programs through the multi-GPU runtime,
   checked against the sequential reference, plus runtime-behaviour
   assertions (reuse, dirty traffic, miss buffering, halo exchange,
   window-violation detection, ablations). *)

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let machine () = Mgacc.Machine.desktop ()

let run_acc ?(num_gpus = 2) ?config src =
  let m = machine () in
  let config =
    match config with Some c -> c | None -> Mgacc.Rt_config.make ~num_gpus m
  in
  Mgacc.run_acc ~config ~machine:m (Mgacc.parse_string ~name:"t.c" src)

let reference src = Mgacc.run_sequential (Mgacc.parse_string ~name:"t.c" src)

let check_floats name ref_env env =
  check
    (Alcotest.array (Alcotest.float 1e-9))
    name
    (Mgacc.float_results ref_env name)
    (Mgacc.float_results env name)

let check_ints name ref_env env =
  check (Alcotest.array Alcotest.int) name (Mgacc.int_results ref_env name)
    (Mgacc.int_results env name)

(* ---------------- basic distribution ---------------- *)

let saxpy_src =
  {|void main() {
      int n = 10000; double x[n]; double y[n]; double a = 3.0; int i;
      for (i = 0; i < n; i++) { x[i] = 0.5 * i; y[i] = 1.0; }
      #pragma acc data copyin(x[0:n]) copy(y[0:n])
      {
        #pragma acc parallel loop localaccess(x: stride(1), y: stride(1))
        for (i = 0; i < n; i++) { y[i] = y[i] + a * x[i]; }
      }
    }|}

let test_saxpy_all_gpu_counts () =
  let ref_env = reference saxpy_src in
  List.iter
    (fun n ->
      let env, report = run_acc ~num_gpus:n saxpy_src in
      check_floats "y" ref_env env;
      check Alcotest.int "one loop" 1 report.Mgacc.Report.loops;
      (* Distributed arrays, no replicated writes: no GPU-GPU traffic. *)
      check Alcotest.int "no p2p" 0 report.Mgacc.Report.gpu_gpu_bytes)
    [ 1; 2 ]

let test_distribution_shrinks_memory () =
  (* With localaccess, each GPU holds ~half of x and y. Without (ablation),
     everything is replicated on both GPUs. *)
  let _, with_la = run_acc ~num_gpus:2 saxpy_src in
  let options =
    {
      Mgacc.Kernel_plan.enable_distribution = false;
      enable_layout_transform = false;
      enable_miss_check_elim = false;
      enable_fusion = false;
      enable_decomp2d = false;
    }
  in
  let m = machine () in
  let config = Mgacc.Rt_config.make ~num_gpus:2 ~translator:options m in
  let _, without_la =
    Mgacc.run_acc ~config ~machine:m (Mgacc.parse_string ~name:"t.c" saxpy_src)
  in
  check Alcotest.bool "distribution halves user memory" true
    (with_la.Mgacc.Report.mem_user_bytes * 3 < without_la.Mgacc.Report.mem_user_bytes * 2);
  (* Replicated + written y now needs dirty reconciliation. *)
  check Alcotest.bool "replication causes p2p" true
    (without_la.Mgacc.Report.gpu_gpu_bytes > 0)

(* ---------------- iterative reuse ---------------- *)

let test_iterative_reuse () =
  let src =
    {|void main() {
        int n = 1000; double a[n]; int i; int it;
        for (i = 0; i < n; i++) { a[i] = 1.0 * i; }
        #pragma acc data copy(a[0:n])
        {
          for (it = 0; it < 10; it++) {
            #pragma acc parallel loop localaccess(a: stride(1))
            for (i = 0; i < n; i++) { a[i] = a[i] + 1.0; }
          }
        }
      }|}
  in
  let ref_env = reference src in
  let env, report = run_acc ~num_gpus:2 src in
  check_floats "a" ref_env env;
  (* The data loader must load once and reuse for the other 9 launches:
     total CPU-GPU traffic = initial load (8000B) + copyout (8000B). *)
  check Alcotest.int "loaded once, copied out once" 16000 report.Mgacc.Report.cpu_gpu_bytes

(* ---------------- replicated writes: dirty reconciliation ---------------- *)

let scatter_src =
  {|void main() {
      int n = 4000; double a[n]; int idx[n]; int i; int seed = 1;
      for (i = 0; i < n; i++) { a[i] = 0.0; }
      for (i = 0; i < n; i++) {
        seed = (seed * 1103515245 + 12345) % 2147483648;
        idx[i] = seed % n;
      }
      #pragma acc data copyin(idx[0:n]) copy(a[0:n])
      {
        #pragma acc parallel loop localaccess(idx: stride(1))
        for (i = 0; i < n; i++) { a[idx[i]] = 1.0 * i; }
      }
    }|}

let test_replicated_scatter () =
  (* Writes through idx land on a replicated array; GPUs must reconcile.
     Note: colliding indices are written by increasing i in the sequential
     reference and merged in GPU order here — to keep the oracle exact the
     comparison needs collision-free indices, so run a permutation. *)
  let src =
    {|void main() {
        int n = 4000; double a[n]; int idx[n]; int i;
        for (i = 0; i < n; i++) { a[i] = 0.0; idx[i] = (i * 7) % n; }
        #pragma acc data copyin(idx[0:n]) copy(a[0:n])
        {
          #pragma acc parallel loop localaccess(idx: stride(1))
          for (i = 0; i < n; i++) { a[idx[i]] = 1.0 * i; }
        }
      }|}
  in
  let ref_env = reference src in
  let env, report = run_acc ~num_gpus:2 src in
  check_floats "a" ref_env env;
  check Alcotest.bool "dirty traffic happened" true (report.Mgacc.Report.gpu_gpu_bytes > 0)

let test_chunk_size_changes_traffic () =
  (* Clustered scatter: all writes land in the first eighth of the array.
     Small chunks ship only the dirty region; a chunk as big as the whole
     array ships everything. *)
  let clustered =
    {|void main() {
        int n = 4000; double a[n]; int i;
        for (i = 0; i < n; i++) { a[i] = 0.0; }
        #pragma acc data copy(a[0:n])
        {
          #pragma acc parallel loop
          for (i = 0; i < n; i++) { a[(i * 13) % 500] = 1.0; }
        }
      }|}
  in
  let m1 = machine () in
  let c1 = Mgacc.Rt_config.make ~num_gpus:2 ~chunk_bytes:512 m1 in
  let _, small = Mgacc.run_acc ~config:c1 ~machine:m1 (Mgacc.parse_string ~name:"t" clustered) in
  let m2 = machine () in
  let c2 = Mgacc.Rt_config.make ~num_gpus:2 ~chunk_bytes:(1024 * 1024) m2 in
  let _, big = Mgacc.run_acc ~config:c2 ~machine:m2 (Mgacc.parse_string ~name:"t" clustered) in
  check Alcotest.bool "small chunks ship less" true
    (small.Mgacc.Report.gpu_gpu_bytes * 2 < big.Mgacc.Report.gpu_gpu_bytes)

let test_single_level_ships_more () =
  let m1 = machine () in
  let c1 = Mgacc.Rt_config.make ~num_gpus:2 ~two_level_dirty:false m1 in
  let _, one = Mgacc.run_acc ~config:c1 ~machine:m1 (Mgacc.parse_string ~name:"t" scatter_src) in
  let m2 = machine () in
  let c2 = Mgacc.Rt_config.make ~num_gpus:2 ~two_level_dirty:true ~chunk_bytes:4096 m2 in
  let _, two = Mgacc.run_acc ~config:c2 ~machine:m2 (Mgacc.parse_string ~name:"t" scatter_src) in
  check Alcotest.bool "single-level ships at least as much" true
    (one.Mgacc.Report.gpu_gpu_bytes >= two.Mgacc.Report.gpu_gpu_bytes)

(* ---------------- distributed writes: miss buffers & halos ---------------- *)

let test_write_miss_forwarding () =
  (* Each iteration writes its left neighbor's slot: iteration at a GPU
     boundary writes into the other GPU's block -> write miss. *)
  let src =
    {|void main() {
        int n = 1000; double a[n]; int i;
        for (i = 0; i < n; i++) { a[i] = 0.0; }
        #pragma acc data copy(a[0:n])
        {
          #pragma acc parallel loop localaccess(a: stride(1, 1, 0))
          for (i = 0; i < n; i++) {
            if (i > 0) { a[i - 1] = 1.0 * i; }
          }
        }
      }|}
  in
  let ref_env = reference src in
  let env, report = run_acc ~num_gpus:2 src in
  check_floats "a" ref_env env;
  (* Exactly one boundary write missed: a tiny P2P record plus halo refresh. *)
  check Alcotest.bool "some p2p" true (report.Mgacc.Report.gpu_gpu_bytes > 0)

let test_jacobi_halo_exchange () =
  let src =
    {|void main() {
        int n = 2000; double a[n]; double b[n]; int i; int it;
        for (i = 0; i < n; i++) { a[i] = 1.0 * (i % 17); b[i] = 0.0; }
        #pragma acc data copy(a[0:n]) copy(b[0:n])
        {
          for (it = 0; it < 4; it++) {
            #pragma acc parallel loop localaccess(a: stride(1, 1, 1), b: stride(1))
            for (i = 0; i < n; i++) {
              if (i > 0 && i < n - 1) { b[i] = (a[i-1] + a[i] + a[i+1]) / 3.0; }
            }
            #pragma acc parallel loop localaccess(a: stride(1), b: stride(1, 1, 1))
            for (i = 0; i < n; i++) {
              if (i > 0 && i < n - 1) { a[i] = (b[i-1] + b[i] + b[i+1]) / 3.0; }
            }
          }
        }
      }|}
  in
  let ref_env = reference src in
  let env, report = run_acc ~num_gpus:2 src in
  check_floats "a" ref_env env;
  check_floats "b" ref_env env;
  (* Halo refreshes every sweep: small but non-zero P2P traffic. *)
  check Alcotest.bool "halo traffic" true (report.Mgacc.Report.gpu_gpu_bytes > 0);
  check Alcotest.bool "halo traffic small" true
    (report.Mgacc.Report.gpu_gpu_bytes < 8 * 4 * 2 * 16)

let test_stencil2d_row_distribution () =
  (* 2-D arrays (paper §VI future work): rows distribute across GPUs; halo
     rows are exchanged after each sweep. *)
  let src =
    {|void main() {
        int rows = 60; int cols = 40; int it; int r; int c;
        double u[rows][cols];
        double v[rows][cols];
        for (r = 0; r < rows; r++) { for (c = 0; c < cols; c++) { u[r][c] = 1.0 * ((r * 7 + c) % 13); v[r][c] = 0.0; } }
        #pragma acc data copy(u[0:rows*cols]) copy(v[0:rows*cols])
        {
          for (it = 0; it < 3; it++) {
            #pragma acc parallel loop localaccess(u: stride(cols, cols, cols), v: stride(cols))
            for (r = 0; r < rows; r++) {
              if (r > 0 && r < rows - 1) {
                for (c = 1; c < cols - 1; c++) {
                  v[r][c] = 0.25 * (u[r-1][c] + u[r+1][c] + u[r][c-1] + u[r][c+1]);
                }
              }
            }
            #pragma acc parallel loop localaccess(v: stride(cols, cols, cols), u: stride(cols))
            for (r = 0; r < rows; r++) {
              if (r > 0 && r < rows - 1) {
                for (c = 1; c < cols - 1; c++) {
                  u[r][c] = 0.25 * (v[r-1][c] + v[r+1][c] + v[r][c-1] + v[r][c+1]);
                }
              }
            }
          }
        }
      }|}
  in
  let ref_env = reference src in
  let env, report = run_acc ~num_gpus:2 src in
  check_floats "u" ref_env env;
  check_floats "v" ref_env env;
  check Alcotest.bool "halo rows exchanged" true (report.Mgacc.Report.gpu_gpu_bytes > 0);
  (* Traffic is halo rows, not whole grids. *)
  check Alcotest.bool "only halo rows" true
    (report.Mgacc.Report.gpu_gpu_bytes < 6 * 4 * 40 * 8)

(* The same 2-D stencil with an inner parallel column loop: under
   [enable_decomp2d] and 4 GPUs the runtime partitions rows *and* columns
   (2x2 grid) and still matches the sequential reference exactly. *)
let stencil2d_vector_src =
  {|void main() {
      int rows = 48; int cols = 36; int it; int r; int c;
      double u[rows][cols];
      double v[rows][cols];
      for (r = 0; r < rows; r++) { for (c = 0; c < cols; c++) { u[r][c] = 1.0 * ((r * 7 + c) % 13); v[r][c] = 0.0; } }
      #pragma acc data copy(u[0:rows*cols]) copy(v[0:rows*cols])
      {
        for (it = 0; it < 3; it++) {
          #pragma acc parallel loop localaccess(u: stride(cols, cols, cols), v: stride(cols))
          for (r = 0; r < rows; r++) {
            if (r > 0 && r < rows - 1) {
              #pragma acc loop
              for (c = 1; c < cols - 1; c++) {
                v[r][c] = 0.25 * (u[r-1][c] + u[r+1][c] + u[r][c-1] + u[r][c+1]);
              }
            }
          }
          #pragma acc parallel loop localaccess(v: stride(cols, cols, cols), u: stride(cols))
          for (r = 0; r < rows; r++) {
            if (r > 0 && r < rows - 1) {
              #pragma acc loop
              for (c = 1; c < cols - 1; c++) {
                u[r][c] = 0.25 * (v[r-1][c] + v[r+1][c] + v[r][c-1] + v[r][c+1]);
              }
            }
          }
        }
      }
    }|}

let decomp2d_options =
  {
    Mgacc.Kernel_plan.enable_distribution = true;
    enable_layout_transform = true;
    enable_miss_check_elim = true;
    enable_fusion = false;
    enable_decomp2d = true;
  }

let test_stencil2d_2d_decomposition () =
  let ref_env = reference stencil2d_vector_src in
  let m = Mgacc.Machine.cluster ~nodes:2 ~gpus_per_node:2 () in
  let config = Mgacc.Rt_config.make ~num_gpus:4 ~translator:decomp2d_options m in
  let env, report =
    Mgacc.run_acc ~config ~machine:m (Mgacc.parse_string ~name:"t.c" stencil2d_vector_src)
  in
  check_floats "u" ref_env env;
  check_floats "v" ref_env env;
  check Alcotest.bool "halo traffic" true (report.Mgacc.Report.gpu_gpu_bytes > 0)

let test_stencil2d_2d_matches_1d () =
  (* Same program, same machine: the 2-D run must agree with the pinned
     1-D run bit for bit (values never ride the decomposition), and its
     halo exchange must move fewer bytes (O(n/sqrt P) vs O(n) edges). *)
  let m1 = Mgacc.Machine.cluster ~nodes:2 ~gpus_per_node:2 () in
  let config_1d = Mgacc.Rt_config.make ~num_gpus:4 m1 in
  let env1, report1 =
    Mgacc.run_acc ~config:config_1d ~machine:m1
      (Mgacc.parse_string ~name:"t.c" stencil2d_vector_src)
  in
  let m2 = Mgacc.Machine.cluster ~nodes:2 ~gpus_per_node:2 () in
  let config_2d = Mgacc.Rt_config.make ~num_gpus:4 ~translator:decomp2d_options m2 in
  let env2, report2 =
    Mgacc.run_acc ~config:config_2d ~machine:m2
      (Mgacc.parse_string ~name:"t.c" stencil2d_vector_src)
  in
  check (Alcotest.array (Alcotest.float 0.0)) "u identical"
    (Mgacc.float_results env1 "u") (Mgacc.float_results env2 "u");
  check (Alcotest.array (Alcotest.float 0.0)) "v identical"
    (Mgacc.float_results env1 "v") (Mgacc.float_results env2 "v");
  check Alcotest.bool "both exchange halos" true
    (report1.Mgacc.Report.gpu_gpu_bytes > 0 && report2.Mgacc.Report.gpu_gpu_bytes > 0)

let test_inner_vector_improves_occupancy () =
  (* Few outer iterations: without nested parallelism the GPU starves;
     vector lanes on the inner loop recover throughput. *)
  let mk vector_pragma =
    Printf.sprintf
      {|void main() {
          int rows = 128; int cols = 2048; int r; int c;
          double u[rows][cols];
          for (r = 0; r < rows; r++) { for (c = 0; c < cols; c++) { u[r][c] = 1.0; } }
          #pragma acc parallel loop localaccess(u: stride(cols))
          for (r = 0; r < rows; r++) {
            %s
            for (c = 0; c < cols; c++) { u[r][c] = u[r][c] * 2.0 + 1.0; }
          }
        }|}
      vector_pragma
  in
  let flat_src = mk "" and vec_src = mk "#pragma acc loop vector(256)" in
  let ref_env = reference vec_src in
  let env, vec = run_acc ~num_gpus:2 vec_src in
  check_floats "u" ref_env env;
  let _, flat = run_acc ~num_gpus:2 flat_src in
  check Alcotest.bool "vector lanes speed the kernel" true
    (vec.Mgacc.Report.kernel_time *. 2.0 < flat.Mgacc.Report.kernel_time)

let test_window_violation_detected () =
  (* The directive lies: iteration i reads a[i + 5] but declares stride(1). *)
  let src =
    {|void main() {
        int n = 100; double a[n]; double b[n]; int i;
        for (i = 0; i < n; i++) { a[i] = 1.0; }
        #pragma acc parallel loop localaccess(a: stride(1), b: stride(1))
        for (i = 0; i < n; i++) { b[i] = a[(i + 50) % n]; }
      }|}
  in
  match run_acc ~num_gpus:2 src with
  | exception Mgacc_runtime.Launch.Window_violation { array = "a"; _ } -> ()
  | _ -> Alcotest.fail "expected a window violation"

(* ---------------- reductions ---------------- *)

let test_scalar_reduction_across_gpus () =
  let src =
    {|void main() {
        int n = 5000; double x[n]; int i; double s = 100.0; int cnt = 0;
        for (i = 0; i < n; i++) { x[i] = 0.001 * i; }
        #pragma acc data copyin(x[0:n])
        {
          #pragma acc parallel loop reduction(+: s) reduction(+: cnt) localaccess(x: stride(1))
          for (i = 0; i < n; i++) { s += x[i]; if (x[i] > 1.0) { cnt = cnt + 1; } }
        }
      }|}
  in
  let ref_env = reference src in
  let env, _ = run_acc ~num_gpus:2 src in
  let g name = Mgacc.Host_interp.get_scalar env name in
  let r name = Mgacc.Host_interp.get_scalar ref_env name in
  (match (g "s", r "s") with
  | Mgacc.Host_interp.Vfloat a, Mgacc.Host_interp.Vfloat b ->
      check (Alcotest.float 1e-6) "sum" b a
  | _ -> Alcotest.fail "s kind");
  match (g "cnt", r "cnt") with
  | Mgacc.Host_interp.Vint a, Mgacc.Host_interp.Vint b -> check Alcotest.int "count" b a
  | _ -> Alcotest.fail "cnt kind"

let test_reduction_to_array () =
  let src =
    {|void main() {
        int n = 3000; int bins = 16; double x[n]; double hist[bins]; int i;
        int seed = 9;
        for (i = 0; i < n; i++) {
          seed = (seed * 1103515245 + 12345) % 2147483648;
          x[i] = (seed % 100) / 100.0;
        }
        for (i = 0; i < bins; i++) { hist[i] = 0.0; }
        #pragma acc data copyin(x[0:n]) copy(hist[0:bins])
        {
          #pragma acc parallel loop localaccess(x: stride(1))
          for (i = 0; i < n; i++) {
            int b = (int)(x[i] * 16.0);
            #pragma acc reductiontoarray(+: hist)
            hist[b] += 1.0;
          }
        }
      }|}
  in
  let ref_env = reference src in
  let env, report = run_acc ~num_gpus:2 src in
  check_floats "hist" ref_env env;
  (* Partials travel between GPUs. *)
  check Alcotest.bool "reduction traffic" true (report.Mgacc.Report.gpu_gpu_bytes > 0);
  (* The whole histogram arrived. *)
  let total = Array.fold_left ( +. ) 0.0 (Mgacc.float_results env "hist") in
  check (Alcotest.float 1e-9) "mass conserved" 3000.0 total

(* ---------------- update directives & regions ---------------- *)

let test_update_directives () =
  let src =
    {|void main() {
        int n = 500; double a[n]; int i;
        for (i = 0; i < n; i++) { a[i] = 1.0; }
        #pragma acc data copy(a[0:n])
        {
          #pragma acc parallel loop localaccess(a: stride(1))
          for (i = 0; i < n; i++) { a[i] = a[i] + 1.0; }
          #pragma acc update host(a[0:n])
          ;
          for (i = 0; i < n; i++) { a[i] = a[i] * 2.0; }
          #pragma acc update device(a[0:n])
          ;
          #pragma acc parallel loop localaccess(a: stride(1))
          for (i = 0; i < n; i++) { a[i] = a[i] + 0.5; }
        }
      }|}
  in
  let ref_env = reference src in
  let env, _ = run_acc ~num_gpus:2 src in
  check_floats "a" ref_env env;
  let a = Mgacc.float_results env "a" in
  check (Alcotest.float 1e-12) "value" 4.5 a.(0)

let test_enter_exit_data () =
  (* Unstructured data lifetimes: enter data pins the array on the device
     across arbitrary control flow; exit data copies out and releases. *)
  let src =
    {|void main() {
        int n = 2000; double a[n]; int i; int it;
        for (i = 0; i < n; i++) { a[i] = 1.0 * i; }
        #pragma acc enter data copyin(a[0:n])
        ;
        for (it = 0; it < 5; it++) {
          #pragma acc parallel loop localaccess(a: stride(1))
          for (i = 0; i < n; i++) { a[i] = a[i] + 1.0; }
        }
        #pragma acc exit data copyout(a[0:n])
        ;
      }|}
  in
  let ref_env = reference src in
  let env, report = run_acc ~num_gpus:2 src in
  check_floats "a" ref_env env;
  (* One load, one copyout: 2 x 16000 bytes. *)
  check Alcotest.int "no per-loop thrash" 32000 report.Mgacc.Report.cpu_gpu_bytes

let test_if_clause_host_fallback () =
  (* The second loop's if(n > 5000) is false: it must run on the host with
     the device copy flushed out and reloaded around it. *)
  let src =
    {|void main() {
        int n = 1000; double a[n]; int i;
        for (i = 0; i < n; i++) { a[i] = 1.0; }
        #pragma acc data copy(a[0:n])
        {
          #pragma acc parallel loop localaccess(a: stride(1))
          for (i = 0; i < n; i++) { a[i] = a[i] + 1.0; }
          #pragma acc parallel loop if(n > 5000) localaccess(a: stride(1))
          for (i = 0; i < n; i++) { a[i] = a[i] * 10.0; }
          #pragma acc parallel loop if(n > 500) localaccess(a: stride(1))
          for (i = 0; i < n; i++) { a[i] = a[i] + 0.5; }
        }
      }|}
  in
  let ref_env = reference src in
  let env, report = run_acc ~num_gpus:2 src in
  check_floats "a" ref_env env;
  let a = Mgacc.float_results env "a" in
  check (Alcotest.float 1e-12) "all three loops ran" 20.5 a.(0);
  (* The host bounce costs extra CPU-GPU traffic: flush + reload of a. *)
  check Alcotest.bool "bounce traffic charged" true
    (report.Mgacc.Report.cpu_gpu_bytes >= 4 * 8000)

let test_oom_and_distribution_capacity () =
  (* A machine with tiny (1 MB) GPUs: a 1.6 MB replicated array cannot fit
     one GPU, but distributed over two it can — the "more GPUs, more
     memory" benefit the paper highlights. *)
  let tiny_gpu = { Mgacc.Spec.tesla_c2075 with Mgacc.Spec.mem_capacity = 1024 * 1024 } in
  let mk n =
    Mgacc.Machine.custom ~name:"tiny" ~cpu:Mgacc.Spec.core_i7_970 ~gpu:tiny_gpu
      ~link:Mgacc.Spec.pcie_gen2_desktop ~num_gpus:n ~omp_threads:4 ()
  in
  let src =
    {|void main() {
        int n = 200000; double a[n]; int i;
        #pragma acc parallel loop localaccess(a: stride(1))
        for (i = 0; i < n; i++) { a[i] = 1.0 * i; }
      }|}
  in
  let program = Mgacc.parse_string ~name:"t" src in
  (match Mgacc.run_acc ~machine:(mk 1) program with
  | exception Mgacc.Memory.Out_of_device_memory _ -> ()
  | _ -> Alcotest.fail "expected device OOM on one tiny GPU");
  (* Two GPUs hold ~0.8 MB each: fits. *)
  let env, _ = Mgacc.run_acc ~machine:(mk 2) program in
  let a = Mgacc.float_results env "a" in
  check (Alcotest.float 1e-12) "computed" 199999.0 a.(199999)

let suite =
  [
    tc "saxpy: correct on 1 and 2 GPUs" test_saxpy_all_gpu_counts;
    tc "distribution policy shrinks footprints" test_distribution_shrinks_memory;
    tc "data loader reuses unchanged placements" test_iterative_reuse;
    tc "replicated scatter reconciles via dirty bits" test_replicated_scatter;
    tc "dirty chunk size changes traffic" test_chunk_size_changes_traffic;
    tc "single-level dirty ships more" test_single_level_ships_more;
    tc "write misses forward to the owner" test_write_miss_forwarding;
    tc "jacobi: halo exchange" test_jacobi_halo_exchange;
    tc "2-D stencil: row distribution and halo rows" test_stencil2d_row_distribution;
    tc "2-D stencil: 2-D block decomposition matches reference" test_stencil2d_2d_decomposition;
    tc "2-D stencil: 2-D run identical to 1-D, halos exchanged" test_stencil2d_2d_matches_1d;
    tc "nested parallelism: vector lanes raise occupancy" test_inner_vector_improves_occupancy;
    tc "lying localaccess directives are caught" test_window_violation_detected;
    tc "scalar reductions merge across GPUs" test_scalar_reduction_across_gpus;
    tc "reductiontoarray: histogram" test_reduction_to_array;
    tc "update host/device directives" test_update_directives;
    tc "enter/exit data: unstructured lifetimes" test_enter_exit_data;
    tc "if clause: host fallback with data bounce" test_if_clause_host_fallback;
    tc "device OOM and distribution capacity" test_oom_and_distribution_capacity;
  ]
