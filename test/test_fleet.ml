(* Fleet service tests: re-entrant sessions on a shared machine, the
   compile-once plan cache, device-memory admission with warm-pool
   eviction/spill, the scheduling policies, and the pinned guarantees —
   back-to-back runs on one machine match fresh-machine runs, and a
   single fleet job reproduces the direct runtime bit-for-bit. *)

module Machine = Mgacc_gpusim.Machine
module Memory = Mgacc_gpusim.Memory
module View = Mgacc_exec.View
open Mgacc_runtime
module Fleet = Mgacc_fleet.Fleet
module Job = Mgacc_fleet.Job
module Plan_cache = Mgacc_fleet.Plan_cache
module Admission = Mgacc_fleet.Admission

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let saxpy_src =
  {|void main() {
      int n = 4000; double x[n]; double y[n]; double a = 3.0; int i;
      for (i = 0; i < n; i++) { x[i] = 0.5 * i; y[i] = 1.0; }
      #pragma acc data copyin(x[0:n]) copy(y[0:n])
      {
        #pragma acc parallel loop localaccess(x: stride(1), y: stride(1))
        for (i = 0; i < n; i++) { y[i] = y[i] + a * x[i]; }
      }
    }|}

(* A deliberately heavier program, so SJF has something to reorder. *)
let long_src =
  {|void main() {
      int n = 20000; int reps = 8; double x[n]; double y[n]; int i; int r;
      for (i = 0; i < n; i++) { x[i] = 0.25 * i; y[i] = 0.0; }
      #pragma acc data copyin(x[0:n]) copy(y[0:n])
      {
        for (r = 0; r < reps; r++) {
          #pragma acc parallel loop localaccess(x: stride(1), y: stride(1))
          for (i = 0; i < n; i++) { y[i] = y[i] + 1.5 * x[i]; }
        }
      }
    }|}

let cluster () = Machine.cluster ~nodes:2 ~gpus_per_node:2 ()

let job ?(tenant = "t0") ?(name = "job") ?(src = saxpy_src) id submit =
  Job.make ~id ~tenant ~name ~source:src ~submit

(* ---------------- back-to-back runs on one machine ---------------- *)

(* The pinned regression for the runtime's old leak: machine timelines
   carry monotonic availability cursors, so before [Acc_runtime.run]
   reset them a second run on the same machine started late and reported
   different times than a fresh process would. *)
let test_back_to_back_machine_reuse () =
  let program = Mgacc.parse_string ~name:"saxpy.c" saxpy_src in
  let shared = Machine.desktop () in
  let cfg m = Rt_config.make ~num_gpus:2 m in
  let _, first = Mgacc.run_acc ~config:(cfg shared) ~machine:shared program in
  let _, second = Mgacc.run_acc ~config:(cfg shared) ~machine:shared program in
  let fresh_machine = Machine.desktop () in
  let _, fresh = Mgacc.run_acc ~config:(cfg fresh_machine) ~machine:fresh_machine program in
  check Alcotest.bool "second run identical to a fresh-process run" true (second = fresh);
  check Alcotest.bool "first run identical too" true (first = fresh)

let test_session_start_offsets_clock () =
  let program = Mgacc.parse_string ~name:"saxpy.c" saxpy_src in
  let plans = Mgacc.compile program in
  let cfg = Rt_config.make ~num_gpus:2 (Machine.desktop ()) in
  let s = Session.create ~tenant:"alice" ~start:1.5 cfg plans in
  check (Alcotest.float 0.0) "clock starts at start" 1.5 (Session.now s);
  check (Alcotest.float 0.0) "elapsed 0 before work" 0.0 (Session.elapsed s);
  check Alcotest.string "tenant recorded" "alice" (Session.tenant s);
  (match Session.create ~start:(-1.0) cfg plans with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative start accepted");
  ignore (Acc_runtime.execute s program);
  check Alcotest.bool "clock advanced past start" true (Session.now s > 1.5);
  check Alcotest.bool "elapsed is relative to start" true
    (Session.elapsed s > 0.0 && Session.elapsed s < Session.now s)

(* ---------------- plan cache ---------------- *)

let source_of_params (n, a) =
  Printf.sprintf
    {|void main() {
        int n = %d; double x[n]; double y[n]; int i;
        for (i = 0; i < n; i++) { x[i] = 0.5 * i; y[i] = 1.0; }
        #pragma acc data copyin(x[0:n]) copy(y[0:n])
        {
          #pragma acc parallel loop localaccess(x: stride(1), y: stride(1))
          for (i = 0; i < n; i++) { y[i] = y[i] + %d.0 * x[i]; }
        }
      }|}
    n a

(* A structural projection of a program plan: what "the same plan"
   must mean observably (physical identity is checked separately). *)
let plan_shape plans =
  List.map
    (fun (p : Mgacc.Kernel_plan.t) ->
      ( p.Mgacc.Kernel_plan.loop.Mgacc.Loop_info.loop_id,
        Mgacc.Kernel_plan.thread_multiplier p,
        List.map (fun (c : Mgacc.Array_config.t) -> c.Mgacc.Array_config.array)
          p.Mgacc.Kernel_plan.configs ))
    (Mgacc.Program_plan.all_plans plans)

let gen_cache_params = QCheck2.Gen.(pair (int_range 64 4096) (int_range 1 9))

let prop_cache_hit_bit_identical params =
  let src = source_of_params params in
  let cache = Plan_cache.create () in
  let e1, hit1 = Plan_cache.lookup ~name:"p.c" cache src in
  let e2, hit2 = Plan_cache.lookup ~name:"p.c" cache src in
  let fresh = Mgacc.compile (Mgacc.parse_string ~name:"p.c" src) in
  (not hit1) && hit2
  && e1 == e2 (* the entry itself is reused *)
  && e1.Plan_cache.plans == e2.Plan_cache.plans (* physically the same plan *)
  && plan_shape e1.Plan_cache.plans = plan_shape fresh
  && Plan_cache.hits cache = 1
  && Plan_cache.misses cache = 1
  && Plan_cache.size cache = 1

let test_cache_distinguishes_sources_and_options () =
  let cache = Plan_cache.create () in
  let _, h1 = Plan_cache.lookup ~name:"a.c" cache saxpy_src in
  let _, h2 = Plan_cache.lookup ~name:"b.c" cache long_src in
  check Alcotest.bool "both fresh" false (h1 || h2);
  check Alcotest.int "two entries" 2 (Plan_cache.size cache);
  let opts = Mgacc.Kernel_plan.default_options in
  let k1 = Plan_cache.fingerprint ~options:opts ~source:saxpy_src () in
  let k2 = Plan_cache.fingerprint ~options:opts ~source:long_src () in
  check Alcotest.bool "distinct sources, distinct keys" true (k1 <> k2);
  let opts' = { opts with Mgacc.Kernel_plan.enable_distribution = false } in
  let k3 = Plan_cache.fingerprint ~options:opts' ~source:saxpy_src () in
  check Alcotest.bool "distinct options, distinct keys" true (k1 <> k3)

let test_cache_distinguishes_machine_and_decomp () =
  (* Non-aliasing: a plan for a 2-D launch on an 8x4 fat-tree must never
     be served for a 1-D run on the desktop from the same source. *)
  let opts = Mgacc.Kernel_plan.default_options in
  let k_plain = Plan_cache.fingerprint ~options:opts ~source:saxpy_src () in
  let k_fat = Plan_cache.fingerprint ~machine:"fattree:8x4" ~options:opts ~source:saxpy_src () in
  let k_mesh = Plan_cache.fingerprint ~machine:"nvmesh:8x4" ~options:opts ~source:saxpy_src () in
  check Alcotest.bool "machine shape is part of the key" true
    (k_plain <> k_fat && k_fat <> k_mesh);
  let opts2d = { opts with Mgacc.Kernel_plan.enable_decomp2d = true } in
  let k_fat2d =
    Plan_cache.fingerprint ~machine:"fattree:8x4" ~options:opts2d ~source:saxpy_src ()
  in
  check Alcotest.bool "decomposition is part of the key" true (k_fat <> k_fat2d);
  let cache = Plan_cache.create () in
  let e1, h1 = Plan_cache.lookup ~machine:"fattree:8x4" ~name:"a.c" cache saxpy_src in
  let e2, h2 = Plan_cache.lookup ~machine:"cluster:2x2" ~name:"a.c" cache saxpy_src in
  let e3, h3 = Plan_cache.lookup ~machine:"fattree:8x4" ~name:"a.c" cache saxpy_src in
  check Alcotest.bool "different shapes miss separately" false (h1 || h2);
  check Alcotest.bool "same shape hits" true h3;
  check Alcotest.bool "entries distinct across shapes" true (e1 != e2);
  check Alcotest.bool "entry reused within a shape" true (e1 == e3);
  check Alcotest.int "two entries" 2 (Plan_cache.size cache)

let test_cache_measurements () =
  let cache = Plan_cache.create () in
  let e, _ = Plan_cache.lookup ~name:"a.c" cache saxpy_src in
  check Alcotest.bool "no profile yet" true
    (e.Plan_cache.measured_seconds = None && e.Plan_cache.footprint_bytes = None);
  Plan_cache.record_measurement e ~seconds:0.25 ~footprint_bytes:4096;
  check Alcotest.bool "profile stored" true
    (e.Plan_cache.measured_seconds = Some 0.25 && e.Plan_cache.footprint_bytes = Some 4096);
  Plan_cache.record_measurement e ~seconds:0.5 ~footprint_bytes:0;
  check Alcotest.bool "non-positive footprint keeps previous" true
    (e.Plan_cache.measured_seconds = Some 0.5 && e.Plan_cache.footprint_bytes = Some 4096)

(* ---------------- darray spill / restore ---------------- *)

let test_spill_then_restore_value_identical () =
  let cfg = Rt_config.make ~num_gpus:2 (Machine.desktop ()) in
  let host = View.of_float_array ~name:"x" [| 1.0; 2.0; 3.0; 4.0 |] in
  let da = Darray.create cfg ~name:"x" ~host in
  let _ = Darray.ensure_replicated cfg da ~dirty_tracking:false in
  (* The device computes new values (all replicas agree, as after a
     reconciled launch)... *)
  let r = Darray.replica_of da in
  Array.iter
    (fun buf ->
      let d = Memory.float_data buf in
      Array.iteri (fun i _ -> d.(i) <- 10.0 *. float_of_int (i + 1)) d)
    r.Darray.bufs;
  Darray.mark_device_written da;
  let bytes_before = Session.darray_device_bytes da in
  check Alcotest.bool "device bytes pinned" true (bytes_before > 0);
  (* ...the fleet evicts it: dirty data must land in the host view. *)
  let xfers = Darray.spill_to_host cfg da in
  check Alcotest.bool "spill ships something" true (xfers <> []);
  List.iter
    (fun (x : Darray.xfer) ->
      check Alcotest.bool "spill tag" true (Filename.check_suffix x.Darray.tag ":spill"))
    xfers;
  check Alcotest.bool "device storage freed" true (da.Darray.state = Darray.Unallocated);
  check Alcotest.int "nothing left pinned" 0 (Session.darray_device_bytes da);
  check
    (Alcotest.array (Alcotest.float 0.0))
    "host holds the device values bit-for-bit"
    [| 10.0; 20.0; 30.0; 40.0 |]
    (View.snapshot_f host);
  (* A later touch transparently reloads: values identical again. *)
  let _ = Darray.ensure_replicated cfg da ~dirty_tracking:false in
  let r2 = Darray.replica_of da in
  Array.iter
    (fun buf ->
      check
        (Alcotest.array (Alcotest.float 0.0))
        "restored replica identical" [| 10.0; 20.0; 30.0; 40.0 |]
        (Memory.float_data buf))
    r2.Darray.bufs

let test_session_spill_all () =
  let program = Mgacc.parse_string ~name:"saxpy.c" saxpy_src in
  let plans = Mgacc.compile program in
  let cfg = Rt_config.make ~num_gpus:2 ~keep_resident:true (Machine.desktop ()) in
  let s = Session.create cfg plans in
  ignore (Acc_runtime.execute s program);
  check Alcotest.bool "warm pool resident after keep_resident finish" true
    (Session.resident_bytes s > 0);
  let _ = Session.spill_all s in
  check Alcotest.int "everything evicted" 0 (Session.resident_bytes s)

(* ---------------- admission ledger ---------------- *)

let no_spill () = []

let test_admission_basic () =
  let a = Admission.create ~budget:100 in
  (match Admission.admit a ~job:1 ~bytes:60 with
  | Admission.Admitted [] -> ()
  | _ -> Alcotest.fail "job 1 should be admitted without evictions");
  check Alcotest.int "active" 60 (Admission.active_bytes a);
  (match Admission.admit a ~job:2 ~bytes:60 with
  | Admission.Must_wait -> ()
  | _ -> Alcotest.fail "job 2 must wait behind job 1");
  (match Admission.admit a ~job:3 ~bytes:200 with
  | Admission.Impossible -> ()
  | _ -> Alcotest.fail "a job above the whole budget is impossible");
  Admission.release a ~job:1 ~warm:None;
  check Alcotest.int "freed" 100 (Admission.free_bytes a);
  (match Admission.admit a ~job:2 ~bytes:60 with
  | Admission.Admitted [] -> ()
  | _ -> Alcotest.fail "job 2 fits after the release");
  match Admission.release a ~job:99 ~warm:None with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "releasing a non-active job should raise"

let test_admission_warm_eviction () =
  let a = Admission.create ~budget:100 in
  let spilled = ref false in
  let dirty_spill () =
    spilled := true;
    [ { Darray.dir = Mgacc_gpusim.Fabric.D2h 0; bytes = 17; tag = "x:spill" } ]
  in
  (match Admission.admit a ~job:1 ~bytes:70 with
  | Admission.Admitted [] -> ()
  | _ -> Alcotest.fail "admit job 1");
  Admission.release a ~job:1 ~warm:(Some dirty_spill);
  check Alcotest.int "warm pool holds the reservation" 70 (Admission.warm_bytes a);
  check Alcotest.int "warm entry counted" 1 (Admission.warm_count a);
  check Alcotest.bool "spill is lazy" false !spilled;
  (* A newcomer that fits beside the pool does not evict it. *)
  (match Admission.admit a ~job:2 ~bytes:20 with
  | Admission.Admitted [] -> ()
  | _ -> Alcotest.fail "job 2 fits without eviction");
  (* One that does not fit evicts oldest-first and inherits the spill. *)
  (match Admission.admit a ~job:3 ~bytes:50 with
  | Admission.Admitted [ x ] ->
      check Alcotest.bool "spill thunk ran" true !spilled;
      check Alcotest.int "spill bytes surfaced" 17 x.Darray.bytes
  | _ -> Alcotest.fail "job 3 should evict the warm pool");
  check Alcotest.int "one eviction" 1 (Admission.evictions a);
  check Alcotest.int "dirty bytes accounted" 17 (Admission.spilled_bytes a);
  check Alcotest.int "no warm pools left" 0 (Admission.warm_count a)

let test_admission_clean_eviction_is_free () =
  let a = Admission.create ~budget:100 in
  (match Admission.admit a ~job:1 ~bytes:90 with
  | Admission.Admitted [] -> ()
  | _ -> Alcotest.fail "admit job 1");
  Admission.release a ~job:1 ~warm:(Some no_spill);
  (match Admission.admit a ~job:2 ~bytes:50 with
  | Admission.Admitted [] -> ()
  | _ -> Alcotest.fail "clean eviction ships nothing");
  check Alcotest.int "eviction still counted" 1 (Admission.evictions a);
  check Alcotest.int "but no dirty bytes" 0 (Admission.spilled_bytes a)

(* ---------------- the fleet loop ---------------- *)

let test_single_job_matches_direct_run () =
  let config = Fleet.configure ~keep_warm:false (cluster ()) in
  let outcome = Fleet.run config [ job ~name:"saxpy" 0 0.0 ] in
  let direct_machine = cluster () in
  let _, direct =
    Mgacc.run_acc
      ~config:(Rt_config.make ~num_gpus:4 direct_machine)
      ~machine:direct_machine
      (Mgacc.parse_string ~name:"saxpy" saxpy_src)
  in
  match outcome.Fleet.jobs with
  | [ r ] ->
      check Alcotest.bool "no queueing for a lone job" true (Fleet.wait_of r = 0.0);
      let normalized = { r.Fleet.report with Report.variant = direct.Report.variant } in
      check Alcotest.bool "report bit-identical to the direct runtime" true (normalized = direct)
  | _ -> Alcotest.fail "expected exactly one job result"

let test_fleet_outcome_shape () =
  let config = Fleet.configure ~policy:Fleet.Fifo (cluster ()) in
  let jobs =
    [
      job ~tenant:"alice" ~name:"j0" 0 0.0;
      job ~tenant:"bob" ~name:"j1" 1 1e-6;
      job ~tenant:"alice" ~name:"j2" 2 2e-6;
    ]
  in
  let o = Fleet.run config jobs in
  check Alcotest.int "all jobs completed" 3 o.Fleet.stats.Fleet.job_count;
  check Alcotest.int "one compile, two cache hits" 2 o.Fleet.stats.Fleet.cache_hits;
  check Alcotest.int "one miss" 1 o.Fleet.stats.Fleet.cache_misses;
  List.iter
    (fun r ->
      check Alcotest.bool "wait nonnegative" true (Fleet.wait_of r >= 0.0);
      check Alcotest.bool "finish after admit" true (r.Fleet.finish_time >= r.Fleet.admit_time);
      check Alcotest.bool "queue wait lands in the report" true
        (Float.abs (r.Fleet.report.Report.queue_seconds -. Fleet.wait_of r) < 1e-12))
    o.Fleet.jobs;
  check Alcotest.int "two tenants" 2 (List.length o.Fleet.tenants);
  check Alcotest.bool "fairness in (0, 1]" true
    (o.Fleet.stats.Fleet.fairness > 0.0 && o.Fleet.stats.Fleet.fairness <= 1.0 +. 1e-12);
  check Alcotest.bool "throughput positive" true (o.Fleet.stats.Fleet.throughput > 0.0);
  (* Determinism: replaying the same trace reproduces the outcome. *)
  let o2 = Fleet.run (Fleet.configure ~policy:Fleet.Fifo (cluster ())) jobs in
  check Alcotest.bool "replay is bit-identical" true
    (Fleet.to_json o = Fleet.to_json o2)

let test_sjf_reorders_backlog () =
  let cache = Plan_cache.create () in
  (* Warm the cache so SJF ranks by measured durations. *)
  ignore
    (Fleet.run ~cache
       (Fleet.configure (cluster ()))
       [ job ~name:"long" ~src:long_src 0 0.0; job ~name:"short" ~src:saxpy_src 1 0.0 ]);
  let burst =
    [
      job ~tenant:"a" ~name:"long" ~src:long_src 0 0.0;
      job ~tenant:"b" ~name:"long" ~src:long_src 1 1e-6;
      job ~tenant:"c" ~name:"short" ~src:saxpy_src 2 2e-6;
    ]
  in
  let fifo = Fleet.run ~cache (Fleet.configure ~policy:Fleet.Fifo (cluster ())) burst in
  let sjf = Fleet.run ~cache (Fleet.configure ~policy:Fleet.Sjf (cluster ())) burst in
  check Alcotest.bool "sjf cuts mean wait on a long/short backlog" true
    (sjf.Fleet.stats.Fleet.mean_wait < fifo.Fleet.stats.Fleet.mean_wait);
  let admit o id =
    (List.find (fun r -> r.Fleet.spec.Job.id = id) o.Fleet.jobs).Fleet.admit_time
  in
  check Alcotest.bool "fifo keeps submit order" true (admit fifo 1 < admit fifo 2);
  check Alcotest.bool "sjf admits the short job first" true (admit sjf 2 < admit sjf 1)

let test_fair_share_interleaves_tenants () =
  let burst =
    [
      job ~tenant:"a" ~name:"j0" 0 0.0;
      job ~tenant:"a" ~name:"j1" 1 1e-6;
      job ~tenant:"b" ~name:"j2" 2 2e-6;
    ]
  in
  let fifo = Fleet.run (Fleet.configure ~policy:Fleet.Fifo (cluster ())) burst in
  let fair = Fleet.run (Fleet.configure ~policy:Fleet.Fair (cluster ())) burst in
  let admit o id =
    (List.find (fun r -> r.Fleet.spec.Job.id = id) o.Fleet.jobs).Fleet.admit_time
  in
  check Alcotest.bool "fifo runs tenant a's backlog first" true (admit fifo 1 < admit fifo 2);
  check Alcotest.bool "fair lets the idle tenant in first" true (admit fair 2 < admit fair 1)

let test_warm_pool_eviction_under_pressure () =
  let cache = Plan_cache.create () in
  (* Measure the program's footprint once. *)
  ignore (Fleet.run ~cache (Fleet.configure (cluster ())) [ job 0 0.0 ]);
  let entry, _ =
    Plan_cache.lookup ~machine:(cluster ()).Machine.name ~name:"job" cache saxpy_src
  in
  let footprint =
    match entry.Plan_cache.footprint_bytes with
    | Some b -> b
    | None -> Alcotest.fail "fleet run should record a footprint"
  in
  check Alcotest.bool "footprint measured" true (footprint > 0);
  (* A budget that fits one warm pool plus one active job, but not two
     pools: each admission beyond the first evicts the previous pool. *)
  let config = Fleet.configure ~mem_budget:(2 * footprint) (cluster ()) in
  let o = Fleet.run ~cache config [ job 0 0.0; job 1 1e-6; job 2 2e-6 ] in
  check Alcotest.bool "pressure forced evictions" true (o.Fleet.stats.Fleet.evictions > 0);
  check Alcotest.int "all jobs still completed" 3 o.Fleet.stats.Fleet.job_count

let test_deadlock_on_impossible_footprint () =
  let config =
    Fleet.configure ~mem_budget:1024 ~default_footprint:(1024 * 1024) (cluster ())
  in
  match Fleet.run config [ job 7 0.0 ] with
  | exception Fleet.Deadlock { job = id; reason } ->
      check Alcotest.int "deadlock names the job" 7 id;
      check Alcotest.bool "reason mentions the budget" true
        (String.length reason > 0)
  | _ -> Alcotest.fail "an over-budget job must deadlock loudly"

let test_watchdog_fires_on_stuck_queue () =
  let config = Fleet.configure ~watchdog_seconds:1e-9 (cluster ()) in
  let jobs = [ job 0 0.0; job 1 0.0; job 2 0.0 ] in
  match Fleet.run config jobs with
  | exception Fleet.Deadlock { job = id; _ } ->
      check Alcotest.bool "watchdog names a queued job" true (id = 1 || id = 2)
  | _ -> Alcotest.fail "a microscopic watchdog must fire on any backlog"

(* ---------------- job traces ---------------- *)

let test_load_trace () =
  let dir = Filename.temp_file "fleet" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let write path contents =
    let oc = open_out (Filename.concat dir path) in
    output_string oc contents;
    close_out oc
  in
  write "p.c" saxpy_src;
  write "trace.txt" "# a comment\n\n0.0 alice p.c\n0.5 bob p.c\n";
  let jobs = Job.load_trace (Filename.concat dir "trace.txt") in
  (match jobs with
  | [ a; b ] ->
      check Alcotest.int "ids in file order" 0 a.Job.id;
      check Alcotest.string "tenant" "alice" a.Job.tenant;
      check Alcotest.string "tenant" "bob" b.Job.tenant;
      check (Alcotest.float 0.0) "submit" 0.5 b.Job.submit;
      check Alcotest.string "source read from disk" saxpy_src a.Job.source
  | _ -> Alcotest.failf "expected 2 jobs, got %d" (List.length jobs));
  write "bad.txt" "not-a-number alice p.c\n";
  (match Job.load_trace (Filename.concat dir "bad.txt") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "malformed trace line should raise");
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let suite =
  [
    tc "back-to-back runs on one machine match fresh runs" test_back_to_back_machine_reuse;
    tc "sessions start at their admission instant" test_session_start_offsets_clock;
    qtest ~count:25 "plan cache: hit is bit-identical to fresh compile" gen_cache_params
      prop_cache_hit_bit_identical;
    tc "plan cache keys on source and options" test_cache_distinguishes_sources_and_options;
    tc "plan cache keys on machine shape and decomposition"
      test_cache_distinguishes_machine_and_decomp;
    tc "plan cache execution profiles" test_cache_measurements;
    tc "spilled-then-restored darray is value-identical" test_spill_then_restore_value_identical;
    tc "session spill_all empties the warm pool" test_session_spill_all;
    tc "admission: budget, waiting, impossibility" test_admission_basic;
    tc "admission: warm eviction runs the spill" test_admission_warm_eviction;
    tc "admission: clean eviction ships nothing" test_admission_clean_eviction_is_free;
    tc "one fleet job reproduces the direct runtime" test_single_job_matches_direct_run;
    tc "fleet outcome: metrics, tenants, determinism" test_fleet_outcome_shape;
    tc "sjf reorders a long/short backlog" test_sjf_reorders_backlog;
    tc "fair-share interleaves tenants" test_fair_share_interleaves_tenants;
    tc "memory pressure evicts warm pools" test_warm_pool_eviction_under_pressure;
    tc "over-budget job deadlocks loudly" test_deadlock_on_impossible_footprint;
    tc "simulated-time watchdog fires" test_watchdog_fires_on_stuck_queue;
  ]
