(* Tests for the translator's cost-model-guided fusion pass (--fuse on):
   the off-switch identity guarantee, functional equivalence on generated
   straight-line programs, one unit test per legality/profitability
   rejection rule, temporary contraction on the fusion-friendly apps,
   plan-cache non-aliasing of fused vs unfused plans, transparency of the
   consumer-lookahead memo tables, and the fused span labels the blame
   pass attributes through. See docs/FUSION.md. *)

open Mgacc_apps
module Kernel_plan = Mgacc.Kernel_plan
module Program_plan = Mgacc.Program_plan
module Plan_cache = Mgacc_fleet.Plan_cache

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f
let cluster4 () = Mgacc.Machine.cluster ~nodes:2 ~gpus_per_node:2 ()
let fuse_on = { Kernel_plan.default_options with Kernel_plan.enable_fusion = true }
let plan_src ?(options = fuse_on) src =
  Mgacc.compile ~options (Mgacc.parse_string ~name:"fuse.c" src)

let md_small = Fusionable.md { Fusionable.particles = 4000; steps = 3 }

let kmeans_small =
  Fusionable.kmeans { Fusionable.points = 2000; clusters = 4; iterations = 2 }

(* ---------------- functional equivalence (property) ---------------- *)

(* Three-loop chains over shared arrays. Shape 0 is fully fusable;
   shape 1 reads across the seam (b[i+1]: legality must refuse and fall
   back to three kernels); shape 2 mismatches the iteration spaces. In
   every case --fuse on must produce bitwise-identical host arrays. *)
let program_of (n, k, shape) =
  let m = n / 2 in
  let second_header, second_read =
    match shape mod 3 with
    | 0 -> ("i = 0; i < n; i++", "b[i]")
    | 1 -> ("i = 0; i < n; i++", "b[i + 1]")
    | _ -> (Printf.sprintf "i = 0; i < %d; i++" m, "b[i]")
  in
  Printf.sprintf
    {|void main() {
  int n = %d;
  double a[n + 1]; double b[n + 1]; double c[n + 1]; int i;
  for (i = 0; i < n + 1; i++) { a[i] = 0.25 * i + 1.0; b[i] = 0.5; c[i] = 0.0; }
  #pragma acc parallel loop
  for (i = 0; i < n; i++) { b[i] = a[i] * %d.0 + 1.5; }
  #pragma acc parallel loop
  for (%s) { c[i] = %s + a[i]; }
  #pragma acc parallel loop
  for (i = 0; i < n; i++) { a[i] = c[i] * 0.5; }
}|}
    n k second_header second_read

let run_fused ~fuse ~num_gpus source =
  let program = Mgacc.parse_string ~name:"gen.c" source in
  let machine = Mgacc.Machine.supernode () in
  let translator = { Kernel_plan.default_options with Kernel_plan.enable_fusion = fuse } in
  let config = Mgacc.Rt_config.make ~num_gpus ~translator machine in
  let env, _ = Mgacc.run_acc ~config ~machine program in
  List.map (fun a -> Mgacc.float_results env a) [ "a"; "b"; "c" ]

let gen_case =
  QCheck2.Gen.(
    int_range 16 200 >>= fun n ->
    int_range 2 9 >>= fun k ->
    int_range 0 1000 >>= fun shape -> return (n, k, shape))

let test_qcheck_fused_equals_unfused =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"--fuse on == off element-wise on loop chains"
       gen_case (fun ((_, _, shape) as case) ->
         let src = program_of case in
         let gpus = 2 + (shape mod 2) in
         let off = run_fused ~fuse:false ~num_gpus:gpus src in
         let on = run_fused ~fuse:true ~num_gpus:gpus src in
         List.for_all2 (fun a b -> Array.for_all2 Float.equal a b) off on))

(* ---------------- legality and profitability rejections ---------------- *)

let fusable_pair =
  {|void main() {
  int n = 1000;
  double a[n]; double b[n]; double c[n]; int i;
  for (i = 0; i < n; i++) { a[i] = i * 0.5; }
  #pragma acc parallel loop
  for (i = 0; i < n; i++) { b[i] = a[i] * 2.0; }
  #pragma acc parallel loop
  for (i = 0; i < n; i++) { c[i] = b[i] + 1.0; }
}|}

let test_fuses_compatible_pair () =
  check Alcotest.int "two compatible maps become one kernel" 1
    (Program_plan.loop_count (plan_src fusable_pair));
  (* and the pass is inert when the flag is off *)
  check Alcotest.int "flag off: two kernels" 2
    (Program_plan.loop_count (plan_src ~options:Kernel_plan.default_options fusable_pair))

let test_rejects_mismatched_bounds () =
  let src =
    {|void main() {
  int n = 1000;
  double a[n]; double b[n]; double c[n]; int i;
  for (i = 0; i < n; i++) { a[i] = i * 0.5; }
  #pragma acc parallel loop
  for (i = 0; i < n; i++) { b[i] = a[i] * 2.0; }
  #pragma acc parallel loop
  for (i = 0; i < n / 2; i++) { c[i] = b[i] + 1.0; }
}|}
  in
  check Alcotest.int "different iteration spaces stay separate" 2
    (Program_plan.loop_count (plan_src src))

let test_rejects_seam_dependence () =
  let src =
    {|void main() {
  int n = 1000;
  double a[n + 1]; double b[n + 1]; double c[n + 1]; int i;
  for (i = 0; i < n + 1; i++) { a[i] = i * 0.5; b[i] = 0.0; }
  #pragma acc parallel loop
  for (i = 0; i < n; i++) { b[i] = a[i] * 2.0; }
  #pragma acc parallel loop
  for (i = 0; i < n; i++) { c[i] = b[i + 1] + 1.0; }
}|}
  in
  check Alcotest.int "cross-iteration seam read stays separate" 2
    (Program_plan.loop_count (plan_src src))

let test_rejects_reduction_mix () =
  let src =
    {|void main() {
  int n = 1000;
  double a[n]; double b[n]; double s; int i;
  s = 0.0;
  for (i = 0; i < n; i++) { a[i] = i * 0.5; }
  #pragma acc parallel loop
  for (i = 0; i < n; i++) { b[i] = a[i] * 2.0; }
  #pragma acc parallel loop reduction(+: s)
  for (i = 0; i < n; i++) { s = s + b[i]; }
}|}
  in
  check Alcotest.int "reduction loop never joins a plain map" 2
    (Program_plan.loop_count (plan_src src))

let test_rejects_oversized_body () =
  (* Each body alone fits the op budget; fused they blow past it, and at
     1000 literal iterations the occupancy penalty dwarfs the saved
     launch — the cost model must refuse. *)
  let big_rhs =
    String.concat " + " (List.init 24 (fun j -> Printf.sprintf "a[i] * %d.0" (j + 1)))
  in
  let src =
    Printf.sprintf
      {|void main() {
  int n = 1000;
  double a[n]; double b[n]; double c[n]; int i;
  for (i = 0; i < n; i++) { a[i] = i * 0.5; }
  #pragma acc parallel loop
  for (i = 0; i < n; i++) { b[i] = %s; }
  #pragma acc parallel loop
  for (i = 0; i < n; i++) { c[i] = b[i] + %s; }
}|}
      big_rhs big_rhs
  in
  let plans = plan_src src in
  check Alcotest.int "oversized fused body rejected by the cost model" 2
    (Program_plan.loop_count plans)

(* ---------------- contraction on the fusion-friendly apps ---------------- *)

let test_md_contracts_acc3 () =
  let plans = plan_src md_small.App_common.source in
  check (Alcotest.list Alcotest.string) "acc3 scalarized away" [ "acc3" ]
    (Program_plan.contracted_arrays plans);
  let reference = App_common.sequential md_small in
  let env, r = App_common.proposal ~fuse:true ~num_gpus:4 ~machine:(cluster4 ()) md_small in
  App_common.check_exn md_small ~against:reference env;
  check Alcotest.int "one temporary contracted" 1 r.Mgacc.Report.contracted_arrays;
  check Alcotest.bool "launches saved" true (r.Mgacc.Report.fused_kernels > 0)

let test_kmeans_contracts_and_relayouts () =
  let plans = plan_src kmeans_small.App_common.source in
  check (Alcotest.list Alcotest.string) "bestd/bestc scalarized away" [ "bestd"; "bestc" ]
    (Program_plan.contracted_arrays plans);
  let reference = App_common.sequential kmeans_small in
  let env, r =
    App_common.proposal ~fuse:true ~num_gpus:4 ~machine:(cluster4 ()) kmeans_small
  in
  App_common.check_exn kmeans_small ~against:reference env;
  check Alcotest.int "both temporaries contracted" 2 r.Mgacc.Report.contracted_arrays;
  check Alcotest.int "point matrix repacked once" 1 r.Mgacc.Report.relayouts

(* ---------------- the off-switch identity guarantee ---------------- *)

let count_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i acc =
    if i + m > n then acc
    else if String.sub s i m = sub then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_fuse_off_is_pinned () =
  (* No flag at all vs an explicit --fuse off: byte-identical reports,
     and the fusion sub-object never appears. *)
  let _, r_default = App_common.proposal ~num_gpus:4 ~machine:(cluster4 ()) md_small in
  let _, r_off = App_common.proposal ~fuse:false ~num_gpus:4 ~machine:(cluster4 ()) md_small in
  check Alcotest.string "byte-identical report JSON" (Mgacc.Report.to_json r_default)
    (Mgacc.Report.to_json r_off);
  check Alcotest.int "no fusion key when off" 0
    (count_sub (Mgacc.Report.to_json r_default) {|"fusion"|})

let test_fuse_on_inert_without_opportunity () =
  (* An app with no adjacent bare loops (BFS alternates frontier loops
     with different bodies under clauses) must be untouched: --fuse on
     reproduces the off timings byte for byte. *)
  let bfs = Bfs.app { Bfs.nodes = 6000; max_degree = 8; seed = 5 } in
  let _, r_off = App_common.proposal ~num_gpus:4 ~machine:(cluster4 ()) bfs in
  let _, r_on = App_common.proposal ~fuse:true ~num_gpus:4 ~machine:(cluster4 ()) bfs in
  check Alcotest.string "no opportunity: identical report JSON" (Mgacc.Report.to_json r_off)
    (Mgacc.Report.to_json r_on)

(* ---------------- plan-cache keying ---------------- *)

let test_plan_cache_never_aliases_fusion () =
  let cache = Plan_cache.create () in
  let src = fusable_pair in
  let e_off, hit_off = Plan_cache.lookup ~options:Kernel_plan.default_options cache src in
  check Alcotest.bool "first lookup misses" false hit_off;
  let e_on, hit_on = Plan_cache.lookup ~options:fuse_on cache src in
  check Alcotest.bool "fused options never reuse the unfused entry" false hit_on;
  check Alcotest.int "two distinct entries" 2 (Plan_cache.size cache);
  check Alcotest.bool "distinct keys" true (e_off.Plan_cache.key <> e_on.Plan_cache.key);
  check Alcotest.int "unfused entry: two kernels" 2
    (Program_plan.loop_count e_off.Plan_cache.plans);
  check Alcotest.int "fused entry: one kernel" 1
    (Program_plan.loop_count e_on.Plan_cache.plans);
  (* and a repeat of each is a hit on its own entry *)
  let e_off2, hit2 = Plan_cache.lookup ~options:Kernel_plan.default_options cache src in
  check Alcotest.bool "unfused repeat hits" true hit2;
  check Alcotest.bool "physically the same plan" true (e_off2.Plan_cache.plans == e_off.Plan_cache.plans)

(* ---------------- lookahead memo transparency ---------------- *)

let five_apps =
  [
    Bfs.app { Bfs.nodes = 6000; max_degree = 8; seed = 5 };
    Kmeans.app { Kmeans.points = 2000; features = 8; clusters = 4; iterations = 3; seed = 11 };
    Md.app { Md.atoms = 300; max_neighbors = 8; seed = 17 };
    Spmv.app { Spmv.rows = 2000; width = 8; iterations = 3; seed = 19 };
    Montecarlo.app { Montecarlo.paths = 2000; steps = 6; bins = 32; seed = 29 };
  ]

let test_lookahead_memo_is_transparent () =
  (* The memoized consumer-lookahead summaries must equal the uncached
     computation for every (plan, array) pair of the five paper apps,
     and stay stable across repeated calls. *)
  List.iter
    (fun app ->
      let plans = Mgacc.compile (Mgacc.parse_string ~name:"app.c" app.App_common.source) in
      List.iter
        (fun plan ->
          let after = plan.Kernel_plan.loop.Mgacc_analysis.Loop_info.loop_loc in
          List.iter
            (fun (acc : Mgacc_analysis.Access.array_access) ->
              let array = acc.Mgacc_analysis.Access.array in
              let w1 = Program_plan.read_window_of plan ~array in
              let w_raw = Program_plan.read_window_of_uncached plan ~array in
              if w1 <> w_raw then
                Alcotest.failf "%s: read_window_of memo diverges on %s"
                  app.App_common.name array;
              if Program_plan.read_window_of plan ~array <> w1 then
                Alcotest.failf "%s: read_window_of unstable on %s" app.App_common.name array;
              let n1 = Program_plan.next_read plans ~after ~array in
              let n_raw = Program_plan.next_read_uncached plans ~after ~array in
              if n1 <> n_raw then
                Alcotest.failf "%s: next_read memo diverges on %s" app.App_common.name array;
              if Program_plan.next_read plans ~after ~array <> n1 then
                Alcotest.failf "%s: next_read unstable on %s" app.App_common.name array)
            plan.Kernel_plan.accesses)
        (Program_plan.all_plans plans))
    five_apps

let test_lazy_coherence_counters_unchanged () =
  (* Memoization must not change a single coherence decision: two
     independent lazy runs of each paper app produce byte-identical
     reports (the counters live in the JSON), and results still match
     the sequential reference. *)
  List.iter
    (fun app ->
      let reference = App_common.sequential app in
      let env1, r1 =
        App_common.proposal ~coherence:Mgacc.Rt_config.Lazy ~num_gpus:4
          ~machine:(cluster4 ()) app
      in
      let _, r2 =
        App_common.proposal ~coherence:Mgacc.Rt_config.Lazy ~num_gpus:4
          ~machine:(cluster4 ()) app
      in
      App_common.check_exn app ~against:reference env1;
      check Alcotest.string
        (app.App_common.name ^ ": bit-identical coherence counters")
        (Mgacc.Report.to_json r1) (Mgacc.Report.to_json r2))
    five_apps

(* ---------------- fused span labels ---------------- *)

let test_fused_labels_name_members () =
  (* The fused kernel's launch spans carry the constituent source-loop
     ids ("loop0+1+2"), so traces and --blame keep attributing time to
     the loops the programmer wrote. *)
  let machine = cluster4 () in
  let translator = fuse_on in
  let config = Mgacc.Rt_config.make ~num_gpus:4 ~translator machine in
  let program = Mgacc.parse_string ~name:"md.c" md_small.App_common.source in
  let _ = Mgacc.run_acc ~config ~machine program in
  let labels =
    List.filter_map
      (fun (sp : Mgacc_sim.Trace.span) ->
        if sp.Mgacc_sim.Trace.category = Mgacc_sim.Trace.Kernel then
          Some sp.Mgacc_sim.Trace.label
        else None)
      (Mgacc_sim.Trace.spans machine.Mgacc.Machine.trace)
  in
  check Alcotest.bool "fused label present" true (List.mem "loop0+1+2" labels);
  (* none of the constituent kernels launch on their own *)
  List.iter
    (fun solo ->
      check Alcotest.bool (solo ^ " absent") false (List.mem solo labels))
    [ "loop0"; "loop1"; "loop2" ]

let test_relayout_span_charged () =
  let machine = cluster4 () in
  let config = Mgacc.Rt_config.make ~num_gpus:4 ~translator:fuse_on machine in
  let program = Mgacc.parse_string ~name:"km.c" kmeans_small.App_common.source in
  let _ = Mgacc.run_acc ~config ~machine program in
  let relayouts =
    List.filter
      (fun (sp : Mgacc_sim.Trace.span) -> sp.Mgacc_sim.Trace.label = "relayout:x")
      (Mgacc_sim.Trace.spans machine.Mgacc.Machine.trace)
  in
  check Alcotest.int "one repack span per GPU, charged once" 4 (List.length relayouts)

let suite =
  [
    test_qcheck_fused_equals_unfused;
    tc "legality: compatible pair fuses (and off-switch is inert)" test_fuses_compatible_pair;
    tc "legality: mismatched bounds rejected" test_rejects_mismatched_bounds;
    tc "legality: seam dependence rejected" test_rejects_seam_dependence;
    tc "legality: reduction/map mix rejected" test_rejects_reduction_mix;
    tc "profitability: oversized body rejected" test_rejects_oversized_body;
    tc "contraction: md's acc3 vanishes" test_md_contracts_acc3;
    tc "contraction + relayout: kmeans" test_kmeans_contracts_and_relayouts;
    tc "--fuse off is byte-identical to no flag" test_fuse_off_is_pinned;
    tc "--fuse on inert without opportunity" test_fuse_on_inert_without_opportunity;
    tc "plan cache: fused and unfused never alias" test_plan_cache_never_aliases_fusion;
    tc "lookahead memo tables are transparent" test_lookahead_memo_is_transparent;
    tc "lazy coherence counters unchanged by memoization" test_lazy_coherence_counters_unchanged;
    tc "fused spans carry member labels" test_fused_labels_name_members;
    tc "relayout repack charged once per GPU" test_relayout_span_charged;
  ]
