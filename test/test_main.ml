(* Aggregated test runner: every module contributes a suite. *)

let () =
  Alcotest.run "mgacc"
    [
      ("util", Test_util.suite);
      ("sim", Test_sim.suite);
      ("frontend", Test_frontend.suite);
      ("analysis", Test_analysis.suite);
      ("exec", Test_exec.suite);
      ("gpusim", Test_gpusim.suite);
      ("runtime", Test_runtime.suite);
      ("integration", Test_integration.suite);
      ("apps", Test_apps.suite);
      ("properties", Test_props.suite);
      ("comm", Test_comm.suite);
      ("equivalence", Test_equiv.suite);
      ("samples", Test_samples.suite);
      ("more", Test_more.suite);
      ("corners", Test_corners.suite);
      ("sched", Test_sched.suite);
      ("overlap", Test_overlap.suite);
      ("coherence", Test_coherence.suite);
      ("fusion", Test_fusion.suite);
      ("collective", Test_collective.suite);
      ("fleet", Test_fleet.suite);
      ("artifacts", Test_bench_artifacts.suite);
      ("obs", Test_obs.suite);
    ]
