(* Unit tests for Mgacc_util: PRNG, intervals, bitsets, stats, tables. *)

open Mgacc_util

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ---------------- Xorshift ---------------- *)

let test_xorshift_deterministic () =
  let a = Xorshift.create 123 and b = Xorshift.create 123 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Xorshift.int a 1000000) (Xorshift.int b 1000000)
  done

let test_xorshift_bounds () =
  let r = Xorshift.create 7 in
  for _ = 1 to 1000 do
    let v = Xorshift.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done;
  for _ = 1 to 1000 do
    let v = Xorshift.int_in r 5 9 in
    if v < 5 || v > 9 then Alcotest.failf "int_in out of range: %d" v
  done;
  for _ = 1 to 1000 do
    let v = Xorshift.float r 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "float out of range: %f" v
  done

let test_xorshift_invalid () =
  let r = Xorshift.create 1 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Xorshift.int: bound <= 0") (fun () ->
      ignore (Xorshift.int r 0));
  Alcotest.check_raises "negative seed" (Invalid_argument "Xorshift.create: negative seed")
    (fun () -> ignore (Xorshift.create (-1)))

let test_xorshift_shuffle () =
  let r = Xorshift.create 9 in
  let a = Array.init 50 Fun.id in
  Xorshift.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation" (Array.init 50 Fun.id) sorted

let test_xorshift_gaussian () =
  let r = Xorshift.create 13 in
  let n = 20000 in
  let samples = Array.init n (fun _ -> Xorshift.gaussian r ~mean:3.0 ~stddev:2.0) in
  let m = Stats.mean samples in
  if Float.abs (m -. 3.0) > 0.1 then Alcotest.failf "gaussian mean %f" m;
  let s = Stats.stddev samples in
  if Float.abs (s -. 2.0) > 0.1 then Alcotest.failf "gaussian stddev %f" s

(* ---------------- Interval ---------------- *)

let iv = Alcotest.testable Interval.pp Interval.equal

let test_interval_basics () =
  let a = Interval.make 2 7 in
  check Alcotest.int "length" 5 (Interval.length a);
  check Alcotest.bool "contains lo" true (Interval.contains a 2);
  check Alcotest.bool "excludes hi" false (Interval.contains a 7);
  check iv "empty normalizes" Interval.empty (Interval.make 5 5);
  check iv "reversed normalizes" Interval.empty (Interval.make 9 3);
  check iv "intersect" (Interval.make 4 7) (Interval.intersect a (Interval.make 4 11));
  check iv "disjoint intersect" Interval.empty (Interval.intersect a (Interval.make 9 11));
  check iv "hull" (Interval.make 2 11) (Interval.hull a (Interval.make 9 11));
  check iv "hull with empty" a (Interval.hull a Interval.empty);
  check iv "shift" (Interval.make 5 10) (Interval.shift a 3);
  check iv "clamp" (Interval.make 3 6) (Interval.clamp a ~lo:3 ~hi:6)

let test_interval_set_add_merge () =
  let open Interval in
  let s = Set.of_list [ make 0 3; make 5 8 ] in
  check Alcotest.int "two pieces" 2 (List.length (Set.to_list s));
  (* Adjacent intervals merge. *)
  let s2 = Set.add s (make 3 5) in
  check (Alcotest.list iv) "merged" [ make 0 8 ] (Set.to_list s2);
  (* Overlapping intervals merge. *)
  let s3 = Set.add s (make 2 6) in
  check (Alcotest.list iv) "overlap merged" [ make 0 8 ] (Set.to_list s3);
  check Alcotest.int "total length" 8 (Set.total_length s3)

let test_interval_set_ops () =
  let open Interval in
  let a = Set.of_list [ make 0 10; make 20 30 ] in
  let b = Set.of_list [ make 5 25 ] in
  check (Alcotest.list iv) "inter" [ make 5 10; make 20 25 ] (Set.to_list (Set.inter a b));
  check (Alcotest.list iv) "diff" [ make 0 5; make 25 30 ] (Set.to_list (Set.diff a b));
  check (Alcotest.list iv) "union"
    [ make 0 30 ]
    (Set.to_list (Set.union a b));
  check Alcotest.bool "subset yes" true (Set.subset (Set.of_interval (make 2 4)) a);
  check Alcotest.bool "subset no" false (Set.subset b a);
  check Alcotest.bool "mem" true (Set.mem a 25);
  check Alcotest.bool "not mem" false (Set.mem a 15)

(* ---------------- Bitset ---------------- *)

let test_bitset_basics () =
  let b = Bitset.create 100 in
  check Alcotest.int "initial count" 0 (Bitset.count b);
  Bitset.set b 0;
  Bitset.set b 63;
  Bitset.set b 99;
  check Alcotest.int "count" 3 (Bitset.count b);
  check Alcotest.bool "get" true (Bitset.get b 63);
  Bitset.clear b 63;
  check Alcotest.bool "cleared" false (Bitset.get b 63);
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: index 100 out of [0,100)") (fun () ->
      Bitset.set b 100)

let test_bitset_ranges () =
  let b = Bitset.create 200 in
  Bitset.set_range b ~lo:10 ~hi:50;
  check Alcotest.int "range count" 40 (Bitset.count b);
  check Alcotest.bool "any in" true (Bitset.any_in_range b ~lo:0 ~hi:11);
  check Alcotest.bool "none before" false (Bitset.any_in_range b ~lo:0 ~hi:10);
  check Alcotest.bool "none after" false (Bitset.any_in_range b ~lo:50 ~hi:200);
  check Alcotest.int "count in range" 20 (Bitset.count_in_range b ~lo:30 ~hi:60);
  let runs = Bitset.runs b in
  check Alcotest.int "one run" 1 (List.length (Mgacc_util.Interval.Set.to_list runs));
  check Alcotest.int "run length" 40 (Mgacc_util.Interval.Set.total_length runs)

let test_bitset_runs_multi () =
  let b = Bitset.create 64 in
  List.iter (Bitset.set b) [ 1; 2; 3; 9; 20; 21; 63 ];
  let runs = Mgacc_util.Interval.Set.to_list (Bitset.runs b) in
  check (Alcotest.list iv) "runs"
    Interval.[ make 1 4; make 9 10; make 20 22; make 63 64 ]
    runs

let test_bitset_union () =
  let a = Bitset.create 40 and b = Bitset.create 40 in
  Bitset.set a 3;
  Bitset.set b 17;
  Bitset.union_into ~dst:a ~src:b;
  check Alcotest.bool "kept own" true (Bitset.get a 3);
  check Alcotest.bool "got theirs" true (Bitset.get a 17);
  check Alcotest.bool "src untouched" false (Bitset.get b 3)

(* ---------------- Stats / Bytesize / Table ---------------- *)

let test_stats () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean a);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.minimum a);
  check (Alcotest.float 1e-9) "max" 4.0 (Stats.maximum a);
  check (Alcotest.float 1e-6) "stddev" 1.2909944487 (Stats.stddev a);
  check (Alcotest.float 1e-9) "p50" 2.5 (Stats.percentile a 50.0);
  check (Alcotest.float 1e-9) "p0" 1.0 (Stats.percentile a 0.0);
  check (Alcotest.float 1e-9) "p100" 4.0 (Stats.percentile a 100.0);
  check (Alcotest.float 1e-6) "geomean" 2.2133638394 (Stats.geomean a);
  check (Alcotest.float 1e-9) "speedup" 2.0 (Stats.speedup ~baseline:4.0 2.0)

let test_bytesize () =
  check Alcotest.string "bytes" "512B" (Bytesize.to_string 512);
  check Alcotest.string "kb" "2.0KB" (Bytesize.to_string 2048);
  check Alcotest.string "mb" "444.9MB" (Bytesize.to_string (int_of_float (444.9 *. 1048576.0)));
  check Alcotest.string "gb" "6.0GB" (Bytesize.to_string (6 * 1024 * 1024 * 1024));
  check (Alcotest.float 1e-9) "round trip mib" 3.5 (Bytesize.to_mib (Bytesize.of_mib 3.5))

let test_table () =
  let t = Table.create ~headers:[ "app"; "x" ] in
  Table.add_row t [ "md"; "1.5" ];
  Table.add_separator t;
  Table.add_row t [ "bfs"; "0.9" ];
  let s = Table.render t in
  check Alcotest.bool "has header" true (String.length s > 0);
  Alcotest.check_raises "bad row"
    (Invalid_argument "Table.add_row: 3 cells, expected 2")
    (fun () -> Table.add_row t [ "a"; "b"; "c" ])

let suite =
  [
    tc "xorshift: deterministic" test_xorshift_deterministic;
    tc "xorshift: bounds" test_xorshift_bounds;
    tc "xorshift: invalid args" test_xorshift_invalid;
    tc "xorshift: shuffle is a permutation" test_xorshift_shuffle;
    tc "xorshift: gaussian moments" test_xorshift_gaussian;
    tc "interval: basics" test_interval_basics;
    tc "interval set: add merges" test_interval_set_add_merge;
    tc "interval set: inter/diff/union/subset" test_interval_set_ops;
    tc "bitset: basics" test_bitset_basics;
    tc "bitset: ranges" test_bitset_ranges;
    tc "bitset: multi runs" test_bitset_runs_multi;
    tc "bitset: union_into" test_bitset_union;
    tc "stats: descriptive" test_stats;
    tc "bytesize: formatting" test_bytesize;
    tc "table: render and arity" test_table;
  ]
