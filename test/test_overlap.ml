(* Tests for the dependency-driven overlap engine: the Event timelines it
   is built on, the off-mode identity guarantee, numerical equivalence of
   overlapped runs, and the communication/computation win it exists for. *)

module Event = Mgacc_gpusim.Event
open Mgacc_apps

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ---------------- Event timelines ---------------- *)

let test_event_max_join () =
  let e = Event.create ~num_gpus:3 in
  check Alcotest.int "gpus" 3 (Event.num_gpus e);
  List.iter
    (fun g -> check (Alcotest.float 0.0) "starts at zero" 0.0 (Event.gpu_ready e g))
    [ 0; 1; 2 ];
  Event.record e 1 5.0;
  check (Alcotest.float 0.0) "recorded" 5.0 (Event.gpu_ready e 1);
  Event.record e 1 3.0;
  check (Alcotest.float 0.0) "earlier record is a no-op" 5.0 (Event.gpu_ready e 1);
  check (Alcotest.float 0.0) "others untouched" 0.0 (Event.gpu_ready e 0);
  Event.record e 0 7.0;
  check (Alcotest.float 0.0) "gpu join" 7.0 (Event.join_gpus e);
  Event.record_host e 9.0;
  check (Alcotest.float 0.0) "host dominates join" 9.0 (Event.join e);
  check (Alcotest.float 0.0) "gpu join ignores host" 7.0 (Event.join_gpus e)

let test_event_barrier_and_reset () =
  let e = Event.create ~num_gpus:2 in
  Event.record e 0 2.0;
  Event.record e 1 4.0;
  Event.record_host e 1.0;
  let t = Event.barrier e in
  check (Alcotest.float 0.0) "barrier is the join" 4.0 t;
  check (Alcotest.float 0.0) "gpu0 collapsed" 4.0 (Event.gpu_ready e 0);
  check (Alcotest.float 0.0) "host collapsed" 4.0 (Event.host_ready e);
  Event.reset e;
  check (Alcotest.float 0.0) "reset gpu" 0.0 (Event.gpu_ready e 1);
  check (Alcotest.float 0.0) "reset host" 0.0 (Event.host_ready e)

(* ---------------- Whole-application runs ---------------- *)

let desktop () = Mgacc.Machine.desktop ()
let bfs_small = Bfs.app { Bfs.nodes = 12000; max_degree = 10; seed = 5 }
let kmeans_small = Kmeans.app { Kmeans.points = 4000; features = 12; clusters = 5; iterations = 6; seed = 11 }
let md_small = Md.app { Md.atoms = 400; max_neighbors = 8; seed = 17 }

let run app ~overlap = App_common.proposal ~overlap ~num_gpus:2 ~machine:(desktop ()) app

let test_off_mode_is_the_default () =
  (* [--overlap off] must be byte-for-byte the pre-engine barrier path:
     a run with the flag off matches a run with no flag at all, down to
     the exact simulated times. *)
  let _, r_default = App_common.proposal ~num_gpus:2 ~machine:(desktop ()) bfs_small in
  let _, r_off = run bfs_small ~overlap:false in
  check Alcotest.bool "identical total" true
    (Float.equal r_default.Mgacc.Report.total_time r_off.Mgacc.Report.total_time);
  check Alcotest.bool "identical kernel time" true
    (Float.equal r_default.Mgacc.Report.kernel_time r_off.Mgacc.Report.kernel_time);
  check Alcotest.int "identical traffic" r_default.Mgacc.Report.gpu_gpu_bytes
    r_off.Mgacc.Report.gpu_gpu_bytes;
  check (Alcotest.float 0.0) "off mode hides nothing" 0.0 r_off.Mgacc.Report.hidden_seconds

let test_overlap_results_identical () =
  (* Overlap reorders the simulated timeline only; every functional merge
     is unchanged, so results must equal the sequential reference exactly
     for all three communication patterns (dirty chunks + replays in bfs,
     reductions in kmeans, halos in md). *)
  List.iter
    (fun app ->
      let reference = App_common.sequential app in
      let env, _ = run app ~overlap:true in
      App_common.check_exn app ~against:reference env)
    [ bfs_small; kmeans_small; md_small ]

let test_overlap_traffic_unchanged () =
  (* Same bytes move either way; only their timing differs. *)
  let _, off = run bfs_small ~overlap:false in
  let _, on_ = run bfs_small ~overlap:true in
  check Alcotest.int "gpu-gpu bytes" off.Mgacc.Report.gpu_gpu_bytes on_.Mgacc.Report.gpu_gpu_bytes;
  check Alcotest.int "cpu-gpu bytes" off.Mgacc.Report.cpu_gpu_bytes on_.Mgacc.Report.cpu_gpu_bytes;
  check Alcotest.int "launches" off.Mgacc.Report.launches on_.Mgacc.Report.launches

let test_overlap_wins_on_comm_bound_app () =
  (* The acceptance bar: at least 10% lower simulated total on a
     communication-bound app. BFS's irregular dirty-chunk reconciliation
     is the heavy case; the engine also reports the hidden seconds and
     the reload-skip prefetch hits that produce the win. *)
  let _, off = run bfs_small ~overlap:false in
  let _, on_ = run bfs_small ~overlap:true in
  if on_.Mgacc.Report.total_time > 0.9 *. off.Mgacc.Report.total_time then
    Alcotest.failf "overlap won only %.1f%% (%.6fs -> %.6fs)"
      (100.0 *. (1.0 -. (on_.Mgacc.Report.total_time /. off.Mgacc.Report.total_time)))
      off.Mgacc.Report.total_time on_.Mgacc.Report.total_time;
  check Alcotest.bool "hidden time reported" true (on_.Mgacc.Report.hidden_seconds > 0.0);
  check Alcotest.bool "prefetch hits counted" true (on_.Mgacc.Report.prefetch_hits > 0)

let test_overlap_never_slower_than_serial_model () =
  (* The makespan accounting must keep total = sum of exposed categories,
     and overlapping can only hide time relative to its own exposed sum:
     total + hidden >= total, and every category stays non-negative. *)
  List.iter
    (fun app ->
      let _, r = run app ~overlap:true in
      let cats =
        [
          r.Mgacc.Report.kernel_time;
          r.Mgacc.Report.cpu_gpu_time;
          r.Mgacc.Report.gpu_gpu_time;
          r.Mgacc.Report.overhead_time;
        ]
      in
      List.iter (fun c -> check Alcotest.bool "category >= 0" true (c >= 0.0)) cats;
      check Alcotest.bool "hidden >= 0" true (r.Mgacc.Report.hidden_seconds >= 0.0);
      let sum = List.fold_left ( +. ) 0.0 cats in
      check Alcotest.bool "categories sum to the makespan" true
        (Float.abs (sum -. r.Mgacc.Report.total_time) <= 1e-9 *. Float.max 1.0 sum))
    [ bfs_small; kmeans_small; md_small ]

let suite =
  [
    tc "event: record is a max-join" test_event_max_join;
    tc "event: barrier collapses, reset restarts" test_event_barrier_and_reset;
    tc "overlap: off mode equals the default run" test_off_mode_is_the_default;
    tc "overlap: results match the sequential reference" test_overlap_results_identical;
    tc "overlap: traffic volume unchanged" test_overlap_traffic_unchanged;
    tc "overlap: >=10% win on a comm-bound app" test_overlap_wins_on_comm_bound_app;
    tc "overlap: accounting invariants" test_overlap_never_slower_than_serial_model;
  ]
