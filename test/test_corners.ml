(* Final coverage batch: public-API corners not touched elsewhere —
   builtins, locations, byte formatting, CUDA peer copies, view snapshots,
   pretty-printing of every statement form, OpenMP thread clamping,
   update-device on distributed arrays. *)

open Mgacc_minic
module Cuda = Mgacc_gpusim.Cuda
module Machine = Mgacc_gpusim.Machine
module Memory = Mgacc_gpusim.Memory
module Cost = Mgacc_gpusim.Cost

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let test_builtins_table () =
  List.iter
    (fun (name, args, expected) ->
      check (Alcotest.float 1e-9) name expected (Builtins.apply_double name args))
    [
      ("sqrt", [ 9.0 ], 3.0);
      ("fabs", [ -2.5 ], 2.5);
      ("pow", [ 2.0; 8.0 ], 256.0);
      ("floor", [ 2.9 ], 2.0);
      ("ceil", [ 2.1 ], 3.0);
      ("fmin", [ 1.0; 2.0 ], 1.0);
      ("fmax", [ 1.0; 2.0 ], 2.0);
    ];
  check Alcotest.int "abs" 5 (Builtins.apply_int "abs" [ -5 ]);
  check Alcotest.int "min" 2 (Builtins.apply_int "min" [ 2; 7 ]);
  check Alcotest.int "max" 7 (Builtins.apply_int "max" [ 2; 7 ]);
  check Alcotest.bool "is_builtin" true (Builtins.is_builtin "sqrt");
  check Alcotest.bool "not builtin" false (Builtins.is_builtin "frobnicate");
  match Builtins.apply_double "sqrt" [ 1.0; 2.0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "arity check"

let test_loc_formatting () =
  let loc = Loc.make ~file:"prog.c" ~line:12 ~col:5 in
  check Alcotest.string "to_string" "prog.c:12:5" (Loc.to_string loc);
  match Loc.error loc "bad %s" "thing" with
  | exception Loc.Error (l, msg) ->
      check Alcotest.string "payload" "bad thing" msg;
      check Alcotest.int "line" 12 l.Loc.line
  | _ -> Alcotest.fail "error must raise"

let test_pretty_every_statement () =
  (* One program touching each statement form round-trips. *)
  let src =
    {|int helper(int v) {
  if (v > 0) { return v; }
  return 0 - v;
}
void main() {
  int n = 4;
  double a[n];
  int i = 0;
  while (i < n) { a[i] = 1.0; i++; }
  for (i = 0; i < n; i++) {
    if (i == 2) { continue; }
    if (i == 3) { break; }
    a[i] += 0.5;
  }
  i--;
  a[0] *= 2.0;
  a[1] /= 2.0;
  a[2] -= 1.0;
  helper(3);
  {
    int shadow = 1;
    a[shadow] = 0.0;
  }
}
|}
  in
  let p1 = Parser.parse ~file:"t" src in
  Typecheck.check_program p1;
  let s1 = Pretty.program_to_string p1 in
  let p2 = Parser.parse ~file:"t" s1 in
  check Alcotest.string "fixpoint" s1 (Pretty.program_to_string p2);
  (* And the two executions agree. *)
  let e1 = Mgacc.run_sequential p1 and e2 = Mgacc.run_sequential p2 in
  check
    (Alcotest.array (Alcotest.float 0.0))
    "same results" (Mgacc.float_results e1 "a") (Mgacc.float_results e2 "a")

let test_cuda_p2p_and_charges () =
  let m = Machine.desktop () in
  let ctx = Cuda.init m in
  let a = Cuda.malloc_floats ctx 16 in
  Cuda.memcpy_h2d_floats ctx ~dst:a (Array.init 16 float_of_int);
  Cuda.set_device ctx 1;
  let b = Cuda.malloc_floats ctx 16 in
  let t0 = Cuda.now ctx in
  Cuda.memcpy_p2p_floats ctx ~dst:b ~src:a;
  check Alcotest.bool "p2p advances clock" true (Cuda.now ctx > t0);
  check (Alcotest.float 1e-12) "p2p copies" 13.0 (Memory.float_data b).(13);
  let t1 = Cuda.now ctx in
  Cuda.charge_d2h ctx ~bytes:0 ~label:"nothing";
  check (Alcotest.float 1e-12) "zero bytes free" t1 (Cuda.now ctx);
  Cuda.charge_h2d ctx ~bytes:1024 ~label:"conceptual";
  check Alcotest.bool "charge advances" true (Cuda.now ctx > t1)

let test_view_snapshots () =
  let v = Mgacc_exec.View.of_float_array ~name:"x" [| 1.0; 2.0 |] in
  let snap = Mgacc_exec.View.snapshot_f v in
  v.Mgacc_exec.View.set_f 0 9.0;
  check (Alcotest.float 1e-12) "snapshot is a copy" 1.0 snap.(0);
  match Mgacc_exec.View.snapshot_i v with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "typed snapshot"

let test_openmp_thread_clamp () =
  (* Requesting more threads than the hardware has must clamp, not crash,
     and cannot be faster than the full hardware count by much. *)
  let src =
    {|void main() { int n = 100000; double a[n]; int i;
#pragma acc parallel loop
for (i = 0; i < n; i++) { a[i] = sqrt(1.0 * i); } }|}
  in
  let program = Mgacc.parse_string ~name:"t" src in
  let _, r12 = Mgacc.run_openmp ~threads:12 ~machine:(Machine.desktop ()) program in
  let _, r99 = Mgacc.run_openmp ~threads:99 ~machine:(Machine.desktop ()) program in
  check (Alcotest.float 1e-12) "clamped" r12.Mgacc.Report.total_time r99.Mgacc.Report.total_time

let test_update_device_distributed () =
  (* Host mutates between kernels; update device must push into the live
     partitions of a distributed array. *)
  let src =
    {|void main() {
        int n = 800; double a[n]; int i;
        for (i = 0; i < n; i++) { a[i] = 1.0; }
        #pragma acc data copy(a[0:n])
        {
          #pragma acc parallel loop localaccess(a: stride(1))
          for (i = 0; i < n; i++) { a[i] = a[i] + 1.0; }
          #pragma acc update host(a[0:n])
          ;
          for (i = 0; i < n; i++) { a[i] = a[i] * 3.0; }
          #pragma acc update device(a[0:n])
          ;
          #pragma acc parallel loop localaccess(a: stride(1))
          for (i = 0; i < n; i++) { a[i] = a[i] + 0.25; }
        }
      }|}
  in
  let m = Machine.desktop () in
  let config = Mgacc.Rt_config.make ~num_gpus:2 m in
  let env, _ = Mgacc.run_acc ~config ~machine:m (Mgacc.parse_string ~name:"t" src) in
  check (Alcotest.float 1e-12) "value" 6.25 (Mgacc.float_results env "a").(500)

let test_bytesize_boundaries () =
  let open Mgacc_util.Bytesize in
  check Alcotest.string "1023B" "1023B" (to_string 1023);
  check Alcotest.string "exactly 1KB" "1.0KB" (to_string 1024);
  check Alcotest.string "just under 1MB" "1024.0KB" (to_string (1024 * 1024 - 1));
  check Alcotest.string "zero" "0B" (to_string 0)

let test_spec_presets_sane () =
  let open Mgacc_gpusim.Spec in
  List.iter
    (fun g ->
      check Alcotest.bool "efficiencies in (0,1]" true
        (g.compute_efficiency > 0.0 && g.compute_efficiency <= 1.0
        && g.bandwidth_efficiency > 0.0 && g.bandwidth_efficiency <= 1.0
        && g.l2_hit_ratio >= 0.0 && g.l2_hit_ratio < 1.0);
      check Alcotest.bool "capacity positive" true (g.mem_capacity > 0))
    [ tesla_c2075; tesla_m2050 ];
  check Alcotest.int "i7 threads" 12 (cpu_total_threads core_i7_970);
  check Alcotest.int "xeon threads" 24 (cpu_total_threads dual_xeon_x5670)

let suite =
  [
    tc "builtins: full table" test_builtins_table;
    tc "loc: formatting and error payloads" test_loc_formatting;
    tc "pretty: every statement form round-trips" test_pretty_every_statement;
    tc "cuda: p2p copies and conceptual charges" test_cuda_p2p_and_charges;
    tc "view: snapshots are copies" test_view_snapshots;
    tc "openmp: thread counts clamp to hardware" test_openmp_thread_clamp;
    tc "runtime: update device on distributed arrays" test_update_device_distributed;
    tc "bytesize: boundaries" test_bytesize_boundaries;
    tc "spec: presets sane" test_spec_presets_sane;
  ]
