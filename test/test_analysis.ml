(* Tests for the analysis passes: affine forms, loop extraction, access
   summaries, taint, coalescing, array configuration. *)

open Mgacc_minic
open Mgacc_analysis

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ---------------- Affine ---------------- *)

let affine ?(uniform = [ "n"; "f"; "off" ]) src =
  let e = Parser.parse_expr ~file:"t" src in
  Affine.of_expr ~loop_var:"i" ~is_uniform:(fun v -> List.mem v uniform) e

let test_affine_forms () =
  (match affine "i" with
  | Some a ->
      check Alcotest.int "coeff" 1 a.Affine.coeff;
      check Alcotest.int "const" 0 a.Affine.const
  | None -> Alcotest.fail "i not affine");
  (match affine "3*i + 7" with
  | Some a ->
      check Alcotest.int "coeff 3" 3 a.Affine.coeff;
      check Alcotest.int "const 7" 7 a.Affine.const;
      check Alcotest.bool "literal" true (Affine.is_literal a)
  | None -> Alcotest.fail "3i+7 not affine");
  (match affine "i*3 - 2" with
  | Some a ->
      check Alcotest.int "coeff" 3 a.Affine.coeff;
      check Alcotest.int "const" (-2) a.Affine.const
  | None -> Alcotest.fail "i*3-2");
  (match affine "2*(i + 1) + i" with
  | Some a ->
      check Alcotest.int "coeff folded" 3 a.Affine.coeff;
      check Alcotest.int "const folded" 2 a.Affine.const
  | None -> Alcotest.fail "nested");
  (match affine "f*i + off" with
  | Some a ->
      (* Symbolic stride: coeff is not a literal, so of_expr can only keep
         it when the multiplier is constant — f*i must be rejected as a
         literal form but kept as... *)
      ignore a
  | None -> ());
  match affine "i*i" with
  | None -> ()
  | Some _ -> Alcotest.fail "i*i must not be affine"

let test_affine_uniform_terms () =
  match affine "4*i + off + 1" with
  | Some a ->
      check Alcotest.int "coeff" 4 a.Affine.coeff;
      check Alcotest.int "const" 1 a.Affine.const;
      check Alcotest.int "one term" 1 (List.length a.Affine.terms);
      check Alcotest.bool "not literal" false (Affine.is_literal a)
  | None -> Alcotest.fail "expected affine with symbolic term"

let test_affine_rejects_nonuniform () =
  (* j is not uniform: the whole expression is not affine in i. *)
  match affine ~uniform:[] "i + j" with
  | None -> ()
  | Some _ -> Alcotest.fail "i + j with non-uniform j"

(* ---------------- Loop extraction ---------------- *)

let first_loop src =
  let p = Parser.parse ~file:"t" src in
  match Loop_info.extract (Option.get (Ast.find_func p "main")) with
  | l :: _ -> l
  | [] -> Alcotest.fail "no parallel loop found"

let simple_loop body ?(pragma = "acc parallel loop") () =
  first_loop
    (Printf.sprintf
       "void main() { int n = 8; double a[n]; double b[n]; int idx[n]; int i;\n#pragma %s\nfor (i = 0; i < n; i++) { %s } }"
       pragma body)

let test_loop_extraction () =
  let l = simple_loop "a[i] = b[i] + 1.0;" () in
  check Alcotest.string "var" "i" l.Loop_info.loop_var;
  check Alcotest.int "id" 0 l.Loop_info.loop_id;
  check (Alcotest.list Alcotest.string) "arrays" [ "a"; "b" ] (Loop_info.arrays_mentioned l);
  check (Alcotest.list Alcotest.string) "free vars" [ "a"; "b" ] (Loop_info.free_vars l)

let test_loop_le_normalization () =
  let l =
    first_loop
      "void main() { int n = 8; double a[n]; int i;\n#pragma acc parallel loop\nfor (i = 0; i <= n - 2; i++) { a[i] = 0.0; } }"
  in
  (* i <= n-2  ==>  upper = (n-2)+1 *)
  check Alcotest.string "upper" "((n - 2) + 1)" (Pretty.expr_to_string l.Loop_info.upper)

let test_loop_rejects_bad_shapes () =
  let fails src =
    match first_loop src with
    | exception Loc.Error _ -> ()
    | _ -> Alcotest.fail "expected normalization error"
  in
  fails "void main() { int i;\n#pragma acc parallel loop\nfor (i = 0; i > 4; i++) { } }";
  fails "void main() { int i;\n#pragma acc parallel loop\nfor (i = 0; i < 4; i += 2) { } }";
  fails "void main() { int i;\n#pragma acc parallel loop\nfor (i = 4; i < 8; i--) { } }"

let test_loop_collects_directives () =
  let l =
    first_loop
      {|void main() { int n = 8; double a[n]; double s; int i;
#pragma acc localaccess(a: stride(1))
#pragma acc parallel loop reduction(+: s) localaccess(a: stride(2, 1, 1))
for (i = 0; i < n; i++) { s += a[i]; } }|}
  in
  check Alcotest.int "merged localaccess" 2 (List.length l.Loop_info.localaccess);
  check Alcotest.int "scalar reductions" 1 (List.length l.Loop_info.scalar_reductions)

let test_loop_array_reductions () =
  let l =
    simple_loop
      "int c = idx[i];\n#pragma acc reductiontoarray(+: a)\na[c] += b[i];" ()
  in
  check Alcotest.int "array reductions" 1 (List.length l.Loop_info.array_reductions);
  match l.Loop_info.array_reductions with
  | [ (Ast.Rplus, "a") ] -> ()
  | _ -> Alcotest.fail "wrong reduction record"

(* ---------------- Access & taint & coalesce ---------------- *)

let test_access_summary () =
  let l = simple_loop "a[i] = b[i] + b[i + 1] + a[i];" () in
  let acc = Access.analyze l in
  let a = Option.get (Access.find acc "a") in
  let b = Option.get (Access.find acc "b") in
  check Alcotest.int "a reads" 1 (List.length a.Access.reads);
  check Alcotest.int "a writes" 1 (List.length a.Access.writes);
  check Alcotest.int "b reads" 2 (List.length b.Access.reads);
  check Alcotest.bool "b read only" true (Access.read_only b);
  check Alcotest.bool "a not read only" false (Access.read_only a);
  check Alcotest.bool "all affine" true (Access.all_reads_affine l b)

let test_access_compound_counts_read () =
  let l = simple_loop "a[i] += 1.0;" () in
  let acc = Access.analyze l in
  let a = Option.get (Access.find acc "a") in
  check Alcotest.int "compound also reads" 1 (List.length a.Access.reads);
  check Alcotest.int "writes" 1 (List.length a.Access.writes)

let test_access_reduction_separated () =
  let l = simple_loop "int c = idx[i];\n#pragma acc reductiontoarray(+: a)\na[c] += b[i];" () in
  let acc = Access.analyze l in
  let a = Option.get (Access.find acc "a") in
  check Alcotest.int "no plain writes" 0 (List.length a.Access.writes);
  check Alcotest.int "reduction writes" 1 (List.length a.Access.reduction_writes)

let test_taint () =
  let l =
    simple_loop
      "int c = idx[i]; int u = 7; int k; double s = 0.0; for (k = 0; k < 4; k++) { s = s + b[k]; } a[i] = s + c + u;"
      ()
  in
  let t = Taint.compute l in
  check Alcotest.bool "loop var tainted" true (Taint.is_tainted t "i");
  check Alcotest.bool "c tainted (data-dependent load)" true (Taint.is_tainted t "c");
  check Alcotest.bool "u untainted" false (Taint.is_tainted t "u");
  check Alcotest.bool "inner counter untainted" false (Taint.is_tainted t "k");
  check Alcotest.bool "s untainted (uniform accumulation)" false (Taint.is_tainted t "s")

let test_coalesce_modes () =
  let l =
    simple_loop
      "int f = 4; int c = idx[i]; int k; double s = 0.0; for (k = 0; k < 4; k++) { s = s + a[i*4 + k] + b[k]; } a[i] = s + b[c];"
      ()
  in
  let cls = Coalesce.make l in
  let e src = Parser.parse_expr ~file:"t" src in
  (match cls (e "i") with Coalesce.Coalesced -> () | m -> Alcotest.failf "i: %s" (Coalesce.mode_to_string m));
  (match cls (e "i*4 + k") with
  | Coalesce.Strided 4 -> ()
  | m -> Alcotest.failf "i*4+k: %s" (Coalesce.mode_to_string m));
  (match cls (e "k") with Coalesce.Broadcast -> () | m -> Alcotest.failf "k: %s" (Coalesce.mode_to_string m));
  (match cls (e "c") with Coalesce.Random -> () | m -> Alcotest.failf "c: %s" (Coalesce.mode_to_string m));
  match Coalesce.apply_layout_transform (Coalesce.Strided 4) with
  | Coalesce.Coalesced -> ()
  | _ -> Alcotest.fail "layout transform must coalesce strided"

let test_inner_parallel () =
  let l =
    first_loop
      {|void main() { int rows = 8; int cols = 8; double u[rows][cols]; int r; int c;
#pragma acc parallel loop
for (r = 0; r < rows; r++) {
  #pragma acc loop vector(64)
  for (c = 0; c < cols; c++) { u[r][c] = 1.0; }
} }|}
  in
  match Loop_info.find_inner_parallel l with
  | Some (inner, width) ->
      check Alcotest.string "inner var" "c" inner.Loop_info.loop_var;
      check Alcotest.int "vector width" 64 width;
      (* Coalescing judged against c: u[r*cols + c] is unit-stride. *)
      let cls = Coalesce.make inner in
      (match cls (Parser.parse_expr ~file:"t" "(r * cols) + c") with
      | Coalesce.Coalesced -> ()
      | m -> Alcotest.failf "inner classification: %s" (Coalesce.mode_to_string m))
  | None -> Alcotest.fail "inner parallel loop not found"

let test_inner_parallel_default_width () =
  let l =
    first_loop
      {|void main() { int n = 8; double a[n]; int i; int j;
#pragma acc parallel loop
for (i = 0; i < n; i++) {
  #pragma acc loop
  for (j = 0; j < 4; j++) { a[i] = a[i] + 1.0; }
} }|}
  in
  match Loop_info.find_inner_parallel l with
  | Some (_, 32) -> ()
  | Some (_, w) -> Alcotest.failf "default width %d" w
  | None -> Alcotest.fail "not found"

(* ---------------- Array config ---------------- *)

let configs_of l = Array_config.build l (Access.analyze l)

let test_config_placement () =
  let l =
    simple_loop "a[i] = b[idx[i]];" ~pragma:"acc parallel loop localaccess(a: stride(1))" ()
  in
  let cfgs = configs_of l in
  let a = Option.get (Array_config.find cfgs "a") in
  let b = Option.get (Array_config.find cfgs "b") in
  check Alcotest.bool "a distributed" true (a.Array_config.placement = Array_config.Distributed);
  check Alcotest.bool "b replicated" true (b.Array_config.placement = Array_config.Replicated);
  check Alcotest.bool "a writes in window" true a.Array_config.writes_in_window

let test_config_write_outside_window () =
  let l =
    simple_loop "a[i + 1] = b[i];" ~pragma:"acc parallel loop localaccess(a: stride(1), b: stride(1))"
      ()
  in
  let cfgs = configs_of l in
  let a = Option.get (Array_config.find cfgs "a") in
  (* offset +1 escapes the owned block [i, i] -> miss checks required *)
  check Alcotest.bool "not in window" false a.Array_config.writes_in_window

let test_config_layout_transform () =
  let l =
    simple_loop "int k; double s = 0.0; for (k = 0; k < 4; k++) { s = s + b[i*4 + k]; } a[i] = s;"
      ~pragma:"acc parallel loop localaccess(b: stride(4), a: stride(1))" ()
  in
  let cfgs = configs_of l in
  let b = Option.get (Array_config.find cfgs "b") in
  check Alcotest.bool "b gets layout transform" true b.Array_config.layout_transform;
  check Alcotest.bool "b not already coalesced" false b.Array_config.coalesced_reads

let test_config_reduction_replicated () =
  let l = simple_loop "int c = idx[i];\n#pragma acc reductiontoarray(+: a)\na[c] += b[i];" () in
  let cfgs = configs_of l in
  let a = Option.get (Array_config.find cfgs "a") in
  check Alcotest.bool "reduction dest replicated" true
    (a.Array_config.placement = Array_config.Replicated);
  check Alcotest.bool "has reduction op" true (a.Array_config.reduction = Some Ast.Rplus)

let suite =
  [
    tc "affine: literal forms" test_affine_forms;
    tc "affine: uniform symbolic terms" test_affine_uniform_terms;
    tc "affine: rejects non-uniform vars" test_affine_rejects_nonuniform;
    tc "loop: extraction basics" test_loop_extraction;
    tc "loop: <= normalization" test_loop_le_normalization;
    tc "loop: rejects non-normalizable loops" test_loop_rejects_bad_shapes;
    tc "loop: merges directives" test_loop_collects_directives;
    tc "loop: collects array reductions" test_loop_array_reductions;
    tc "access: read/write summary" test_access_summary;
    tc "access: compound assignment reads" test_access_compound_counts_read;
    tc "access: reduction writes separated" test_access_reduction_separated;
    tc "taint: loop-index dependence" test_taint;
    tc "coalesce: mode classification" test_coalesce_modes;
    tc "nested parallelism: inner vector loop found" test_inner_parallel;
    tc "nested parallelism: default warp width" test_inner_parallel_default_width;
    tc "config: placement policy" test_config_placement;
    tc "config: out-of-window writes" test_config_write_outside_window;
    tc "config: layout transform candidates" test_config_layout_transform;
    tc "config: reduction destinations" test_config_reduction_replicated;
  ]
