(* Tests for the runtime building blocks: task mapping, dirty bits, miss
   buffers, device-array state machine, reductions, profiler. *)

module Interval = Mgacc_util.Interval
module Memory = Mgacc_gpusim.Memory
module Machine = Mgacc_gpusim.Machine
open Mgacc_runtime

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ---------------- Task map ---------------- *)

let test_split_even () =
  let r = Task_map.split ~lower:0 ~upper:12 ~parts:3 in
  check Alcotest.int "parts" 3 (Array.length r);
  Array.iter (fun x -> check Alcotest.int "even size" 4 (Task_map.length x)) r;
  check Alcotest.int "starts at lower" 0 r.(0).Task_map.start_;
  check Alcotest.int "ends at upper" 12 r.(2).Task_map.stop_

let test_split_remainder () =
  let r = Task_map.split ~lower:5 ~upper:15 ~parts:3 in
  (* 10 iterations over 3 parts: sizes 4,3,3; contiguous cover. *)
  check Alcotest.int "sizes differ by at most one" 1
    (Task_map.length r.(0) - Task_map.length r.(2));
  let total = Array.fold_left (fun acc x -> acc + Task_map.length x) 0 r in
  check Alcotest.int "covers everything" 10 total;
  Array.iteri
    (fun i x -> if i > 0 then check Alcotest.int "contiguous" r.(i - 1).Task_map.stop_ x.Task_map.start_)
    r

let test_split_more_parts_than_work () =
  let r = Task_map.split ~lower:0 ~upper:2 ~parts:4 in
  let total = Array.fold_left (fun acc x -> acc + Task_map.length x) 0 r in
  check Alcotest.int "total" 2 total

let test_window () =
  let r = { Task_map.start_ = 10; stop_ = 20 } in
  let w = Task_map.window r ~stride:3 ~left:2 ~right:4 ~max_len:100 in
  check Alcotest.int "lo" 28 w.Interval.lo;
  check Alcotest.int "hi" 64 w.Interval.hi;
  let clamped = Task_map.window r ~stride:3 ~left:50 ~right:0 ~max_len:40 in
  check Alcotest.int "clamped lo" 0 clamped.Interval.lo;
  check Alcotest.int "clamped hi" 40 clamped.Interval.hi

(* ---------------- Dirty bits ---------------- *)

let mk_mem () = Memory.create ~device_id:0 ~capacity:(64 * 1024 * 1024)

let test_dirty_two_level () =
  let mem = mk_mem () in
  (* 1000 doubles, 256-byte chunks -> 32 elements per chunk. *)
  let d = Dirty.create mem ~elem_bytes:8 ~length:1000 ~chunk_bytes:256 ~two_level:true in
  check Alcotest.bool "clean" false (Dirty.any_dirty d);
  check Alcotest.int "chunks" 32 (Dirty.total_chunks d);
  Dirty.mark d 0;
  Dirty.mark d 1;
  Dirty.mark d 999;
  Dirty.mark d 999;
  check Alcotest.int "elements" 3 (Dirty.dirty_element_count d);
  check Alcotest.int "two chunks dirty" 2 (Dirty.dirty_chunk_count d);
  (* chunk 0: 32 elems -> 256B payload + 4B bits; last chunk: 1000-31*32=8
     elems -> 64B + 1B. *)
  check Alcotest.int "transfer bytes" (256 + 4 + 64 + 1) (Dirty.transfer_bytes d);
  let runs = Interval.Set.to_list (Dirty.dirty_runs d) in
  check Alcotest.int "runs" 2 (List.length runs);
  Dirty.clear d;
  check Alcotest.bool "cleared" false (Dirty.any_dirty d);
  check Alcotest.int "cleared bytes" 0 (Dirty.transfer_bytes d);
  Dirty.free mem d;
  check Alcotest.int "freed" 0 (Memory.used mem)

let test_dirty_single_level () =
  let mem = mk_mem () in
  let d = Dirty.create mem ~elem_bytes:4 ~length:1024 ~chunk_bytes:512 ~two_level:false in
  Dirty.mark d 7;
  (* One-level: whole payload + whole bit array regardless of sparsity. *)
  check Alcotest.int "full transfer" ((1024 * 4) + 128) (Dirty.transfer_bytes d);
  Dirty.free mem d

let test_dirty_footprint_accounted () =
  let mem = mk_mem () in
  let before = Memory.used_class mem `System in
  let d = Dirty.create mem ~elem_bytes:8 ~length:8192 ~chunk_bytes:1024 ~two_level:true in
  check Alcotest.bool "system memory charged" true (Memory.used_class mem `System > before);
  check Alcotest.int "footprint matches accounting"
    (Memory.used_class mem `System - before)
    (Dirty.footprint_bytes d);
  Dirty.free mem d

(* ---------------- Miss buffer ---------------- *)

let test_miss_buffer () =
  let mem = mk_mem () in
  let b = Miss_buffer.create mem ~name:"a" ~elem_bytes:8 in
  check Alcotest.bool "empty" true (Miss_buffer.is_empty b);
  Miss_buffer.record b 5 (Miss_buffer.Vf 1.5);
  Miss_buffer.record b 9 (Miss_buffer.Vf 2.5);
  check Alcotest.int "count" 2 (Miss_buffer.count b);
  check Alcotest.int "payload" 24 (Miss_buffer.payload_bytes b);
  (match Miss_buffer.entries b with
  | [ (5, Miss_buffer.Vf a); (9, Miss_buffer.Vf c) ] ->
      check (Alcotest.float 1e-12) "order preserved" 1.5 a;
      check (Alcotest.float 1e-12) "second" 2.5 c
  | _ -> Alcotest.fail "entries");
  check Alcotest.bool "device accounted" true (Memory.used_class mem `System > 0);
  Miss_buffer.drain b;
  check Alcotest.bool "drained" true (Miss_buffer.is_empty b);
  check Alcotest.int "memory released" 0 (Memory.used_class mem `System);
  check Alcotest.bool "peak kept" true (Miss_buffer.peak_bytes b > 0)

(* ---------------- Darray state machine ---------------- *)

let mk_cfg ?(num_gpus = 2) () = Rt_config.make ~num_gpus (Machine.desktop ())

let mk_da cfg name data =
  Darray.create cfg ~name ~host:(Mgacc_exec.View.of_float_array ~name data)

let xfer_bytes xs = List.fold_left (fun acc (x : Darray.xfer) -> acc + x.Darray.bytes) 0 xs

let test_darray_replicate_and_reuse () =
  let cfg = mk_cfg () in
  let da = mk_da cfg "a" (Array.init 100 float_of_int) in
  let xfers = Darray.ensure_replicated cfg da ~dirty_tracking:true in
  check Alcotest.int "load both gpus" (2 * 800) (xfer_bytes xfers);
  check Alcotest.string "state" "replicated" (Darray.state_name da);
  (* Second call: reuse, no transfers. *)
  check Alcotest.int "reuse" 0 (xfer_bytes (Darray.ensure_replicated cfg da ~dirty_tracking:true));
  (* Data actually present on both GPUs. *)
  let r = Darray.replica_of da in
  check (Alcotest.float 1e-12) "gpu0 content" 42.0 (Memory.float_data r.Darray.bufs.(0)).(42);
  check (Alcotest.float 1e-12) "gpu1 content" 42.0 (Memory.float_data r.Darray.bufs.(1)).(42)

let test_darray_distribute_windows () =
  let cfg = mk_cfg () in
  let da = mk_da cfg "a" (Array.init 100 float_of_int) in
  let ranges = Task_map.split ~lower:0 ~upper:100 ~parts:2 in
  let spec = { Darray.stride = 1; left = 1; right = 1; tile = None } in
  let xfers = Darray.ensure_distributed cfg da ~spec ~ranges in
  (* windows: [0,51) and [49,100): 51+51 elements. *)
  check Alcotest.int "window bytes" ((51 + 51) * 8) (xfer_bytes xfers);
  let p0 = Darray.part_for da ~gpu:0 and p1 = Darray.part_for da ~gpu:1 in
  check Alcotest.int "own split point" 50 p0.Darray.own.Interval.hi;
  check Alcotest.int "halo extends" 51 p0.Darray.window.Interval.hi;
  check Alcotest.int "p1 halo lo" 49 p1.Darray.window.Interval.lo;
  (* Reuse with identical split. *)
  check Alcotest.int "reuse" 0 (xfer_bytes (Darray.ensure_distributed cfg da ~spec ~ranges));
  (* Ownership. *)
  (match da.Darray.state with
  | Darray.Distributed d ->
      check Alcotest.int "owner of 0" 0 (Darray.owner_of d 0);
      check Alcotest.int "owner of 99" 1 (Darray.owner_of d 99);
      check Alcotest.int "owner of 49" 0 (Darray.owner_of d 49)
  | _ -> Alcotest.fail "not distributed");
  (* Content lands window-relative. *)
  let d1 = Memory.float_data p1.Darray.buf in
  check (Alcotest.float 1e-12) "gpu1 window content" 49.0 d1.(0)

let test_darray_transition_flushes () =
  let cfg = mk_cfg () in
  let host = Array.init 10 float_of_int in
  let da = mk_da cfg "a" host in
  let _ = Darray.ensure_replicated cfg da ~dirty_tracking:false in
  (* Simulate a device-side write on every replica (consistent copies). *)
  let r = Darray.replica_of da in
  Array.iter (fun buf -> (Memory.float_data buf).(3) <- 99.0) r.Darray.bufs;
  Darray.mark_device_written da;
  (* Transition to distributed must flush through the host. *)
  let ranges = Task_map.split ~lower:0 ~upper:10 ~parts:2 in
  let xfers = Darray.ensure_distributed cfg da ~spec:{ Darray.stride = 1; left = 0; right = 0; tile = None } ~ranges in
  check Alcotest.bool "host saw the write" true (host.(3) = 99.0);
  (* flush (80 bytes D2H) + reload (80 bytes H2D split across GPUs) *)
  check Alcotest.int "flush+reload bytes" 160 (xfer_bytes xfers);
  check Alcotest.string "now distributed" "distributed" (Darray.state_name da)

let test_darray_release_copyout () =
  let cfg = mk_cfg () in
  let host = Array.make 10 0.0 in
  let da = mk_da cfg "a" host in
  let _ = Darray.ensure_replicated cfg da ~dirty_tracking:false in
  let r = Darray.replica_of da in
  Array.iter (fun buf -> (Memory.float_data buf).(0) <- 7.0) r.Darray.bufs;
  Darray.mark_device_written da;
  da.Darray.needs_copyout <- true;
  let xfers = Darray.release cfg da in
  check Alcotest.bool "copied out" true (host.(0) = 7.0);
  check Alcotest.bool "transferred" true (xfer_bytes xfers > 0);
  check Alcotest.string "freed" "unallocated" (Darray.state_name da);
  (* All device memory returned. *)
  for g = 0 to 1 do
    check Alcotest.int "no leak" 0
      (Memory.used (Machine.device cfg.Rt_config.machine g).Mgacc_gpusim.Device.memory)
  done

let test_darray_halo_covering_reuse () =
  (* A resident distribution with wider halos must serve a narrower request
     without reloading (the alternating-stencil reuse); a wider request
     must reshape. *)
  let cfg = mk_cfg () in
  let da = mk_da cfg "a" (Array.init 100 float_of_int) in
  let ranges = Task_map.split ~lower:0 ~upper:100 ~parts:2 in
  let wide = { Darray.stride = 1; left = 2; right = 2; tile = None } in
  let narrow = { Darray.stride = 1; left = 0; right = 0; tile = None } in
  let x1 = Darray.ensure_distributed cfg da ~spec:wide ~ranges in
  check Alcotest.bool "initial load" true (xfer_bytes x1 > 0);
  check Alcotest.int "narrower request reuses" 0
    (xfer_bytes (Darray.ensure_distributed cfg da ~spec:narrow ~ranges));
  check Alcotest.bool "wider request reshapes" true
    (xfer_bytes
       (Darray.ensure_distributed cfg da ~spec:{ Darray.stride = 1; left = 5; right = 5; tile = None } ~ranges)
    > 0)

let test_halo_exchange_three_gpus () =
  (* The middle GPU of three owns a block with halos on both sides; after a
     write, both its halos must refresh from the two neighbors. *)
  let m = Machine.desktop () in
  ignore m;
  let machine = Mgacc_gpusim.Machine.supernode () in
  let cfg = Rt_config.make ~num_gpus:3 machine in
  let da = mk_da cfg "a" (Array.init 90 float_of_int) in
  let ranges = Task_map.split ~lower:0 ~upper:90 ~parts:3 in
  let spec = { Darray.stride = 1; left = 1; right = 1; tile = None } in
  let _ = Darray.ensure_distributed cfg da ~spec ~ranges in
  (* Write each GPU's own block functionally and mark written. *)
  (match da.Darray.state with
  | Darray.Distributed d ->
      Array.iter
        (fun (p : Darray.part) ->
          let data = Memory.float_data p.Darray.buf in
          let lo = p.Darray.window.Interval.lo in
          for i = p.Darray.own.Interval.lo to p.Darray.own.Interval.hi - 1 do
            data.(i - lo) <- 1000.0 +. float_of_int i
          done)
        d.Darray.parts
  | _ -> Alcotest.fail "not distributed");
  Darray.mark_device_written da;
  (* Build a fake plan context via the public comm manager API. *)
  let program =
    Mgacc.parse_string ~name:"t"
      {|void main() { int n = 90; double a[n]; int i;
#pragma acc parallel loop localaccess(a: stride(1, 1, 1))
for (i = 0; i < n; i++) { a[i] = 1.0; } }|}
  in
  let plans = Mgacc.compile program in
  let plan = List.hd (Mgacc.Program_plan.all_plans plans) in
  let result =
    Comm_manager.reconcile cfg plan
      ~get_darray:(fun _ -> da)
      ~reductions:[] ~wrote:(fun _ -> true)
      ~next_window:(fun _ -> Comm_manager.Cw_all)
  in
  (* Four halo segments refresh: gpu0<-1, gpu1<-0, gpu1<-2, gpu2<-1. *)
  let xfers = Comm_manager.xfers_of result in
  check Alcotest.int "four halo transfers" 4 (List.length xfers);
  check Alcotest.int "one element each" (4 * 8)
    (List.fold_left (fun acc (x : Darray.xfer) -> acc + x.Darray.bytes) 0 xfers);
  (* The middle GPU's halos now hold the neighbors' fresh values. *)
  match da.Darray.state with
  | Darray.Distributed d ->
      let p1 = d.Darray.parts.(1) in
      let data = Memory.float_data p1.Darray.buf in
      let lo = p1.Darray.window.Interval.lo in
      check (Alcotest.float 1e-12) "left halo fresh" (1000.0 +. 29.0) data.(29 - lo);
      check (Alcotest.float 1e-12) "right halo fresh" (1000.0 +. 60.0) data.(60 - lo)
  | _ -> Alcotest.fail "not distributed"

let test_miss_records_preserve_order () =
  (* Two writes to the same missed element: the later one must win after
     replay (program order per writing GPU). *)
  let src =
    {|void main() {
        int n = 100; double a[n]; int i;
        for (i = 0; i < n; i++) { a[i] = 0.0; }
        #pragma acc data copy(a[0:n])
        {
          #pragma acc parallel loop localaccess(a: stride(1, 0, 0))
          for (i = 0; i < n; i++) {
            if (i == 60) { a[0] = 1.0; a[0] = 2.0; }
          }
        }
      }|}
  in
  let m = Machine.desktop () in
  let config = Rt_config.make ~num_gpus:2 m in
  let env, _ = Mgacc.run_acc ~config ~machine:m (Mgacc.parse_string ~name:"t" src) in
  check (Alcotest.float 1e-12) "last write wins" 2.0 (Mgacc.float_results env "a").(0)

(* ---------------- Profiler ---------------- *)

let test_profiler () =
  let p = Profiler.create () in
  Profiler.add_cpu_gpu p ~seconds:1.0 ~bytes:100;
  Profiler.add_gpu_gpu p ~seconds:0.5 ~bytes:50;
  Profiler.add_kernel p ~seconds:2.0;
  Profiler.add_overhead p ~seconds:0.25;
  check (Alcotest.float 1e-12) "total" 3.75 (Profiler.total_time p);
  check Alcotest.int "bytes" 100 (Profiler.cpu_gpu_bytes p);
  Profiler.incr_loops p;
  Profiler.incr_kernel_launches p;
  check Alcotest.int "loops" 1 (Profiler.loops_executed p)

let suite =
  [
    tc "task map: even split" test_split_even;
    tc "task map: remainder spread" test_split_remainder;
    tc "task map: more parts than work" test_split_more_parts_than_work;
    tc "task map: localaccess window" test_window;
    tc "dirty: two-level transfer planning" test_dirty_two_level;
    tc "dirty: single-level ships everything" test_dirty_single_level;
    tc "dirty: system memory accounting" test_dirty_footprint_accounted;
    tc "miss buffer: record/drain/peak" test_miss_buffer;
    tc "darray: replicate, reuse, content" test_darray_replicate_and_reuse;
    tc "darray: distribution windows and owners" test_darray_distribute_windows;
    tc "darray: placement transition flushes" test_darray_transition_flushes;
    tc "darray: release with copyout" test_darray_release_copyout;
    tc "darray: halo-covering reuse" test_darray_halo_covering_reuse;
    tc "comm: three-GPU halo exchange" test_halo_exchange_three_gpus;
    tc "comm: miss records preserve program order" test_miss_records_preserve_order;
    tc "profiler: accumulation" test_profiler;
  ]
