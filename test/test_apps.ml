(* Application-level tests: the three paper benchmarks agree across every
   execution variant, their workload generators match the in-source
   generators bit for bit, and their static characteristics match the
   paper's Table II structure. *)

open Mgacc_apps

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let desktop () = Mgacc.Machine.desktop ()

let all_variants_agree app =
  let ref_env = App_common.sequential app in
  let omp_env, _ = App_common.openmp ~machine:(desktop ()) app in
  App_common.check_exn app ~against:ref_env omp_env;
  let pgi_env, _ = App_common.pgi ~machine:(desktop ()) app in
  App_common.check_exn app ~against:ref_env pgi_env;
  List.iter
    (fun n ->
      let env, _ = App_common.proposal ~num_gpus:n ~machine:(desktop ()) app in
      App_common.check_exn app ~against:ref_env env)
    [ 1; 2 ];
  let env3, _ = App_common.proposal ~num_gpus:3 ~machine:(Mgacc.Machine.supernode ()) app in
  App_common.check_exn app ~against:ref_env env3;
  ref_env

(* ---------------- MD ---------------- *)

let md_small = { Md.atoms = 400; max_neighbors = 8; seed = 17 }

let test_md_variants () = ignore (all_variants_agree (Md.app md_small))

let test_md_cuda_matches () =
  let ref_env = App_common.sequential (Md.app md_small) in
  let expected = Mgacc.float_results ref_env "force" in
  let force, report = Md.run_cuda ~machine:(desktop ()) md_small in
  Array.iteri
    (fun i v ->
      if Float.abs (v -. expected.(i)) > 1e-9 *. Float.max 1.0 (Float.abs expected.(i)) then
        Alcotest.failf "force[%d]: %.12g vs %.12g" i v expected.(i))
    force;
  check Alcotest.int "one kernel" 1 report.Mgacc.Report.launches

let test_md_no_inter_gpu_traffic () =
  let _, report = App_common.proposal ~num_gpus:2 ~machine:(desktop ()) (Md.app md_small) in
  (* The paper: "MD requires no inter-GPU communications". *)
  check Alcotest.int "no gpu-gpu bytes" 0 report.Mgacc.Report.gpu_gpu_bytes

let test_md_cuda_multi_matches () =
  let ref_env = App_common.sequential (Md.app md_small) in
  let expected = Mgacc.float_results ref_env "force" in
  let force, r2 = Md.run_cuda_multi ~machine:(desktop ()) ~gpus:2 md_small in
  Array.iteri
    (fun i v ->
      if Float.abs (v -. expected.(i)) > 1e-9 *. Float.max 1.0 (Float.abs expected.(i)) then
        Alcotest.failf "multi force[%d]: %.12g vs %.12g" i v expected.(i))
    force;
  (* The automated runtime should stay close to the hand-written ceiling. *)
  let _, rp = App_common.proposal ~num_gpus:2 ~machine:(desktop ()) (Md.app md_small) in
  check Alcotest.bool "proposal within 30% of expert" true
    (rp.Mgacc.Report.total_time < 1.3 *. r2.Mgacc.Report.total_time)

let test_md_table2_structure () =
  let plans =
    Mgacc.compile (Mgacc.parse_string ~name:"md.c" (Md.source md_small))
  in
  check Alcotest.int "one parallel loop (B)" 1 (Mgacc.Program_plan.loop_count plans);
  let plan = List.hd (Mgacc.Program_plan.all_plans plans) in
  let la =
    List.filter (fun c -> c.Mgacc.Array_config.localaccess <> None) plan.Mgacc.Kernel_plan.configs
  in
  check Alcotest.int "arrays in loop" 3 (List.length plan.Mgacc.Kernel_plan.configs);
  check Alcotest.int "localaccess arrays (D=2/3)" 2 (List.length la)

(* ---------------- KMEANS ---------------- *)

let kmeans_small = { Kmeans.points = 500; features = 6; clusters = 4; iterations = 3; seed = 23 }

let test_kmeans_variants () = ignore (all_variants_agree (Kmeans.app kmeans_small))

let test_kmeans_cuda_matches () =
  let ref_env = App_common.sequential (Kmeans.app kmeans_small) in
  let centers, membership, _ = Kmeans.run_cuda ~machine:(desktop ()) kmeans_small in
  let exp_c = Mgacc.float_results ref_env "centers" in
  let exp_m = Mgacc.int_results ref_env "membership" in
  Array.iteri
    (fun i v ->
      if Float.abs (v -. exp_c.(i)) > 1e-6 then
        Alcotest.failf "centers[%d]: %.12g vs %.12g" i v exp_c.(i))
    centers;
  check (Alcotest.array Alcotest.int) "membership" exp_m membership

let test_kmeans_has_reduction_traffic () =
  let _, report =
    App_common.proposal ~num_gpus:2 ~machine:(desktop ()) (Kmeans.app kmeans_small)
  in
  check Alcotest.bool "small gpu-gpu traffic (array reduction)" true
    (report.Mgacc.Report.gpu_gpu_bytes > 0)

let test_kmeans_table2_structure () =
  let plans = Mgacc.compile (Mgacc.parse_string ~name:"k.c" (Kmeans.source kmeans_small)) in
  check Alcotest.int "two parallel loops (B)" 2 (Mgacc.Program_plan.loop_count plans);
  let arrays =
    List.sort_uniq compare
      (List.concat_map
         (fun p -> List.map (fun c -> c.Mgacc.Array_config.array) p.Mgacc.Kernel_plan.configs)
         (Mgacc.Program_plan.all_plans plans))
  in
  check Alcotest.int "arrays used in loops" 5 (List.length arrays);
  let la =
    List.sort_uniq compare
      (List.concat_map
         (fun p ->
           List.filter_map
             (fun c ->
               if c.Mgacc.Array_config.localaccess <> None then Some c.Mgacc.Array_config.array
               else None)
             p.Mgacc.Kernel_plan.configs)
         (Mgacc.Program_plan.all_plans plans))
  in
  check (Alcotest.list Alcotest.string) "localaccess arrays (D=2/5)" [ "membership"; "x" ] la

let test_kmeans_layout_transform_applies () =
  let plans = Mgacc.compile (Mgacc.parse_string ~name:"k.c" (Kmeans.source kmeans_small)) in
  let plan = List.hd (Mgacc.Program_plan.all_plans plans) in
  check Alcotest.bool "x is transformed" true (Mgacc.Kernel_plan.layout_transformed plan "x");
  check Alcotest.bool "centers are not" false
    (Mgacc.Kernel_plan.layout_transformed plan "centers")

let test_kmeans_kernel_count () =
  let _, report =
    App_common.proposal ~num_gpus:1 ~machine:(desktop ()) (Kmeans.app kmeans_small)
  in
  (* 2 loop executions per iteration (C = 2 * iterations). *)
  check Alcotest.int "loop executions" (2 * kmeans_small.Kmeans.iterations)
    report.Mgacc.Report.loops

(* ---------------- BFS ---------------- *)

let bfs_small = { Bfs.nodes = 1500; max_degree = 5; seed = 31 }

let test_bfs_variants () = ignore (all_variants_agree (Bfs.app bfs_small))

let test_bfs_cuda_matches () =
  let ref_env = App_common.sequential (Bfs.app bfs_small) in
  let levels, _ = Bfs.run_cuda ~machine:(desktop ()) bfs_small in
  check (Alcotest.array Alcotest.int) "levels" (Mgacc.int_results ref_env "levels") levels

let test_bfs_visits_everything () =
  let ref_env = App_common.sequential (Bfs.app bfs_small) in
  let levels = Mgacc.int_results ref_env "levels" in
  Array.iteri (fun i l -> if l < 0 then Alcotest.failf "node %d unreachable" i) levels

let test_bfs_heavy_gpu_traffic () =
  let _, r2 = App_common.proposal ~num_gpus:2 ~machine:(desktop ()) (Bfs.app bfs_small) in
  let _, rmd = App_common.proposal ~num_gpus:2 ~machine:(desktop ()) (Md.app md_small) in
  (* BFS is the communication-heavy case of the paper. *)
  check Alcotest.bool "bfs reconciliation traffic" true
    (r2.Mgacc.Report.gpu_gpu_bytes > rmd.Mgacc.Report.gpu_gpu_bytes)

let test_bfs_table2_structure () =
  let plans = Mgacc.compile (Mgacc.parse_string ~name:"b.c" (Bfs.source bfs_small)) in
  check Alcotest.int "one parallel loop (B)" 1 (Mgacc.Program_plan.loop_count plans);
  let plan = List.hd (Mgacc.Program_plan.all_plans plans) in
  check Alcotest.int "arrays in loop" 3 (List.length plan.Mgacc.Kernel_plan.configs);
  let la =
    List.filter (fun c -> c.Mgacc.Array_config.localaccess <> None) plan.Mgacc.Kernel_plan.configs
  in
  check Alcotest.int "localaccess arrays (D=2/3)" 2 (List.length la)

(* ---------------- Extended applications (SPMV, Monte Carlo) ---------------- *)

let spmv_small = { Spmv.rows = 800; width = 6; iterations = 3; seed = 19 }
let mc_small = { Montecarlo.paths = 600; steps = 6; bins = 16; seed = 29 }

let test_spmv_variants () = ignore (all_variants_agree (Spmv.app spmv_small))

let test_spmv_moderate_traffic () =
  (* x is replicated and rewritten each iteration: SPMV sits between MD
     (zero) and BFS (heavy) in reconciliation traffic. *)
  let _, r = App_common.proposal ~num_gpus:2 ~machine:(desktop ()) (Spmv.app spmv_small) in
  check Alcotest.bool "some p2p" true (r.Mgacc.Report.gpu_gpu_bytes > 0)

let test_montecarlo_variants () = ignore (all_variants_agree (Montecarlo.app mc_small))

let test_montecarlo_mass_conserved () =
  let env, report =
    App_common.proposal ~num_gpus:2 ~machine:(desktop ()) (Montecarlo.app mc_small)
  in
  let hist = Mgacc.float_results env "hist" in
  check (Alcotest.float 1e-9) "every path binned" (float_of_int mc_small.Montecarlo.paths)
    (Array.fold_left ( +. ) 0.0 hist);
  (* No input arrays: CPU-GPU traffic is just the histogram and partials. *)
  check Alcotest.bool "tiny cpu-gpu traffic" true (report.Mgacc.Report.cpu_gpu_bytes < 4096)

let test_montecarlo_price_sane () =
  let env, _ = App_common.proposal ~num_gpus:2 ~machine:(desktop ()) (Montecarlo.app mc_small) in
  match Mgacc.Host_interp.get_scalar env "total" with
  | Mgacc.Host_interp.Vfloat total ->
      let price = total /. float_of_int mc_small.Montecarlo.paths in
      check Alcotest.bool "price in a plausible band" true (price > 0.1 && price < 50.0)
  | _ -> Alcotest.fail "total kind"

(* ---------------- Workload generators match mini-C ---------------- *)

let test_lcg_matches_minic () =
  (* Run the LCG inside a mini-C program and compare streams. *)
  let src =
    {|void main() {
        int n = 64; int out[n]; int seed = 77; int i;
        for (i = 0; i < n; i++) {
          seed = (seed * 1103515245 + 12345) % 2147483648;
          out[i] = seed;
        }
      }|}
  in
  let env = Mgacc.run_sequential (Mgacc.parse_string ~name:"t" src) in
  check (Alcotest.array Alcotest.int) "lcg streams equal"
    (Workloads.lcg_stream ~seed:77 64)
    (Mgacc.int_results env "out")

let test_generators_match_minic () =
  (* The app-level CUDA tests above already verify this end to end; here,
     check the position generator directly against the MD source's init. *)
  let p = { Md.atoms = 32; max_neighbors = 4; seed = 3 } in
  let env = App_common.sequential (Md.app p) in
  let pos_minic = Mgacc.float_results env "pos" in
  let pos_ocaml = Workloads.md_positions ~seed:3 ~atoms:32 in
  check (Alcotest.array (Alcotest.float 0.0)) "positions bit-identical" pos_ocaml pos_minic

let suite =
  [
    tc "md: all variants agree" test_md_variants;
    tc "md: cuda baseline matches" test_md_cuda_matches;
    tc "md: zero inter-GPU traffic" test_md_no_inter_gpu_traffic;
    tc "md: hand-written multi-GPU CUDA matches" test_md_cuda_multi_matches;
    tc "md: Table II structure" test_md_table2_structure;
    tc "kmeans: all variants agree" test_kmeans_variants;
    tc "kmeans: cuda baseline matches" test_kmeans_cuda_matches;
    tc "kmeans: reduction causes small traffic" test_kmeans_has_reduction_traffic;
    tc "kmeans: Table II structure" test_kmeans_table2_structure;
    tc "kmeans: layout transform applies to x" test_kmeans_layout_transform_applies;
    tc "kmeans: kernel executions per iteration" test_kmeans_kernel_count;
    tc "bfs: all variants agree" test_bfs_variants;
    tc "bfs: cuda baseline matches" test_bfs_cuda_matches;
    tc "bfs: graph fully reachable" test_bfs_visits_everything;
    tc "bfs: heaviest reconciliation traffic" test_bfs_heavy_gpu_traffic;
    tc "bfs: Table II structure" test_bfs_table2_structure;
    tc "spmv: all variants agree" test_spmv_variants;
    tc "spmv: moderate reconciliation traffic" test_spmv_moderate_traffic;
    tc "montecarlo: all variants agree" test_montecarlo_variants;
    tc "montecarlo: histogram mass conserved" test_montecarlo_mass_conserved;
    tc "montecarlo: price estimate sane" test_montecarlo_price_sane;
    tc "workloads: LCG matches mini-C" test_lcg_matches_minic;
    tc "workloads: generators match sources" test_generators_match_minic;
  ]
