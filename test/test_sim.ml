(* Unit tests for the simulation core: event queue, timelines, traces. *)

open Mgacc_sim

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let test_event_queue_order () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3.0 "c";
  Event_queue.push q ~time:1.0 "a";
  Event_queue.push q ~time:2.0 "b";
  check (Alcotest.option (Alcotest.float 1e-12)) "peek" (Some 1.0) (Event_queue.peek_time q);
  let order = List.init 3 (fun _ -> match Event_queue.pop q with Some (_, v) -> v | None -> "?") in
  check (Alcotest.list Alcotest.string) "sorted" [ "a"; "b"; "c" ] order;
  check Alcotest.bool "empty" true (Event_queue.is_empty q)

let test_event_queue_fifo_ties () =
  let q = Event_queue.create () in
  List.iter (fun v -> Event_queue.push q ~time:1.0 v) [ "x"; "y"; "z" ];
  let order = List.init 3 (fun _ -> match Event_queue.pop q with Some (_, v) -> v | None -> "?") in
  check (Alcotest.list Alcotest.string) "fifo among equal keys" [ "x"; "y"; "z" ] order

let test_event_queue_interleaved () =
  let q = Event_queue.create () in
  for i = 0 to 99 do
    Event_queue.push q ~time:(float_of_int ((i * 37) mod 100)) i
  done;
  let prev = ref neg_infinity in
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match Event_queue.pop q with
    | None -> continue := false
    | Some (t, _) ->
        if t < !prev then Alcotest.failf "not monotone: %f after %f" t !prev;
        prev := t;
        incr count
  done;
  check Alcotest.int "drained all" 100 !count

let test_event_queue_of_list () =
  (* of_list must pop exactly like push-one-by-one: sorted by time, FIFO
     among equal keys (list order). *)
  let entries = [ (2.0, "b1"); (1.0, "a1"); (2.0, "b2"); (0.5, "z"); (1.0, "a2") ] in
  let q = Event_queue.of_list entries in
  check Alcotest.int "size" 5 (Event_queue.size q);
  let order = List.init 5 (fun _ -> match Event_queue.pop q with Some (_, v) -> v | None -> "?") in
  check (Alcotest.list Alcotest.string) "sorted, FIFO ties" [ "z"; "a1"; "a2"; "b1"; "b2" ] order;
  (* Larger randomized cross-check against push-one-by-one. *)
  let entries = List.init 200 (fun i -> (float_of_int ((i * 37) mod 50), i)) in
  let bulk = Event_queue.of_list entries in
  let incr_q = Event_queue.create () in
  List.iter (fun (t, v) -> Event_queue.push incr_q ~time:t v) entries;
  for _ = 1 to 200 do
    check
      (Alcotest.option (Alcotest.pair (Alcotest.float 0.0) Alcotest.int))
      "same pop sequence" (Event_queue.pop incr_q) (Event_queue.pop bulk)
  done

let test_event_queue_pop_min_next_time () =
  let q = Event_queue.of_list [ (3.0, "c"); (1.0, "a") ] in
  check (Alcotest.float 1e-12) "next_time" 1.0 (Event_queue.next_time q);
  check Alcotest.string "pop_min" "a" (Event_queue.pop_min q);
  check Alcotest.string "pop_min again" "c" (Event_queue.pop_min q);
  check Alcotest.bool "next_time empty = infinity" true (Event_queue.next_time q = infinity);
  Alcotest.check_raises "pop_min on empty" (Invalid_argument "Event_queue.pop_min: empty")
    (fun () -> ignore (Event_queue.pop_min q))

let test_event_queue_no_retention () =
  (* A popped value must be collectable: the queue used to keep every
     popped entry alive in its backing array. Observed through a Weak
     pointer surviving (or not) a full major GC. *)
  let q = Event_queue.create () in
  let w = Weak.create 1 in
  let () =
    let v = ref 42 in
    Weak.set w 0 (Some v);
    Event_queue.push q ~time:1.0 v;
    Event_queue.push q ~time:2.0 (ref 0);
    match Event_queue.pop q with
    | Some (_, popped) -> check Alcotest.int "popped value" 42 !popped
    | None -> Alcotest.fail "expected a value"
  in
  Gc.full_major ();
  Gc.full_major ();
  check Alcotest.bool "popped value was collected (queue still non-empty)" false
    (Weak.check w 0);
  check Alcotest.int "remaining entry intact" 1 (Event_queue.size q)

let test_bag_basics () =
  let b = Bag.create () in
  check Alcotest.bool "fresh is empty" true (Bag.is_empty b);
  List.iter (Bag.push b) [ 1; 2; 3; 4; 5 ];
  check Alcotest.int "length" 5 (Bag.length b);
  check Alcotest.int "get" 3 (Bag.get b 2);
  check (Alcotest.list Alcotest.int) "fold sees push order" [ 5; 4; 3; 2; 1 ]
    (Bag.fold (fun acc x -> x :: acc) [] b);
  Alcotest.check_raises "get out of bounds" (Invalid_argument "Bag.get: 5 (length 5)") (fun () ->
      ignore (Bag.get b 5));
  Bag.clear b;
  check Alcotest.bool "cleared" true (Bag.is_empty b)

let test_bag_filter_stable () =
  let b = Bag.create () in
  for i = 1 to 10 do
    Bag.push b i
  done;
  let removed = ref [] in
  Bag.filter_in_place b ~keep:(fun x -> x mod 2 = 0) ~removed:(fun x -> removed := x :: !removed);
  check (Alcotest.list Alcotest.int) "survivors keep relative order" [ 2; 4; 6; 8; 10 ]
    (List.rev (Bag.fold (fun acc x -> x :: acc) [] b));
  check (Alcotest.list Alcotest.int) "removed seen in order" [ 1; 3; 5; 7; 9 ] (List.rev !removed)

let test_bag_no_retention () =
  (* filter_in_place must clear vacated slots so removed elements are
     collectable while the bag lives on. *)
  let b = Bag.create () in
  let w = Weak.create 1 in
  let () =
    let doomed = ref 7 in
    Weak.set w 0 (Some doomed);
    Bag.push b doomed;
    Bag.push b (ref 1);
    Bag.filter_in_place b ~keep:(fun r -> !r <> 7) ~removed:ignore
  in
  Gc.full_major ();
  Gc.full_major ();
  check Alcotest.bool "removed element was collected (bag still non-empty)" false (Weak.check w 0);
  check Alcotest.int "survivor intact" 1 (Bag.length b)

let test_timeline_serializes () =
  let t = Timeline.create "gpu0" in
  let s1, f1 = Timeline.reserve t ~ready:0.0 ~duration:2.0 in
  let s2, f2 = Timeline.reserve t ~ready:1.0 ~duration:1.0 in
  check (Alcotest.float 1e-12) "first starts at ready" 0.0 s1;
  check (Alcotest.float 1e-12) "first ends" 2.0 f1;
  check (Alcotest.float 1e-12) "second waits for resource" 2.0 s2;
  check (Alcotest.float 1e-12) "second ends" 3.0 f2;
  check (Alcotest.float 1e-12) "busy time" 3.0 (Timeline.busy_time t);
  Timeline.reset t;
  check (Alcotest.float 1e-12) "reset" 0.0 (Timeline.available_at t)

let test_timeline_gap () =
  let t = Timeline.create "x" in
  let _ = Timeline.reserve t ~ready:0.0 ~duration:1.0 in
  let s, _ = Timeline.reserve t ~ready:5.0 ~duration:1.0 in
  check (Alcotest.float 1e-12) "idle gap honored" 5.0 s;
  check (Alcotest.float 1e-12) "busy excludes gap" 2.0 (Timeline.busy_time t)

let test_timeline_invalid () =
  let t = Timeline.create "x" in
  Alcotest.check_raises "negative duration"
    (Invalid_argument "Timeline.reserve: negative duration") (fun () ->
      ignore (Timeline.reserve t ~ready:0.0 ~duration:(-1.0)))

let span resource category start finish bytes =
  { Trace.id = 0; causes = []; resource; category; label = "t"; start; finish; bytes }

let test_trace_totals () =
  let t = Trace.create () in
  Trace.add t (span "gpu0" Trace.Kernel 0.0 2.0 0);
  Trace.add t (span "pcie" Trace.Host_to_device 0.0 1.0 100);
  Trace.add t (span "pcie" Trace.Peer 2.0 3.0 50);
  check (Alcotest.float 1e-12) "kernel total" 2.0 (Trace.total_in t Trace.Kernel);
  check Alcotest.int "h2d bytes" 100 (Trace.bytes_in t Trace.Host_to_device);
  check Alcotest.int "peer bytes" 50 (Trace.bytes_in t Trace.Peer);
  check (Alcotest.float 1e-12) "makespan" 3.0 (Trace.makespan t);
  Trace.clear t;
  check Alcotest.int "cleared" 0 (List.length (Trace.spans t))

let test_trace_busy_union () =
  let t = Trace.create () in
  (* Overlapping spans of the same category must not double count. *)
  Trace.add t (span "a" Trace.Kernel 0.0 2.0 0);
  Trace.add t (span "b" Trace.Kernel 1.0 3.0 0);
  Trace.add t (span "c" Trace.Kernel 5.0 6.0 0);
  let busy = Trace.busy_union t (fun c -> c = Trace.Kernel) in
  check (Alcotest.float 1e-12) "union length" 4.0 busy

let test_trace_gantt_renders () =
  let t = Trace.create () in
  Trace.add t (span "gpu0" Trace.Kernel 0.0 1.0 0);
  let s = Format.asprintf "%a" (Trace.pp_gantt ~width:40) t in
  check Alcotest.bool "nonempty" true (String.length s > 10)

let suite =
  [
    tc "event queue: time order" test_event_queue_order;
    tc "event queue: FIFO ties" test_event_queue_fifo_ties;
    tc "event queue: monotone drain" test_event_queue_interleaved;
    tc "event queue: of_list bulk heapify" test_event_queue_of_list;
    tc "event queue: pop_min and next_time" test_event_queue_pop_min_next_time;
    tc "event queue: popped values are not retained" test_event_queue_no_retention;
    tc "bag: push/get/fold/clear" test_bag_basics;
    tc "bag: stable filter_in_place" test_bag_filter_stable;
    tc "bag: removed values are not retained" test_bag_no_retention;
    tc "timeline: serializes reservations" test_timeline_serializes;
    tc "timeline: honors idle gaps" test_timeline_gap;
    tc "timeline: rejects bad input" test_timeline_invalid;
    tc "trace: totals and bytes" test_trace_totals;
    tc "trace: busy union deduplicates overlap" test_trace_busy_union;
    tc "trace: gantt renders" test_trace_gantt_renders;
  ]
