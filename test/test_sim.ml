(* Unit tests for the simulation core: event queue, timelines, traces. *)

open Mgacc_sim

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let test_event_queue_order () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3.0 "c";
  Event_queue.push q ~time:1.0 "a";
  Event_queue.push q ~time:2.0 "b";
  check (Alcotest.option (Alcotest.float 1e-12)) "peek" (Some 1.0) (Event_queue.peek_time q);
  let order = List.init 3 (fun _ -> match Event_queue.pop q with Some (_, v) -> v | None -> "?") in
  check (Alcotest.list Alcotest.string) "sorted" [ "a"; "b"; "c" ] order;
  check Alcotest.bool "empty" true (Event_queue.is_empty q)

let test_event_queue_fifo_ties () =
  let q = Event_queue.create () in
  List.iter (fun v -> Event_queue.push q ~time:1.0 v) [ "x"; "y"; "z" ];
  let order = List.init 3 (fun _ -> match Event_queue.pop q with Some (_, v) -> v | None -> "?") in
  check (Alcotest.list Alcotest.string) "fifo among equal keys" [ "x"; "y"; "z" ] order

let test_event_queue_interleaved () =
  let q = Event_queue.create () in
  for i = 0 to 99 do
    Event_queue.push q ~time:(float_of_int ((i * 37) mod 100)) i
  done;
  let prev = ref neg_infinity in
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match Event_queue.pop q with
    | None -> continue := false
    | Some (t, _) ->
        if t < !prev then Alcotest.failf "not monotone: %f after %f" t !prev;
        prev := t;
        incr count
  done;
  check Alcotest.int "drained all" 100 !count

let test_timeline_serializes () =
  let t = Timeline.create "gpu0" in
  let s1, f1 = Timeline.reserve t ~ready:0.0 ~duration:2.0 in
  let s2, f2 = Timeline.reserve t ~ready:1.0 ~duration:1.0 in
  check (Alcotest.float 1e-12) "first starts at ready" 0.0 s1;
  check (Alcotest.float 1e-12) "first ends" 2.0 f1;
  check (Alcotest.float 1e-12) "second waits for resource" 2.0 s2;
  check (Alcotest.float 1e-12) "second ends" 3.0 f2;
  check (Alcotest.float 1e-12) "busy time" 3.0 (Timeline.busy_time t);
  Timeline.reset t;
  check (Alcotest.float 1e-12) "reset" 0.0 (Timeline.available_at t)

let test_timeline_gap () =
  let t = Timeline.create "x" in
  let _ = Timeline.reserve t ~ready:0.0 ~duration:1.0 in
  let s, _ = Timeline.reserve t ~ready:5.0 ~duration:1.0 in
  check (Alcotest.float 1e-12) "idle gap honored" 5.0 s;
  check (Alcotest.float 1e-12) "busy excludes gap" 2.0 (Timeline.busy_time t)

let test_timeline_invalid () =
  let t = Timeline.create "x" in
  Alcotest.check_raises "negative duration"
    (Invalid_argument "Timeline.reserve: negative duration") (fun () ->
      ignore (Timeline.reserve t ~ready:0.0 ~duration:(-1.0)))

let span resource category start finish bytes =
  { Trace.id = 0; causes = []; resource; category; label = "t"; start; finish; bytes }

let test_trace_totals () =
  let t = Trace.create () in
  Trace.add t (span "gpu0" Trace.Kernel 0.0 2.0 0);
  Trace.add t (span "pcie" Trace.Host_to_device 0.0 1.0 100);
  Trace.add t (span "pcie" Trace.Peer 2.0 3.0 50);
  check (Alcotest.float 1e-12) "kernel total" 2.0 (Trace.total_in t Trace.Kernel);
  check Alcotest.int "h2d bytes" 100 (Trace.bytes_in t Trace.Host_to_device);
  check Alcotest.int "peer bytes" 50 (Trace.bytes_in t Trace.Peer);
  check (Alcotest.float 1e-12) "makespan" 3.0 (Trace.makespan t);
  Trace.clear t;
  check Alcotest.int "cleared" 0 (List.length (Trace.spans t))

let test_trace_busy_union () =
  let t = Trace.create () in
  (* Overlapping spans of the same category must not double count. *)
  Trace.add t (span "a" Trace.Kernel 0.0 2.0 0);
  Trace.add t (span "b" Trace.Kernel 1.0 3.0 0);
  Trace.add t (span "c" Trace.Kernel 5.0 6.0 0);
  let busy = Trace.busy_union t (fun c -> c = Trace.Kernel) in
  check (Alcotest.float 1e-12) "union length" 4.0 busy

let test_trace_gantt_renders () =
  let t = Trace.create () in
  Trace.add t (span "gpu0" Trace.Kernel 0.0 1.0 0);
  let s = Format.asprintf "%a" (Trace.pp_gantt ~width:40) t in
  check Alcotest.bool "nonempty" true (String.length s > 10)

let suite =
  [
    tc "event queue: time order" test_event_queue_order;
    tc "event queue: FIFO ties" test_event_queue_fifo_ties;
    tc "event queue: monotone drain" test_event_queue_interleaved;
    tc "timeline: serializes reservations" test_timeline_serializes;
    tc "timeline: honors idle gaps" test_timeline_gap;
    tc "timeline: rejects bad input" test_timeline_invalid;
    tc "trace: totals and bytes" test_trace_totals;
    tc "trace: busy union deduplicates overlap" test_trace_busy_union;
    tc "trace: gantt renders" test_trace_gantt_renders;
  ]
