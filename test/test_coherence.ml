(* Tests for demand-driven inter-GPU coherence (--coherence lazy): the
   off-switch identity guarantee, functional equivalence with the eager
   protocol on whole applications and on generated affine programs, and
   the traffic behaviors the protocol exists for — window-limited dirty
   shipping, deferral of unread reduction results, on-demand pulls and
   the binomial broadcast tree. See docs/COHERENCE.md. *)

open Mgacc_apps

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f
let desktop () = Mgacc.Machine.desktop ()
let supernode () = Mgacc.Machine.supernode ()
let cluster4 () = Mgacc.Machine.cluster ~nodes:2 ~gpus_per_node:2 ()

let bfs_small = Bfs.app { Bfs.nodes = 12000; max_degree = 10; seed = 5 }

let kmeans_small =
  Kmeans.app { Kmeans.points = 4000; features = 12; clusters = 5; iterations = 6; seed = 11 }

let md_small = Md.app { Md.atoms = 400; max_neighbors = 8; seed = 17 }
let spmv_small = Spmv.app { Spmv.rows = 3000; width = 8; iterations = 4; seed = 19 }
let mc_small = Montecarlo.app { Montecarlo.paths = 3000; steps = 8; bins = 32; seed = 29 }
let five_apps = [ bfs_small; kmeans_small; md_small; spmv_small; mc_small ]

(* ---------------- whole-application equivalence ---------------- *)

let test_lazy_results_match_sequential () =
  (* Lazy coherence defers and re-routes transfers but every element a
     kernel or the host reads must be valid by then: all five apps must
     match the sequential reference exactly, under barrier and overlap
     execution. *)
  List.iter
    (fun app ->
      let reference = App_common.sequential app in
      let env, _ =
        App_common.proposal ~coherence:Mgacc.Rt_config.Lazy ~num_gpus:3 ~machine:(supernode ())
          app
      in
      App_common.check_exn app ~against:reference env;
      let env_ov, _ =
        App_common.proposal ~coherence:Mgacc.Rt_config.Lazy ~overlap:true ~num_gpus:2
          ~machine:(desktop ()) app
      in
      App_common.check_exn app ~against:reference env_ov)
    five_apps

let test_eager_is_the_default () =
  (* [--coherence eager] must be byte-for-byte the pre-protocol path: a
     run with the flag matches a run with no flag at all, down to the
     exact simulated times; and on one GPU the lazy flag is inert. *)
  let _, r_default = App_common.proposal ~num_gpus:2 ~machine:(desktop ()) bfs_small in
  let _, r_eager =
    App_common.proposal ~coherence:Mgacc.Rt_config.Eager ~num_gpus:2 ~machine:(desktop ())
      bfs_small
  in
  check Alcotest.bool "identical total" true
    (Float.equal r_default.Mgacc.Report.total_time r_eager.Mgacc.Report.total_time);
  check Alcotest.bool "identical kernel time" true
    (Float.equal r_default.Mgacc.Report.kernel_time r_eager.Mgacc.Report.kernel_time);
  check Alcotest.bool "identical gpu-gpu time" true
    (Float.equal r_default.Mgacc.Report.gpu_gpu_time r_eager.Mgacc.Report.gpu_gpu_time);
  check Alcotest.int "identical p2p traffic" r_default.Mgacc.Report.gpu_gpu_bytes
    r_eager.Mgacc.Report.gpu_gpu_bytes;
  check Alcotest.int "identical h2d traffic" r_default.Mgacc.Report.cpu_gpu_bytes
    r_eager.Mgacc.Report.cpu_gpu_bytes;
  check Alcotest.int "eager defers nothing" 0 r_default.Mgacc.Report.coh_deferred_bytes;
  let _, r1 = App_common.proposal ~num_gpus:1 ~machine:(desktop ()) bfs_small in
  let _, r1_lazy =
    App_common.proposal ~coherence:Mgacc.Rt_config.Lazy ~num_gpus:1 ~machine:(desktop ())
      bfs_small
  in
  check Alcotest.bool "single GPU: lazy is inert" true
    (Float.equal r1.Mgacc.Report.total_time r1_lazy.Mgacc.Report.total_time)

(* ---------------- generated-program equivalence (QCheck) ---------------- *)

(* Two parallel loops over replicated arrays: a strided affine writer
   (dirty runs with gaps) followed by a reader whose subscript is another
   affine form — ascending, descending or shifted. The consumer-window
   analysis may predict any subset; whatever it defers must be pulled
   before the read, so eager and lazy runs must agree element-for-element
   (exact float equality: both copy the same values, nothing is
   recomputed differently). *)
let program_of (n, stride, off, shape) =
  let m = n / stride in
  let read_expr =
    match shape mod 3 with
    | 0 -> "i" (* identity *)
    | 1 -> Printf.sprintf "%d - i" (n - 1) (* descending *)
    | _ -> Printf.sprintf "i / 2 + %d" (off mod (n / 2)) (* shifted, non-unit *)
  in
  Printf.sprintf
    {|void main() {
  int n = %d; int m = %d;
  double a[n]; double b[n]; int i;
  for (i = 0; i < n; i++) { a[i] = 0.25 * i; b[i] = 0.0; }
  #pragma acc parallel loop
  for (i = 0; i < m; i++) { a[i * %d + %d] = a[i * %d + %d] + 1.5; }
  #pragma acc parallel loop
  for (i = 0; i < n; i++) { b[i] = a[%s] * 2.0 + 1.0; }
}|}
    n m stride off stride off read_expr

let run_program ~coherence ~num_gpus source =
  let program = Mgacc.parse_string ~name:"gen.c" source in
  let machine = supernode () in
  let config = Mgacc.Rt_config.make ~num_gpus ~coherence machine in
  let env, _ = Mgacc.run_acc ~config ~machine program in
  (Mgacc.float_results env "a", Mgacc.float_results env "b")

let gen_case =
  QCheck2.Gen.(
    int_range 16 160 >>= fun n ->
    int_range 1 4 >>= fun stride ->
    int_range 0 1000 >>= fun shape ->
    int_range 0 20 >>= fun off -> return (n, stride, off mod stride, shape))

let test_qcheck_lazy_equals_eager =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"lazy == eager element-wise on affine programs" gen_case
       (fun ((_, _, _, shape) as case) ->
         let src = program_of case in
         let gpus = 2 + (shape mod 2) in
         let ea, eb = run_program ~coherence:Mgacc.Rt_config.Eager ~num_gpus:gpus src in
         let la, lb = run_program ~coherence:Mgacc.Rt_config.Lazy ~num_gpus:gpus src in
         Array.for_all2 Float.equal ea la && Array.for_all2 Float.equal eb lb))

(* ---------------- protocol behaviors ---------------- *)

let run_src ~coherence ~num_gpus ~machine source =
  let program = Mgacc.parse_string ~name:"coh.c" source in
  let config = Mgacc.Rt_config.make ~num_gpus ~coherence machine in
  Mgacc.run_acc ~config ~machine program

(* An iterative two-phase program: the second time around, the consumer's
   iteration split is known, so each writer ships each destination only
   the slice of its dirty run that the destination will read. *)
let windowed_src =
  {|void main() {
  int n = 4096; int t;
  double a[n]; double b[n]; int i;
  for (i = 0; i < n; i++) { a[i] = 0.25 * i; b[i] = 0.0; }
  for (t = 0; t < 4; t++) {
    #pragma acc parallel loop
    for (i = 0; i < n; i++) { a[i] = a[i] + 1.0; }
    #pragma acc parallel loop
    for (i = 0; i < n; i++) { b[i] = b[i] + a[i] * 0.5; }
  }
}|}

let test_window_limits_shipping () =
  let machine = supernode () in
  let _, eager = run_src ~coherence:Mgacc.Rt_config.Eager ~num_gpus:3 ~machine windowed_src in
  let machine = supernode () in
  let env, lz = run_src ~coherence:Mgacc.Rt_config.Lazy ~num_gpus:3 ~machine windowed_src in
  (* Each GPU writes and then re-reads only its own third of [a] and [b]:
     nearly all eager all-pairs traffic is deferred, and nobody ever
     pulls it back except the final copyout of replica 0. *)
  let eager_coh = eager.Mgacc.Report.coh_shipped_bytes in
  let lazy_coh = lz.Mgacc.Report.coh_shipped_bytes + lz.Mgacc.Report.coh_pulled_bytes in
  check Alcotest.bool "eager ships replicas around" true (eager_coh > 0);
  check Alcotest.bool "lazy ships under half of eager" true (lazy_coh * 2 < eager_coh);
  check Alcotest.bool "deferral happened" true (lz.Mgacc.Report.coh_deferred_bytes > 0);
  (* Results still exact: the self-owned slices never left home. *)
  let program = Mgacc.parse_string ~name:"coh.c" windowed_src in
  let ref_env = Mgacc.run_sequential program in
  Array.iteri
    (fun i v ->
      if not (Float.equal v (Mgacc.float_results env "b").(i)) then
        Alcotest.failf "b[%d]: %.17g vs %.17g" i (Mgacc.float_results ref_env "b").(i) v)
    (Mgacc.float_results ref_env "b")

(* A reduction whose result no later loop reads on device: lazy mode
   gathers the partials but defers the broadcast entirely; the bytes
   surface only in the final host copyout of replica 0. *)
let deferred_reduction_src =
  {|void main() {
  int n = 30000; int bins = 128;
  double data[n]; double hist[bins];
  int i; int seed = 7;
  for (i = 0; i < n; i++) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    data[i] = (seed % 10000) / 10000.0;
  }
  for (i = 0; i < bins; i++) { hist[i] = 0.0; }
  #pragma acc data copyin(data[0:n]) copy(hist[0:bins])
  {
    #pragma acc parallel loop localaccess(data: stride(1))
    for (i = 0; i < n; i++) {
      int b = (int)(data[i] * 128.0);
      int b2 = min(b, bins - 1);
      #pragma acc reductiontoarray(+: hist)
      hist[b2] += 1.0;
    }
  }
}|}

let test_unread_reduction_deferred () =
  let machine = supernode () in
  let _, eager =
    run_src ~coherence:Mgacc.Rt_config.Eager ~num_gpus:3 ~machine deferred_reduction_src
  in
  let machine = supernode () in
  let env, lz =
    run_src ~coherence:Mgacc.Rt_config.Lazy ~num_gpus:3 ~machine deferred_reduction_src
  in
  check Alcotest.bool "broadcast bytes deferred" true (lz.Mgacc.Report.coh_deferred_bytes > 0);
  check Alcotest.int "nothing pulled back to a device" 0 lz.Mgacc.Report.coh_pulled_bytes;
  check Alcotest.bool "lazy ships less than eager" true
    (lz.Mgacc.Report.coh_shipped_bytes < eager.Mgacc.Report.coh_shipped_bytes);
  check Alcotest.bool "something was elided outright" true
    (Mgacc.Report.coh_elided_bytes lz > 0);
  let program = Mgacc.parse_string ~name:"coh.c" deferred_reduction_src in
  let ref_env = Mgacc.run_sequential program in
  let e = Mgacc.float_results ref_env "hist" and g = Mgacc.float_results env "hist" in
  Array.iteri (fun i v -> check (Alcotest.float 1e-9) "hist bin" v g.(i)) e

(* A reduction a later loop does read: lazy mode must re-publish the
   combined result, and at 4 GPUs the binomial tree does it in two
   rounds. Exercised under both barrier and overlap execution on the
   2x2 cluster (the overlap DAG gates round r+1 on round r's arrival). *)
let consumed_reduction_src =
  {|void main() {
  int n = 20000; int bins = 64; int t;
  double data[n]; double hist[bins]; double sums[bins];
  int i; int seed = 3;
  for (i = 0; i < n; i++) {
    seed = (seed * 1103515245 + 12345) % 2147483648;
    data[i] = (seed % 10000) / 10000.0;
  }
  for (i = 0; i < bins; i++) { hist[i] = 0.0; sums[i] = 0.0; }
  for (t = 0; t < 3; t++) {
    #pragma acc parallel loop localaccess(data: stride(1))
    for (i = 0; i < n; i++) {
      int b = (int)(data[i] * 64.0);
      int b2 = min(b, bins - 1);
      #pragma acc reductiontoarray(+: hist)
      hist[b2] += 1.0;
    }
    #pragma acc parallel loop
    for (i = 0; i < bins; i++) { sums[i] = sums[i] + hist[i]; }
  }
}|}

let test_consumed_reduction_tree_bcast () =
  let run ~overlap =
    let machine = cluster4 () in
    let program = Mgacc.parse_string ~name:"coh.c" consumed_reduction_src in
    let config =
      Mgacc.Rt_config.make ~num_gpus:4 ~coherence:Mgacc.Rt_config.Lazy ~overlap machine
    in
    Mgacc.run_acc ~config ~machine program
  in
  let program = Mgacc.parse_string ~name:"coh.c" consumed_reduction_src in
  let ref_env = Mgacc.run_sequential program in
  let reference = Mgacc.float_results ref_env "sums" in
  List.iter
    (fun overlap ->
      let env, r = run ~overlap in
      check Alcotest.bool "combined result re-published" true
        (r.Mgacc.Report.coh_shipped_bytes > 0);
      let got = Mgacc.float_results env "sums" in
      Array.iteri (fun i v -> check (Alcotest.float 1e-9) "sums" v got.(i)) reference)
    [ false; true ]

let suite =
  [
    tc "lazy: five apps match the sequential reference" test_lazy_results_match_sequential;
    tc "lazy: eager flag equals the default run" test_eager_is_the_default;
    test_qcheck_lazy_equals_eager;
    tc "lazy: consumer windows limit dirty shipping" test_window_limits_shipping;
    tc "lazy: unread reduction broadcast is deferred" test_unread_reduction_deferred;
    tc "lazy: consumed reduction re-publishes via the tree" test_consumed_reduction_tree_bcast;
  ]
