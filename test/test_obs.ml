(* Observability tests: causal spans and Perfetto flow events in the
   trace, the critical-path pass, blame-vs-profiler reconciliation, the
   metrics registry, fleet metrics — and the pinned guarantee that with
   observability off every app report stays byte-identical to the
   pre-observability runtime. *)

module Trace = Mgacc_sim.Trace
module Metrics = Mgacc_obs.Metrics
module Critical_path = Mgacc_obs.Critical_path
module Blame = Mgacc_obs.Blame
module Fleet = Mgacc_fleet.Fleet
module Job = Mgacc_fleet.Job
open Mgacc_apps

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let count_sub s sub =
  let n = ref 0 in
  let sl = String.length sub in
  for i = 0 to String.length s - sl do
    if String.sub s i sl = sub then incr n
  done;
  !n

(* ---------------- observability-off identity pins ---------------- *)

(* The exact Report.to_json strings the pre-observability runtime printed
   for the five mini-apps on the 4-GPU cluster preset, in the default and
   the tuned (overlap+lazy+auto-collective) configurations. Causal-span
   recording, the blame ledger and the metrics port must never shift a
   simulated timestamp or counter. *)
let md_small = { Md.atoms = 400; max_neighbors = 8; seed = 17 }
let kmeans_small = { Kmeans.points = 500; features = 6; clusters = 4; iterations = 3; seed = 23 }
let bfs_small = { Bfs.nodes = 1500; max_degree = 5; seed = 31 }
let spmv_small = { Spmv.rows = 800; width = 6; iterations = 3; seed = 19 }
let mc_small = { Montecarlo.paths = 600; steps = 6; bins = 16; seed = 29 }

let apps =
  [
    ("md", Md.app md_small);
    ("kmeans", Kmeans.app kmeans_small);
    ("bfs", Bfs.app bfs_small);
    ("spmv", Spmv.app spmv_small);
    ("montecarlo", Montecarlo.app mc_small);
  ]

let golden_default =
  [
    ("md", {|{"machine":"GPU Cluster (2 nodes x 2 C2075)","variant":"proposal(4)","num_gpus":4,"total_time":6.20625489e-05,"kernel_time":2.84200428e-05,"cpu_gpu_time":3.36425061e-05,"gpu_gpu_time":0,"overhead_time":0,"cpu_gpu_bytes":70400,"gpu_gpu_bytes":0,"wire_bytes":0,"loops":1,"launches":4,"rebalances":0,"mean_imbalance":0,"hidden_seconds":0,"prefetch_hits":0,"mem_user_bytes":60800,"mem_system_bytes":0,"queue_seconds":0,"spills":0,"spilled_bytes":0,"collective":{"rings":0,"hierarchies":0,"direct_groups":0,"segments":0},"coherence":{"shipped_bytes":0,"deferred_bytes":0,"pulled_bytes":0,"elided_bytes":0,"arrays":[]}}|});
    ("kmeans", {|{"machine":"GPU Cluster (2 nodes x 2 C2075)","variant":"proposal(4)","num_gpus":4,"total_time":0.000562997451,"kernel_time":9.56718346e-05,"cpu_gpu_time":0.0002868494,"gpu_gpu_time":0.000180476216,"overhead_time":0,"cpu_gpu_bytes":34288,"gpu_gpu_bytes":3744,"wire_bytes":2496,"loops":6,"launches":24,"rebalances":0,"mean_imbalance":0,"hidden_seconds":0,"prefetch_hits":0,"mem_user_bytes":27600,"mem_system_bytes":832,"queue_seconds":0,"spills":0,"spilled_bytes":0,"collective":{"rings":0,"hierarchies":0,"direct_groups":0,"segments":0},"coherence":{"shipped_bytes":3744,"deferred_bytes":0,"pulled_bytes":0,"elided_bytes":0,"arrays":[{"name":"counts","shipped_bytes":288,"deferred_bytes":0,"pulled_bytes":0},{"name":"newcenters","shipped_bytes":3456,"deferred_bytes":0,"pulled_bytes":0}]}}|});
    ("bfs", {|{"machine":"GPU Cluster (2 nodes x 2 C2075)","variant":"proposal(4)","num_gpus":4,"total_time":0.00117804883,"kernel_time":0.000154841315,"cpu_gpu_time":0.000259164047,"gpu_gpu_time":0.000642843471,"overhead_time":0.0001212,"cpu_gpu_bytes":66480,"gpu_gpu_bytes":761124,"wire_bytes":507416,"loops":15,"launches":60,"rebalances":0,"mean_imbalance":0.00386458118,"hidden_seconds":0,"prefetch_hits":0,"mem_user_bytes":60000,"mem_system_bytes":50260,"queue_seconds":0,"spills":0,"spilled_bytes":0,"collective":{"rings":0,"hierarchies":0,"direct_groups":0,"segments":0},"coherence":{"shipped_bytes":761124,"deferred_bytes":0,"pulled_bytes":0,"elided_bytes":0,"arrays":[{"name":"levels","shipped_bytes":761124,"deferred_bytes":0,"pulled_bytes":0}]}}|});
    ("spmv", {|{"machine":"GPU Cluster (2 nodes x 2 C2075)","variant":"proposal(4)","num_gpus":4,"total_time":0.00033864911,"kernel_time":7.56323115e-05,"cpu_gpu_time":9.60758105e-05,"gpu_gpu_time":0.000142700988,"overhead_time":2.424e-05,"cpu_gpu_bytes":102496,"gpu_gpu_bytes":234000,"wire_bytes":156000,"loops":6,"launches":24,"rebalances":0,"mean_imbalance":0,"hidden_seconds":0,"prefetch_hits":0,"mem_user_bytes":89600,"mem_system_bytes":52404,"queue_seconds":0,"spills":0,"spilled_bytes":0,"collective":{"rings":0,"hierarchies":0,"direct_groups":0,"segments":0},"coherence":{"shipped_bytes":234000,"deferred_bytes":0,"pulled_bytes":0,"elided_bytes":0,"arrays":[{"name":"x","shipped_bytes":234000,"deferred_bytes":0,"pulled_bytes":0}]}}|});
    ("montecarlo", {|{"machine":"GPU Cluster (2 nodes x 2 C2075)","variant":"proposal(4)","num_gpus":4,"total_time":0.000108243934,"kernel_time":1.30960259e-05,"cpu_gpu_time":4.50502224e-05,"gpu_gpu_time":5.00976854e-05,"overhead_time":0,"cpu_gpu_bytes":672,"gpu_gpu_bytes":768,"wire_bytes":512,"loops":1,"launches":4,"rebalances":0,"mean_imbalance":0,"hidden_seconds":0,"prefetch_hits":0,"mem_user_bytes":512,"mem_system_bytes":512,"queue_seconds":0,"spills":0,"spilled_bytes":0,"collective":{"rings":0,"hierarchies":0,"direct_groups":0,"segments":0},"coherence":{"shipped_bytes":768,"deferred_bytes":0,"pulled_bytes":0,"elided_bytes":0,"arrays":[{"name":"hist","shipped_bytes":768,"deferred_bytes":0,"pulled_bytes":0}]}}|});
  ]
[@@ocamlformat "disable"]

let golden_tuned =
  [
    ("md", {|{"machine":"GPU Cluster (2 nodes x 2 C2075)","variant":"proposal(4)","num_gpus":4,"total_time":6.20625489e-05,"kernel_time":2.84200428e-05,"cpu_gpu_time":3.36425061e-05,"gpu_gpu_time":0,"overhead_time":0,"cpu_gpu_bytes":70400,"gpu_gpu_bytes":0,"wire_bytes":0,"loops":1,"launches":4,"rebalances":0,"mean_imbalance":0,"hidden_seconds":0,"prefetch_hits":0,"mem_user_bytes":60800,"mem_system_bytes":0,"queue_seconds":0,"spills":0,"spilled_bytes":0,"collective":{"rings":0,"hierarchies":0,"direct_groups":0,"segments":0},"coherence":{"shipped_bytes":0,"deferred_bytes":0,"pulled_bytes":0,"elided_bytes":0,"arrays":[]}}|});
    ("kmeans", {|{"machine":"GPU Cluster (2 nodes x 2 C2075)","variant":"proposal(4)","num_gpus":4,"total_time":0.000562690114,"kernel_time":9.56718346e-05,"cpu_gpu_time":0.0002868494,"gpu_gpu_time":0.00018016888,"overhead_time":0,"cpu_gpu_bytes":34288,"gpu_gpu_bytes":1872,"wire_bytes":1248,"loops":6,"launches":24,"rebalances":0,"mean_imbalance":0,"hidden_seconds":3.0733645e-07,"prefetch_hits":16,"mem_user_bytes":27600,"mem_system_bytes":832,"queue_seconds":0,"spills":0,"spilled_bytes":0,"collective":{"rings":0,"hierarchies":0,"direct_groups":0,"segments":0},"coherence":{"shipped_bytes":1872,"deferred_bytes":1872,"pulled_bytes":0,"elided_bytes":1872,"arrays":[{"name":"counts","shipped_bytes":144,"deferred_bytes":144,"pulled_bytes":0},{"name":"newcenters","shipped_bytes":1728,"deferred_bytes":1728,"pulled_bytes":0}]}}|});
    ("bfs", {|{"machine":"GPU Cluster (2 nodes x 2 C2075)","variant":"proposal(4)","num_gpus":4,"total_time":0.000743993483,"kernel_time":0.000154740301,"cpu_gpu_time":4.91408671e-05,"gpu_gpu_time":0.000534052315,"overhead_time":6.06e-06,"cpu_gpu_bytes":66480,"gpu_gpu_bytes":62988,"wire_bytes":41992,"loops":15,"launches":60,"rebalances":0,"mean_imbalance":0.00386458118,"hidden_seconds":0.00108452176,"prefetch_hits":42,"mem_user_bytes":60000,"mem_system_bytes":14104,"queue_seconds":0,"spills":0,"spilled_bytes":0,"collective":{"rings":0,"hierarchies":0,"direct_groups":41,"segments":0},"coherence":{"shipped_bytes":62988,"deferred_bytes":0,"pulled_bytes":0,"elided_bytes":0,"arrays":[{"name":"levels","shipped_bytes":62988,"deferred_bytes":0,"pulled_bytes":0}]}}|});
    ("spmv", {|{"machine":"GPU Cluster (2 nodes x 2 C2075)","variant":"proposal(4)","num_gpus":4,"total_time":0.000303383997,"kernel_time":7.56323115e-05,"cpu_gpu_time":9.60758105e-05,"gpu_gpu_time":0.000125615875,"overhead_time":6.06e-06,"cpu_gpu_bytes":102496,"gpu_gpu_bytes":57888,"wire_bytes":38592,"loops":6,"launches":24,"rebalances":0,"mean_imbalance":0,"hidden_seconds":0,"prefetch_hits":14,"mem_user_bytes":89600,"mem_system_bytes":13268,"queue_seconds":0,"spills":0,"spilled_bytes":0,"collective":{"rings":0,"hierarchies":0,"direct_groups":12,"segments":0},"coherence":{"shipped_bytes":57888,"deferred_bytes":0,"pulled_bytes":0,"elided_bytes":0,"arrays":[{"name":"x","shipped_bytes":57888,"deferred_bytes":0,"pulled_bytes":0}]}}|});
    ("montecarlo", {|{"machine":"GPU Cluster (2 nodes x 2 C2075)","variant":"proposal(4)","num_gpus":4,"total_time":9.3242278e-05,"kernel_time":1.30960259e-05,"cpu_gpu_time":3.00485667e-05,"gpu_gpu_time":5.00976854e-05,"overhead_time":0,"cpu_gpu_bytes":672,"gpu_gpu_bytes":384,"wire_bytes":256,"loops":1,"launches":4,"rebalances":0,"mean_imbalance":0,"hidden_seconds":1.50016557e-05,"prefetch_hits":0,"mem_user_bytes":512,"mem_system_bytes":512,"queue_seconds":0,"spills":0,"spilled_bytes":0,"collective":{"rings":0,"hierarchies":0,"direct_groups":0,"segments":0},"coherence":{"shipped_bytes":384,"deferred_bytes":384,"pulled_bytes":0,"elided_bytes":384,"arrays":[{"name":"hist","shipped_bytes":384,"deferred_bytes":384,"pulled_bytes":0}]}}|});
  ]
[@@ocamlformat "disable"]

let tuned_proposal ~machine app =
  App_common.proposal ~num_gpus:4 ~machine ~overlap:true ~coherence:Mgacc.Rt_config.Lazy
    ~collective:Mgacc.Rt_config.Auto app

let test_identity_default () =
  List.iter
    (fun (name, app) ->
      let machine = Mgacc.Machine.cluster () in
      let _, r = App_common.proposal ~num_gpus:4 ~machine app in
      check Alcotest.string name (List.assoc name golden_default) (Mgacc.Report.to_json r))
    apps

let test_identity_tuned () =
  List.iter
    (fun (name, app) ->
      let machine = Mgacc.Machine.cluster () in
      let _, r = tuned_proposal ~machine app in
      check Alcotest.string name (List.assoc name golden_tuned) (Mgacc.Report.to_json r))
    apps

(* ---------------- critical-path pass ---------------- *)

let rec_span tr ?(causes = []) ~resource ~start ~finish () =
  Trace.record tr ~causes ~resource ~category:Trace.Kernel ~label:"t" ~start ~finish ~bytes:0 ()

let path_ids cp = List.map (fun (sp : Trace.span) -> sp.Trace.id) cp.Critical_path.path

let test_cp_chain () =
  let tr = Trace.create () in
  let a = rec_span tr ~resource:"r" ~start:0.0 ~finish:1.0 () in
  let b = rec_span tr ~causes:[ a ] ~resource:"r" ~start:1.0 ~finish:3.0 () in
  let c = rec_span tr ~causes:[ b ] ~resource:"r" ~start:3.0 ~finish:6.0 () in
  let cp = Critical_path.analyze (Trace.spans tr) in
  check (Alcotest.float 1e-12) "makespan" 6.0 cp.Critical_path.makespan;
  check (Alcotest.float 1e-12) "path weight" 6.0 cp.Critical_path.path_seconds;
  check (Alcotest.list Alcotest.int) "path = chain" [ a; b; c ] (path_ids cp);
  List.iter
    (fun (at : Critical_path.attribution) ->
      check Alcotest.bool "all on path" true at.Critical_path.on_path;
      check (Alcotest.float 1e-12) "fully exposed"
        (at.Critical_path.span.Trace.finish -. at.Critical_path.span.Trace.start)
        at.Critical_path.exposed)
    cp.Critical_path.spans

let test_cp_diamond () =
  let tr = Trace.create () in
  let a = rec_span tr ~resource:"a" ~start:0.0 ~finish:1.0 () in
  let b = rec_span tr ~causes:[ a ] ~resource:"b" ~start:1.0 ~finish:3.0 () in
  let c = rec_span tr ~causes:[ a ] ~resource:"c" ~start:1.0 ~finish:2.0 () in
  let d = rec_span tr ~causes:[ b; c ] ~resource:"a" ~start:3.0 ~finish:4.0 () in
  let cp = Critical_path.analyze (Trace.spans tr) in
  check (Alcotest.float 1e-12) "path a-b-d" 4.0 cp.Critical_path.path_seconds;
  check (Alcotest.list Alcotest.int) "long arm wins" [ a; b; d ] (path_ids cp);
  let attr id =
    List.find (fun at -> at.Critical_path.span.Trace.id = id) cp.Critical_path.spans
  in
  check (Alcotest.float 1e-12) "short arm hidden" 1.0 (attr c).Critical_path.hidden;
  check (Alcotest.float 1e-12) "short arm not exposed" 0.0 (attr c).Critical_path.exposed;
  check Alcotest.bool "short arm off path" false (attr c).Critical_path.on_path

let test_cp_two_chains () =
  let tr = Trace.create () in
  let x1 = rec_span tr ~resource:"x" ~start:0.0 ~finish:2.0 () in
  let x2 = rec_span tr ~causes:[ x1 ] ~resource:"x" ~start:2.0 ~finish:5.0 () in
  let y1 = rec_span tr ~resource:"y" ~start:0.0 ~finish:1.0 () in
  let _y2 = rec_span tr ~causes:[ y1 ] ~resource:"y" ~start:1.0 ~finish:3.0 () in
  let cp = Critical_path.analyze (Trace.spans tr) in
  check (Alcotest.float 1e-12) "longer chain wins" 5.0 cp.Critical_path.path_seconds;
  check (Alcotest.list Alcotest.int) "path is chain x" [ x1; x2 ] (path_ids cp);
  let total_exposed =
    List.fold_left (fun acc at -> acc +. at.Critical_path.exposed) 0.0 cp.Critical_path.spans
  in
  check (Alcotest.float 1e-12) "exposed covers makespan" cp.Critical_path.makespan total_exposed

let test_cp_implicit_resource_edges () =
  (* No explicit causes at all: same-resource program order still chains. *)
  let tr = Trace.create () in
  let a = rec_span tr ~resource:"r" ~start:0.0 ~finish:2.0 () in
  let b = rec_span tr ~resource:"r" ~start:2.0 ~finish:3.0 () in
  let cp = Critical_path.analyze (Trace.spans tr) in
  check (Alcotest.list Alcotest.int) "implicit chain" [ a; b ] (path_ids cp);
  check (Alcotest.float 1e-12) "weight" 3.0 cp.Critical_path.path_seconds

(* Random DAGs: spans with drifting starts, random durations, and a
   random backward cause each. *)
let gen_dag =
  QCheck2.Gen.(
    list_size (int_range 1 40)
      (triple (int_range 0 3) (pair (float_bound_inclusive 2.0) (float_bound_inclusive 1.0))
         (int_range 0 1000)))

let build_dag ops =
  let tr = Trace.create () in
  let t = ref 0.0 in
  List.iteri
    (fun i (res, (dur, gap), cpick) ->
      t := !t +. gap;
      let causes = if i > 0 then [ cpick mod i ] else [] in
      ignore
        (Trace.record tr ~causes
           ~resource:(Printf.sprintf "r%d" res)
           ~category:Trace.Kernel ~label:"q" ~start:!t ~finish:(!t +. dur) ~bytes:0 ()))
    ops;
  tr

let prop_exposed_hidden_conserved ops =
  let cp = Critical_path.analyze (Trace.spans (build_dag ops)) in
  let sum_dur =
    List.fold_left
      (fun acc at ->
        acc +. (at.Critical_path.span.Trace.finish -. at.Critical_path.span.Trace.start))
      0.0 cp.Critical_path.spans
  in
  let sum_eh =
    List.fold_left
      (fun acc at -> acc +. at.Critical_path.exposed +. at.Critical_path.hidden)
      0.0 cp.Critical_path.spans
  in
  let sum_exposed =
    List.fold_left (fun acc at -> acc +. at.Critical_path.exposed) 0.0 cp.Critical_path.spans
  in
  let tol = 1e-9 *. Float.max 1.0 sum_dur in
  Float.abs (sum_dur -. sum_eh) <= tol
  && sum_exposed <= cp.Critical_path.makespan +. tol
  && cp.Critical_path.path_seconds <= sum_dur +. tol

(* ---------------- blame reconciles with the profiler ---------------- *)

let blame_report ?overlap ?coherence ?collective app =
  let machine = Mgacc.Machine.cluster () in
  let config =
    Mgacc.Rt_config.make ~num_gpus:4 ?overlap ?coherence ?collective machine
  in
  let program = Mgacc.parse_string ~name:(app.App_common.name ^ ".c") app.App_common.source in
  let _, r = Mgacc.run_acc ~config ~with_blame:true ~machine program in
  (r, Option.get r.Mgacc.Report.blame)

let cat_sums b cat =
  let _, e, h = List.find (fun (c, _, _) -> c = cat) b.Blame.s_categories in
  (e, h)

let check_reconciles name (r : Mgacc.Report.t) (b : Blame.summary) =
  let fl = Alcotest.float 1e-12 in
  check fl (name ^ ": kernels") r.Mgacc.Report.kernel_time (fst (cat_sums b Blame.Kernel));
  check fl (name ^ ": cpu-gpu") r.Mgacc.Report.cpu_gpu_time (fst (cat_sums b Blame.Cpu_gpu));
  check fl (name ^ ": gpu-gpu") r.Mgacc.Report.gpu_gpu_time (fst (cat_sums b Blame.Gpu_gpu));
  check fl (name ^ ": overhead") r.Mgacc.Report.overhead_time (fst (cat_sums b Blame.Overhead));
  let hidden =
    List.fold_left (fun acc (_, _, h) -> acc +. h) 0.0 b.Blame.s_categories
  in
  check fl (name ^ ": hidden") r.Mgacc.Report.hidden_seconds hidden;
  (* Row sums equal category sums: the proportional split loses nothing. *)
  List.iter
    (fun (cat, e, _) ->
      let rows =
        List.fold_left
          (fun acc (row : Blame.row) ->
            if row.Blame.r_category = cat then acc +. row.Blame.r_exposed else acc)
          0.0 b.Blame.s_rows
      in
      check (Alcotest.float 1e-9) (name ^ ": rows cover category") e rows)
    b.Blame.s_categories

let test_blame_reconciles_barrier () =
  List.iter
    (fun (name, app) ->
      let r, b = blame_report app in
      check_reconciles name r b)
    apps

let test_blame_reconciles_overlap () =
  List.iter
    (fun (name, app) ->
      let r, b =
        blame_report ~overlap:true ~coherence:Mgacc.Rt_config.Lazy
          ~collective:Mgacc.Rt_config.Auto app
      in
      check_reconciles name r b)
    apps

let test_bfs_overlap_hides_comm () =
  let r, b = blame_report ~overlap:true (Bfs.app bfs_small) in
  check Alcotest.bool "overlap hid something" true (r.Mgacc.Report.hidden_seconds > 0.0);
  let comm_hidden =
    List.fold_left
      (fun acc (row : Blame.row) ->
        if
          row.Blame.r_category = Blame.Gpu_gpu
          && String.length row.Blame.r_label >= 4
          && String.sub row.Blame.r_label 0 4 = "comm"
        then acc +. row.Blame.r_hidden
        else acc)
      0.0 b.Blame.s_rows
  in
  check Alcotest.bool "peer-copy spans carry hidden time" true (comm_hidden > 0.0)

let test_blame_json_appended () =
  let r, b = blame_report (Md.app md_small) in
  let js = Mgacc.Report.to_json r in
  check Alcotest.int "blame object present" 1 (count_sub js {|"blame":{|});
  check Alcotest.int "category sums present" 1 (count_sub js {|"KERNELS":{|});
  let plain = { r with Mgacc.Report.blame = None } in
  check Alcotest.int "no blame when absent" 0 (count_sub (Mgacc.Report.to_json plain) {|"blame"|});
  ignore b

(* ---------------- flow events in the chrome trace ---------------- *)

let test_flow_events () =
  let tr = Trace.create () in
  let a =
    Trace.record tr ~resource:"gpu0" ~category:Trace.Kernel ~label:"k" ~start:0.0 ~finish:1.0
      ~bytes:0 ()
  in
  (* One real edge plus one dangling cause (id 99 was never recorded):
     the dangling one must not emit a flow pair. *)
  let _b =
    Trace.record tr ~causes:[ a; 99 ] ~resource:"pcie" ~category:Trace.Peer ~label:"x" ~start:1.0
      ~finish:2.0 ~bytes:8 ()
  in
  let s = Trace.to_chrome_json tr in
  check Alcotest.int "one flow start" 1 (count_sub s {|"ph":"s"|});
  check Alcotest.int "one flow finish" 1 (count_sub s {|"ph":"f"|});
  check Alcotest.int "enclosing binding point" 1 (count_sub s {|"bp":"e"|});
  check Alcotest.int "process named" 1 (count_sub s "process_name");
  check Alcotest.int "rows named" 2 (count_sub s "thread_name");
  check Alcotest.int "rows sorted" 2 (count_sub s "thread_sort_index");
  check Alcotest.int "span ids in args" 4 (count_sub s {|"span":|});
  check Alcotest.int "causes in args" 1 (count_sub s {|"causes":[0,99]|})

let test_causes_valid_on_real_trace () =
  let machine = Mgacc.Machine.cluster () in
  let _ = tuned_proposal ~machine (Bfs.app bfs_small) in
  let spans = Trace.spans machine.Mgacc.Machine.trace in
  let ids = Hashtbl.create 256 in
  List.iter (fun (sp : Trace.span) -> Hashtbl.replace ids sp.Trace.id ()) spans;
  let edges = ref 0 in
  List.iter
    (fun (sp : Trace.span) ->
      List.iter
        (fun c ->
          incr edges;
          check Alcotest.bool "cause id exists" true (Hashtbl.mem ids c);
          check Alcotest.bool "cause precedes span" true (c < sp.Trace.id))
        sp.Trace.causes)
    spans;
  check Alcotest.bool "the overlap run recorded causal edges" true (!edges > 0)

(* ---------------- metrics registry ---------------- *)

let test_metrics_counters_gauges () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~help:"x" "jobs_total" in
  Metrics.inc c 2.0;
  let c' = Metrics.counter m "jobs_total" in
  Metrics.inc c' 1.0;
  check (Alcotest.float 0.0) "same cell" 3.0 (Metrics.counter_value c);
  Alcotest.check_raises "negative inc" (Invalid_argument "Metrics.inc: negative increment")
    (fun () -> Metrics.inc c (-1.0));
  Alcotest.check_raises "kind conflict"
    (Invalid_argument "Metrics: jobs_total already registered as a counter") (fun () ->
      ignore (Metrics.gauge m ~labels:[ ("x", "y") ] "jobs_total"));
  (match Metrics.counter m ~labels:[ ("tenant", "a\"b") ] "jobs_total" with
  | c2 -> Metrics.inc c2 5.0);
  let g = Metrics.gauge m "depth" in
  Metrics.set g 7.0;
  let text = Metrics.to_prometheus m in
  check Alcotest.int "one TYPE per family" 2 (count_sub text "# TYPE ");
  check Alcotest.int "escaped label" 1 (count_sub text {|jobs_total{tenant="a\"b"} 5|});
  check Alcotest.int "gauge line" 1 (count_sub text "depth 7\n")

let test_metrics_quantiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~buckets:[| 1.0; 2.0; 5.0 |] "lat" in
  check (Alcotest.float 0.0) "empty quantile" 0.0 (Metrics.quantile h 0.5);
  List.iter (Metrics.observe h) [ 0.5; 1.5; 3.0; 10.0 ];
  check Alcotest.int "count" 4 (Metrics.histogram_count h);
  check (Alcotest.float 1e-12) "sum" 15.0 (Metrics.histogram_sum h);
  check (Alcotest.float 0.0) "p25 = first bucket" 1.0 (Metrics.quantile h 0.25);
  check (Alcotest.float 0.0) "p50 = second bucket" 2.0 (Metrics.quantile h 0.5);
  check Alcotest.bool "p95 overflows" true (Metrics.quantile h 0.95 = infinity);
  let text = Metrics.to_prometheus m in
  check Alcotest.int "cumulative le=5" 1 (count_sub text {|lat_bucket{le="5"} 3|});
  check Alcotest.int "inf bucket" 1 (count_sub text {|lat_bucket{le="+Inf"} 4|});
  check Alcotest.int "count line" 1 (count_sub text "lat_count 4")

let test_metrics_events () =
  let m = Metrics.create () in
  check Alcotest.string "no events, empty log" "" (Metrics.events_to_jsonl m);
  Metrics.event m ~time:0.5 ~fields:[ ("job", 3.0) ] "admit";
  Metrics.event m ~time:1.5 "finish";
  let log = Metrics.events_to_jsonl m in
  check (Alcotest.list Alcotest.string) "jsonl lines"
    [ {|{"t":0.5,"event":"admit","fields":{"job":3}}|}; {|{"t":1.5,"event":"finish"}|} ]
    (String.split_on_char '\n' (String.trim log))

(* ---------------- fleet metrics + trace ---------------- *)

let saxpy_src =
  {|void main() {
      int n = 4000; double x[n]; double y[n]; double a = 3.0; int i;
      for (i = 0; i < n; i++) { x[i] = 0.5 * i; y[i] = 1.0; }
      #pragma acc data copyin(x[0:n]) copy(y[0:n])
      {
        #pragma acc parallel loop localaccess(x: stride(1), y: stride(1))
        for (i = 0; i < n; i++) { y[i] = y[i] + a * x[i]; }
      }
    }|}

let long_src =
  {|void main() {
      int n = 20000; int reps = 8; double x[n]; double y[n]; int i; int r;
      for (i = 0; i < n; i++) { x[i] = 0.25 * i; y[i] = 0.0; }
      #pragma acc data copyin(x[0:n]) copy(y[0:n])
      {
        for (r = 0; r < reps; r++) {
          #pragma acc parallel loop localaccess(x: stride(1), y: stride(1))
          for (i = 0; i < n; i++) { y[i] = y[i] + 1.5 * x[i]; }
        }
      }
    }|}

let fleet_jobs n =
  List.init n (fun i ->
      let long = i mod 4 = 0 in
      Job.make ~id:i
        ~tenant:(Printf.sprintf "t%d" (i mod 3))
        ~name:(if long then "long" else "saxpy")
        ~source:(if long then long_src else saxpy_src)
        ~submit:(1e-4 *. float_of_int i))

(* A minimal Prometheus text-exposition reader: family types from the
   "# TYPE" comments, then every sample line split at the last space. *)
let parse_prometheus text =
  let types = ref [] and samples = ref [] in
  List.iter
    (fun line ->
      if line = "" then ()
      else if line.[0] = '#' then (
        match String.split_on_char ' ' line with
        | "#" :: "TYPE" :: name :: [ kind ] -> types := (name, kind) :: !types
        | "#" :: "HELP" :: _ -> ()
        | _ -> Alcotest.failf "bad comment line: %s" line)
      else
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "bad sample line: %s" line
        | Some i -> (
            let v = String.sub line (i + 1) (String.length line - i - 1) in
            match float_of_string_opt v with
            | None -> Alcotest.failf "unparsable value in: %s" line
            | Some f -> samples := (String.sub line 0 i, f) :: !samples))
    (String.split_on_char '\n' text);
  (List.rev !types, List.rev !samples)

let family_of series =
  let base = match String.index_opt series '{' with
    | Some i -> String.sub series 0 i
    | None -> series
  in
  let strip suffix s =
    let sl = String.length suffix and l = String.length s in
    if l > sl && String.sub s (l - sl) sl = suffix then Some (String.sub s 0 (l - sl)) else None
  in
  match strip "_bucket" base with
  | Some f -> f
  | None -> (
      match strip "_sum" base with
      | Some f -> f
      | None -> ( match strip "_count" base with Some f -> f | None -> base))

let test_fleet_metrics () =
  let machine = Mgacc.Machine.cluster () in
  let config = Fleet.configure ~policy:Fleet.Fair ~max_concurrent:2 machine in
  let outcome = Fleet.run config (fleet_jobs 20) in
  let text = Metrics.to_prometheus outcome.Fleet.metrics in
  let types, samples = parse_prometheus text in
  (* every series belongs to a typed family *)
  List.iter
    (fun (series, _) ->
      check Alcotest.bool (series ^ " has a # TYPE") true
        (List.mem_assoc (family_of series) types))
    samples;
  List.iter
    (fun family ->
      check Alcotest.bool (family ^ " exported") true (List.mem_assoc family types))
    [
      "fleet_queue_depth"; "fleet_queue_depth_samples"; "fleet_resident_bytes";
      "fleet_wait_seconds"; "fleet_evictions_total"; "fleet_spilled_bytes_total";
      "fleet_jobs_completed_total"; "fleet_tenant_service_seconds_total";
    ];
  (* per-tenant service seconds agree with the outcome rows *)
  List.iter
    (fun (t : Fleet.tenant_row) ->
      let series =
        Printf.sprintf {|fleet_tenant_service_seconds_total{tenant="%s"}|} t.Fleet.tenant
      in
      match List.assoc_opt series samples with
      | None -> Alcotest.failf "missing series %s" series
      | Some v -> check (Alcotest.float 1e-9) series t.Fleet.t_service v)
    outcome.Fleet.tenants;
  check (Alcotest.float 0.0) "completions counted" 20.0
    (List.assoc "fleet_jobs_completed_total" samples);
  check Alcotest.bool "queue depth was sampled" true
    (List.assoc "fleet_queue_depth_samples_count" samples > 0.0);
  (* the admission event log covers every job's lifecycle *)
  let log = Metrics.events_to_jsonl outcome.Fleet.metrics in
  check Alcotest.int "20 submits" 20 (count_sub log {|"event":"submit"|});
  check Alcotest.int "20 admits" 20 (count_sub log {|"event":"admit"|});
  check Alcotest.int "20 finishes" 20 (count_sub log {|"event":"finish"|});
  (* fleet trace: tenant rows, GPU rows, and queued->run flow edges *)
  let spans = Trace.spans outcome.Fleet.trace in
  let resources = List.sort_uniq compare (List.map (fun s -> s.Trace.resource) spans) in
  List.iter
    (fun t ->
      check Alcotest.bool ("row for tenant " ^ t.Fleet.tenant) true
        (List.mem ("tenant:" ^ t.Fleet.tenant) resources))
    outcome.Fleet.tenants;
  check Alcotest.bool "gpu rows present" true (List.mem "gpu0" resources);
  let ids = Hashtbl.create 64 in
  List.iter (fun (sp : Trace.span) -> Hashtbl.replace ids sp.Trace.id ()) spans;
  List.iter
    (fun (sp : Trace.span) ->
      List.iter
        (fun c -> check Alcotest.bool "fleet trace edge resolves" true (Hashtbl.mem ids c))
        sp.Trace.causes)
    spans;
  check Alcotest.bool "queued jobs produce flow edges" true
    (List.exists (fun (sp : Trace.span) -> sp.Trace.causes <> []) spans)

let suite =
  [
    tc "identity pin: default config reports are byte-stable" test_identity_default;
    tc "identity pin: tuned config reports are byte-stable" test_identity_tuned;
    tc "critical path: chain" test_cp_chain;
    tc "critical path: diamond picks the long arm" test_cp_diamond;
    tc "critical path: two chains, longer wins" test_cp_two_chains;
    tc "critical path: implicit same-resource edges" test_cp_implicit_resource_edges;
    qtest "critical path: exposed+hidden conserves duration" gen_dag prop_exposed_hidden_conserved;
    tc "blame reconciles with profiler (barrier)" test_blame_reconciles_barrier;
    tc "blame reconciles with profiler (overlap)" test_blame_reconciles_overlap;
    tc "bfs overlap hides peer-copy time" test_bfs_overlap_hides_comm;
    tc "report json gains blame only when asked" test_blame_json_appended;
    tc "chrome trace: flow events" test_flow_events;
    tc "real trace: every cause resolves" test_causes_valid_on_real_trace;
    tc "metrics: counters, gauges, exposition" test_metrics_counters_gauges;
    tc "metrics: deterministic quantiles" test_metrics_quantiles;
    tc "metrics: jsonl event log" test_metrics_events;
    tc "fleet: metrics, events and trace" test_fleet_metrics;
  ]
