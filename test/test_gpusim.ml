(* Tests for the machine simulator: memory accounting, fair-share fabric,
   roofline models, machine presets, virtual CUDA API. *)

open Mgacc_gpusim

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ---------------- Memory ---------------- *)

let test_memory_accounting () =
  let m = Memory.create ~device_id:0 ~capacity:1000 in
  let b1 = Memory.alloc_float m `User 50 in
  check Alcotest.int "user bytes" 400 (Memory.used_class m `User);
  let b2 = Memory.alloc_raw m `System 100 in
  check Alcotest.int "system bytes" 100 (Memory.used_class m `System);
  check Alcotest.int "total" 500 (Memory.used m);
  Memory.free m b1;
  check Alcotest.int "freed" 100 (Memory.used m);
  Memory.free m b1;
  check Alcotest.int "double free ignored" 100 (Memory.used m);
  check Alcotest.int "peak survives free" 400 (Memory.peak_class m `User);
  Memory.free m b2

let test_memory_oom () =
  let m = Memory.create ~device_id:3 ~capacity:1000 in
  match Memory.alloc_float m `User 50 with
  | exception _ -> Alcotest.fail "should fit"
  | _ -> (
      match Memory.alloc_float m `User 100 with
      | exception Memory.Out_of_device_memory { device_id = 3; requested = 800; available = 600 } ->
          ()
      | exception Memory.Out_of_device_memory _ -> Alcotest.fail "wrong OOM payload"
      | _ -> Alcotest.fail "expected OOM")

let test_memory_use_after_free () =
  let m = Memory.create ~device_id:0 ~capacity:1000 in
  let b = Memory.alloc_float m `User 4 in
  Memory.free m b;
  match Memory.float_data b with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "use after free"

(* ---------------- Fabric ---------------- *)

let gb = 1024.0 *. 1024.0 *. 1024.0

let test_link =
  {
    Spec.h2d_bandwidth = 4.0 *. gb;
    d2h_bandwidth = 4.0 *. gb;
    p2p_bandwidth = 2.0 *. gb;
    link_latency = 10e-6;
    host_aggregate_bandwidth = 6.0 *. gb;
  }

let test_fabric_single_transfer () =
  let f = Fabric.create test_link ~num_gpus:2 in
  let bytes = int_of_float gb in
  let expected = 10e-6 +. (1.0 /. 4.0) in
  check (Alcotest.float 1e-9) "alone time" expected
    (Fabric.transfer_time_alone f (Fabric.H2d 0) ~bytes);
  let completions =
    Fabric.run_batch f [ { Fabric.direction = Fabric.H2d 0; bytes; ready = 0.0; tag = "x" } ]
  in
  match completions with
  | [ c ] -> check (Alcotest.float 1e-6) "batch matches alone" expected c.Fabric.finish
  | _ -> Alcotest.fail "one completion"

let test_fabric_host_aggregate_contention () =
  (* Two concurrent H2D at 4 GB/s each would want 8; the 6 GB/s root
     complex caps them at 3 each. *)
  let f = Fabric.create test_link ~num_gpus:2 in
  let bytes = int_of_float (3.0 *. gb) in
  let reqs =
    [
      { Fabric.direction = Fabric.H2d 0; bytes; ready = 0.0; tag = "a" };
      { Fabric.direction = Fabric.H2d 1; bytes; ready = 0.0; tag = "b" };
    ]
  in
  match Fabric.run_batch f reqs with
  | [ a; b ] ->
      check (Alcotest.float 1e-3) "fair share a" (10e-6 +. 1.0) a.Fabric.finish;
      check (Alcotest.float 1e-3) "fair share b" (10e-6 +. 1.0) b.Fabric.finish
  | _ -> Alcotest.fail "two completions"

let test_fabric_own_cap_binds () =
  (* P2P capped at 2 GB/s regardless of the links. *)
  let f = Fabric.create test_link ~num_gpus:2 in
  let bytes = int_of_float (2.0 *. gb) in
  match
    Fabric.run_batch f [ { Fabric.direction = Fabric.P2p (0, 1); bytes; ready = 0.0; tag = "p" } ]
  with
  | [ c ] -> check (Alcotest.float 1e-3) "p2p rate" (10e-6 +. 1.0) c.Fabric.finish
  | _ -> Alcotest.fail "one completion"

let test_fabric_staggered_arrivals () =
  let f = Fabric.create test_link ~num_gpus:2 in
  let bytes = int_of_float gb in
  let reqs =
    [
      { Fabric.direction = Fabric.H2d 0; bytes; ready = 0.0; tag = "early" };
      { Fabric.direction = Fabric.H2d 0; bytes; ready = 10.0; tag = "late" };
    ]
  in
  (match Fabric.run_batch f reqs with
  | [ a; b ] ->
      check Alcotest.bool "early done before late starts" true (a.Fabric.finish < 10.0);
      check Alcotest.bool "late after its ready" true (b.Fabric.finish > 10.0)
  | _ -> Alcotest.fail "two completions");
  (* Zero-byte requests complete instantly. *)
  match
    Fabric.run_batch f [ { Fabric.direction = Fabric.H2d 0; bytes = 0; ready = 5.0; tag = "z" } ]
  with
  | [ c ] -> check (Alcotest.float 1e-12) "zero bytes" 5.0 c.Fabric.finish
  | _ -> Alcotest.fail "one completion"

let test_fabric_conservation () =
  (* Any mix of transfers must finish no earlier than bytes / best rate. *)
  let f = Fabric.create test_link ~num_gpus:3 in
  let reqs =
    List.init 9 (fun i ->
        {
          Fabric.direction =
            (match i mod 3 with
            | 0 -> Fabric.H2d (i mod 2)
            | 1 -> Fabric.D2h ((i + 1) mod 2)
            | _ -> Fabric.P2p (i mod 3, (i + 1) mod 3));
          bytes = (i + 1) * 10_000_000;
          ready = float_of_int (i mod 2) *. 0.001;
          tag = "t";
        })
  in
  let completions = Fabric.run_batch f reqs in
  List.iter
    (fun (c : Fabric.completion) ->
      let lower =
        c.Fabric.req.Fabric.ready
        +. (float_of_int c.Fabric.req.Fabric.bytes /. Fabric.standalone_bandwidth f c.Fabric.req.Fabric.direction)
      in
      if c.Fabric.finish +. 1e-9 < lower then
        Alcotest.failf "finish %f before physical lower bound %f" c.Fabric.finish lower)
    completions

(* A deterministic synthetic transfer storm over a clustered fabric:
   H2d/D2h, same-node and cross-node peer transfers, arrivals in waves.
   Same LCG shape as the [bench sim] storm so the tests exercise the
   traffic the tentpole speedup claim is made on. *)
let storm fabric ~flows ~waves ~seed =
  let topo = Option.get (Fabric.topology fabric) in
  let gpn = topo.Fabric.gpus_per_node in
  let num_gpus = Fabric.num_gpus fabric in
  let nodes = num_gpus / gpn in
  let state = ref seed in
  let rand bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  List.init flows (fun i ->
      let ready = float_of_int (i mod waves) *. 2e-4 in
      let g = rand num_gpus in
      let direction =
        match rand 4 with
        | 0 -> Fabric.H2d g
        | 1 -> Fabric.D2h g
        | 2 ->
            let node = g / gpn in
            let p = (node * gpn) + ((g mod gpn) + 1 + rand (gpn - 1)) mod gpn in
            Fabric.P2p (g, p)
        | _ ->
            let dst_node = ((g / gpn) + 1 + rand (Int.max 1 (nodes - 1))) mod nodes in
            Fabric.P2p (g, (dst_node * gpn) + rand gpn)
      in
      let bytes = if i mod 17 = 0 then 0 else 1_000_000 + rand 32_000_000 in
      { Fabric.direction; bytes; ready; tag = Printf.sprintf "storm-%d" i })

let cluster_fabric ~nodes ~gpus_per_node =
  let topology =
    { Fabric.gpus_per_node; internode_bandwidth = 3.2e9; internode_latency = 25e-6 }
  in
  Fabric.create ~topology test_link ~num_gpus:(nodes * gpus_per_node)

(* Pinned differential: the incremental allocator (the default) must
   reproduce the from-scratch reference bit for bit on a fixed clustered
   storm — this is the invariant that keeps every committed BENCH_*.json
   time stable across the fast-path work. The QCheck property in
   test_props covers random batches; this pins one deterministic,
   zero-byte-and-tie-bearing scenario that always runs. *)
let test_fabric_incremental_identity () =
  let f = cluster_fabric ~nodes:2 ~gpus_per_node:2 in
  let reqs = storm f ~flows:120 ~waves:10 ~seed:7 in
  let fast = Fabric.run_batch f reqs in
  check Alcotest.bool "default path is the incremental allocator" false
    (Fabric.reference_allocator f);
  Fabric.set_reference_allocator f true;
  let slow = Fabric.run_batch f reqs in
  Fabric.set_reference_allocator f false;
  check Alcotest.int "same completion count" (List.length slow) (List.length fast);
  List.iter2
    (fun (a : Fabric.completion) (b : Fabric.completion) ->
      if not (Float.equal a.Fabric.start b.Fabric.start) then
        Alcotest.failf "start diverged on %s: %h vs %h" a.Fabric.req.Fabric.tag a.Fabric.start
          b.Fabric.start;
      if not (Float.equal a.Fabric.finish b.Fabric.finish) then
        Alcotest.failf "finish diverged on %s: %h vs %h" a.Fabric.req.Fabric.tag a.Fabric.finish
          b.Fabric.finish)
    fast slow

(* Live relative perf gate: unlike the BENCH_sim.json bars (absolute
   numbers from the committed artifact), this times both allocators here
   and now, so it catches a fast-path revert on any machine speed. The
   3x bar is deliberately far under the ~10x measured at this scale to
   keep CI flake-free; CPU time, not wall clock, for the same reason. *)
let test_fabric_incremental_perf_gate () =
  let f = cluster_fabric ~nodes:2 ~gpus_per_node:4 in
  let reqs = storm f ~flows:400 ~waves:8 ~seed:11 in
  let time use_reference =
    Fabric.set_reference_allocator f use_reference;
    ignore (Fabric.run_batch f reqs) (* warm up *);
    let t0 = Sys.time () in
    ignore (Fabric.run_batch f reqs);
    let dt = Sys.time () -. t0 in
    Fabric.set_reference_allocator f false;
    dt
  in
  let slow = time true in
  let fast = time false in
  if fast *. 3.0 > slow then
    Alcotest.failf "incremental allocator only %.2fx faster than reference (%.4fs vs %.4fs)"
      (slow /. fast) fast slow

(* ---------------- Kernel cost & CPU model ---------------- *)

let test_kernel_cost_roofline () =
  let g = Spec.tesla_c2075 in
  let c = Cost.zero () in
  c.Cost.flops <- 1_000_000_000;
  let t_compute = Kernel_cost.duration g ~threads:100000 c in
  (* 1 GFLOP at ~309 sustained GFLOP/s -> about 3.2 ms *)
  check Alcotest.bool "compute-bound plausible" true (t_compute > 2e-3 && t_compute < 5e-3);
  let m = Cost.zero () in
  m.Cost.coalesced_bytes <- 1_000_000_000;
  let t_mem = Kernel_cost.duration g ~threads:100000 m in
  (* 1 GB at ~108 GB/s sustained -> about 8.6 ms *)
  check Alcotest.bool "memory-bound plausible" true (t_mem > 6e-3 && t_mem < 12e-3);
  (* Random accesses cost a transaction each. *)
  let r = Cost.zero () in
  r.Cost.random_accesses <- 10_000_000;
  r.Cost.random_bytes <- 80_000_000;
  let t_rand = Kernel_cost.duration g ~threads:100000 r in
  let r2 = Cost.zero () in
  r2.Cost.coalesced_bytes <- 80_000_000;
  let t_seq = Kernel_cost.duration g ~threads:100000 r2 in
  check Alcotest.bool "random slower than coalesced" true (t_rand > (2.0 *. t_seq))

let test_kernel_cost_occupancy () =
  let g = Spec.tesla_c2075 in
  let c = Cost.zero () in
  c.Cost.flops <- 1_000_000;
  let t_small = Kernel_cost.duration g ~threads:32 c in
  let t_big = Kernel_cost.duration g ~threads:100000 c in
  check Alcotest.bool "few threads slower" true (t_small > t_big)

let test_kernel_cost_broadcast_discount () =
  let g = Spec.tesla_c2075 in
  let b = Cost.zero () in
  b.Cost.broadcast_bytes <- 320_000_000;
  let c = Cost.zero () in
  c.Cost.coalesced_bytes <- 320_000_000;
  check Alcotest.bool "broadcast cheaper" true
    (Kernel_cost.memory_time g b < Kernel_cost.memory_time g c /. 8.0)

let test_cpu_model_scaling () =
  let cpu = Spec.core_i7_970 in
  let c = Cost.zero () in
  c.Cost.flops <- 100_000_000;
  let t1 = Cpu_model.duration cpu ~threads:1 c in
  let t6 = Cpu_model.duration cpu ~threads:6 c in
  let t12 = Cpu_model.duration cpu ~threads:12 c in
  check Alcotest.bool "parallel speedup" true (t6 < t1 /. 3.0);
  check Alcotest.bool "HT adds a little" true (t12 < t6);
  check Alcotest.bool "HT far from linear" true (t12 > t6 /. 1.6);
  (* One OpenMP thread pays the parallel-efficiency derating that plain
     serial execution does not. *)
  let serial = Cpu_model.serial_duration cpu c in
  check Alcotest.bool "serial beats 1 OpenMP thread" true (serial <= t1)

(* ---------------- Machine & CUDA ---------------- *)

let test_machine_presets () =
  let d = Machine.desktop () in
  check Alcotest.int "desktop gpus" 2 (Machine.num_gpus d);
  check Alcotest.int "desktop threads" 12 d.Machine.default_omp_threads;
  let s = Machine.supernode () in
  check Alcotest.int "supernode gpus" 3 (Machine.num_gpus s);
  check Alcotest.int "supernode threads" 24 s.Machine.default_omp_threads;
  (match Machine.desktop ~num_gpus:3 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "desktop has at most 2 GPUs");
  (* Spans land in the trace. *)
  let c = Cost.zero () in
  c.Cost.flops <- 1000;
  let _ = Machine.launch_kernel d ~dev:0 ~ready:0.0 ~threads:100 ~label:"k" c in
  check Alcotest.int "span recorded" 1 (List.length (Mgacc_sim.Trace.spans d.Machine.trace))

(* Every accepted spec string form must round-trip through its canonical
   spelling, build a machine with the advertised GPU count, and reject
   malformed strings with a printable error (never a silent clamp). *)
let test_machine_spec_roundtrip () =
  let roundtrip s =
    match Machine.spec_of_string s with
    | Error e -> Alcotest.failf "spec %S rejected: %s" s e
    | Ok spec -> (
        let canon = Machine.spec_to_string spec in
        match Machine.spec_of_string canon with
        | Error e -> Alcotest.failf "canonical %S rejected: %s" canon e
        | Ok spec' ->
            check Alcotest.bool (Printf.sprintf "%s round-trips via %s" s canon) true
              (spec = spec');
            let m = Machine.of_spec spec in
            check Alcotest.int
              (Printf.sprintf "%s builds spec_gpus machines" s)
              (Machine.spec_gpus spec) (Machine.num_gpus m))
  in
  List.iter roundtrip
    [
      (* presets *)
      "desktop"; "desktop-mixed"; "supernode"; "cluster";
      (* explicit cluster shape *)
      "cluster:2x2"; "cluster:8x4";
      (* fat tree, default and explicit oversubscription *)
      "fattree:8x4"; "fattree:4x2:1"; "fattree:16x4:4";
      (* multi-rail, default and explicit rail count *)
      "multirail:8x4"; "multirail:2x4:3";
      (* NVLink-style mesh *)
      "nvmesh:8x4"; "nvmesh:2x2";
    ];
  let rejected s =
    match Machine.spec_of_string s with
    | Error msg ->
        check Alcotest.bool (Printf.sprintf "%s error is printable" s) true
          (String.length msg > 0)
    | Ok spec ->
        Alcotest.failf "bad spec %S accepted as %s" s (Machine.spec_to_string spec)
  in
  List.iter rejected
    [ "laptop"; "cluster:0x4"; "cluster:2x"; "fattree:8x4:0"; "multirail:8x4:-1";
      "nvmesh:x4"; "cluster:2x2x2"; "" ]

let test_machine_spec_canonical_forms () =
  let canon s expect =
    match Machine.spec_of_string s with
    | Error e -> Alcotest.failf "spec %S rejected: %s" s e
    | Ok spec -> check Alcotest.string (s ^ " canonical form") expect (Machine.spec_to_string spec)
  in
  canon "desktop" "desktop";
  canon "cluster:2x2" "cluster:2x2";
  canon "fattree:8x4" (Machine.spec_to_string (Machine.Fat_tree_spec { nodes = 8; gpus_per_node = 4; oversub = 2.0 }));
  canon "nvmesh:8x4" "nvmesh:8x4";
  check Alcotest.bool "grammar mentions fattree" true
    (let g = Machine.spec_grammar in
     let needle = "fattree" in
     let n = String.length needle and gl = String.length g in
     let rec scan i = i + n <= gl && (String.sub g i n = needle || scan (i + 1)) in
     scan 0)

let test_cuda_api () =
  let m = Machine.desktop () in
  let ctx = Cuda.init m in
  check Alcotest.int "device 0" 0 (Cuda.current_device ctx);
  Cuda.set_device ctx 1;
  check Alcotest.int "device 1" 1 (Cuda.current_device ctx);
  Cuda.set_device ctx 0;
  let buf = Cuda.malloc_floats ctx 8 in
  Cuda.memcpy_h2d_floats ctx ~dst:buf (Array.init 8 float_of_int);
  let t_after_copy = Cuda.now ctx in
  check Alcotest.bool "copy took time" true (t_after_copy > 0.0);
  Cuda.launch ctx ~threads:8 ~label:"double" (fun () ->
      let d = Memory.float_data buf in
      for i = 0 to 7 do
        d.(i) <- 2.0 *. d.(i)
      done;
      let c = Cost.zero () in
      c.Cost.flops <- 8;
      c);
  check Alcotest.bool "kernel took time" true (Cuda.now ctx > t_after_copy);
  let out = Array.make 8 0.0 in
  Cuda.memcpy_d2h_floats ctx ~src:buf out;
  check (Alcotest.float 1e-12) "kernel effect" 14.0 out.(7);
  Cuda.free ctx buf

let suite =
  [
    tc "memory: class accounting and peaks" test_memory_accounting;
    tc "memory: out of device memory" test_memory_oom;
    tc "memory: use after free" test_memory_use_after_free;
    tc "fabric: uncontended transfer" test_fabric_single_transfer;
    tc "fabric: host aggregate contention" test_fabric_host_aggregate_contention;
    tc "fabric: per-flow cap binds" test_fabric_own_cap_binds;
    tc "fabric: staggered arrivals and zero bytes" test_fabric_staggered_arrivals;
    tc "fabric: physical lower bounds" test_fabric_conservation;
    tc "fabric: incremental allocator pinned identity" test_fabric_incremental_identity;
    tc "fabric: incremental allocator perf gate" test_fabric_incremental_perf_gate;
    tc "kernel cost: roofline magnitudes" test_kernel_cost_roofline;
    tc "kernel cost: occupancy penalty" test_kernel_cost_occupancy;
    tc "kernel cost: broadcast discount" test_kernel_cost_broadcast_discount;
    tc "cpu model: thread scaling" test_cpu_model_scaling;
    tc "machine: presets and tracing" test_machine_presets;
    tc "machine: spec strings round-trip" test_machine_spec_roundtrip;
    tc "machine: spec canonical forms and grammar" test_machine_spec_canonical_forms;
    tc "cuda: malloc/memcpy/launch" test_cuda_api;
  ]
