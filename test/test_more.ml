(* Second coverage battery: edge cases and behaviors not exercised by the
   primary suites — newer directives (if, enter/exit data), 2-D parameters,
   fabric asymmetries, runtime error paths, chrome-trace output. *)

open Mgacc_minic
module Fabric = Mgacc_gpusim.Fabric
module Spec = Mgacc_gpusim.Spec
module Kernel_cost = Mgacc_gpusim.Kernel_cost
module Cost = Mgacc_gpusim.Cost
module Trace = Mgacc_sim.Trace

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ---------------- frontend ---------------- *)

let test_if_clause_roundtrip () =
  let d s = Pretty.directive_to_string (Parser.parse_directive ~file:"t" ~line:1 s) in
  check Alcotest.string "if clause" "acc parallel loop if((n > 4096)) reduction(+: s)"
    (d "acc parallel loop if(n > 4096) reduction(+: s)")

let test_enter_exit_roundtrip () =
  let d s = Pretty.directive_to_string (Parser.parse_directive ~file:"t" ~line:1 s) in
  check Alcotest.string "enter" "acc enter data copyin(a[0:n])" (d "acc enter data copyin(a[0:n])");
  check Alcotest.string "exit" "acc exit data copyout(a[0:n])" (d "acc exit data copyout(a[0:n])");
  match Parser.parse_directive ~file:"t" ~line:1 "acc enter copyin(a)" with
  | exception Loc.Error _ -> ()
  | _ -> Alcotest.fail "enter without data must fail"

let test_2d_params () =
  let p =
    Parser.parse ~file:"t"
      {|double trace_sum(int n, double m[][n]) {
          double s = 0.0; int i;
          for (i = 0; i < n; i++) { s += m[i][i]; }
          return s;
        }
        void main() {
          int n = 4;
          double m[n][n];
          int i; int j;
          for (i = 0; i < n; i++) { for (j = 0; j < n; j++) { m[i][j] = 1.0 * (i * 10 + j); } }
          double out[1];
          out[0] = trace_sum(n, m);
        }|}
  in
  Typecheck.check_program p;
  let env = Mgacc.Host_interp.run_program p in
  let out = Mgacc.float_results env "out" in
  check (Alcotest.float 1e-12) "diagonal sum" 66.0 out.(0)

let test_for_decl_init_parallel () =
  (* "for (int i = 0; ...)" must normalize as a parallel loop. *)
  let src =
    {|void main() { int n = 16; double a[n];
#pragma acc parallel loop
for (int i = 0; i < n; i++) { a[i] = 2.0 * i; } }|}
  in
  let env = Mgacc.run_sequential (Mgacc.parse_string ~name:"t" src) in
  check (Alcotest.float 1e-12) "computed" 30.0 (Mgacc.float_results env "a").(15)

let test_interp_short_circuit () =
  (* && and || must not evaluate their right operand when decided: the
     guard pattern idx >= 0 && a[idx] protects the bounds. *)
  let src =
    {|void main() { double a[4]; int i = 0 - 1; double out[1];
        a[0] = 5.0;
        if (i >= 0 && a[i] > 0.0) { out[0] = 1.0; } else { out[0] = 2.0; }
        if (i < 0 || a[i] > 0.0) { out[0] = out[0] + 10.0; }
      }|}
  in
  let env = Mgacc.run_sequential (Mgacc.parse_string ~name:"t" src) in
  check (Alcotest.float 1e-12) "short circuit" 12.0 (Mgacc.float_results env "out").(0)

let test_interp_int_division_truncates () =
  let src =
    {|void main() { int out[4];
        out[0] = 7 / 2; out[1] = (0 - 7) / 2; out[2] = 7 % 3; out[3] = (0 - 7) % 3;
      }|}
  in
  let env = Mgacc.run_sequential (Mgacc.parse_string ~name:"t" src) in
  check (Alcotest.array Alcotest.int) "C semantics" [| 3; -3; 1; -1 |]
    (Mgacc.int_results env "out")

(* ---------------- analysis ---------------- *)

let test_affine_offset_expr_eval () =
  let e = Parser.parse_expr ~file:"t" "3*i + off + 2" in
  match
    Mgacc_analysis.Affine.of_expr ~loop_var:"i" ~is_uniform:(fun v -> v = "off") e
  with
  | Some a ->
      let off_expr = Mgacc_analysis.Affine.offset_expr ~loc:Loc.dummy a in
      (* Evaluate with off = 10 through the host interpreter machinery. *)
      let src = Printf.sprintf "void main() { int off = 10; int out[1]; out[0] = %s; }"
          (Pretty.expr_to_string off_expr) in
      let env = Mgacc.run_sequential (Mgacc.parse_string ~name:"t" src) in
      check Alcotest.int "offset evaluates" 12 (Mgacc.int_results env "out").(0)
  | None -> Alcotest.fail "affine expected"

let test_symbolic_linearity_units () =
  let l =
    let p =
      Parser.parse ~file:"t"
        {|void main() { int n = 8; int w = 3; double a[n*w]; int i;
#pragma acc parallel loop
for (i = 0; i < n; i++) { a[i*w] = 1.0; } }|}
    in
    List.hd (Mgacc_analysis.Loop_info.extract (Option.get (Ast.find_func p "main")))
  in
  let cls = Mgacc_analysis.Coalesce.make l in
  (match cls (Parser.parse_expr ~file:"t" "i*w") with
  | Mgacc_analysis.Coalesce.Strided 0 -> ()
  | m -> Alcotest.failf "i*w: %s" (Mgacc_analysis.Coalesce.mode_to_string m));
  (match cls (Parser.parse_expr ~file:"t" "w*i + w") with
  | Mgacc_analysis.Coalesce.Strided 0 -> ()
  | m -> Alcotest.failf "w*i+w: %s" (Mgacc_analysis.Coalesce.mode_to_string m));
  match cls (Parser.parse_expr ~file:"t" "i*i") with
  | Mgacc_analysis.Coalesce.Random -> ()
  | m -> Alcotest.failf "i*i: %s" (Mgacc_analysis.Coalesce.mode_to_string m)

(* ---------------- gpusim ---------------- *)

let test_fabric_direction_asymmetry () =
  let f = Fabric.create Spec.pcie_gen2_desktop ~num_gpus:2 in
  let bytes = 100_000_000 in
  let h2d = Fabric.transfer_time_alone f (Fabric.H2d 0) ~bytes in
  let d2h = Fabric.transfer_time_alone f (Fabric.D2h 0) ~bytes in
  let p2p = Fabric.transfer_time_alone f (Fabric.P2p (0, 1)) ~bytes in
  check Alcotest.bool "d2h slower than h2d" true (d2h > h2d);
  check Alcotest.bool "p2p slowest" true (p2p > d2h);
  match Fabric.run_batch f [ { Fabric.direction = Fabric.P2p (0, 0); bytes; ready = 0.0; tag = "x" } ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "self P2P must be rejected"

let test_occupancy_bounds () =
  let g = Spec.tesla_c2075 in
  check (Alcotest.float 1e-12) "saturates at 1" 1.0 (Kernel_cost.occupancy g ~threads:10_000_000);
  check Alcotest.bool "floor above zero" true (Kernel_cost.occupancy g ~threads:1 >= 1e-3);
  check (Alcotest.float 1e-12) "zero threads neutral" 1.0 (Kernel_cost.occupancy g ~threads:0)

let test_l2_hit_monotone () =
  let c = Cost.zero () in
  c.Cost.random_accesses <- 1_000_000;
  c.Cost.random_bytes <- 8_000_000;
  let lo = { Spec.tesla_c2075 with Spec.l2_hit_ratio = 0.0 } in
  let hi = { Spec.tesla_c2075 with Spec.l2_hit_ratio = 0.9 } in
  check Alcotest.bool "more hits, less time" true
    (Kernel_cost.memory_time hi c < Kernel_cost.memory_time lo c)

let test_chrome_json_valid_shape () =
  let t = Trace.create () in
  Trace.add t
    { Trace.id = 0; causes = []; resource = "gpu0"; category = Trace.Kernel; label = "k\"quote";
      start = 0.0; finish = 1e-3; bytes = 0 };
  Trace.add t
    { Trace.id = 1; causes = []; resource = "pcie:h2d0"; category = Trace.Host_to_device;
      label = "load"; start = 0.0; finish = 2e-3; bytes = 42 };
  let s = Trace.to_chrome_json t in
  check Alcotest.bool "escaped quote" true
    (String.length s > 0 && not (String.equal s "[]"));
  (* Structure sanity: balanced brackets, one event name per span + thread
     metadata entries. *)
  let count sub =
    let n = ref 0 in
    let sl = String.length sub in
    for i = 0 to String.length s - sl do
      if String.sub s i sl = sub then incr n
    done;
    !n
  in
  check Alcotest.int "two complete events" 2 (count "\"ph\":\"X\"");
  check Alcotest.int "two thread names" 2 (count "thread_name");
  check Alcotest.int "bytes arg" 1 (count "\"bytes\":42")

(* ---------------- runtime error paths ---------------- *)

let run_acc ?(num_gpus = 2) src =
  let m = Mgacc.Machine.desktop () in
  let config = Mgacc.Rt_config.make ~num_gpus m in
  Mgacc.run_acc ~config ~machine:m (Mgacc.parse_string ~name:"t" src)

let test_rt_config_validation () =
  let m = Mgacc.Machine.desktop () in
  (match Mgacc.Rt_config.make ~num_gpus:5 m with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "too many GPUs");
  match Mgacc.Rt_config.make ~chunk_bytes:4 m with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "chunk too small"

let test_plain_write_to_reduction_dest_rejected () =
  let src =
    {|void main() { int n = 32; double h[4]; double x[n]; int i;
        for (i = 0; i < 4; i++) { h[i] = 0.0; }
        for (i = 0; i < n; i++) { x[i] = 1.0; }
        #pragma acc parallel loop
        for (i = 0; i < n; i++) {
          #pragma acc reductiontoarray(+: h)
          h[i % 4] += x[i];
          h[0] = 3.0;
        }
      }|}
  in
  match run_acc src with
  | exception Invalid_argument msg ->
      check Alcotest.bool "names the array" true (String.length msg > 0)
  | _ -> Alcotest.fail "plain write to a reduction destination must fail"

let test_present_clause_checks () =
  let src =
    {|void main() { int n = 8; double a[n]; int i;
        #pragma acc data present(a[0:n])
        {
          #pragma acc parallel loop
          for (i = 0; i < n; i++) { a[i] = 1.0; }
        }
      }|}
  in
  match run_acc src with
  | exception Loc.Error (_, msg) ->
      check Alcotest.bool "mentions present" true (String.length msg > 0)
  | _ -> Alcotest.fail "present() on absent array must fail"

let test_nested_data_regions () =
  let src =
    {|void main() { int n = 64; double a[n]; int i;
        for (i = 0; i < n; i++) { a[i] = 1.0; }
        #pragma acc data copy(a[0:n])
        {
          #pragma acc data present(a[0:n])
          {
            #pragma acc parallel loop localaccess(a: stride(1))
            for (i = 0; i < n; i++) { a[i] = a[i] + 1.0; }
          }
          #pragma acc parallel loop localaccess(a: stride(1))
          for (i = 0; i < n; i++) { a[i] = a[i] * 2.0; }
        }
      }|}
  in
  let env, _ = run_acc src in
  check (Alcotest.float 1e-12) "nested regions" 4.0 (Mgacc.float_results env "a").(0)

let test_gang_worker_clauses_accepted () =
  let src =
    {|void main() { int n = 64; double a[n]; int i;
        #pragma acc parallel loop gang worker vector(64) independent localaccess(a: stride(1))
        for (i = 0; i < n; i++) { a[i] = 1.0 * i; }
      }|}
  in
  let env, _ = run_acc src in
  check (Alcotest.float 1e-12) "ran" 63.0 (Mgacc.float_results env "a").(63)

(* ---------------- cluster topology ---------------- *)

let test_cluster_fabric_paths () =
  let topo =
    { Fabric.gpus_per_node = 2; internode_bandwidth = 3.2e9; internode_latency = 25e-6 }
  in
  let f = Fabric.create ~topology:topo Spec.pcie_gen2_desktop ~num_gpus:4 in
  check Alcotest.int "node of gpu 0" 0 (Fabric.node_of f 0);
  check Alcotest.int "node of gpu 3" 1 (Fabric.node_of f 3);
  let intra = Fabric.standalone_bandwidth f (Fabric.P2p (0, 1)) in
  let inter = Fabric.standalone_bandwidth f (Fabric.P2p (0, 2)) in
  check Alcotest.bool "intra-node faster" true (intra > inter);
  check (Alcotest.float 1.0) "inter-node capped by the wire" 3.2e9 inter;
  let t_intra = Fabric.transfer_time_alone f (Fabric.P2p (0, 1)) ~bytes:1_000_000 in
  let t_inter = Fabric.transfer_time_alone f (Fabric.P2p (0, 2)) ~bytes:1_000_000 in
  check Alcotest.bool "inter-node pays network latency too" true (t_inter > t_intra)

let test_cluster_runs_apps_correctly () =
  (* The whole runtime on a 2x2 cluster: results must still be exact. *)
  let machine = Mgacc.Machine.cluster ~nodes:2 ~gpus_per_node:2 () in
  check Alcotest.int "four GPUs" 4 (Mgacc.Machine.num_gpus machine);
  let app = Mgacc_apps.Bfs.app { Mgacc_apps.Bfs.nodes = 1200; max_degree = 5; seed = 3 } in
  let ref_env = Mgacc_apps.App_common.sequential app in
  let config = Mgacc.Rt_config.make ~num_gpus:4 machine in
  let env, report =
    Mgacc.run_acc ~config ~machine
      (Mgacc.parse_string ~name:"bfs.c" app.Mgacc_apps.App_common.source)
  in
  Mgacc_apps.App_common.check_exn app ~against:ref_env env;
  check Alcotest.bool "cross-node reconciliation happened" true
    (report.Mgacc.Report.gpu_gpu_bytes > 0)

let test_cluster_internode_slower_than_intranode () =
  (* BFS reconciliation across 2 GPUs: one node vs split across two nodes
     (1 GPU each). Same traffic, slower wire. *)
  let app = Mgacc_apps.Bfs.app { Mgacc_apps.Bfs.nodes = 6000; max_degree = 8; seed = 3 } in
  let program = Mgacc.parse_string ~name:"bfs.c" app.Mgacc_apps.App_common.source in
  let m1 = Mgacc.Machine.cluster ~nodes:1 ~gpus_per_node:2 () in
  let _, same_node = Mgacc.run_acc ~config:(Mgacc.Rt_config.make ~num_gpus:2 m1) ~machine:m1 program in
  let m2 = Mgacc.Machine.cluster ~nodes:2 ~gpus_per_node:1 () in
  let _, split = Mgacc.run_acc ~config:(Mgacc.Rt_config.make ~num_gpus:2 m2) ~machine:m2 program in
  check Alcotest.bool "similar traffic" true
    (abs (same_node.Mgacc.Report.gpu_gpu_bytes - split.Mgacc.Report.gpu_gpu_bytes)
    < same_node.Mgacc.Report.gpu_gpu_bytes / 4);
  check Alcotest.bool "wire hurts" true
    (split.Mgacc.Report.gpu_gpu_time > 1.2 *. same_node.Mgacc.Report.gpu_gpu_time)

let suite =
  [
    tc "cluster: fabric paths and latencies" test_cluster_fabric_paths;
    tc "cluster: 2x2 runs BFS exactly" test_cluster_runs_apps_correctly;
    tc "cluster: inter-node reconciliation slower" test_cluster_internode_slower_than_intranode;
    tc "frontend: if clause round trip" test_if_clause_roundtrip;
    tc "frontend: enter/exit data round trip" test_enter_exit_roundtrip;
    tc "frontend: 2-D VLA parameters" test_2d_params;
    tc "frontend: for-decl-init parallel loops" test_for_decl_init_parallel;
    tc "interp: short-circuit evaluation" test_interp_short_circuit;
    tc "interp: integer division truncates" test_interp_int_division_truncates;
    tc "analysis: affine offset expression evaluates" test_affine_offset_expr_eval;
    tc "analysis: symbolic linearity units" test_symbolic_linearity_units;
    tc "fabric: direction asymmetry and self-P2P" test_fabric_direction_asymmetry;
    tc "kernel cost: occupancy bounds" test_occupancy_bounds;
    tc "kernel cost: L2 hit ratio monotone" test_l2_hit_monotone;
    tc "trace: chrome json shape" test_chrome_json_valid_shape;
    tc "runtime: config validation" test_rt_config_validation;
    tc "runtime: plain write to reduction dest rejected" test_plain_write_to_reduction_dest_rejected;
    tc "runtime: present() checks" test_present_clause_checks;
    tc "runtime: nested data regions" test_nested_data_regions;
    tc "runtime: gang/worker/vector clauses accepted" test_gang_worker_clauses_accepted;
  ]
