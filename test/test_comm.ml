(* Unit tests for the communication manager, reductions and launch-level
   behaviour that the end-to-end tests only exercise indirectly. *)

module Interval = Mgacc_util.Interval
module Memory = Mgacc_gpusim.Memory
module Machine = Mgacc_gpusim.Machine
module Cost = Mgacc_gpusim.Cost
open Mgacc_runtime

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let mk_cfg ?(num_gpus = 2) () = Rt_config.make ~num_gpus (Machine.desktop ())

let mk_da cfg name data =
  Darray.create cfg ~name ~host:(Mgacc_exec.View.of_float_array ~name data)

(* ---------------- Reduction merge ---------------- *)

let test_reduction_merge_values () =
  let cfg = mk_cfg () in
  let da = mk_da cfg "acc" [| 10.0; 20.0; 30.0 |] in
  let _ = Darray.ensure_replicated cfg da ~dirty_tracking:false in
  let red = Reduction.allocate cfg da Mgacc_minic.Ast.Rplus in
  Reduction.reduce_f red ~gpu:0 0 5.0;
  Reduction.reduce_f red ~gpu:0 2 1.0;
  Reduction.reduce_f red ~gpu:1 0 7.0;
  let m = Reduction.merge cfg red da in
  (* final = base + partial0 + partial1, on every replica. *)
  let r = Darray.replica_of da in
  List.iter
    (fun g ->
      let d = Memory.float_data r.Darray.bufs.(g) in
      check (Alcotest.float 1e-12) "elem 0" 22.0 d.(0);
      check (Alcotest.float 1e-12) "elem 1" 20.0 d.(1);
      check (Alcotest.float 1e-12) "elem 2" 31.0 d.(2))
    [ 0; 1 ];
  (* Traffic: gather from GPU 1 (it contributed) + broadcast to GPU 1. *)
  check Alcotest.int "two transfers" 2 (List.length m.Reduction.xfers);
  check Alcotest.bool "combine kernel charged" true
    (not (Cost.is_zero m.Reduction.combine_cost))

let test_reduction_merge_single_gpu () =
  let cfg = mk_cfg ~num_gpus:1 () in
  let da = mk_da cfg "acc" [| 1.0 |] in
  let _ = Darray.ensure_replicated cfg da ~dirty_tracking:false in
  let red = Reduction.allocate cfg da Mgacc_minic.Ast.Rmax in
  Reduction.reduce_f red ~gpu:0 0 9.0;
  let m = Reduction.merge cfg red da in
  check Alcotest.int "no transfers on one GPU" 0 (List.length m.Reduction.xfers);
  let r = Darray.replica_of da in
  check (Alcotest.float 1e-12) "max applied" 9.0 (Memory.float_data r.Darray.bufs.(0)).(0)

let test_reduction_partials_accounted () =
  let cfg = mk_cfg () in
  let da = mk_da cfg "acc" (Array.make 1000 0.0) in
  let _ = Darray.ensure_replicated cfg da ~dirty_tracking:false in
  let mem g = (Machine.device cfg.Rt_config.machine g).Mgacc_gpusim.Device.memory in
  let before = Memory.used_class (mem 0) `System in
  let red = Reduction.allocate cfg da Mgacc_minic.Ast.Rplus in
  check Alcotest.int "partial charged as system" (before + 8000) (Memory.used_class (mem 0) `System);
  let _ = Reduction.merge cfg red da in
  check Alcotest.int "partial freed after merge" before (Memory.used_class (mem 0) `System)

(* ---------------- Dirty merge via a program ---------------- *)

let run_acc ?(num_gpus = 2) ?chunk_bytes src =
  let m = Machine.desktop () in
  let config = Rt_config.make ~num_gpus ?chunk_bytes m in
  Mgacc.run_acc ~config ~machine:m (Mgacc.parse_string ~name:"t" src)

let test_merge_preserves_disjoint_writers () =
  (* GPU 0 owns iterations [0,500), GPU 1 [500,1000); each writes only its
     own disjoint region of the replicated array; merge must interleave
     both GPUs' contributions. *)
  let src =
    {|void main() {
        int n = 1000; double a[n]; int i;
        for (i = 0; i < n; i++) { a[i] = -1.0; }
        #pragma acc data copy(a[0:n])
        {
          #pragma acc parallel loop
          for (i = 0; i < n; i++) { a[(i + 500) % n] = 1.0 * i; }
        }
      }|}
  in
  let env, _ = run_acc src in
  let a = Mgacc.float_results env "a" in
  check (Alcotest.float 1e-12) "gpu0's write landed" 0.0 a.(500);
  check (Alcotest.float 1e-12) "gpu1's write landed" 999.0 a.(499);
  Array.iteri (fun i v -> if v < 0.0 then Alcotest.failf "a[%d] unwritten" i) a

let test_dirty_bytes_scale_with_chunks () =
  (* One dirty element: with small chunks the reconciliation ships one
     chunk (plus bits) to the peer. *)
  let src =
    {|void main() {
        int n = 8192; double a[n]; int i;
        for (i = 0; i < n; i++) { a[i] = 0.0; }
        #pragma acc data copy(a[0:n])
        {
          #pragma acc parallel loop
          for (i = 0; i < n; i++) { if (i == 0) { a[4096] = 1.0; } }
        }
      }|}
  in
  let _, r = run_acc ~chunk_bytes:1024 src in
  (* one 1KB chunk + 16B of first-level bits, one direction *)
  check Alcotest.int "one chunk ships" (1024 + 16) r.Mgacc.Report.gpu_gpu_bytes

(* ---------------- Halo exchange across several owners ---------------- *)

let test_halo_spans_multiple_owners () =
  (* 3 GPUs, equal split of 30 elements, right halo of 15: GPU 0's halo
     [10,25) crosses the GPU1/GPU2 ownership boundary and must be
     refreshed with one segment per owner. *)
  let module Fabric = Mgacc_gpusim.Fabric in
  let cfg = Rt_config.make ~num_gpus:3 (Machine.supernode ~num_gpus:3 ()) in
  let da = mk_da cfg "h" (Array.init 30 float_of_int) in
  let ranges = Task_map.split ~lower:0 ~upper:30 ~parts:3 in
  let spec = { Darray.stride = 1; left = 0; right = 15; tile = None } in
  let _ = Darray.ensure_distributed cfg da ~spec ~ranges in
  (* Owners write fresh values into their own blocks (device-side). *)
  let poke gpu logical v =
    let p = Darray.part_for da ~gpu in
    (Memory.float_data p.Darray.buf).(logical - p.Darray.window.Interval.lo) <- v
  in
  poke 1 12 999.0;
  poke 2 22 777.0;
  Darray.mark_device_written da;
  let ops = Comm_manager.halo_exchange cfg da in
  check Alcotest.int "one op per (owner, dst) segment" 3 (List.length ops);
  List.iter
    (fun (o : Comm_manager.op) ->
      check Alcotest.bool "kind" true (o.Comm_manager.kind = Comm_manager.Halo_segment))
    ops;
  let bytes_of dir =
    match List.find_opt (fun (o : Comm_manager.op) -> o.Comm_manager.dir = dir) ops with
    | Some o -> o.Comm_manager.bytes
    | None -> Alcotest.fail "missing halo segment"
  in
  (* GPU 0 needs [10,20) from GPU 1 and [20,25) from GPU 2; GPU 1 needs
     [20,30) from GPU 2; GPU 2's window holds no halo. *)
  check Alcotest.int "gpu1 -> gpu0 segment" (10 * 8) (bytes_of (Fabric.P2p (1, 0)));
  check Alcotest.int "gpu2 -> gpu0 segment" (5 * 8) (bytes_of (Fabric.P2p (2, 0)));
  check Alcotest.int "gpu2 -> gpu1 segment" (10 * 8) (bytes_of (Fabric.P2p (2, 1)));
  (* The functional copies landed in the halo regions. *)
  let peek gpu logical =
    let p = Darray.part_for da ~gpu in
    (Memory.float_data p.Darray.buf).(logical - p.Darray.window.Interval.lo)
  in
  check (Alcotest.float 1e-12) "gpu0 sees gpu1's write" 999.0 (peek 0 12);
  check (Alcotest.float 1e-12) "gpu0 sees gpu2's write" 777.0 (peek 0 22);
  check (Alcotest.float 1e-12) "gpu1 sees gpu2's write" 777.0 (peek 1 22);
  check Alcotest.bool "halo marked synced" false da.Darray.written_since_halo_sync

(* ---------------- Two-level dirty transfer bytes ---------------- *)

let test_transfer_bytes_matches_brute_force () =
  (* The O(1) incremental figure must match a from-scratch recount of the
     dirty chunks, including the clamped final chunk. *)
  let mem = Memory.create ~device_id:0 ~capacity:(1 lsl 20) in
  let elem_bytes = 8 and length = 1003 and chunk_bytes = 64 in
  let chunk_elems = chunk_bytes / elem_bytes in
  let d = Dirty.create mem ~elem_bytes ~length ~chunk_bytes ~two_level:true in
  let marked = Hashtbl.create 64 in
  let mark i =
    Dirty.mark d i;
    Hashtbl.replace marked i ()
  in
  (* A scattered pattern with repeats, dense runs and the tail chunk. *)
  List.iter mark [ 0; 1; 1; 7; 8; 64; 65; 500; 501; 502; 777; 1000; 1002; 1002 ];
  let brute_force () =
    let chunks = Hashtbl.create 16 in
    Hashtbl.iter (fun i () -> Hashtbl.replace chunks (i / chunk_elems) ()) marked;
    Hashtbl.fold
      (fun c () acc ->
        let lo = c * chunk_elems in
        let elems = min length (lo + chunk_elems) - lo in
        acc + (elems * elem_bytes) + ((elems + 7) / 8))
      chunks 0
  in
  check Alcotest.int "incremental = brute force" (brute_force ()) (Dirty.transfer_bytes d);
  (* Marking more of an already-dirty chunk must not change the figure. *)
  mark 2;
  check Alcotest.int "same chunk adds nothing" (brute_force ()) (Dirty.transfer_bytes d);
  (* A new chunk grows it by exactly one chunk's payload. *)
  let before = Dirty.transfer_bytes d in
  mark 200;
  check Alcotest.int "new chunk adds its payload"
    (before + (chunk_elems * elem_bytes) + ((chunk_elems + 7) / 8))
    (Dirty.transfer_bytes d);
  check Alcotest.int "still brute force" (brute_force ()) (Dirty.transfer_bytes d);
  Dirty.clear d;
  Hashtbl.reset marked;
  check Alcotest.int "clean after clear" 0 (Dirty.transfer_bytes d);
  mark 1002;
  (* Only the 3-element tail chunk: clamped payload plus one bit byte. *)
  check Alcotest.int "tail chunk clamps" ((3 * elem_bytes) + 1) (Dirty.transfer_bytes d);
  Dirty.free mem d

(* ---------------- Scalar firstprivate semantics ---------------- *)

let test_scalars_are_firstprivate () =
  (* A scalar assigned inside the loop must NOT leak back to the host
     (OpenACC firstprivate), unlike the OpenMP runner's shared scalars. *)
  let src =
    {|void main() {
        int n = 100; double a[n]; double t = 7.0; int i;
        #pragma acc parallel loop localaccess(a: stride(1))
        for (i = 0; i < n; i++) { t = 1.0 * i; a[i] = t; }
      }|}
  in
  let env, _ = run_acc src in
  (match Mgacc.Host_interp.get_scalar env "t" with
  | Mgacc.Host_interp.Vfloat t -> check (Alcotest.float 1e-12) "t untouched" 7.0 t
  | _ -> Alcotest.fail "t kind");
  let a = Mgacc.float_results env "a" in
  check (Alcotest.float 1e-12) "private use worked" 99.0 a.(99)

let test_empty_iteration_space () =
  let src =
    {|void main() {
        int n = 0; double a[10]; int i;
        for (i = 0; i < 10; i++) { a[i] = 3.0; }
        #pragma acc parallel loop localaccess(a: stride(1))
        for (i = 0; i < n; i++) { a[i] = 9.0; }
      }|}
  in
  let env, report = run_acc src in
  let a = Mgacc.float_results env "a" in
  check (Alcotest.float 1e-12) "nothing written" 3.0 a.(0);
  check Alcotest.int "loop still counted" 1 report.Mgacc.Report.loops

(* ---------------- OpenMP runner ---------------- *)

let test_openmp_shared_scalars () =
  (* Sequential in-order semantics: the last iteration's assignment is
     visible after the loop (C/OpenMP shared scalar, race-free here). *)
  let src =
    {|void main() {
        int n = 10; double a[n]; double last = 0.0; int i;
        #pragma acc parallel loop
        for (i = 0; i < n; i++) { a[i] = 1.0; last = 1.0 * i; }
      }|}
  in
  let env, _ = Mgacc.run_openmp ~machine:(Machine.desktop ()) (Mgacc.parse_string ~name:"t" src) in
  match Mgacc.Host_interp.get_scalar env "last" with
  | Mgacc.Host_interp.Vfloat v -> check (Alcotest.float 1e-12) "shared write-back" 9.0 v
  | _ -> Alcotest.fail "kind"

let test_openmp_thread_count_matters () =
  let src =
    {|void main() {
        int n = 200000; double a[n]; int i;
        #pragma acc parallel loop
        for (i = 0; i < n; i++) { a[i] = sqrt(1.0 * i) * 2.0 + 1.0; }
      }|}
  in
  let program = Mgacc.parse_string ~name:"t" src in
  let _, r1 = Mgacc.run_openmp ~threads:1 ~machine:(Machine.desktop ()) program in
  let _, r12 = Mgacc.run_openmp ~threads:12 ~machine:(Machine.desktop ()) program in
  check Alcotest.bool "12 threads much faster" true
    (r12.Mgacc.Report.total_time < r1.Mgacc.Report.total_time /. 3.0)

(* ---------------- Report ---------------- *)

let test_report_speedup () =
  let base = Report.host_only ~machine:"m" ~variant:"omp" ~seconds:2.0 in
  let p = Profiler.create () in
  Profiler.add_kernel p ~seconds:0.5;
  let r = Report.of_profiler p ~machine:"m" ~variant:"acc" ~num_gpus:2 in
  check (Alcotest.float 1e-12) "speedup" 4.0 (Report.speedup_vs r ~baseline:base);
  check Alcotest.int "gpus" 2 r.Report.num_gpus

let suite =
  [
    tc "reduction: merge folds partials into replicas" test_reduction_merge_values;
    tc "reduction: single GPU needs no traffic" test_reduction_merge_single_gpu;
    tc "reduction: partials charged and freed as system memory" test_reduction_partials_accounted;
    tc "comm: disjoint writers merge losslessly" test_merge_preserves_disjoint_writers;
    tc "comm: chunk granularity bounds shipped bytes" test_dirty_bytes_scale_with_chunks;
    tc "comm: halo interval spanning several owners" test_halo_spans_multiple_owners;
    tc "comm: two-level transfer bytes match brute force" test_transfer_bytes_matches_brute_force;
    tc "launch: scalars are firstprivate" test_scalars_are_firstprivate;
    tc "launch: empty iteration space" test_empty_iteration_space;
    tc "openmp: shared scalar semantics" test_openmp_shared_scalars;
    tc "openmp: thread scaling visible" test_openmp_thread_count_matters;
    tc "report: speedup arithmetic" test_report_speedup;
  ]
