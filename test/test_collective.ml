(* Tests for the topology-aware collective transfer planner
   (--collective direct|ring|auto): the direct-mode identity guarantee,
   functional equivalence of ring/auto schedules on whole applications
   across machines and coherence modes, and the planner's structural
   invariants — byte conservation, well-formed pipelining dependencies,
   node-grouped ring orders that cross the wire once per node boundary,
   and the cost model preferring topology-shaped schedules for large
   payloads while keeping latency-bound small groups direct. See
   docs/MODEL.md, "Collectives". *)

open Mgacc_apps
module Collective = Mgacc.Collective
module Comm_manager = Mgacc.Comm_manager
module Fabric = Mgacc.Fabric

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f
let desktop () = Mgacc.Machine.desktop ()
let supernode () = Mgacc.Machine.supernode ()
let cluster4 () = Mgacc.Machine.cluster ~nodes:2 ~gpus_per_node:2 ()

let bfs_small = Bfs.app { Bfs.nodes = 12000; max_degree = 10; seed = 5 }

let kmeans_small =
  Kmeans.app { Kmeans.points = 4000; features = 12; clusters = 5; iterations = 6; seed = 11 }

let md_small = Md.app { Md.atoms = 400; max_neighbors = 8; seed = 17 }
let spmv_small = Spmv.app { Spmv.rows = 3000; width = 8; iterations = 4; seed = 19 }
let five_apps =
  [ bfs_small; kmeans_small; md_small; spmv_small;
    Montecarlo.app { Montecarlo.paths = 3000; steps = 8; bins = 32; seed = 29 } ]

(* ---------------- direct mode is the identity ---------------- *)

let test_direct_is_the_default () =
  (* [--collective direct] must be byte-for-byte the pre-planner path: a
     run with the flag matches a run with no flag at all, down to the
     exact simulated times, on every machine and coherence mode. *)
  List.iter
    (fun (machine, gpus) ->
      List.iter
        (fun coherence ->
          let fresh = machine in
          let _, r_default =
            App_common.proposal ~coherence ~num_gpus:gpus ~machine:(fresh ()) kmeans_small
          in
          let _, r_direct =
            App_common.proposal ~coherence ~collective:Mgacc.Rt_config.Direct ~num_gpus:gpus
              ~machine:(fresh ()) kmeans_small
          in
          check Alcotest.bool "identical total" true
            (Float.equal r_default.Mgacc.Report.total_time r_direct.Mgacc.Report.total_time);
          check Alcotest.bool "identical gpu-gpu" true
            (Float.equal r_default.Mgacc.Report.gpu_gpu_time r_direct.Mgacc.Report.gpu_gpu_time);
          check Alcotest.int "identical gpu-gpu bytes" r_default.Mgacc.Report.gpu_gpu_bytes
            r_direct.Mgacc.Report.gpu_gpu_bytes;
          check Alcotest.int "no planned groups" 0
            (r_direct.Mgacc.Report.collective_rings + r_direct.Mgacc.Report.collective_hierarchies))
        [ Mgacc.Rt_config.Eager; Mgacc.Rt_config.Lazy ])
    [ (desktop, 2); (cluster4, 4) ]

(* ---------------- whole-application equivalence ---------------- *)

let test_planned_results_match_sequential () =
  (* Ring and auto reshape who sends what to whom, but every destination
     must end with the same payload: all apps match the sequential
     reference under both execution engines and coherence modes. *)
  List.iter
    (fun app ->
      let reference = App_common.sequential app in
      List.iter
        (fun collective ->
          let env, _ =
            App_common.proposal ~collective ~num_gpus:4 ~machine:(cluster4 ()) app
          in
          App_common.check_exn app ~against:reference env;
          let env_lazy, _ =
            App_common.proposal ~collective ~coherence:Mgacc.Rt_config.Lazy ~overlap:true
              ~num_gpus:4 ~machine:(cluster4 ()) app
          in
          App_common.check_exn app ~against:reference env_lazy)
        [ Mgacc.Rt_config.Ring; Mgacc.Rt_config.Auto ])
    five_apps

let test_planned_results_single_node () =
  List.iter
    (fun app ->
      let reference = App_common.sequential app in
      let env, _ =
        App_common.proposal ~collective:Mgacc.Rt_config.Ring ~overlap:true ~num_gpus:3
          ~machine:(supernode ()) app
      in
      App_common.check_exn app ~against:reference env;
      let env2, _ =
        App_common.proposal ~collective:Mgacc.Rt_config.Auto ~coherence:Mgacc.Rt_config.Lazy
          ~num_gpus:2 ~machine:(desktop ()) app
      in
      App_common.check_exn app ~against:reference env2)
    [ kmeans_small; bfs_small ]

(* ---------------- planner structure ---------------- *)

let mk_op ?(kind = Comm_manager.Dirty_chunk) ?(round = 0) ~group ~bytes src dst =
  {
    Comm_manager.dir = Fabric.P2p (src, dst);
    bytes;
    tag = "a:chunk";
    array = "a";
    kind;
    round;
    group;
  }

let cfg_for machine collective =
  Mgacc.Rt_config.make ~num_gpus:(Mgacc.Machine.num_gpus machine) ~collective machine

(* Star broadcast group: root 0 to every other GPU. *)
let star_group ~bytes machine =
  let n = Mgacc.Machine.num_gpus machine in
  List.init (n - 1) (fun i -> mk_op ~group:1 ~bytes 0 (i + 1))

let delivered_bytes plan dst =
  Array.fold_left
    (fun acc (it : Collective.item) ->
      match it.Collective.dir with
      | Fabric.P2p (_, d) when d = dst -> acc + it.Collective.bytes
      | _ -> acc)
    0 plan

let total_bytes plan =
  Array.fold_left (fun acc (it : Collective.item) -> acc + it.Collective.bytes) 0 plan

let wire_crossings fabric plan =
  Array.fold_left
    (fun acc (it : Collective.item) ->
      match it.Collective.dir with
      | Fabric.P2p (a, b) when not (Fabric.same_node fabric a b) -> acc + it.Collective.bytes
      | _ -> acc)
    0 plan

let deps_well_formed (plan : Collective.plan) =
  let ok = ref true in
  Array.iteri
    (fun i (it : Collective.item) ->
      let dep_ok d =
        d = -1 || (d >= 0 && d < i && plan.(d).Collective.level < it.Collective.level)
      in
      if not (dep_ok it.Collective.dep && dep_ok it.Collective.dep2) then ok := false)
    plan;
  !ok

let test_ring_conserves_bytes () =
  let machine = cluster4 () in
  let fabric = machine.Mgacc.Machine.fabric in
  let bytes = 8 * 1024 * 1024 in
  let cfg = cfg_for machine Mgacc.Rt_config.Ring in
  let plan, stats = Collective.plan ~cfg ~fabric (star_group ~bytes machine) in
  check Alcotest.int "one ring" 1 stats.Collective.rings;
  (* p-1 copies in total, exactly one full payload landing per destination *)
  check Alcotest.int "total bytes = (p-1) * payload" (3 * bytes) (total_bytes plan);
  for dst = 1 to 3 do
    check Alcotest.int (Printf.sprintf "gpu %d receives the payload" dst) bytes
      (delivered_bytes plan dst)
  done;
  check Alcotest.bool "pipelining deps well-formed" true (deps_well_formed plan);
  check Alcotest.bool "segmented" true (stats.Collective.segments >= 1)

let test_ring_minimizes_wire_crossings () =
  (* Node-grouped chain on a 2x2 cluster: the payload crosses the wire
     once; the star from GPU 0 crosses once per remote destination. *)
  let machine = cluster4 () in
  let fabric = machine.Mgacc.Machine.fabric in
  let bytes = 4 * 1024 * 1024 in
  let ring_plan, _ =
    Collective.plan ~cfg:(cfg_for machine Mgacc.Rt_config.Ring) ~fabric
      (star_group ~bytes machine)
  in
  let direct_plan, _ =
    Collective.plan ~cfg:(cfg_for machine Mgacc.Rt_config.Direct) ~fabric
      (star_group ~bytes machine)
  in
  check Alcotest.int "ring crosses the wire once" bytes (wire_crossings fabric ring_plan);
  check Alcotest.int "star crosses once per remote dst" (2 * bytes)
    (wire_crossings fabric direct_plan)

let test_auto_keeps_small_payloads_direct () =
  let machine = cluster4 () in
  let fabric = machine.Mgacc.Machine.fabric in
  let cfg = cfg_for machine Mgacc.Rt_config.Auto in
  let plan, stats = Collective.plan ~cfg ~fabric (star_group ~bytes:64 machine) in
  check Alcotest.int "small group stays direct" 1 stats.Collective.direct_groups;
  check Alcotest.int "no rings" 0 (stats.Collective.rings + stats.Collective.hierarchies);
  check Alcotest.int "payload untouched" (3 * 64) (total_bytes plan)

let test_auto_beats_direct_on_cluster () =
  (* For a large replicated payload on the 2x2 cluster, whatever auto
     picks must simulate faster than the star and put fewer bytes on the
     inter-node wire. *)
  let machine = cluster4 () in
  let fabric = machine.Mgacc.Machine.fabric in
  let bytes = 16 * 1024 * 1024 in
  let ops = star_group ~bytes machine in
  let auto_plan, stats =
    Collective.plan ~cfg:(cfg_for machine Mgacc.Rt_config.Auto) ~fabric ops
  in
  let direct_plan, _ =
    Collective.plan ~cfg:(cfg_for machine Mgacc.Rt_config.Direct) ~fabric ops
  in
  check Alcotest.bool "auto reshapes the group" true
    (stats.Collective.rings + stats.Collective.hierarchies = 1);
  let t_auto = Collective.simulate ~fabric ~plan:auto_plan ~ready:0.0 in
  let t_direct = Collective.simulate ~fabric ~plan:direct_plan ~ready:0.0 in
  check Alcotest.bool
    (Printf.sprintf "auto (%.6fs) faster than direct (%.6fs)" t_auto t_direct)
    true (t_auto < t_direct);
  check Alcotest.bool "auto puts fewer bytes on the wire" true
    (wire_crossings fabric auto_plan < wire_crossings fabric direct_plan)

let test_tree_group_keeps_explicit_deps () =
  (* A binomial-tree broadcast kept direct must encode its rounds as
     explicit dependencies: the round-1 edge from GPU 1 may not leave
     before the round-0 edge that delivered to GPU 1 has finished. *)
  let machine = cluster4 () in
  let fabric = machine.Mgacc.Machine.fabric in
  let ops =
    [
      mk_op ~kind:Comm_manager.Red_bcast ~round:0 ~group:7 ~bytes:64 0 1;
      mk_op ~kind:Comm_manager.Red_bcast ~round:1 ~group:7 ~bytes:64 0 2;
      mk_op ~kind:Comm_manager.Red_bcast ~round:1 ~group:7 ~bytes:64 1 3;
    ]
  in
  let plan, stats = Collective.plan ~cfg:(cfg_for machine Mgacc.Rt_config.Auto) ~fabric ops in
  check Alcotest.int "tiny tree stays direct" 1 stats.Collective.direct_groups;
  check Alcotest.int "passthrough keeps all edges" 3 (Array.length plan);
  let edge_1_3 =
    Array.to_list plan
    |> List.find (fun (it : Collective.item) -> it.Collective.dir = Fabric.P2p (1, 3))
  in
  check Alcotest.bool "round-1 edge depends on its source's arrival" true
    (edge_1_3.Collective.dep >= 0
    && plan.(edge_1_3.Collective.dep).Collective.dir = Fabric.P2p (0, 1));
  check Alcotest.bool "deps well-formed" true (deps_well_formed plan)

(* Allreduce group: every member ships its partial toward root 0
   (gathers) and the combined result broadcasts back out, all under one
   group id — the shape the communication manager emits for an eager
   reduction under planned collectives. *)
let allreduce_group ~bytes machine =
  let n = Mgacc.Machine.num_gpus machine in
  List.init (n - 1) (fun i ->
      mk_op ~kind:Comm_manager.Red_gather ~group:3 ~bytes (i + 1) 0)
  @ List.init (n - 1) (fun i ->
        mk_op ~kind:Comm_manager.Red_bcast ~group:3 ~bytes 0 (i + 1))

let test_allreduce_ring_schedule () =
  (* Ring mode lowers the gather+broadcast pair to reduce-scatter +
     all-gather: 2(p-1) rounds of p chunk-sized hops, conserving the
     2(p-1) payload copies of the original star pair. *)
  let machine = cluster4 () in
  let fabric = machine.Mgacc.Machine.fabric in
  let bytes = 8 * 1024 * 1024 in
  let cfg = cfg_for machine Mgacc.Rt_config.Ring in
  let plan, stats = Collective.plan ~cfg ~fabric (allreduce_group ~bytes machine) in
  check Alcotest.int "one allreduce" 1 stats.Collective.allreduces;
  check Alcotest.int "p chunks" 4 stats.Collective.segments;
  check Alcotest.int "2(p-1) rounds of p hops" (2 * 3 * 4) (Array.length plan);
  check Alcotest.int "total bytes = 2(p-1) * payload" (2 * 3 * bytes) (total_bytes plan);
  check Alcotest.bool "deps well-formed" true (deps_well_formed plan);
  (* every GPU both sends and receives on every round: the load is even *)
  for g = 0 to 3 do
    let sent =
      Array.fold_left
        (fun acc (it : Collective.item) ->
          match it.Collective.dir with
          | Fabric.P2p (s, _) when s = g -> acc + it.Collective.bytes
          | _ -> acc)
        0 plan
    in
    check
      (Alcotest.float (float_of_int (2 * 3)))
      (Printf.sprintf "gpu %d sends 2(p-1)/p of the payload" g)
      (float_of_int (2 * 3 * bytes) /. 4.0)
      (float_of_int sent)
  done

let test_allreduce_auto_beats_star_on_cluster () =
  (* Large payload on the 2x2 cluster: auto must pick a reshaped
     allreduce that simulates faster and puts fewer bytes on the
     inter-node wire than the gather+broadcast star pair. *)
  let machine = cluster4 () in
  let fabric = machine.Mgacc.Machine.fabric in
  let bytes = 16 * 1024 * 1024 in
  let ops = allreduce_group ~bytes machine in
  let auto_plan, stats =
    Collective.plan ~cfg:(cfg_for machine Mgacc.Rt_config.Auto) ~fabric ops
  in
  let direct_plan, _ =
    Collective.plan ~cfg:(cfg_for machine Mgacc.Rt_config.Direct) ~fabric ops
  in
  check Alcotest.int "auto reshapes the allreduce" 1 stats.Collective.allreduces;
  let t_auto = Collective.simulate ~fabric ~plan:auto_plan ~ready:0.0 in
  let t_direct = Collective.simulate ~fabric ~plan:direct_plan ~ready:0.0 in
  check Alcotest.bool
    (Printf.sprintf "auto (%.6fs) faster than star pair (%.6fs)" t_auto t_direct)
    true (t_auto < t_direct);
  check Alcotest.bool "fewer bytes on the wire" true
    (wire_crossings fabric auto_plan < wire_crossings fabric direct_plan)

let test_allreduce_malformed_stays_direct () =
  (* Gathers without a broadcast half (a deferred result), or mismatched
     payloads, must fall back to the explicit-dependency direct schedule
     with every byte preserved. *)
  let machine = cluster4 () in
  let fabric = machine.Mgacc.Machine.fabric in
  let cfg = cfg_for machine Mgacc.Rt_config.Ring in
  let gathers_only =
    List.init 3 (fun i -> mk_op ~kind:Comm_manager.Red_gather ~group:3 ~bytes:4096 (i + 1) 0)
  in
  let plan, stats = Collective.plan ~cfg ~fabric gathers_only in
  check Alcotest.int "gathers-only group stays direct" 1 stats.Collective.direct_groups;
  check Alcotest.int "no allreduce" 0 stats.Collective.allreduces;
  check Alcotest.int "bytes preserved" (3 * 4096) (total_bytes plan);
  let mismatched =
    mk_op ~kind:Comm_manager.Red_gather ~group:5 ~bytes:1024 1 0
    :: mk_op ~kind:Comm_manager.Red_gather ~group:5 ~bytes:4096 2 0
    :: List.init 3 (fun i -> mk_op ~kind:Comm_manager.Red_bcast ~group:5 ~bytes:4096 0 (i + 1))
  in
  let plan2, stats2 = Collective.plan ~cfg ~fabric mismatched in
  check Alcotest.int "mismatched payloads stay direct" 1 stats2.Collective.direct_groups;
  check Alcotest.int "bytes preserved (mismatched)" (1024 + (4 * 4096)) (total_bytes plan2)

let test_non_group_ops_pass_through () =
  let machine = desktop () in
  let fabric = machine.Mgacc.Machine.fabric in
  let ops =
    [
      mk_op ~kind:Comm_manager.Miss_ship ~group:(-1) ~bytes:100 0 1;
      mk_op ~kind:Comm_manager.Halo_segment ~group:(-1) ~bytes:200 1 0;
    ]
  in
  let plan, stats = Collective.plan ~cfg:(cfg_for machine Mgacc.Rt_config.Auto) ~fabric ops in
  check Alcotest.int "two passthrough items" 2 (Array.length plan);
  check Alcotest.int "no groups at all" 0
    (stats.Collective.rings + stats.Collective.hierarchies + stats.Collective.direct_groups);
  Array.iteri
    (fun i (it : Collective.item) ->
      check Alcotest.int "level 0" 0 it.Collective.level;
      check Alcotest.int "no dep" (-1) it.Collective.dep;
      check Alcotest.int "bytes preserved" (List.nth ops i).Comm_manager.bytes it.Collective.bytes)
    plan

let test_execute_respects_deps () =
  (* Simulated finishes must respect the declared gates: no item finishes
     before the items it depends on. *)
  let machine = cluster4 () in
  let fabric = machine.Mgacc.Machine.fabric in
  let bytes = 2 * 1024 * 1024 in
  let plan, _ =
    Collective.plan ~cfg:(cfg_for machine Mgacc.Rt_config.Ring) ~fabric
      (star_group ~bytes machine)
  in
  let finishes = Array.make (Array.length plan) nan in
  let i = ref 0 in
  let seen = Hashtbl.create 16 in
  ignore
    (Collective.execute ~plan
       ~base_ready:(fun _ -> 0.0)
       ~run:(fun reqs ->
         List.map (fun c -> (c, None)) (Fabric.run_batch fabric (List.map fst reqs)))
       ~on_complete:(fun it c _ ->
         (* items complete in plan order within each level *)
         let idx = !i in
         incr i;
         ignore idx;
         Hashtbl.replace seen it c.Fabric.finish)
       ());
  ignore finishes;
  check Alcotest.int "every item completed" (Array.length plan) (Hashtbl.length seen);
  Array.iter
    (fun (it : Collective.item) ->
      let fin = Hashtbl.find seen it in
      let gate d = if d >= 0 then Hashtbl.find seen plan.(d) else 0.0 in
      check Alcotest.bool "finish after dep" true
        (fin +. 1e-12 >= gate it.Collective.dep && fin +. 1e-12 >= gate it.Collective.dep2))
    plan

(* ---------------- property: conservation under random groups ---------------- *)

let prop_plan_conserves_bytes (mode_i, payload, dst_count) =
  let machine = cluster4 () in
  let fabric = machine.Mgacc.Machine.fabric in
  let mode =
    match mode_i mod 3 with
    | 0 -> Mgacc.Rt_config.Direct
    | 1 -> Mgacc.Rt_config.Ring
    | _ -> Mgacc.Rt_config.Auto
  in
  let dsts = 1 + (dst_count mod 3) in
  let ops = List.init dsts (fun i -> mk_op ~group:1 ~bytes:payload 0 (i + 1)) in
  let plan, _ = Collective.plan ~cfg:(cfg_for machine mode) ~fabric ops in
  total_bytes plan = dsts * payload
  && List.for_all (fun d -> delivered_bytes plan d = payload) (List.init dsts (fun i -> i + 1))
  && deps_well_formed plan

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let suite =
  [
    tc "direct mode is bit-identical to the default" test_direct_is_the_default;
    tc "ring/auto results match sequential (cluster)" test_planned_results_match_sequential;
    tc "ring/auto results match sequential (single node)" test_planned_results_single_node;
    tc "ring conserves bytes per destination" test_ring_conserves_bytes;
    tc "ring crosses the wire once per node boundary" test_ring_minimizes_wire_crossings;
    tc "auto keeps latency-bound groups direct" test_auto_keeps_small_payloads_direct;
    tc "auto beats direct on the cluster" test_auto_beats_direct_on_cluster;
    tc "direct-kept trees carry explicit deps" test_tree_group_keeps_explicit_deps;
    tc "ring allreduce: reduce-scatter + all-gather" test_allreduce_ring_schedule;
    tc "auto allreduce beats the star pair on the cluster" test_allreduce_auto_beats_star_on_cluster;
    tc "malformed allreduce groups stay direct" test_allreduce_malformed_stays_direct;
    tc "non-group ops pass through untouched" test_non_group_ops_pass_through;
    tc "execute respects plan dependencies" test_execute_respects_deps;
    qtest "plans conserve payload bytes"
      QCheck2.Gen.(triple (int_bound 5) (int_range 1 4_000_000) (int_bound 5))
      prop_plan_conserves_bytes;
  ]
