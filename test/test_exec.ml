(* Tests for the execution layer: views, frames, the host interpreter, and
   the closure-compiling kernel executor with its cost accounting. *)

open Mgacc_minic
module View = Mgacc_exec.View
module Frame = Mgacc_exec.Frame
module Host_interp = Mgacc_exec.Host_interp
module Kernel_compile = Mgacc_exec.Kernel_compile
module Loop_info = Mgacc_analysis.Loop_info
module Coalesce = Mgacc_analysis.Coalesce
module Cost = Mgacc_gpusim.Cost

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

(* ---------------- Views ---------------- *)

let test_view_float () =
  let data = [| 1.0; 2.0; 3.0 |] in
  let v = View.of_float_array ~name:"x" data in
  check (Alcotest.float 1e-12) "get" 2.0 (v.View.get_f 1);
  v.View.set_f 1 9.0;
  check (Alcotest.float 1e-12) "aliases backing" 9.0 data.(1);
  v.View.reduce_f Ast.Rplus 0 5.0;
  check (Alcotest.float 1e-12) "in-place reduce" 6.0 data.(0);
  (match v.View.get_f 3 with
  | exception View.Bounds { index = 3; _ } -> ()
  | _ -> Alcotest.fail "bounds check");
  match v.View.get_i 0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "type check"

let test_view_int_and_redops () =
  let v = View.of_int_array ~name:"k" [| 10; 20 |] in
  v.View.reduce_i Ast.Rmax 0 15;
  check Alcotest.int "max reduce" 15 (v.View.get_i 0);
  check Alcotest.int "redop id" 0 (View.redop_identity_i Ast.Rplus);
  check (Alcotest.float 1e-12) "mul id" 1.0 (View.redop_identity_f Ast.Rmul);
  check (Alcotest.float 1e-12) "min apply" 2.0 (View.apply_redop_f Ast.Rmin 2.0 7.0)

(* ---------------- Host interpreter semantics ---------------- *)

let run src = Host_interp.run_program (Parser.parse ~file:"t" src)

let test_interp_arith_and_control () =
  let env =
    run
      {|void main() {
          int fib1 = 1; int fib2 = 1; int i; int res[10];
          res[0] = 1; res[1] = 1;
          for (i = 2; i < 10; i++) { res[i] = res[i-1] + res[i-2]; }
          double x = 2.0;
          double y = x * 3 + 1;
          int parity = 0;
          while (1) { parity = parity + 1; if (parity >= 5) break; }
          res[0] = parity;
        }|}
  in
  let res = View.snapshot_i (Host_interp.find_array env "res") in
  check Alcotest.int "fib" 55 res.(9);
  check Alcotest.int "while+break" 5 res.(0)

let test_interp_functions () =
  let env =
    run
      {|int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
        void scale(double xs[], int n, double s) { int i; for (i = 0; i < n; i++) { xs[i] *= s; } }
        void main() {
          int out[1];
          out[0] = fact(6);
          double xs[3];
          xs[0] = 1.0; xs[1] = 2.0; xs[2] = 3.0;
          scale(xs, 3, 10.0);
        }|}
  in
  check Alcotest.int "recursion" 720 (View.snapshot_i (Host_interp.find_array env "out")).(0);
  let xs = View.snapshot_f (Host_interp.find_array env "xs") in
  check (Alcotest.float 1e-12) "array by reference" 30.0 xs.(2)

let test_interp_builtins_and_casts () =
  let env =
    run
      {|void main() {
          double r[5];
          r[0] = sqrt(16.0);
          r[1] = fmax(2.0, 3.0);
          r[2] = (double)(7 / 2);
          r[3] = (int)(3.9);
          r[4] = pow(2.0, 10.0);
        }|}
  in
  let r = View.snapshot_f (Host_interp.find_array env "r") in
  check (Alcotest.float 1e-12) "sqrt" 4.0 r.(0);
  check (Alcotest.float 1e-12) "fmax" 3.0 r.(1);
  check (Alcotest.float 1e-12) "int div" 3.0 r.(2);
  check (Alcotest.float 1e-12) "cast truncates" 3.0 r.(3);
  check (Alcotest.float 1e-9) "pow" 1024.0 r.(4)

let test_interp_sequential_parallel_loop () =
  (* Under the default hooks a parallel loop just runs in order. *)
  let env =
    run
      {|void main() {
          int n = 100; double a[n]; int i; double s = 0.0;
          #pragma acc parallel loop reduction(+: s)
          for (i = 0; i < n; i++) { a[i] = 1.0 * i; s += 1.0 * i; }
        }|}
  in
  (match Host_interp.get_scalar env "s" with
  | Host_interp.Vfloat s -> check (Alcotest.float 1e-9) "reduction result" 4950.0 s
  | _ -> Alcotest.fail "s kind");
  let a = View.snapshot_f (Host_interp.find_array env "a") in
  check (Alcotest.float 1e-12) "array written" 99.0 a.(99)

let test_interp_runtime_errors () =
  let fails src =
    match run src with
    | exception (Loc.Error _ | View.Bounds _) -> ()
    | _ -> Alcotest.failf "expected runtime error"
  in
  fails "void main() { int x = 1 / 0; }";
  fails "void main() { double a[3]; a[5] = 1.0; }";
  fails "void main() { double a[0 - 2]; }";
  fails "void f() { } void g() { }" (* no main *)

(* ---------------- Kernel compilation ---------------- *)

let compile_loop ?(params = []) src =
  let p = Parser.parse ~file:"t" src in
  Typecheck.check_program p;
  let loop = List.hd (Loop_info.extract (Option.get (Ast.find_func p "main"))) in
  let classify_site = Coalesce.make loop in
  Kernel_compile.compile ~loop
    ~params:(if params = [] then failwith "params required" else params)
    ~classify:(fun _ idx -> classify_site idx)

let saxpy_src =
  {|void main() { int n = 4; double x[n]; double y[n]; double a; int i;
#pragma acc parallel loop
for (i = 0; i < n; i++) { y[i] = y[i] + a * x[i]; } }|}

let test_kernel_compile_runs () =
  let kc =
    compile_loop saxpy_src
      ~params:[ ("n", Ast.Tint); ("x", Ast.Tarray Ast.Edouble); ("y", Ast.Tarray Ast.Edouble); ("a", Ast.Tdouble) ]
  in
  let frame = kc.Kernel_compile.make_frame () in
  let x = [| 1.0; 2.0; 3.0; 4.0 |] and y = [| 10.0; 10.0; 10.0; 10.0 |] in
  List.iter
    (fun (name, slot, _) ->
      match name with
      | "n" -> Frame.set_int frame slot 4
      | "a" -> Frame.set_float frame slot 2.0
      | "x" -> Frame.set_view frame slot (View.of_float_array ~name:"x" x)
      | "y" -> Frame.set_view frame slot (View.of_float_array ~name:"y" y)
      | _ -> ())
    kc.Kernel_compile.params;
  for i = 0 to 3 do
    kc.Kernel_compile.run_iter frame i
  done;
  check (Alcotest.array (Alcotest.float 1e-12)) "saxpy" [| 12.0; 14.0; 16.0; 18.0 |] y;
  (* Cost accounting: per iteration 2 flops (add, mul), coalesced traffic
     2 reads + 1 write of 8 bytes. *)
  let c = kc.Kernel_compile.cost in
  check Alcotest.int "flops" 8 c.Cost.flops;
  check Alcotest.int "coalesced bytes" (4 * 3 * 8) c.Cost.coalesced_bytes;
  check Alcotest.int "no random" 0 c.Cost.random_accesses

let test_kernel_compile_gather_counts_random () =
  let src =
    {|void main() { int n = 4; double x[n]; double y[n]; int idx[n]; int i;
#pragma acc parallel loop
for (i = 0; i < n; i++) { y[i] = x[idx[i]]; } }|}
  in
  let kc =
    compile_loop src
      ~params:
        [ ("x", Ast.Tarray Ast.Edouble); ("y", Ast.Tarray Ast.Edouble); ("idx", Ast.Tarray Ast.Eint) ]
  in
  let frame = kc.Kernel_compile.make_frame () in
  List.iter
    (fun (name, slot, _) ->
      match name with
      | "x" -> Frame.set_view frame slot (View.of_float_array ~name:"x" [| 1.0; 2.0; 3.0; 4.0 |])
      | "y" -> Frame.set_view frame slot (View.of_float_array ~name:"y" (Array.make 4 0.0))
      | "idx" -> Frame.set_view frame slot (View.of_int_array ~name:"idx" [| 3; 2; 1; 0 |])
      | _ -> ())
    kc.Kernel_compile.params;
  for i = 0 to 3 do
    kc.Kernel_compile.run_iter frame i
  done;
  let c = kc.Kernel_compile.cost in
  check Alcotest.int "one gather per iteration" 4 c.Cost.random_accesses;
  check Alcotest.int "gather bytes" 32 c.Cost.random_bytes

let test_kernel_compile_rejects () =
  let reject params src =
    match compile_loop ~params src with
    | exception Loc.Error _ -> ()
    | _ -> Alcotest.fail "expected kernel compile error"
  in
  reject
    [ ("a", Ast.Tarray Ast.Edouble) ]
    {|void main() { int n = 4; double a[n]; int i;
#pragma acc parallel loop
for (i = 0; i < n; i++) { double t[3]; a[i] = 0.0; } }|};
  reject
    [ ("a", Ast.Tarray Ast.Edouble) ]
    {|void main() { int n = 4; double a[n]; int i;
#pragma acc parallel loop
for (i = 0; i < n; i++) { return; } }|}

let test_kernel_control_flow_and_ints () =
  (* while / break / continue / ternary / bit ops / int arrays, all inside
     a kernel body. *)
  let src =
    {|void main() { int n = 8; int out[n]; int v[n]; int i;
#pragma acc parallel loop
for (i = 0; i < n; i++) {
  int acc = 0;
  int j = 0;
  while (1) {
    j = j + 1;
    if (j == 2) { continue; }
    acc = acc + j;
    if (j >= 5) { break; }
  }
  int masked = (v[i] & 3) | (i << 2);
  out[i] = (i % 2 == 0) ? acc + masked : acc - masked;
} }|}
  in
  let kc =
    compile_loop src
      ~params:[ ("out", Ast.Tarray Ast.Eint); ("v", Ast.Tarray Ast.Eint) ]
  in
  let frame = kc.Kernel_compile.make_frame () in
  let out = Array.make 8 0 and v = Array.init 8 (fun i -> (i * 5) + 1) in
  List.iter
    (fun (name, slot, _) ->
      match name with
      | "out" -> Frame.set_view frame slot (View.of_int_array ~name:"out" out)
      | "v" -> Frame.set_view frame slot (View.of_int_array ~name:"v" v)
      | _ -> ())
    kc.Kernel_compile.params;
  for i = 0 to 7 do
    kc.Kernel_compile.run_iter frame i
  done;
  (* acc = 1+3+4+5 = 13 (j=2 skipped). masked = (v[i] land 3) lor (i lsl 2). *)
  Array.iteri
    (fun i got ->
      let masked = (v.(i) land 3) lor (i lsl 2) in
      let expected = if i mod 2 = 0 then 13 + masked else 13 - masked in
      check Alcotest.int (Printf.sprintf "out[%d]" i) expected got)
    out

let test_kernel_frame_reuse_between_iterations () =
  (* Locals live in reused slots: every iteration must reinitialize its own
     declarations (no cross-iteration leakage through the declaration). *)
  let src =
    {|void main() { int n = 4; double a[n]; int i;
#pragma acc parallel loop
for (i = 0; i < n; i++) { double t = 1.0; t = t + i; a[i] = t; } }|}
  in
  let kc = compile_loop src ~params:[ ("a", Ast.Tarray Ast.Edouble) ] in
  let frame = kc.Kernel_compile.make_frame () in
  let a = Array.make 4 0.0 in
  List.iter
    (fun (name, slot, _) ->
      if name = "a" then Frame.set_view frame slot (View.of_float_array ~name:"a" a))
    kc.Kernel_compile.params;
  for i = 0 to 3 do
    kc.Kernel_compile.run_iter frame i
  done;
  check (Alcotest.array (Alcotest.float 1e-12)) "per-iteration init" [| 1.0; 2.0; 3.0; 4.0 |] a

let test_extract_reduction_patterns () =
  let stmt src =
    let p = Parser.parse ~file:"t" (Printf.sprintf "void main() { double a[4]; double v; int k; %s }" src) in
    let f = Option.get (Ast.find_func p "main") in
    List.nth f.Ast.fbody 3
  in
  let ok op src =
    let idx, contrib = Kernel_compile.extract_reduction op (stmt src) in
    (Pretty.expr_to_string idx, Pretty.expr_to_string contrib)
  in
  check (Alcotest.pair Alcotest.string Alcotest.string) "+=" ("k", "v") (ok Ast.Rplus "a[k] += v;");
  check (Alcotest.pair Alcotest.string Alcotest.string) "a[k]=a[k]+v" ("k", "v")
    (ok Ast.Rplus "a[k] = a[k] + v;");
  check (Alcotest.pair Alcotest.string Alcotest.string) "commuted" ("k", "v")
    (ok Ast.Rplus "a[k] = v + a[k];");
  check (Alcotest.pair Alcotest.string Alcotest.string) "fmax" ("k", "v")
    (ok Ast.Rmax "a[k] = fmax(a[k], v);");
  (match ok Ast.Rplus "a[k] = a[k] * v;" with
  | exception Loc.Error _ -> ()
  | _ -> Alcotest.fail "op mismatch must fail");
  match ok Ast.Rplus "a[k] = a[k + 1] + v;" with
  | exception Loc.Error _ -> ()
  | _ -> Alcotest.fail "different subscript must fail"

let suite =
  [
    tc "view: float basics" test_view_float;
    tc "view: int and reduction operators" test_view_int_and_redops;
    tc "interp: arithmetic and control flow" test_interp_arith_and_control;
    tc "interp: functions and recursion" test_interp_functions;
    tc "interp: builtins and casts" test_interp_builtins_and_casts;
    tc "interp: sequential parallel loop + reduction" test_interp_sequential_parallel_loop;
    tc "interp: runtime errors" test_interp_runtime_errors;
    tc "kernel: compiles and computes saxpy" test_kernel_compile_runs;
    tc "kernel: gathers count as random" test_kernel_compile_gather_counts_random;
    tc "kernel: rejects invalid bodies" test_kernel_compile_rejects;
    tc "kernel: control flow, ints, bit ops" test_kernel_control_flow_and_ints;
    tc "kernel: per-iteration local initialization" test_kernel_frame_reuse_between_iterations;
    tc "kernel: reduction statement extraction" test_extract_reduction_patterns;
  ]
