(* Property-based tests (QCheck) on the core data structures and
   invariants: interval sets against a naive set-of-points model, bitsets
   against boolean arrays, task splits, dirty tracking, the fabric's
   physical bounds, and affine analysis against direct evaluation. *)

module Interval = Mgacc_util.Interval
module Bitset = Mgacc_util.Bitset
module Memory = Mgacc_gpusim.Memory
module Fabric = Mgacc_gpusim.Fabric
module Spec = Mgacc_gpusim.Spec
open Mgacc_runtime

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---------------- Interval sets vs a model ---------------- *)

let gen_intervals =
  QCheck2.Gen.(list_size (int_bound 8) (pair (int_bound 60) (int_bound 20)))

let points_of_list l =
  List.concat_map
    (fun (lo, len) -> List.init len (fun k -> lo + k))
    l
  |> List.sort_uniq compare

let set_of_list l = Interval.Set.of_list (List.map (fun (lo, len) -> Interval.make lo (lo + len)) l)

let model_points s =
  List.concat_map
    (fun (iv : Interval.t) -> List.init (Interval.length iv) (fun k -> iv.Interval.lo + k))
    (Interval.Set.to_list s)

let prop_set_semantics (l : (int * int) list) =
  let s = set_of_list l in
  model_points s = points_of_list l

let prop_set_normalized l =
  let s = set_of_list l in
  let rec disjoint_sorted = function
    | (a : Interval.t) :: (b : Interval.t) :: rest ->
        (* strictly separated (no overlap, no adjacency) and non-empty *)
        Interval.length a > 0 && a.Interval.hi < b.Interval.lo && disjoint_sorted (b :: rest)
    | [ a ] -> Interval.length a > 0
    | [] -> true
  in
  disjoint_sorted (Interval.Set.to_list s)

let prop_set_ops (l1, l2) =
  let s1 = set_of_list l1 and s2 = set_of_list l2 in
  let p1 = points_of_list l1 and p2 = points_of_list l2 in
  let eq s pts = model_points s = pts in
  eq (Interval.Set.union s1 s2) (List.sort_uniq compare (p1 @ p2))
  && eq (Interval.Set.inter s1 s2) (List.filter (fun x -> List.mem x p2) p1)
  && eq (Interval.Set.diff s1 s2) (List.filter (fun x -> not (List.mem x p2)) p1)

let prop_of_sorted_disjoint_agrees l =
  let s = set_of_list l in
  (* Re-feeding a normalized set through the O(n) constructor must be the
     identity, and garbage must be rejected. *)
  Interval.Set.equal s (Interval.Set.of_sorted_disjoint (Interval.Set.to_list s))

(* ---------------- Bitset vs boolean array ---------------- *)

let gen_bit_ops =
  QCheck2.Gen.(pair (int_range 1 120) (list_size (int_bound 40) (pair bool (int_bound 200))))

let prop_bitset (n, ops) =
  let b = Bitset.create n in
  let model = Array.make n false in
  List.iter
    (fun (set, raw) ->
      let i = raw mod n in
      if set then begin
        Bitset.set b i;
        model.(i) <- true
      end
      else begin
        Bitset.clear b i;
        model.(i) <- false
      end)
    ops;
  let count_ok = Bitset.count b = Array.fold_left (fun acc x -> if x then acc + 1 else acc) 0 model in
  let gets_ok = Array.for_all Fun.id (Array.init n (fun i -> Bitset.get b i = model.(i))) in
  let runs = Bitset.runs b in
  let runs_ok =
    Array.for_all Fun.id (Array.init n (fun i -> Interval.Set.mem runs i = model.(i)))
  in
  count_ok && gets_ok && runs_ok

(* ---------------- Task splits ---------------- *)

let gen_split = QCheck2.Gen.(triple (int_bound 50) (int_bound 1000) (int_range 1 8))

let prop_split_covers (lower, len, parts) =
  let upper = lower + len in
  let r = Task_map.split ~lower ~upper ~parts in
  let total = Array.fold_left (fun acc x -> acc + Task_map.length x) 0 r in
  let contiguous = ref (Array.length r = parts) in
  Array.iteri
    (fun i x ->
      if i = 0 then (if x.Task_map.start_ <> lower then contiguous := false)
      else if r.(i - 1).Task_map.stop_ <> x.Task_map.start_ then contiguous := false)
    r;
  let balanced =
    let sizes = Array.map Task_map.length r in
    Array.fold_left max 0 sizes - Array.fold_left min max_int sizes <= 1
  in
  total = len && !contiguous && balanced
  && (len = 0 || r.(parts - 1).Task_map.stop_ = upper)

(* ---------------- Dirty tracking ---------------- *)

let gen_dirty =
  QCheck2.Gen.(triple (int_range 1 500) (int_range 8 64) (list_size (int_bound 60) (int_bound 1000)))

let prop_dirty_runs_match_marks (length, chunk_bytes, marks) =
  let mem = Memory.create ~device_id:0 ~capacity:(16 * 1024 * 1024) in
  let d = Dirty.create mem ~elem_bytes:8 ~length ~chunk_bytes ~two_level:true in
  let model = Hashtbl.create 16 in
  List.iter
    (fun raw ->
      let i = raw mod length in
      Dirty.mark d i;
      Hashtbl.replace model i ())
    marks;
  let runs = Dirty.dirty_runs d in
  let ok =
    List.for_all Fun.id
      (List.init length (fun i -> Interval.Set.mem runs i = Hashtbl.mem model i))
  in
  let count_ok = Dirty.dirty_element_count d = Hashtbl.length model in
  (* Two-level transfer plan ships at least the dirty payload and at most
     the whole array plus bitmap. *)
  let bytes = Dirty.transfer_bytes d in
  let bound_ok =
    if Hashtbl.length model = 0 then bytes = 0
    else bytes >= 8 * Hashtbl.length model && bytes <= (8 * length) + (length + 7) / 8 + (8 * 64)
  in
  Dirty.free mem d;
  ok && count_ok && bound_ok

(* ---------------- Fabric physics ---------------- *)

let gen_transfers =
  QCheck2.Gen.(
    list_size (int_range 1 10)
      (triple (int_range 0 2) (int_range 1 50_000_000) (int_bound 3)))

let prop_fabric_bounds txs =
  let f = Fabric.create Spec.pcie_gen2_desktop ~num_gpus:2 in
  let reqs =
    List.map
      (fun (kind, bytes, r) ->
        let direction =
          match kind with
          | 0 -> Fabric.H2d (r mod 2)
          | 1 -> Fabric.D2h (r mod 2)
          | _ -> Fabric.P2p (r mod 2, 1 - (r mod 2))
        in
        { Fabric.direction; bytes; ready = float_of_int r *. 1e-4; tag = "q" })
      txs
  in
  let completions = Fabric.run_batch f reqs in
  List.length completions = List.length reqs
  && List.for_all
       (fun (c : Fabric.completion) ->
         let req = c.Fabric.req in
         let lower =
           req.Fabric.ready
           +. (float_of_int req.Fabric.bytes /. Fabric.standalone_bandwidth f req.Fabric.direction)
         in
         c.Fabric.start >= req.Fabric.ready -. 1e-12 && c.Fabric.finish +. 1e-9 >= lower)
       completions

let reqs_of_txs txs =
  List.map
    (fun (kind, bytes, r) ->
      let direction =
        match kind with
        | 0 -> Fabric.H2d (r mod 2)
        | 1 -> Fabric.D2h (r mod 2)
        | _ -> Fabric.P2p (r mod 2, 1 - (r mod 2))
      in
      { Fabric.direction; bytes; ready = float_of_int r *. 1e-4; tag = "q" })
    txs

let makespan completions =
  List.fold_left (fun acc (c : Fabric.completion) -> Float.max acc c.Fabric.finish) 0.0 completions

(* A batch of one flow has nothing to share with: it must finish exactly
   at ready + transfer_time_alone (the completion-threshold fix keeps
   this exact regardless of the flow's size). *)
let prop_fabric_lone_flow (kind, bytes, r) =
  let f = Fabric.create Spec.pcie_gen2_desktop ~num_gpus:2 in
  match Fabric.run_batch f (reqs_of_txs [ (kind, bytes, r) ]) with
  | [ c ] ->
      let req = c.Fabric.req in
      let expected =
        req.Fabric.ready +. Fabric.transfer_time_alone f req.Fabric.direction ~bytes
      in
      Float.abs (c.Fabric.finish -. expected) <= 1e-9 *. Float.max 1.0 expected
  | _ -> false

(* Growing any one request can never shrink the batch makespan: a bigger
   flow occupies its links at least as long and max-min sharing gives the
   others no more rate than before. *)
let prop_fabric_makespan_monotone (txs, idx, extra) =
  let f = Fabric.create Spec.pcie_gen2_desktop ~num_gpus:2 in
  let reqs = reqs_of_txs txs in
  let m1 = makespan (Fabric.run_batch f reqs) in
  let n = List.length reqs in
  let grown =
    List.mapi
      (fun i (r : Fabric.request) ->
        if i = idx mod n then { r with Fabric.bytes = r.Fabric.bytes + extra } else r)
      reqs
  in
  let m2 = makespan (Fabric.run_batch f grown) in
  m2 +. 1e-9 *. Float.max 1.0 m1 >= m1

(* Incremental vs reference allocator: the fast path in Fabric.run_batch
   must reproduce the from-scratch water-filling bit for bit — not just
   within tolerance, because BENCH artifacts pin exact completion times.
   Random batches over a 2x2 cluster mix H2d/D2h, same-node and
   cross-node P2p, zero-byte requests, and coincident arrivals (ready
   times drawn from a coarse grid so ties are common). *)
let gen_cluster_batch =
  QCheck2.Gen.(
    list_size (int_range 1 24)
      (quad (int_range 0 3) (int_bound 50_000_000) (int_bound 3) (int_bound 5)))

let cluster_reqs txs =
  List.map
    (fun (kind, bytes, r, slot) ->
      let direction =
        match kind with
        | 0 -> Fabric.H2d (r mod 4)
        | 1 -> Fabric.D2h (r mod 4)
        | 2 ->
            (* same-node peer: 0<->1 or 2<->3 *)
            let base = 2 * (r mod 2) in
            Fabric.P2p (base, base + 1)
        | _ ->
            (* cross-node peer: node 0 {0,1} <-> node 1 {2,3} *)
            Fabric.P2p (r mod 2, 2 + (r mod 2))
      in
      { Fabric.direction; bytes; ready = float_of_int slot *. 1e-4; tag = "eq" })
    txs

let prop_fabric_incremental_matches_reference txs =
  let topology =
    { Fabric.gpus_per_node = 2; internode_bandwidth = 3.2e9; internode_latency = 25e-6 }
  in
  let f = Fabric.create ~topology Spec.pcie_gen2_desktop ~num_gpus:4 in
  let reqs = cluster_reqs txs in
  let fast = Fabric.run_batch f reqs in
  Fabric.set_reference_allocator f true;
  let slow = Fabric.run_batch f reqs in
  List.length fast = List.length slow
  && List.for_all2
       (fun (a : Fabric.completion) (b : Fabric.completion) ->
         (* Bit identity, not tolerance: Float.equal distinguishes nothing
            a compare-based check would miss, and any divergence here
            would eventually show up as a BENCH artifact diff. *)
         Float.equal a.Fabric.start b.Fabric.start && Float.equal a.Fabric.finish b.Fabric.finish)
       fast slow

(* ---------------- 2-D tile decomposition ---------------- *)

(* Random array extents, GPU-grid shapes and halo widths: the tiled parts
   built by [Darray.ensure_distributed] must partition the index space —
   every element owned by exactly one GPU, [owner_of] agreeing with
   [part_owns], every resident (owned or halo) element's packed-box
   offset inside its buffer, and every tile's resident window clamped to
   the array bounds. Degenerate shapes (more row blocks than rows, more
   column blocks than columns) produce empty tiles, which must not
   break coverage. *)
let gen_tiling =
  QCheck2.Gen.(
    triple
      (pair (int_range 1 24) (int_range 2 24)) (* rows, cols *)
      (pair (int_range 1 4) (int_range 1 4)) (* nodes, gpus per node *)
      (quad (int_bound 2) (int_bound 2) (int_bound 2) (int_bound 2)) (* halos *))

let prop_tiles_partition ((rows, cols), (nodes, gpn), (rl, rr, cl, cr)) =
  let num_gpus = nodes * gpn in
  let length = rows * cols in
  let machine = Mgacc_gpusim.Machine.cluster ~nodes ~gpus_per_node:gpn () in
  let cfg = Rt_config.make ~num_gpus machine in
  let da =
    Darray.create cfg ~name:"t"
      ~host:(Mgacc_exec.View.of_float_array ~name:"t" (Array.init length float_of_int))
  in
  let pr, pc = Mgacc_analysis.Tile2d.grid_of ~num_gpus in
  let spec =
    {
      Darray.stride = cols;
      left = 0;
      right = 0;
      tile = Some { Darray.pr; pc; row_left = rl; row_right = rr; col_left = cl; col_right = cr };
    }
  in
  let row_split = Task_map.split ~lower:0 ~upper:rows ~parts:pr in
  let ranges = Array.init num_gpus (fun g -> row_split.(g / pc)) in
  let _ = Darray.ensure_distributed cfg da ~spec ~ranges in
  match da.Darray.state with
  | Darray.Distributed d ->
      let parts = d.Darray.parts in
      let in_bounds =
        Array.for_all
          (fun (p : Darray.part) ->
            match p.Darray.tile with
            | None -> false
            | Some tl ->
                tl.Darray.trow_win.Interval.lo >= 0
                && tl.Darray.trow_win.Interval.hi <= rows
                && tl.Darray.tcol_win.Interval.lo >= 0
                && tl.Darray.tcol_win.Interval.hi <= cols)
          parts
      in
      let covered = ref in_bounds in
      for idx = 0 to length - 1 do
        let owners = ref 0 in
        Array.iter (fun p -> if Darray.part_owns d.Darray.spec p idx then incr owners) parts;
        if !owners <> 1 then covered := false;
        if not (Darray.part_owns d.Darray.spec parts.(Darray.owner_of d idx) idx) then
          covered := false;
        Array.iter
          (fun (p : Darray.part) ->
            if Darray.part_contains d.Darray.spec p idx then begin
              let size =
                match p.Darray.tile with
                | Some tl ->
                    Interval.length tl.Darray.trow_win * Interval.length tl.Darray.tcol_win
                | None -> Interval.length p.Darray.window
              in
              let off = Darray.offset_in_part d.Darray.spec p idx in
              if off < 0 || off >= size then covered := false
            end)
          parts
      done;
      !covered
  | _ -> false

(* Random 5-point stencils through the whole compiler + runtime on a 2x2
   GPU grid: the 2-D decomposition under lazy coherence must produce
   bit-identical results to the same 2-D run under eager coherence —
   deferring halo/validity reconciliation can reorder transfers but never
   change values. *)
let gen_stencil =
  QCheck2.Gen.(
    triple
      (pair (int_range 6 20) (int_range 6 18)) (* rows, cols *)
      (pair (int_range 1 2) (int_range 1 3)) (* halo width, sweeps *)
      (triple (int_range 1 9) (int_range 1 9) (int_range 3 13)) (* init pattern *))

let stencil_src ((rows, cols), (h, iters), (ia, ib, im)) =
  Printf.sprintf
    {|void main() {
        int rows = %d; int cols = %d; int it; int r; int c;
        double u[rows][cols];
        double v[rows][cols];
        for (r = 0; r < rows; r++) { for (c = 0; c < cols; c++) { u[r][c] = 1.0 * ((r * %d + c * %d) %% %d); v[r][c] = u[r][c]; } }
        #pragma acc data copy(u[0:rows*cols]) copy(v[0:rows*cols])
        {
          for (it = 0; it < %d; it++) {
            #pragma acc parallel loop localaccess(u: stride(cols, %d * cols, %d * cols), v: stride(cols))
            for (r = 0; r < rows; r++) {
              if (r > %d - 1 && r < rows - %d) {
                #pragma acc loop
                for (c = %d; c < cols - %d; c++) {
                  v[r][c] = 0.2 * (u[r][c] + u[r-%d][c] + u[r+%d][c] + u[r][c-%d] + u[r][c+%d]);
                }
              }
            }
            #pragma acc parallel loop localaccess(v: stride(cols, %d * cols, %d * cols), u: stride(cols))
            for (r = 0; r < rows; r++) {
              if (r > %d - 1 && r < rows - %d) {
                #pragma acc loop
                for (c = %d; c < cols - %d; c++) {
                  u[r][c] = 0.2 * (v[r][c] + v[r-%d][c] + v[r+%d][c] + v[r][c-%d] + v[r][c+%d]);
                }
              }
            }
          }
        }
      }|}
    rows cols ia ib im iters h h h h h h h h h h h h h h h h h h h h

let decomp2d_options =
  {
    Mgacc_translator.Kernel_plan.enable_distribution = true;
    enable_layout_transform = true;
    enable_miss_check_elim = true;
    enable_fusion = false;
    enable_decomp2d = true;
  }

let run_stencil_2d ~coherence src =
  let m = Mgacc_gpusim.Machine.cluster ~nodes:2 ~gpus_per_node:2 () in
  let config = Rt_config.make ~num_gpus:4 ~translator:decomp2d_options ~coherence m in
  let env, _ = Mgacc.run_acc ~config ~machine:m (Mgacc.parse_string ~name:"prop.c" src) in
  (Mgacc.float_results env "u", Mgacc.float_results env "v")

let prop_stencil_2d_lazy_eq_eager params =
  let src = stencil_src params in
  let ue, ve = run_stencil_2d ~coherence:Rt_config.Eager src in
  let ul, vl = run_stencil_2d ~coherence:Rt_config.Lazy src in
  ue = ul && ve = vl

(* ---------------- Affine analysis vs direct evaluation ---------------- *)

(* Random affine-expressible expressions over i and uniforms u, v. *)
let gen_affine_expr : Mgacc_minic.Ast.expr QCheck2.Gen.t =
  let open QCheck2.Gen in
  let loc = Mgacc_minic.Loc.dummy in
  let mk d = { Mgacc_minic.Ast.edesc = d; eloc = loc } in
  let leaf =
    oneof
      [
        map (fun n -> mk (Mgacc_minic.Ast.Int_lit n)) (int_bound 20);
        return (mk (Mgacc_minic.Ast.Var "i"));
        return (mk (Mgacc_minic.Ast.Var "u"));
        return (mk (Mgacc_minic.Ast.Var "v"));
      ]
  in
  let rec node depth =
    if depth = 0 then leaf
    else
      oneof
        [
          leaf;
          map2
            (fun a b -> mk (Mgacc_minic.Ast.Binop (Mgacc_minic.Ast.Add, a, b)))
            (node (depth - 1)) (node (depth - 1));
          map2
            (fun a b -> mk (Mgacc_minic.Ast.Binop (Mgacc_minic.Ast.Sub, a, b)))
            (node (depth - 1)) (node (depth - 1));
          map2
            (fun n b -> mk (Mgacc_minic.Ast.Binop (Mgacc_minic.Ast.Mul, mk (Mgacc_minic.Ast.Int_lit n), b)))
            (int_bound 5) (node (depth - 1));
          map (fun a -> mk (Mgacc_minic.Ast.Unop (Mgacc_minic.Ast.Neg, a))) (node (depth - 1));
        ]
  in
  node 3

let eval_expr env e =
  let rec go (e : Mgacc_minic.Ast.expr) =
    match e.Mgacc_minic.Ast.edesc with
    | Mgacc_minic.Ast.Int_lit n -> n
    | Mgacc_minic.Ast.Var v -> List.assoc v env
    | Mgacc_minic.Ast.Unop (Mgacc_minic.Ast.Neg, x) -> -go x
    | Mgacc_minic.Ast.Binop (Mgacc_minic.Ast.Add, a, b) -> go a + go b
    | Mgacc_minic.Ast.Binop (Mgacc_minic.Ast.Sub, a, b) -> go a - go b
    | Mgacc_minic.Ast.Binop (Mgacc_minic.Ast.Mul, a, b) -> go a * go b
    | _ -> assert false
  in
  go e

let prop_affine_matches_eval e =
  let is_uniform v = v = "u" || v = "v" in
  match Mgacc_analysis.Affine.of_expr ~loop_var:"i" ~is_uniform e with
  | None -> true (* nothing to check: generator can build i*i-free exprs only, but Mul(int, e) keeps it affine *)
  | Some a ->
      List.for_all
        (fun (i, u, v) ->
          let env = [ ("i", i); ("u", u); ("v", v) ] in
          let direct = eval_expr env e in
          let offset =
            eval_expr env (Mgacc_analysis.Affine.offset_expr ~loc:Mgacc_minic.Loc.dummy a)
          in
          direct = (a.Mgacc_analysis.Affine.coeff * i) + offset)
        [ (0, 1, 2); (3, 5, 7); (11, 0, 4); (-2, 3, -8) ]

(* ---------------- Frontend robustness ---------------- *)

(* Random token soup: the parser and typechecker must reject garbage with a
   located error — never an assert failure, Match_failure or stack
   overflow. *)
let gen_token_soup =
  let tokens =
    [| "int"; "double"; "void"; "for"; "if"; "else"; "while"; "return"; "break"; "("; ")"; "{";
       "}"; "["; "]"; ";"; ","; "+"; "-"; "*"; "/"; "%"; "="; "=="; "<"; "<="; "&&"; "||"; "?";
       ":"; "x"; "y"; "main"; "n"; "1"; "2"; "3.5"; "0"; "#pragma acc parallel loop";
       "#pragma acc data copy(x[0:n])"; "#pragma acc localaccess(x: stride(1))";
       "#pragma acc reductiontoarray(+: x)"; "sqrt"; "__length" |]
  in
  QCheck2.Gen.(
    map
      (fun picks -> String.concat " " (List.map (fun i -> tokens.(i mod Array.length tokens)) picks))
      (list_size (int_range 0 40) (int_bound 1000)))

let prop_frontend_total soup =
  (match Mgacc.parse_string ~name:"fuzz" soup with
  | program -> (
      match Mgacc.Typecheck.check_program program with
      | () -> ()
      | exception Mgacc.Loc.Error _ -> ())
  | exception Mgacc.Loc.Error _ -> ());
  true

let gen_pragma_soup =
  let words =
    [| "acc"; "parallel"; "loop"; "data"; "update"; "host"; "device"; "copy"; "copyin"; "copyout";
       "create"; "present"; "reduction"; "localaccess"; "reductiontoarray"; "stride"; "gang";
       "vector"; "if"; "enter"; "exit"; "("; ")"; "["; "]"; ":"; ","; "+"; "x"; "1"; "n" |]
  in
  QCheck2.Gen.(
    map
      (fun picks -> String.concat " " (List.map (fun i -> words.(i mod Array.length words)) picks))
      (list_size (int_range 0 15) (int_bound 1000)))

let prop_pragma_total payload =
  (match Mgacc.Parser.parse_directive ~file:"fuzz" ~line:1 payload with
  | _ -> ()
  | exception Mgacc.Loc.Error _ -> ());
  true

let suite =
  [
    qtest "interval set = set of points" gen_intervals prop_set_semantics;
    qtest "interval set stays normalized" gen_intervals prop_set_normalized;
    qtest "of_sorted_disjoint is identity on normalized sets" gen_intervals
      prop_of_sorted_disjoint_agrees;
    qtest "interval set ops match model" (QCheck2.Gen.pair gen_intervals gen_intervals) prop_set_ops;
    qtest "bitset matches boolean array" gen_bit_ops prop_bitset;
    qtest "task split covers and balances" gen_split prop_split_covers;
    qtest "dirty runs equal marked set" gen_dirty prop_dirty_runs_match_marks;
    qtest "fabric respects physics" gen_transfers prop_fabric_bounds;
    qtest "fabric lone flow finishes exactly alone"
      QCheck2.Gen.(triple (int_range 0 2) (int_range 1 50_000_000) (int_bound 3))
      prop_fabric_lone_flow;
    qtest "fabric makespan monotone in bytes"
      QCheck2.Gen.(triple gen_transfers (int_bound 9) (int_range 1 10_000_000))
      prop_fabric_makespan_monotone;
    qtest ~count:300 "fabric incremental allocator matches reference bit-for-bit"
      gen_cluster_batch prop_fabric_incremental_matches_reference;
    qtest ~count:120 "2-D tiles partition the index space" gen_tiling prop_tiles_partition;
    qtest ~count:15 "2-D stencil: lazy coherence matches eager bit-for-bit" gen_stencil
      prop_stencil_2d_lazy_eq_eager;
    qtest ~count:500 "affine form evaluates correctly" gen_affine_expr prop_affine_matches_eval;
    qtest ~count:400 "frontend is total on token soup" gen_token_soup prop_frontend_total;
    qtest ~count:400 "pragma parser is total on clause soup" gen_pragma_soup prop_pragma_total;
  ]
