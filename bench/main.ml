(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Komoda et al., ICPP 2013), plus the ablations DESIGN.md
   calls out.

     dune exec bench/main.exe                 -- everything, default scale
     dune exec bench/main.exe -- fig7         -- one experiment
     dune exec bench/main.exe -- --scale small all
     dune exec bench/main.exe -- --bechamel   -- Bechamel wall-clock probes

   Absolute numbers come from the simulated machines (Table I presets);
   the paper's shapes — who wins, by what factor, where communication
   dominates — are the reproduction target. EXPERIMENTS.md records a
   paper-vs-measured comparison for each experiment. *)

open Mgacc
open Mgacc_apps
module Table = Mgacc_util.Table

type scale = Small | Default | Paper

let scale_name = function Small -> "small" | Default -> "default" | Paper -> "paper"

let md_params = function
  | Small -> { Md.atoms = 1024; max_neighbors = 16; seed = 42 }
  | Default -> Md.default_params
  | Paper -> Md.paper_params

let kmeans_params = function
  | Small -> { Kmeans.points = 4000; features = 12; clusters = 5; iterations = 6; seed = 11 }
  | Default -> Kmeans.default_params
  | Paper -> Kmeans.paper_params

let bfs_params = function
  | Small -> { Bfs.nodes = 12000; max_degree = 10; seed = 5 }
  | Default -> Bfs.default_params
  | Paper -> Bfs.paper_params

type app_kind = MD | KMEANS | BFS

let app_name = function MD -> "md" | KMEANS -> "kmeans" | BFS -> "bfs"
let all_apps = [ MD; KMEANS; BFS ]

let app_of kind scale =
  match kind with
  | MD -> Md.app (md_params scale)
  | KMEANS -> Kmeans.app (kmeans_params scale)
  | BFS -> Bfs.app (bfs_params scale)

let run_cuda kind scale machine =
  match kind with
  | MD -> snd (Md.run_cuda ~machine (md_params scale))
  | KMEANS ->
      let _, _, r = Kmeans.run_cuda ~machine (kmeans_params scale) in
      r
  | BFS -> snd (Bfs.run_cuda ~machine (bfs_params scale))

(* ------------------------------------------------------------------ *)
(* Run collection: one set of reports reused by Figs. 7/8/9.           *)
(* ------------------------------------------------------------------ *)

type platform = { pname : string; fresh : unit -> Machine.t; gpu_counts : int list }

let desktop = { pname = "Desktop Machine"; fresh = (fun () -> Machine.desktop ()); gpu_counts = [ 1; 2 ] }

let supernode =
  { pname = "Supercomputer Node"; fresh = (fun () -> Machine.supernode ()); gpu_counts = [ 1; 2; 3 ] }

let platforms = [ desktop; supernode ]

type collected = {
  platform : string;
  kind : app_kind;
  openmp : Report.t;
  pgi : Report.t;
  cuda : Report.t;
  proposals : (int * Report.t) list;  (** by GPU count *)
}

let progress fmt = Printf.eprintf (fmt ^^ "\n%!")

let collect_app scale platform kind =
  let app = app_of kind scale in
  progress "  [%s] %s: openmp..." platform.pname (app_name kind);
  let _, openmp = App_common.openmp ~machine:(platform.fresh ()) app in
  progress "  [%s] %s: pgi(1)..." platform.pname (app_name kind);
  let _, pgi = App_common.pgi ~machine:(platform.fresh ()) app in
  progress "  [%s] %s: cuda(1)..." platform.pname (app_name kind);
  let cuda = run_cuda kind scale (platform.fresh ()) in
  let proposals =
    List.map
      (fun n ->
        progress "  [%s] %s: proposal(%d)..." platform.pname (app_name kind) n;
        let _, r = App_common.proposal ~num_gpus:n ~machine:(platform.fresh ()) app in
        (n, r))
      platform.gpu_counts
  in
  { platform = platform.pname; kind; openmp; pgi; cuda; proposals }

let collect scale =
  List.concat_map (fun p -> List.map (collect_app scale p) all_apps) platforms

(* ------------------------------------------------------------------ *)
(* Table I                                                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  print_endline "== Table I: machine settings (simulated; Mixed Desktop added for the scheduler study) ==";
  let t = Table.create ~headers:[ ""; "Desktop Machine"; "Supercomputer Node"; "Mixed Desktop" ] in
  let d = Machine.desktop () and s = Machine.supernode () and m = Machine.desktop_mixed () in
  Table.add_row t
    [
      "CPU";
      Format.asprintf "%a" Spec.pp_cpu d.Machine.cpu;
      Format.asprintf "%a" Spec.pp_cpu s.Machine.cpu;
      Format.asprintf "%a" Spec.pp_cpu m.Machine.cpu;
    ];
  Table.add_row t
    [
      "GPUs";
      Format.asprintf "%a x2" Spec.pp_gpu (Machine.device d 0).Mgacc_gpusim.Device.spec;
      Format.asprintf "%a x3" Spec.pp_gpu (Machine.device s 0).Mgacc_gpusim.Device.spec;
      Format.asprintf "%a + %a" Spec.pp_gpu (Machine.device m 0).Mgacc_gpusim.Device.spec
        Spec.pp_gpu (Machine.device m 1).Mgacc_gpusim.Device.spec;
    ];
  Table.add_row t [ "OpenMP threads"; "12"; "24"; "12" ];
  Table.print ~aligns:[ Table.Left; Table.Left; Table.Left; Table.Left ] t;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Table II                                                            *)
(* ------------------------------------------------------------------ *)

let table2 scale =
  Printf.printf "== Table II: application characteristics (scale: %s) ==\n" (scale_name scale);
  print_endline
    "A: device memory in single-GPU run, B: # parallel loops, C: # kernel executions,";
  print_endline "D: # arrays with localaccess / # arrays used in parallel loops\n";
  let t = Table.create ~headers:[ "Application"; "A"; "B"; "C"; "D"; "A(paper)"; "B/C/D(paper)" ] in
  let paper_row = function
    | MD -> ("39.8MB", "1 / 1 / 2/3")
    | KMEANS -> ("69.2MB", "2 / 74 / 2/5")
    | BFS -> ("444.9MB", "1 / 10 / 2/3")
  in
  List.iter
    (fun kind ->
      let app = app_of kind scale in
      let program = Mgacc.parse_string ~name:(app.App_common.name ^ ".c") app.App_common.source in
      let plans = Mgacc.compile program in
      let loops_static = Program_plan.loop_count plans in
      let arrays =
        List.sort_uniq compare
          (List.concat_map
             (fun p -> List.map (fun c -> c.Array_config.array) p.Kernel_plan.configs)
             (Program_plan.all_plans plans))
      in
      let la_arrays =
        List.sort_uniq compare
          (List.concat_map
             (fun p ->
               List.filter_map
                 (fun c ->
                   if c.Array_config.localaccess <> None then Some c.Array_config.array else None)
                 p.Kernel_plan.configs)
             (Program_plan.all_plans plans))
      in
      let _, report = App_common.proposal ~num_gpus:1 ~machine:(Machine.desktop ()) app in
      let mem = report.Report.mem_user_bytes + report.Report.mem_system_bytes in
      let pa, pbcd = paper_row kind in
      Table.add_row t
        [
          app_name kind;
          Bytesize.to_string mem;
          string_of_int loops_static;
          string_of_int report.Report.loops;
          Printf.sprintf "%d/%d" (List.length la_arrays) (List.length arrays);
          pa;
          pbcd;
        ])
    all_apps;
  Table.print t;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Fig. 7: relative performance normalized to OpenMP                   *)
(* ------------------------------------------------------------------ *)

let fig7 collected =
  print_endline "== Fig. 7: performance relative to OpenMP (higher is better) ==";
  List.iter
    (fun platform ->
      Printf.printf "\n-- %s --\n" platform.pname;
      let headers =
        [ "app"; "OpenMP"; "PGI(1)"; "CUDA(1)" ]
        @ List.map (fun n -> Printf.sprintf "Proposal(%d)" n) platform.gpu_counts
      in
      let t = Table.create ~headers in
      List.iter
        (fun kind ->
          match
            List.find_opt (fun c -> c.platform = platform.pname && c.kind = kind) collected
          with
          | None -> ()
          | Some c ->
              let base = c.openmp.Report.total_time in
              let rel (r : Report.t) = Printf.sprintf "%.2f" (base /. r.Report.total_time) in
              Table.add_row t
                ([ app_name kind; "1.00"; rel c.pgi; rel c.cuda ]
                @ List.map (fun (_, r) -> rel r) c.proposals))
        all_apps;
      Table.print t)
    platforms;
  print_endline
    "\npaper shapes: MD/KMEANS beat OpenMP and scale with GPUs (up to 6.75x desktop, 2.95x\n\
     supernode); Proposal(multi-GPU) beats CUDA(1); BFS gains little and can lose on the\n\
     supernode where inter-GPU communication dominates.\n"

(* ------------------------------------------------------------------ *)
(* Fig. 8: execution-time breakdown                                    *)
(* ------------------------------------------------------------------ *)

let fig8 collected =
  print_endline "== Fig. 8: execution-time breakdown, normalized to 1-GPU total ==";
  List.iter
    (fun platform ->
      Printf.printf "\n-- %s --\n" platform.pname;
      let t =
        Table.create ~headers:[ "app"; "GPUs"; "KERNELS"; "CPU-GPU"; "GPU-GPU"; "total" ]
      in
      List.iter
        (fun kind ->
          match
            List.find_opt (fun c -> c.platform = platform.pname && c.kind = kind) collected
          with
          | None -> ()
          | Some c ->
              let base =
                match List.assoc_opt 1 c.proposals with
                | Some r -> r.Report.total_time
                | None -> 1.0
              in
              List.iter
                (fun (n, (r : Report.t)) ->
                  Table.add_row t
                    [
                      app_name kind;
                      string_of_int n;
                      Printf.sprintf "%.3f" (r.Report.kernel_time /. base);
                      Printf.sprintf "%.3f" (r.Report.cpu_gpu_time /. base);
                      Printf.sprintf "%.3f" ((r.Report.gpu_gpu_time +. r.Report.overhead_time) /. base);
                      Printf.sprintf "%.3f" (r.Report.total_time /. base);
                    ])
                c.proposals;
              Table.add_separator t)
        all_apps;
      Table.print t)
    platforms;
  print_endline
    "\npaper shapes: KERNELS shrinks with GPU count; CPU-GPU does not (host link saturates);\n\
     GPU-GPU is zero for MD, small for KMEANS, and dominant for BFS on multiple GPUs.\n"

(* ------------------------------------------------------------------ *)
(* Fig. 9: device memory usage                                         *)
(* ------------------------------------------------------------------ *)

let fig9 collected =
  print_endline "== Fig. 9: device memory usage, normalized to 1-GPU user total ==";
  List.iter
    (fun platform ->
      Printf.printf "\n-- %s --\n" platform.pname;
      let t = Table.create ~headers:[ "app"; "GPUs"; "User"; "System"; "total" ] in
      List.iter
        (fun kind ->
          match
            List.find_opt (fun c -> c.platform = platform.pname && c.kind = kind) collected
          with
          | None -> ()
          | Some c ->
              let base =
                match List.assoc_opt 1 c.proposals with
                | Some r -> float_of_int r.Report.mem_user_bytes
                | None -> 1.0
              in
              List.iter
                (fun (n, (r : Report.t)) ->
                  let u = float_of_int r.Report.mem_user_bytes /. base in
                  let s = float_of_int r.Report.mem_system_bytes /. base in
                  Table.add_row t
                    [
                      app_name kind;
                      string_of_int n;
                      Printf.sprintf "%.3f" u;
                      Printf.sprintf "%.3f" s;
                      Printf.sprintf "%.3f" (u +. s);
                    ])
                c.proposals;
              Table.add_separator t)
        all_apps;
      Table.print t)
    platforms;
  print_endline
    "\npaper shapes: User memory grows only mildly with GPU count (distribution policy);\n\
     System overhead is largest for BFS but stays under ~30%.\n"

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let chunk_sweep scale =
  Printf.printf "== Ablation A: dirty-bit chunk size (BFS, 2 GPUs, scale: %s) ==\n"
    (scale_name scale);
  print_endline "(the paper picks 1MB experimentally, §IV-D-1)\n";
  let app = app_of BFS scale in
  let t = Table.create ~headers:[ "chunk"; "GPU-GPU bytes"; "GPU-GPU time"; "total time" ] in
  List.iter
    (fun chunk ->
      let _, r = App_common.proposal ~chunk_bytes:chunk ~num_gpus:2 ~machine:(Machine.desktop ()) app in
      Table.add_row t
        [
          Bytesize.to_string chunk;
          Bytesize.to_string r.Report.gpu_gpu_bytes;
          Printf.sprintf "%.6fs" r.Report.gpu_gpu_time;
          Printf.sprintf "%.6fs" r.Report.total_time;
        ])
    [ 4 * 1024; 64 * 1024; 256 * 1024; 1024 * 1024; 4 * 1024 * 1024 ];
  Table.print t;
  print_newline ()

let dirty_levels scale =
  Printf.printf "== Ablation B: one- vs two-level dirty bits (BFS, 2 GPUs, scale: %s) ==\n"
    (scale_name scale);
  print_endline
    "(the chunk must be smaller than the array for the second level to matter;\n\
     at paper scale the 444MB levels array dwarfs the 1MB chunk)\n";
  let app = app_of BFS scale in
  let t = Table.create ~headers:[ "mechanism"; "GPU-GPU bytes"; "GPU-GPU time"; "total time" ] in
  List.iter
    (fun (label, two_level, chunk) ->
      let _, r =
        App_common.proposal ~two_level_dirty:two_level ~chunk_bytes:chunk ~num_gpus:2
          ~machine:(Machine.desktop ()) app
      in
      Table.add_row t
        [
          label;
          Bytesize.to_string r.Report.gpu_gpu_bytes;
          Printf.sprintf "%.6fs" r.Report.gpu_gpu_time;
          Printf.sprintf "%.6fs" r.Report.total_time;
        ])
    [
      ("single-level", false, 1024 * 1024);
      ("two-level (16KB chunks)", true, 16 * 1024);
      ("two-level (64KB chunks)", true, 64 * 1024);
    ];
  Table.print t;
  print_newline ()

let policy scale =
  Printf.printf
    "== Ablation C: replica vs distribution placement (localaccess honored or not, 2 GPUs, scale: %s) ==\n"
    (scale_name scale);
  let t =
    Table.create
      ~headers:[ "app"; "policy"; "User mem"; "System mem"; "CPU-GPU bytes"; "GPU-GPU bytes"; "total" ]
  in
  List.iter
    (fun kind ->
      let app = app_of kind scale in
      List.iter
        (fun (label, options) ->
          let _, r =
            App_common.proposal ~options ~num_gpus:2 ~machine:(Machine.desktop ()) app
          in
          Table.add_row t
            [
              app_name kind;
              label;
              Bytesize.to_string r.Report.mem_user_bytes;
              Bytesize.to_string r.Report.mem_system_bytes;
              Bytesize.to_string r.Report.cpu_gpu_bytes;
              Bytesize.to_string r.Report.gpu_gpu_bytes;
              Printf.sprintf "%.6fs" r.Report.total_time;
            ])
        [
          ("distribution", Kernel_plan.default_options);
          ( "replica-only",
            {
              Kernel_plan.enable_distribution = false;
              enable_layout_transform = true;
              enable_miss_check_elim = false;
              enable_fusion = false;
              enable_decomp2d = false;
            } );
        ];
      Table.add_separator t)
    all_apps;
  Table.print t;
  print_newline ()

let misscheck scale =
  Printf.printf
    "== Ablation D: write-miss check elimination (§IV-D-2) (MD, 2 GPUs, scale: %s) ==\n"
    (scale_name scale);
  let app = app_of MD scale in
  let t =
    Table.create ~headers:[ "miss checks"; "KERNELS time"; "total time"; "System mem" ]
  in
  List.iter
    (fun (label, elim) ->
      let options = { Kernel_plan.default_options with Kernel_plan.enable_miss_check_elim = elim } in
      let _, r = App_common.proposal ~options ~num_gpus:2 ~machine:(Machine.desktop ()) app in
      Table.add_row t
        [
          label;
          Printf.sprintf "%.6fs" r.Report.kernel_time;
          Printf.sprintf "%.6fs" r.Report.total_time;
          Bytesize.to_string r.Report.mem_system_bytes;
        ])
    [ ("eliminated (proven in-window)", true); ("checked on every write", false) ];
  Table.print t;
  print_endline
    "(MD is memory-bound, so the per-write ownership check hides under memory time;\n\
     elimination's benefit here is dropping the miss machinery entirely)\n"

let layout scale =
  Printf.printf "== Ablation E: coalescing layout transform (KMEANS, 1 GPU, scale: %s) ==\n"
    (scale_name scale);
  let app = app_of KMEANS scale in
  let t = Table.create ~headers:[ "layout transform"; "KERNELS time"; "total time" ] in
  List.iter
    (fun (label, lt) ->
      let options = { Kernel_plan.default_options with Kernel_plan.enable_layout_transform = lt } in
      let _, r = App_common.proposal ~options ~num_gpus:1 ~machine:(Machine.desktop ()) app in
      Table.add_row t
        [ label; Printf.sprintf "%.6fs" r.Report.kernel_time; Printf.sprintf "%.6fs" r.Report.total_time ])
    [ ("on (transposed reads coalesce)", true); ("off (strided reads)", false) ];
  Table.print t;
  print_newline ()

let extended scale =
  Printf.printf
    "== Extended applications: the communication spectrum (2 GPUs, desktop, scale: %s) ==\n"
    (scale_name scale);
  print_endline
    "(SPMV and Monte Carlo are drawn from the paper's motivating application\n\
     classes — linear algebra and monte carlo simulations — beyond its own trio)\n";
  let apps =
    [
      ("montecarlo", Montecarlo.app Montecarlo.default_params);
      ("md", app_of MD scale);
      ("kmeans", app_of KMEANS scale);
      ("spmv", Spmv.app Spmv.default_params);
      ("bfs", app_of BFS scale);
    ]
  in
  let t =
    Table.create
      ~headers:[ "app"; "vs OpenMP (1 GPU)"; "vs OpenMP (2 GPUs)"; "GPU-GPU bytes"; "CPU-GPU bytes" ]
  in
  List.iter
    (fun (name, app) ->
      let _, omp = App_common.openmp ~machine:(Machine.desktop ()) app in
      let _, p1 = App_common.proposal ~num_gpus:1 ~machine:(Machine.desktop ()) app in
      let _, p2 = App_common.proposal ~num_gpus:2 ~machine:(Machine.desktop ()) app in
      Table.add_row t
        [
          name;
          Printf.sprintf "%.2f" (Report.speedup_vs p1 ~baseline:omp);
          Printf.sprintf "%.2f" (Report.speedup_vs p2 ~baseline:omp);
          Bytesize.to_string p2.Report.gpu_gpu_bytes;
          Bytesize.to_string p2.Report.cpu_gpu_bytes;
        ])
    apps;
  Table.print t;
  print_endline
    "\nshape: reconciliation traffic orders the apps (monte carlo ~ md < kmeans < spmv < bfs),\n\
     and multi-GPU benefit decreases along the same axis.\n"

let expert scale =
  Printf.printf
    "== Runtime overhead vs hand-written multi-GPU CUDA (MD, desktop, scale: %s) ==\n"
    (scale_name scale);
  print_endline
    "(the expert manually replicates positions, splits neighbor/force blocks and\n\
     overlaps transfers — everything the proposed runtime automates; paper §II-B)\n";
  let p = md_params scale in
  let t = Table.create ~headers:[ "variant"; "total"; "KERNELS"; "CPU-GPU"; "overhead vs expert" ] in
  let rows = ref [] in
  List.iter
    (fun gpus ->
      let _, r_expert = Md.run_cuda_multi ~machine:(Machine.desktop ()) ~gpus p in
      let _, r_prop = App_common.proposal ~num_gpus:gpus ~machine:(Machine.desktop ()) (Md.app p) in
      rows := (gpus, r_expert, r_prop) :: !rows)
    [ 1; 2 ];
  List.iter
    (fun (gpus, (e : Report.t), (pr : Report.t)) ->
      Table.add_row t
        [
          Printf.sprintf "cuda-multi(%d)" gpus;
          Printf.sprintf "%.6fs" e.Report.total_time;
          Printf.sprintf "%.6fs" e.Report.kernel_time;
          Printf.sprintf "%.6fs" e.Report.cpu_gpu_time;
          "—";
        ];
      Table.add_row t
        [
          Printf.sprintf "proposal(%d)" gpus;
          Printf.sprintf "%.6fs" pr.Report.total_time;
          Printf.sprintf "%.6fs" pr.Report.kernel_time;
          Printf.sprintf "%.6fs" pr.Report.cpu_gpu_time;
          Printf.sprintf "%+.1f%%" (100.0 *. (pr.Report.total_time /. e.Report.total_time -. 1.0));
        ];
      Table.add_separator t)
    (List.rev !rows);
  Table.print t;
  print_newline ()

let balance ~smoke =
  Printf.printf "== Scheduler balance study (Mixed Desktop: C2075 + M2050%s) ==\n"
    (if smoke then "; smoke inputs" else "");
  print_endline
    "(equal split vs roofline-proportional seed vs adaptive feedback; every run is\n\
     checked against the sequential reference — see docs/SCHEDULING.md)\n";
  Balance_study.print (Balance_study.run ~smoke ());
  print_endline
    "\nshape: the C2075 earns the larger share, shrinking per-launch imbalance and total\n\
     kernel time for the uniform apps (md, kmeans); bfs is irregular, so adaptive starts\n\
     from the equal split and re-splits only when the predicted gain beats the movement cost.\n"

let contention () =
  print_endline "== PCIe contention: why CPU-GPU time does not divide by GPU count ==";
  print_endline
    "(a pure-load program on the supercomputer node: each GPU loads its block of a\n\
     distributed array concurrently, but the host root complex caps the sum of rates)\n";
  let src =
    {|void main() {
        int n = 6000000; double a[n]; int i;
        for (i = 0; i < n; i++) { a[i] = 1.0; }
        #pragma acc parallel loop localaccess(a: stride(1))
        for (i = 0; i < n; i++) { a[i] = a[i] + 1.0; }
      }|}
  in
  let program = Mgacc.parse_string ~name:"load.c" src in
  let t = Table.create ~headers:[ "GPUs"; "bytes loaded"; "CPU-GPU time"; "speedup vs 1 GPU" ] in
  let base = ref 0.0 in
  List.iter
    (fun gpus ->
      let machine = Machine.supernode () in
      let config = Rt_config.make ~num_gpus:gpus machine in
      let _, r = Mgacc.run_acc ~config ~machine program in
      if gpus = 1 then base := r.Report.cpu_gpu_time;
      Table.add_row t
        [
          string_of_int gpus;
          Bytesize.to_string r.Report.cpu_gpu_bytes;
          Printf.sprintf "%.6fs" r.Report.cpu_gpu_time;
          Printf.sprintf "%.2fx" (!base /. r.Report.cpu_gpu_time);
        ])
    [ 1; 2; 3 ];
  Table.print t;
  print_endline
    "\n(3 links x 5.6GB/s would be 16.8GB/s, but the 12GB/s host aggregate caps the\n\
     concurrent rate — the effect behind the paper's Fig. 8 CPU-GPU plateau)\n"

let cluster scale =
  Printf.printf
    "== Cluster scaling (paper §VI future work, implemented; scale: %s) ==\n" (scale_name scale);
  print_endline
    "(desktop-class nodes of 2x C2075 linked by a 3.2GB/s QDR-class network; inter-node\n\
     peer traffic stages through both hosts and the wire)\n";
  let shapes = [ (1, 2); (2, 1); (2, 2) ] in
  let t =
    Table.create
      ~headers:[ "app"; "nodes x gpus"; "total"; "vs 1x2"; "GPU-GPU time"; "GPU-GPU bytes" ]
  in
  List.iter
    (fun kind ->
      let app = app_of kind scale in
      let base = ref 0.0 in
      List.iter
        (fun (nodes, gpn) ->
          let machine = Machine.cluster ~nodes ~gpus_per_node:gpn () in
          let config = Rt_config.make machine in
          let _, r =
            Mgacc.run_acc ~config ~machine
              (Mgacc.parse_string ~name:(app_name kind) app.App_common.source)
          in
          if !base = 0.0 then base := r.Report.total_time;
          Table.add_row t
            [
              app_name kind;
              Printf.sprintf "%dx%d (%d GPUs)" nodes gpn (nodes * gpn);
              Printf.sprintf "%.6fs" r.Report.total_time;
              Printf.sprintf "%.2fx" (!base /. r.Report.total_time);
              Printf.sprintf "%.6fs" r.Report.gpu_gpu_time;
              Bytesize.to_string r.Report.gpu_gpu_bytes;
            ])
        shapes;
      Table.add_separator t)
    all_apps;
  Table.print t;
  print_endline
    "\nshape: MD keeps scaling across nodes (no reconciliation); BFS loses more to the\n\
     wire than it gains from the extra GPUs — the paper's caution about clusters.\n"

(* MD and BFS at the paper's exact input sizes (desktop machine). KMEANS at
   kddcup scale needs hours of interpreted execution and is excluded; see
   EXPERIMENTS.md. Takes ~15 minutes of wall clock. *)
let paper_validate () =
  print_endline "== Paper-scale validation (desktop; see EXPERIMENTS.md for recorded runs) ==";
  let report label (r : Report.t) base =
    Printf.printf
      "  %-14s total %.4fs (x%.2f vs openmp)  kern %.4fs  cpu-gpu %.4fs  gpu-gpu %.4fs  mem %s+%s\n%!"
      label r.Report.total_time (base /. r.Report.total_time) r.Report.kernel_time
      r.Report.cpu_gpu_time r.Report.gpu_gpu_time
      (Bytesize.to_string r.Report.mem_user_bytes)
      (Bytesize.to_string r.Report.mem_system_bytes)
  in
  List.iter
    (fun kind ->
      let app = app_of kind Paper in
      Printf.printf "-- %s (paper input; paper reports: md 6.75x max desktop, 39.8MB; bfs 444.9MB) --\n%!"
        (app_name kind);
      let _, omp = App_common.openmp ~machine:(Machine.desktop ()) app in
      report "openmp(12)" omp omp.Report.total_time;
      let cuda = run_cuda kind Paper (Machine.desktop ()) in
      report "cuda(1)" cuda omp.Report.total_time;
      List.iter
        (fun g ->
          let _, r = App_common.proposal ~num_gpus:g ~machine:(Machine.desktop ()) app in
          report (Printf.sprintf "proposal(%d)" g) r omp.Report.total_time)
        [ 1; 2 ])
    [ MD; BFS ]

(* ------------------------------------------------------------------ *)
(* Overlap engine: barrier vs dependency-driven launch pipeline        *)
(* ------------------------------------------------------------------ *)

(* Every run is checked against the sequential reference — overlap must
   change timings only, never results. The JSON lands in
   BENCH_overlap.json for CI trend tracking. *)
let overlap_bench scale ~smoke =
  Printf.printf "== Overlap engine: barrier vs dependency-driven (scale: %s%s) ==\n"
    (scale_name scale)
    (if smoke then "; smoke" else "");
  print_endline
    "(--overlap on gates every transfer/replay on its own producer's events instead of\n\
     phase barriers; see docs/OVERLAP.md. 'hidden' is activity off the critical path.)\n";
  let apps =
    [
      ("md", app_of MD scale);
      ("kmeans", app_of KMEANS scale);
      ("bfs", app_of BFS scale);
      ("spmv", Spmv.app Spmv.default_params);
      ("montecarlo", Montecarlo.app Montecarlo.default_params);
    ]
  in
  let machines =
    if smoke then [ ("desktop", (fun () -> Machine.desktop ()), 2) ]
    else
      [
        ("desktop", (fun () -> Machine.desktop ()), 2);
        ("desktop-mixed", (fun () -> Machine.desktop_mixed ()), 2);
        ("supernode", (fun () -> Machine.supernode ()), 3);
      ]
  in
  let t =
    Table.create
      ~headers:[ "app"; "machine"; "barrier"; "overlap"; "gain"; "hidden"; "prefetch"; "check" ]
  in
  let json_entries = ref [] in
  List.iter
    (fun (name, app) ->
      let seq = App_common.sequential app in
      List.iter
        (fun (mname, fresh, gpus) ->
          progress "  [overlap] %s on %s..." name mname;
          let _, off = App_common.proposal ~num_gpus:gpus ~machine:(fresh ()) app in
          let env, on = App_common.proposal ~overlap:true ~num_gpus:gpus ~machine:(fresh ()) app in
          let ok =
            match App_common.verify app ~against:seq env with
            | Ok () -> "ok"
            | Error _ -> "MISMATCH"
          in
          let gain = 100.0 *. (1.0 -. (on.Report.total_time /. off.Report.total_time)) in
          Table.add_row t
            [
              name;
              Printf.sprintf "%s(%d)" mname gpus;
              Printf.sprintf "%.6fs" off.Report.total_time;
              Printf.sprintf "%.6fs" on.Report.total_time;
              Printf.sprintf "%+.1f%%" gain;
              Printf.sprintf "%.6fs" on.Report.hidden_seconds;
              string_of_int on.Report.prefetch_hits;
              ok;
            ];
          json_entries :=
            Printf.sprintf
              "    {\"app\": %S, \"machine\": %S, \"gpus\": %d, \"barrier_seconds\": %.9g, \
               \"overlap_seconds\": %.9g, \"hidden_seconds\": %.9g, \"prefetch_hits\": %d, \
               \"results_match\": %b}"
              name mname gpus off.Report.total_time on.Report.total_time on.Report.hidden_seconds
              on.Report.prefetch_hits (ok = "ok")
            :: !json_entries)
        machines)
    apps;
  Table.print t;
  let oc = open_out "BENCH_overlap.json" in
  Printf.fprintf oc
    "{\n\
    \  \"scale\": %S,\n\
    \  \"flags\": {\"overlap\": \"off-vs-on\", \"coherence\": \"eager\", \"collective\": \"direct\"},\n\
    \  \"runs\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    (scale_name scale)
    (String.concat ",\n" (List.rev !json_entries));
  close_out oc;
  print_endline "\nwrote BENCH_overlap.json";
  print_endline
    "shape: bfs (dirty-chunk reconciliation + irregular per-launch imbalance) gains the\n\
     most — the slow GPU's exchange streams while the fast one proceeds. kmeans can lose\n\
     slightly: the barrier model optimistically charged reduction broadcasts concurrently\n\
     with the gathers they depend on; the DAG serializes gather -> combine -> bcast.\n"

(* ------------------------------------------------------------------ *)
(* Coherence: eager all-pairs reconciliation vs demand-driven shipping  *)
(* ------------------------------------------------------------------ *)

(* Every run is checked against the sequential reference — lazy coherence
   must change traffic and timings only, never results. 'coh bytes' is
   the replicated-array + reduction reconciliation traffic (shipped plus
   on-demand pulls); distributed halo/miss traffic is identical in both
   modes and excluded. The JSON lands in BENCH_coherence.json. *)
let coherence_bench scale ~smoke =
  Printf.printf "== Coherence: eager vs demand-driven lazy (scale: %s%s) ==\n" (scale_name scale)
    (if smoke then "; smoke" else "");
  print_endline
    "(--coherence lazy ships a writer's dirty intervals only to GPUs whose next read\n\
     window covers them; unread data stays stale and is pulled on demand. See\n\
     docs/COHERENCE.md. 'elided' is deferred traffic nobody ever needed.)\n";
  let apps =
    [
      ("md", app_of MD scale);
      ("kmeans", app_of KMEANS scale);
      ("bfs", app_of BFS scale);
      ("spmv", Spmv.app Spmv.default_params);
      ("montecarlo", Montecarlo.app Montecarlo.default_params);
    ]
  in
  let machines =
    if smoke then [ ("cluster", (fun () -> Machine.cluster ~nodes:2 ~gpus_per_node:2 ()), 4) ]
    else
      [
        ("desktop", (fun () -> Machine.desktop ()), 2);
        ("supernode", (fun () -> Machine.supernode ()), 3);
        ("cluster", (fun () -> Machine.cluster ~nodes:2 ~gpus_per_node:2 ()), 4);
      ]
  in
  let coh_bytes (r : Report.t) = r.Report.coh_shipped_bytes + r.Report.coh_pulled_bytes in
  let t =
    Table.create
      ~headers:
        [ "app"; "machine"; "eager coh"; "lazy coh"; "cut"; "elided"; "eager t"; "lazy t"; "check" ]
  in
  let json_entries = ref [] in
  List.iter
    (fun (name, app) ->
      let seq = App_common.sequential app in
      List.iter
        (fun (mname, fresh, gpus) ->
          progress "  [coherence] %s on %s(%d)..." name mname gpus;
          let _, eager = App_common.proposal ~num_gpus:gpus ~machine:(fresh ()) app in
          let env, lz =
            App_common.proposal ~coherence:Rt_config.Lazy ~num_gpus:gpus ~machine:(fresh ()) app
          in
          let ok =
            match App_common.verify app ~against:seq env with
            | Ok () -> "ok"
            | Error _ -> "MISMATCH"
          in
          let eb = coh_bytes eager and lb = coh_bytes lz in
          let cut = if eb = 0 then 0.0 else 100.0 *. (1.0 -. (float_of_int lb /. float_of_int eb)) in
          Table.add_row t
            [
              name;
              Printf.sprintf "%s(%d)" mname gpus;
              Mgacc_util.Bytesize.to_string eb;
              Mgacc_util.Bytesize.to_string lb;
              Printf.sprintf "%+.1f%%" cut;
              Mgacc_util.Bytesize.to_string (Report.coh_elided_bytes lz);
              Printf.sprintf "%.6fs" eager.Report.total_time;
              Printf.sprintf "%.6fs" lz.Report.total_time;
              ok;
            ];
          json_entries :=
            Printf.sprintf
              "    {\"app\": %S, \"machine\": %S, \"gpus\": %d, \"eager_seconds\": %.9g, \
               \"lazy_seconds\": %.9g, \"eager_coh_bytes\": %d, \"lazy_coh_bytes\": %d, \
               \"eager_gpu_gpu_bytes\": %d, \"lazy_gpu_gpu_bytes\": %d, \
               \"lazy_shipped_bytes\": %d, \"lazy_deferred_bytes\": %d, \"lazy_pulled_bytes\": \
               %d, \"lazy_elided_bytes\": %d, \"results_match\": %b}"
              name mname gpus eager.Report.total_time lz.Report.total_time eb lb
              eager.Report.gpu_gpu_bytes lz.Report.gpu_gpu_bytes lz.Report.coh_shipped_bytes
              lz.Report.coh_deferred_bytes lz.Report.coh_pulled_bytes (Report.coh_elided_bytes lz)
              (ok = "ok")
            :: !json_entries)
        machines)
    apps;
  Table.print t;
  (* The overlap DAG under lazy coherence: the binomial-tree broadcast
     rounds must not regress kmeans below its barrier-mode time. *)
  let kmeans = app_of KMEANS scale in
  let km_seq = App_common.sequential kmeans in
  let km_entries = ref [] in
  let kt = Table.create ~headers:[ "machine"; "barrier"; "overlap"; "gain"; "check" ] in
  List.iter
    (fun (mname, fresh, gpus) ->
      progress "  [coherence] kmeans overlap on %s(%d)..." mname gpus;
      let _, off =
        App_common.proposal ~coherence:Rt_config.Lazy ~num_gpus:gpus ~machine:(fresh ()) kmeans
      in
      let env, on =
        App_common.proposal ~coherence:Rt_config.Lazy ~overlap:true ~num_gpus:gpus
          ~machine:(fresh ()) kmeans
      in
      let ok =
        match App_common.verify kmeans ~against:km_seq env with
        | Ok () -> "ok"
        | Error _ -> "MISMATCH"
      in
      let gain = 100.0 *. (1.0 -. (on.Report.total_time /. off.Report.total_time)) in
      Table.add_row kt
        [
          Printf.sprintf "%s(%d)" mname gpus;
          Printf.sprintf "%.6fs" off.Report.total_time;
          Printf.sprintf "%.6fs" on.Report.total_time;
          Printf.sprintf "%+.1f%%" gain;
          ok;
        ];
      km_entries :=
        Printf.sprintf
          "    {\"machine\": %S, \"gpus\": %d, \"barrier_seconds\": %.9g, \"overlap_seconds\": \
           %.9g, \"results_match\": %b}"
          mname gpus off.Report.total_time on.Report.total_time (ok = "ok")
        :: !km_entries)
    machines;
  print_endline "\n-- kmeans under lazy coherence: barrier vs overlap --";
  Table.print kt;
  let oc = open_out "BENCH_coherence.json" in
  Printf.fprintf oc
    "{\n\
    \  \"scale\": %S,\n\
    \  \"flags\": {\"coherence\": \"eager-vs-lazy\", \"overlap\": \"off\", \"collective\": \
     \"direct\", \"kmeans_overlap_section\": \"lazy, overlap off-vs-on\"},\n\
    \  \"runs\": [\n\
     %s\n\
    \  ],\n\
    \  \"kmeans_overlap\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    (scale_name scale)
    (String.concat ",\n" (List.rev !json_entries))
    (String.concat ",\n" (List.rev !km_entries));
  close_out oc;
  print_endline "\nwrote BENCH_coherence.json";
  print_endline
    "shape: kmeans cuts the most — reduction results fan out as per-GPU windows instead of\n\
     whole-array broadcasts, and self-reads elide the rest. spmv ships one contiguous run\n\
     per destination instead of padded dirty chunks; bfs ships sparse frontier runs. md and\n\
     montecarlo reconcile distributed/private data and are unchanged by design.\n"

(* Cost-model-guided kernel fusion (--fuse on, docs/FUSION.md): adjacent
   compatible parallel loops become one kernel, group-confined create
   temporaries contract to scalars (vanishing from the device and from
   the coherence layer), and strided read-only arrays get a one-time
   layout repack. Every run is checked against the sequential reference;
   bfs rides along as a control the pass must leave untouched. The JSON
   lands in BENCH_fusion.json. *)
let fusion_bench scale ~smoke =
  Printf.printf "== Fusion: --fuse off vs on (scale: %s%s) ==\n" (scale_name scale)
    (if smoke then "; smoke" else "");
  print_endline
    "(fusion-friendly md/kmeans variants: chains of adjacent clause-free parallel loops\n\
     with create temporaries that die inside the fused group. 'coh bytes' is shipped plus\n\
     pulled reconciliation traffic; contracted temporaries stop generating any.)\n";
  let apps =
    [
      ("md", Fusionable.md Fusionable.default_md);
      ("kmeans", Fusionable.kmeans Fusionable.default_kmeans);
      ("bfs", app_of BFS scale);
    ]
  in
  let machines =
    if smoke then [ ("cluster", (fun () -> Machine.cluster ~nodes:2 ~gpus_per_node:2 ()), 4) ]
    else
      [
        ("desktop", (fun () -> Machine.desktop ()), 2);
        ("cluster", (fun () -> Machine.cluster ~nodes:2 ~gpus_per_node:2 ()), 4);
      ]
  in
  let coh_bytes (r : Report.t) = r.Report.coh_shipped_bytes + r.Report.coh_pulled_bytes in
  let t =
    Table.create
      ~headers:
        [ "app"; "machine"; "off t"; "on t"; "gain"; "off coh"; "on coh"; "fused"; "contr"; "check" ]
  in
  let json_entries = ref [] in
  List.iter
    (fun (name, app) ->
      let seq = App_common.sequential app in
      List.iter
        (fun (mname, fresh, gpus) ->
          progress "  [fusion] %s on %s(%d)..." name mname gpus;
          let env_off, off =
            App_common.proposal ~fuse:false ~num_gpus:gpus ~machine:(fresh ()) app
          in
          let env_on, on = App_common.proposal ~fuse:true ~num_gpus:gpus ~machine:(fresh ()) app in
          let check env =
            match App_common.verify app ~against:seq env with Ok () -> true | Error _ -> false
          in
          let ok = check env_off && check env_on in
          let gain = 100.0 *. (1.0 -. (on.Report.total_time /. off.Report.total_time)) in
          Table.add_row t
            [
              name;
              Printf.sprintf "%s(%d)" mname gpus;
              Printf.sprintf "%.6fs" off.Report.total_time;
              Printf.sprintf "%.6fs" on.Report.total_time;
              Printf.sprintf "%+.1f%%" gain;
              Mgacc_util.Bytesize.to_string (coh_bytes off);
              Mgacc_util.Bytesize.to_string (coh_bytes on);
              string_of_int on.Report.fused_kernels;
              string_of_int on.Report.contracted_arrays;
              (if ok then "ok" else "MISMATCH");
            ];
          json_entries :=
            Printf.sprintf
              "    {\"app\": %S, \"machine\": %S, \"gpus\": %d, \"unfused_seconds\": %.9g, \
               \"fused_seconds\": %.9g, \"unfused_coh_bytes\": %d, \"fused_coh_bytes\": %d, \
               \"unfused_gpu_gpu_bytes\": %d, \"fused_gpu_gpu_bytes\": %d, \"fused_kernels\": \
               %d, \"contracted_arrays\": %d, \"relayouts\": %d, \"results_match\": %b}"
              name mname gpus off.Report.total_time on.Report.total_time (coh_bytes off)
              (coh_bytes on) off.Report.gpu_gpu_bytes on.Report.gpu_gpu_bytes
              on.Report.fused_kernels on.Report.contracted_arrays on.Report.relayouts ok
            :: !json_entries)
        machines)
    apps;
  Table.print t;
  if smoke then print_endline "\nsmoke configuration: no BENCH_fusion.json written"
  else begin
    let oc = open_out "BENCH_fusion.json" in
    Printf.fprintf oc
      "{\n\
      \  \"scale\": %S,\n\
      \  \"flags\": {\"fuse\": \"off-vs-on\", \"overlap\": \"off\", \"coherence\": \"eager\", \
       \"collective\": \"direct\"},\n\
      \  \"runs\": [\n\
       %s\n\
      \  ]\n\
       }\n"
      (scale_name scale)
      (String.concat ",\n" (List.rev !json_entries));
    close_out oc;
    print_endline "\nwrote BENCH_fusion.json"
  end;
  print_endline
    "shape: md fuses its three velocity-Verlet loops into one kernel and contracts the\n\
     acceleration temporary outright; kmeans fuses assignment with membership, contracts\n\
     both per-point temporaries and repacks the strided point matrix once. bfs has no\n\
     adjacent compatible loops and must be byte-identical in both columns.\n"

(* ------------------------------------------------------------------ *)
(* Collectives: direct star/tree vs topology-aware planned schedules    *)
(* ------------------------------------------------------------------ *)

(* Every run is checked against the sequential reference — the planner
   reshapes who sends what to whom, never what arrives. 'wire' is the
   inter-node subset of GPU-GPU traffic: the planner's job is moving the
   same payloads while crossing the wire less (ring chains and
   hierarchical staging) and hiding latency (chunked pipelining). The
   JSON lands in BENCH_collective.json. *)
let collective_bench scale ~smoke =
  Printf.printf "== Collectives: direct vs topology-aware auto (scale: %s%s) ==\n"
    (scale_name scale)
    (if smoke then "; smoke" else "");
  print_endline
    "(--collective auto lowers replicated-array reconciliation and reduction broadcasts\n\
     into ring or hierarchical schedules with segment pipelining when the cost model\n\
     says they beat the star; see docs/MODEL.md 'Collectives'.)\n";
  let apps =
    [
      ("md", app_of MD scale);
      ("kmeans", app_of KMEANS scale);
      ("bfs", app_of BFS scale);
      ("spmv", Spmv.app Spmv.default_params);
      ("montecarlo", Montecarlo.app Montecarlo.default_params);
    ]
  in
  let machines =
    if smoke then [ ("cluster", (fun () -> Machine.cluster ~nodes:2 ~gpus_per_node:2 ()), 4) ]
    else
      [
        ("desktop", (fun () -> Machine.desktop ()), 2);
        ("supernode", (fun () -> Machine.supernode ()), 3);
        ("cluster", (fun () -> Machine.cluster ~nodes:2 ~gpus_per_node:2 ()), 4);
      ]
  in
  let coherences = [ ("eager", Rt_config.Eager); ("lazy", Rt_config.Lazy) ] in
  let t =
    Table.create
      ~headers:
        [ "app"; "machine"; "coh"; "direct t"; "auto t"; "gain"; "direct wire"; "auto wire";
          "rings/hier"; "check" ]
  in
  let json_entries = ref [] in
  List.iter
    (fun (name, app) ->
      let seq = App_common.sequential app in
      List.iter
        (fun (mname, fresh, gpus) ->
          List.iter
            (fun (cname, coherence) ->
              progress "  [collective] %s on %s(%d) %s..." name mname gpus cname;
              let env_d, direct =
                App_common.proposal ~coherence ~collective:Rt_config.Direct ~num_gpus:gpus
                  ~machine:(fresh ()) app
              in
              let env_a, auto =
                App_common.proposal ~coherence ~collective:Rt_config.Auto ~num_gpus:gpus
                  ~machine:(fresh ()) app
              in
              let ok =
                match App_common.verify app ~against:seq env_d with
                | Error _ -> "MISMATCH"
                | Ok () -> (
                    match App_common.verify app ~against:seq env_a with
                    | Ok () -> "ok"
                    | Error _ -> "MISMATCH")
              in
              let gain =
                100.0 *. (1.0 -. (auto.Report.total_time /. direct.Report.total_time))
              in
              Table.add_row t
                [
                  name;
                  Printf.sprintf "%s(%d)" mname gpus;
                  cname;
                  Printf.sprintf "%.6fs" direct.Report.total_time;
                  Printf.sprintf "%.6fs" auto.Report.total_time;
                  Printf.sprintf "%+.1f%%" gain;
                  Mgacc_util.Bytesize.to_string direct.Report.wire_bytes;
                  Mgacc_util.Bytesize.to_string auto.Report.wire_bytes;
                  Printf.sprintf "%d/%d" auto.Report.collective_rings
                    auto.Report.collective_hierarchies;
                  ok;
                ];
              json_entries :=
                Printf.sprintf
                  "    {\"app\": %S, \"machine\": %S, \"gpus\": %d, \"coherence\": %S, \
                   \"direct_seconds\": %.9g, \"auto_seconds\": %.9g, \
                   \"direct_gpu_gpu_seconds\": %.9g, \"auto_gpu_gpu_seconds\": %.9g, \
                   \"gpu_gpu_bytes\": %d, \"direct_wire_bytes\": %d, \"auto_wire_bytes\": %d, \
                   \"rings\": %d, \"hierarchies\": %d, \"segments\": %d, \"results_match\": %b}"
                  name mname gpus cname direct.Report.total_time auto.Report.total_time
                  direct.Report.gpu_gpu_time auto.Report.gpu_gpu_time auto.Report.gpu_gpu_bytes
                  direct.Report.wire_bytes auto.Report.wire_bytes auto.Report.collective_rings
                  auto.Report.collective_hierarchies auto.Report.collective_segments (ok = "ok")
                :: !json_entries)
            coherences)
        machines)
    apps;
  Table.print t;
  let oc = open_out "BENCH_collective.json" in
  Printf.fprintf oc
    "{\n\
    \  \"scale\": %S,\n\
    \  \"flags\": {\"collective\": \"direct-vs-auto\", \"coherence\": \"eager-and-lazy\", \
     \"overlap\": \"off\"},\n\
    \  \"runs\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    (scale_name scale)
    (String.concat ",\n" (List.rev !json_entries));
  close_out oc;
  print_endline "\nwrote BENCH_collective.json";
  print_endline
    "shape: the wins concentrate on the 4-GPU cluster and the replica-heavy apps (kmeans,\n\
     spmv, bfs): a ring or hierarchical schedule crosses the 3.2GB/s wire once per node\n\
     instead of once per remote destination. md and montecarlo reconcile little or nothing\n\
     and stay direct under the cost model; single-node machines gain only pipelining.\n"

(* ------------------------------------------------------------------ *)
(* Fleet: multi-tenant job scheduling over a shared simulated cluster  *)
(* ------------------------------------------------------------------ *)

(* A burst of mixed jobs (all submitted within microseconds) on the
   4-GPU cluster, replayed under each admission policy with a shared
   compile-once plan cache. The warmup pass primes the cache's measured
   durations (feeding SJF) and footprints (feeding the admission
   ledger); the budget is then squeezed to 2x the largest footprint so
   warm pools actually evict and spill. *)
let fleet_bench scale ~smoke =
  Printf.printf "== Fleet: FIFO vs SJF vs fair-share on the shared cluster (scale: %s%s) ==\n"
    (scale_name scale)
    (if smoke then "; smoke" else "");
  print_endline
    "(jobs run as re-entrant sessions on one shared machine; admission is gated by a\n\
     device-memory ledger with warm-pool eviction/spill; see docs/FLEET.md.)\n";
  let sources =
    [
      ("md", (app_of MD scale).App_common.source);
      ("kmeans", (app_of KMEANS scale).App_common.source);
      ("bfs", (app_of BFS scale).App_common.source);
      ("spmv", (Spmv.app Spmv.default_params).App_common.source);
      ("montecarlo", (Montecarlo.app Montecarlo.default_params).App_common.source);
    ]
  in
  let tenants = [| "alice"; "bob"; "carol"; "dave" |] in
  let job_count = if smoke then 3 else 20 in
  let jobs =
    List.init job_count (fun i ->
        let name, source = List.nth sources (i mod List.length sources) in
        Mgacc.Fleet_job.make ~id:i ~tenant:tenants.(i mod Array.length tenants) ~name ~source
          ~submit:(1e-6 *. float_of_int i))
  in
  let fresh () = Machine.cluster ~nodes:2 ~gpus_per_node:2 () in
  let cache = Mgacc.Plan_cache.create () in
  (* Warmup: one solo run per distinct program primes measured durations
     and device footprints in the shared cache. *)
  List.iter
    (fun (name, source) ->
      progress "  [fleet] warmup %s..." name;
      let config = Mgacc.Fleet.configure ~policy:Mgacc.Fleet.Fifo ~keep_warm:true (fresh ()) in
      ignore
        (Mgacc.Fleet.run ~cache config
           [ Mgacc.Fleet_job.make ~id:0 ~tenant:"warmup" ~name ~source ~submit:0.0 ]))
    sources;
  let max_footprint =
    List.fold_left
      (fun acc (name, source) ->
        let entry, _ = Mgacc.Plan_cache.lookup ~name cache source in
        max acc (Option.value ~default:(16 * 1024 * 1024) entry.Mgacc.Plan_cache.footprint_bytes))
      1 sources
  in
  let budget = 2 * max_footprint in
  let t =
    Table.create
      ~headers:
        [ "policy"; "mean wait"; "p95 latency"; "throughput"; "makespan"; "fairness"; "cache";
          "evict"; "spilled" ]
  in
  let json_entries = ref [] in
  List.iter
    (fun policy ->
      progress "  [fleet] %d jobs under %s..." job_count (Mgacc.Fleet.policy_name policy);
      let config =
        Mgacc.Fleet.configure ~policy ~mem_budget:budget ~keep_warm:true
          ~watchdog_seconds:3600.0 (fresh ())
      in
      let outcome = Mgacc.Fleet.run ~cache config jobs in
      let s = outcome.Mgacc.Fleet.stats in
      Table.add_row t
        [
          Mgacc.Fleet.policy_name policy;
          Printf.sprintf "%.6fs" s.Mgacc.Fleet.mean_wait;
          Printf.sprintf "%.6fs" s.Mgacc.Fleet.p95_latency;
          Printf.sprintf "%.2f jobs/s" s.Mgacc.Fleet.throughput;
          Printf.sprintf "%.6fs" s.Mgacc.Fleet.makespan;
          Printf.sprintf "%.3f" s.Mgacc.Fleet.fairness;
          Printf.sprintf "%d/%d" s.Mgacc.Fleet.cache_hits
            (s.Mgacc.Fleet.cache_hits + s.Mgacc.Fleet.cache_misses);
          string_of_int s.Mgacc.Fleet.evictions;
          Mgacc_util.Bytesize.to_string s.Mgacc.Fleet.spilled_bytes;
        ];
      json_entries := Printf.sprintf "    %s" (Mgacc.Fleet.stats_to_json s) :: !json_entries)
    [ Mgacc.Fleet.Fifo; Mgacc.Fleet.Sjf; Mgacc.Fleet.Fair ];
  Table.print t;
  if smoke then print_endline "\nsmoke configuration: no BENCH_fleet.json written"
  else begin
    let oc = open_out "BENCH_fleet.json" in
    Printf.fprintf oc
      "{\n\
      \  \"scale\": %S,\n\
      \  \"flags\": {\"policy\": \"fifo-vs-sjf-vs-fair\", \"keep_warm\": true},\n\
      \  \"machine\": \"cluster\",\n\
      \  \"gpus\": 4,\n\
      \  \"job_count\": %d,\n\
      \  \"mem_budget_bytes\": %d,\n\
      \  \"policies\": [\n\
       %s\n\
      \  ]\n\
       }\n"
      (scale_name scale) job_count budget
      (String.concat ",\n" (List.rev !json_entries));
    close_out oc;
    print_endline "\nwrote BENCH_fleet.json"
  end;
  print_endline
    "shape: the burst arrives long-and-short interleaved, so FIFO makes short jobs queue\n\
     behind long ones; SJF reorders the backlog shortest-first and wins on mean wait at\n\
     equal throughput (same work, same machine). Fair-share interleaves tenants by\n\
     accumulated service, trading a little mean wait for a flatter slowdown spread.\n"

(* ------------------------------------------------------------------ *)
(* bench sim: fabric event-loop microbenchmark                         *)
(* ------------------------------------------------------------------ *)

(* Synthetic transfer storm on a 64-GPU cluster (16 nodes x 4 GPUs), the
   scale where the from-scratch allocator's per-event rebuild dominates.
   Requests arrive in waves and mix every direction the fabric models:
   H2d, D2h, same-node peer and cross-node peer. Deterministic LCG so
   every run (and both allocators) sees the same storm. *)
let sim_storm fabric ~flows ~waves ~seed =
  let topo =
    match Fabric.topology fabric with
    | Some t -> t
    | None -> invalid_arg "sim_storm: fabric has no topology"
  in
  let gpn = topo.Fabric.gpus_per_node in
  let num_gpus = Fabric.num_gpus fabric in
  let nodes = num_gpus / gpn in
  let state = ref seed in
  let rand bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  List.init flows (fun i ->
      let ready = float_of_int (i mod waves) *. 2e-4 in
      let g = rand num_gpus in
      let direction =
        match rand 4 with
        | 0 -> Fabric.H2d g
        | 1 -> Fabric.D2h g
        | 2 ->
            (* same-node peer: g and a distinct neighbor on its node *)
            let node = g / gpn in
            let p = (node * gpn) + ((g mod gpn) + 1 + rand (gpn - 1)) mod gpn in
            Fabric.P2p (g, p)
        | _ ->
            (* cross-node peer *)
            let dst_node = ((g / gpn) + 1 + rand (Int.max 1 (nodes - 1))) mod nodes in
            Fabric.P2p (g, (dst_node * gpn) + rand gpn)
      in
      let bytes = 1_000_000 + rand 32_000_000 in
      { Fabric.direction; bytes; ready; tag = "storm" })

(* Koka-artifact-style timing: N iterations, median and the spread
   (largest deviation from the median), wall clock. *)
let sim_time_runs ~iters f =
  let times =
    Array.init iters (fun _ ->
        let t0 = Unix.gettimeofday () in
        f ();
        Unix.gettimeofday () -. t0)
  in
  Array.sort compare times;
  let median = times.(iters / 2) in
  let spread = Float.max (median -. times.(0)) (times.(iters - 1) -. median) in
  (median, spread)

(* Bar the artifact must clear on regeneration: the incremental
   allocator's throughput at the 64-GPU storm. Calibrated between the
   reference allocator's measured throughput (~195 events/s) and the
   incremental path's (~2400 events/s): a revert to per-event rebuilds
   fails the bar, while machines ~5x slower than the dev box still
   pass. The test suite asserts both this floor and the >= 10x speedup
   from the committed BENCH_sim.json; a live relative gate in
   test_gpusim catches reverts independently of machine speed. *)
let sim_floor_events_per_second = 500.0

let sim_bench ~smoke ?machine_override () =
  let nodes = if smoke then 2 else 16 in
  let gpus_per_node = 4 in
  let flows = if smoke then 300 else 4000 in
  let waves = if smoke then 6 else 40 in
  let iters = if smoke then 3 else 9 in
  Printf.printf "== bench sim: fabric event loop, %d GPUs (%d nodes x %d), %d-flow storm%s ==\n"
    (nodes * gpus_per_node) nodes gpus_per_node flows
    (if smoke then "; smoke" else "");
  print_endline
    "(incremental allocator vs from-scratch reference on the same synthetic transfer storm;\n\
     see docs/PERF.md for the event-loop invariants and methodology.)\n";
  let machine = Machine.cluster ~nodes ~gpus_per_node () in
  let fabric = machine.Machine.fabric in
  let reqs = sim_storm fabric ~flows ~waves ~seed:20260807 in
  (* Guard before timing anything: both allocators must agree bit for bit
     on this storm, else the speedup compares different simulations. *)
  progress "  [sim] equivalence check (%d flows)..." flows;
  let fast = Fabric.run_batch fabric reqs in
  Fabric.set_reference_allocator fabric true;
  let slow = Fabric.run_batch fabric reqs in
  Fabric.set_reference_allocator fabric false;
  List.iter2
    (fun (a : Fabric.completion) (b : Fabric.completion) ->
      if not (Float.equal a.Fabric.start b.Fabric.start && Float.equal a.Fabric.finish b.Fabric.finish)
      then failwith "bench sim: incremental and reference allocators diverged")
    fast slow;
  (* Every request is one arrival plus one completion. *)
  let events = 2 * flows in
  let measure name use_reference =
    progress "  [sim] timing %s allocator (%d iterations)..." name iters;
    Fabric.set_reference_allocator fabric use_reference;
    let median, spread = sim_time_runs ~iters (fun () -> ignore (Fabric.run_batch fabric reqs)) in
    Fabric.set_reference_allocator fabric false;
    (median, spread, float_of_int events /. median)
  in
  let ref_median, ref_spread, ref_eps = measure "reference" true in
  let inc_median, inc_spread, inc_eps = measure "incremental" false in
  let speedup = ref_median /. inc_median in
  (* Optional --machine override: replay an equivalent storm on a
     user-chosen topology and report its incremental throughput as an
     extra, purely informational data point. The pinned 64-GPU cluster
     numbers above are what CI trends; the override never replaces them. *)
  let override_cell =
    match machine_override with
    | None -> None
    | Some spec ->
        let m = Machine.of_spec spec in
        let fab = m.Machine.fabric in
        (match Fabric.topology fab with
        | None ->
            progress "  [sim] --machine %s has no multi-node topology; skipping override"
              (Machine.spec_to_string spec);
            None
        | Some _ ->
            let spec_str = Machine.spec_to_string spec in
            progress "  [sim] --machine %s: timing incremental allocator..." spec_str;
            let oreqs = sim_storm fab ~flows ~waves ~seed:20260807 in
            let omedian, _ = sim_time_runs ~iters (fun () -> ignore (Fabric.run_batch fab oreqs)) in
            let oeps = float_of_int (2 * flows) /. omedian in
            Some (spec_str, Machine.num_gpus m, omedian, oeps))
  in
  (match override_cell with
  | None -> ()
  | Some (spec_str, gpus, omedian, oeps) ->
      Printf.printf "  --machine %s (%d GPUs): incremental median %.4fs, %.0f events/s\n" spec_str
        gpus omedian oeps);
  let t =
    Table.create ~headers:[ "allocator"; "iters"; "median"; "spread"; "events/s"; "vs reference" ]
  in
  Table.add_row t
    [
      "reference"; string_of_int iters;
      Printf.sprintf "%.4fs" ref_median;
      Printf.sprintf "~%.4fs" ref_spread;
      Printf.sprintf "%.0f" ref_eps;
      "1.00x";
    ];
  Table.add_row t
    [
      "incremental"; string_of_int iters;
      Printf.sprintf "%.4fs" inc_median;
      Printf.sprintf "~%.4fs" inc_spread;
      Printf.sprintf "%.0f" inc_eps;
      Printf.sprintf "%.2fx" speedup;
    ];
  Table.print t;
  if smoke then print_endline "\nsmoke configuration: no BENCH_sim.json written"
  else begin
    let oc = open_out "BENCH_sim.json" in
    Printf.fprintf oc
      "{\n\
      \  \"flags\": {\"allocator\": \"incremental-vs-reference\", \"storm\": \
       \"h2d-d2h-p2p-mixed\"},\n\
      \  \"machine\": \"cluster\",\n\
      \  \"nodes\": %d,\n\
      \  \"gpus_per_node\": %d,\n\
      \  \"gpus\": %d,\n\
      \  \"flows\": %d,\n\
      \  \"waves\": %d,\n\
      \  \"events\": %d,\n\
      \  \"iterations\": %d,\n\
      \  \"reference\": {\"median_seconds\": %.9g, \"spread_seconds\": %.9g, \
       \"events_per_second\": %.9g},\n\
      \  \"incremental\": {\"median_seconds\": %.9g, \"spread_seconds\": %.9g, \
       \"events_per_second\": %.9g},\n\
      \  \"speedup\": %.9g,\n\
      \  \"floor_events_per_second\": %.9g%s\n\
       }\n"
      nodes gpus_per_node (nodes * gpus_per_node) flows waves events iters ref_median ref_spread
      ref_eps inc_median inc_spread inc_eps speedup sim_floor_events_per_second
      (match override_cell with
      | None -> ""
      | Some (spec_str, gpus, omedian, oeps) ->
          Printf.sprintf
            ",\n\
            \  \"machine_override\": {\"spec\": %S, \"gpus\": %d, \"median_seconds\": %.9g, \
             \"events_per_second\": %.9g}"
            spec_str gpus omedian oeps);
    close_out oc;
    print_endline "\nwrote BENCH_sim.json"
  end;
  Printf.printf
    "shape: the reference allocator rebuilds hashtable water-filling state on every\n\
     arrival/completion event, so per-event cost grows with active flows x resources;\n\
     the incremental allocator keeps per-resource counts alive across events, water-fills\n\
     over flat arrays, and skips the refill entirely when an event touches only idle\n\
     resources. Throughput floor for CI: %.0f events/s.\n"
    sim_floor_events_per_second

(* ------------------------------------------------------------------ *)
(* bench scale: past 4 GPUs — decomposition and collective scaling     *)
(* ------------------------------------------------------------------ *)

(* The scaling sweep the tentpole claims are made at: jacobi (a 2-D
   stencil with an inner parallel column loop, so it is 2-D eligible)
   and spmv (a replicated gather vector reconciled every iteration, so
   its traffic is collective-shaped) on 4-, 16- and 64-GPU machines
   built from --machine specs, crossing 1-D vs 2-D decomposition with
   star (direct) vs ring collectives. Tracked shapes: the 2-D tiles'
   per-GPU halo bytes drop below the 1-D rows' once the machine has
   >= 16 GPUs (perimeter vs full row width), and the ring schedule puts
   fewer bytes on the inter-node wire than the star at 64 GPUs. *)
let jacobi_scale_app ~rows ~cols ~iters =
  {
    App_common.name = "jacobi";
    source =
      Printf.sprintf
        {|void main() {
            int rows = %d; int cols = %d; int iters = %d; int it; int r; int c;
            double u[rows][cols];
            double v[rows][cols];
            for (r = 0; r < rows; r++) { for (c = 0; c < cols; c++) { u[r][c] = 1.0 * ((r * 13 + c * 7) %% 19); v[r][c] = u[r][c]; } }
            #pragma acc data copy(u[0:rows*cols]) copy(v[0:rows*cols])
            {
              for (it = 0; it < iters; it++) {
                #pragma acc parallel loop localaccess(u: stride(cols, cols, cols), v: stride(cols))
                for (r = 0; r < rows; r++) {
                  if (r > 0 && r < rows - 1) {
                    #pragma acc loop
                    for (c = 1; c < cols - 1; c++) {
                      v[r][c] = 0.25 * (u[r-1][c] + u[r+1][c] + u[r][c-1] + u[r][c+1]);
                    }
                  }
                }
                #pragma acc parallel loop localaccess(v: stride(cols, cols, cols), u: stride(cols))
                for (r = 0; r < rows; r++) {
                  if (r > 0 && r < rows - 1) {
                    #pragma acc loop
                    for (c = 1; c < cols - 1; c++) {
                      u[r][c] = 0.25 * (v[r-1][c] + v[r+1][c] + v[r][c-1] + v[r][c+1]);
                    }
                  }
                }
              }
            }
          }|}
        rows cols iters;
    result_arrays = [ "u"; "v" ];
  }

let scale_bench scale ~smoke =
  Printf.printf "== bench scale: 1-D vs 2-D decomposition, star vs ring, 4 to 64 GPUs (scale: %s%s) ==\n"
    (scale_name scale)
    (if smoke then "; smoke" else "");
  print_endline
    "(machines built from --machine specs; 2-D tiles the stencil over a sqrt(P)-ish GPU\n\
     grid so halo traffic follows the tile perimeter; ring collectives cross each\n\
     inter-node wire once per node instead of once per remote GPU. See docs/TOPOLOGY.md.)\n";
  let machine_specs =
    if smoke then [ "cluster:2x2" ] else [ "cluster:2x2"; "fattree:4x4"; "fattree:16x4" ]
  in
  let rows, cols, iters, spmv_rows, spmv_width, spmv_iters =
    if smoke then (32, 24, 2, 256, 6, 2)
    else
      match scale with
      | Small -> (96, 96, 2, 1024, 8, 2)
      | Default | Paper -> (192, 192, 3, 4096, 8, 3)
  in
  let apps =
    [
      jacobi_scale_app ~rows ~cols ~iters;
      Spmv.app { Spmv.rows = spmv_rows; width = spmv_width; iterations = spmv_iters; seed = 19 };
    ]
  in
  let decomps =
    [
      ("1d", Kernel_plan.default_options);
      ("2d", { Kernel_plan.default_options with Kernel_plan.enable_decomp2d = true });
    ]
  in
  let collectives = [ ("star", Rt_config.Direct); ("ring", Rt_config.Ring) ] in
  let t =
    Table.create
      ~headers:
        [ "app"; "machine"; "gpus"; "decomp"; "coll"; "time"; "halo/GPU"; "wire"; "rings"; "check" ]
  in
  let json_entries = ref [] in
  let mismatches = ref [] in
  List.iter
    (fun (app : App_common.t) ->
      let seq = App_common.sequential app in
      List.iter
        (fun spec_str ->
          let spec =
            match Machine.spec_of_string spec_str with
            | Ok s -> s
            | Error e -> failwith e
          in
          let gpus = Machine.spec_gpus spec in
          List.iter
            (fun (dname, options) ->
              List.iter
                (fun (cname, collective) ->
                  progress "  [scale] %s on %s %s/%s..." app.App_common.name spec_str dname cname;
                  let env, report =
                    App_common.proposal ~options ~collective ~num_gpus:gpus
                      ~machine:(Machine.of_spec spec) app
                  in
                  let ok =
                    match App_common.verify app ~against:seq env with
                    | Ok () -> true
                    | Error e ->
                        mismatches :=
                          Printf.sprintf "%s on %s %s/%s: %s" app.App_common.name spec_str dname
                            cname e
                          :: !mismatches;
                        false
                  in
                  let halo_per_gpu = report.Report.gpu_gpu_bytes / gpus in
                  Table.add_row t
                    [
                      app.App_common.name;
                      spec_str;
                      string_of_int gpus;
                      dname;
                      cname;
                      Printf.sprintf "%.6fs" report.Report.total_time;
                      Mgacc_util.Bytesize.to_string halo_per_gpu;
                      Mgacc_util.Bytesize.to_string report.Report.wire_bytes;
                      string_of_int report.Report.collective_rings;
                      (if ok then "ok" else "MISMATCH");
                    ];
                  json_entries :=
                    Printf.sprintf
                      "    {\"app\": %S, \"machine\": %S, \"gpus\": %d, \"decomp\": %S, \
                       \"collective\": %S, \"seconds\": %.9g, \"gpu_gpu_bytes\": %d, \
                       \"halo_bytes_per_gpu\": %d, \"wire_bytes\": %d, \"rings\": %d, \
                       \"hierarchies\": %d, \"results_match\": %b}"
                      app.App_common.name spec_str gpus dname cname report.Report.total_time
                      report.Report.gpu_gpu_bytes halo_per_gpu report.Report.wire_bytes
                      report.Report.collective_rings report.Report.collective_hierarchies ok
                    :: !json_entries)
                collectives)
            decomps)
        machine_specs)
    apps;
  Table.print t;
  if !mismatches <> [] then
    failwith ("bench scale: results diverged from the sequential reference:\n  "
              ^ String.concat "\n  " !mismatches);
  if smoke then print_endline "\nsmoke configuration: no BENCH_scale.json written"
  else begin
    let oc = open_out "BENCH_scale.json" in
    Printf.fprintf oc
      "{\n\
      \  \"scale\": %S,\n\
      \  \"flags\": {\"decomp\": \"1d-vs-2d\", \"collective\": \"star-vs-ring\", \
       \"coherence\": \"eager\", \"overlap\": \"off\"},\n\
      \  \"runs\": [\n\
       %s\n\
      \  ]\n\
       }\n"
      (scale_name scale)
      (String.concat ",\n" (List.rev !json_entries));
    close_out oc;
    print_endline "\nwrote BENCH_scale.json"
  end;
  print_endline
    "shape: at 4 GPUs the 2x2 tile perimeter roughly matches the 1-D halo rows, so the\n\
     decompositions tie; from 16 GPUs up the tiles win on per-GPU halo bytes and the gap\n\
     widens with P. spmv's replicated gather vector makes the collective planner earn its\n\
     keep: at 64 GPUs the ring schedule crosses each inter-node wire once per node where\n\
     the star crosses it once per remote GPU.\n"

(* ------------------------------------------------------------------ *)
(* Bechamel probes                                                     *)
(* ------------------------------------------------------------------ *)

let bechamel_probes () =
  let open Bechamel in
  let scale = Small in
  let test_of name f = Test.make ~name (Staged.stage f) in
  let tests =
    Test.make_grouped ~name:"mgacc"
      [
        test_of "table2:md-plan" (fun () ->
            ignore (Mgacc.compile (Mgacc.parse_string ~name:"md.c" (Md.source (md_params scale)))));
        test_of "fig7:md-proposal2" (fun () ->
            ignore
              (App_common.proposal ~num_gpus:2 ~machine:(Machine.desktop ()) (app_of MD scale)));
        test_of "fig7:kmeans-proposal2" (fun () ->
            ignore
              (App_common.proposal ~num_gpus:2 ~machine:(Machine.desktop ()) (app_of KMEANS scale)));
        test_of "fig8:bfs-proposal2" (fun () ->
            ignore
              (App_common.proposal ~num_gpus:2 ~machine:(Machine.desktop ()) (app_of BFS scale)));
        test_of "fig9:bfs-memory" (fun () ->
            ignore
              (App_common.proposal ~num_gpus:1 ~machine:(Machine.desktop ()) (app_of BFS scale)));
      ]
  in
  let cfg = Benchmark.cfg ~limit:4 ~quota:(Time.second 1.0) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  print_endline "== Bechamel wall-clock of the harness itself (small scale) ==";
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "  %-28s %10.3f ms/run\n" name (est /. 1e6)
      | _ -> Printf.printf "  %-28s (no estimate)\n" name)
    results

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let usage () =
  print_endline
    "usage: main.exe [--scale small|default|paper] [--bechamel] \
     [--smoke] \
     [--machine SPEC] \
     [all|table1|table2|fig7|fig8|fig9|chunk-sweep|dirty-levels|policy|misscheck|layout|extended|expert|contention|cluster|balance|overlap|coherence|fusion|collective|fleet|sim|scale|paper-validate]";
  exit 1

let () =
  let scale = ref Default in
  let bechamel = ref false in
  let smoke = ref false in
  let machine_override = ref None in
  let targets = ref [] in
  let rec parse = function
    | [] -> ()
    | "--machine" :: s :: rest ->
        (machine_override :=
           match Machine.spec_of_string s with
           | Ok spec -> Some spec
           | Error e ->
               prerr_endline ("bench: " ^ e);
               exit 1);
        parse rest
    | "--scale" :: s :: rest ->
        (scale :=
           match s with
           | "small" -> Small
           | "default" -> Default
           | "paper" -> Paper
           | _ -> usage ());
        parse rest
    | "--bechamel" :: rest ->
        bechamel := true;
        parse rest
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | t :: rest ->
        targets := t :: !targets;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !bechamel then bechamel_probes ()
  else begin
    let targets = if !targets = [] then [ "all" ] else List.rev !targets in
    let scale = !scale in
    if scale = Paper then
      prerr_endline
        "note: paper-scale inputs run interpreted — MD takes minutes per variant, BFS tens of\n\
         minutes, KMEANS (494020x34x37 iterations) many hours. See EXPERIMENTS.md for recorded\n\
         paper-scale results.";
    let needs_collection =
      List.exists (fun t -> List.mem t [ "all"; "fig7"; "fig8"; "fig9" ]) targets
    in
    let collected = if needs_collection then collect scale else [] in
    List.iter
      (function
        | "all" ->
            table1 ();
            table2 scale;
            fig7 collected;
            fig8 collected;
            fig9 collected;
            chunk_sweep scale;
            dirty_levels scale;
            policy scale;
            misscheck scale;
            layout scale;
            extended scale;
            expert scale;
            contention ();
            cluster scale;
            balance ~smoke:!smoke;
            overlap_bench scale ~smoke:!smoke;
            coherence_bench scale ~smoke:!smoke;
            fusion_bench scale ~smoke:!smoke;
            collective_bench scale ~smoke:!smoke;
            fleet_bench scale ~smoke:!smoke;
            sim_bench ~smoke:!smoke ?machine_override:!machine_override ();
            scale_bench scale ~smoke:!smoke
        | "table1" -> table1 ()
        | "table2" -> table2 scale
        | "fig7" -> fig7 collected
        | "fig8" -> fig8 collected
        | "fig9" -> fig9 collected
        | "chunk-sweep" -> chunk_sweep scale
        | "dirty-levels" -> dirty_levels scale
        | "policy" -> policy scale
        | "misscheck" -> misscheck scale
        | "layout" -> layout scale
        | "extended" -> extended scale
        | "contention" -> contention ()
        | "expert" -> expert scale
        | "cluster" -> cluster scale
        | "balance" -> balance ~smoke:!smoke
        | "overlap" -> overlap_bench scale ~smoke:!smoke
        | "coherence" -> coherence_bench scale ~smoke:!smoke
        | "fusion" -> fusion_bench scale ~smoke:!smoke
        | "collective" -> collective_bench scale ~smoke:!smoke
        | "fleet" -> fleet_bench scale ~smoke:!smoke
        | "sim" -> sim_bench ~smoke:!smoke ?machine_override:!machine_override ()
        | "scale" -> scale_bench scale ~smoke:!smoke
        | "paper-validate" -> paper_validate ()
        | _ -> usage ())
      targets
  end
