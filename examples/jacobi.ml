(* Jacobi: a 1-D three-point stencil — the pattern behind the paper's
   localaccess halo clause (stride(1, left, right)).

   Each GPU holds its block plus one halo element on each side; after a
   sweep writes its block, the communication manager refreshes the stale
   halo copies with tiny peer transfers instead of reloading anything
   through the host. The run prints the P2P traffic so you can see the
   halo exchange.

   (The paper's §VI names multi-dimensional stencils as future work; the
   1-D machinery here is exactly what generalizes.)

   Run with: dune exec examples/jacobi.exe *)

let source ~n ~sweeps =
  Printf.sprintf
    {|
void main() {
  int n = %d;
  int sweeps = %d;
  double a[n];
  double b[n];
  int i;
  int it;
  for (i = 0; i < n; i++) { a[i] = 1.0 * (i %% 23); b[i] = 0.0; }
  #pragma acc data copy(a[0:n]) copy(b[0:n])
  {
    for (it = 0; it < sweeps; it++) {
      #pragma acc parallel loop localaccess(a: stride(1, 1, 1), b: stride(1))
      for (i = 0; i < n; i++) {
        if (i > 0 && i < n - 1) { b[i] = 0.25 * a[i-1] + 0.5 * a[i] + 0.25 * a[i+1]; }
      }
      #pragma acc parallel loop localaccess(b: stride(1, 1, 1), a: stride(1))
      for (i = 0; i < n; i++) {
        if (i > 0 && i < n - 1) { a[i] = 0.25 * b[i-1] + 0.5 * b[i] + 0.25 * b[i+1]; }
      }
    }
  }
}
|}
    n sweeps

let () =
  let src = source ~n:100000 ~sweeps:8 in
  let program = Mgacc.parse_string ~name:"jacobi.c" src in

  (* Correctness against the sequential reference. *)
  let ref_env = Mgacc.run_sequential program in
  let expected = Mgacc.float_results ref_env "a" in

  Format.printf "Jacobi 1-D stencil, 100000 points, 8 sweeps@.@.";
  List.iter
    (fun gpus ->
      let machine = Mgacc.Machine.desktop () in
      let config = Mgacc.Rt_config.make ~num_gpus:gpus machine in
      let env, report = Mgacc.run_acc ~config ~machine program in
      let got = Mgacc.float_results env "a" in
      Array.iteri
        (fun i v ->
          if Float.abs (v -. expected.(i)) > 1e-9 then
            failwith (Printf.sprintf "mismatch at %d" i))
        got;
      Format.printf
        "%d GPU(s): total %.6fs (kernels %.6fs, cpu-gpu %.6fs, gpu-gpu %.6fs) — halo traffic %s@."
        gpus report.Mgacc.Report.total_time report.Mgacc.Report.kernel_time
        report.Mgacc.Report.cpu_gpu_time report.Mgacc.Report.gpu_gpu_time
        (Mgacc.Bytesize.to_string report.Mgacc.Report.gpu_gpu_bytes))
    [ 1; 2 ];
  Format.printf "@.results verified on both configurations@."
