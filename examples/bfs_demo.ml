(* BFS demo: the paper's hardest case — irregular writes on a replicated
   array.

   Every frontier sweep scatters levels[j] = level+1 through data-dependent
   indices; the replicas reconcile after each kernel via the two-level
   dirty-bit mechanism. The demo compares two- vs single-level dirty bits
   and a chunk-size sweep, the knobs of paper §IV-D-1.

   Run with: dune exec examples/bfs_demo.exe *)

open Mgacc_apps

let () =
  let p = { Bfs.nodes = 50000; max_degree = 16; seed = 5 } in
  let app = Bfs.app p in
  Format.printf "BFS: %d nodes, max degree %d@.@." p.Bfs.nodes p.Bfs.max_degree;

  let ref_env = App_common.sequential app in
  let levels = Mgacc.int_results ref_env "levels" in
  let depth = Array.fold_left max 0 levels in
  Format.printf "graph depth: %d levels@.@." depth;

  let env2, r2 = App_common.proposal ~num_gpus:2 ~machine:(Mgacc.Machine.desktop ()) app in
  App_common.check_exn app ~against:ref_env env2;

  let env1l, r1l =
    App_common.proposal ~two_level_dirty:false ~num_gpus:2 ~machine:(Mgacc.Machine.desktop ()) app
  in
  App_common.check_exn app ~against:ref_env env1l;

  Format.printf "two-level dirty bits (1MB chunks): gpu-gpu %s in %.6fs@."
    (Mgacc.Bytesize.to_string r2.Mgacc.Report.gpu_gpu_bytes)
    r2.Mgacc.Report.gpu_gpu_time;
  Format.printf "single-level dirty bits:           gpu-gpu %s in %.6fs@.@."
    (Mgacc.Bytesize.to_string r1l.Mgacc.Report.gpu_gpu_bytes)
    r1l.Mgacc.Report.gpu_gpu_time;

  Format.printf "chunk-size sweep (2 GPUs):@.";
  List.iter
    (fun chunk ->
      let env, r =
        App_common.proposal ~chunk_bytes:chunk ~num_gpus:2 ~machine:(Mgacc.Machine.desktop ()) app
      in
      App_common.check_exn app ~against:ref_env env;
      Format.printf "  chunk %-8s gpu-gpu %-10s total %.6fs@." (Mgacc.Bytesize.to_string chunk)
        (Mgacc.Bytesize.to_string r.Mgacc.Report.gpu_gpu_bytes)
        r.Mgacc.Report.total_time)
    [ 16 * 1024; 64 * 1024; 256 * 1024; 1024 * 1024 ];
  Format.printf "@.levels verified against the sequential reference on every configuration.@."
