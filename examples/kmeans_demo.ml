(* KMEANS demo: the reductiontoarray extension at work.

   The accumulation loop reduces feature sums into dynamically indexed
   elements of the (replicated) centers accumulator — the pattern standard
   OpenACC cannot express inside a parallel loop. The runtime gives every
   GPU a private partial, then gathers/combines/broadcasts. The demo also
   shows the coalescing layout transformation: with it disabled, the
   strided feature reads slow the kernel down.

   Run with: dune exec examples/kmeans_demo.exe *)

open Mgacc_apps

let () =
  let p = { Kmeans.points = 20000; features = 16; clusters = 5; iterations = 10; seed = 11 } in
  let app = Kmeans.app p in
  Format.printf "KMEANS: %d points x %d features, %d clusters, %d iterations@.@." p.Kmeans.points
    p.Kmeans.features p.Kmeans.clusters p.Kmeans.iterations;

  let ref_env = App_common.sequential app in
  let machine = Mgacc.Machine.desktop () in
  let _, omp = App_common.openmp ~machine app in

  let env2, r2 = App_common.proposal ~num_gpus:2 ~machine:(Mgacc.Machine.desktop ()) app in
  App_common.check_exn app ~against:ref_env env2;

  (* Ablation: disable the data layout transformation. *)
  let options =
    { Mgacc.Kernel_plan.default_options with Mgacc.Kernel_plan.enable_layout_transform = false }
  in
  let env_nt, r_nt =
    App_common.proposal ~options ~num_gpus:2 ~machine:(Mgacc.Machine.desktop ()) app
  in
  App_common.check_exn app ~against:ref_env env_nt;

  Format.printf "OpenMP(12):                total %.6fs@." omp.Mgacc.Report.total_time;
  Format.printf "Proposal(2):               total %.6fs (%.2fx), kernels %.6fs, gpu-gpu %s@."
    r2.Mgacc.Report.total_time
    (Mgacc.Report.speedup_vs r2 ~baseline:omp)
    r2.Mgacc.Report.kernel_time
    (Mgacc.Bytesize.to_string r2.Mgacc.Report.gpu_gpu_bytes);
  Format.printf "Proposal(2), no transpose: total %.6fs (%.2fx), kernels %.6fs@."
    r_nt.Mgacc.Report.total_time
    (Mgacc.Report.speedup_vs r_nt ~baseline:omp)
    r_nt.Mgacc.Report.kernel_time;
  Format.printf
    "@.the layout transformation speeds the assignment kernel by %.1fx; results verified.@."
    (r_nt.Mgacc.Report.kernel_time /. r2.Mgacc.Report.kernel_time)
