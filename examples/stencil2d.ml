(* 2-D heat diffusion: the paper's §VI future work, implemented.

   The frontend desugars [u[r][c]] over a [rows x cols] grid into 1-D
   subscripts [u[r*cols + c]]; the parallel loop runs over rows, and
   [localaccess(u: stride(cols, cols, cols))] declares that a row's update
   reads its own row plus one halo row on each side. The runtime therefore
   row-block-distributes the grid and exchanges halo *rows* between GPUs
   after each sweep — the multi-dimensional generalization of the paper's
   1-D windows.

   Run with: dune exec examples/stencil2d.exe *)

let source ~rows ~cols ~sweeps =
  Printf.sprintf
    {|
void main() {
  int rows = %d;
  int cols = %d;
  int sweeps = %d;
  double u[rows][cols];
  double v[rows][cols];
  int r;
  int c;
  int it;
  for (r = 0; r < rows; r++) {
    for (c = 0; c < cols; c++) {
      u[r][c] = 1.0 * ((r * 31 + c * 17) %% 97);
      v[r][c] = 0.0;
    }
  }
  #pragma acc data copy(u[0:rows*cols]) copy(v[0:rows*cols])
  {
    for (it = 0; it < sweeps; it++) {
      #pragma acc parallel loop localaccess(u: stride(cols, cols, cols), v: stride(cols))
      for (r = 0; r < rows; r++) {
        if (r > 0 && r < rows - 1) {
          #pragma acc loop vector(128)
          for (c = 1; c < cols - 1; c++) {
            v[r][c] = 0.25 * (u[r-1][c] + u[r+1][c] + u[r][c-1] + u[r][c+1]);
          }
        }
      }
      #pragma acc parallel loop localaccess(v: stride(cols, cols, cols), u: stride(cols))
      for (r = 0; r < rows; r++) {
        if (r > 0 && r < rows - 1) {
          #pragma acc loop vector(128)
          for (c = 1; c < cols - 1; c++) {
            u[r][c] = 0.25 * (v[r-1][c] + v[r+1][c] + v[r][c-1] + v[r][c+1]);
          }
        }
      }
    }
  }
}
|}
    rows cols sweeps

let () =
  let rows = 600 and cols = 400 and sweeps = 6 in
  let program = Mgacc.parse_string ~name:"stencil2d.c" (source ~rows ~cols ~sweeps) in

  let ref_env = Mgacc.run_sequential program in
  let expected = Mgacc.float_results ref_env "u" in

  Format.printf "2-D heat diffusion, %dx%d grid, %d sweeps (rows distributed across GPUs)@.@."
    rows cols sweeps;
  List.iter
    (fun gpus ->
      let machine = Mgacc.Machine.desktop () in
      let config = Mgacc.Rt_config.make ~num_gpus:gpus machine in
      let env, report = Mgacc.run_acc ~config ~machine program in
      let got = Mgacc.float_results env "u" in
      Array.iteri
        (fun i v ->
          if Float.abs (v -. expected.(i)) > 1e-9 then
            failwith (Printf.sprintf "mismatch at (%d,%d)" (i / cols) (i mod cols)))
        got;
      Format.printf
        "%d GPU(s): total %.6fs, kernels %.6fs, halo-row traffic %s, user mem %s@." gpus
        report.Mgacc.Report.total_time report.Mgacc.Report.kernel_time
        (Mgacc.Bytesize.to_string report.Mgacc.Report.gpu_gpu_bytes)
        (Mgacc.Bytesize.to_string report.Mgacc.Report.mem_user_bytes))
    [ 1; 2 ];
  Format.printf "@.grids verified against the sequential reference on both configurations@.";
  Format.printf
    "the inner column loop carries '#pragma acc loop vector(128)': its iterations map to@.";
  Format.printf
    "vector lanes, so coalescing is judged against the column index (adjacent lanes read@.";
  Format.printf
    "adjacent columns) and occupancy multiplies by the vector width — the nested@.";
  Format.printf "parallelism the paper's §VI calls for on top of the 2-D row distribution.@."
