(* MD demo: the paper's zero-communication application.

   Runs the Lennard-Jones benchmark across all execution variants on the
   desktop machine and prints a miniature of the paper's Fig. 7 row: MD
   scales with GPUs because the force and neighbor-list arrays distribute
   and the gathered positions are read-only.

   Run with: dune exec examples/md_demo.exe *)

open Mgacc_apps

let () =
  let p = { Md.atoms = 8192; max_neighbors = 32; seed = 42 } in
  let app = Md.app p in
  Format.printf "MD: %d atoms x %d neighbors@.@." p.Md.atoms p.Md.max_neighbors;

  let ref_env = App_common.sequential app in

  let machine = Mgacc.Machine.desktop () in
  let _, omp = App_common.openmp ~machine app in

  let rows = ref [ ("OpenMP(12)", omp) ] in

  let pgi_env, pgi = App_common.pgi ~machine:(Mgacc.Machine.desktop ()) app in
  App_common.check_exn app ~against:ref_env pgi_env;
  rows := ("PGI-style(1)", pgi) :: !rows;

  let _, cuda = Md.run_cuda ~machine:(Mgacc.Machine.desktop ()) p in
  rows := ("CUDA(1)", cuda) :: !rows;

  List.iter
    (fun n ->
      let env, r = App_common.proposal ~num_gpus:n ~machine:(Mgacc.Machine.desktop ()) app in
      App_common.check_exn app ~against:ref_env env;
      rows := (Printf.sprintf "Proposal(%d)" n, r) :: !rows)
    [ 1; 2 ];

  let t = Mgacc.Table.create ~headers:[ "variant"; "total"; "vs OpenMP"; "GPU-GPU bytes" ] in
  List.iter
    (fun (label, (r : Mgacc.Report.t)) ->
      Mgacc.Table.add_row t
        [
          label;
          Printf.sprintf "%.6fs" r.Mgacc.Report.total_time;
          Printf.sprintf "%.2fx" (Mgacc.Report.speedup_vs r ~baseline:omp);
          Mgacc.Bytesize.to_string r.Mgacc.Report.gpu_gpu_bytes;
        ])
    (List.rev !rows);
  Mgacc.Table.print t;
  Format.printf "@.forces verified against the sequential reference; note zero GPU-GPU bytes.@."
