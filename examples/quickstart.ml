(* Quickstart: compile and run an iterative OpenACC program, unmodified, on
   1 and 2 simulated GPUs, and compare against the OpenMP baseline.

   The loop runs many sweeps inside one data region: the data loader ships
   the vectors once, reuses the device copies for every sweep (paper
   §IV-C), and copies the result out at region exit — which is exactly why
   the GPUs win despite the PCIe cost. A single sweep would be
   transfer-bound on any machine; keep data resident.

   Run with: dune exec examples/quickstart.exe *)

let source =
  {|
void main() {
  int n = 1000000;
  int sweeps = 20;
  double x[n];
  double y[n];
  double a = 1.0002;
  int i;
  int it;
  for (i = 0; i < n; i++) {
    x[i] = 0.001 * i;
    y[i] = 1.0;
  }
  #pragma acc data copyin(x[0:n]) copy(y[0:n])
  {
    for (it = 0; it < sweeps; it++) {
      #pragma acc parallel loop localaccess(x: stride(1), y: stride(1))
      for (i = 0; i < n; i++) {
        y[i] = a * y[i] + 0.0001 * x[i];
      }
    }
  }
}
|}

let () =
  let program = Mgacc.parse_string ~name:"saxpy.c" source in

  (* Semantic reference: directives reduced to sequential execution. *)
  let ref_env = Mgacc.run_sequential program in
  let expected = Mgacc.float_results ref_env "y" in

  (* OpenMP baseline on the desktop CPU model. *)
  let machine_omp = Mgacc.Machine.desktop () in
  let _, omp = Mgacc.run_openmp ~machine:machine_omp program in

  (* The proposal on 1 and 2 simulated GPUs. *)
  let run_gpus n =
    let machine = Mgacc.Machine.desktop () in
    let config = Mgacc.Rt_config.make ~num_gpus:n machine in
    let env, report = Mgacc.run_acc ~config ~machine program in
    let got = Mgacc.float_results env "y" in
    Array.iteri
      (fun i v ->
        if Float.abs (v -. expected.(i)) > 1e-9 *. Float.max 1.0 (Float.abs expected.(i)) then
          failwith (Printf.sprintf "mismatch at %d: %f vs %f" i v expected.(i)))
      got;
    report
  in
  let r1 = run_gpus 1 in
  let r2 = run_gpus 2 in

  Format.printf "results verified against the sequential reference (1 and 2 GPUs)@.@.";
  Format.printf "%a@." Mgacc.Report.pp omp;
  Format.printf "%a@." Mgacc.Report.pp r1;
  Format.printf "%a@." Mgacc.Report.pp r2;
  Format.printf "@.speedup vs OpenMP: 1 GPU %.2fx, 2 GPUs %.2fx@."
    (Mgacc.Report.speedup_vs r1 ~baseline:omp)
    (Mgacc.Report.speedup_vs r2 ~baseline:omp)
