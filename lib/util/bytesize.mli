(** Byte-size constants and human-readable formatting. *)

val kib : int
val mib : int
val gib : int

val pp : Format.formatter -> int -> unit
(** Render a byte count like "444.9MB" (decimal point, binary units),
    matching the style of the paper's Table II. *)

val to_string : int -> string

val of_mib : float -> int
val to_mib : int -> float
val to_gib : int -> float
