(** Fixed-size mutable bitsets backed by [Bytes].

    The runtime uses these as the first-level dirty-bit arrays: one bit per
    array element, plus fast queries for "is any bit set in this range" and
    enumeration of set runs, which drive the inter-GPU transfer planning. *)

type t

val create : int -> t
(** [create n] is a bitset of [n] bits, all clear. *)

val length : t -> int
val set : t -> int -> unit
val clear : t -> int -> unit
val get : t -> int -> bool
val clear_all : t -> unit
val set_range : t -> lo:int -> hi:int -> unit
(** Set all bits in [\[lo, hi)]. *)

val any_in_range : t -> lo:int -> hi:int -> bool
(** True iff some bit in [\[lo, hi)] is set. *)

val count : t -> int
(** Number of set bits. *)

val count_in_range : t -> lo:int -> hi:int -> int

val iter_set : t -> (int -> unit) -> unit
(** Apply the callback to every set bit index, ascending. *)

val runs : t -> Interval.Set.t
(** The set bits as a normalized interval set of maximal runs. *)

val runs_in_range : t -> lo:int -> hi:int -> Interval.Set.t

val union_into : dst:t -> src:t -> unit
(** [union_into ~dst ~src] ors [src] into [dst]. Lengths must match. *)

val bytes_footprint : t -> int
(** Storage consumed, in bytes (for the memory-overhead accounting). *)
