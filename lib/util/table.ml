type align = Left | Right
type row = Cells of string list | Separator
type t = { headers : string list; ncols : int; mutable rows : row list }

let create ~headers = { headers; ncols = List.length headers; rows = [] }

let add_row t cells =
  if List.length cells <> t.ncols then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells, expected %d" (List.length cells) t.ncols);
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render ?aligns t =
  let rows = List.rev t.rows in
  let aligns =
    match aligns with
    | Some a when List.length a = t.ncols -> Array.of_list a
    | Some _ -> invalid_arg "Table.render: aligns length mismatch"
    | None -> Array.init t.ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.of_list (List.map String.length t.headers) in
  let fit = function
    | Cells cells -> List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
    | Separator -> ()
  in
  List.iter fit rows;
  let buf = Buffer.create 1024 in
  let pad i s =
    let w = widths.(i) in
    let gap = w - String.length s in
    match aligns.(i) with
    | Left -> s ^ String.make gap ' '
    | Right -> String.make gap ' ' ^ s
  in
  let emit_cells cells =
    Buffer.add_string buf "| ";
    Buffer.add_string buf (String.concat " | " (List.mapi pad cells));
    Buffer.add_string buf " |\n"
  in
  let emit_rule () =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  emit_rule ();
  emit_cells t.headers;
  emit_rule ();
  List.iter (function Cells c -> emit_cells c | Separator -> emit_rule ()) rows;
  emit_rule ();
  Buffer.contents buf

let print ?aligns t = print_string (render ?aligns t)
