let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let stddev a =
  let n = Array.length a in
  if n < 2 then 0.0
  else
    let m = mean a in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 a in
    sqrt (ss /. float_of_int (n - 1))

let minimum a = Array.fold_left min infinity a
let maximum a = Array.fold_left max neg_infinity a

let percentile a p =
  let n = Array.length a in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  let frac = rank -. floor rank in
  (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)

let geomean a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    Array.iter (fun x -> if x <= 0.0 then invalid_arg "Stats.geomean: non-positive entry") a;
    exp (Array.fold_left (fun acc x -> acc +. log x) 0.0 a /. float_of_int n)
  end

let speedup ~baseline t = baseline /. t
