(** Half-open integer intervals and normalized interval sets.

    Used throughout the runtime to describe which index ranges of an array a
    GPU reads or writes, and to coalesce transfers: a transfer plan is an
    interval set, and the bytes moved are its total length. *)

type t = { lo : int; hi : int }
(** The half-open interval [\[lo, hi)]. Empty iff [hi <= lo]. *)

val make : int -> int -> t
(** [make lo hi] is [\[lo, hi)]. Any [hi <= lo] is normalized to the canonical
    empty interval. *)

val empty : t
val is_empty : t -> bool
val length : t -> int
val contains : t -> int -> bool
val overlaps : t -> t -> bool
val intersect : t -> t -> t
val hull : t -> t -> t
(** Smallest interval containing both arguments. *)

val shift : t -> int -> t
val clamp : t -> lo:int -> hi:int -> t
(** Intersect with [\[lo, hi)]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** Normalized sets of disjoint, sorted, non-adjacent intervals. *)
module Set : sig
  type interval = t
  type t

  val empty : t
  val is_empty : t -> bool
  val of_interval : interval -> t

  val of_list : interval list -> t

  val of_sorted_disjoint : interval list -> t
  (** O(n) constructor for input that is already sorted, pairwise disjoint
      and non-adjacent (raises [Invalid_argument] otherwise). Producers
      that emit normalized runs (e.g. bitset scans) use this to avoid the
      quadratic insertion path of {!of_list}. *)

  val to_list : t -> interval list
  (** Sorted, disjoint, non-adjacent, all non-empty. *)

  val add : t -> interval -> t
  val union : t -> t -> t
  val inter : t -> t -> t
  val diff : t -> t -> t
  val total_length : t -> int
  val mem : t -> int -> bool
  val subset : t -> t -> bool
  (** [subset a b] iff every point of [a] is in [b]. *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
