let kib = 1024
let mib = 1024 * 1024
let gib = 1024 * 1024 * 1024

let to_string n =
  let f = float_of_int n in
  if n >= gib then Printf.sprintf "%.1fGB" (f /. float_of_int gib)
  else if n >= mib then Printf.sprintf "%.1fMB" (f /. float_of_int mib)
  else if n >= kib then Printf.sprintf "%.1fKB" (f /. float_of_int kib)
  else Printf.sprintf "%dB" n

let pp ppf n = Format.pp_print_string ppf (to_string n)
let of_mib f = int_of_float (f *. float_of_int mib)
let to_mib n = float_of_int n /. float_of_int mib
let to_gib n = float_of_int n /. float_of_int gib
