(** Deterministic xorshift128+ pseudo-random number generator.

    All randomness in the project flows through this module so that every
    workload generator, simulation and test is reproducible from a seed.
    The state is explicit: there is no hidden global generator. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a non-negative seed. Two generators
    built from the same seed produce identical streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument]
    if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Raises
    [Invalid_argument] if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normally distributed sample (Box-Muller). *)

val bool : t -> bool
(** Fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]. Streams of the
    parent and child are independent for practical purposes. *)
