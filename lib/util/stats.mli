(** Small descriptive-statistics helpers for benchmark reporting. *)

val mean : float array -> float
(** Arithmetic mean; 0 for an empty array. *)

val stddev : float array -> float
(** Sample standard deviation (n-1 denominator); 0 for fewer than 2 samples. *)

val minimum : float array -> float
val maximum : float array -> float

val percentile : float array -> float -> float
(** [percentile a p] with [p] in [\[0,100\]], linear interpolation between
    order statistics. Raises [Invalid_argument] on an empty array. *)

val geomean : float array -> float
(** Geometric mean; requires strictly positive entries. *)

val speedup : baseline:float -> float -> float
(** [speedup ~baseline t] is [baseline /. t]: >1 means faster than baseline. *)
