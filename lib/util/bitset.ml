type t = { bits : Bytes.t; n : int }

let create n =
  if n < 0 then invalid_arg "Bitset.create";
  { bits = Bytes.make ((n + 7) / 8) '\000'; n }

let length t = t.n

let check t i =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Bitset: index %d out of [0,%d)" i t.n)

let set t i =
  check t i;
  let b = Bytes.get_uint8 t.bits (i lsr 3) in
  Bytes.set_uint8 t.bits (i lsr 3) (b lor (1 lsl (i land 7)))

let clear t i =
  check t i;
  let b = Bytes.get_uint8 t.bits (i lsr 3) in
  Bytes.set_uint8 t.bits (i lsr 3) (b land lnot (1 lsl (i land 7)))

let get t i =
  check t i;
  Bytes.get_uint8 t.bits (i lsr 3) land (1 lsl (i land 7)) <> 0

let clear_all t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let set_range t ~lo ~hi =
  let lo = max 0 lo and hi = min t.n hi in
  (* Whole bytes in the middle are filled at once. *)
  let i = ref lo in
  while !i < hi && !i land 7 <> 0 do
    set t !i;
    incr i
  done;
  while hi - !i >= 8 do
    Bytes.set_uint8 t.bits (!i lsr 3) 0xFF;
    i := !i + 8
  done;
  while !i < hi do
    set t !i;
    incr i
  done

let any_in_range t ~lo ~hi =
  let lo = max 0 lo and hi = min t.n hi in
  let result = ref false in
  let i = ref lo in
  while (not !result) && !i < hi do
    if !i land 7 = 0 && hi - !i >= 8 then begin
      if Bytes.get_uint8 t.bits (!i lsr 3) <> 0 then result := true;
      i := !i + 8
    end
    else begin
      if get t !i then result := true;
      incr i
    end
  done;
  !result

let popcount8 =
  let tbl = Array.make 256 0 in
  for i = 1 to 255 do
    tbl.(i) <- tbl.(i lsr 1) + (i land 1)
  done;
  fun b -> tbl.(b)

let count t =
  let total = ref 0 in
  for b = 0 to Bytes.length t.bits - 1 do
    total := !total + popcount8 (Bytes.get_uint8 t.bits b)
  done;
  !total

let count_in_range t ~lo ~hi =
  let lo = max 0 lo and hi = min t.n hi in
  let total = ref 0 in
  let i = ref lo in
  while !i < hi do
    if !i land 7 = 0 && hi - !i >= 8 then begin
      total := !total + popcount8 (Bytes.get_uint8 t.bits (!i lsr 3));
      i := !i + 8
    end
    else begin
      if get t !i then incr total;
      incr i
    end
  done;
  !total

let iter_set t f =
  for b = 0 to Bytes.length t.bits - 1 do
    let byte = Bytes.get_uint8 t.bits b in
    if byte <> 0 then
      for k = 0 to 7 do
        let i = (b lsl 3) + k in
        if i < t.n && byte land (1 lsl k) <> 0 then f i
      done
  done

let runs_in_range t ~lo ~hi =
  let lo = max 0 lo and hi = min t.n hi in
  let acc = ref [] in
  let run_start = ref (-1) in
  let i = ref lo in
  while !i < hi do
    (* Skip whole clear bytes between runs. *)
    if !run_start < 0 && !i land 7 = 0 && hi - !i >= 8 && Bytes.get_uint8 t.bits (!i lsr 3) = 0
    then i := !i + 8
    else begin
      (if get t !i then begin
         if !run_start < 0 then run_start := !i
       end
       else if !run_start >= 0 then begin
         acc := Interval.make !run_start !i :: !acc;
         run_start := -1
       end);
      incr i
    end
  done;
  if !run_start >= 0 then acc := Interval.make !run_start hi :: !acc;
  (* The scan emits sorted, disjoint, non-adjacent runs by construction. *)
  Interval.Set.of_sorted_disjoint (List.rev !acc)

let runs t = runs_in_range t ~lo:0 ~hi:t.n

let union_into ~dst ~src =
  if dst.n <> src.n then invalid_arg "Bitset.union_into: length mismatch";
  for b = 0 to Bytes.length dst.bits - 1 do
    Bytes.set_uint8 dst.bits b (Bytes.get_uint8 dst.bits b lor Bytes.get_uint8 src.bits b)
  done

let bytes_footprint t = Bytes.length t.bits
