type t = { lo : int; hi : int }

let empty = { lo = 0; hi = 0 }
let make lo hi = if hi <= lo then empty else { lo; hi }
let is_empty t = t.hi <= t.lo
let length t = if is_empty t then 0 else t.hi - t.lo
let contains t i = i >= t.lo && i < t.hi
let overlaps a b = (not (is_empty a)) && (not (is_empty b)) && a.lo < b.hi && b.lo < a.hi
let intersect a b = make (max a.lo b.lo) (min a.hi b.hi)

let hull a b =
  if is_empty a then b
  else if is_empty b then a
  else make (min a.lo b.lo) (max a.hi b.hi)

let shift t d = if is_empty t then empty else make (t.lo + d) (t.hi + d)
let clamp t ~lo ~hi = intersect t (make lo hi)
let equal a b = (is_empty a && is_empty b) || (a.lo = b.lo && a.hi = b.hi)

let pp ppf t =
  if is_empty t then Format.fprintf ppf "[)"
  else Format.fprintf ppf "[%d,%d)" t.lo t.hi

module Set = struct
  type interval = t
  type nonrec t = t list
  (* Invariant: sorted by [lo], pairwise disjoint and non-adjacent,
     every element non-empty. *)

  (* The outer interval operations, captured before Set shadows the names. *)
  let ivl_is_empty = is_empty
  let ivl_length = length
  let ivl_contains = contains

  let empty = []
  let is_empty t = t = []
  let of_interval i = if ivl_is_empty i then [] else [ i ]
  let to_list t = t

  let add t i =
    if ivl_length i = 0 then t
    else
      (* Merge [i] with every interval it touches (overlap or adjacency). *)
      let rec insert acc = function
        | [] -> List.rev (i :: acc) |> fun l -> merge_from l
        | x :: rest ->
            if x.hi < i.lo then insert (x :: acc) rest
            else if i.hi < x.lo then List.rev_append acc (i :: x :: rest) |> merge_from
            else
              let merged = { lo = min x.lo i.lo; hi = max x.hi i.hi } in
              List.rev_append acc (merged :: rest) |> merge_from
      and merge_from = function
        | x :: y :: rest when y.lo <= x.hi -> merge_from ({ lo = x.lo; hi = max x.hi y.hi } :: rest)
        | x :: rest -> x :: merge_from rest
        | [] -> []
      in
      insert [] t

  let of_list l = List.fold_left add empty l

  let of_sorted_disjoint l =
    let rec validate = function
      | a :: (b :: _ as rest) ->
          if ivl_is_empty a then invalid_arg "Interval.Set.of_sorted_disjoint: empty interval";
          if a.hi >= b.lo then invalid_arg "Interval.Set.of_sorted_disjoint: not normalized";
          validate rest
      | [ a ] -> if ivl_is_empty a then invalid_arg "Interval.Set.of_sorted_disjoint: empty interval"
      | [] -> ()
    in
    validate l;
    l
  let union a b = List.fold_left add a b

  let inter a b =
    let rec go a b acc =
      match (a, b) with
      | [], _ | _, [] -> List.rev acc
      | x :: xs, y :: ys ->
          let i = intersect x y in
          let acc = if ivl_is_empty i then acc else i :: acc in
          if x.hi <= y.hi then go xs b acc else go a ys acc
    in
    go a b []

  let diff a b =
    let subtract_one x cut =
      (* x minus cut, as 0..2 intervals. *)
      if not (overlaps x cut) then [ x ]
      else
        let left = make x.lo cut.lo and right = make cut.hi x.hi in
        List.filter (fun i -> not (ivl_is_empty i)) [ left; right ]
    in
    List.fold_left (fun acc cut -> List.concat_map (fun x -> subtract_one x cut) acc) a b

  let total_length t = List.fold_left (fun n i -> n + ivl_length i) 0 t
  let mem t i = List.exists (fun x -> ivl_contains x i) t
  let subset a b = is_empty (diff a b)
  let equal a b = a = b

  let pp ppf t =
    Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ";") pp) t
end
