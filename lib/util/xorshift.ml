type t = { mutable s0 : int64; mutable s1 : int64 }

let splitmix64 state =
  (* SplitMix64 step, used only to expand the seed into initial state. *)
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  if seed < 0 then invalid_arg "Xorshift.create: negative seed";
  let state = ref (Int64.of_int (seed + 1)) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  { s0; s1 }

let copy t = { s0 = t.s0; s1 = t.s1 }

let next t =
  let open Int64 in
  let s1 = t.s0 and s0 = t.s1 in
  t.s0 <- s0;
  let s1 = logxor s1 (shift_left s1 23) in
  t.s1 <- logxor (logxor (logxor s1 s0) (shift_right_logical s1 18)) (shift_right_logical s0 5);
  add t.s1 s0

let int t bound =
  if bound <= 0 then invalid_arg "Xorshift.int: bound <= 0";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Xorshift.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  (* 53 significant bits, the double mantissa width. *)
  bound *. (v /. 9007199254740992.0)

let gaussian t ~mean ~stddev =
  let rec draw () =
    let u = float t 1.0 in
    if u = 0.0 then draw () else u
  in
  let u1 = draw () and u2 = float t 1.0 in
  mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let bool t = Int64.logand (next t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t =
  let seed = Int64.to_int (Int64.logand (next t) 0x3FFFFFFFFFFFFFL) in
  create seed
