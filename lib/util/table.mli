(** ASCII table rendering for the benchmark harness.

    The bench executable prints the same rows and series as the paper's
    tables and figures; this module renders them with aligned columns. *)

type align = Left | Right

type t

val create : headers:string list -> t
(** A table with the given column headers. Column count is fixed from here. *)

val add_row : t -> string list -> unit
(** Append a row. Raises [Invalid_argument] on column-count mismatch. *)

val add_separator : t -> unit
(** Append a horizontal rule between the surrounding rows. *)

val render : ?aligns:align list -> t -> string
(** Render with a header rule. [aligns] defaults to left for the first
    column and right for the rest. *)

val print : ?aligns:align list -> t -> unit
(** [render] to stdout followed by a newline. *)
