(** Device-memory pressure accounting for the fleet.

    The controller tracks a single byte budget (the job-usable fraction
    of the fleet's device memory) against two ledgers: bytes reserved by
    {e active} jobs, and bytes pinned by {e warm} pools — finished jobs'
    device-resident darrays kept alive for a possible resubmission. A
    new job is admitted when its footprint fits the free budget, evicting
    warm pools oldest-first (each eviction runs its spill thunk, which
    writes dirty data back to the host and frees the device storage). *)

module Darray = Mgacc_runtime.Darray

type t

val create : budget:int -> t
(** Raises [Invalid_argument] unless [budget > 0]. *)

type decision =
  | Admitted of Darray.xfer list
      (** reserved; the transfers are the evictions' spill traffic, for
          the caller to charge to the simulated fabric *)
  | Must_wait  (** doesn't fit until an active job releases its bytes *)
  | Impossible  (** larger than the whole budget — can never run *)

val admit : t -> job:int -> bytes:int -> decision

val release : t -> job:int -> warm:(unit -> Darray.xfer list) option -> unit
(** End job [job]'s reservation. With [warm = Some spill] the bytes stay
    reserved as a warm-pool entry that [admit] may later evict via
    [spill]; with [None] they free immediately. Raises
    [Invalid_argument] if the job is not active. *)

val active_bytes : t -> int
val warm_bytes : t -> int
val reserved : t -> int
val free_bytes : t -> int
val warm_count : t -> int
val evictions : t -> int
val spilled_bytes : t -> int
(** Dirty bytes written back by evictions so far (clean pools spill for
    free — writeback semantics). *)
