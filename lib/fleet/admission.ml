module Darray = Mgacc_runtime.Darray

type warm = { w_job : int; w_bytes : int; w_spill : unit -> Darray.xfer list }

type t = {
  budget : int;
  mutable active : (int * int) list;  (** (job id, reserved bytes), insertion order *)
  mutable warm : warm list;  (** finished jobs' resident data, oldest first *)
  mutable evictions : int;
  mutable spilled_bytes : int;  (** dirty bytes written back by evictions *)
}

let create ~budget =
  if budget <= 0 then invalid_arg "Admission.create: budget must be positive";
  { budget; active = []; warm = []; evictions = 0; spilled_bytes = 0 }

let active_bytes t = List.fold_left (fun acc (_, b) -> acc + b) 0 t.active
let warm_bytes t = List.fold_left (fun acc w -> acc + w.w_bytes) 0 t.warm
let reserved t = active_bytes t + warm_bytes t
let free_bytes t = t.budget - reserved t
let warm_count t = List.length t.warm
let evictions t = t.evictions
let spilled_bytes t = t.spilled_bytes

type decision = Admitted of Darray.xfer list | Must_wait | Impossible

let evict_oldest t =
  match t.warm with
  | [] -> []
  | w :: rest ->
      t.warm <- rest;
      t.evictions <- t.evictions + 1;
      let xfers = w.w_spill () in
      t.spilled_bytes <-
        t.spilled_bytes + List.fold_left (fun acc (x : Darray.xfer) -> acc + x.Darray.bytes) 0 xfers;
      xfers

let admit t ~job ~bytes =
  if bytes < 0 then invalid_arg "Admission.admit: negative footprint";
  if bytes > t.budget then Impossible
  else begin
    (* Evict warm pools oldest-first until the newcomer fits. *)
    let spills = ref [] in
    while free_bytes t < bytes && t.warm <> [] do
      spills := !spills @ evict_oldest t
    done;
    if free_bytes t < bytes then Must_wait
    else begin
      t.active <- t.active @ [ (job, bytes) ];
      Admitted !spills
    end
  end

let release t ~job ~warm =
  let bytes =
    match List.assoc_opt job t.active with
    | Some b -> b
    | None -> invalid_arg (Printf.sprintf "Admission.release: job %d not active" job)
  in
  t.active <- List.filter (fun (j, _) -> j <> job) t.active;
  match warm with
  | None -> ()
  | Some spill ->
      (* The reservation converts into a warm-pool entry at its reserved
         size (the ledger stays conservative even if the job's actual
         residency came in under the estimate). *)
      t.warm <- t.warm @ [ { w_job = job; w_bytes = bytes; w_spill = spill } ]
