(** A fleet job: one program submission by one tenant. *)

type spec = {
  id : int;  (** unique within a trace; ties in every ordering break on id *)
  tenant : string;
  name : string;  (** display name (the program's basename) *)
  source : string;  (** program text — compiled via the plan cache *)
  submit : float;  (** simulated arrival time, seconds *)
}

val make : id:int -> tenant:string -> name:string -> source:string -> submit:float -> spec
(** Raises [Invalid_argument] on a negative submit time. *)

val load_trace : string -> spec list
(** Parse a job-trace file: one job per line as
    ["<submit-seconds> <tenant> <program path>"], [#] comments and blank
    lines ignored, program paths resolved relative to the trace file.
    Jobs are numbered in file order. Raises [Failure] on a malformed
    line and [Sys_error] on unreadable files. *)
