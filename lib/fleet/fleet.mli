(** Multi-tenant fleet scheduler: admits a queue of compiled programs
    onto one shared simulated machine.

    Jobs arrive at their submit times, wait in an admission queue, and
    execute as re-entrant runtime {!Mgacc_runtime.Session}s on the shared
    [Machine]/[Fabric] — contention between jobs emerges from the
    machine's timelines. Admission is gated by a device-memory ledger
    ({!Admission}): finished jobs may keep their darrays device-resident
    (warm pools) until pressure from a newcomer evicts them, spilling
    dirty data back to the host. Program plans come from a compile-once
    {!Plan_cache} keyed by source digest. *)

module Machine = Mgacc_gpusim.Machine
module Report = Mgacc_runtime.Report

type policy =
  | Fifo  (** strict submit order *)
  | Sjf  (** shortest job first: measured duration, else roofline estimate *)
  | Fair  (** least-service tenant first (start-time fair queueing) *)

val policy_of_string : string -> (policy, string) result
val policy_name : policy -> string

exception Deadlock of { job : int; reason : string }
(** Admission can never make progress (a job larger than the whole
    budget, or queued past the watchdog). Registered with a printer so
    an uncaught deadlock names the job loudly. *)

type config = {
  machine : Machine.t;
  policy : policy;
  num_gpus : int;  (** GPUs each job partitions across *)
  max_concurrent : int;
  mem_budget : int;  (** admission ledger budget, bytes *)
  keep_warm : bool;  (** keep finished jobs' darrays device-resident *)
  watchdog_seconds : float;  (** max simulated queue wait before failing loudly *)
  default_footprint : int;  (** ledger bytes for jobs never measured *)
}

val configure :
  ?policy:policy ->
  ?num_gpus:int ->
  ?max_concurrent:int ->
  ?mem_budget:int ->
  ?keep_warm:bool ->
  ?watchdog_seconds:float ->
  ?default_footprint:int ->
  Machine.t ->
  config
(** Defaults: FIFO, all GPUs, one job at a time, the machine's total
    device memory as budget, warm pools on, a practically-infinite
    watchdog, 16 MB default footprint. *)

type job_result = {
  spec : Job.spec;
  admit_time : float;
  finish_time : float;
  cache_hit : bool;
  estimate : float;  (** the duration estimate admission ranked it by *)
  report : Report.t;  (** per-job runtime report, queue wait included *)
}

val wait_of : job_result -> float
val latency_of : job_result -> float

type tenant_row = {
  tenant : string;
  t_jobs : int;
  t_mean_wait : float;
  t_mean_slowdown : float;
  t_service : float;  (** total execution seconds consumed *)
}

type stats = {
  s_policy : policy;
  job_count : int;
  makespan : float;
  mean_wait : float;
  p95_latency : float;
  throughput : float;  (** jobs per simulated second *)
  fairness : float;  (** Jain's index over per-tenant mean slowdowns *)
  cache_hits : int;
  cache_misses : int;
  evictions : int;
  spilled_bytes : int;
}

type outcome = {
  config : config;
  stats : stats;
  tenants : tenant_row list;
  jobs : job_result list;
  metrics : Mgacc_obs.Metrics.t;
      (** fleet-level registry sampled on admission-loop events: queue
          depth, resident bytes, per-tenant service seconds, eviction and
          spill counters, plus the JSONL event log (submit/admit/finish) *)
  trace : Mgacc_sim.Trace.t;
      (** fleet-level Gantt: one row per tenant (queued span flowing into
          the run span) and one per GPU, rebuilt from the job results *)
}

val run : ?cache:Plan_cache.t -> config -> Job.spec list -> outcome
(** Replay the job list to completion (the machine is reset first). Pass
    [cache] to share compiled plans and measured profiles across fleets
    (e.g. to compare policies on a warmed cache). Raises {!Deadlock} when
    admission wedges. *)

val static_estimate : Machine.t -> num_gpus:int -> Mgacc_translator.Program_plan.t -> float
(** The SJF fallback: summed roofline duration of the program's kernels. *)

val stats_to_json : stats -> string
val to_json : outcome -> string
val pp_stats : Format.formatter -> stats -> unit
val pp_outcome : Format.formatter -> outcome -> unit
