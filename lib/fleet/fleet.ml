module Machine = Mgacc_gpusim.Machine
module Device = Mgacc_gpusim.Device
module Spec = Mgacc_gpusim.Spec
module Fabric = Mgacc_gpusim.Fabric
module Session = Mgacc_runtime.Session
module Acc_runtime = Mgacc_runtime.Acc_runtime
module Rt_config = Mgacc_runtime.Rt_config
module Profiler = Mgacc_runtime.Profiler
module Report = Mgacc_runtime.Report
module Darray = Mgacc_runtime.Darray
module Program_plan = Mgacc_translator.Program_plan
module Kernel_plan = Mgacc_translator.Kernel_plan
module Loop_info = Mgacc_analysis.Loop_info
module Cost_model = Mgacc_sched.Cost_model
module Ast = Mgacc_minic.Ast
module Metrics = Mgacc_obs.Metrics
module Trace = Mgacc_sim.Trace

let log_src = Logs.Src.create "mgacc.fleet" ~doc:"multi-tenant fleet scheduler"

module Log = (val Logs.src_log log_src : Logs.LOG)

type policy = Fifo | Sjf | Fair

let policy_of_string = function
  | "fifo" -> Ok Fifo
  | "sjf" -> Ok Sjf
  | "fair" -> Ok Fair
  | other -> Error (Printf.sprintf "unknown policy %S (fifo|sjf|fair)" other)

let policy_name = function Fifo -> "fifo" | Sjf -> "sjf" | Fair -> "fair"

exception Deadlock of { job : int; reason : string }

let () =
  Printexc.register_printer (function
    | Deadlock { job; reason } ->
        Some (Printf.sprintf "fleet admission deadlock: job %d: %s" job reason)
    | _ -> None)

type config = {
  machine : Machine.t;
  policy : policy;
  num_gpus : int;  (** GPUs each job partitions across *)
  max_concurrent : int;
  mem_budget : int;  (** admission ledger budget, bytes *)
  keep_warm : bool;  (** keep finished jobs' darrays device-resident *)
  watchdog_seconds : float;  (** max simulated queue wait before failing loudly *)
  default_footprint : int;  (** ledger bytes for jobs never measured *)
}

let device_memory_bytes machine =
  let total = ref 0 in
  for g = 0 to Machine.num_gpus machine - 1 do
    total := !total + (Machine.device machine g).Device.spec.Spec.mem_capacity
  done;
  !total

let configure ?(policy = Fifo) ?num_gpus ?(max_concurrent = 1) ?mem_budget ?(keep_warm = true)
    ?(watchdog_seconds = 1e9) ?(default_footprint = 16 * 1024 * 1024) machine =
  let available = Machine.num_gpus machine in
  let num_gpus = Option.value ~default:available num_gpus in
  if num_gpus < 1 || num_gpus > available then invalid_arg "Fleet.configure: bad num_gpus";
  if max_concurrent < 1 then invalid_arg "Fleet.configure: max_concurrent < 1";
  if watchdog_seconds <= 0.0 then invalid_arg "Fleet.configure: watchdog must be positive";
  let mem_budget = Option.value ~default:(device_memory_bytes machine) mem_budget in
  if mem_budget <= 0 then invalid_arg "Fleet.configure: mem_budget must be positive";
  if default_footprint <= 0 then invalid_arg "Fleet.configure: default_footprint must be positive";
  { machine; policy; num_gpus; max_concurrent; mem_budget; keep_warm; watchdog_seconds;
    default_footprint }
[@@ocamlformat "disable"]

(* ---------------- SJF roofline estimate ---------------- *)

let static_trip_count (p : Kernel_plan.t) =
  let loop = p.Kernel_plan.loop in
  match (loop.Loop_info.lower.Ast.edesc, loop.Loop_info.upper.Ast.edesc) with
  | Ast.Int_lit lo, Ast.Int_lit hi when hi > lo -> hi - lo
  | _ -> 65536 (* runtime-sized loop: a nominal count keeps ranking by cost shape *)

let static_estimate machine ~num_gpus plans =
  List.fold_left
    (fun acc p ->
      acc
      +. Cost_model.estimate_launch_seconds machine ~num_gpus ~iterations:(static_trip_count p)
           ~threads_per_iter:(Kernel_plan.thread_multiplier p)
           ~iter_cost:(Kernel_plan.static_iter_cost p))
    0.0 (Program_plan.all_plans plans)

(* ---------------- per-job bookkeeping ---------------- *)

type job_result = {
  spec : Job.spec;
  admit_time : float;
  finish_time : float;
  cache_hit : bool;
  estimate : float;  (** the duration estimate admission ranked it by *)
  report : Report.t;
}

let wait_of r = r.admit_time -. r.spec.Job.submit
let latency_of r = r.finish_time -. r.spec.Job.submit

let slowdown_of r =
  let exec = Float.max 1e-12 (r.finish_time -. r.admit_time) in
  latency_of r /. exec

type tenant_row = {
  tenant : string;
  t_jobs : int;
  t_mean_wait : float;
  t_mean_slowdown : float;
  t_service : float;  (** total execution seconds consumed *)
}

type stats = {
  s_policy : policy;
  job_count : int;
  makespan : float;
  mean_wait : float;
  p95_latency : float;
  throughput : float;  (** jobs per simulated second *)
  fairness : float;  (** Jain's index over per-tenant mean slowdowns *)
  cache_hits : int;
  cache_misses : int;
  evictions : int;
  spilled_bytes : int;
}

type outcome = {
  config : config;
  stats : stats;
  tenants : tenant_row list;
  jobs : job_result list;
  metrics : Metrics.t;
  trace : Trace.t;
}

(* Fleet-level Gantt: one row per tenant (queued span, then run span,
   linked by a flow edge) plus one row per GPU occupied by each job. The
   spans are rebuilt from the job results, so the fleet trace is a
   schedule view — per-op detail stays in the machine trace. *)
let fleet_trace config jobs =
  let tr = Trace.create () in
  List.iter
    (fun r ->
      let row = "tenant:" ^ r.spec.Job.tenant in
      let tag = Printf.sprintf "%s#%d" r.spec.Job.name r.spec.Job.id in
      let queued =
        if r.admit_time > r.spec.Job.submit then
          Some
            (Trace.record tr ~resource:row ~category:Trace.Overhead ~label:("queued:" ^ tag)
               ~start:r.spec.Job.submit ~finish:r.admit_time ~bytes:0 ())
        else None
      in
      let run_id =
        Trace.record tr
          ~causes:(Option.to_list queued)
          ~resource:row ~category:Trace.Kernel ~label:("run:" ^ tag) ~start:r.admit_time
          ~finish:r.finish_time ~bytes:0 ()
      in
      for g = 0 to config.num_gpus - 1 do
        ignore
          (Trace.record tr ~causes:[ run_id ]
             ~resource:(Printf.sprintf "gpu%d" g)
             ~category:Trace.Kernel ~label:tag ~start:r.admit_time ~finish:r.finish_time ~bytes:0
             ())
      done)
    jobs;
  tr

(* Jain's fairness index J(x) = (Σx)² / (n·Σx²): 1 when all tenants see
   the same mean slowdown, 1/n when one tenant absorbs all of it. *)
let jain = function
  | [] -> 1.0
  | xs ->
      let n = float_of_int (List.length xs) in
      let s = List.fold_left ( +. ) 0.0 xs in
      let s2 = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
      if s2 <= 0.0 then 1.0 else s *. s /. (n *. s2)

let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
      let n = List.length sorted in
      let idx = min (n - 1) (max 0 (int_of_float (Float.ceil (p *. float_of_int n)) - 1)) in
      List.nth sorted idx

(* ---------------- the admission/execution loop ---------------- *)

type running = { r_spec : Job.spec; r_admit : float; r_finish : float; r_session : Session.t }

let run ?cache config (specs : Job.spec list) =
  let cache = match cache with Some c -> c | None -> Plan_cache.create () in
  Machine.reset config.machine;
  let hits0 = Plan_cache.hits cache and misses0 = Plan_cache.misses cache in
  let arrivals =
    ref (List.sort (fun (a : Job.spec) b -> compare (a.Job.submit, a.Job.id) (b.submit, b.id)) specs)
  in
  let queue = ref [] in
  let running = ref [] in
  let done_jobs = ref [] in
  let now = ref 0.0 in
  let service = Hashtbl.create 8 in
  (* tenant -> execution seconds consumed *)
  let service_of tenant = Option.value ~default:0.0 (Hashtbl.find_opt service tenant) in
  let job_meta = Hashtbl.create 16 in
  (* job id -> (entry, cache_hit, estimate): each job consults the plan
     cache exactly once, whichever policy looks first *)
  let meta_of (j : Job.spec) =
    match Hashtbl.find_opt job_meta j.Job.id with
    | Some m -> m
    | None ->
        let entry, hit =
          Plan_cache.lookup ~machine:config.machine.Machine.name ~name:j.Job.name cache
            j.Job.source
        in
        let estimate =
          match entry.Plan_cache.measured_seconds with
          | Some s -> s
          | None -> static_estimate config.machine ~num_gpus:config.num_gpus entry.Plan_cache.plans
        in
        let m = (entry, hit, estimate) in
        Hashtbl.replace job_meta j.Job.id m;
        m
  in
  let footprint entry =
    match entry.Plan_cache.footprint_bytes with
    | Some b -> max 1 b
    | None -> config.default_footprint
  in
  let pick jobs =
    let key (j : Job.spec) =
      match config.policy with
      | Fifo -> (0.0, j.Job.submit, float_of_int j.Job.id)
      | Sjf ->
          let _, _, estimate = meta_of j in
          (estimate, j.Job.submit, float_of_int j.Job.id)
      | Fair -> (service_of j.Job.tenant, j.Job.submit, float_of_int j.Job.id)
    in
    match jobs with
    | [] -> None
    | first :: rest ->
        Some (List.fold_left (fun best j -> if key j < key best then j else best) first rest)
  in
  let adm = Admission.create ~budget:config.mem_budget in
  (* Observability: a metrics registry sampled on admission-loop events.
     Everything here observes the schedule — it never influences it. *)
  let m = Metrics.create () in
  let g_queue = Metrics.gauge m ~help:"Jobs waiting for admission" "fleet_queue_depth" in
  let h_queue =
    Metrics.histogram m ~help:"Queue depth sampled at admission-loop events"
      ~buckets:[| 0.; 1.; 2.; 5.; 10.; 20.; 50. |] "fleet_queue_depth_samples"
  in
  let g_resident =
    Metrics.gauge m ~help:"Device bytes reserved (running jobs + warm pools)" "fleet_resident_bytes"
  in
  let h_wait = Metrics.histogram m ~help:"Seconds jobs waited before admission" "fleet_wait_seconds" in
  let c_evict =
    Metrics.counter m ~help:"Warm pools evicted under memory pressure" "fleet_evictions_total"
  in
  let c_spill =
    Metrics.counter m ~help:"Dirty bytes evictions wrote back to the host" "fleet_spilled_bytes_total"
  in
  let c_done = Metrics.counter m ~help:"Jobs run to completion" "fleet_jobs_completed_total" in
  let service_counter tenant =
    Metrics.counter m ~help:"Execution seconds consumed per tenant"
      ~labels:[ ("tenant", tenant) ] "fleet_tenant_service_seconds_total"
  in
  let sample_ledger () =
    Metrics.set g_resident (float_of_int (Admission.active_bytes adm + Admission.warm_bytes adm))
  in
  let sample_queue () =
    let d = float_of_int (List.length !queue) in
    Metrics.set g_queue d;
    Metrics.observe h_queue d
  in
  let prev_evictions = ref 0 and prev_spilled = ref 0 in
  let sync_evictions () =
    let e = Admission.evictions adm and s = Admission.spilled_bytes adm in
    Metrics.inc c_evict (float_of_int (e - !prev_evictions));
    Metrics.inc c_spill (float_of_int (s - !prev_spilled));
    prev_evictions := e;
    prev_spilled := s
  in
  let charge_spills xfers =
    if xfers <> [] then begin
      let reqs =
        List.map
          (fun (x : Darray.xfer) ->
            { Fabric.direction = x.Darray.dir; bytes = x.Darray.bytes; ready = !now; tag = x.Darray.tag })
          xfers
      in
      ignore (Machine.run_transfers config.machine ~label:"fleet:spill" reqs)
    end
  in
  let execute (j : Job.spec) entry =
    let rt =
      Rt_config.make ~num_gpus:config.num_gpus ~keep_resident:config.keep_warm config.machine
    in
    let session = Session.create ~tenant:j.Job.tenant ~start:!now rt entry.Plan_cache.plans in
    Session.set_queue_seconds session (!now -. j.Job.submit);
    ignore (Acc_runtime.execute session (Program_plan.program entry.Plan_cache.plans));
    let finish = Session.now session in
    let exec_seconds = finish -. !now in
    Hashtbl.replace service j.Job.tenant (service_of j.Job.tenant +. exec_seconds);
    Metrics.inc (service_counter j.Job.tenant) exec_seconds;
    Plan_cache.record_measurement entry ~seconds:exec_seconds
      ~footprint_bytes:(if config.keep_warm then Session.resident_bytes session else 0);
    Log.debug (fun m ->
        m "job %d (%s/%s): admitted at %.6fs, finished at %.6fs" j.Job.id j.Job.tenant j.Job.name
          !now finish);
    { r_spec = j; r_admit = !now; r_finish = finish; r_session = session }
  in
  let rec admit_ready () =
    if List.length !running < config.max_concurrent then
      match pick !queue with
      | None -> ()
      | Some j -> (
          let entry, _, _ = meta_of j in
          match Admission.admit adm ~job:j.Job.id ~bytes:(footprint entry) with
          | Admission.Impossible ->
              raise
                (Deadlock
                   {
                     job = j.Job.id;
                     reason =
                       Printf.sprintf "footprint %d bytes exceeds the fleet budget (%d bytes)"
                         (footprint entry) config.mem_budget;
                   })
          | Admission.Must_wait ->
              if !running = [] then
                raise
                  (Deadlock
                     {
                       job = j.Job.id;
                       reason =
                         Printf.sprintf
                           "cannot fit %d bytes (free %d) and no running job will release any"
                           (footprint entry) (Admission.free_bytes adm);
                     })
              (* else: wait for a completion to free its reservation *)
          | Admission.Admitted spills ->
              charge_spills spills;
              let r = execute j entry in
              queue := List.filter (fun (q : Job.spec) -> q.Job.id <> j.Job.id) !queue;
              running := r :: !running;
              Metrics.event m ~time:!now
                ~fields:[ ("job", float_of_int j.Job.id); ("wait", !now -. j.Job.submit) ]
                "admit";
              Metrics.observe h_wait (!now -. j.Job.submit);
              sync_evictions ();
              sample_ledger ();
              sample_queue ();
              admit_ready ())
  in
  let rec step () =
    (* pull due arrivals into the ready queue *)
    let due, later = List.partition (fun (j : Job.spec) -> j.Job.submit <= !now) !arrivals in
    arrivals := later;
    queue := !queue @ due;
    List.iter
      (fun (j : Job.spec) ->
        Metrics.event m ~time:j.Job.submit ~fields:[ ("job", float_of_int j.Job.id) ] "submit")
      due;
    if due <> [] then sample_queue ();
    admit_ready ();
    (* simulated-time watchdog: a job queued past the limit means the
       service is wedged — fail loudly with the job id *)
    List.iter
      (fun (j : Job.spec) ->
        if !now -. j.Job.submit > config.watchdog_seconds then
          raise
            (Deadlock
               {
                 job = j.Job.id;
                 reason =
                   Printf.sprintf "queued %.3fs, past the %.3fs watchdog" (!now -. j.Job.submit)
                     config.watchdog_seconds;
               }))
      !queue;
    (* advance to the next event: an arrival or a completion *)
    let next_arrival = match !arrivals with [] -> None | j :: _ -> Some j.Job.submit in
    let next_finish =
      List.fold_left
        (fun acc r -> match acc with None -> Some r.r_finish | Some t -> Some (Float.min t r.r_finish))
        None !running
    in
    match (next_arrival, next_finish) with
    | None, None ->
        (match !queue with
        | [] -> () (* drained *)
        | j :: _ ->
            raise
              (Deadlock { job = j.Job.id; reason = "jobs queued but nothing running or arriving" }))
    | _ ->
        let tnext =
          match (next_arrival, next_finish) with
          | Some a, Some f -> Float.min a f
          | Some a, None -> a
          | None, Some f -> f
          | None, None -> assert false
        in
        now := Float.max !now tnext;
        let completed, still =
          List.partition (fun r -> r.r_finish <= !now +. 1e-12) !running
        in
        running := still;
        List.iter
          (fun r ->
            let warm =
              if config.keep_warm then
                Some
                  (fun () ->
                    let xfers = Session.spill_all r.r_session in
                    let bytes =
                      List.fold_left (fun acc (x : Darray.xfer) -> acc + x.Darray.bytes) 0 xfers
                    in
                    Profiler.add_spill (Session.profiler r.r_session) ~bytes;
                    xfers)
              else None
            in
            Admission.release adm ~job:r.r_spec.Job.id ~warm;
            Metrics.event m ~time:r.r_finish
              ~fields:[ ("job", float_of_int r.r_spec.Job.id) ]
              "finish";
            Metrics.inc c_done 1.0;
            sample_ledger ();
            done_jobs := r :: !done_jobs)
          (List.sort (fun a b -> compare (a.r_finish, a.r_spec.Job.id) (b.r_finish, b.r_spec.Job.id))
             completed);
        step ()
  in
  step ();
  (* Reports are snapshotted only now, so post-completion evictions of a
     job's warm pool still land in its own spill counters. *)
  let jobs =
    List.rev_map
      (fun r ->
        let _, hit, estimate = meta_of r.r_spec in
        let variant = Printf.sprintf "fleet/%s(%d)" (policy_name config.policy) config.num_gpus in
        {
          spec = r.r_spec;
          admit_time = r.r_admit;
          finish_time = r.r_finish;
          cache_hit = hit;
          estimate;
          report = Acc_runtime.report ~variant r.r_session;
        })
      !done_jobs
    |> List.sort (fun a b -> compare a.spec.Job.id b.spec.Job.id)
  in
  let job_count = List.length jobs in
  let makespan =
    match jobs with
    | [] -> 0.0
    | j :: _ ->
        let first_submit =
          List.fold_left (fun acc r -> Float.min acc r.spec.Job.submit) j.spec.Job.submit jobs
        in
        let last_finish = List.fold_left (fun acc r -> Float.max acc r.finish_time) 0.0 jobs in
        last_finish -. first_submit
  in
  let mean xs = match xs with [] -> 0.0 | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
  let tenants =
    List.sort_uniq compare (List.map (fun r -> r.spec.Job.tenant) jobs)
    |> List.map (fun tenant ->
           let mine = List.filter (fun r -> r.spec.Job.tenant = tenant) jobs in
           {
             tenant;
             t_jobs = List.length mine;
             t_mean_wait = mean (List.map wait_of mine);
             t_mean_slowdown = mean (List.map slowdown_of mine);
             t_service =
               List.fold_left (fun acc r -> acc +. (r.finish_time -. r.admit_time)) 0.0 mine;
           })
  in
  let stats =
    {
      s_policy = config.policy;
      job_count;
      makespan;
      mean_wait = mean (List.map wait_of jobs);
      p95_latency = percentile 0.95 (List.map latency_of jobs);
      throughput = (if makespan > 0.0 then float_of_int job_count /. makespan else 0.0);
      fairness = jain (List.map (fun t -> t.t_mean_slowdown) tenants);
      cache_hits = Plan_cache.hits cache - hits0;
      cache_misses = Plan_cache.misses cache - misses0;
      evictions = Admission.evictions adm;
      spilled_bytes = Admission.spilled_bytes adm;
    }
  in
  sync_evictions ();
  sample_ledger ();
  { config; stats; tenants; jobs; metrics = m; trace = fleet_trace config jobs }

(* ---------------- rendering ---------------- *)

let stats_to_json s =
  Printf.sprintf
    {|{"policy":"%s","job_count":%d,"makespan_seconds":%.9g,"mean_wait_seconds":%.9g,"p95_latency_seconds":%.9g,"throughput_jobs_per_s":%.9g,"fairness":%.9g,"cache_hits":%d,"cache_misses":%d,"evictions":%d,"spilled_bytes":%d}|}
    (policy_name s.s_policy) s.job_count s.makespan s.mean_wait s.p95_latency s.throughput
    s.fairness s.cache_hits s.cache_misses s.evictions s.spilled_bytes

let to_json o =
  let tenants =
    String.concat ","
      (List.map
         (fun t ->
           Printf.sprintf
             {|{"tenant":"%s","jobs":%d,"mean_wait_seconds":%.9g,"mean_slowdown":%.9g,"service_seconds":%.9g}|}
             t.tenant t.t_jobs t.t_mean_wait t.t_mean_slowdown t.t_service)
         o.tenants)
  in
  let jobs =
    String.concat ","
      (List.map
         (fun r ->
           Printf.sprintf
             {|{"id":%d,"tenant":"%s","name":"%s","submit":%.9g,"admit":%.9g,"finish":%.9g,"wait_seconds":%.9g,"latency_seconds":%.9g,"cache_hit":%b,"report":%s}|}
             r.spec.Job.id r.spec.Job.tenant r.spec.Job.name r.spec.Job.submit r.admit_time
             r.finish_time (wait_of r) (latency_of r) r.cache_hit (Report.to_json r.report))
         o.jobs)
  in
  Printf.sprintf {|{"machine":"%s","gpus":%d,"stats":%s,"tenants":[%s],"jobs":[%s]}|}
    o.config.machine.Machine.name o.config.num_gpus (stats_to_json o.stats) tenants jobs

let pp_stats ppf s =
  Format.fprintf ppf
    "%s: %d jobs, makespan=%.6fs wait(mean)=%.6fs p95-latency=%.6fs throughput=%.3f jobs/s \
     fairness=%.3f cache %d/%d evictions=%d spilled=%s"
    (policy_name s.s_policy) s.job_count s.makespan s.mean_wait s.p95_latency s.throughput
    s.fairness s.cache_hits
    (s.cache_hits + s.cache_misses)
    s.evictions
    (Mgacc_util.Bytesize.to_string s.spilled_bytes)

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v>%a" pp_stats o.stats;
  List.iter
    (fun t ->
      Format.fprintf ppf "@,  tenant %-10s %2d jobs wait(mean)=%.6fs slowdown(mean)=%.3f" t.tenant
        t.t_jobs t.t_mean_wait t.t_mean_slowdown)
    o.tenants;
  List.iter
    (fun r ->
      Format.fprintf ppf "@,  job %2d %-10s %-12s submit=%.3f wait=%.6f latency=%.6f%s"
        r.spec.Job.id r.spec.Job.tenant r.spec.Job.name r.spec.Job.submit (wait_of r)
        (latency_of r)
        (if r.cache_hit then " [cache]" else ""))
    o.jobs;
  Format.fprintf ppf "@]"
