(** Compile-once program-plan cache, keyed by source digest.

    Repeated submissions of the same program text (with the same
    translator options) reuse the first compilation's [Program_plan]
    verbatim — a cache hit returns the {e same} plan value, physically.
    Entries also carry the fleet's measured execution profile, feeding
    the shortest-job-first estimator and the admission ledger. *)

module Kernel_plan = Mgacc_translator.Kernel_plan
module Program_plan = Mgacc_translator.Program_plan

type entry = {
  key : string;
      (** digest of translator options + machine shape + source text *)
  plans : Program_plan.t;
  mutable measured_seconds : float option;
      (** last measured execution duration of this program in the fleet *)
  mutable footprint_bytes : int option;
      (** last measured device-memory footprint (admission ledger) *)
}

type t

val create : unit -> t

val fingerprint :
  ?machine:string -> options:Kernel_plan.options -> source:string -> unit -> string
(** [machine] is the machine shape the plan will run on (canonical spec
    string or machine name; [""] = shape-independent). It and every
    translator option — including [enable_decomp2d] — are part of the
    key, so plans built for different shapes or decompositions never
    alias. *)

val lookup :
  ?options:Kernel_plan.options -> ?machine:string -> ?name:string -> t -> string -> entry * bool
(** [(entry, hit)] — on a miss the source is parsed, typechecked and
    planned, and the fresh entry cached. Parse/type errors propagate. *)

val record_measurement : entry -> seconds:float -> footprint_bytes:int -> unit
(** Update the execution profile after a job completes (a non-positive
    footprint leaves the previous measurement in place). *)

val hits : t -> int
val misses : t -> int
val size : t -> int
