type spec = { id : int; tenant : string; name : string; source : string; submit : float }

let make ~id ~tenant ~name ~source ~submit =
  if submit < 0.0 then invalid_arg "Job.make: negative submit time";
  { id; tenant; name; source; submit }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* One trace line: "<submit-seconds> <tenant> <program path>". Paths are
   resolved relative to the trace file's directory; '#' starts a comment. *)
let parse_trace_line ~dir ~lineno line =
  let line = match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line in
  let line = String.trim line in
  if line = "" then None
  else
    match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
    | [ submit; tenant; path ] ->
        let submit =
          match float_of_string_opt submit with
          | Some s when s >= 0.0 -> s
          | _ -> failwith (Printf.sprintf "trace line %d: bad submit time %S" lineno submit)
        in
        let path = if Filename.is_relative path then Filename.concat dir path else path in
        Some (submit, tenant, path)
    | _ ->
        failwith
          (Printf.sprintf "trace line %d: expected '<submit> <tenant> <program.c>', got %S" lineno
             line)

let load_trace path =
  let dir = Filename.dirname path in
  let contents = read_file path in
  let lines = String.split_on_char '\n' contents in
  let specs = ref [] in
  List.iteri
    (fun i line ->
      match parse_trace_line ~dir ~lineno:(i + 1) line with
      | None -> ()
      | Some (submit, tenant, src_path) ->
          let name = Filename.remove_extension (Filename.basename src_path) in
          let source = read_file src_path in
          specs := make ~id:(List.length !specs) ~tenant ~name ~source ~submit :: !specs)
    lines;
  List.rev !specs
