module Kernel_plan = Mgacc_translator.Kernel_plan
module Program_plan = Mgacc_translator.Program_plan
module Parser = Mgacc_minic.Parser

type entry = {
  key : string;
  plans : Program_plan.t;
  mutable measured_seconds : float option;
  mutable footprint_bytes : int option;
}

type t = { tbl : (string, entry) Hashtbl.t; mutable hits : int; mutable misses : int }

let create () = { tbl = Hashtbl.create 16; hits = 0; misses = 0 }

(* Translator options are part of the plan's identity: the same source
   compiled with different optimization settings yields different plans.
   So are the decomposition switch and the machine shape — a plan built
   for a 2-D launch on an 8x4 fat-tree must never alias one built for a
   1-D launch on the desktop, even from identical source. *)
let fingerprint ?(machine = "") ~(options : Kernel_plan.options) ~source () =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%b|%b|%b|%b|%b|%s|%s" options.Kernel_plan.enable_distribution
          options.Kernel_plan.enable_layout_transform options.Kernel_plan.enable_miss_check_elim
          options.Kernel_plan.enable_fusion options.Kernel_plan.enable_decomp2d machine source))

let lookup ?(options = Kernel_plan.default_options) ?(machine = "") ?(name = "<job>") t source =
  let key = fingerprint ~machine ~options ~source () in
  match Hashtbl.find_opt t.tbl key with
  | Some e ->
      t.hits <- t.hits + 1;
      (e, true)
  | None ->
      t.misses <- t.misses + 1;
      let program = Parser.parse ~file:name source in
      let plans = Program_plan.build ~options program in
      let e = { key; plans; measured_seconds = None; footprint_bytes = None } in
      Hashtbl.replace t.tbl key e;
      (e, false)

let record_measurement e ~seconds ~footprint_bytes =
  e.measured_seconds <- Some seconds;
  if footprint_bytes > 0 then e.footprint_bytes <- Some footprint_bytes

let hits t = t.hits
let misses t = t.misses
let size t = Hashtbl.length t.tbl
