(** Cost-model-guided kernel fusion + temporary contraction (the
    translator's ACC-Saturator-style optimization pass, docs/FUSION.md).

    Runs between parsing and planning when [enable_fusion] is set.
    Adjacent [#pragma acc parallel loop] statements fuse into one kernel
    when (a) both are plain data-parallel maps (no clauses, reductions,
    localaccess windows, or nested pragmas), (b) their normalized
    iteration spaces are identical pure expressions, (c) every array
    dependence crossing the seam is provably iteration-local (literal
    affine subscripts with matching coefficients touching the same
    element only in the same iteration), and (d) the cost model finds
    the saved launch overhead plus reconciliation bytes outweigh the
    occupancy-pressure proxy of the bigger body. Arrays whose entire
    life is one fused body (one [create] clause, one host declaration,
    literal-affine top-level sites that are written before read)
    contract to kernel-local scalars and leave the darray/coherence
    layer entirely. *)

open Mgacc_minic

type summary = {
  groups : (Loc.t * int list) list;
      (** every surviving parallel loop (fused or not), mapped to the
          {e original} loop ids it absorbed — singletons for untouched
          loops, so labels keep naming source loops after positions
          shift *)
  contracted : string list;  (** arrays scalarized out of existence *)
}

val empty_summary : summary

val apply : Ast.program -> Ast.program * summary
(** Rewrite the program. Programs with no legal profitable fusion are
    returned with identical structure (and an identity summary). *)

(** {2 Cost-model tunables (documented in docs/FUSION.md)} *)

val launch_overhead_seconds : float
val reconcile_seconds_per_byte : float
val op_budget : int
val op_penalty_seconds : float
val nominal_iterations : int
