(** Per-loop compilation plan: what the paper's translator emits.

    A plan bundles the normalized loop, its access summaries, the array
    configuration information, and the instrumentation/optimization
    decisions (layout transformation targets, which arrays need write-miss
    checks, which need dirty tracking). The runtime consumes plans: the
    data loader reads placements, the launcher compiles the body with the
    plan's coalescing classifier, and the communication manager reads the
    reconciliation needs. *)

open Mgacc_minic

type options = {
  enable_distribution : bool;
      (** honour [localaccess] for placement (off = everything replicated) *)
  enable_layout_transform : bool;
  enable_miss_check_elim : bool;
      (** drop write-miss checks when writes are provably in-window *)
  enable_fusion : bool;
      (** run the translator's fusion/contraction/relayout pass (default
          off: plans and reports stay bit-identical to the unfused
          translator) *)
  enable_decomp2d : bool;
      (** analyze stencil loops for 2-D (row x column) block decomposition
          (default off: the 1-D split stays bit-identical) *)
}

val default_options : options

type window = Whole_array | Affine_window of { coeff : int; cmin : int; cmax : int }
(** Per-GPU read-window shape of a launch, used by the lazy-coherence
    consumer lookahead (computed by [Program_plan], memoized per plan). *)

type t = {
  loop : Mgacc_analysis.Loop_info.t;
  accesses : Mgacc_analysis.Access.array_access list;
  configs : Mgacc_analysis.Array_config.t list;
  free_vars : string list;
  options : options;
  inner_parallel : (Mgacc_analysis.Loop_info.t * int) option;
      (** nested [#pragma acc loop] and its vector width, if present *)
  tile2d : Mgacc_analysis.Tile2d.t option;
      (** 2-D decomposition eligibility (present only under
          [enable_decomp2d] on an eligible stencil loop) *)
  window_memo : (string, window option) Hashtbl.t;
      (** per-array cache of [Program_plan.read_window_of] results *)
}

val of_loop : ?options:options -> Mgacc_analysis.Loop_info.t -> t

val thread_multiplier : t -> int
(** Occupancy multiplier from nested parallelism: the inner loop's vector
    width, or 1 when the kernel is flat. *)

val config_for : t -> string -> Mgacc_analysis.Array_config.t option

val placement_of : t -> string -> Mgacc_analysis.Array_config.placement
(** Effective placement after applying [options] (distribution disabled
    collapses everything to replicated). Defaults to replicated for arrays
    without a config. *)

val layout_transformed : t -> string -> bool
(** Whether the coalescing layout transformation applies to the array under
    the plan's options (baseline localaccess-gated rule, or the fusion-mode
    relayout below). *)

val fusion_relayout : t -> string -> bool
(** Fusion-mode data-layout transposition (paper §V): true for replicated
    read-only arrays with at least one strided affine read site, no
    data-dependent site, and no localaccess window, when the cost model's
    amortized repack check passes. Always false unless both
    [enable_fusion] and [enable_layout_transform] are set. *)

val relayout_arrays : t -> string list
(** Arrays of this plan selected by {!fusion_relayout}, in config order.
    The runtime charges their one-time repack on first launch. *)

val relayout_amortize_launches : int
(** Nominal launch count the repack cost is amortized over. *)

val needs_miss_check : t -> string -> bool
(** True for distributed arrays with plain writes that are not provably
    in-window (or when elimination is disabled): the kernel carries a
    bounds check per write and misses are buffered. *)

val needs_dirty_tracking : t -> num_gpus:int -> string -> bool
(** Replicated arrays with plain writes need dirty tracking — but only when
    more than one GPU participates. *)

val schedule_hint : t -> [ `Uniform | `Irregular ]
(** [`Irregular] when per-iteration work varies with the parallel index:
    an inner loop's trip count is tainted (BFS's per-node degree), or a
    tainted branch guards an inner loop (BFS's frontier test). The
    scheduler then seeds an equal split and relies on runtime feedback,
    since a static cost model cannot see the skew. Dynamic subscripts
    with fixed trip counts (MD's neighbor gathers) stay [`Uniform]. *)

val static_iter_cost : t -> Mgacc_gpusim.Cost.t
(** Compile-time estimate of the cost of {e one} straight-line pass over
    the loop body: arithmetic counted per operator, each array access
    charged 8 bytes under the plan's coalescing classification. Control
    flow is not simulated (branches contribute both arms, nested loops one
    trip), which is fine for its consumer — the scheduler only compares
    device throughputs on the {e same} cost vector. *)

val classifier : t -> string -> Ast.expr -> Mgacc_analysis.Coalesce.mode
(** The coalescing classifier for kernel compilation, with the layout
    transformation applied to qualifying arrays. *)

val pp : Format.formatter -> t -> unit
