(* Cost-model-guided kernel fusion, temporary contraction, and the
   bookkeeping the rest of the translator needs to see through fused
   groups (ACC-Saturator-style pass; see docs/FUSION.md).

   The pass runs between parsing and planning, only under
   [enable_fusion]. It rewrites the AST:

   - adjacent [#pragma acc parallel loop] statements with identical
     normalized iteration spaces fuse into one loop when no
     fusion-preventing dependence crosses the seam and the cost model
     says the saved launch + reconciliation outweighs the occupancy
     pressure of the bigger body;

   - arrays whose every reference lands inside one fused body contract
     to kernel-local scalars and their [create] data clause entry is
     dropped, so they never reach the darray/coherence layer.

   The summary maps each surviving loop's location to the {e original}
   loop ids it absorbed, so runtime labels and blame attribution keep
   naming the source loops. *)

open Mgacc_minic
open Ast
module Loop_info = Mgacc_analysis.Loop_info
module Access = Mgacc_analysis.Access
module Affine = Mgacc_analysis.Affine

type summary = { groups : (Loc.t * int list) list; contracted : string list }

let empty_summary = { groups = []; contracted = [] }

(* ------------------------------------------------------------------ *)
(* Cost model (NCCL-style closed form, same spirit as --collective auto) *)
(* ------------------------------------------------------------------ *)

let launch_overhead_seconds = 5e-6
let reconcile_seconds_per_byte = 1.5e-10

(* Occupancy-pressure proxy: a fused body whose operator count exceeds
   the budget models register spill / occupancy loss as a per-iteration
   penalty per excess operator. *)
let op_budget = 64
let op_penalty_seconds = 5e-8

(* Iteration count assumed when the bounds are not compile-time
   literals. *)
let nominal_iterations = 4096

let rec ops_of_expr e =
  match e.edesc with
  | Int_lit _ | Float_lit _ | Var _ | Length _ -> 0
  | Index (_, i) -> 1 + ops_of_expr i
  | Unop (_, x) -> 1 + ops_of_expr x
  | Binop (_, x, y) -> 1 + ops_of_expr x + ops_of_expr y
  | Ternary (c, a, b) -> 1 + ops_of_expr c + ops_of_expr a + ops_of_expr b
  | Call (_, args) -> List.fold_left (fun acc a -> acc + ops_of_expr a) 4 args

let ops_of_lvalue = function Lvar _ -> 0 | Lindex (_, i) -> 1 + ops_of_expr i

let rec ops_of_stmt s =
  match s.sdesc with
  | Sdecl (_, _, init) -> ( match init with Some e -> ops_of_expr e | None -> 0)
  | Sarray_decl (_, _, n) -> ops_of_expr n
  | Sassign (lv, _, e) -> ops_of_lvalue lv + ops_of_expr e
  | Sincr (lv, _) -> 1 + ops_of_lvalue lv
  | Sexpr e -> ops_of_expr e
  | Sif (c, a, b) -> ops_of_expr c + ops_of_body a + ops_of_body b
  | Swhile (c, b) -> ops_of_expr c + ops_of_body b
  | Sfor (h, b) ->
      (match h.for_init with Some s -> ops_of_stmt s | None -> 0)
      + (match h.for_cond with Some e -> ops_of_expr e | None -> 0)
      + (match h.for_update with Some s -> ops_of_stmt s | None -> 0)
      + ops_of_body b
  | Sreturn e -> ( match e with Some e -> ops_of_expr e | None -> 0)
  | Sbreak | Scontinue -> 0
  | Sblock b -> ops_of_body b
  | Spragma (_, inner) -> ops_of_stmt inner

and ops_of_body b = List.fold_left (fun acc s -> acc + ops_of_stmt s) 0 b

(* ------------------------------------------------------------------ *)
(* Body scans                                                          *)
(* ------------------------------------------------------------------ *)

let rec body_has p body = List.exists (stmt_has p) body

and stmt_has p s =
  p s
  ||
  match s.sdesc with
  | Sif (_, a, b) -> body_has p a || body_has p b
  | Swhile (_, b) | Sfor (_, b) | Sblock b -> body_has p b
  | Spragma (_, inner) -> stmt_has p inner
  | Sdecl _ | Sarray_decl _ | Sassign _ | Sincr _ | Sexpr _ | Sreturn _ | Sbreak | Scontinue ->
      false

let declared_names body =
  let acc = ref [] in
  let add v = if not (List.mem v !acc) then acc := v :: !acc in
  ignore
    (body_has
       (fun s ->
         (match s.sdesc with
         | Sdecl (_, v, _) | Sarray_decl (_, v, _) -> add v
         | _ -> ());
         false)
       body);
  !acc

let assigned_scalars body =
  let acc = ref [] in
  let add v = if not (List.mem v !acc) then acc := v :: !acc in
  ignore
    (body_has
       (fun s ->
         (match s.sdesc with
         | Sassign (Lvar v, _, _) | Sincr (Lvar v, _) -> add v
         | _ -> ());
         false)
       body);
  !acc

(* ------------------------------------------------------------------ *)
(* Candidate recognition and legality                                  *)
(* ------------------------------------------------------------------ *)

type candidate = {
  pragma : stmt;  (** the [Spragma (Dparallel_loop [], for)] statement *)
  for_stmt : stmt;
  header : for_header;
  body : stmt list;
  info : Loop_info.t;
}

(* The parser wraps a braced loop body in one [Sblock]; peel such
   wrappers so concatenating two bodies yields straight-line statements
   (which the contraction legality scan requires at top level). *)
let rec unwrap_body body =
  match body with [ { sdesc = Sblock b; _ } ] -> unwrap_body b | _ -> body

let as_candidate s =
  match s.sdesc with
  | Spragma (Dparallel_loop [], ({ sdesc = Sfor (h, body); _ } as for_stmt)) -> (
      match Loop_info.of_stmt ~loop_id:0 s with
      | Some info -> Some { pragma = s; for_stmt; header = h; body = unwrap_body body; info }
      | None -> None
      | exception Loc.Error _ -> None)
  | _ -> None

(* A loop qualifies for fusion when it is a plain data-parallel map:
   no clauses (reductions, gang/vector shaping, if-guards, data
   movement), no localaccess windows, no reductiontoarray statements,
   no nested pragmas or returns, and every scalar it assigns is
   body-declared (no firstprivate write-back semantics to preserve). *)
let fusable (c : candidate) =
  let li = c.info in
  li.Loop_info.clauses = []
  && li.Loop_info.localaccess = []
  && li.Loop_info.scalar_reductions = []
  && li.Loop_info.array_reductions = []
  && (not
        (body_has
           (fun s -> match s.sdesc with Spragma _ | Sreturn _ -> true | _ -> false)
           c.body))
  &&
  let declared = declared_names c.body in
  List.for_all (fun v -> List.mem v declared) (assigned_scalars c.body)

(* Bounds must be loop-invariant pure integer expressions (no loads, no
   calls) and textually identical after normalization — the strongest
   form of "same iteration space" the mini-C frontend can certify. *)
let rec pure_bound e =
  match e.edesc with
  | Int_lit _ | Var _ | Length _ -> true
  | Float_lit _ | Index _ | Call _ -> false
  | Unop (_, x) -> pure_bound x
  | Binop (_, x, y) -> pure_bound x && pure_bound y
  | Ternary (c, a, b) -> pure_bound c && pure_bound a && pure_bound b

let bounds_compatible (a : Loop_info.t) (b : Loop_info.t) =
  pure_bound a.Loop_info.lower && pure_bound a.Loop_info.upper
  && pure_bound b.Loop_info.lower && pure_bound b.Loop_info.upper
  && Pretty.expr_to_string a.Loop_info.lower = Pretty.expr_to_string b.Loop_info.lower
  && Pretty.expr_to_string a.Loop_info.upper = Pretty.expr_to_string b.Loop_info.upper

(* Seam dependence test. For every array with a write on either side,
   every (first-loop site, second-loop site) pair with a write in it
   must be provably iteration-local: both subscripts literal affine
   forms [c*i + k] with the same coefficient, touching the same element
   only in the same iteration. Same-iteration flow is legal — the fused
   body runs the first loop's statements before the second's — while
   any cross-iteration overlap would be reordered by fusion. *)
let literal_forms (li : Loop_info.t) exprs =
  let is_uniform = Access.is_uniform_in li in
  List.map
    (fun e ->
      match Affine.of_expr ~loop_var:li.Loop_info.loop_var ~is_uniform e with
      | Some a when Affine.is_literal a -> Some (a.Affine.coeff, a.Affine.const)
      | _ -> None)
    exprs

let pair_independent (ca, ka) (cb, kb) =
  if ca <> cb then false
  else if ca = 0 then ka <> kb
  else
    let d = kb - ka in
    d mod ca <> 0 || d / ca = 0

let seam_safe (a : candidate) (b : candidate) =
  let acc_a = Access.analyze a.info and acc_b = Access.analyze b.info in
  let arrays =
    List.sort_uniq compare
      (List.map (fun (x : Access.array_access) -> x.Access.array) acc_a
      @ List.map (fun (x : Access.array_access) -> x.Access.array) acc_b)
  in
  List.for_all
    (fun name ->
      match (Access.find acc_a name, Access.find acc_b name) with
      | None, _ | _, None -> true (* only on one side: no seam *)
      | Some xa, Some xb ->
          let wa = xa.Access.writes @ xa.Access.reduction_writes in
          let wb = xb.Access.writes @ xb.Access.reduction_writes in
          if wa = [] && wb = [] then true
          else
            let all_a = literal_forms a.info (xa.Access.reads @ wa) in
            let all_b = literal_forms b.info (xb.Access.reads @ wb) in
            let writes_a = literal_forms a.info wa in
            let writes_b = literal_forms b.info wb in
            let every_known l = List.for_all Option.is_some l in
            every_known all_a && every_known all_b
            &&
            let get l = List.map Option.get l in
            let conflict_free xs ys =
              List.for_all (fun x -> List.for_all (fun y -> pair_independent x y) ys) xs
            in
            conflict_free (get writes_a) (get all_b) && conflict_free (get all_a) (get writes_b))
    arrays

(* ------------------------------------------------------------------ *)
(* Profitability                                                       *)
(* ------------------------------------------------------------------ *)

let est_iterations (li : Loop_info.t) =
  match (li.Loop_info.lower.edesc, li.Loop_info.upper.edesc) with
  | Int_lit lo, Int_lit hi when hi > lo -> hi - lo
  | _ -> nominal_iterations

let profitable (a : candidate) (b : candidate) =
  let iters = est_iterations a.info in
  let acc_a = Access.analyze a.info and acc_b = Access.analyze b.info in
  let seam_bytes =
    List.fold_left
      (fun bytes (xa : Access.array_access) ->
        if xa.Access.writes <> [] && Access.find acc_b xa.Access.array <> None then
          bytes + (8 * iters)
        else bytes)
      0 acc_a
  in
  let benefit =
    launch_overhead_seconds +. (float_of_int seam_bytes *. reconcile_seconds_per_byte)
  in
  let pressure = ops_of_body a.body + ops_of_body b.body - op_budget in
  let cost =
    if pressure > 0 then float_of_int pressure *. float_of_int iters *. op_penalty_seconds
    else 0.
  in
  benefit > cost

(* ------------------------------------------------------------------ *)
(* Alpha renaming and substitution                                     *)
(* ------------------------------------------------------------------ *)

let rec sub_expr m e =
  let edesc =
    match e.edesc with
    | Int_lit _ | Float_lit _ -> e.edesc
    | Var v -> Var (m v)
    | Index (a, i) -> Index (m a, sub_expr m i)
    | Unop (op, x) -> Unop (op, sub_expr m x)
    | Binop (op, x, y) -> Binop (op, sub_expr m x, sub_expr m y)
    | Ternary (c, x, y) -> Ternary (sub_expr m c, sub_expr m x, sub_expr m y)
    | Call (f, args) -> Call (f, List.map (sub_expr m) args)
    | Length a -> Length (m a)
  in
  { e with edesc }

let sub_lvalue m = function
  | Lvar v -> Lvar (m v)
  | Lindex (a, i) -> Lindex (m a, sub_expr m i)

let rec sub_stmt m s =
  let sdesc =
    match s.sdesc with
    | Sdecl (ty, v, init) -> Sdecl (ty, m v, Option.map (sub_expr m) init)
    | Sarray_decl (ty, v, n) -> Sarray_decl (ty, m v, sub_expr m n)
    | Sassign (lv, op, e) -> Sassign (sub_lvalue m lv, op, sub_expr m e)
    | Sincr (lv, k) -> Sincr (sub_lvalue m lv, k)
    | Sexpr e -> Sexpr (sub_expr m e)
    | Sif (c, a, b) -> Sif (sub_expr m c, List.map (sub_stmt m) a, List.map (sub_stmt m) b)
    | Swhile (c, b) -> Swhile (sub_expr m c, List.map (sub_stmt m) b)
    | Sfor (h, b) ->
        Sfor
          ( {
              for_init = Option.map (sub_stmt m) h.for_init;
              for_cond = Option.map (sub_expr m) h.for_cond;
              for_update = Option.map (sub_stmt m) h.for_update;
            },
            List.map (sub_stmt m) b )
    | Sreturn e -> Sreturn (Option.map (sub_expr m) e)
    | Sbreak | Scontinue -> s.sdesc
    | Sblock b -> Sblock (List.map (sub_stmt m) b)
    | Spragma (d, inner) -> Spragma (d, sub_stmt m inner)
  in
  { s with sdesc }

let sub_body m body = List.map (sub_stmt m) body

(* ------------------------------------------------------------------ *)
(* The fusion walker                                                   *)
(* ------------------------------------------------------------------ *)

type ctx = {
  members : (Loc.t, int list) Hashtbl.t;  (** loop_loc -> original loop ids *)
  fresh : int ref;
  used : (string, unit) Hashtbl.t;  (** every name in the function *)
}

let fresh_name ctx base =
  let rec go () =
    let n = Printf.sprintf "%s_f%d" base !(ctx.fresh) in
    incr ctx.fresh;
    if Hashtbl.mem ctx.used n then go ()
    else begin
      Hashtbl.replace ctx.used n ();
      n
    end
  in
  go ()

let try_fuse ctx sa sb =
  match (as_candidate sa, as_candidate sb) with
  | Some a, Some b
    when fusable a && fusable b
         && bounds_compatible a.info b.info
         && seam_safe a b && profitable a b ->
      let la = a.info.Loop_info.loop_var and lb = b.info.Loop_info.loop_var in
      (* The second loop's counter is replaced by the first's; if the
         second body also uses a *free* variable spelled like the first
         counter, substitution would capture it — bail out. *)
      if la <> lb && List.mem la (Loop_info.free_vars b.info) then None
      else begin
        let decl_a = declared_names a.body in
        let free_b = Loop_info.free_vars b.info in
        (* Locals of the first body that shadow free names of the second
           are renamed away so concatenation cannot capture them. *)
        let ren_a =
          List.filter_map
            (fun v -> if List.mem v free_b then Some (v, fresh_name ctx v) else None)
            decl_a
        in
        let map_a v = match List.assoc_opt v ren_a with Some v' -> v' | None -> v in
        let body_a = if ren_a = [] then a.body else sub_body map_a a.body in
        let decl_a = declared_names body_a in
        (* Locals of the second body colliding with anything live in the
           first (its locals, its free names, the shared counter) get
           fresh names; the counter itself maps across. *)
        let taken = (la :: decl_a) @ Loop_info.free_vars a.info in
        let ren_b =
          List.filter_map
            (fun v -> if List.mem v taken then Some (v, fresh_name ctx v) else None)
            (declared_names b.body)
        in
        let map_b v =
          if v = lb then la
          else match List.assoc_opt v ren_b with Some v' -> v' | None -> v
        in
        let body_b = sub_body map_b b.body in
        let fused =
          {
            sa with
            sdesc =
              Spragma
                ( Dparallel_loop [],
                  { a.for_stmt with sdesc = Sfor (a.header, body_a @ body_b) } );
          }
        in
        let loc_a = a.info.Loop_info.loop_loc and loc_b = b.info.Loop_info.loop_loc in
        let ids loc = match Hashtbl.find_opt ctx.members loc with Some l -> l | None -> [] in
        Hashtbl.replace ctx.members loc_a (ids loc_a @ ids loc_b);
        Hashtbl.remove ctx.members loc_b;
        Some fused
      end
  | _ -> None

let rec fuse_seq ctx stmts =
  match stmts with
  | a :: b :: rest -> (
      match try_fuse ctx a b with
      | Some fused -> fuse_seq ctx (fused :: rest)
      | None -> descend ctx a :: fuse_seq ctx (b :: rest))
  | [ s ] -> [ descend ctx s ]
  | [] -> []

(* Recurse into compound statements looking for more adjacent pairs —
   but never into a parallel loop's own body (parallel loops do not
   nest in this system). *)
and descend ctx s =
  match s.sdesc with
  | Spragma (Dparallel_loop _, _) -> s
  | Spragma (d, inner) -> { s with sdesc = Spragma (d, descend ctx inner) }
  | Sblock b -> { s with sdesc = Sblock (fuse_seq ctx b) }
  | Sif (c, a, b) -> { s with sdesc = Sif (c, fuse_seq ctx a, fuse_seq ctx b) }
  | Swhile (c, b) -> { s with sdesc = Swhile (c, fuse_seq ctx b) }
  | Sfor (h, b) -> { s with sdesc = Sfor (h, fuse_seq ctx b) }
  | Sdecl _ | Sarray_decl _ | Sassign _ | Sincr _ | Sexpr _ | Sreturn _ | Sbreak | Scontinue ->
      s

(* ------------------------------------------------------------------ *)
(* Temporary contraction                                               *)
(* ------------------------------------------------------------------ *)

(* Count mentions of array [name] in a statement: subscripted uses,
   [length] uses, and appearances in directive clauses. [skip] marks
   the one statement (the fused loop) whose mentions are not counted. *)
let mentions_outside ~skip name body =
  let count = ref 0 in
  let rec expr e =
    match e.edesc with
    | Index (a, i) ->
        if a = name then incr count;
        expr i
    | Length a -> if a = name then incr count
    | Var _ | Int_lit _ | Float_lit _ -> ()
    | Unop (_, x) -> expr x
    | Binop (_, x, y) ->
        expr x;
        expr y
    | Ternary (c, a, b) ->
        expr c;
        expr a;
        expr b
    | Call (_, args) -> List.iter expr args
  in
  let subarrays subs = List.iter (fun s -> if s.sub_array = name then incr count) subs in
  let clause = function
    | Cdata (_, subs) -> subarrays subs
    | Creduction (_, vars) -> if List.mem name vars then incr count
    | Clocalaccess specs -> List.iter (fun s -> if s.la_array = name then incr count) specs
    | Cgang _ | Cworker _ | Cvector _ | Cindependent -> ()
    | Cif e -> expr e
  in
  let directive = function
    | Dparallel_loop cs | Ddata cs | Denter_data cs | Dexit_data cs -> List.iter clause cs
    | Dupdate_host subs | Dupdate_device subs -> subarrays subs
    | Dlocalaccess specs -> List.iter (fun s -> if s.la_array = name then incr count) specs
    | Dreduction_to_array { rta_array; _ } -> if rta_array = name then incr count
  in
  let rec stmt s =
    if s == skip then ()
    else
      match s.sdesc with
      | Sdecl (_, _, init) -> Option.iter expr init
      | Sarray_decl (_, v, n) ->
          if v = name then incr count;
          expr n
      | Sassign (lv, _, e) ->
          (match lv with
          | Lvar _ -> ()
          | Lindex (a, i) ->
              if a = name then incr count;
              expr i);
          expr e
      | Sincr (lv, _) -> (
          match lv with
          | Lvar _ -> ()
          | Lindex (a, i) ->
              if a = name then incr count;
              expr i)
      | Sexpr e -> expr e
      | Sif (c, a, b) ->
          expr c;
          List.iter stmt a;
          List.iter stmt b
      | Swhile (c, b) ->
          expr c;
          List.iter stmt b
      | Sfor (h, b) ->
          Option.iter stmt h.for_init;
          Option.iter expr h.for_cond;
          Option.iter stmt h.for_update;
          List.iter stmt b
      | Sreturn e -> Option.iter expr e
      | Sbreak | Scontinue -> ()
      | Sblock b -> List.iter stmt b
      | Spragma (d, inner) ->
          directive d;
          stmt inner
  in
  List.iter stmt body;
  !count

(* The create-clause entry for [name], if the function has exactly one
   and no other directive mentions it. *)
let create_only ~skip name fbody =
  let creates = ref 0 in
  let rec stmt s =
    if s == skip then ()
    else
      match s.sdesc with
      | Spragma (d, inner) ->
          (match d with
          | Ddata cs | Dparallel_loop cs | Denter_data cs | Dexit_data cs ->
              List.iter
                (function
                  | Cdata (Create, subs) ->
                      List.iter (fun sub -> if sub.sub_array = name then incr creates) subs
                  | _ -> ())
                cs
          | _ -> ());
          stmt inner
      | Sif (_, a, b) ->
          List.iter stmt a;
          List.iter stmt b
      | Swhile (_, b) | Sfor (_, b) | Sblock b -> List.iter stmt b
      | Sdecl _ | Sarray_decl _ | Sassign _ | Sincr _ | Sexpr _ | Sreturn _ | Sbreak | Scontinue
        ->
          ()
  in
  List.iter stmt fbody;
  !creates = 1

let array_decl_of name fbody =
  let found = ref None in
  let rec stmt s =
    match s.sdesc with
    | Sarray_decl (ty, v, _) when v = name -> if !found = None then found := Some ty
    | Sif (_, a, b) ->
        List.iter stmt a;
        List.iter stmt b
    | Swhile (_, b) | Sfor (_, b) | Sblock b -> List.iter stmt b
    | Spragma (_, inner) -> stmt inner
    | _ -> ()
  in
  List.iter stmt fbody;
  !found

(* Uses of [name] inside the fused body, all required to sit in the
   body's top-level straight-line statements with literal affine
   subscripts. Returns the subscript keys in execution order, each
   tagged with whether the site is a plain [Set] write. *)
let top_level_uses (li : Loop_info.t) name body =
  let is_uniform = Access.is_uniform_in li in
  let key e =
    match Affine.of_expr ~loop_var:li.Loop_info.loop_var ~is_uniform e with
    | Some a when Affine.is_literal a -> Some (a.Affine.coeff, a.Affine.const)
    | _ -> None
  in
  let sites = ref [] in
  let ok = ref true in
  let rec expr e =
    match e.edesc with
    | Index (a, i) ->
        expr i;
        if a = name then
          (match key i with
          | Some k -> sites := (k, false) :: !sites
          | None -> ok := false)
    | Length a -> if a = name then ok := false
    | Var _ | Int_lit _ | Float_lit _ -> ()
    | Unop (_, x) -> expr x
    | Binop (_, x, y) ->
        expr x;
        expr y
    | Ternary (c, a, b) ->
        expr c;
        expr a;
        expr b
    | Call (_, args) -> List.iter expr args
  in
  (* A compound statement at the body's top level may not mention the
     array at all: contraction only reasons about straight-line sites. *)
  let rec mentions_expr e =
    match e.edesc with
    | Index (a, i) -> a = name || mentions_expr i
    | Length a -> a = name
    | Var _ | Int_lit _ | Float_lit _ -> false
    | Unop (_, x) -> mentions_expr x
    | Binop (_, x, y) -> mentions_expr x || mentions_expr y
    | Ternary (c, a, b) -> mentions_expr c || mentions_expr a || mentions_expr b
    | Call (_, args) -> List.exists mentions_expr args
  in
  let nested s =
    if
      stmt_has
        (fun s ->
          match s.sdesc with
          | Sdecl (_, _, init) -> Option.fold ~none:false ~some:mentions_expr init
          | Sarray_decl (_, v, n) -> v = name || mentions_expr n
          | Sassign (lv, _, e) ->
              mentions_expr e
              || (match lv with Lvar _ -> false | Lindex (a, i) -> a = name || mentions_expr i)
          | Sincr (lv, _) -> (
              match lv with Lvar _ -> false | Lindex (a, i) -> a = name || mentions_expr i)
          | Sexpr e -> mentions_expr e
          | Sif (c, _, _) | Swhile (c, _) -> mentions_expr c
          | Sfor (h, _) -> Option.fold ~none:false ~some:mentions_expr h.for_cond
          | Sreturn e -> Option.fold ~none:false ~some:mentions_expr e
          | Sbreak | Scontinue | Sblock _ | Spragma _ -> false)
        s
    then ok := false
  in
  List.iter
    (fun s ->
      match s.sdesc with
      | Sdecl (_, _, init) -> Option.iter expr init
      | Sassign (lv, op, e) ->
          expr e;
          (match lv with
          | Lvar _ -> ()
          | Lindex (a, i) ->
              expr i;
              if a = name then (
                match key i with
                | Some k -> sites := (k, op = Set) :: !sites
                | None -> ok := false))
      | Sincr (lv, _) -> (
          match lv with
          | Lvar _ -> ()
          | Lindex (a, i) ->
              expr i;
              if a = name then ok := false)
      | Sexpr e -> expr e
      | Sarray_decl (_, _, n) -> expr n
      | Sif _ | Swhile _ | Sfor _ | Sblock _ | Spragma _ -> nested s
      | Sreturn _ | Sbreak | Scontinue -> ())
    body;
  if !ok then Some (List.rev !sites) else None

(* First touch of every subscript key must be a plain write: then each
   key is a per-iteration dead temporary and contracts to a scalar. *)
let keys_contractible sites =
  let seen = Hashtbl.create 4 in
  List.for_all
    (fun (k, is_set_write) ->
      if Hashtbl.mem seen k then true
      else begin
        Hashtbl.replace seen k ();
        is_set_write
      end)
    sites

let strip_create name s =
  let clause = function
    | Cdata (Create, subs) -> (
        match List.filter (fun sub -> sub.sub_array <> name) subs with
        | [] -> None
        | subs -> Some (Cdata (Create, subs)))
    | c -> Some c
  in
  let rec stmt s =
    match s.sdesc with
    | Spragma (d, inner) ->
        let d =
          match d with
          | Ddata cs -> Ddata (List.filter_map clause cs)
          | Denter_data cs -> Denter_data (List.filter_map clause cs)
          | Dexit_data cs -> Dexit_data (List.filter_map clause cs)
          | Dparallel_loop cs -> Dparallel_loop (List.filter_map clause cs)
          | d -> d
        in
        { s with sdesc = Spragma (d, stmt inner) }
    | Sif (c, a, b) -> { s with sdesc = Sif (c, List.map stmt a, List.map stmt b) }
    | Swhile (c, b) -> { s with sdesc = Swhile (c, List.map stmt b) }
    | Sfor (h, b) -> { s with sdesc = Sfor (h, List.map stmt b) }
    | Sblock b -> { s with sdesc = Sblock (List.map stmt b) }
    | _ -> s
  in
  stmt s

(* Rewrite the fused body, replacing every [name[k]] site with the
   scalar for its key and prepending the scalar declarations. *)
let contract_body ctx (li : Loop_info.t) name elem body =
  let is_uniform = Access.is_uniform_in li in
  let key e =
    match Affine.of_expr ~loop_var:li.Loop_info.loop_var ~is_uniform e with
    | Some a when Affine.is_literal a -> Some (a.Affine.coeff, a.Affine.const)
    | _ -> None
  in
  let scalars = Hashtbl.create 4 in
  let scalar_of k =
    match Hashtbl.find_opt scalars k with
    | Some v -> v
    | None ->
        let v = fresh_name ctx name in
        Hashtbl.replace scalars k v;
        v
  in
  let rec expr e =
    let edesc =
      match e.edesc with
      | Index (a, i) when a = name -> (
          (* [top_level_uses] certified every site literal-affine. *)
          match key i with Some k -> Var (scalar_of k) | None -> assert false)
      | Index (a, i) -> Index (a, expr i)
      | Unop (op, x) -> Unop (op, expr x)
      | Binop (op, x, y) -> Binop (op, expr x, expr y)
      | Ternary (c, a, b) -> Ternary (expr c, expr a, expr b)
      | Call (f, args) -> Call (f, List.map expr args)
      | (Int_lit _ | Float_lit _ | Var _ | Length _) as d -> d
    in
    { e with edesc }
  in
  let lvalue = function
    | Lindex (a, i) when a = name -> (
        match key i with Some k -> Lvar (scalar_of k) | None -> assert false)
    | Lindex (a, i) -> Lindex (a, expr i)
    | Lvar v -> Lvar v
  in
  let rec stmt s =
    let sdesc =
      match s.sdesc with
      | Sdecl (ty, v, init) -> Sdecl (ty, v, Option.map expr init)
      | Sarray_decl (ty, v, n) -> Sarray_decl (ty, v, expr n)
      | Sassign (lv, op, e) -> Sassign (lvalue lv, op, expr e)
      | Sincr (lv, k) -> Sincr (lvalue lv, k)
      | Sexpr e -> Sexpr (expr e)
      | Sif (c, a, b) -> Sif (expr c, List.map stmt a, List.map stmt b)
      | Swhile (c, b) -> Swhile (expr c, List.map stmt b)
      | Sfor (h, b) ->
          Sfor
            ( {
                for_init = Option.map stmt h.for_init;
                for_cond = Option.map expr h.for_cond;
                for_update = Option.map stmt h.for_update;
              },
              List.map stmt b )
      | Sreturn e -> Sreturn (Option.map expr e)
      | (Sbreak | Scontinue) as d -> d
      | Sblock b -> Sblock (List.map stmt b)
      | Spragma (d, inner) -> Spragma (d, stmt inner)
    in
    { s with sdesc }
  in
  let body' = List.map stmt body in
  let typ = match elem with Eint -> Tint | Edouble -> Tdouble in
  let loc = match body with s :: _ -> s.sloc | [] -> Loc.dummy in
  let decls =
    Hashtbl.fold (fun _ v acc -> v :: acc) scalars []
    |> List.sort compare
    |> List.map (fun v -> { sdesc = Sdecl (typ, v, None); sloc = loc })
  in
  decls @ body'

(* Contraction driver for one function: for every fused loop, find
   arrays whose only life is inside that body (plus one [create]
   clause and the host declaration), and scalarize them. *)
let contract_function ctx (f : func) =
  let contracted = ref [] in
  let rec transform fbody s =
    match s.sdesc with
    | Spragma
        ( Dparallel_loop [],
          ({ sdesc = Sfor (h, body); _ } as for_stmt) )
      when match Hashtbl.find_opt ctx.members for_stmt.sloc with
           | Some ids -> List.length ids > 1
           | None -> false -> (
        match Loop_info.of_stmt ~loop_id:0 s with
        | Some li ->
            let body = unwrap_body body in
            let candidates =
              List.filter
                (fun name ->
                  mentions_outside ~skip:s name fbody <= 2
                  && create_only ~skip:s name fbody
                  && array_decl_of name fbody <> None
                  &&
                  match top_level_uses li name body with
                  | Some sites -> sites <> [] && keys_contractible sites
                  | None -> false)
                (Loop_info.arrays_mentioned li)
            in
            let body =
              List.fold_left
                (fun body name ->
                  let elem = Option.get (array_decl_of name fbody) in
                  contracted := name :: !contracted;
                  contract_body ctx li name elem body)
                body candidates
            in
            ( candidates,
              { s with sdesc = Spragma (Dparallel_loop [], { for_stmt with sdesc = Sfor (h, body) }) }
            )
        | None -> ([], s))
    | Spragma (d, inner) ->
        let names, inner = transform fbody inner in
        (names, { s with sdesc = Spragma (d, inner) })
    | Sblock b ->
        let names, b = transform_body fbody b in
        (names, { s with sdesc = Sblock b })
    | Sif (c, a, b) ->
        let na, a = transform_body fbody a in
        let nb, b = transform_body fbody b in
        (na @ nb, { s with sdesc = Sif (c, a, b) })
    | Swhile (c, b) ->
        let names, b = transform_body fbody b in
        (names, { s with sdesc = Swhile (c, b) })
    | Sfor (h, b) ->
        let names, b = transform_body fbody b in
        (names, { s with sdesc = Sfor (h, b) })
    | _ -> ([], s)
  and transform_body fbody stmts =
    List.fold_left
      (fun (names, acc) s ->
        let ns, s = transform fbody s in
        (names @ ns, acc @ [ s ]))
      ([], []) stmts
  in
  let names, fbody = transform_body f.fbody f.fbody in
  let fbody = List.fold_left (fun body name -> List.map (strip_create name) body) fbody names in
  (!contracted, { f with fbody })

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let all_names (f : func) =
  let tbl = Hashtbl.create 64 in
  let add v = Hashtbl.replace tbl v () in
  List.iter (fun p -> add p.param_name) f.fparams;
  let rec expr e =
    match e.edesc with
    | Var v -> add v
    | Index (a, i) ->
        add a;
        expr i
    | Length a -> add a
    | Int_lit _ | Float_lit _ -> ()
    | Unop (_, x) -> expr x
    | Binop (_, x, y) ->
        expr x;
        expr y
    | Ternary (c, a, b) ->
        expr c;
        expr a;
        expr b
    | Call (_, args) -> List.iter expr args
  in
  let rec stmt s =
    match s.sdesc with
    | Sdecl (_, v, init) ->
        add v;
        Option.iter expr init
    | Sarray_decl (_, v, n) ->
        add v;
        expr n
    | Sassign (lv, _, e) ->
        (match lv with
        | Lvar v -> add v
        | Lindex (a, i) ->
            add a;
            expr i);
        expr e
    | Sincr (lv, _) -> (
        match lv with
        | Lvar v -> add v
        | Lindex (a, i) ->
            add a;
            expr i)
    | Sexpr e -> expr e
    | Sif (c, a, b) ->
        expr c;
        List.iter stmt a;
        List.iter stmt b
    | Swhile (c, b) ->
        expr c;
        List.iter stmt b
    | Sfor (h, b) ->
        Option.iter stmt h.for_init;
        Option.iter expr h.for_cond;
        Option.iter stmt h.for_update;
        List.iter stmt b
    | Sreturn e -> Option.iter expr e
    | Sbreak | Scontinue -> ()
    | Sblock b -> List.iter stmt b
    | Spragma (_, inner) -> stmt inner
  in
  List.iter stmt f.fbody;
  tbl

let apply (program : Ast.program) =
  let groups = ref [] in
  let contracted = ref [] in
  let funcs =
    List.map
      (fun f ->
        let members = Hashtbl.create 8 in
        (match Loop_info.extract f with
        | loops ->
            List.iter
              (fun (li : Loop_info.t) ->
                Hashtbl.replace members li.Loop_info.loop_loc [ li.Loop_info.loop_id ])
              loops
        | exception Loc.Error _ -> ());
        if Hashtbl.length members < 2 then f
        else begin
          let ctx = { members; fresh = ref 0; used = all_names f } in
          let f = { f with fbody = fuse_seq ctx f.fbody } in
          let names, f = contract_function ctx f in
          contracted := !contracted @ names;
          (* Re-extract on the rewritten function: every surviving loop
             gets a group entry carrying the original ids it absorbed,
             so labels keep naming source loops even after positions
             shift. *)
          (match Loop_info.extract f with
          | loops ->
              List.iter
                (fun (li : Loop_info.t) ->
                  let ids =
                    match Hashtbl.find_opt ctx.members li.Loop_info.loop_loc with
                    | Some ids -> ids
                    | None -> [ li.Loop_info.loop_id ]
                  in
                  groups := (li.Loop_info.loop_loc, ids) :: !groups)
                loops
          | exception Loc.Error _ -> ());
          f
        end)
      program.funcs
  in
  ({ program with funcs }, { groups = List.rev !groups; contracted = !contracted })
