open Mgacc_analysis

type options = {
  enable_distribution : bool;
  enable_layout_transform : bool;
  enable_miss_check_elim : bool;
}

let default_options =
  { enable_distribution = true; enable_layout_transform = true; enable_miss_check_elim = true }

type t = {
  loop : Loop_info.t;
  accesses : Access.array_access list;
  configs : Array_config.t list;
  free_vars : string list;
  options : options;
  inner_parallel : (Loop_info.t * int) option;
}

let of_loop ?(options = default_options) loop =
  let accesses = Access.analyze loop in
  let inner_parallel = Loop_info.find_inner_parallel loop in
  (* With an inner vector loop, adjacent threads differ in the *inner*
     index: coalescing is judged against it. *)
  let classify =
    match inner_parallel with
    | Some (inner, _) -> Coalesce.make inner
    | None -> Coalesce.make loop
  in
  let configs = Array_config.build ~classify loop accesses in
  { loop; accesses; configs; free_vars = Loop_info.free_vars loop; options; inner_parallel }

let thread_multiplier t = match t.inner_parallel with Some (_, width) -> width | None -> 1

let config_for t name = Array_config.find t.configs name

let placement_of t name =
  if not t.options.enable_distribution then Array_config.Replicated
  else
    match config_for t name with
    | Some c -> c.Array_config.placement
    | None -> Array_config.Replicated

let layout_transformed t name =
  t.options.enable_layout_transform
  && match config_for t name with Some c -> c.Array_config.layout_transform | None -> false

let needs_miss_check t name =
  match placement_of t name with
  | Array_config.Replicated -> false
  | Array_config.Distributed -> (
      match config_for t name with
      | None -> false
      | Some c ->
          c.Array_config.written
          && not (t.options.enable_miss_check_elim && c.Array_config.writes_in_window))

let needs_dirty_tracking t ~num_gpus name =
  num_gpus > 1
  && placement_of t name = Array_config.Replicated
  && match config_for t name with Some c -> c.Array_config.written | None -> false

let classifier t =
  let base =
    match t.inner_parallel with
    | Some (inner, _) -> Coalesce.make inner
    | None -> Coalesce.make t.loop
  in
  fun array idx ->
    let mode = base idx in
    if layout_transformed t array then Coalesce.apply_layout_transform mode else mode

let pp ppf t =
  Format.fprintf ppf "@[<v>loop %d (var %s):@," t.loop.Loop_info.loop_id t.loop.Loop_info.loop_var;
  List.iter (fun c -> Format.fprintf ppf "  %a@," Array_config.pp c) t.configs;
  Format.fprintf ppf "@]"
