open Mgacc_analysis

type options = {
  enable_distribution : bool;
  enable_layout_transform : bool;
  enable_miss_check_elim : bool;
  enable_fusion : bool;
  enable_decomp2d : bool;
}

let default_options =
  {
    enable_distribution = true;
    enable_layout_transform = true;
    enable_miss_check_elim = true;
    enable_fusion = false;
    enable_decomp2d = false;
  }

(* Per-GPU read-window shape of a launch (lazy coherence lookahead). The
   type lives here so the per-plan window memo table can, but the
   summaries themselves are computed by [Program_plan]. *)
type window = Whole_array | Affine_window of { coeff : int; cmin : int; cmax : int }

type t = {
  loop : Loop_info.t;
  accesses : Access.array_access list;
  configs : Array_config.t list;
  free_vars : string list;
  options : options;
  inner_parallel : (Loop_info.t * int) option;
  tile2d : Tile2d.t option;
  window_memo : (string, window option) Hashtbl.t;
}

let of_loop ?(options = default_options) loop =
  let accesses = Access.analyze loop in
  let inner_parallel = Loop_info.find_inner_parallel loop in
  (* With an inner vector loop, adjacent threads differ in the *inner*
     index: coalescing is judged against it. *)
  let classify =
    match inner_parallel with
    | Some (inner, _) -> Coalesce.make inner
    | None -> Coalesce.make loop
  in
  let configs = Array_config.build ~classify loop accesses in
  let tile2d =
    if options.enable_decomp2d && options.enable_distribution then
      Tile2d.analyze loop ~configs
    else None
  in
  {
    loop;
    accesses;
    configs;
    free_vars = Loop_info.free_vars loop;
    options;
    inner_parallel;
    tile2d;
    window_memo = Hashtbl.create 4;
  }

let thread_multiplier t = match t.inner_parallel with Some (_, width) -> width | None -> 1

let config_for t name = Array_config.find t.configs name

let placement_of t name =
  if not t.options.enable_distribution then Array_config.Replicated
  else
    match config_for t name with
    | Some c -> c.Array_config.placement
    | None -> Array_config.Replicated

(* Fusion-mode data-layout transposition (paper §V). Beyond the baseline
   localaccess-gated transform, fusion mode transposes any replicated
   read-only array whose read sites are affine but strided — the pattern
   where the fastest-varying subscript is not the parallel index. The
   one-time repack costs ~16 bytes/element (read + write); each launch
   saves one memory transaction per strided site per element, so over a
   nominal launch count the rewrite pays whenever a strided site exists
   and no data-dependent (Random) site would defeat the transposition. *)
let relayout_amortize_launches = 8

let base_classifier t =
  match t.inner_parallel with Some (inner, _) -> Coalesce.make inner | None -> Coalesce.make t.loop

let fusion_relayout t name =
  t.options.enable_fusion && t.options.enable_layout_transform
  &&
  match (config_for t name, Access.find t.accesses name) with
  | Some c, Some acc ->
      (not c.Array_config.layout_transform)
      && c.Array_config.localaccess = None
      && Access.read_only acc
      && placement_of t name = Array_config.Replicated
      &&
      let modes = List.map (base_classifier t) acc.Access.reads in
      let strided =
        List.length (List.filter (function Coalesce.Strided _ -> true | _ -> false) modes)
      in
      let random = List.exists (function Coalesce.Random -> true | _ -> false) modes in
      strided >= 1 && (not random) && 8 * strided * relayout_amortize_launches >= 16
  | _ -> false

let relayout_arrays t =
  List.filter_map
    (fun c -> if fusion_relayout t c.Array_config.array then Some c.Array_config.array else None)
    t.configs

let layout_transformed t name =
  (t.options.enable_layout_transform
  && match config_for t name with Some c -> c.Array_config.layout_transform | None -> false)
  || fusion_relayout t name

let needs_miss_check t name =
  match placement_of t name with
  | Array_config.Replicated -> false
  | Array_config.Distributed -> (
      match config_for t name with
      | None -> false
      | Some c ->
          c.Array_config.written
          && not (t.options.enable_miss_check_elim && c.Array_config.writes_in_window))

let needs_dirty_tracking t ~num_gpus name =
  num_gpus > 1
  && placement_of t name = Array_config.Replicated
  && match config_for t name with Some c -> c.Array_config.written | None -> false

let classifier t =
  let base =
    match t.inner_parallel with
    | Some (inner, _) -> Coalesce.make inner
    | None -> Coalesce.make t.loop
  in
  fun array idx ->
    let mode = base idx in
    if layout_transformed t array then Coalesce.apply_layout_transform mode else mode

(* ------------------------------------------------------------------ *)
(* Static per-iteration cost and schedule hint for the scheduler.      *)
(* ------------------------------------------------------------------ *)

(* Per-iteration work varies when an inner loop's trip count depends on
   the parallel index (BFS runs [degree[i]] edge visits per node), or when
   an index-dependent branch decides whether an inner loop runs at all
   (BFS's frontier test skips the whole body off-frontier). Dynamic
   *subscripts* alone (MD's neighbor gathers) do not skew work: every
   iteration still runs the same fixed-trip loops, so a static throughput
   model remains valid for them. The taint analysis tells the two apart. *)
let schedule_hint t =
  let open Mgacc_minic.Ast in
  let taint = Mgacc_analysis.Taint.compute t.loop in
  let varies e = Mgacc_analysis.Taint.expr_tainted taint e in
  let rec contains_loop s =
    match s.sdesc with
    | Sfor _ | Swhile _ -> true
    | Sif (_, a, b) -> List.exists contains_loop a || List.exists contains_loop b
    | Sblock body -> List.exists contains_loop body
    | Spragma (_, inner) -> contains_loop inner
    | Sdecl _ | Sarray_decl _ | Sassign _ | Sincr _ | Sexpr _ | Sreturn _ | Sbreak | Scontinue ->
        false
  in
  let rec stmt_irregular s =
    match s.sdesc with
    | Sfor (h, body) ->
        (match h.for_cond with Some c -> varies c | None -> false)
        || List.exists stmt_irregular body
    | Swhile (c, body) -> varies c || List.exists stmt_irregular body
    | Sif (c, a, b) ->
        (varies c && (List.exists contains_loop a || List.exists contains_loop b))
        || List.exists stmt_irregular a
        || List.exists stmt_irregular b
    | Sblock body -> List.exists stmt_irregular body
    | Spragma (_, inner) -> stmt_irregular inner
    | Sdecl _ | Sarray_decl _ | Sassign _ | Sincr _ | Sexpr _ | Sreturn _ | Sbreak | Scontinue ->
        false
  in
  if List.exists stmt_irregular t.loop.Loop_info.body then `Irregular else `Uniform

let static_iter_cost t =
  let open Mgacc_minic.Ast in
  let cost = Mgacc_gpusim.Cost.zero () in
  let classify = classifier t in
  let charge array idx =
    (* Element width is 8 bytes for doubles; ints are narrower but the
       seeding model only needs relative magnitudes. *)
    match classify array idx with
    | Mgacc_analysis.Coalesce.Broadcast ->
        cost.Mgacc_gpusim.Cost.broadcast_bytes <- cost.Mgacc_gpusim.Cost.broadcast_bytes + 8
    | Mgacc_analysis.Coalesce.Coalesced ->
        cost.Mgacc_gpusim.Cost.coalesced_bytes <- cost.Mgacc_gpusim.Cost.coalesced_bytes + 8
    | Mgacc_analysis.Coalesce.Strided _ | Mgacc_analysis.Coalesce.Random ->
        cost.Mgacc_gpusim.Cost.random_accesses <- cost.Mgacc_gpusim.Cost.random_accesses + 1;
        cost.Mgacc_gpusim.Cost.random_bytes <- cost.Mgacc_gpusim.Cost.random_bytes + 8
  in
  let rec expr e =
    match e.edesc with
    | Int_lit _ | Float_lit _ | Var _ | Length _ -> ()
    | Index (a, idx) ->
        charge a idx;
        expr idx
    | Unop ((Neg : unop), x) ->
        cost.Mgacc_gpusim.Cost.flops <- cost.Mgacc_gpusim.Cost.flops + 1;
        expr x
    | Unop (_, x) ->
        cost.Mgacc_gpusim.Cost.int_ops <- cost.Mgacc_gpusim.Cost.int_ops + 1;
        expr x
    | Binop ((Add | Sub | Mul | Div | Mod), x, y) ->
        cost.Mgacc_gpusim.Cost.flops <- cost.Mgacc_gpusim.Cost.flops + 1;
        expr x;
        expr y
    | Binop (_, x, y) ->
        cost.Mgacc_gpusim.Cost.int_ops <- cost.Mgacc_gpusim.Cost.int_ops + 1;
        expr x;
        expr y
    | Ternary (c, a, b) ->
        cost.Mgacc_gpusim.Cost.int_ops <- cost.Mgacc_gpusim.Cost.int_ops + 1;
        expr c;
        expr a;
        expr b
    | Call (_, args) ->
        (* A builtin (sqrt, exp, ...) is several flops; 4 is the order the
           CPU/GPU models use for transcendentals. *)
        cost.Mgacc_gpusim.Cost.flops <- cost.Mgacc_gpusim.Cost.flops + 4;
        List.iter expr args
  in
  let lvalue = function Lvar _ -> () | Lindex (a, idx) -> charge a idx; expr idx in
  let rec stmt s =
    match s.sdesc with
    | Sdecl (_, _, init) -> Option.iter expr init
    | Sarray_decl (_, _, n) -> expr n
    | Sassign (lv, _, e) ->
        lvalue lv;
        expr e
    | Sincr (lv, _) ->
        cost.Mgacc_gpusim.Cost.int_ops <- cost.Mgacc_gpusim.Cost.int_ops + 1;
        lvalue lv
    | Sexpr e -> expr e
    | Sif (c, a, b) ->
        expr c;
        List.iter stmt a;
        List.iter stmt b
    | Swhile (c, body) ->
        expr c;
        List.iter stmt body
    | Sfor (h, body) ->
        Option.iter stmt h.for_init;
        Option.iter expr h.for_cond;
        Option.iter stmt h.for_update;
        List.iter stmt body
    | Sreturn e -> Option.iter expr e
    | Sbreak | Scontinue -> ()
    | Sblock body -> List.iter stmt body
    | Spragma (_, inner) -> stmt inner
  in
  List.iter stmt t.loop.Loop_info.body;
  cost

let pp ppf t =
  Format.fprintf ppf "@[<v>loop %d (var %s):@," t.loop.Loop_info.loop_id t.loop.Loop_info.loop_var;
  List.iter (fun c -> Format.fprintf ppf "  %a@," Array_config.pp c) t.configs;
  Format.fprintf ppf "@]"
