(** Whole-program translation: typecheck once, plan every parallel loop.

    Plans are indexed by the source location of the annotated loop, which
    is how the runtime recognizes a loop when the host interpreter reaches
    it (and how kernel compilations are cached across repeated
    executions of the same loop — the reuse that iterative applications
    depend on). *)

open Mgacc_minic

type t

val build : ?options:Kernel_plan.options -> Ast.program -> t
(** Typechecks the program (raising {!Loc.Error} on failure) and builds a
    plan for every parallel loop in every function. Under
    [enable_fusion] the {!Fusion} pass rewrites the program first (and
    the rewrite is re-typechecked); {!program} then returns the fused
    program, which is what the runtime must interpret. *)

val program : t -> Ast.program
(** The planned program — the fusion pass's output when [enable_fusion]
    is set, the input program unchanged otherwise. *)

val options : t -> Kernel_plan.options

(** {2 Fused-group structure} *)

val fused_members : t -> Mgacc_analysis.Loop_info.t -> int list
(** Original source-loop ids a planned loop executes — [\[loop_id\]]
    for unfused loops, two or more ids for a fused kernel. *)

val kernel_label : t -> Mgacc_analysis.Loop_info.t -> string
(** Launch label: ["loop<id>"] (byte-identical to the historical label
    when fusion is off) or ["loop0+1"] for a fused group, so spans and
    [--blame] keep attributing time to the constituent source loops. *)

val contracted_arrays : t -> string list
(** Arrays the fusion pass scalarized away: they exist in the source
    but never reach the darray/coherence layer. *)

val plan_for : t -> Mgacc_analysis.Loop_info.t -> Kernel_plan.t
(** Look up by loop location; falls back to planning on the fly for loops
    constructed outside [build] (e.g. in tests). *)

val all_plans : t -> Kernel_plan.t list
(** Every planned loop, in source order across functions. *)

val loop_count : t -> int

(** {2 Consumer lookahead (lazy coherence)}

    The lazy coherence protocol ships a writer's dirty intervals only to
    destinations whose {e next read window} covers them; these summaries
    describe that window statically (docs/COHERENCE.md). *)

type window = Kernel_plan.window =
  | Whole_array  (** conservative: dynamic/non-literal subscripts, mixed
                     coefficients, or a distributed next reader *)
  | Affine_window of { coeff : int; cmin : int; cmax : int }
      (** every read is [coeff*i + c] with [c] in [\[cmin, cmax\]]; a
          GPU covering iterations [\[lo, hi)] reads
          [\[coeff*lo + cmin, coeff*(hi-1) + cmax\]] (for positive
          [coeff]) *)

type lookahead =
  | No_future_read  (** no plan in the program reads the array on device *)
  | Reads_next of { loop_loc : Loc.t; window : window }

val read_window_of : Kernel_plan.t -> array:string -> window option
(** The window of the plan's own real device reads of [array]; [None]
    when the plan performs none (writes and reduction self-reads only).
    Memoized per plan (the summary is a pure function of the plan). *)

val read_window_of_uncached : Kernel_plan.t -> array:string -> window option
(** The computation behind {!read_window_of}, bypassing the memo table
    (exposed so the tests can assert the cache is transparent). *)

val next_read : t -> after:Loc.t -> array:string -> lookahead
(** The next plan in cyclic source order after the loop at [after] (the
    current loop itself is scanned last, since iterative applications
    re-enter their own loops) with real device reads of [array].
    Reduction self-reads — the RHS read recorded for the Set form
    [a\[c\] = a\[c\] + x] of a [reductiontoarray] statement — are not
    real reads: the generated kernel accumulates into per-GPU partials
    and never loads the replica. Memoized per [(after, array)] pair —
    the scan result only depends on the immutable plan order. *)

val next_read_uncached : t -> after:Loc.t -> array:string -> lookahead
(** The scan behind {!next_read}, bypassing the memo table (exposed so
    the tests can assert the cache is transparent). *)
