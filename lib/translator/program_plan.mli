(** Whole-program translation: typecheck once, plan every parallel loop.

    Plans are indexed by the source location of the annotated loop, which
    is how the runtime recognizes a loop when the host interpreter reaches
    it (and how kernel compilations are cached across repeated
    executions of the same loop — the reuse that iterative applications
    depend on). *)

open Mgacc_minic

type t

val build : ?options:Kernel_plan.options -> Ast.program -> t
(** Typechecks the program (raising {!Loc.Error} on failure) and builds a
    plan for every parallel loop in every function. *)

val program : t -> Ast.program
val options : t -> Kernel_plan.options

val plan_for : t -> Mgacc_analysis.Loop_info.t -> Kernel_plan.t
(** Look up by loop location; falls back to planning on the fly for loops
    constructed outside [build] (e.g. in tests). *)

val all_plans : t -> Kernel_plan.t list
(** Every planned loop, in source order across functions. *)

val loop_count : t -> int
