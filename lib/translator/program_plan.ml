open Mgacc_minic

type t = {
  program : Ast.program;
  options : Kernel_plan.options;
  plans : (Loc.t, Kernel_plan.t) Hashtbl.t;
  order : Kernel_plan.t list;
}

let build ?(options = Kernel_plan.default_options) program =
  Typecheck.check_program program;
  let plans = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun f ->
      List.iter
        (fun loop ->
          let plan = Kernel_plan.of_loop ~options loop in
          Hashtbl.replace plans loop.Mgacc_analysis.Loop_info.loop_loc plan;
          order := plan :: !order)
        (Mgacc_analysis.Loop_info.extract f))
    program.Ast.funcs;
  { program; options; plans; order = List.rev !order }

let program t = t.program
let options t = t.options

let plan_for t (loop : Mgacc_analysis.Loop_info.t) =
  match Hashtbl.find_opt t.plans loop.Mgacc_analysis.Loop_info.loop_loc with
  | Some plan -> plan
  | None ->
      let plan = Kernel_plan.of_loop ~options:t.options loop in
      Hashtbl.replace t.plans loop.Mgacc_analysis.Loop_info.loop_loc plan;
      plan

let all_plans t = t.order
let loop_count t = List.length t.order
