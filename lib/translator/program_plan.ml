open Mgacc_minic

type window = Kernel_plan.window =
  | Whole_array
  | Affine_window of { coeff : int; cmin : int; cmax : int }

type lookahead = No_future_read | Reads_next of { loop_loc : Loc.t; window : window }

type t = {
  program : Ast.program;
  options : Kernel_plan.options;
  plans : (Loc.t, Kernel_plan.t) Hashtbl.t;
  order : Kernel_plan.t list;
  fused : (Loc.t, int list) Hashtbl.t;  (** surviving loop -> original ids *)
  contracted : string list;
  order_arr : Kernel_plan.t array;
  loc_index : (Loc.t, int) Hashtbl.t;
  next_memo : (Loc.t * string, lookahead) Hashtbl.t;
}

let build ?(options = Kernel_plan.default_options) program =
  Typecheck.check_program program;
  let program, summary =
    if options.Kernel_plan.enable_fusion then begin
      let program, summary = Fusion.apply program in
      (* The pass is a rewrite: re-typecheck its output so a fusion bug
         surfaces as a located error here, not as a runtime crash. *)
      Typecheck.check_program program;
      (program, summary)
    end
    else (program, Fusion.empty_summary)
  in
  let plans = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun f ->
      List.iter
        (fun loop ->
          let plan = Kernel_plan.of_loop ~options loop in
          Hashtbl.replace plans loop.Mgacc_analysis.Loop_info.loop_loc plan;
          order := plan :: !order)
        (Mgacc_analysis.Loop_info.extract f))
    program.Ast.funcs;
  let order = List.rev !order in
  let fused = Hashtbl.create 8 in
  List.iter (fun (loc, ids) -> Hashtbl.replace fused loc ids) summary.Fusion.groups;
  let order_arr = Array.of_list order in
  let loc_index = Hashtbl.create 16 in
  Array.iteri
    (fun i p ->
      Hashtbl.replace loc_index p.Kernel_plan.loop.Mgacc_analysis.Loop_info.loop_loc i)
    order_arr;
  {
    program;
    options;
    plans;
    order;
    fused;
    contracted = summary.Fusion.contracted;
    order_arr;
    loc_index;
    next_memo = Hashtbl.create 32;
  }

let program t = t.program
let options t = t.options

(* ---------------- fused-group structure ---------------- *)

let fused_members t (loop : Mgacc_analysis.Loop_info.t) =
  match Hashtbl.find_opt t.fused loop.Mgacc_analysis.Loop_info.loop_loc with
  | Some ids -> ids
  | None -> [ loop.Mgacc_analysis.Loop_info.loop_id ]

(* With fusion off the table is empty and this is byte-identical to the
   historical [Printf.sprintf "loop%d" loop_id] label. Fused kernels
   carry every constituent source loop id ("loop0+1"), which is how
   spans, traces, and --blame keep attributing time to source loops. *)
let kernel_label t (loop : Mgacc_analysis.Loop_info.t) =
  match Hashtbl.find_opt t.fused loop.Mgacc_analysis.Loop_info.loop_loc with
  | Some (_ :: _ :: _ as ids) ->
      Printf.sprintf "loop%s" (String.concat "+" (List.map string_of_int ids))
  | Some [ id ] -> Printf.sprintf "loop%d" id
  | Some [] | None -> Printf.sprintf "loop%d" loop.Mgacc_analysis.Loop_info.loop_id

let contracted_arrays t = t.contracted

let plan_for t (loop : Mgacc_analysis.Loop_info.t) =
  match Hashtbl.find_opt t.plans loop.Mgacc_analysis.Loop_info.loop_loc with
  | Some plan -> plan
  | None ->
      let plan = Kernel_plan.of_loop ~options:t.options loop in
      Hashtbl.replace t.plans loop.Mgacc_analysis.Loop_info.loop_loc plan;
      plan

let all_plans t = t.order
let loop_count t = List.length t.order

(* ---------------- consumer lookahead (lazy coherence) ---------------- *)

module Access = Mgacc_analysis.Access
module Affine = Mgacc_analysis.Affine
module Loop_info = Mgacc_analysis.Loop_info

(* Plain reads of [acc]'s array minus the reduction self-reads: the
   Set-form reduction statement [a[c] = a[c] + x] records a read of
   [a[c]] that the generated kernel never performs (it accumulates into
   per-GPU partials, see Kernel_compile), so a subscript that matches a
   reduction-write subscript textually cancels one such read. *)
let real_reads (acc : Access.array_access) =
  match acc.Access.reduction_writes with
  | [] -> acc.Access.reads
  | rws ->
      let counts = Hashtbl.create 4 in
      List.iter
        (fun e ->
          let k = Pretty.expr_to_string e in
          Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
        rws;
      List.filter
        (fun e ->
          let k = Pretty.expr_to_string e in
          match Hashtbl.find_opt counts k with
          | Some n when n > 0 ->
              Hashtbl.replace counts k (n - 1);
              false
          | _ -> true)
        acc.Access.reads

(* Summarize a reader plan's subscripts into a per-GPU window shape:
   every read must be a literal affine form [coeff*i + const] with one
   shared coefficient, else the whole array is assumed read. *)
let summarize_reads (p : Kernel_plan.t) reads =
  let loop = p.Kernel_plan.loop in
  let is_uniform = Access.is_uniform_in loop in
  let literal e =
    match Affine.of_expr ~loop_var:loop.Loop_info.loop_var ~is_uniform e with
    | Some a when Affine.is_literal a -> Some a
    | _ -> None
  in
  let forms = List.map literal reads in
  if List.exists Option.is_none forms then Whole_array
  else
    match List.filter_map Fun.id forms with
    | [] -> Whole_array
    | f0 :: rest ->
        if List.exists (fun (f : Affine.t) -> f.Affine.coeff <> f0.Affine.coeff) rest then
          Whole_array
        else
          let consts = List.map (fun (f : Affine.t) -> f.Affine.const) (f0 :: rest) in
          Affine_window
            {
              coeff = f0.Affine.coeff;
              cmin = List.fold_left min f0.Affine.const consts;
              cmax = List.fold_left max f0.Affine.const consts;
            }

(* What the given plan itself reads of [array], as a window — the data
   loader uses this to pull only the current launch's inputs valid. *)
let read_window_of_uncached (p : Kernel_plan.t) ~array =
  match Access.find p.Kernel_plan.accesses array with
  | None -> None
  | Some acc -> (
      match real_reads acc with [] -> None | reads -> Some (summarize_reads p reads))

(* The summary is a pure function of the (immutable) plan, queried by
   the data loader on every launch of every loop: memoize it per plan. *)
let read_window_of (p : Kernel_plan.t) ~array =
  match Hashtbl.find_opt p.Kernel_plan.window_memo array with
  | Some w -> w
  | None ->
      let w = read_window_of_uncached p ~array in
      Hashtbl.replace p.Kernel_plan.window_memo array w;
      w

(* The next plan (in cyclic source order after [after], the current plan
   itself scanned last — iterative applications re-run their loops) that
   performs real device reads of [array], summarized as a window. Reads
   under a distributed placement fall back to [Whole_array]: validity
   intervals only govern replicas, and the transition flushes through
   the host anyway. *)
let next_read_uncached t ~(after : Loc.t) ~array =
  let order = t.order_arr in
  let n = Array.length order in
  let cur = match Hashtbl.find_opt t.loc_index after with Some i -> i | None -> -1 in
  let candidate p =
    match Access.find p.Kernel_plan.accesses array with
    | None -> None
    | Some acc -> (
        match real_reads acc with
        | [] -> None
        | reads ->
            let window =
              match Kernel_plan.placement_of p array with
              | Mgacc_analysis.Array_config.Distributed -> Whole_array
              | Mgacc_analysis.Array_config.Replicated -> summarize_reads p reads
            in
            Some (Reads_next { loop_loc = p.Kernel_plan.loop.Loop_info.loop_loc; window }))
  in
  if n = 0 then No_future_read
  else if cur < 0 then
    (* Unknown current loop (planned outside [build]): any reader counts. *)
    match List.find_map candidate t.order with
    | Some l -> l
    | None -> No_future_read
  else begin
    let found = ref None in
    let k = ref 1 in
    while !found = None && !k <= n do
      let p = order.((cur + !k) mod n) in
      found := candidate p;
      incr k
    done;
    match !found with Some l -> l | None -> No_future_read
  end

(* The scan result depends only on the (immutable) plan order, so each
   (current loop, array) pair is resolved once per program plan instead
   of re-walking the launch list on every reconciliation. *)
let next_read t ~(after : Loc.t) ~array =
  match Hashtbl.find_opt t.next_memo (after, array) with
  | Some l -> l
  | None ->
      let l = next_read_uncached t ~after ~array in
      Hashtbl.replace t.next_memo (after, array) l;
      l
