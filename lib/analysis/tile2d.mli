(** 2-D block-decomposition eligibility analysis.

    A parallel loop qualifies for a 2-D (row x column) decomposition when
    it is a row-major stencil: an outer parallel loop over rows with
    [localaccess] windows, one inner parallel (vector) loop over columns,
    and every subscript of every distributed array of the shape
    [(row + dr) * stride + col + dc] with literal offsets — exactly what
    the parser's 2-D subscript desugaring produces. Reads determine the
    per-array column halo; writes must hit the iteration's own cell so
    that restricting the column loop keeps all writes inside the tile.

    The decision is conservative: any subscript that does not fit (or a
    loop with no inner parallel loop, mixed strides, or distributed
    reduction destinations) disables tiling and the runtime keeps the
    pinned 1-D path. *)

open Mgacc_minic

type halo = { row_l : int; row_r : int; col_l : int; col_r : int }
(** Per-array halo widths of a 2-D stencil: rows above/below and columns
    left/right of the owned tile that reads may touch. *)

type t = {
  inner_var : string;  (** the inner (column) loop variable *)
  stride : Ast.expr;  (** row width shared by every distributed array *)
  halos : (string * halo) list;  (** per-array stencil halo widths *)
}

val col_lo_param : string
(** ["__col_lo"] — reserved int kernel parameter carrying each GPU's
    first owned column. *)

val col_hi_param : string
(** ["__col_hi"] — one past each GPU's last owned column. *)

val analyze : Loop_info.t -> configs:Array_config.t list -> t option
(** [None] when the loop is not 2-D eligible. *)

val halo_of : t -> string -> halo
(** The halo of one array (all-zero if it has no accesses). *)

val restrict_columns : Loop_info.t -> inner_var:string -> Loop_info.t
(** Rewrite the body so inner loops over [inner_var] iterate only
    [[__col_lo, __col_hi)]: the init clamps up via the [max] builtin, the
    condition gains a [< __col_hi] conjunct. With sentinel bounds
    (min_int, max_int) the rewritten loop is behaviorally identical to
    the original. *)

val grid_of : num_gpus:int -> int * int
(** [(pr, pc)] with [pr * pc = num_gpus] and [pc] the largest divisor not
    exceeding [sqrt num_gpus] — the canonical process grid both the
    runtime's darray tiles and the kernel column bounds are derived
    from. *)

val pp : Format.formatter -> t -> unit
