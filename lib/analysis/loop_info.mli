(** Extraction and normalization of directive-annotated parallel loops.

    A parallel loop is a [for] statement annotated (possibly through a stack
    of pragmas) with [#pragma acc parallel loop]; a [#pragma acc
    localaccess] on the same stack contributes access windows, as do
    [localaccess] clauses on the loop directive itself. The iteration space
    is normalized to [lower <= i < upper] with unit step; anything else is
    rejected with a located error, mirroring the OpenACC restriction that
    annotated loops be countable. *)

open Mgacc_minic

type t = {
  loop_id : int;  (** position among the function's parallel loops, from 0 *)
  loop_var : string;
  lower : Ast.expr;
  upper : Ast.expr;  (** exclusive *)
  body : Ast.stmt list;
  clauses : Ast.clause list;  (** clauses of the parallel-loop directive *)
  localaccess : Ast.localaccess_spec list;  (** merged: standalone directive + clause *)
  scalar_reductions : (Ast.redop * string) list;
  array_reductions : (Ast.redop * string) list;
      (** destinations of [reductiontoarray] statements in the body *)
  loop_loc : Loc.t;
}

val of_stmt : loop_id:int -> Ast.stmt -> t option
(** [of_stmt ~loop_id s] is [Some loop] when [s] is a pragma stack whose
    directives include a parallel-loop directive and whose innermost
    statement is a [for] loop; [None] when the stack carries no
    parallel-loop directive. Raises {!Loc.Error} when the directive is
    present but the loop cannot be normalized. *)

val extract : Ast.func -> t list
(** All parallel loops of a function, in source order. Raises {!Loc.Error}
    if an annotated loop cannot be normalized. *)

val localaccess_for : t -> string -> Ast.localaccess_spec option
(** The window declared for a given array, if any. *)

val arrays_mentioned : t -> string list
(** Names of all arrays read or written in the loop body (syntactic),
    sorted, without duplicates. *)

val find_inner_parallel : t -> (t * int) option
(** The first nested [#pragma acc loop] inside the body, if any, as its own
    normalized loop info (with [loop_id = -1]) plus its vector width (the
    [vector(n)] clause, defaulting to 32 — one warp). Kernels with an inner
    parallel loop execute its iterations across vector lanes: occupancy
    multiplies by the width, and memory coalescing is judged against the
    {e inner} index (adjacent lanes differ in it), which is the nested
    parallelism the paper's §VI calls for. *)

val free_vars : t -> string list
(** Names (scalars and arrays) the body uses but does not declare,
    excluding the loop variable: the kernel's parameters. Sorted, without
    duplicates. Scalars that are assigned (but not declared) in the body
    are included — they become firstprivate kernel parameters. *)
