open Mgacc_minic
open Ast

type placement = Replicated | Distributed

type t = {
  array : string;
  read : bool;
  written : bool;
  reduction : Ast.redop option;
  localaccess : Ast.localaccess_spec option;
  placement : placement;
  writes_in_window : bool;
  coalesced_reads : bool;
  layout_transform : bool;
}

(* A write [coeff*i + const] (no symbolic terms) is provably inside the
   iteration's OWNED block [stride*i, stride*(i+1) - 1] iff the stride
   matches and the constant offset lies within it. Deliberately stricter
   than the read window: a write into the halo would land in a replica the
   owner GPU never sees, so halo slack must not license check elimination. *)
let write_in_window loop (spec : localaccess_spec) idx =
  match Access.classify_index loop idx with
  | Access.Dynamic -> false
  | Access.Affine a -> (
      match spec.la_stride.edesc with
      | Int_lit stride ->
          Affine.is_literal a && a.Affine.coeff = stride && a.Affine.const >= 0
          && a.Affine.const <= stride - 1
      | _ -> false)

let build ?classify (loop : Loop_info.t) accesses =
  let coalesce = match classify with Some c -> c | None -> Coalesce.make loop in
  List.map
    (fun (a : Access.array_access) ->
      let localaccess = Loop_info.localaccess_for loop a.Access.array in
      let reduction =
        List.find_map
          (fun (op, name) -> if name = a.Access.array then Some op else None)
          loop.Loop_info.array_reductions
      in
      let written = a.Access.writes <> [] in
      let placement =
        match (localaccess, reduction) with
        | Some _, None -> Distributed
        | _ -> Replicated
      in
      let writes_in_window =
        match (placement, localaccess) with
        | Distributed, Some spec ->
            written && List.for_all (write_in_window loop spec) a.Access.writes
        | _ -> false
      in
      let modes = List.map coalesce a.Access.reads in
      let coalesced_reads =
        a.Access.reads <> []
        && List.for_all
             (function Coalesce.Broadcast | Coalesce.Coalesced -> true | _ -> false)
             modes
      in
      let layout_transform =
        Access.read_only a && localaccess <> None && (not coalesced_reads)
        && List.for_all (function Coalesce.Random -> false | _ -> true) modes
      in
      {
        array = a.Access.array;
        read = a.Access.reads <> [];
        written;
        reduction;
        localaccess;
        placement;
        writes_in_window;
        coalesced_reads;
        layout_transform;
      })
    accesses

let find configs name = List.find_opt (fun c -> c.array = name) configs

let pp ppf c =
  Format.fprintf ppf "%s: %s%s%s placement=%s%s%s%s" c.array
    (if c.read then "R" else "")
    (if c.written then "W" else "")
    (match c.reduction with Some op -> Printf.sprintf " red(%s)" (redop_to_string op) | None -> "")
    (match c.placement with Replicated -> "replicated" | Distributed -> "distributed")
    (if c.writes_in_window then " writes-in-window" else "")
    (if c.coalesced_reads then " coalesced" else "")
    (if c.layout_transform then " layout-transform" else "")
