open Mgacc_minic.Ast

type mode = Broadcast | Coalesced | Strided of int | Random

type classifier = Mgacc_minic.Ast.expr -> mode

(* Symbolic linearity in the loop variable: [uniform * i + uniform] where
   the multiplier is not a compile-time constant (e.g. x[i*f + j] with f a
   kernel scalar). The exact stride is unknown, but the access pattern is
   strided, not data-dependent — exactly what the layout transformation
   repairs. Reported as [Strided 0]. *)
let rec linearity ~loop_var ~is_uniform e =
  if Affine.is_uniform_expr ~is_uniform e then `Zero
  else
    match e.edesc with
    | Var v when v = loop_var -> `Linear
    | Unop ((Neg | Cast_int), x) -> linearity ~loop_var ~is_uniform x
    | Binop ((Add | Sub), a, b) -> (
        match (linearity ~loop_var ~is_uniform a, linearity ~loop_var ~is_uniform b) with
        | `No, _ | _, `No -> `No
        | `Zero, `Zero -> `Zero
        | _ -> `Linear)
    | Binop (Mul, a, b) -> (
        match (linearity ~loop_var ~is_uniform a, linearity ~loop_var ~is_uniform b) with
        | `Zero, `Linear | `Linear, `Zero -> `Linear
        | `Zero, `Zero -> `Zero
        | _ -> `No)
    | _ -> `No

let make (loop : Loop_info.t) =
  let taint = Taint.compute loop in
  let loop_var = loop.Loop_info.loop_var in
  let is_uniform v = v <> loop_var && not (Taint.is_tainted taint v) in
  fun idx ->
    match Affine.of_expr ~loop_var ~is_uniform idx with
    | Some a -> (
        match abs a.Affine.coeff with
        | 0 -> Broadcast
        | 1 -> Coalesced
        | s -> Strided s)
    | None -> (
        match linearity ~loop_var ~is_uniform idx with
        | `Linear -> Strided 0
        | `Zero | `No -> Random)

let mode_to_string = function
  | Broadcast -> "broadcast"
  | Coalesced -> "coalesced"
  | Strided s -> Printf.sprintf "strided(%d)" s
  | Random -> "random"

let apply_layout_transform = function Strided _ -> Coalesced | m -> m
