(** Read/write access analysis of parallel-loop bodies.

    Records every array subscript in the loop body, split into plain reads,
    plain writes, and reduction writes (statements annotated with
    [reductiontoarray], whose read-modify-write of the destination is part
    of the reduction and not a data dependence). Raw subscript expressions
    are kept so that different classifiers can be applied: the strict
    affine classifier (used for correctness decisions such as
    write-miss-check elimination) and the taint-based coalescing classifier
    (used by the cost model). *)

open Mgacc_minic

type index_class = Affine of Affine.t | Dynamic

type array_access = {
  array : string;
  reads : Ast.expr list;  (** subscript expressions of plain reads *)
  writes : Ast.expr list;
  reduction_writes : Ast.expr list;
}

val is_uniform_in : Loop_info.t -> string -> bool
(** Whether a variable is loop-uniform in the strict sense: not the loop
    variable, not declared in the body, not assigned in the body. *)

val analyze : Loop_info.t -> array_access list
(** One summary per array mentioned in the body, sorted by array name. *)

val find : array_access list -> string -> array_access option

val classify_index : Loop_info.t -> Ast.expr -> index_class
(** Strict classification of one subscript (loop-uniform offsets only). *)

val read_only : array_access -> bool
(** Some reads, no writes of either kind. *)

val write_only : array_access -> bool

val all_reads_affine : Loop_info.t -> array_access -> bool
(** Every plain-read subscript is affine in the strict sense. *)

val all_writes_affine : Loop_info.t -> array_access -> bool

val pp : Loop_info.t -> Format.formatter -> array_access -> unit
