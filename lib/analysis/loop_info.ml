open Mgacc_minic
open Ast

type t = {
  loop_id : int;
  loop_var : string;
  lower : expr;
  upper : expr;
  body : stmt list;
  clauses : clause list;
  localaccess : localaccess_spec list;
  scalar_reductions : (redop * string) list;
  array_reductions : (redop * string) list;
  loop_loc : Loc.t;
}

(* Normalize a for-header to (var, lower, upper_exclusive). *)
let normalize_header loc (hdr : for_header) =
  let var, lower =
    match hdr.for_init with
    | Some { sdesc = Sassign (Lvar v, Set, e); _ } -> (v, e)
    | Some { sdesc = Sdecl (Tint, v, Some e); _ } -> (v, e)
    | _ -> Loc.error loc "parallel loop must initialize its counter (i = e or int i = e)"
  in
  let upper =
    match hdr.for_cond with
    | Some { edesc = Binop (Lt, { edesc = Var v; _ }, e); _ } when v = var -> e
    | Some ({ edesc = Binop (Le, { edesc = Var v; _ }, e); _ } as cond) when v = var ->
        { edesc = Binop (Add, e, { edesc = Int_lit 1; eloc = cond.eloc }); eloc = cond.eloc }
    | _ -> Loc.error loc "parallel loop condition must be %s < e or %s <= e" var var
  in
  (match hdr.for_update with
  | Some { sdesc = Sincr (Lvar v, 1); _ } when v = var -> ()
  | Some { sdesc = Sassign (Lvar v, Add_set, { edesc = Int_lit 1; _ }); _ } when v = var -> ()
  | Some
      {
        sdesc =
          Sassign (Lvar v, Set, { edesc = Binop (Add, { edesc = Var v'; _ }, { edesc = Int_lit 1; _ }); _ });
        _;
      }
    when v = var && v' = var ->
      ()
  | _ -> Loc.error loc "parallel loop must increment %s by 1" var);
  (var, lower, upper)

let rec collect_array_reductions stmts acc =
  List.fold_left
    (fun acc s ->
      match s.sdesc with
      | Spragma (Dreduction_to_array { rta_op; rta_array }, inner) ->
          collect_array_reductions [ inner ] ((rta_op, rta_array) :: acc)
      | Spragma (_, inner) -> collect_array_reductions [ inner ] acc
      | Sif (_, a, b) -> collect_array_reductions b (collect_array_reductions a acc)
      | Swhile (_, b) | Sfor (_, b) | Sblock b -> collect_array_reductions b acc
      | Sdecl _ | Sarray_decl _ | Sassign _ | Sincr _ | Sexpr _ | Sreturn _ | Sbreak | Scontinue ->
          acc)
    acc stmts

(* Walk down a pragma stack, accumulating directives, until the statement. *)
let rec peel_pragmas s acc =
  match s.sdesc with Spragma (d, inner) -> peel_pragmas inner ((d, s.sloc) :: acc) | _ -> (s, acc)

let of_stmt ~loop_id s =
  match s.sdesc with
  | Spragma _ -> (
      let inner, directives = peel_pragmas s [] in
      let parallel = List.exists (function Dparallel_loop _, _ -> true | _ -> false) directives in
      match (parallel, inner.sdesc) with
      | true, Sfor (hdr, body) ->
          let loc = inner.sloc in
          let loop_var, lower, upper = normalize_header loc hdr in
          let clauses = List.concat_map (function Dparallel_loop cs, _ -> cs | _ -> []) directives in
          let la_standalone =
            List.concat_map (function Dlocalaccess specs, _ -> specs | _ -> []) directives
          in
          let la_clauses = List.concat_map (function Clocalaccess specs -> specs | _ -> []) clauses in
          let scalar_reductions =
            List.concat_map
              (function Creduction (op, vars) -> List.map (fun v -> (op, v)) vars | _ -> [])
              clauses
          in
          let array_reductions = List.sort_uniq compare (collect_array_reductions body []) in
          Some
            {
              loop_id;
              loop_var;
              lower;
              upper;
              body;
              clauses;
              localaccess = la_standalone @ la_clauses;
              scalar_reductions;
              array_reductions;
              loop_loc = loc;
            }
      | true, _ -> Loc.error inner.sloc "parallel loop directive must annotate a for loop"
      | false, _ -> None)
  | _ -> None

let extract (f : func) =
  let loops = ref [] in
  let next_id = ref 0 in
  let rec walk s =
    match s.sdesc with
    | Spragma (_, inner) -> (
        match of_stmt ~loop_id:!next_id s with
        | Some loop ->
            loops := loop :: !loops;
            incr next_id
            (* Parallel loops do not nest in this system: inner loops are
               sequential per thread, so do not recurse into the body. *)
        | None -> walk inner)
    | Sif (_, a, b) ->
        List.iter walk a;
        List.iter walk b
    | Swhile (_, b) | Sblock b -> List.iter walk b
    | Sfor (_, b) -> List.iter walk b
    | Sdecl _ | Sarray_decl _ | Sassign _ | Sincr _ | Sexpr _ | Sreturn _ | Sbreak | Scontinue ->
        ()
  in
  List.iter walk f.fbody;
  List.rev !loops

let localaccess_for t name = List.find_opt (fun s -> s.la_array = name) t.localaccess

let find_inner_parallel t =
  let rec in_stmts = function
    | [] -> None
    | s :: rest -> ( match in_stmt s with Some r -> Some r | None -> in_stmts rest)
  and in_stmt s =
    match s.sdesc with
    | Spragma _ -> (
        match of_stmt ~loop_id:(-1) s with
        | Some inner ->
            let width =
              List.fold_left
                (fun acc c -> match c with Cvector (Some n) when n > 0 -> n | _ -> acc)
                32 inner.clauses
            in
            Some (inner, width)
        | None -> ( match s.sdesc with Spragma (_, body) -> in_stmt body | _ -> None))
    | Sif (_, a, b) -> ( match in_stmts a with Some r -> Some r | None -> in_stmts b)
    | Swhile (_, b) | Sblock b | Sfor (_, b) -> in_stmts b
    | Sdecl _ | Sarray_decl _ | Sassign _ | Sincr _ | Sexpr _ | Sreturn _ | Sbreak | Scontinue ->
        None
  in
  in_stmts t.body

let arrays_mentioned t =
  let acc = ref [] in
  let add a = if not (List.mem a !acc) then acc := a :: !acc in
  let rec expr e =
    match e.edesc with
    | Index (a, i) ->
        add a;
        expr i
    | Length a -> add a
    | Int_lit _ | Float_lit _ | Var _ -> ()
    | Unop (_, x) -> expr x
    | Binop (_, x, y) ->
        expr x;
        expr y
    | Ternary (c, a, b) ->
        expr c;
        expr a;
        expr b
    | Call (_, args) -> List.iter expr args
  in
  let rec stmt s =
    match s.sdesc with
    | Sdecl (_, _, init) -> Option.iter expr init
    | Sarray_decl (_, _, len) -> expr len
    | Sassign (lv, _, e) ->
        (match lv with
        | Lvar _ -> ()
        | Lindex (a, i) ->
            add a;
            expr i);
        expr e
    | Sincr (lv, _) -> (
        match lv with
        | Lvar _ -> ()
        | Lindex (a, i) ->
            add a;
            expr i)
    | Sexpr e -> expr e
    | Sif (c, a, b) ->
        expr c;
        List.iter stmt a;
        List.iter stmt b
    | Swhile (c, b) ->
        expr c;
        List.iter stmt b
    | Sfor (hdr, b) ->
        Option.iter stmt hdr.for_init;
        Option.iter expr hdr.for_cond;
        Option.iter stmt hdr.for_update;
        List.iter stmt b
    | Sreturn e -> Option.iter expr e
    | Sbreak | Scontinue -> ()
    | Sblock b -> List.iter stmt b
    | Spragma (_, inner) -> stmt inner
  in
  List.iter stmt t.body;
  List.sort compare !acc

let free_vars t =
  let used = ref [] and declared = ref [] in
  let use v = if not (List.mem v !used) then used := v :: !used in
  let decl v = if not (List.mem v !declared) then declared := v :: !declared in
  let rec expr e =
    match e.edesc with
    | Var v -> use v
    | Length a -> use a
    | Index (a, i) ->
        use a;
        expr i
    | Int_lit _ | Float_lit _ -> ()
    | Unop (_, x) -> expr x
    | Binop (_, x, y) ->
        expr x;
        expr y
    | Ternary (c, a, b) ->
        expr c;
        expr a;
        expr b
    | Call (_, args) -> List.iter expr args
  in
  let lv = function
    | Lvar v -> use v
    | Lindex (a, i) ->
        use a;
        expr i
  in
  let rec stmt s =
    match s.sdesc with
    | Sdecl (_, v, init) ->
        Option.iter expr init;
        decl v
    | Sarray_decl (_, v, len) ->
        expr len;
        decl v
    | Sassign (l, _, e) ->
        lv l;
        expr e
    | Sincr (l, _) -> lv l
    | Sexpr e -> expr e
    | Sif (c, a, b) ->
        expr c;
        List.iter stmt a;
        List.iter stmt b
    | Swhile (c, b) ->
        expr c;
        List.iter stmt b
    | Sfor (hdr, b) ->
        Option.iter stmt hdr.for_init;
        Option.iter expr hdr.for_cond;
        Option.iter stmt hdr.for_update;
        List.iter stmt b
    | Sreturn e -> Option.iter expr e
    | Sbreak | Scontinue -> ()
    | Sblock b -> List.iter stmt b
    | Spragma (_, inner) -> stmt inner
  in
  List.iter stmt t.body;
  List.filter (fun v -> v <> t.loop_var && not (List.mem v !declared)) !used
  |> List.sort_uniq compare
