(** Thread-index dependence ("taint") analysis of parallel-loop bodies.

    A value is tainted when it can differ between iterations of the
    parallel loop: the loop variable itself, anything computed from a
    tainted value, and anything loaded through a tainted subscript. Private
    scalars that never depend on the loop variable (e.g. inner sequential
    loop counters) stay untainted — every GPU thread computes the same
    sequence of values for them, which is what makes their array accesses
    warp-uniform (broadcast) rather than scattered.

    This powers the coalescing classification; it is deliberately a
    may-analysis used only by the cost model, never for correctness
    decisions. *)

type t

val compute : Loop_info.t -> t
(** Fixpoint over the loop body's assignments (control-flow insensitive). *)

val is_tainted : t -> string -> bool
(** Whether a scalar variable may carry a loop-index-dependent value. *)

val expr_tainted : t -> Mgacc_minic.Ast.expr -> bool
(** Whether an expression may evaluate differently across iterations. *)
