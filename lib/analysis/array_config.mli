(** Array configuration information (paper §IV-B-5).

    For every parallel loop and every device array used in it, the
    translator emits a record summarizing the access pattern; the data
    loader and the inter-GPU communication manager read these to choose
    placement policies and to plan reconciliation. This module computes the
    records from the access analysis and the directives. *)

open Mgacc_minic

type placement =
  | Replicated  (** full copy on every GPU (default; dirty-bit reconciliation) *)
  | Distributed
      (** block partition with halos from the [localaccess] window
          (write-miss buffering for out-of-partition writes) *)

type t = {
  array : string;
  read : bool;  (** has plain reads in the loop *)
  written : bool;  (** has plain (non-reduction) writes *)
  reduction : Ast.redop option;  (** destination of [reductiontoarray] *)
  localaccess : Ast.localaccess_spec option;
  placement : placement;
  writes_in_window : bool;
      (** every plain write is affine [stride*i + d] with [d] inside the
          declared window, so the translator drops the write-miss checks
          (paper §IV-D-2, last paragraph) *)
  coalesced_reads : bool;  (** all reads affine with unit or zero stride *)
  layout_transform : bool;
      (** read-only, all subscripts affine, has [localaccess]: candidate for
          the coalescing data-layout transformation (paper §IV-B-4) *)
}

val build : ?classify:Coalesce.classifier -> Loop_info.t -> Access.array_access list -> t list
(** One record per array used in the loop, sorted by name. [classify]
    overrides the coalescing classifier (used when an inner vector loop
    makes the inner index the coalescing dimension); defaults to
    [Coalesce.make loop]. *)

val find : t list -> string -> t option
val pp : Format.formatter -> t -> unit
