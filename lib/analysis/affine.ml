open Mgacc_minic
open Ast

type t = { coeff : int; const : int; terms : expr list }

let rec mentions_var e v =
  match e.edesc with
  | Var x -> x = v
  | Int_lit _ | Float_lit _ | Length _ -> false
  | Index (_, i) -> mentions_var i v
  | Unop (_, x) -> mentions_var x v
  | Binop (_, x, y) -> mentions_var x v || mentions_var y v
  | Ternary (c, a, b) -> mentions_var c v || mentions_var a v || mentions_var b v
  | Call (_, args) -> List.exists (fun a -> mentions_var a v) args

(* Is [e] loop-uniform: mentions only uniform variables, no array loads
   (device data may differ per thread), integer-valued operators only. *)
let rec is_uniform_expr ~is_uniform (e : expr) =
  match e.edesc with
  | Int_lit _ -> true
  | Float_lit _ -> false
  | Var v -> is_uniform v
  | Length _ -> true
  | Index _ -> false
  | Unop ((Neg | Bit_not | Cast_int), x) -> is_uniform_expr ~is_uniform x
  | Unop ((Not | Cast_double), _) -> false
  | Binop ((Add | Sub | Mul | Div | Mod | Band | Bor | Bxor | Shl | Shr), x, y) ->
      is_uniform_expr ~is_uniform x && is_uniform_expr ~is_uniform y
  | Binop (_, _, _) -> false
  | Ternary _ -> false
  | Call _ -> false

let rec of_expr ~loop_var ~is_uniform e =
  let recur = of_expr ~loop_var ~is_uniform in
  let uniform_leaf () =
    if is_uniform_expr ~is_uniform e then Some { coeff = 0; const = 0; terms = [ e ] } else None
  in
  match e.edesc with
  | Int_lit n -> Some { coeff = 0; const = n; terms = [] }
  | Var v when v = loop_var -> Some { coeff = 1; const = 0; terms = [] }
  | Var _ | Length _ -> uniform_leaf ()
  | Unop (Neg, x) -> (
      match recur x with
      | Some a ->
          Some
            {
              coeff = -a.coeff;
              const = -a.const;
              terms = List.map (fun t -> { edesc = Unop (Neg, t); eloc = t.eloc }) a.terms;
            }
      | None -> None)
  | Binop (Add, x, y) -> (
      match (recur x, recur y) with
      | Some a, Some b ->
          Some { coeff = a.coeff + b.coeff; const = a.const + b.const; terms = a.terms @ b.terms }
      | _ -> None)
  | Binop (Sub, x, y) -> (
      let neg_y = { edesc = Unop (Neg, y); eloc = y.eloc } in
      match (recur x, recur neg_y) with
      | Some a, Some b ->
          Some { coeff = a.coeff + b.coeff; const = a.const + b.const; terms = a.terms @ b.terms }
      | _ -> None)
  | Binop (Mul, x, y) -> (
      (* Affine * constant (either side); anything else only if both sides
         are loop-uniform, in which case the product is a uniform term. *)
      let const_of e' =
        match recur e' with
        | Some { coeff = 0; const = n; terms = [] } -> Some n
        | _ -> None
      in
      match (const_of x, const_of y) with
      | Some k, _ -> (
          match recur y with
          | Some b ->
              Some
                {
                  coeff = k * b.coeff;
                  const = k * b.const;
                  terms =
                    List.map
                      (fun t ->
                        { edesc = Binop (Mul, { edesc = Int_lit k; eloc = t.eloc }, t); eloc = t.eloc })
                      b.terms;
                }
          | None -> None)
      | _, Some k -> (
          match recur x with
          | Some a ->
              Some
                {
                  coeff = k * a.coeff;
                  const = k * a.const;
                  terms =
                    List.map
                      (fun t ->
                        { edesc = Binop (Mul, t, { edesc = Int_lit k; eloc = t.eloc }); eloc = t.eloc })
                      a.terms;
                }
          | None -> None)
      | None, None -> uniform_leaf ())
  | Unop ((Bit_not | Cast_int), _)
  | Binop ((Div | Mod | Band | Bor | Bxor | Shl | Shr), _, _) ->
      (* Non-linear in general: admissible only as a uniform term. *)
      uniform_leaf ()
  | Unop ((Not | Cast_double), _)
  | Binop ((Eq | Ne | Lt | Le | Gt | Ge | Land | Lor), _, _)
  | Ternary _ | Call _ | Float_lit _ | Index _ ->
      if mentions_var e loop_var then None else uniform_leaf ()

let is_literal t = t.terms = []
let is_uniform_form t = t.coeff = 0

let offset_expr ~loc t =
  let const = { edesc = Int_lit t.const; eloc = loc } in
  match t.terms with
  | [] -> const
  | first :: rest ->
      let sum =
        List.fold_left (fun acc term -> { edesc = Binop (Add, acc, term); eloc = loc }) first rest
      in
      if t.const = 0 then sum else { edesc = Binop (Add, sum, const); eloc = loc }

let equal a b =
  a.coeff = b.coeff && a.const = b.const
  && List.length a.terms = List.length b.terms
  && List.for_all2 (fun x y -> Pretty.expr_to_string x = Pretty.expr_to_string y) a.terms b.terms

let pp ppf t =
  Format.fprintf ppf "%d*i + %d" t.coeff t.const;
  List.iter (fun e -> Format.fprintf ppf " + %s" (Pretty.expr_to_string e)) t.terms
