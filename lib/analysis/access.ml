open Mgacc_minic
open Ast

type index_class = Affine of Affine.t | Dynamic

type array_access = {
  array : string;
  reads : expr list;
  writes : expr list;
  reduction_writes : expr list;
}

(* Variables written or declared anywhere in the body are thread-private
   (OpenACC scalars default to firstprivate/private in parallel loops). *)
let private_vars (loop : Loop_info.t) =
  let acc = ref [] in
  let add v = if not (List.mem v !acc) then acc := v :: !acc in
  let lv = function Lvar v -> add v | Lindex _ -> () in
  let rec stmt s =
    match s.sdesc with
    | Sdecl (_, v, _) -> add v
    | Sarray_decl (_, v, _) -> add v
    | Sassign (l, _, _) -> lv l
    | Sincr (l, _) -> lv l
    | Sexpr _ | Sreturn _ | Sbreak | Scontinue -> ()
    | Sif (_, a, b) ->
        List.iter stmt a;
        List.iter stmt b
    | Swhile (_, b) | Sblock b -> List.iter stmt b
    | Sfor (hdr, b) ->
        Option.iter stmt hdr.for_init;
        Option.iter stmt hdr.for_update;
        List.iter stmt b
    | Spragma (_, inner) -> stmt inner
  in
  List.iter stmt loop.body;
  !acc

let is_uniform_in loop =
  let privates = private_vars loop in
  fun v -> v <> loop.loop_var && not (List.mem v privates)

let classify_index loop idx =
  let is_uniform = is_uniform_in loop in
  match Affine.of_expr ~loop_var:loop.loop_var ~is_uniform idx with
  | Some a -> Affine a
  | None -> Dynamic

type collector = { mutable entries : (string * array_access) list }

let record c kind name idx =
  let e =
    match List.assoc_opt name c.entries with
    | Some e -> e
    | None -> { array = name; reads = []; writes = []; reduction_writes = [] }
  in
  let e' =
    match kind with
    | `Read -> { e with reads = idx :: e.reads }
    | `Write -> { e with writes = idx :: e.writes }
    | `Reduction -> { e with reduction_writes = idx :: e.reduction_writes }
  in
  c.entries <- (name, e') :: List.remove_assoc name c.entries

let analyze (loop : Loop_info.t) =
  let c = { entries = [] } in
  let rec expr e =
    match e.edesc with
    | Index (a, i) ->
        record c `Read a i;
        expr i
    | Int_lit _ | Float_lit _ | Var _ | Length _ -> ()
    | Unop (_, x) -> expr x
    | Binop (_, x, y) ->
        expr x;
        expr y
    | Ternary (cond, a, b) ->
        expr cond;
        expr a;
        expr b
    | Call (_, args) -> List.iter expr args
  in
  let assign ~reduction lvl op rhs =
    (match lvl with
    | Lvar _ -> ()
    | Lindex (a, i) ->
        if reduction then record c `Reduction a i
        else begin
          record c `Write a i;
          (* Compound assignment also reads the destination. *)
          if op <> Set then record c `Read a i
        end;
        expr i);
    expr rhs
  in
  let rec stmt ~reduction s =
    match s.sdesc with
    | Sassign (l, op, rhs) -> assign ~reduction l op rhs
    | Sincr (l, _) -> assign ~reduction l Add_set { edesc = Int_lit 1; eloc = s.sloc }
    | Sdecl (_, _, init) -> Option.iter expr init
    | Sarray_decl (_, _, len) -> expr len
    | Sexpr e -> expr e
    | Sreturn e -> Option.iter expr e
    | Sbreak | Scontinue -> ()
    | Sif (cond, a, b) ->
        expr cond;
        List.iter (stmt ~reduction) a;
        List.iter (stmt ~reduction) b
    | Swhile (cond, b) ->
        expr cond;
        List.iter (stmt ~reduction) b
    | Sfor (hdr, b) ->
        Option.iter (stmt ~reduction) hdr.for_init;
        Option.iter expr hdr.for_cond;
        Option.iter (stmt ~reduction) hdr.for_update;
        List.iter (stmt ~reduction) b
    | Sblock b -> List.iter (stmt ~reduction) b
    | Spragma (Dreduction_to_array _, inner) -> stmt ~reduction:true inner
    | Spragma (_, inner) -> stmt ~reduction inner
  in
  List.iter (stmt ~reduction:false) loop.body;
  List.map snd c.entries |> List.sort (fun a b -> compare a.array b.array)

let find accesses name = List.find_opt (fun a -> a.array = name) accesses

let read_only a = a.writes = [] && a.reduction_writes = [] && a.reads <> []
let write_only a = a.reads = [] && (a.writes <> [] || a.reduction_writes <> [])

let all_affine loop idxs =
  List.for_all (fun i -> match classify_index loop i with Affine _ -> true | Dynamic -> false) idxs

let all_reads_affine loop a = all_affine loop a.reads
let all_writes_affine loop a = all_affine loop a.writes

let pp loop ppf a =
  let pp_class ppf idx =
    match classify_index loop idx with
    | Affine af -> Affine.pp ppf af
    | Dynamic -> Format.fprintf ppf "dynamic[%s]" (Pretty.expr_to_string idx)
  in
  let pl = Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_class in
  Format.fprintf ppf "%s: reads [%a] writes [%a] red-writes [%a]" a.array pl a.reads pl a.writes pl
    a.reduction_writes
