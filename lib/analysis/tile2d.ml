open Mgacc_minic

type halo = { row_l : int; row_r : int; col_l : int; col_r : int }

type t = {
  inner_var : string;
  stride : Ast.expr;
  halos : (string * halo) list;
}

let col_lo_param = "__col_lo"
let col_hi_param = "__col_hi"

let stride_key e = Pretty.expr_to_string e

(* Decompose one subscript of a row-major 2-D array against the outer
   (row) and inner (column) loop variables. The parser desugars
   [u[re][ce]] into [u[re * stride + ce]], so eligible subscripts have
   exactly one loop-uniform product term [rowe * stride] (in either
   operand order) once classified against the inner variable, with the
   inner variable's coefficient 1. The row expression must itself be
   [outer_var + dr] for a literal [dr]. Returns [(dr, dc)]. *)
let decompose ~outer ~inner ~stride idx =
  match Access.classify_index inner idx with
  | Access.Dynamic -> None
  | Access.Affine a -> (
      if a.Affine.coeff <> 1 then None
      else
        match a.Affine.terms with
        | [ { Ast.edesc = Ast.Binop (Ast.Mul, x, y); _ } ] -> (
            let rowe =
              if stride_key y = stride_key stride then Some x
              else if stride_key x = stride_key stride then Some y
              else None
            in
            match rowe with
            | None -> None
            | Some rowe -> (
                match
                  Affine.of_expr ~loop_var:outer.Loop_info.loop_var
                    ~is_uniform:(Access.is_uniform_in outer) rowe
                with
                | Some r when r.Affine.coeff = 1 && Affine.is_literal r ->
                    Some (r.Affine.const, a.Affine.const)
                | _ -> None))
        | _ -> None)

let analyze (loop : Loop_info.t) ~(configs : Array_config.t list) =
  match Loop_info.find_inner_parallel loop with
  | None -> None
  | Some (inner, _) -> (
      let dist =
        List.filter (fun c -> c.Array_config.placement = Array_config.Distributed) configs
      in
      match List.filter_map (fun c -> c.Array_config.localaccess) dist with
      | [] -> None
      | specs when List.length specs <> List.length dist -> None
      | first :: rest ->
          let stride = first.Ast.la_stride in
          if
            not
              (List.for_all (fun s -> stride_key s.Ast.la_stride = stride_key stride) rest)
          then None
          else begin
            let accesses = Access.analyze loop in
            let halo_for (c : Array_config.t) =
              let name = c.Array_config.array in
              match Access.find accesses name with
              | None -> Some (name, { row_l = 0; row_r = 0; col_l = 0; col_r = 0 })
              | Some a -> (
                  if a.Access.reduction_writes <> [] then None
                  else
                    try
                      let h =
                        List.fold_left
                          (fun h idx ->
                            match decompose ~outer:loop ~inner ~stride idx with
                            | Some (dr, dc) ->
                                {
                                  row_l = max h.row_l (max 0 (-dr));
                                  row_r = max h.row_r (max 0 dr);
                                  col_l = max h.col_l (max 0 (-dc));
                                  col_r = max h.col_r (max 0 dc);
                                }
                            | None -> raise Exit)
                          { row_l = 0; row_r = 0; col_l = 0; col_r = 0 }
                          a.Access.reads
                      in
                      List.iter
                        (fun idx ->
                          (* Writes must land exactly on the iteration's
                             own (row, column) cell, so restricting the
                             column loop keeps every write in its tile. *)
                          match decompose ~outer:loop ~inner ~stride idx with
                          | Some (0, 0) -> ()
                          | _ -> raise Exit)
                        a.Access.writes;
                      Some (name, h)
                    with Exit -> None)
            in
            let rec all = function
              | [] -> Some []
              | c :: cs -> (
                  match (halo_for c, all cs) with
                  | Some h, Some hs -> Some (h :: hs)
                  | _ -> None)
            in
            match all dist with
            | Some halos -> Some { inner_var = inner.Loop_info.loop_var; stride; halos }
            | None -> None
          end)

let halo_of t name =
  match List.assoc_opt name t.halos with
  | Some h -> h
  | None -> { row_l = 0; row_r = 0; col_l = 0; col_r = 0 }

(* Rewrite the loop body so the inner column loop runs only
   [[__col_lo, __col_hi)]: the init clamps up with the int [max] builtin
   and the condition gains an upper-bound conjunct. Bound as ordinary int
   kernel parameters, per-GPU values select each device's column block;
   sentinel bounds (min_int, max_int) make the kernel behave exactly like
   the unrestricted one when the runtime falls back to 1-D. *)
let restrict_columns (loop : Loop_info.t) ~inner_var =
  let mk loc d : Ast.expr = { Ast.edesc = d; Ast.eloc = loc } in
  let clamp e =
    mk e.Ast.eloc (Ast.Call ("max", [ e; mk e.Ast.eloc (Ast.Var col_lo_param) ]))
  in
  let clamp_init (s : Ast.stmt) =
    match s.Ast.sdesc with
    | Ast.Sassign (Ast.Lvar v, Ast.Set, e) when v = inner_var ->
        { s with Ast.sdesc = Ast.Sassign (Ast.Lvar v, Ast.Set, clamp e) }
    | Ast.Sdecl (ty, v, Some e) when v = inner_var ->
        { s with Ast.sdesc = Ast.Sdecl (ty, v, Some (clamp e)) }
    | _ -> s
  in
  let conj_cond loc cond =
    Option.map
      (fun c ->
        mk loc
          (Ast.Binop
             ( Ast.Land,
               c,
               mk loc
                 (Ast.Binop (Ast.Lt, mk loc (Ast.Var inner_var), mk loc (Ast.Var col_hi_param)))
             )))
      cond
  in
  let loop_var_of (hdr : Ast.for_header) =
    match hdr.Ast.for_init with
    | Some { Ast.sdesc = Ast.Sassign (Ast.Lvar v, _, _); _ } -> Some v
    | Some { Ast.sdesc = Ast.Sdecl (_, v, _); _ } -> Some v
    | _ -> None
  in
  let rec stmt s =
    match s.Ast.sdesc with
    | Ast.Sfor (hdr, body) when loop_var_of hdr = Some inner_var ->
        let hdr' =
          {
            hdr with
            Ast.for_init = Option.map clamp_init hdr.Ast.for_init;
            Ast.for_cond = conj_cond s.Ast.sloc hdr.Ast.for_cond;
          }
        in
        { s with Ast.sdesc = Ast.Sfor (hdr', List.map stmt body) }
    | Ast.Sfor (hdr, body) -> { s with Ast.sdesc = Ast.Sfor (hdr, List.map stmt body) }
    | Ast.Sif (c, a, b) -> { s with Ast.sdesc = Ast.Sif (c, List.map stmt a, List.map stmt b) }
    | Ast.Swhile (c, b) -> { s with Ast.sdesc = Ast.Swhile (c, List.map stmt b) }
    | Ast.Sblock b -> { s with Ast.sdesc = Ast.Sblock (List.map stmt b) }
    | Ast.Spragma (d, inner) -> { s with Ast.sdesc = Ast.Spragma (d, stmt inner) }
    | Ast.Sdecl _ | Ast.Sarray_decl _ | Ast.Sassign _ | Ast.Sincr _ | Ast.Sexpr _
    | Ast.Sreturn _ | Ast.Sbreak | Ast.Scontinue ->
        s
  in
  { loop with Loop_info.body = List.map stmt loop.Loop_info.body }

(* The column split of [[0, stride)] for a GPU grid with [pc] column
   blocks; shared by the runtime (darray tiles, kernel column bounds) so
   both always agree on tile boundaries. *)
let grid_of ~num_gpus =
  let rec best d = if d < 2 then 1 else if num_gpus mod d = 0 then d else best (d - 1) in
  let pc = best (int_of_float (sqrt (float_of_int num_gpus))) in
  (num_gpus / pc, pc)

let pp ppf t =
  Format.fprintf ppf "tile2d(inner %s, stride %s, halos %s)" t.inner_var
    (Pretty.expr_to_string t.stride)
    (String.concat ", "
       (List.map
          (fun (a, h) -> Printf.sprintf "%s:r%d/%d c%d/%d" a h.row_l h.row_r h.col_l h.col_r)
          t.halos))
