(** Affine analysis of subscript expressions.

    A subscript is analyzed relative to the parallel loop variable [i] into
    the form [coeff * i + const + terms], where [coeff] and [const] are
    compile-time integers and [terms] are loop-uniform expressions (they
    evaluate to the same value in every iteration, e.g. kernel scalar
    parameters). Subscripts that do not fit — data-dependent gathers like
    [a\[idx\[i\]\]] or anything involving thread-private values — are not
    affine and are classified {!Dynamic} by the access analysis.

    The translator uses affine forms for three of the paper's
    optimizations: coalescing detection (|coeff| <= small), the data layout
    transformation, and write-miss-check elimination for distributed
    arrays. *)

open Mgacc_minic

type t = {
  coeff : int;  (** multiplier of the loop variable *)
  const : int;  (** compile-time constant part of the offset *)
  terms : Ast.expr list;  (** loop-uniform symbolic summands *)
}

val is_uniform_expr : is_uniform:(string -> bool) -> Ast.expr -> bool
(** Whether an integer expression is loop-uniform: it mentions only uniform
    variables, no array loads, and only integer-valued operators. *)

val of_expr : loop_var:string -> is_uniform:(string -> bool) -> Ast.expr -> t option
(** Analyze a subscript. [is_uniform v] must say whether variable [v] holds
    the same value in every loop iteration. The loop variable itself is
    handled separately and must not be classified uniform. *)

val is_literal : t -> bool
(** No symbolic terms: the form is [coeff * i + const] exactly. *)

val is_uniform_form : t -> bool
(** [coeff = 0]: the subscript does not depend on the loop variable. *)

val offset_expr : loc:Loc.t -> t -> Ast.expr
(** The offset part ([const + terms]) as an expression, for runtime
    evaluation in the host environment. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
