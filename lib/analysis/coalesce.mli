(** Memory-coalescing classification of array access sites.

    For each syntactic subscript in a parallel loop body, decide how
    addresses relate *across concurrently executing iterations* (GPU
    threads):

    - {!Broadcast}: the address does not depend on the loop index — all
      threads of a warp read the same element (one transaction).
    - {!Coalesced}: addresses are affine in the loop index with unit
      stride — adjacent threads hit adjacent elements.
    - {!Strided}: affine with a larger constant stride — each access costs
      its own memory transaction; this is the pattern the paper's data
      layout transformation (array transposition) repairs.
    - {!Random}: data-dependent (gather/scatter).

    The analysis treats untainted private scalars (see {!Taint}) as
    uniform, so an inner sequential loop counter does not destroy the
    affine structure. *)

type mode = Broadcast | Coalesced | Strided of int | Random

type classifier = Mgacc_minic.Ast.expr -> mode

val make : Loop_info.t -> classifier
(** Build a classifier for subscripts of the given loop. *)

val mode_to_string : mode -> string

val apply_layout_transform : mode -> mode
(** The effect of transposing the array: strided affine accesses become
    coalesced; other modes are unchanged. *)
