open Mgacc_minic
open Ast

type t = { tainted : (string, unit) Hashtbl.t }

let is_tainted t v = Hashtbl.mem t.tainted v

let rec expr_tainted t e =
  match e.edesc with
  | Int_lit _ | Float_lit _ | Length _ -> false
  | Var v -> is_tainted t v
  | Index (_, idx) ->
      (* A load through an untainted subscript reads the same element in
         every iteration, so the loaded value is uniform. *)
      expr_tainted t idx
  | Unop (_, x) -> expr_tainted t x
  | Binop (_, x, y) -> expr_tainted t x || expr_tainted t y
  | Ternary (c, a, b) -> expr_tainted t c || expr_tainted t a || expr_tainted t b
  | Call (_, args) -> List.exists (expr_tainted t) args

let compute (loop : Loop_info.t) =
  let t = { tainted = Hashtbl.create 16 } in
  Hashtbl.replace t.tainted loop.Loop_info.loop_var ();
  let changed = ref true in
  let mark v =
    if not (Hashtbl.mem t.tainted v) then begin
      Hashtbl.replace t.tainted v ();
      changed := true
    end
  in
  let assign lv rhs_tainted =
    match lv with
    | Lvar v -> if rhs_tainted then mark v
    | Lindex _ -> ()
  in
  let rec stmt s =
    match s.sdesc with
    | Sdecl (_, v, init) -> (
        match init with Some e when expr_tainted t e -> mark v | _ -> ())
    | Sarray_decl _ -> ()
    | Sassign (lv, op, rhs) ->
        let reads_dest =
          match (op, lv) with
          | Set, _ -> false
          | _, Lvar v -> is_tainted t v
          | _, Lindex (_, idx) -> expr_tainted t idx
        in
        assign lv (reads_dest || expr_tainted t rhs)
    | Sincr (lv, _) -> (
        match lv with Lvar v -> if is_tainted t v then () else () | Lindex _ -> ())
    | Sexpr _ | Sreturn _ | Sbreak | Scontinue -> ()
    | Sif (_, a, b) ->
        List.iter stmt a;
        List.iter stmt b
    | Swhile (_, b) | Sblock b -> List.iter stmt b
    | Sfor (hdr, b) ->
        Option.iter stmt hdr.for_init;
        Option.iter stmt hdr.for_update;
        List.iter stmt b
    | Spragma (_, inner) -> stmt inner
  in
  while !changed do
    changed := false;
    List.iter stmt loop.Loop_info.body
  done;
  t
