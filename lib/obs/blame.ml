open Mgacc_sim

type category = Kernel | Cpu_gpu | Gpu_gpu | Overhead

let category_label = function
  | Kernel -> "KERNELS"
  | Cpu_gpu -> "CPU-GPU"
  | Gpu_gpu -> "GPU-GPU"
  | Overhead -> "OVERHEAD"

type epoch = {
  e_category : category;
  e_label : string;
  e_exposed : float;
  e_hidden : float;
  e_spans : int list;
}

type t = { mutable eps : epoch list (* reversed *) }

let create () = { eps = [] }
let clear t = t.eps <- []

let charge t cat ~label ~exposed ~hidden ~spans =
  t.eps <- { e_category = cat; e_label = label; e_exposed = exposed; e_hidden = hidden; e_spans = spans } :: t.eps

let epochs t = List.rev t.eps

type row = { r_category : category; r_label : string; r_exposed : float; r_hidden : float; r_spans : int }

type summary = {
  s_makespan : float;
  s_categories : (category * float * float) list;
  s_rows : row list;
  s_path : Trace.span list;
  s_path_seconds : float;
}

let normalize_label label =
  match String.index_opt label ':' with
  | None -> label
  | Some i -> (
      match String.index_from_opt label (i + 1) ':' with
      | None -> label
      | Some j -> String.sub label 0 j)

let summarize t ~trace =
  let eps = epochs t in
  (* Category totals are straight epoch sums — bit-compatible with the
     profiler charges the epochs mirror. *)
  let cat_totals =
    List.map
      (fun cat ->
        let exposed, hidden =
          List.fold_left
            (fun (e, h) ep ->
              if ep.e_category = cat then (e +. ep.e_exposed, h +. ep.e_hidden) else (e, h))
            (0., 0.) eps
        in
        (cat, exposed, hidden))
      [ Kernel; Cpu_gpu; Gpu_gpu; Overhead ]
  in
  let span_of = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace span_of s.Trace.id s) (Trace.spans trace);
  (* Per-(category, label) rows: split each epoch across its spans by
     duration share, or blame the epoch label itself when it covered no
     spans (pure wait / gap time). *)
  let rows = Hashtbl.create 32 in
  let bump cat label exposed hidden count =
    let key = (cat, label) in
    let e, h, c = try Hashtbl.find rows key with Not_found -> (0., 0., 0) in
    Hashtbl.replace rows key (e +. exposed, h +. hidden, c + count)
  in
  List.iter
    (fun ep ->
      let spans = List.filter_map (Hashtbl.find_opt span_of) ep.e_spans in
      match spans with
      | [] -> bump ep.e_category (normalize_label ep.e_label) ep.e_exposed ep.e_hidden 0
      | spans ->
          let dur s = s.Trace.finish -. s.Trace.start in
          let total = List.fold_left (fun acc s -> acc +. dur s) 0. spans in
          let n = float_of_int (List.length spans) in
          List.iter
            (fun s ->
              let share = if total > 0. then dur s /. total else 1. /. n in
              bump ep.e_category (normalize_label s.Trace.label) (ep.e_exposed *. share)
                (ep.e_hidden *. share) 1)
            spans)
    eps;
  let s_rows =
    Hashtbl.fold
      (fun (cat, label) (e, h, c) acc ->
        { r_category = cat; r_label = label; r_exposed = e; r_hidden = h; r_spans = c } :: acc)
      rows []
    |> List.sort (fun a b ->
           let c = compare b.r_exposed a.r_exposed in
           if c <> 0 then c
           else
             let c = compare b.r_hidden a.r_hidden in
             if c <> 0 then c else compare (a.r_category, a.r_label) (b.r_category, b.r_label))
  in
  let cp = Critical_path.analyze (Trace.spans trace) in
  {
    s_makespan = cp.Critical_path.makespan;
    s_categories = cat_totals;
    s_rows;
    s_path = cp.Critical_path.path;
    s_path_seconds = cp.Critical_path.path_seconds;
  }

let pp ?(top = 10) ppf s =
  Format.fprintf ppf "@[<v>critical-path blame (makespan %.9fs, longest path %.9fs over %d spans)"
    s.s_makespan s.s_path_seconds (List.length s.s_path);
  Format.fprintf ppf "@,  %-10s %14s %14s" "category" "exposed" "hidden";
  List.iter
    (fun (cat, e, h) ->
      Format.fprintf ppf "@,  %-10s %13.9fs %13.9fs" (category_label cat) e h)
    s.s_categories;
  Format.fprintf ppf "@,  top blame rows:";
  List.iteri
    (fun i r ->
      if i < top then
        Format.fprintf ppf "@,  %2d. %-10s %-24s exposed %.9fs hidden %.9fs (%d spans)" (i + 1)
          (category_label r.r_category) r.r_label r.r_exposed r.r_hidden r.r_spans)
    s.s_rows;
  Format.fprintf ppf "@]"

let to_json s =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "{\"makespan\":%.9g,\"path_seconds\":%.9g" s.s_makespan s.s_path_seconds);
  Buffer.add_string buf ",\"path\":[";
  Buffer.add_string buf
    (String.concat "," (List.map (fun sp -> string_of_int sp.Trace.id) s.s_path));
  Buffer.add_string buf "],\"categories\":{";
  Buffer.add_string buf
    (String.concat ","
       (List.map
          (fun (cat, e, h) ->
            Printf.sprintf "\"%s\":{\"exposed\":%.9g,\"hidden\":%.9g}"
              (Trace.json_escape (category_label cat))
              e h)
          s.s_categories));
  Buffer.add_string buf "},\"rows\":[";
  Buffer.add_string buf
    (String.concat ","
       (List.map
          (fun r ->
            Printf.sprintf
              "{\"category\":\"%s\",\"label\":\"%s\",\"exposed\":%.9g,\"hidden\":%.9g,\"spans\":%d}"
              (Trace.json_escape (category_label r.r_category))
              (Trace.json_escape r.r_label) r.r_exposed r.r_hidden r.r_spans)
          s.s_rows));
  Buffer.add_string buf "]}";
  Buffer.contents buf
