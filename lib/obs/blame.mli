(** Critical-path blame: per-span exposed/hidden attribution that
    reconciles exactly with the profiler's Fig. 8 category breakdown.

    The runtime records one {e epoch} per profiler charge (the same
    exposed/hidden seconds it adds to a category, plus the span ids the
    charge covered). Summarizing a ledger therefore reproduces the
    profiler's per-category totals by construction, while the span ids
    let each makespan second be blamed on a concrete (category,
    array/kernel label) pair and the trace DAG yields the critical
    path. *)

type category = Kernel | Cpu_gpu | Gpu_gpu | Overhead
(** The profiler's Fig. 8 categories (H2D and D2H fold into [Cpu_gpu]). *)

val category_label : category -> string

type epoch = {
  e_category : category;
  e_label : string;  (** phase label, e.g. ["comm"] or ["wait:kernels"] *)
  e_exposed : float;  (** seconds charged to the makespan *)
  e_hidden : float;  (** seconds overlapped behind other work *)
  e_spans : int list;  (** trace span ids covered by this charge *)
}

type t
(** A blame ledger; one per runtime session. *)

val create : unit -> t
val clear : t -> unit

val charge :
  t -> category -> label:string -> exposed:float -> hidden:float -> spans:int list -> unit
(** Record one epoch. Call exactly where the profiler is charged, with
    the same seconds, so the ledger and profiler cannot drift. *)

val epochs : t -> epoch list
(** In recording order. *)

type row = {
  r_category : category;
  r_label : string;  (** span label truncated to its first two [':']-separated components *)
  r_exposed : float;
  r_hidden : float;
  r_spans : int;  (** number of spans aggregated into this row *)
}

type summary = {
  s_makespan : float;
  s_categories : (category * float * float) list;
      (** (category, exposed, hidden) — exact epoch sums, fixed order
          [Kernel; Cpu_gpu; Gpu_gpu; Overhead] *)
  s_rows : row list;  (** per-(category, label) blame, sorted by exposed desc *)
  s_path : Mgacc_sim.Trace.span list;  (** critical path through the trace DAG *)
  s_path_seconds : float;
}

val summarize : t -> trace:Mgacc_sim.Trace.t -> summary
(** Epoch seconds are split across the epoch's spans proportionally to
    span duration (equally when all durations are zero); epochs with no
    spans — pure waits — become rows under the epoch label itself. *)

val pp : ?top:int -> Format.formatter -> summary -> unit
(** Render the category table and the [top] (default 10) blame rows. *)

val to_json : summary -> string
