open Mgacc_sim

type hist = {
  buckets : float array; (* strictly increasing finite upper bounds *)
  counts : int array; (* length buckets + 1; last is the +Inf overflow *)
  mutable h_sum : float;
  mutable h_total : int;
}

type cell = Counter of float ref | Gauge of float ref | Histogram of hist

type series = {
  s_name : string;
  s_labels : (string * string) list;
  s_help : string option;
  s_cell : cell;
}

type ev = { ev_time : float; ev_name : string; ev_fields : (string * float) list }

type t = {
  mutable series : series list; (* reversed registration order *)
  index : (string * (string * string) list, series) Hashtbl.t;
  mutable events : ev list; (* reversed insertion order *)
}

type counter = float ref
type gauge = float ref
type histogram = hist

let create () = { series = []; index = Hashtbl.create 32; events = [] }

let valid_name name =
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
       name

let kind_of_cell = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let register t ?help ?(labels = []) name mk =
  if not (valid_name name) then invalid_arg (Printf.sprintf "Metrics: bad metric name %S" name);
  let key = (name, labels) in
  match Hashtbl.find_opt t.index key with
  | Some s -> s.s_cell
  | None ->
      let cell = mk () in
      (* One family, one kind: a name registered as a counter cannot come
         back as a gauge under different labels. *)
      List.iter
        (fun s ->
          if String.equal s.s_name name && not (String.equal (kind_of_cell s.s_cell) (kind_of_cell cell))
          then
            invalid_arg
              (Printf.sprintf "Metrics: %s already registered as a %s" name (kind_of_cell s.s_cell)))
        t.series;
      let s = { s_name = name; s_labels = labels; s_help = help; s_cell = cell } in
      Hashtbl.replace t.index key s;
      t.series <- s :: t.series;
      cell

let counter t ?help ?labels name =
  match register t ?help ?labels name (fun () -> Counter (ref 0.)) with
  | Counter r -> r
  | c -> invalid_arg (Printf.sprintf "Metrics: %s is a %s, not a counter" name (kind_of_cell c))

let inc c v =
  if v < 0. then invalid_arg "Metrics.inc: negative increment";
  c := !c +. v

let counter_value c = !c

let gauge t ?help ?labels name =
  match register t ?help ?labels name (fun () -> Gauge (ref 0.)) with
  | Gauge r -> r
  | c -> invalid_arg (Printf.sprintf "Metrics: %s is a %s, not a gauge" name (kind_of_cell c))

let set g v = g := v
let gauge_value g = !g

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0; 100.0 |]

let histogram t ?help ?labels ?(buckets = default_buckets) name =
  let mk () =
    let n = Array.length buckets in
    if n = 0 then invalid_arg "Metrics.histogram: empty bucket list";
    for i = 1 to n - 1 do
      if buckets.(i) <= buckets.(i - 1) then
        invalid_arg "Metrics.histogram: buckets must be strictly increasing"
    done;
    Histogram { buckets = Array.copy buckets; counts = Array.make (n + 1) 0; h_sum = 0.; h_total = 0 }
  in
  match register t ?help ?labels name mk with
  | Histogram h -> h
  | c -> invalid_arg (Printf.sprintf "Metrics: %s is a %s, not a histogram" name (kind_of_cell c))

let observe h v =
  let n = Array.length h.buckets in
  let i = ref 0 in
  while !i < n && v > h.buckets.(!i) do
    incr i
  done;
  h.counts.(!i) <- h.counts.(!i) + 1;
  h.h_sum <- h.h_sum +. v;
  h.h_total <- h.h_total + 1

let histogram_count h = h.h_total
let histogram_sum h = h.h_sum

let quantile h q =
  if h.h_total = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = Float.max 1. (Float.round (q *. float_of_int h.h_total)) in
    let n = Array.length h.buckets in
    let cum = ref 0 and ans = ref infinity in
    (try
       for i = 0 to n - 1 do
         cum := !cum + h.counts.(i);
         if float_of_int !cum >= rank then begin
           ans := h.buckets.(i);
           raise Exit
         end
       done
     with Exit -> ());
    !ans
  end

let event t ~time ?(fields = []) name =
  t.events <- { ev_time = time; ev_name = name; ev_fields = fields } :: t.events

(* --- export ------------------------------------------------------------ *)

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
      let body =
        String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) labels)
      in
      "{" ^ body ^ "}"

let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let to_prometheus t =
  let series = List.rev t.series in
  let buf = Buffer.create 1024 in
  let seen_family = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem seen_family s.s_name) then begin
        Hashtbl.replace seen_family s.s_name ();
        (match s.s_help with
        | Some h -> Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" s.s_name h)
        | None -> ());
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" s.s_name (kind_of_cell s.s_cell));
        (* Keep each family's series contiguous, in registration order. *)
        List.iter
          (fun s' ->
            if String.equal s'.s_name s.s_name then
              match s'.s_cell with
              | Counter r | Gauge r ->
                  Buffer.add_string buf
                    (Printf.sprintf "%s%s %s\n" s'.s_name (render_labels s'.s_labels) (float_repr !r))
              | Histogram h ->
                  let n = Array.length h.buckets in
                  let cum = ref 0 in
                  for i = 0 to n - 1 do
                    cum := !cum + h.counts.(i);
                    let labels = s'.s_labels @ [ ("le", float_repr h.buckets.(i)) ] in
                    Buffer.add_string buf
                      (Printf.sprintf "%s_bucket%s %d\n" s'.s_name (render_labels labels) !cum)
                  done;
                  let labels = s'.s_labels @ [ ("le", "+Inf") ] in
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket%s %d\n" s'.s_name (render_labels labels) h.h_total);
                  Buffer.add_string buf
                    (Printf.sprintf "%s_sum%s %s\n" s'.s_name (render_labels s'.s_labels)
                       (float_repr h.h_sum));
                  Buffer.add_string buf
                    (Printf.sprintf "%s_count%s %d\n" s'.s_name (render_labels s'.s_labels) h.h_total))
          series
      end)
    series;
  Buffer.contents buf

let events_to_jsonl t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun ev ->
      Buffer.add_string buf
        (Printf.sprintf "{\"t\":%.9g,\"event\":\"%s\"" ev.ev_time (Trace.json_escape ev.ev_name));
      if ev.ev_fields <> [] then begin
        Buffer.add_string buf ",\"fields\":{";
        Buffer.add_string buf
          (String.concat ","
             (List.map
                (fun (k, v) -> Printf.sprintf "\"%s\":%.9g" (Trace.json_escape k) v)
                ev.ev_fields));
        Buffer.add_char buf '}'
      end;
      Buffer.add_string buf "}\n")
    (List.rev t.events);
  Buffer.contents buf
