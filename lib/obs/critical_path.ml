open Mgacc_sim

type attribution = { span : Trace.span; exposed : float; hidden : float; on_path : bool }

type t = {
  makespan : float;
  path : Trace.span list;
  path_seconds : float;
  spans : attribution list;
}

let analyze spans =
  let arr = Array.of_list spans in
  let n = Array.length arr in
  if n = 0 then { makespan = 0.; path = []; path_seconds = 0.; spans = [] }
  else begin
    let dur i = arr.(i).Trace.finish -. arr.(i).Trace.start in
    (* Predecessors: recorded causes plus the previous span on the same
       resource. Only edges pointing at strictly earlier list positions
       are kept, which makes the graph acyclic by construction. *)
    let idx_of = Hashtbl.create (2 * n) in
    let last_on = Hashtbl.create 8 in
    let preds = Array.make n [] in
    for i = 0 to n - 1 do
      let s = arr.(i) in
      let explicit =
        List.filter_map
          (fun c -> match Hashtbl.find_opt idx_of c with Some j when j < i -> Some j | _ -> None)
          s.Trace.causes
      in
      let implicit =
        match Hashtbl.find_opt last_on s.Trace.resource with Some j -> [ j ] | None -> []
      in
      preds.(i) <- explicit @ implicit;
      Hashtbl.replace idx_of s.Trace.id i;
      Hashtbl.replace last_on s.Trace.resource i
    done;
    (* Longest duration-weighted path ending at each span. *)
    let best = Array.make n 0. in
    let choice = Array.make n (-1) in
    for i = 0 to n - 1 do
      let chain = ref 0. and pick = ref (-1) in
      List.iter
        (fun j ->
          if best.(j) > !chain then begin
            chain := best.(j);
            pick := j
          end)
        preds.(i);
      best.(i) <- dur i +. !chain;
      choice.(i) <- !pick
    done;
    let endpoint = ref 0 in
    for i = 1 to n - 1 do
      let b = best.(i) and e = best.(!endpoint) in
      if b > e || (b = e && arr.(i).Trace.finish > arr.(!endpoint).Trace.finish) then endpoint := i
    done;
    let rec walk acc i = if i < 0 then acc else walk (arr.(i) :: acc) choice.(i) in
    let path = walk [] !endpoint in
    (* Exposed/hidden split: sweep spans in start order with a coverage
       horizon; the part of each span past the horizon is exposed, the
       remainder ran under cover of earlier spans. *)
    let order = Array.init n (fun i -> i) in
    Array.sort
      (fun a b ->
        let c = compare arr.(a).Trace.start arr.(b).Trace.start in
        if c <> 0 then c else compare a b)
      order;
    let exposed = Array.make n 0. in
    let horizon = ref 0. in
    Array.iter
      (fun i ->
        let s = arr.(i) in
        let e = Float.max 0. (s.Trace.finish -. Float.max !horizon s.Trace.start) in
        exposed.(i) <- e;
        if s.Trace.finish > !horizon then horizon := s.Trace.finish)
      order;
    let makespan = List.fold_left (fun acc s -> Float.max acc s.Trace.finish) 0. spans in
    let on_path = Hashtbl.create 16 in
    List.iter (fun s -> Hashtbl.replace on_path s.Trace.id ()) path;
    let attrs =
      List.mapi
        (fun i s ->
          let e = exposed.(i) in
          { span = s; exposed = e; hidden = dur i -. e; on_path = Hashtbl.mem on_path s.Trace.id })
        spans
    in
    { makespan; path; path_seconds = best.(!endpoint); spans = attrs }
  end
