(** Critical-path analysis over a span DAG.

    Edges come from two sources: explicit [causes] edges recorded by the
    runtime (event gating), and implicit same-resource ordering (a
    resource executes its spans in insertion order). The pass extracts
    the longest duration-weighted path through that DAG and, via a
    time-sweep in start order, splits every span into an exposed part
    (this span advanced the frontier) and a hidden part (it ran in the
    shadow of earlier spans). *)

type attribution = {
  span : Mgacc_sim.Trace.span;
  exposed : float;  (** seconds by which this span advanced the time frontier *)
  hidden : float;  (** seconds overlapped with already-covered time *)
  on_path : bool;  (** true when the span lies on the critical path *)
}

type t = {
  makespan : float;
  path : Mgacc_sim.Trace.span list;  (** critical path, in execution order *)
  path_seconds : float;  (** total duration along [path] *)
  spans : attribution list;  (** every input span, in input order *)
}

val analyze : Mgacc_sim.Trace.span list -> t
(** [causes] ids referencing spans absent from the list (or appearing
    later than the consumer) are ignored; span ids must be unique. *)
