(** Metrics registry: counters, gauges and fixed-bucket histograms
    registered by name, exported as Prometheus text exposition plus a
    JSONL event log.

    Everything is deterministic — histogram quantiles come from fixed
    bucket upper bounds (no sampling, no interpolation), and the
    exposition lists series in registration order — so metric output can
    be asserted byte-for-byte in tests. Series are keyed by
    [(name, labels)]; registering the same key twice returns the same
    cell, registering one name with two different kinds raises. *)

type t
(** A registry. One per profiler / fleet run. *)

val create : unit -> t

type counter
type gauge
type histogram

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Monotone accumulator. [labels] distinguish series of one family
    (e.g. [("tenant", "alice")]). *)

val inc : counter -> float -> unit
(** Add [v >= 0]; negative increments raise [Invalid_argument]. *)

val counter_value : counter -> float

val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val default_buckets : float array
(** Exponential seconds-scale buckets, 1e-6 .. 100. *)

val histogram :
  t -> ?help:string -> ?labels:(string * string) list -> ?buckets:float array -> string -> histogram
(** [buckets] are strictly increasing finite upper bounds; an implicit
    [+Inf] overflow bucket is always appended. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val quantile : histogram -> float -> float
(** Deterministic quantile estimate: the upper bound of the first bucket
    whose cumulative count reaches [q * count] ([infinity] when only the
    overflow bucket does; [0.] when empty). *)

val event : t -> time:float -> ?fields:(string * float) list -> string -> unit
(** Append one event to the JSONL log, stamped with simulated [time]. *)

val to_prometheus : t -> string
(** Prometheus text exposition: [# HELP]/[# TYPE] per family (in first
    registration order) followed by its series; histograms expand to
    [_bucket{le=...}], [_sum] and [_count] lines. *)

val events_to_jsonl : t -> string
(** One [{"t":..,"event":..,"fields":{..}}] object per line, in
    insertion order; empty string when no events were logged. *)
