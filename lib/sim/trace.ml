type category = Kernel | Host_to_device | Device_to_host | Peer | Host_compute | Overhead

let category_label = function
  | Kernel -> "KERNELS"
  | Host_to_device -> "CPU-GPU (H2D)"
  | Device_to_host -> "CPU-GPU (D2H)"
  | Peer -> "GPU-GPU"
  | Host_compute -> "HOST"
  | Overhead -> "OVERHEAD"

type span = {
  id : int;
  causes : int list;
  resource : string;
  category : category;
  label : string;
  start : float;
  finish : float;
  bytes : int;
}

type t = { mutable spans : span list; mutable count : int }

let create () = { spans = []; count = 0 }

let add t span =
  if span.finish < span.start then invalid_arg "Trace.add: finish < start";
  t.spans <- span :: t.spans;
  t.count <- t.count + 1

let record t ?(causes = []) ~resource ~category ~label ~start ~finish ~bytes () =
  let id = t.count in
  add t { id; causes; resource; category; label; start; finish; bytes };
  id

let spans t = List.rev t.spans

let clear t =
  t.spans <- [];
  t.count <- 0

let total_in t cat =
  List.fold_left
    (fun acc s -> if s.category = cat then acc +. (s.finish -. s.start) else acc)
    0.0 t.spans

let bytes_in t cat =
  List.fold_left (fun acc s -> if s.category = cat then acc + s.bytes else acc) 0 t.spans

let makespan t = List.fold_left (fun acc s -> Float.max acc s.finish) 0.0 t.spans

let busy_union t pred =
  let matching = List.filter (fun s -> pred s.category && s.finish > s.start) t.spans in
  let sorted = List.sort (fun a b -> compare a.start b.start) matching in
  let rec sweep acc cur = function
    | [] -> (match cur with None -> acc | Some (lo, hi) -> acc +. (hi -. lo))
    | s :: rest -> (
        match cur with
        | None -> sweep acc (Some (s.start, s.finish)) rest
        | Some (lo, hi) ->
            if s.start <= hi then sweep acc (Some (lo, Float.max hi s.finish)) rest
            else sweep (acc +. (hi -. lo)) (Some (s.start, s.finish)) rest)
  in
  sweep 0.0 None sorted

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_chrome_json ?(process_name = "mgacc simulated machine") t =
  let spans = spans t in
  let tids = Hashtbl.create 8 in
  let order = ref [] in
  let next = ref 0 in
  let tid_of resource =
    match Hashtbl.find_opt tids resource with
    | Some id -> id
    | None ->
        let id = !next in
        incr next;
        Hashtbl.replace tids resource id;
        order := resource :: !order;
        id
  in
  let by_id = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace by_id s.id s) spans;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "[\n";
  let first = ref true in
  let emit s =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf s
  in
  List.iter
    (fun s ->
      let tid = tid_of s.resource in
      let causes =
        match s.causes with
        | [] -> ""
        | cs -> Printf.sprintf ",\"causes\":[%s]" (String.concat "," (List.map string_of_int cs))
      in
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d,\"args\":{\"bytes\":%d,\"span\":%d%s}}"
           (json_escape s.label)
           (json_escape (category_label s.category))
           (s.start *. 1e6)
           ((s.finish -. s.start) *. 1e6)
           tid s.bytes s.id causes))
    spans;
  (* Flow events: one s/f pair per recorded producer->consumer edge, bound
     to the producer's finish and the consumer's start so Perfetto renders
     the causal DAG as arrows between slices. Dangling cause ids (e.g. a
     producer elided as a zero-cost op) are skipped. *)
  let flow = ref 0 in
  List.iter
    (fun s ->
      List.iter
        (fun c ->
          match Hashtbl.find_opt by_id c with
          | None -> ()
          | Some p ->
              let fid = !flow in
              incr flow;
              emit
                (Printf.sprintf
                   "{\"name\":\"dep\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":%d,\"ts\":%.3f,\"pid\":0,\"tid\":%d,\"args\":{\"span\":%d}}"
                   fid (p.finish *. 1e6) (tid_of p.resource) p.id);
              emit
                (Printf.sprintf
                   "{\"name\":\"dep\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":%d,\"ts\":%.3f,\"pid\":0,\"tid\":%d,\"args\":{\"span\":%d}}"
                   fid (s.start *. 1e6) (tid_of s.resource) s.id))
        s.causes)
    spans;
  emit
    (Printf.sprintf "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"%s\"}}"
       (json_escape process_name));
  List.iter
    (fun resource ->
      let tid = Hashtbl.find tids resource in
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           tid (json_escape resource));
      emit
        (Printf.sprintf
           "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"sort_index\":%d}}"
           tid tid))
    (List.rev !order);
  Buffer.add_string buf "\n]\n";
  Buffer.contents buf

let pp_gantt ?(width = 72) ppf t =
  let spans = spans t in
  if spans = [] then Format.fprintf ppf "(empty trace)@."
  else begin
    let horizon = makespan t in
    let horizon = if horizon <= 0.0 then 1.0 else horizon in
    let resources =
      List.fold_left (fun acc s -> if List.mem s.resource acc then acc else s.resource :: acc) [] spans
      |> List.rev
    in
    let glyph = function
      | Kernel -> 'K'
      | Host_to_device -> 'h'
      | Device_to_host -> 'd'
      | Peer -> 'P'
      | Host_compute -> 'C'
      | Overhead -> '.'
    in
    let name_w = List.fold_left (fun w r -> max w (String.length r)) 0 resources in
    List.iter
      (fun r ->
        let line = Bytes.make width ' ' in
        List.iter
          (fun s ->
            if s.resource = r then begin
              let a = int_of_float (s.start /. horizon *. float_of_int width) in
              let b = int_of_float (s.finish /. horizon *. float_of_int width) in
              let b = min (max b (a + 1)) width in
              for i = a to b - 1 do
                if i >= 0 && i < width then Bytes.set line i (glyph s.category)
              done
            end)
          spans;
        Format.fprintf ppf "%-*s |%s|@." name_w r (Bytes.to_string line))
      resources;
    Format.fprintf ppf "%-*s  0%*s%.6fs@." name_w "" (width - 1) "" horizon
  end
