(* Growable array used by simulator hot loops (formerly private to
   Fabric.run_batch). The water-filling allocation is numerically
   order-dependent, so iteration order is part of the contract: push
   appends, iter/fold visit in push order, and filter_in_place compacts
   stably. Vacated slots (after filter_in_place or clear) are overwritten
   with a dummy so the bag never pins removed values live. *)

type 'a t = { mutable arr : 'a array; mutable len : int; dummy : 'a }

(* The dummy is an immediate (int 0) masquerading as ['a]; it is never
   read back — slots at index >= len are invisible to the API — and the
   GC treats immediates as non-pointers, so this is safe for any 'a. *)
let create () = { arr = [||]; len = 0; dummy = Obj.magic 0 }
let is_empty b = b.len = 0
let length b = b.len

let get b i =
  if i < 0 || i >= b.len then invalid_arg (Printf.sprintf "Bag.get: %d (length %d)" i b.len);
  Array.unsafe_get b.arr i

let push b x =
  if b.len = Array.length b.arr then begin
    let grown = Array.make (Int.max 8 (2 * b.len)) b.dummy in
    Array.blit b.arr 0 grown 0 b.len;
    b.arr <- grown
  end;
  b.arr.(b.len) <- x;
  b.len <- b.len + 1

let iter f b =
  for i = 0 to b.len - 1 do
    f b.arr.(i)
  done

let fold f init b =
  let acc = ref init in
  for i = 0 to b.len - 1 do
    acc := f !acc b.arr.(i)
  done;
  !acc

let filter_in_place b ~keep ~removed =
  let w = ref 0 in
  for r = 0 to b.len - 1 do
    let x = b.arr.(r) in
    if keep x then begin
      b.arr.(!w) <- x;
      incr w
    end
    else removed x
  done;
  for i = !w to b.len - 1 do
    b.arr.(i) <- b.dummy
  done;
  b.len <- !w

let clear b =
  for i = 0 to b.len - 1 do
    b.arr.(i) <- b.dummy
  done;
  b.len <- 0
