(** Timeline resources for deterministic performance simulation.

    A timeline models an exclusive serial resource (a GPU's compute engine, a
    PCIe link direction, a DMA engine): operations on the same timeline are
    serialized in submission order, operations on different timelines overlap
    freely. An operation becomes eligible at its data-dependency [ready]
    time; it starts at [max ready resource_available] and occupies the
    resource for its duration. This is exactly the semantics of CUDA streams
    that the paper's runtime relies on for asynchronous transfers. *)

type t

val create : string -> t
(** [create name] is a fresh timeline, available at time 0. *)

val name : t -> string

val available_at : t -> float
(** The time at which the resource frees up, given everything submitted. *)

val reserve : t -> ready:float -> duration:float -> float * float
(** [reserve t ~ready ~duration] schedules an operation; returns
    [(start, finish)] and advances the timeline to [finish]. [duration] must
    be non-negative; [ready] is the earliest permissible start. *)

val busy_time : t -> float
(** Total occupied time across all reservations so far. *)

val reset : t -> unit
(** Forget all reservations; the timeline becomes available at 0 again. *)
