type t = { name : string; mutable avail : float; mutable busy : float }

let create name = { name; avail = 0.0; busy = 0.0 }
let name t = t.name
let available_at t = t.avail

let reserve t ~ready ~duration =
  if duration < 0.0 then invalid_arg "Timeline.reserve: negative duration";
  if ready < 0.0 then invalid_arg "Timeline.reserve: negative ready time";
  let start = Float.max ready t.avail in
  let finish = start +. duration in
  t.avail <- finish;
  t.busy <- t.busy +. duration;
  (start, finish)

let busy_time t = t.busy

let reset t =
  t.avail <- 0.0;
  t.busy <- 0.0
