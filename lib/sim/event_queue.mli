(** Binary min-heap priority queue keyed by simulated time.

    Ties are broken by insertion order, so the simulation is deterministic:
    two events scheduled for the same instant fire in the order they were
    scheduled. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Insert an element with the given key. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the element with the smallest key (FIFO among equal
    keys), or [None] if empty. *)

val peek_time : 'a t -> float option
(** The smallest key without removing it. *)
