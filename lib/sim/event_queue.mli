(** Binary min-heap priority queue keyed by simulated time.

    Ties are broken by insertion order, so the simulation is deterministic:
    two events scheduled for the same instant fire in the order they were
    scheduled. Popped entries are cleared from the backing array, so the
    queue never pins removed values live. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Insert an element with the given key. *)

val of_list : (float * 'a) list -> 'a t
(** Build a queue from [(time, value)] pairs in one O(n) bulk heapify
    (Floyd's algorithm) instead of n O(log n) pushes. Equal keys pop in
    list order, exactly as if pushed one by one. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the element with the smallest key (FIFO among equal
    keys), or [None] if empty. *)

val pop_min : 'a t -> 'a
(** Like {!pop} but returns the value alone, without allocating.
    @raise Invalid_argument if the queue is empty. *)

val peek_time : 'a t -> float option
(** The smallest key without removing it. *)

val next_time : 'a t -> float
(** The smallest key, or [infinity] if the queue is empty — the natural
    form for next-event selection in a simulator loop; allocation-free. *)
