(** Span trace of a simulated execution.

    Every timed operation (kernel, host-device copy, peer copy, reduction
    merge) records a span. The profiler aggregates spans by category to
    produce the paper's Fig. 8 breakdown, and the trace can be dumped as a
    text Gantt chart for debugging overlap behaviour. *)

type category =
  | Kernel  (** GPU kernel execution ("KERNELS" in Fig. 8) *)
  | Host_to_device  (** CPU -> GPU transfer ("CPU-GPU") *)
  | Device_to_host  (** GPU -> CPU transfer ("CPU-GPU") *)
  | Peer  (** GPU -> GPU transfer ("GPU-GPU") *)
  | Host_compute  (** CPU-side execution (OpenMP baseline) *)
  | Overhead  (** runtime bookkeeping: dirty-bit scans, buffer drains *)

val category_label : category -> string

type span = {
  resource : string;
  category : category;
  label : string;
  start : float;
  finish : float;
  bytes : int;  (** bytes moved, 0 for compute spans *)
}

type t

val create : unit -> t
val add : t -> span -> unit
val spans : t -> span list
(** In insertion order. *)

val clear : t -> unit
val total_in : t -> category -> float
(** Sum of span durations in a category (not dedup'd for overlap). *)

val bytes_in : t -> category -> int
val makespan : t -> float
(** Latest finish time over all spans; 0 when empty. *)

val busy_union : t -> (category -> bool) -> float
(** Length of the union of span intervals whose category satisfies the
    predicate — wall-clock time during which at least one matching span was
    active. This is what the paper's per-phase breakdown measures. *)

val pp_gantt : ?width:int -> Format.formatter -> t -> unit
(** Render one row per resource with time on the horizontal axis. *)

val to_chrome_json : t -> string
(** Serialize as a Chrome trace-event JSON array (load it in
    chrome://tracing or https://ui.perfetto.dev): one complete event per
    span, one row per resource, timestamps in microseconds. *)
