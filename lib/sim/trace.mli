(** Span trace of a simulated execution.

    Every timed operation (kernel, host-device copy, peer copy, reduction
    merge) records a span. The profiler aggregates spans by category to
    produce the paper's Fig. 8 breakdown, and the trace can be dumped as a
    text Gantt chart for debugging overlap behaviour. *)

type category =
  | Kernel  (** GPU kernel execution ("KERNELS" in Fig. 8) *)
  | Host_to_device  (** CPU -> GPU transfer ("CPU-GPU") *)
  | Device_to_host  (** GPU -> CPU transfer ("CPU-GPU") *)
  | Peer  (** GPU -> GPU transfer ("GPU-GPU") *)
  | Host_compute  (** CPU-side execution (OpenMP baseline) *)
  | Overhead  (** runtime bookkeeping: dirty-bit scans, buffer drains *)

val category_label : category -> string

type span = {
  id : int;  (** unique within one trace; allocated by {!record} *)
  causes : int list;
      (** ids of producer spans this span waited on (event gating); empty
          when the span started unconditionally *)
  resource : string;
  category : category;
  label : string;
  start : float;
  finish : float;
  bytes : int;  (** bytes moved, 0 for compute spans *)
}

type t

val create : unit -> t

val add : t -> span -> unit
(** Append a caller-built span verbatim (tests build DAGs this way).
    Production code should use {!record}, which allocates the id. *)

val record :
  t ->
  ?causes:int list ->
  resource:string ->
  category:category ->
  label:string ->
  start:float ->
  finish:float ->
  bytes:int ->
  unit ->
  int
(** Append a span with a freshly allocated id (the insertion index) and
    return that id, so the caller can thread it as a cause of downstream
    spans. [causes] must reference earlier spans of the same trace. *)

val spans : t -> span list
(** In insertion order. *)

val clear : t -> unit
val total_in : t -> category -> float
(** Sum of span durations in a category (not dedup'd for overlap). *)

val bytes_in : t -> category -> int
val makespan : t -> float
(** Latest finish time over all spans; 0 when empty. *)

val busy_union : t -> (category -> bool) -> float
(** Length of the union of span intervals whose category satisfies the
    predicate — wall-clock time during which at least one matching span was
    active. This is what the paper's per-phase breakdown measures. *)

val pp_gantt : ?width:int -> Format.formatter -> t -> unit
(** Render one row per resource with time on the horizontal axis. *)

val to_chrome_json : ?process_name:string -> t -> string
(** Serialize as a Chrome trace-event JSON array (load it in
    chrome://tracing or https://ui.perfetto.dev): one complete event per
    span, one row per resource, timestamps in microseconds. Causal edges
    between spans are emitted as Perfetto flow events ([ph:"s"]/[ph:"f"])
    so the dependency DAG renders as arrows, and metadata ([ph:"M"])
    events name the process and each resource row. *)

val json_escape : string -> string
(** Escape a string for embedding in a JSON literal (no surrounding
    quotes added). Shared by the other exporters in this tree. *)
