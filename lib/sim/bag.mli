(** Growable array for simulator hot loops: O(1) amortized append,
    index access, in-order iteration, and stable in-place filtering.

    Element order is part of the contract (the fabric's water-filling
    allocation is numerically order-dependent): [push] appends, [iter]/
    [fold]/[get] see push order, and [filter_in_place] preserves the
    relative order of survivors. Removed elements are not retained:
    vacated backing-array slots are cleared. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val get : 'a t -> int -> 'a
(** [get b i] is the [i]th element in push order.
    @raise Invalid_argument if [i] is out of bounds. *)

val push : 'a t -> 'a -> unit
(** Append an element (O(1) amortized). *)

val iter : ('a -> unit) -> 'a t -> unit
val fold : ('a -> 'b -> 'a) -> 'a -> 'b t -> 'a

val filter_in_place : 'a t -> keep:('a -> bool) -> removed:('a -> unit) -> unit
(** Stable partition: drop elements failing [keep] (passing each to
    [removed]) while preserving the relative order of the survivors. *)

val clear : 'a t -> unit
(** Empty the bag, clearing every slot (keeps the backing capacity). *)
