type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
  dummy : 'a entry;
}

(* The dummy's value is an immediate (int 0) masquerading as ['a]; it is
   never read back — slots at index >= size are invisible to the API —
   and the GC treats immediates as non-pointers, so this is safe for any
   'a. It exists so that popped entries do not stay referenced by the
   backing array: before the fix, a popped slot kept its value live for
   the queue's lifetime. *)
let make_dummy () = { time = nan; seq = -1; value = Obj.magic 0 }

let create () = { heap = [||]; size = 0; next_seq = 0; dummy = make_dummy () }
let is_empty t = t.size = 0
let size t = t.size

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let heap = Array.make ncap t.dummy in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end

let sift_down t i0 =
  let i = ref i0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < t.size && less t.heap.(l) t.heap.(!smallest) then smallest := l;
    if r < t.size && less t.heap.(r) t.heap.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = t.heap.(!smallest) in
      t.heap.(!smallest) <- t.heap.(!i);
      t.heap.(!i) <- tmp;
      i := !smallest
    end
  done

let push t ~time value =
  let entry = { time; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  grow t;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  (* Sift up. *)
  let i = ref (t.size - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    less t.heap.(!i) t.heap.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.heap.(parent) in
    t.heap.(parent) <- t.heap.(!i);
    t.heap.(!i) <- tmp;
    i := parent
  done

(* Shared removal: extract the root, refill from the last slot, clear the
   vacated slot so the popped value (and, once the queue drains, the last
   value too) is collectable. *)
let remove_top t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- t.dummy;
    sift_down t 0
  end
  else t.heap.(0) <- t.dummy;
  top

let pop t =
  if t.size = 0 then None
  else begin
    let top = remove_top t in
    Some (top.time, top.value)
  end

let pop_min t =
  if t.size = 0 then invalid_arg "Event_queue.pop_min: empty";
  (remove_top t).value

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time
let next_time t = if t.size = 0 then infinity else t.heap.(0).time

let of_list entries =
  let n = List.length entries in
  let t = create () in
  if n > 0 then begin
    let heap = Array.make (max 16 n) t.dummy in
    List.iteri (fun i (time, value) -> heap.(i) <- { time; seq = i; value }) entries;
    t.heap <- heap;
    t.size <- n;
    t.next_seq <- n;
    (* Floyd's bottom-up heapify: O(n) instead of n pushes' O(n log n).
       The (time, seq) key is a total order, so the pop sequence is the
       same as push-one-by-one: sorted by time, FIFO among ties. *)
    for i = (n / 2) - 1 downto 0 do
      sift_down t i
    done
  end;
  t
