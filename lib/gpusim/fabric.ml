type topology = {
  gpus_per_node : int;
  internode_bandwidth : float;
  internode_latency : float;
}

type resource = Down of int | Up of int | Host_aggregate of int | Net_up of int | Net_down of int

type direction = H2d of int | D2h of int | P2p of int * int

type request = { direction : direction; bytes : int; ready : float; tag : string }

type completion = { req : request; start : float; finish : float }

type t = { link : Spec.link; num_gpus : int; topology : topology option }

let create ?topology link ~num_gpus =
  if num_gpus <= 0 then invalid_arg "Fabric.create: num_gpus <= 0";
  (match topology with
  | Some t when t.gpus_per_node <= 0 || t.internode_bandwidth <= 0.0 ->
      invalid_arg "Fabric.create: bad topology"
  | _ -> ());
  { link; num_gpus; topology }

let node_of t g =
  match t.topology with None -> 0 | Some topo -> g / topo.gpus_per_node

let check_dev t i =
  if i < 0 || i >= t.num_gpus then invalid_arg (Printf.sprintf "Fabric: device %d out of range" i)

let resources_of t = function
  | H2d i ->
      check_dev t i;
      [ Down i; Host_aggregate (node_of t i) ]
  | D2h i ->
      check_dev t i;
      [ Up i; Host_aggregate (node_of t i) ]
  | P2p (i, j) ->
      check_dev t i;
      check_dev t j;
      if i = j then invalid_arg "Fabric: P2p with src = dst";
      let ni = node_of t i and nj = node_of t j in
      if ni = nj then [ Up i; Down j; Host_aggregate ni ]
      else
        (* Cross-node peer traffic stages through both hosts and the
           network: D2H on the source node, the wire, H2D on the
           destination node. *)
        [ Up i; Net_up ni; Net_down nj; Down j; Host_aggregate ni; Host_aggregate nj ]

let capacity t = function
  | Down _ -> t.link.Spec.h2d_bandwidth
  | Up _ -> t.link.Spec.d2h_bandwidth
  | Host_aggregate _ -> t.link.Spec.host_aggregate_bandwidth
  | Net_up _ | Net_down _ -> (
      match t.topology with
      | Some topo -> topo.internode_bandwidth
      | None -> infinity)

let same_node t i j = node_of t i = node_of t j

let own_cap t = function
  | H2d _ -> t.link.Spec.h2d_bandwidth
  | D2h _ -> t.link.Spec.d2h_bandwidth
  | P2p (i, j) -> (
      if same_node t i j then t.link.Spec.p2p_bandwidth
      else
        match t.topology with
        | Some topo -> Float.min t.link.Spec.p2p_bandwidth topo.internode_bandwidth
        | None -> t.link.Spec.p2p_bandwidth)

let latency_of t = function
  | P2p (i, j) when not (same_node t i j) -> (
      match t.topology with
      | Some topo -> t.link.Spec.link_latency +. topo.internode_latency
      | None -> t.link.Spec.link_latency)
  | H2d _ | D2h _ | P2p _ -> t.link.Spec.link_latency

let standalone_bandwidth t dir =
  List.fold_left (fun acc r -> Float.min acc (capacity t r)) (own_cap t dir) (resources_of t dir)

let transfer_time_alone t dir ~bytes =
  if bytes <= 0 then 0.0
  else latency_of t dir +. (float_of_int bytes /. standalone_bandwidth t dir)

let topology t = t.topology
let num_gpus t = t.num_gpus

(* One in-flight transfer of the fluid simulation. *)
type flow = {
  idx : int;
  res : resource list;
  cap : float;
  arrive : float;  (* ready + latency: when bytes start flowing *)
  total : float;  (* original size; completion threshold is relative to it *)
  mutable remaining : float;
  mutable rate : float;
  mutable fixed : bool;
  mutable start_time : float;
  mutable finish_time : float;
}

(* Active flows live in a growable array so the event loop admits
   arrivals in O(1) amortized instead of the former quadratic
   [active := !active @ arrived]. The water-filling allocation is
   numerically order-dependent (it drains [remcap] in visit order), so
   iteration must mirror the list version exactly: admission order,
   with completed flows removed by a stable in-place compaction. *)
module Bag = struct
  type 'a t = { mutable arr : 'a array; mutable len : int }

  let create () = { arr = [||]; len = 0 }
  let is_empty b = b.len = 0

  let push b x =
    if b.len = Array.length b.arr then begin
      let grown = Array.make (Int.max 8 (2 * b.len)) x in
      Array.blit b.arr 0 grown 0 b.len;
      b.arr <- grown
    end;
    b.arr.(b.len) <- x;
    b.len <- b.len + 1

  let iter f b =
    for i = 0 to b.len - 1 do
      f b.arr.(i)
    done

  let fold f init b =
    let acc = ref init in
    for i = 0 to b.len - 1 do
      acc := f !acc b.arr.(i)
    done;
    !acc

  (* Stable partition: drop elements failing [keep] (passing each to
     [removed]) while preserving the relative order of the survivors. *)
  let filter_in_place b ~keep ~removed =
    let w = ref 0 in
    for r = 0 to b.len - 1 do
      let x = b.arr.(r) in
      if keep x then begin
        b.arr.(!w) <- x;
        incr w
      end
      else removed x
    done;
    b.len <- !w
end

(* Max-min fair allocation by water filling over the active flows. *)
let assign_rates t active =
  Bag.iter
    (fun f ->
      f.fixed <- false;
      f.rate <- 0.0)
    active;
  let remcap = Hashtbl.create 8 in
  let count = Hashtbl.create 8 in
  let touch r =
    if not (Hashtbl.mem remcap r) then Hashtbl.replace remcap r (capacity t r);
    Hashtbl.replace count r (1 + Option.value ~default:0 (Hashtbl.find_opt count r))
  in
  Bag.iter (fun f -> List.iter touch f.res) active;
  let unfixed = ref active.Bag.len in
  while !unfixed > 0 do
    let bound f =
      List.fold_left
        (fun acc r ->
          let share = Hashtbl.find remcap r /. float_of_int (Hashtbl.find count r) in
          Float.min acc share)
        f.cap f.res
    in
    let lambda =
      Bag.fold (fun acc f -> if f.fixed then acc else Float.min acc (bound f)) infinity active
    in
    let eps = lambda *. 1e-9 in
    Bag.iter
      (fun f ->
        if (not f.fixed) && bound f <= lambda +. eps then begin
          f.fixed <- true;
          f.rate <- Float.max lambda 1.0 (* avoid zero rates from degenerate caps *);
          decr unfixed;
          List.iter
            (fun r ->
              Hashtbl.replace remcap r (Float.max 0.0 (Hashtbl.find remcap r -. f.rate));
              Hashtbl.replace count r (Hashtbl.find count r - 1))
            f.res
        end)
      active
  done

let run_batch t reqs =
  let reqs_arr = Array.of_list reqs in
  let n = Array.length reqs_arr in
  let completions = Array.make n None in
  let flows = ref [] in
  Array.iteri
    (fun idx req ->
      if req.bytes < 0 then invalid_arg "Fabric.run_batch: negative bytes";
      if req.bytes = 0 then
        completions.(idx) <- Some { req; start = req.ready; finish = req.ready }
      else
        flows :=
          {
            idx;
            res = resources_of t req.direction;
            cap = own_cap t req.direction;
            arrive = req.ready +. latency_of t req.direction;
            total = float_of_int req.bytes;
            remaining = float_of_int req.bytes;
            rate = 0.0;
            fixed = false;
            start_time = req.ready;
            finish_time = nan;
          }
          :: !flows)
    reqs_arr;
  let pending = ref (List.sort (fun a b -> compare a.arrive b.arrive) (List.rev !flows)) in
  let active = Bag.create () in
  let now = ref 0.0 in
  (match !pending with [] -> () | f :: _ -> now := f.arrive);
  while !pending <> [] || not (Bag.is_empty active) do
    (* Admit arrivals: [pending] is arrive-sorted, so the due flows form
       a prefix; push them in order (matching the old list append). *)
    let rec admit = function
      | f :: rest when f.arrive <= !now +. 1e-15 ->
          Bag.push active f;
          admit rest
      | rest -> rest
    in
    pending := admit !pending;
    if Bag.is_empty active then begin
      match !pending with
      | f :: _ -> now := f.arrive
      | [] -> ()
    end
    else begin
      assign_rates t active;
      (* Next event: earliest completion among active, or next arrival. *)
      let next_completion =
        Bag.fold (fun acc f -> Float.min acc (!now +. (f.remaining /. f.rate))) infinity active
      in
      let next_arrival = match !pending with [] -> infinity | f :: _ -> f.arrive in
      let t_next = Float.min next_completion next_arrival in
      let dt = t_next -. !now in
      Bag.iter (fun f -> f.remaining <- f.remaining -. (f.rate *. dt)) active;
      now := t_next;
      (* The residue below which a flow counts as drained must scale with
         the flow, or tiny transfers finish early and huge ones drag a
         fixed byte tail: keep draining while more than 1e-12 of the
         original payload remains. The absolute floor keeps the threshold
         above double-precision resolution so the final subtraction can
         always cross it (a purely relative bound can sit below one ulp of
         [remaining] and loop forever). The floor must also scale with
         [rate *. ulp !now]: subtracting [rate *. dt] can leave a residue
         of that order, and once [remaining /. rate] drops below one ulp
         of the clock, [!now +. dt] rounds back to [!now], dt collapses to
         zero and the loop makes no progress. Sessions sharing a machine
         only ever advance its clock, so late batches hit this where a
         fresh-machine run never does; bytes a flow cannot move within one
         representable time step are below the simulation's resolution
         anyway. *)
      let time_floor (f : flow) =
        f.rate *. (8.0 *. epsilon_float *. Float.max 1.0 (Float.abs !now))
      in
      Bag.filter_in_place active
        ~keep:(fun f ->
          f.remaining > Float.max (time_floor f) (Float.max 1e-9 (1e-12 *. f.total)))
        ~removed:(fun f ->
          f.finish_time <- !now;
          completions.(f.idx) <-
            Some { req = reqs_arr.(f.idx); start = f.start_time; finish = f.finish_time })
    end
  done;
  Array.to_list
    (Array.mapi
       (fun idx c ->
         match c with
         | Some c -> c
         | None ->
             (* Every flow must either have completed or been zero-byte; a
                hole here means the event loop dropped a request. Failing
                loudly beats fabricating a zero-duration completion that
                would silently corrupt downstream schedules. *)
             let req = reqs_arr.(idx) in
             invalid_arg
               (Printf.sprintf "Fabric.run_batch: request %d (tag %S) never completed" idx req.tag))
       completions)
