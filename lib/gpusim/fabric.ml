module Bag = Mgacc_sim.Bag
module Event_queue = Mgacc_sim.Event_queue

type topology = {
  gpus_per_node : int;
  internode_bandwidth : float;
  internode_latency : float;
}

type flavor =
  | Wire
  | Fat_tree of { oversub : float }
  | Multi_rail of { rails : int }
  | Nvlink_mesh of { nv_bandwidth : float; nv_latency : float }

type resource =
  | Down of int
  | Up of int
  | Host_aggregate of int
  | Net_up of int
  | Net_down of int
  | Spine
  | Rail_up of int  (* node * rails + rail *)
  | Rail_down of int
  | Nv_out of int
  | Nv_in of int

type direction = H2d of int | D2h of int | P2p of int * int

type request = { direction : direction; bytes : int; ready : float; tag : string }

type completion = { req : request; start : float; finish : float }

type t = {
  link : Spec.link;
  num_gpus : int;
  topology : topology option;
  flavor : flavor;
  rails : int;  (* Multi_rail rail count, 0 otherwise *)
  nodes : int;
  (* Resources interned to dense ids so the event loop can keep
     per-resource capacity/count state in flat arrays instead of
     rebuilding hashtables on every event:
       [0, G)            Down g
       [G, 2G)           Up g
       [2G, 2G+M)        Host_aggregate n
       [2G+M, 2G+2M)     Net_up n
       [2G+2M, 2G+3M)    Net_down n
     Non-Wire flavors append their extra resources after that block
     (so a Wire fabric's rid space and caps stay byte-identical to
     the pre-flavor layout):
       base = 2G+3M
       base                       Spine
       [base+1, base+1+MR)        Rail_up (n*rails + r)
       [base+1+MR, base+1+2MR)    Rail_down (n*rails + r)
       [.., +G)                   Nv_out g
       [.., +G)                   Nv_in g *)
  caps : float array;
  mutable use_reference : bool;
}

let node_of t g =
  match t.topology with None -> 0 | Some topo -> g / topo.gpus_per_node

let capacity t = function
  | Down _ -> t.link.Spec.h2d_bandwidth
  | Up _ -> t.link.Spec.d2h_bandwidth
  | Host_aggregate _ -> t.link.Spec.host_aggregate_bandwidth
  | Net_up _ | Net_down _ -> (
      match t.topology with
      | Some topo -> topo.internode_bandwidth
      | None -> infinity)
  | Spine -> (
      (* The fat-tree core: all cross-node flows share the bisection,
         which an oversubscribed tree provides at nodes/oversub times
         the per-node injection rate. *)
      match (t.flavor, t.topology) with
      | Fat_tree { oversub }, Some topo ->
          topo.internode_bandwidth *. float_of_int t.nodes /. oversub
      | _ -> infinity)
  | Rail_up _ | Rail_down _ -> (
      match t.topology with Some topo -> topo.internode_bandwidth | None -> infinity)
  | Nv_out _ | Nv_in _ -> (
      match t.flavor with Nvlink_mesh { nv_bandwidth; _ } -> nv_bandwidth | _ -> infinity)

let rid_of t = function
  | Down g -> g
  | Up g -> t.num_gpus + g
  | Host_aggregate n -> (2 * t.num_gpus) + n
  | Net_up n -> (2 * t.num_gpus) + t.nodes + n
  | Net_down n -> (2 * t.num_gpus) + (2 * t.nodes) + n
  | Spine -> (2 * t.num_gpus) + (3 * t.nodes)
  | Rail_up k -> (2 * t.num_gpus) + (3 * t.nodes) + 1 + k
  | Rail_down k -> (2 * t.num_gpus) + (3 * t.nodes) + 1 + (t.nodes * t.rails) + k
  | Nv_out g -> (2 * t.num_gpus) + (3 * t.nodes) + 1 + (2 * t.nodes * t.rails) + g
  | Nv_in g ->
      (2 * t.num_gpus) + (3 * t.nodes) + 1 + (2 * t.nodes * t.rails) + t.num_gpus + g

let create ?(flavor = Wire) ?topology link ~num_gpus =
  if num_gpus <= 0 then invalid_arg "Fabric.create: num_gpus <= 0";
  (match topology with
  | Some t when t.gpus_per_node <= 0 || t.internode_bandwidth <= 0.0 ->
      invalid_arg "Fabric.create: bad topology"
  | _ -> ());
  (match flavor with
  | Fat_tree { oversub } when not (oversub >= 1.0) ->
      invalid_arg "Fabric.create: fat-tree oversubscription < 1"
  | Multi_rail { rails } when rails < 1 -> invalid_arg "Fabric.create: rails < 1"
  | Nvlink_mesh { nv_bandwidth; nv_latency } when nv_bandwidth <= 0.0 || nv_latency < 0.0 ->
      invalid_arg "Fabric.create: bad NVLink mesh parameters"
  | _ -> ());
  let nodes =
    match topology with
    | None -> 1
    | Some topo -> (num_gpus + topo.gpus_per_node - 1) / topo.gpus_per_node
  in
  let rails = match flavor with Multi_rail { rails } -> rails | _ -> 0 in
  let extra =
    (* Wire allocates nothing extra, keeping its caps array (and thus the
       incremental allocator's scratch) byte-identical to the old layout. *)
    match flavor with
    | Wire -> 0
    | Fat_tree _ -> 1
    | Multi_rail _ -> 1 + (2 * nodes * rails)
    | Nvlink_mesh _ -> 1 + (2 * num_gpus)
  in
  let t =
    {
      link;
      num_gpus;
      topology;
      flavor;
      rails;
      nodes;
      caps = Array.make ((2 * num_gpus) + (3 * nodes) + extra) 0.0;
      use_reference = false;
    }
  in
  for g = 0 to num_gpus - 1 do
    t.caps.(rid_of t (Down g)) <- capacity t (Down g);
    t.caps.(rid_of t (Up g)) <- capacity t (Up g)
  done;
  for n = 0 to nodes - 1 do
    t.caps.(rid_of t (Host_aggregate n)) <- capacity t (Host_aggregate n);
    t.caps.(rid_of t (Net_up n)) <- capacity t (Net_up n);
    t.caps.(rid_of t (Net_down n)) <- capacity t (Net_down n)
  done;
  (match flavor with
  | Wire -> ()
  | Fat_tree _ -> t.caps.(rid_of t Spine) <- capacity t Spine
  | Multi_rail _ ->
      t.caps.(rid_of t Spine) <- capacity t Spine;
      for k = 0 to (nodes * rails) - 1 do
        t.caps.(rid_of t (Rail_up k)) <- capacity t (Rail_up k);
        t.caps.(rid_of t (Rail_down k)) <- capacity t (Rail_down k)
      done
  | Nvlink_mesh _ ->
      t.caps.(rid_of t Spine) <- capacity t Spine;
      for g = 0 to num_gpus - 1 do
        t.caps.(rid_of t (Nv_out g)) <- capacity t (Nv_out g);
        t.caps.(rid_of t (Nv_in g)) <- capacity t (Nv_in g)
      done);
  t

let set_reference_allocator t flag = t.use_reference <- flag
let reference_allocator t = t.use_reference

let check_dev t i =
  if i < 0 || i >= t.num_gpus then invalid_arg (Printf.sprintf "Fabric: device %d out of range" i)

let resources_of t = function
  | H2d i ->
      check_dev t i;
      [ Down i; Host_aggregate (node_of t i) ]
  | D2h i ->
      check_dev t i;
      [ Up i; Host_aggregate (node_of t i) ]
  | P2p (i, j) ->
      check_dev t i;
      check_dev t j;
      if i = j then invalid_arg "Fabric: P2p with src = dst";
      let ni = node_of t i and nj = node_of t j in
      if ni = nj then
        match t.flavor with
        | Nvlink_mesh _ ->
            (* Direct GPU-GPU port pair; the PCIe links and the host root
               complex stay free for H2D/D2H traffic. *)
            [ Nv_out i; Nv_in j ]
        | Wire | Fat_tree _ | Multi_rail _ -> [ Up i; Down j; Host_aggregate ni ]
      else begin
        (* Cross-node peer traffic stages through both hosts and the
           network: D2H on the source node, the wire, H2D on the
           destination node. *)
        match t.flavor with
        | Fat_tree _ ->
            [
              Up i; Net_up ni; Spine; Net_down nj; Down j; Host_aggregate ni; Host_aggregate nj;
            ]
        | Multi_rail { rails } ->
            let r = (ni + nj) mod rails in
            [
              Up i;
              Rail_up ((ni * rails) + r);
              Rail_down ((nj * rails) + r);
              Down j;
              Host_aggregate ni;
              Host_aggregate nj;
            ]
        | Wire | Nvlink_mesh _ ->
            [ Up i; Net_up ni; Net_down nj; Down j; Host_aggregate ni; Host_aggregate nj ]
      end

let same_node t i j = node_of t i = node_of t j

let own_cap t = function
  | H2d _ -> t.link.Spec.h2d_bandwidth
  | D2h _ -> t.link.Spec.d2h_bandwidth
  | P2p (i, j) -> (
      if same_node t i j then
        match t.flavor with
        | Nvlink_mesh { nv_bandwidth; _ } -> nv_bandwidth
        | Wire | Fat_tree _ | Multi_rail _ -> t.link.Spec.p2p_bandwidth
      else
        match t.topology with
        | Some topo -> Float.min t.link.Spec.p2p_bandwidth topo.internode_bandwidth
        | None -> t.link.Spec.p2p_bandwidth)

let latency_of t = function
  | P2p (i, j) when not (same_node t i j) -> (
      match t.topology with
      | Some topo -> t.link.Spec.link_latency +. topo.internode_latency
      | None -> t.link.Spec.link_latency)
  | P2p _ when (match t.flavor with Nvlink_mesh _ -> true | _ -> false) -> (
      match t.flavor with Nvlink_mesh { nv_latency; _ } -> nv_latency | _ -> assert false)
  | H2d _ | D2h _ | P2p _ -> t.link.Spec.link_latency

let standalone_bandwidth t dir =
  List.fold_left (fun acc r -> Float.min acc (capacity t r)) (own_cap t dir) (resources_of t dir)

let transfer_time_alone t dir ~bytes =
  if bytes <= 0 then 0.0
  else latency_of t dir +. (float_of_int bytes /. standalone_bandwidth t dir)

let topology t = t.topology
let flavor t = t.flavor

let flavor_name t =
  match t.flavor with
  | Wire -> "wire"
  | Fat_tree _ -> "fattree"
  | Multi_rail _ -> "multirail"
  | Nvlink_mesh _ -> "nvmesh"

let num_gpus t = t.num_gpus

(* One in-flight transfer of the fluid simulation. *)
type flow = {
  idx : int;
  res : resource list;  (* used by the reference allocator *)
  rids : int array;  (* same resources, interned, same order *)
  cap : float;
  arrive : float;  (* ready + latency: when bytes start flowing *)
  total : float;  (* original size; completion threshold is relative to it *)
  mutable remaining : float;
  mutable rate : float;
  mutable fixed : bool;
  mutable start_time : float;
  mutable finish_time : float;
}

let make_flows t reqs_arr completions =
  let flows = ref [] in
  Array.iteri
    (fun idx (req : request) ->
      if req.bytes < 0 then invalid_arg "Fabric.run_batch: negative bytes";
      if req.bytes = 0 then
        completions.(idx) <- Some { req; start = req.ready; finish = req.ready }
      else begin
        let res = resources_of t req.direction in
        flows :=
          {
            idx;
            res;
            rids = Array.of_list (List.map (rid_of t) res);
            cap = own_cap t req.direction;
            arrive = req.ready +. latency_of t req.direction;
            total = float_of_int req.bytes;
            remaining = float_of_int req.bytes;
            rate = 0.0;
            fixed = false;
            start_time = req.ready;
            finish_time = nan;
          }
          :: !flows
      end)
    reqs_arr;
  List.rev !flows

(* The residue below which a flow counts as drained must scale with
   the flow, or tiny transfers finish early and huge ones drag a
   fixed byte tail: keep draining while more than 1e-12 of the
   original payload remains. The absolute floor keeps the threshold
   above double-precision resolution so the final subtraction can
   always cross it (a purely relative bound can sit below one ulp of
   [remaining] and loop forever). The floor must also scale with
   [rate *. ulp now]: subtracting [rate *. dt] can leave a residue
   of that order, and once [remaining /. rate] drops below one ulp
   of the clock, [now +. dt] rounds back to [now], dt collapses to
   zero and the loop makes no progress. Sessions sharing a machine
   only ever advance its clock, so late batches hit this where a
   fresh-machine run never does; bytes a flow cannot move within one
   representable time step are below the simulation's resolution
   anyway. *)
let time_floor ~now (f : flow) = f.rate *. (8.0 *. epsilon_float *. Float.max 1.0 (Float.abs now))

let drained ~now (f : flow) =
  f.remaining <= Float.max (time_floor ~now f) (Float.max 1e-9 (1e-12 *. f.total))

let collect t reqs_arr completions =
  Array.to_list
    (Array.mapi
       (fun idx c ->
         match c with
         | Some c -> c
         | None ->
             (* Every flow must either have completed or been zero-byte; a
                hole here means the event loop dropped a request. Failing
                loudly beats fabricating a zero-duration completion that
                would silently corrupt downstream schedules. *)
             let req = reqs_arr.(idx) in
             invalid_arg
               (Printf.sprintf "Fabric.run_batch: request %d (tag %S) never completed" idx req.tag))
       completions)
  |> fun l ->
  ignore t;
  l

(* ------------------------------------------------------------------ *)
(* Reference path: the from-scratch allocator.                         *)
(*                                                                     *)
(* This is the pre-incremental event loop, kept verbatim: it rebuilds  *)
(* the water-filling state (fresh hashtables, full fixed point) on     *)
(* every event and min-scans the active set for the next completion.   *)
(* It exists as the equivalence oracle for the incremental path (the   *)
(* QCheck property in test_props pins bit-identical completions) and   *)
(* as the baseline the `bench sim` speedup is measured against.        *)
(* ------------------------------------------------------------------ *)

(* Max-min fair allocation by water filling over the active flows. *)
let assign_rates_reference t active =
  Bag.iter
    (fun f ->
      f.fixed <- false;
      f.rate <- 0.0)
    active;
  let remcap = Hashtbl.create 8 in
  let count = Hashtbl.create 8 in
  let touch r =
    if not (Hashtbl.mem remcap r) then Hashtbl.replace remcap r (capacity t r);
    Hashtbl.replace count r (1 + Option.value ~default:0 (Hashtbl.find_opt count r))
  in
  Bag.iter (fun f -> List.iter touch f.res) active;
  let unfixed = ref (Bag.length active) in
  while !unfixed > 0 do
    let bound f =
      List.fold_left
        (fun acc r ->
          let share = Hashtbl.find remcap r /. float_of_int (Hashtbl.find count r) in
          Float.min acc share)
        f.cap f.res
    in
    let lambda =
      Bag.fold (fun acc f -> if f.fixed then acc else Float.min acc (bound f)) infinity active
    in
    let eps = lambda *. 1e-9 in
    Bag.iter
      (fun f ->
        if (not f.fixed) && bound f <= lambda +. eps then begin
          f.fixed <- true;
          f.rate <- Float.max lambda 1.0 (* avoid zero rates from degenerate caps *);
          decr unfixed;
          List.iter
            (fun r ->
              Hashtbl.replace remcap r (Float.max 0.0 (Hashtbl.find remcap r -. f.rate));
              Hashtbl.replace count r (Hashtbl.find count r - 1))
            f.res
        end)
      active
  done

let run_batch_reference t reqs =
  let reqs_arr = Array.of_list reqs in
  let n = Array.length reqs_arr in
  let completions = Array.make n None in
  let flows = make_flows t reqs_arr completions in
  let pending = ref (List.sort (fun a b -> compare a.arrive b.arrive) flows) in
  let active = Bag.create () in
  let now = ref 0.0 in
  (match !pending with [] -> () | f :: _ -> now := f.arrive);
  while !pending <> [] || not (Bag.is_empty active) do
    (* Admit arrivals: [pending] is arrive-sorted, so the due flows form
       a prefix; push them in order (matching the old list append). *)
    let rec admit = function
      | f :: rest when f.arrive <= !now +. 1e-15 ->
          Bag.push active f;
          admit rest
      | rest -> rest
    in
    pending := admit !pending;
    if Bag.is_empty active then begin
      match !pending with
      | f :: _ -> now := f.arrive
      | [] -> ()
    end
    else begin
      assign_rates_reference t active;
      (* Next event: earliest completion among active, or next arrival. *)
      let next_completion =
        Bag.fold (fun acc f -> Float.min acc (!now +. (f.remaining /. f.rate))) infinity active
      in
      let next_arrival = match !pending with [] -> infinity | f :: _ -> f.arrive in
      let t_next = Float.min next_completion next_arrival in
      let dt = t_next -. !now in
      Bag.iter (fun f -> f.remaining <- f.remaining -. (f.rate *. dt)) active;
      now := t_next;
      Bag.filter_in_place active
        ~keep:(fun f -> not (drained ~now:!now f))
        ~removed:(fun f ->
          f.finish_time <- !now;
          completions.(f.idx) <-
            Some { req = reqs_arr.(f.idx); start = f.start_time; finish = f.finish_time })
    end
  done;
  collect t reqs_arr completions

(* ------------------------------------------------------------------ *)
(* Incremental path.                                                   *)
(*                                                                     *)
(* Same fluid simulation, same floats, near-constant per-event work:   *)
(*  - resources are dense ints; capacity lives in [t.caps], and the    *)
(*    active-flow count per resource is maintained incrementally on    *)
(*    admit/complete instead of being rebuilt from the whole active    *)
(*    set each event;                                                  *)
(*  - the water filling runs over flat scratch arrays with no          *)
(*    allocation, visiting flows in admission order so every float     *)
(*    lands in the same place as the reference's hashtable walk;       *)
(*  - when the flows added/removed by an event share no resource with  *)
(*    the rest of the active set, the surviving rates are provably     *)
(*    unchanged and the global refill is skipped (admissions get a     *)
(*    fill over just themselves);                                      *)
(*  - arrivals sit in a bulk-heapified Event_queue, and the per-event  *)
(*    sweeps (completion min-scan, drain + compaction) are fused,      *)
(*    allocation-free array passes.                                    *)
(* See docs/PERF.md for the invariants and the bench methodology.      *)
(* ------------------------------------------------------------------ *)

(* Water filling over [active[lo..hi)] against the persistent per-rid
   [count], using [remcap]/[workcount] as per-run scratch. Bit-for-bit
   the same arithmetic as [assign_rates_reference]: same flow visit
   order, same per-resource visit order, same Float.min folds. *)
let waterfill t ~count ~remcap ~workcount active lo hi =
  Array.blit t.caps 0 remcap 0 (Array.length t.caps);
  Array.blit count 0 workcount 0 (Array.length count);
  for k = lo to hi - 1 do
    let f = Bag.get active k in
    f.fixed <- false;
    f.rate <- 0.0
  done;
  let bound (f : flow) =
    let b = ref f.cap in
    let rids = f.rids in
    for q = 0 to Array.length rids - 1 do
      let r = Array.unsafe_get rids q in
      let share = Array.unsafe_get remcap r /. float_of_int (Array.unsafe_get workcount r) in
      b := Float.min !b share
    done;
    !b
  in
  let unfixed = ref (hi - lo) in
  while !unfixed > 0 do
    let lambda = ref infinity in
    for k = lo to hi - 1 do
      let f = Bag.get active k in
      if not f.fixed then lambda := Float.min !lambda (bound f)
    done;
    let lambda = !lambda in
    let eps = lambda *. 1e-9 in
    for k = lo to hi - 1 do
      let f = Bag.get active k in
      if (not f.fixed) && bound f <= lambda +. eps then begin
        f.fixed <- true;
        f.rate <- Float.max lambda 1.0 (* avoid zero rates from degenerate caps *);
        decr unfixed;
        let rids = f.rids in
        for q = 0 to Array.length rids - 1 do
          let r = Array.unsafe_get rids q in
          remcap.(r) <- Float.max 0.0 (remcap.(r) -. f.rate);
          workcount.(r) <- workcount.(r) - 1
        done
      end
    done
  done

let run_batch_incremental t reqs =
  let reqs_arr = Array.of_list reqs in
  let n = Array.length reqs_arr in
  let completions = Array.make n None in
  let flows = make_flows t reqs_arr completions in
  let nres = Array.length t.caps in
  let count = Array.make nres 0 in
  let remcap = Array.make nres 0.0 in
  let workcount = Array.make nres 0 in
  (* O(n) bulk heapify; (arrive, request order) matches the reference's
     stable sort, so ties admit in the same order. *)
  let pending = Event_queue.of_list (List.map (fun f -> (f.arrive, f)) flows) in
  let active = Bag.create () in
  let now = ref 0.0 in
  if not (Event_queue.is_empty pending) then now := Event_queue.next_time pending;
  (* Rates in [active] are valid when they bitwise equal what a global
     refill over the current active set would produce. Any admit or
     complete that shares a resource with the survivors invalidates. *)
  let rates_valid = ref false in
  while (not (Event_queue.is_empty pending)) || not (Bag.is_empty active) do
    (* Admit due arrivals (next_time is infinity when empty). *)
    let admit_lo = Bag.length active in
    while Event_queue.next_time pending <= !now +. 1e-15 do
      Bag.push active (Event_queue.pop_min pending)
    done;
    let admit_hi = Bag.length active in
    if admit_hi > admit_lo then begin
      (* Disjointness check must see pre-admission counts, so count the
         batch in a second pass. Intra-batch sharing is fine: the fill
         over [admit_lo, admit_hi) handles it. *)
      let disjoint = ref true in
      for k = admit_lo to admit_hi - 1 do
        let rids = (Bag.get active k).rids in
        for q = 0 to Array.length rids - 1 do
          if count.(Array.unsafe_get rids q) <> 0 then disjoint := false
        done
      done;
      for k = admit_lo to admit_hi - 1 do
        let rids = (Bag.get active k).rids in
        for q = 0 to Array.length rids - 1 do
          let r = Array.unsafe_get rids q in
          count.(r) <- count.(r) + 1
        done
      done;
      if !rates_valid && !disjoint then
        (* The newcomers touch only idle resources: everyone else's rate
           is unchanged, so fill over just the new flows. *)
        waterfill t ~count ~remcap ~workcount active admit_lo admit_hi
      else rates_valid := false
    end;
    if Bag.is_empty active then begin
      if not (Event_queue.is_empty pending) then now := Event_queue.next_time pending
    end
    else begin
      if not !rates_valid then begin
        waterfill t ~count ~remcap ~workcount active 0 (Bag.length active);
        rates_valid := true
      end;
      (* Next event: earliest completion among active, or next arrival.
         Same scan as the reference — projected finishes must be computed
         from the current (now, remaining) so the stepped float
         arithmetic stays bit-identical. *)
      let next_completion = ref infinity in
      for k = 0 to Bag.length active - 1 do
        let f = Bag.get active k in
        next_completion := Float.min !next_completion (!now +. (f.remaining /. f.rate))
      done;
      let next_arrival = Event_queue.next_time pending in
      let t_next = Float.min !next_completion next_arrival in
      let dt = t_next -. !now in
      now := t_next;
      (* Fused drain + compaction: subtract this interval's payload and
         drop drained flows in one stable pass (per-flow arithmetic is
         independent, so fusing the reference's two passes is exact).
         Completed flows release their resource counts; if any released
         resource is still in use by a survivor, the survivors' rates
         changed and the next iteration refills. *)
      let all_private = ref true in
      let any_removed = ref false in
      Bag.filter_in_place active
        ~keep:(fun f ->
          f.remaining <- f.remaining -. (f.rate *. dt);
          not (drained ~now:!now f))
        ~removed:(fun f ->
          f.finish_time <- !now;
          completions.(f.idx) <-
            Some { req = reqs_arr.(f.idx); start = f.start_time; finish = f.finish_time };
          any_removed := true;
          let rids = f.rids in
          for q = 0 to Array.length rids - 1 do
            let r = Array.unsafe_get rids q in
            count.(r) <- count.(r) - 1;
            if count.(r) <> 0 then all_private := false
          done);
      if !any_removed && not !all_private then rates_valid := false
    end
  done;
  collect t reqs_arr completions

let run_batch t reqs =
  if t.use_reference then run_batch_reference t reqs else run_batch_incremental t reqs
