(** Per-GPU completion-event timelines for the overlap engine.

    An event set records, for every GPU, the simulated time at which that
    device's data last became fully up to date (its kernel finished and
    every incoming transfer targeting it completed), plus a host cursor
    for host-visible synchronization points (scalar-reduction folds,
    copyouts). The overlap engine gates each operation on the *join* of
    exactly the events it depends on — the source GPU's own kernel
    finish, a replay's miss arrivals — instead of a global barrier.

    Events only move forward: {!record} is a max-join, which is what a
    CUDA event wait gives you. *)

type t

val create : num_gpus:int -> t
(** All events start at time 0. *)

val num_gpus : t -> int

val gpu_ready : t -> int -> float
(** When GPU [g]'s device data was last fully reconciled. *)

val host_ready : t -> float
(** The host program-order cursor. *)

val record : t -> int -> float -> unit
(** Max-join [time] into GPU [g]'s event (no-op if earlier). *)

val record_host : t -> float -> unit

val join : t -> float
(** The global synchronization point: max over every GPU and the host. *)

val join_gpus : t -> float
(** Max over the GPU events only. *)

val barrier : t -> float
(** Collapse everything to the global join (a bulk-synchronous point,
    e.g. a data-region exit) and return it. *)

val reset : t -> unit
