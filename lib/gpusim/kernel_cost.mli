(** Roofline timing model for simulated GPU kernels.

    A launch's duration is the maximum of its arithmetic time and its memory
    time (they overlap on real hardware), divided by an occupancy factor
    when there are too few threads to hide latency, plus a fixed launch
    overhead. Random accesses are charged one full memory transaction each
    (32 B on Fermi), which is how uncoalesced gathers behave. *)

val occupancy : Spec.gpu -> threads:int -> float
(** In (0, 1\]: fraction of peak throughput achievable with [threads]
    resident threads. Reaches 1 at [latency_hiding_factor * cores]
    threads. *)

val compute_time : Spec.gpu -> Cost.t -> float
(** Arithmetic pipeline time at full occupancy, seconds. *)

val memory_time : Spec.gpu -> Cost.t -> float
(** Device-memory time at full occupancy, seconds. *)

val duration : Spec.gpu -> threads:int -> Cost.t -> float
(** Full launch duration including launch overhead. [threads] is the number
    of logical iterations mapped to the device. *)
