(** PCIe interconnect model with max-min fair bandwidth sharing.

    Concurrent transfers share link capacity: each transfer occupies the
    per-device link direction(s) it crosses plus the host root-complex
    aggregate, and a fluid-flow simulation (progressive filling between
    arrival/completion events) assigns max-min fair rates. This captures the
    effect the paper observes in Fig. 8: loading N GPUs concurrently does not
    divide CPU-GPU time by N, because the host side saturates. *)

type topology = {
  gpus_per_node : int;
  internode_bandwidth : float;  (** network rate between nodes, bytes/s *)
  internode_latency : float;  (** per-transfer setup across the network *)
}
(** Multi-node clusters (the paper's §VI second future-work item): GPUs
    [g] live on node [g / gpus_per_node]; peer transfers between nodes
    stage through both hosts and the network, with the network's own
    bandwidth and latency. The runtime is unchanged — everything routes
    through the fabric. *)

type flavor =
  | Wire  (** a flat per-node wire — the pre-generative semantics, byte-identical *)
  | Fat_tree of { oversub : float }
      (** per-node injection at the internode rate, but all cross-node flows
          additionally share a spine whose capacity is the bisection
          ([internode_bandwidth * nodes / oversub]) *)
  | Multi_rail of { rails : int }
      (** [rails] independent inter-node networks; a node pair's traffic is
          pinned to rail [(src_node + dst_node) mod rails], so aggregate
          cross-node bandwidth scales with the rail count *)
  | Nvlink_mesh of { nv_bandwidth : float; nv_latency : float }
      (** same-node peer transfers ride dedicated per-GPU port pairs
          (bypassing PCIe and the host root complex) at NVLink-class
          bandwidth/latency; cross-node traffic is unchanged *)
(** How the links between nodes (and, for NVLink, within a node) are
    organized. [Wire] is the default and is bit-identical to the
    pre-flavor fabric: same resources, same dense-id layout, same caps. *)

type resource =
  | Down of int  (** host -> device link of GPU [i] *)
  | Up of int  (** device [i] -> host link *)
  | Host_aggregate of int  (** root complex / QPI shared capacity of a node *)
  | Net_up of int  (** node [n] -> network *)
  | Net_down of int  (** network -> node [n] *)
  | Spine  (** fat-tree bisection shared by every cross-node flow *)
  | Rail_up of int  (** rail injection pipe, indexed [node * rails + rail] *)
  | Rail_down of int  (** rail delivery pipe, same indexing *)
  | Nv_out of int  (** NVLink egress port of GPU [g] *)
  | Nv_in of int  (** NVLink ingress port of GPU [g] *)

type direction =
  | H2d of int  (** host to device [i] *)
  | D2h of int
  | P2p of int * int  (** device [src] to device [dst] *)

type request = {
  direction : direction;
  bytes : int;
  ready : float;  (** earliest start time (data dependency) *)
  tag : string;  (** label recorded in the trace *)
}

type completion = { req : request; start : float; finish : float }

type t

val create : ?flavor:flavor -> ?topology:topology -> Spec.link -> num_gpus:int -> t
(** Without [topology], all GPUs share one node (the paper's setting).
    [flavor] defaults to [Wire], which is bit-identical to the
    pre-generative fabric. *)

val node_of : t -> int -> int
(** The node hosting a GPU. *)

val same_node : t -> int -> int -> bool
(** Whether two GPUs share a node (always true without a topology). *)

val topology : t -> topology option

val flavor : t -> flavor

val flavor_name : t -> string
(** The flavor's spec keyword: wire, fattree, multirail or nvmesh. *)

val num_gpus : t -> int

val standalone_bandwidth : t -> direction -> float
(** Peak rate of a transfer running alone (min of its caps). *)

val latency_of : t -> direction -> float
(** Per-transfer setup latency (link latency, plus the internode latency
    for cross-node peer transfers). *)

val transfer_time_alone : t -> direction -> bytes:int -> float
(** Latency + bytes / standalone rate; the uncontended duration. *)

val run_batch : t -> request list -> completion list
(** Simulate the batch under fair sharing. Completions are returned in the
    order of the requests. The fabric is stateless across batches (the BSP
    runtime separates batches with barriers). Zero-byte requests complete
    instantly at their ready time, with no latency charge.
    @raise Invalid_argument if a request has negative bytes, or (naming
    the request's tag) if the event loop ever fails to complete a flow —
    a simulator invariant violation, never expected in normal use. *)

val run_batch_reference : t -> request list -> completion list
(** The from-scratch allocator: rebuilds the water-filling state on every
    event instead of maintaining it incrementally. Same contract — and
    bit-identical completions — as {!run_batch}; kept as the equivalence
    oracle for the incremental fast path and as the baseline that
    [bench sim] measures its speedup against. *)

val set_reference_allocator : t -> bool -> unit
(** When set, {!run_batch} routes through {!run_batch_reference}. For
    benchmarking and differential testing only. *)

val reference_allocator : t -> bool
(** Whether the reference allocator is selected. *)
