(** Hardware specifications for the simulated platforms.

    The presets mirror the paper's Table I: a desktop with one Core i7 and
    two Tesla C2075 cards, and a TSUBAME2.0 thin node with two Xeon X5670
    and three Tesla M2050 cards. Numbers are public datasheet values;
    [*_efficiency] factors derate peak figures to realistic sustained ones. *)

type gpu = {
  gpu_name : string;
  sm_count : int;  (** streaming multiprocessors *)
  cores : int;  (** CUDA cores total *)
  clock_ghz : float;
  dp_gflops : float;  (** peak double-precision GFLOP/s *)
  mem_bandwidth : float;  (** device memory bandwidth, bytes/s *)
  mem_capacity : int;  (** device memory size, bytes *)
  compute_efficiency : float;  (** sustained / peak for arithmetic *)
  bandwidth_efficiency : float;  (** sustained / peak for memory *)
  kernel_launch_overhead : float;  (** seconds per kernel launch *)
  transaction_bytes : int;  (** memory transaction granularity *)
  l2_hit_ratio : float;
      (** fraction of data-dependent (gather/scatter) accesses served by the
          on-chip L2 — GPU-friendly irregular codes (sorted neighbor lists,
          frontier-local graphs) have substantial locality *)
}

type cpu = {
  cpu_name : string;
  sockets : int;
  cores_per_socket : int;
  threads_per_core : int;  (** hyper-threading factor *)
  cpu_clock_ghz : float;
  cpu_dp_gflops : float;  (** peak double-precision GFLOP/s, whole node *)
  cpu_mem_bandwidth : float;  (** sustained memory bandwidth, bytes/s, whole node *)
  cpu_compute_efficiency : float;
  parallel_efficiency : float;  (** OpenMP scaling efficiency at full threads *)
  cacheline_bytes : int;
}

type link = {
  h2d_bandwidth : float;  (** host-to-device, bytes/s, per GPU link *)
  d2h_bandwidth : float;
  p2p_bandwidth : float;  (** GPU peer-to-peer, bytes/s *)
  link_latency : float;  (** per-transfer setup latency, seconds *)
  host_aggregate_bandwidth : float;
      (** cap on the sum of concurrent host-side transfer rates (root-complex
          / QPI bottleneck) *)
}

val tesla_c2075 : gpu
val tesla_m2050 : gpu
val core_i7_970 : cpu
val dual_xeon_x5670 : cpu

val pcie_gen2_desktop : link
val pcie_gen2_supernode : link

val cpu_total_cores : cpu -> int
val cpu_total_threads : cpu -> int

val pp_gpu : Format.formatter -> gpu -> unit
val pp_cpu : Format.formatter -> cpu -> unit
