(** A simulated compute node: CPU, GPUs, interconnect, and a trace.

    The two presets replicate the paper's Table I platforms. All timed
    operations go through this module so that every span lands in the
    machine's trace with the right category for the Fig. 8 breakdown. *)

type t = {
  name : string;
  cpu : Spec.cpu;
  link : Spec.link;
  devices : Device.t array;
  fabric : Fabric.t;
  trace : Mgacc_sim.Trace.t;
  default_omp_threads : int;
}

val desktop : ?num_gpus:int -> unit -> t
(** 1x Core i7 + up to 2x Tesla C2075 (default 2), 12 OpenMP threads. *)

val supernode : ?num_gpus:int -> unit -> t
(** 2x Xeon X5670 + up to 3x Tesla M2050 (default 3), 24 OpenMP threads. *)

val desktop_mixed : unit -> t
(** A heterogeneous desktop: 1x Core i7 driving one Tesla C2075 and one
    Tesla M2050 over desktop PCIe. Not a paper platform — it exists to
    evaluate weighted iteration partitioning, where the C2075's higher
    effective bandwidth and clock should earn it the larger share. *)

val custom :
  ?flavor:Fabric.flavor ->
  ?topology:Fabric.topology ->
  name:string -> cpu:Spec.cpu -> gpu:Spec.gpu -> link:Spec.link -> num_gpus:int ->
  omp_threads:int -> unit -> t

val custom_hetero :
  ?flavor:Fabric.flavor ->
  ?topology:Fabric.topology ->
  name:string -> cpu:Spec.cpu -> gpus:Spec.gpu array -> link:Spec.link ->
  omp_threads:int -> unit -> t
(** Like [custom] but with a per-device spec array, allowing mixed GPUs. *)

val cluster : ?nodes:int -> ?gpus_per_node:int -> unit -> t
(** A GPU cluster (paper §VI, second future-work item): [nodes] desktop-class
    nodes (default 2) of [gpus_per_node] C2075 each (default 2), connected by
    a QDR-InfiniBand-class network (3.2 GB/s, 25 us). Peer transfers between
    nodes stage through both hosts and the wire; the OpenACC runtime needs no
    changes — only the fabric knows. *)

val fat_tree : ?oversub:float -> nodes:int -> gpus_per_node:int -> unit -> t
(** A cluster whose cross-node flows additionally share a fat-tree spine of
    bisection [internode_bandwidth * nodes / oversub] (default oversub 2.0):
    per-node injection is unchanged but an all-to-all phase saturates the
    core, which the collective cost model can see. *)

val multi_rail : ?rails:int -> nodes:int -> gpus_per_node:int -> unit -> t
(** A cluster with [rails] (default 2) independent inter-node networks; each
    node pair's traffic is pinned to one rail, scaling aggregate cross-node
    bandwidth with the rail count. *)

val nv_mesh : nodes:int -> gpus_per_node:int -> unit -> t
(** A cluster whose same-node peer transfers ride dedicated NVLink-class
    port pairs (20 GB/s, 5 us) instead of PCIe + host root complex. *)

type spec =
  | Preset of string  (** desktop | desktop-mixed | supernode | cluster *)
  | Cluster_spec of { nodes : int; gpus_per_node : int }
  | Fat_tree_spec of { nodes : int; gpus_per_node : int; oversub : float }
  | Multi_rail_spec of { nodes : int; gpus_per_node : int; rails : int }
  | Nv_mesh_spec of { nodes : int; gpus_per_node : int }
(** A parsed [--machine] argument: a legacy preset name or a generative
    topology like [fattree:8x4]. *)

val spec_grammar : string
(** One-line description of the accepted spec strings, for error messages
    and --help. *)

val spec_of_string : string -> (spec, string) result
(** Parse a [--machine] spec: a preset name, or
    [cluster:NxM | fattree:NxM[:OVERSUB] | multirail:NxM[:RAILS] | nvmesh:NxM]
    where N is the node count and M the GPUs per node. *)

val spec_to_string : spec -> string
(** The canonical spelling; [spec_of_string (spec_to_string s) = Ok s]. *)

val spec_gpus : spec -> int
(** Total GPU count the spec builds (the preset's default count). *)

val of_spec : spec -> t
(** Build the machine a spec describes. *)

val num_gpus : t -> int
val device : t -> int -> Device.t

val launch_kernel : t -> dev:int -> ready:float -> threads:int -> label:string -> Cost.t -> float * float
(** Run a kernel on device [dev]; records a [Kernel] span; returns
    [(start, finish)]. *)

val launch_kernel_span :
  ?causes:int list ->
  t -> dev:int -> ready:float -> threads:int -> label:string -> Cost.t -> float * float * int
(** Like {!launch_kernel} but threads causal edges: [causes] are producer
    span ids the launch was gated on, and the returned third component is
    the kernel's own span id. *)

val host_compute : t -> ready:float -> threads:int -> label:string -> Cost.t -> float * float
(** Run a parallel loop on the host CPU model; records a [Host_compute]
    span. *)

val run_transfers : t -> label:string -> Fabric.request list -> Fabric.completion list
(** Run a batch of transfers under fair bandwidth sharing; records one span
    per non-empty transfer with the right category. *)

val run_transfers_spans :
  t ->
  label:string ->
  (Fabric.request * int list) list ->
  (Fabric.completion * int option) list
(** Causal variant of {!run_transfers}: each request carries the producer
    span ids that gated it, and each completion comes back with its span
    id ([None] for zero-byte requests, which record no span). Completions
    are returned in request order. *)

val transfer_sync : t -> ready:float -> Fabric.direction -> bytes:int -> label:string -> float
(** One uncontended transfer; records its span; returns the finish time. *)

val overhead : t -> ready:float -> seconds:float -> label:string -> float
(** Charge fixed runtime bookkeeping time on the host; returns finish. *)

val overhead_span :
  ?causes:int list -> t -> ready:float -> seconds:float -> label:string -> float * int option
(** Like {!overhead} but returns the recorded span id ([None] when
    [seconds <= 0], which records nothing). *)

val reset : t -> unit
(** Clear the trace and all device timelines/memory peaks. *)
