open Mgacc_sim

type t = {
  name : string;
  cpu : Spec.cpu;
  link : Spec.link;
  devices : Device.t array;
  fabric : Fabric.t;
  trace : Trace.t;
  default_omp_threads : int;
}

let custom_hetero ?flavor ?topology ~name ~cpu ~gpus ~link ~omp_threads () =
  let num_gpus = Array.length gpus in
  if num_gpus <= 0 then invalid_arg "Machine.custom_hetero: no GPUs";
  {
    name;
    cpu;
    link;
    devices = Array.mapi (fun id gpu -> Device.create ~id gpu) gpus;
    fabric = Fabric.create ?flavor ?topology link ~num_gpus;
    trace = Trace.create ();
    default_omp_threads = omp_threads;
  }

let custom ?flavor ?topology ~name ~cpu ~gpu ~link ~num_gpus ~omp_threads () =
  if num_gpus <= 0 then invalid_arg "Machine.custom: num_gpus <= 0";
  custom_hetero ?flavor ?topology ~name ~cpu ~gpus:(Array.make num_gpus gpu) ~link ~omp_threads ()

let desktop ?(num_gpus = 2) () =
  if num_gpus < 1 || num_gpus > 2 then invalid_arg "Machine.desktop: 1 or 2 GPUs";
  custom ~name:"Desktop Machine" ~cpu:Spec.core_i7_970 ~gpu:Spec.tesla_c2075
    ~link:Spec.pcie_gen2_desktop ~num_gpus ~omp_threads:12 ()

let supernode ?(num_gpus = 3) () =
  if num_gpus < 1 || num_gpus > 3 then invalid_arg "Machine.supernode: 1 to 3 GPUs";
  custom ~name:"Supercomputer Node" ~cpu:Spec.dual_xeon_x5670 ~gpu:Spec.tesla_m2050
    ~link:Spec.pcie_gen2_supernode ~num_gpus ~omp_threads:24 ()

let desktop_mixed () =
  custom_hetero
    ~name:"Mixed Desktop (C2075 + M2050)"
    ~cpu:Spec.core_i7_970
    ~gpus:[| Spec.tesla_c2075; Spec.tesla_m2050 |]
    ~link:Spec.pcie_gen2_desktop ~omp_threads:12 ()

(* QDR-InfiniBand-class internode wire shared by every clustered preset. *)
let qdr_topology ~gpus_per_node =
  {
    Fabric.gpus_per_node;
    internode_bandwidth = 3.2 *. 1024.0 *. 1024.0 *. 1024.0;
    internode_latency = 25e-6;
  }

let cluster ?(nodes = 2) ?(gpus_per_node = 2) () =
  if nodes < 1 || gpus_per_node < 1 then invalid_arg "Machine.cluster";
  custom
    ~topology:(qdr_topology ~gpus_per_node)
    ~name:(Printf.sprintf "GPU Cluster (%d nodes x %d C2075)" nodes gpus_per_node)
    ~cpu:Spec.core_i7_970 ~gpu:Spec.tesla_c2075 ~link:Spec.pcie_gen2_desktop
    ~num_gpus:(nodes * gpus_per_node) ~omp_threads:12 ()

let fat_tree ?(oversub = 2.0) ~nodes ~gpus_per_node () =
  if nodes < 1 || gpus_per_node < 1 then invalid_arg "Machine.fat_tree";
  custom
    ~flavor:(Fabric.Fat_tree { oversub })
    ~topology:(qdr_topology ~gpus_per_node)
    ~name:
      (Printf.sprintf "Fat-tree Cluster (%d nodes x %d C2075, %gx oversub)" nodes gpus_per_node
         oversub)
    ~cpu:Spec.core_i7_970 ~gpu:Spec.tesla_c2075 ~link:Spec.pcie_gen2_desktop
    ~num_gpus:(nodes * gpus_per_node) ~omp_threads:12 ()

let multi_rail ?(rails = 2) ~nodes ~gpus_per_node () =
  if nodes < 1 || gpus_per_node < 1 then invalid_arg "Machine.multi_rail";
  custom
    ~flavor:(Fabric.Multi_rail { rails })
    ~topology:(qdr_topology ~gpus_per_node)
    ~name:
      (Printf.sprintf "Multi-rail Cluster (%d nodes x %d C2075, %d rails)" nodes gpus_per_node
         rails)
    ~cpu:Spec.core_i7_970 ~gpu:Spec.tesla_c2075 ~link:Spec.pcie_gen2_desktop
    ~num_gpus:(nodes * gpus_per_node) ~omp_threads:12 ()

let nv_mesh ~nodes ~gpus_per_node () =
  if nodes < 1 || gpus_per_node < 1 then invalid_arg "Machine.nv_mesh";
  custom
    ~flavor:
      (Fabric.Nvlink_mesh
         { nv_bandwidth = 20.0 *. 1024.0 *. 1024.0 *. 1024.0; nv_latency = 5e-6 })
    ~topology:(qdr_topology ~gpus_per_node)
    ~name:(Printf.sprintf "NVLink-mesh Cluster (%d nodes x %d C2075)" nodes gpus_per_node)
    ~cpu:Spec.core_i7_970 ~gpu:Spec.tesla_c2075 ~link:Spec.pcie_gen2_desktop
    ~num_gpus:(nodes * gpus_per_node) ~omp_threads:12 ()

(* ---------------- machine spec strings ---------------- *)

type spec =
  | Preset of string
  | Cluster_spec of { nodes : int; gpus_per_node : int }
  | Fat_tree_spec of { nodes : int; gpus_per_node : int; oversub : float }
  | Multi_rail_spec of { nodes : int; gpus_per_node : int; rails : int }
  | Nv_mesh_spec of { nodes : int; gpus_per_node : int }

let spec_grammar =
  "desktop|desktop-mixed|supernode|cluster, or cluster:NxM, fattree:NxM[:OVERSUB], \
   multirail:NxM[:RAILS], nvmesh:NxM (N nodes x M GPUs each)"

let spec_of_string s =
  let fail () = Error (Printf.sprintf "unknown machine %S (%s)" s spec_grammar) in
  let geometry g =
    match String.index_opt g 'x' with
    | None -> None
    | Some i -> (
        try
          let nodes = int_of_string (String.sub g 0 i)
          and gpus_per_node = int_of_string (String.sub g (i + 1) (String.length g - i - 1)) in
          if nodes >= 1 && gpus_per_node >= 1 then Some (nodes, gpus_per_node) else None
        with _ -> None)
  in
  match String.split_on_char ':' s with
  | [ ("desktop" | "desktop-mixed" | "supernode" | "cluster") ] -> Ok (Preset s)
  | [ "cluster"; g ] -> (
      match geometry g with
      | Some (nodes, gpus_per_node) -> Ok (Cluster_spec { nodes; gpus_per_node })
      | None -> fail ())
  | [ "fattree"; g ] -> (
      match geometry g with
      | Some (nodes, gpus_per_node) -> Ok (Fat_tree_spec { nodes; gpus_per_node; oversub = 2.0 })
      | None -> fail ())
  | [ "fattree"; g; ov ] -> (
      match (geometry g, float_of_string_opt ov) with
      | Some (nodes, gpus_per_node), Some oversub when oversub >= 1.0 ->
          Ok (Fat_tree_spec { nodes; gpus_per_node; oversub })
      | _ -> fail ())
  | [ "multirail"; g ] -> (
      match geometry g with
      | Some (nodes, gpus_per_node) -> Ok (Multi_rail_spec { nodes; gpus_per_node; rails = 2 })
      | None -> fail ())
  | [ "multirail"; g; r ] -> (
      match (geometry g, int_of_string_opt r) with
      | Some (nodes, gpus_per_node), Some rails when rails >= 1 ->
          Ok (Multi_rail_spec { nodes; gpus_per_node; rails })
      | _ -> fail ())
  | [ "nvmesh"; g ] -> (
      match geometry g with
      | Some (nodes, gpus_per_node) -> Ok (Nv_mesh_spec { nodes; gpus_per_node })
      | None -> fail ())
  | _ -> fail ()

let spec_to_string = function
  | Preset name -> name
  | Cluster_spec { nodes; gpus_per_node } -> Printf.sprintf "cluster:%dx%d" nodes gpus_per_node
  | Fat_tree_spec { nodes; gpus_per_node; oversub } ->
      Printf.sprintf "fattree:%dx%d:%g" nodes gpus_per_node oversub
  | Multi_rail_spec { nodes; gpus_per_node; rails } ->
      Printf.sprintf "multirail:%dx%d:%d" nodes gpus_per_node rails
  | Nv_mesh_spec { nodes; gpus_per_node } -> Printf.sprintf "nvmesh:%dx%d" nodes gpus_per_node

let spec_gpus = function
  | Preset "desktop" | Preset "desktop-mixed" -> 2
  | Preset "supernode" -> 3
  | Preset _ -> 4 (* cluster: 2 nodes x 2 GPUs *)
  | Cluster_spec { nodes; gpus_per_node }
  | Fat_tree_spec { nodes; gpus_per_node; _ }
  | Multi_rail_spec { nodes; gpus_per_node; _ }
  | Nv_mesh_spec { nodes; gpus_per_node } ->
      nodes * gpus_per_node

let of_spec = function
  | Preset "desktop" -> desktop ()
  | Preset "desktop-mixed" -> desktop_mixed ()
  | Preset "supernode" -> supernode ()
  | Preset _ -> cluster ()
  | Cluster_spec { nodes; gpus_per_node } -> cluster ~nodes ~gpus_per_node ()
  | Fat_tree_spec { nodes; gpus_per_node; oversub } -> fat_tree ~oversub ~nodes ~gpus_per_node ()
  | Multi_rail_spec { nodes; gpus_per_node; rails } -> multi_rail ~rails ~nodes ~gpus_per_node ()
  | Nv_mesh_spec { nodes; gpus_per_node } -> nv_mesh ~nodes ~gpus_per_node ()

let num_gpus t = Array.length t.devices

let device t i =
  if i < 0 || i >= num_gpus t then invalid_arg (Printf.sprintf "Machine.device: %d" i);
  t.devices.(i)

let launch_kernel_span ?causes t ~dev ~ready ~threads ~label cost =
  let d = device t dev in
  let start, finish = Device.launch d ~ready ~threads cost in
  let id =
    Trace.record t.trace ?causes
      ~resource:(Printf.sprintf "gpu%d" dev)
      ~category:Trace.Kernel ~label ~start ~finish ~bytes:0 ()
  in
  (start, finish, id)

let launch_kernel t ~dev ~ready ~threads ~label cost =
  let start, finish, _ = launch_kernel_span t ~dev ~ready ~threads ~label cost in
  (start, finish)

let host_compute t ~ready ~threads ~label cost =
  let duration = Cpu_model.duration t.cpu ~threads cost in
  let start = ready and finish = ready +. duration in
  ignore
    (Trace.record t.trace ~resource:"cpu" ~category:Trace.Host_compute ~label ~start ~finish
       ~bytes:0 ());
  (start, finish)

let category_of_direction = function
  | Fabric.H2d _ -> Trace.Host_to_device
  | Fabric.D2h _ -> Trace.Device_to_host
  | Fabric.P2p _ -> Trace.Peer

let resource_of_direction = function
  | Fabric.H2d i -> Printf.sprintf "pcie:h2d%d" i
  | Fabric.D2h i -> Printf.sprintf "pcie:d2h%d" i
  | Fabric.P2p (i, j) -> Printf.sprintf "pcie:p2p%d-%d" i j

let run_transfers_spans t ~label reqs =
  let completions = Fabric.run_batch t.fabric (List.map fst reqs) in
  (* Fabric.run_batch preserves request order, so completions pair up with
     the submitted (request, causes) list positionally. *)
  List.map2
    (fun (_, causes) (c : Fabric.completion) ->
      let span =
        if c.req.bytes > 0 then
          Some
            (Trace.record t.trace ~causes
               ~resource:(resource_of_direction c.req.direction)
               ~category:(category_of_direction c.req.direction)
               ~label:(Printf.sprintf "%s:%s" label c.req.tag)
               ~start:c.start ~finish:c.finish ~bytes:c.req.bytes ())
        else None
      in
      (c, span))
    reqs completions

let run_transfers t ~label reqs =
  List.map fst (run_transfers_spans t ~label (List.map (fun r -> (r, [])) reqs))

let transfer_sync t ~ready direction ~bytes ~label =
  if bytes = 0 then ready
  else begin
    let duration = Fabric.transfer_time_alone t.fabric direction ~bytes in
    let finish = ready +. duration in
    ignore
      (Trace.record t.trace
         ~resource:(resource_of_direction direction)
         ~category:(category_of_direction direction)
         ~label ~start:ready ~finish ~bytes ());
    finish
  end

let overhead_span ?causes t ~ready ~seconds ~label =
  if seconds <= 0.0 then (ready, None)
  else begin
    let finish = ready +. seconds in
    let id =
      Trace.record t.trace ?causes ~resource:"cpu" ~category:Trace.Overhead ~label ~start:ready
        ~finish ~bytes:0 ()
    in
    (finish, Some id)
  end

let overhead t ~ready ~seconds ~label = fst (overhead_span t ~ready ~seconds ~label)

let reset t =
  Trace.clear t.trace;
  Array.iter Device.reset t.devices
