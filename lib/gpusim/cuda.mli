(** A small virtual CUDA API over the machine simulator.

    This is the layer a hand-written CUDA program would target: explicit
    device selection, device malloc/free, synchronous and asynchronous
    copies, and kernel launches whose functional body is an OCaml closure
    that returns the dynamic cost of the launch. The paper's hand-written
    single-GPU CUDA baselines are written against this module. *)

type context

val init : Machine.t -> context
val machine : context -> Machine.t

val set_device : context -> int -> unit
(** Select the current device (like [cudaSetDevice]). *)

val current_device : context -> int

val now : context -> float
(** The context's simulated clock (host thread time). *)

val malloc_floats : context -> int -> Memory.buf
(** Allocate user data on the current device. *)

val malloc_ints : context -> int -> Memory.buf

val free : context -> Memory.buf -> unit

val memcpy_h2d_floats : context -> dst:Memory.buf -> float array -> unit
(** Synchronous copy: blocks the context clock for the transfer time and
    copies the data. Lengths must match. *)

val memcpy_h2d_ints : context -> dst:Memory.buf -> int array -> unit
val memcpy_d2h_floats : context -> src:Memory.buf -> float array -> unit
val memcpy_d2h_ints : context -> src:Memory.buf -> int array -> unit

val memcpy_p2p_floats : context -> dst:Memory.buf -> src:Memory.buf -> unit
(** Peer copy between devices (whole buffers; lengths must match). *)

val charge_h2d : context -> bytes:int -> label:string -> unit
(** Account a host-to-device transfer of a buffer the caller manages
    outside the simulator (advances the clock, records the span). *)

val charge_d2h : context -> bytes:int -> label:string -> unit

val launch : context -> threads:int -> label:string -> (unit -> Cost.t) -> unit
(** [launch ctx ~threads ~label body] runs [body] functionally (it mutates
    device buffers and returns the dynamic cost), then advances the clock by
    the simulated kernel duration on the current device. *)

val launch_async : context -> threads:int -> label:string -> (unit -> Cost.t) -> float
(** Like {!launch} but only serializes on the device, not the host clock;
    returns the kernel finish time. Use {!wait_until} to join. *)

val wait_until : context -> float -> unit
(** Advance the context clock to at least the given time
    (like [cudaDeviceSynchronize] against a known completion). *)

val elapsed : context -> float
(** Alias for {!now}: total simulated time consumed so far. *)
