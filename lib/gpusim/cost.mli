(** Dynamic operation counters accumulated while a kernel (or a CPU loop)
    executes functionally.

    The executor increments these as it interprets each iteration; the GPU
    roofline model ({!Kernel_cost}) and the CPU model ({!Cpu_model}) turn the
    totals into simulated durations. Counts are totals over all iterations
    of a launch, not per-thread. *)

type t = {
  mutable flops : int;  (** double-precision arithmetic operations *)
  mutable int_ops : int;  (** integer ALU operations (index math, compares) *)
  mutable coalesced_bytes : int;
      (** bytes moved by accesses whose addresses are affine in the thread
          id — adjacent threads touch adjacent words, so the hardware
          coalesces them into full-width transactions *)
  mutable broadcast_bytes : int;
      (** bytes requested by accesses whose address does not depend on the
          thread id: one transaction serves a whole warp on a GPU, and the
          line stays cached on a CPU *)
  mutable random_accesses : int;
      (** number of data-dependent (gather/scatter) accesses; each costs a
          full memory transaction on a GPU and a likely cache miss on a CPU *)
  mutable random_bytes : int;  (** payload bytes of those accesses *)
}

val zero : unit -> t
val add : t -> t -> unit
(** [add acc d] accumulates [d] into [acc]. *)

val scale : t -> int -> t
(** [scale t k] is a fresh record with every counter multiplied by [k]
    (used to extrapolate a sampled execution). *)

val total_bytes : t -> int
val is_zero : t -> bool
val pp : Format.formatter -> t -> unit
