type t = { gpu : float array; mutable host : float }

let create ~num_gpus =
  if num_gpus <= 0 then invalid_arg "Event.create: num_gpus <= 0";
  { gpu = Array.make num_gpus 0.0; host = 0.0 }

let num_gpus t = Array.length t.gpu

let check t g =
  if g < 0 || g >= Array.length t.gpu then
    invalid_arg (Printf.sprintf "Event: gpu %d out of range" g)

let gpu_ready t g =
  check t g;
  t.gpu.(g)

let host_ready t = t.host

let record t g time =
  check t g;
  if time > t.gpu.(g) then t.gpu.(g) <- time

let record_host t time = if time > t.host then t.host <- time

let join t = Array.fold_left Float.max t.host t.gpu

let join_gpus t = Array.fold_left Float.max 0.0 t.gpu

let barrier t =
  let m = join t in
  Array.fill t.gpu 0 (Array.length t.gpu) m;
  t.host <- m;
  m

let reset t =
  Array.fill t.gpu 0 (Array.length t.gpu) 0.0;
  t.host <- 0.0
