type gpu = {
  gpu_name : string;
  sm_count : int;
  cores : int;
  clock_ghz : float;
  dp_gflops : float;
  mem_bandwidth : float;
  mem_capacity : int;
  compute_efficiency : float;
  bandwidth_efficiency : float;
  kernel_launch_overhead : float;
  transaction_bytes : int;
  l2_hit_ratio : float;
}

type cpu = {
  cpu_name : string;
  sockets : int;
  cores_per_socket : int;
  threads_per_core : int;
  cpu_clock_ghz : float;
  cpu_dp_gflops : float;
  cpu_mem_bandwidth : float;
  cpu_compute_efficiency : float;
  parallel_efficiency : float;
  cacheline_bytes : int;
}

type link = {
  h2d_bandwidth : float;
  d2h_bandwidth : float;
  p2p_bandwidth : float;
  link_latency : float;
  host_aggregate_bandwidth : float;
}

let gb = 1024.0 *. 1024.0 *. 1024.0

let tesla_c2075 =
  {
    gpu_name = "Nvidia Tesla C2075";
    sm_count = 14;
    cores = 448;
    clock_ghz = 1.15;
    dp_gflops = 515.0;
    mem_bandwidth = 144.0 *. gb;
    mem_capacity = 6 * 1024 * 1024 * 1024;
    compute_efficiency = 0.60;
    bandwidth_efficiency = 0.75;
    kernel_launch_overhead = 10e-6;
    transaction_bytes = 32;
    l2_hit_ratio = 0.55;
  }

let tesla_m2050 =
  {
    gpu_name = "Nvidia Tesla M2050";
    sm_count = 14;
    cores = 448;
    clock_ghz = 1.15;
    dp_gflops = 515.0;
    mem_bandwidth = 148.0 *. gb;
    mem_capacity = 3 * 1024 * 1024 * 1024;
    compute_efficiency = 0.55;
    bandwidth_efficiency = 0.70;
    kernel_launch_overhead = 12e-6;
    transaction_bytes = 32;
    l2_hit_ratio = 0.55;
  }

let core_i7_970 =
  {
    cpu_name = "Intel Core i7 (6 cores, HT)";
    sockets = 1;
    cores_per_socket = 6;
    threads_per_core = 2;
    cpu_clock_ghz = 3.2;
    cpu_dp_gflops = 76.8 (* 6 cores x 3.2 GHz x 4 DP FLOP/cycle (SSE) *);
    cpu_mem_bandwidth = 21.0 *. gb;
    cpu_compute_efficiency = 0.55;
    parallel_efficiency = 0.80;
    cacheline_bytes = 64;
  }

let dual_xeon_x5670 =
  {
    cpu_name = "Intel Xeon X5670 x 2 (12 cores, HT)";
    sockets = 2;
    cores_per_socket = 6;
    threads_per_core = 2;
    cpu_clock_ghz = 2.93;
    cpu_dp_gflops = 140.6 (* 12 cores x 2.93 GHz x 4 DP FLOP/cycle *);
    cpu_mem_bandwidth = 42.0 *. gb;
    cpu_compute_efficiency = 0.55;
    parallel_efficiency = 0.75;
    cacheline_bytes = 64;
  }

let pcie_gen2_desktop =
  {
    h2d_bandwidth = 5.8 *. gb;
    d2h_bandwidth = 5.4 *. gb;
    p2p_bandwidth = 5.0 *. gb;
    link_latency = 15e-6;
    host_aggregate_bandwidth = 9.0 *. gb (* X58 root complex saturates below 2 x 5.8 *);
  }

let pcie_gen2_supernode =
  {
    h2d_bandwidth = 5.6 *. gb;
    d2h_bandwidth = 5.2 *. gb;
    p2p_bandwidth = 4.0 *. gb (* cross-IOH peer traffic on the TSUBAME2.0 thin node *);
    link_latency = 18e-6;
    host_aggregate_bandwidth = 12.0 *. gb;
  }

let cpu_total_cores c = c.sockets * c.cores_per_socket
let cpu_total_threads c = cpu_total_cores c * c.threads_per_core

let pp_gpu ppf g =
  Format.fprintf ppf "%s: %d SMs, %d cores @@ %.2fGHz, %.0f DP GFLOP/s, %.0fGB/s, %s"
    g.gpu_name g.sm_count g.cores g.clock_ghz g.dp_gflops
    (g.mem_bandwidth /. gb)
    (Mgacc_util.Bytesize.to_string g.mem_capacity)

let pp_cpu ppf c =
  Format.fprintf ppf "%s: %d cores (%d threads) @@ %.2fGHz, %.0f DP GFLOP/s, %.0fGB/s"
    c.cpu_name (cpu_total_cores c) (cpu_total_threads c) c.cpu_clock_ghz c.cpu_dp_gflops
    (c.cpu_mem_bandwidth /. gb)
