type t = { id : int; spec : Spec.gpu; memory : Memory.t; compute : Mgacc_sim.Timeline.t }

let create ~id spec =
  {
    id;
    spec;
    memory = Memory.create ~device_id:id ~capacity:spec.Spec.mem_capacity;
    compute = Mgacc_sim.Timeline.create (Printf.sprintf "gpu%d" id);
  }

let launch t ~ready ~threads cost =
  let duration = Kernel_cost.duration t.spec ~threads cost in
  Mgacc_sim.Timeline.reserve t.compute ~ready ~duration

let reset t =
  Mgacc_sim.Timeline.reset t.compute;
  Memory.reset_peaks t.memory
