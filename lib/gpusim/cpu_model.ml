let random_miss_ratio = 0.5
let hyperthread_boost = 1.2

let effective_parallelism (c : Spec.cpu) ~threads =
  let cores = Spec.cpu_total_cores c in
  let hw_threads = Spec.cpu_total_threads c in
  let threads = max 1 (min threads hw_threads) in
  if threads <= cores then float_of_int threads
  else
    (* Hyper-threads add a little throughput on top of the full cores. *)
    let extra = float_of_int (threads - cores) /. float_of_int cores in
    float_of_int cores *. (1.0 +. ((hyperthread_boost -. 1.0) *. extra))

let time_with_parallelism (c : Spec.cpu) ~parallelism (cost : Cost.t) =
  let frac = parallelism /. float_of_int (Spec.cpu_total_cores c) in
  let dp = c.cpu_dp_gflops *. 1e9 *. c.cpu_compute_efficiency *. frac in
  (* Integer ops: ~2 ALU ops per core per cycle. *)
  let int_throughput = parallelism *. c.cpu_clock_ghz *. 1e9 *. 2.0 *. c.cpu_compute_efficiency in
  let compute =
    (float_of_int cost.Cost.flops /. dp) +. (float_of_int cost.Cost.int_ops /. int_throughput)
  in
  (* Memory bandwidth is a node resource: scales only up to saturation. *)
  let bw = c.cpu_mem_bandwidth *. Float.min 1.0 (parallelism /. 4.0) in
  let effective_bytes =
    float_of_int cost.Cost.coalesced_bytes
    (* Broadcast data stays resident in cache; charge L1-ish bandwidth. *)
    +. (float_of_int cost.Cost.broadcast_bytes /. 16.0)
    +. (float_of_int (cost.Cost.random_accesses * c.cacheline_bytes) *. random_miss_ratio)
    +. (float_of_int cost.Cost.random_bytes *. (1.0 -. random_miss_ratio))
  in
  let memory = effective_bytes /. bw in
  Float.max compute memory

let duration c ~threads cost =
  let parallelism = effective_parallelism c ~threads *. c.Spec.parallel_efficiency in
  time_with_parallelism c ~parallelism cost

let serial_duration c cost = time_with_parallelism c ~parallelism:1.0 cost
