type context = { m : Machine.t; mutable dev : int; mutable clock : float }

let init m = { m; dev = 0; clock = 0.0 }
let machine c = c.m

let set_device c i =
  if i < 0 || i >= Machine.num_gpus c.m then invalid_arg "Cuda.set_device";
  c.dev <- i

let current_device c = c.dev
let now c = c.clock

let malloc_floats c n = Memory.alloc_float (Machine.device c.m c.dev).Device.memory `User n
let malloc_ints c n = Memory.alloc_int (Machine.device c.m c.dev).Device.memory `User n
let free c buf = Memory.free (Machine.device c.m buf.Memory.device_id).Device.memory buf

let copy_h2d c ~bytes ~label =
  c.clock <- Machine.transfer_sync c.m ~ready:c.clock (Fabric.H2d c.dev) ~bytes ~label

let copy_d2h c ~bytes ~label =
  c.clock <- Machine.transfer_sync c.m ~ready:c.clock (Fabric.D2h c.dev) ~bytes ~label

let charge_h2d c ~bytes ~label = copy_h2d c ~bytes ~label
let charge_d2h c ~bytes ~label = copy_d2h c ~bytes ~label

let memcpy_h2d_floats c ~dst host =
  let d = Memory.float_data dst in
  if Array.length d <> Array.length host then invalid_arg "Cuda.memcpy_h2d_floats: length";
  Array.blit host 0 d 0 (Array.length host);
  copy_h2d c ~bytes:(8 * Array.length host) ~label:"h2d"

let memcpy_h2d_ints c ~dst host =
  let d = Memory.int_data dst in
  if Array.length d <> Array.length host then invalid_arg "Cuda.memcpy_h2d_ints: length";
  Array.blit host 0 d 0 (Array.length host);
  copy_h2d c ~bytes:(4 * Array.length host) ~label:"h2d"

let memcpy_d2h_floats c ~src host =
  let d = Memory.float_data src in
  if Array.length d <> Array.length host then invalid_arg "Cuda.memcpy_d2h_floats: length";
  Array.blit d 0 host 0 (Array.length d);
  copy_d2h c ~bytes:(8 * Array.length d) ~label:"d2h"

let memcpy_d2h_ints c ~src host =
  let d = Memory.int_data src in
  if Array.length d <> Array.length host then invalid_arg "Cuda.memcpy_d2h_ints: length";
  Array.blit d 0 host 0 (Array.length d);
  copy_d2h c ~bytes:(4 * Array.length d) ~label:"d2h"

let memcpy_p2p_floats c ~dst ~src =
  let s = Memory.float_data src and d = Memory.float_data dst in
  if Array.length s <> Array.length d then invalid_arg "Cuda.memcpy_p2p_floats: length";
  Array.blit s 0 d 0 (Array.length s);
  let src_dev = src.Memory.device_id and dst_dev = dst.Memory.device_id in
  if src_dev <> dst_dev then
    c.clock <-
      Machine.transfer_sync c.m ~ready:c.clock
        (Fabric.P2p (src_dev, dst_dev))
        ~bytes:(8 * Array.length s) ~label:"p2p"

let launch_async c ~threads ~label body =
  let cost = body () in
  let _, finish = Machine.launch_kernel c.m ~dev:c.dev ~ready:c.clock ~threads ~label cost in
  finish

let launch c ~threads ~label body = c.clock <- launch_async c ~threads ~label body

let wait_until c t = if t > c.clock then c.clock <- t
let elapsed = now
