let latency_hiding_factor = 8.0

let occupancy (g : Spec.gpu) ~threads =
  if threads <= 0 then 1.0
  else
    let full = float_of_int g.cores *. latency_hiding_factor in
    Float.min 1.0 (Float.max (float_of_int threads /. full) 1e-3)

let compute_time (g : Spec.gpu) (c : Cost.t) =
  let dp_throughput = g.dp_gflops *. 1e9 *. g.compute_efficiency in
  (* One integer ALU op per core per cycle. *)
  let int_throughput = float_of_int g.cores *. g.clock_ghz *. 1e9 *. g.compute_efficiency in
  (float_of_int c.flops /. dp_throughput) +. (float_of_int c.int_ops /. int_throughput)

let warp_size = 32

let memory_time (g : Spec.gpu) (c : Cost.t) =
  let bw = g.mem_bandwidth *. g.bandwidth_efficiency in
  (* Broadcast reads: one transaction serves a whole warp. Gathers and
     scatters cost a full transaction on an L2 miss and only their payload
     on a hit. *)
  let random_bytes =
    (g.l2_hit_ratio *. float_of_int c.random_bytes)
    +. ((1.0 -. g.l2_hit_ratio) *. float_of_int (c.random_accesses * g.transaction_bytes))
  in
  let effective_bytes =
    float_of_int (c.coalesced_bytes + (c.broadcast_bytes / warp_size)) +. random_bytes
  in
  effective_bytes /. bw

let duration g ~threads c =
  let occ = occupancy g ~threads in
  let work = Float.max (compute_time g c) (memory_time g c) /. occ in
  g.kernel_launch_overhead +. work
