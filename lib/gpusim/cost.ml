type t = {
  mutable flops : int;
  mutable int_ops : int;
  mutable coalesced_bytes : int;
  mutable broadcast_bytes : int;
  mutable random_accesses : int;
  mutable random_bytes : int;
}

let zero () =
  {
    flops = 0;
    int_ops = 0;
    coalesced_bytes = 0;
    broadcast_bytes = 0;
    random_accesses = 0;
    random_bytes = 0;
  }

let add acc d =
  acc.flops <- acc.flops + d.flops;
  acc.int_ops <- acc.int_ops + d.int_ops;
  acc.coalesced_bytes <- acc.coalesced_bytes + d.coalesced_bytes;
  acc.broadcast_bytes <- acc.broadcast_bytes + d.broadcast_bytes;
  acc.random_accesses <- acc.random_accesses + d.random_accesses;
  acc.random_bytes <- acc.random_bytes + d.random_bytes

let scale t k =
  {
    flops = t.flops * k;
    int_ops = t.int_ops * k;
    coalesced_bytes = t.coalesced_bytes * k;
    broadcast_bytes = t.broadcast_bytes * k;
    random_accesses = t.random_accesses * k;
    random_bytes = t.random_bytes * k;
  }

let total_bytes t = t.coalesced_bytes + t.broadcast_bytes + t.random_bytes

let is_zero t =
  t.flops = 0 && t.int_ops = 0 && t.coalesced_bytes = 0 && t.broadcast_bytes = 0
  && t.random_accesses = 0 && t.random_bytes = 0

let pp ppf t =
  Format.fprintf ppf "flops=%d int=%d coalesced=%dB broadcast=%dB random=%d(%dB)" t.flops t.int_ops
    t.coalesced_bytes t.broadcast_bytes t.random_accesses t.random_bytes
