(** One simulated GPU: identity, memory, and a serial compute engine.

    Kernels submitted to the same device serialize on its compute timeline
    (one kernel at a time, as on the paper's Fermi GPUs); different devices
    run concurrently. *)

type t = private {
  id : int;
  spec : Spec.gpu;
  memory : Memory.t;
  compute : Mgacc_sim.Timeline.t;
}

val create : id:int -> Spec.gpu -> t

val launch :
  t -> ready:float -> threads:int -> Cost.t -> float * float
(** Reserve the compute engine for a kernel whose duration comes from
    {!Kernel_cost.duration}; returns [(start, finish)]. *)

val reset : t -> unit
(** Clear the compute timeline and memory peaks (not allocations). *)
