(** Multicore CPU timing model for the OpenMP baseline.

    The same mini-C program that the compiler offloads is executed
    functionally on the host; this model converts the dynamic operation
    counts into an OpenMP wall-clock estimate: roofline over the node's
    arithmetic throughput and memory bandwidth, derated by the OpenMP
    parallel efficiency, with random accesses charged a partial cache-miss
    cost. *)

val duration : Spec.cpu -> threads:int -> Cost.t -> float
(** Simulated wall-clock seconds of the parallel loop with [threads] OpenMP
    threads. Thread counts beyond the hardware thread count are clamped;
    hyper-threads contribute a small factor, not full cores. *)

val serial_duration : Spec.cpu -> Cost.t -> float
(** Single-threaded execution (used for the sequential parts of the
    baseline applications). *)

val random_miss_ratio : float
(** Fraction of random accesses assumed to miss in the last-level cache. *)
