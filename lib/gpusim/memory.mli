(** Simulated device memory: real storage plus capacity accounting.

    Buffers carry actual element storage (so kernels compute real results)
    and an accounted byte size (4-byte ints, 8-byte doubles, raw bytes for
    system structures). Usage is tracked separately for [`User] data (the
    program's arrays) and [`System] data (dirty bits, write-miss buffers,
    partial-reduction buffers) — the split plotted in the paper's Fig. 9. *)

type klass = [ `User | `System ]

type payload =
  | Float_data of float array  (** C double, 8 bytes/element *)
  | Int_data of int array  (** C int, 4 bytes/element *)
  | Raw_bytes of int  (** sized but contentless system storage *)

type buf = private {
  buf_id : int;
  device_id : int;
  klass : klass;
  payload : payload;
  size_bytes : int;
  mutable freed : bool;
}

type t
(** One device's memory. *)

exception Out_of_device_memory of { device_id : int; requested : int; available : int }

val create : device_id:int -> capacity:int -> t
val capacity : t -> int
val used : t -> int
val used_class : t -> klass -> int
val peak_class : t -> klass -> int

val alloc_float : t -> klass -> int -> buf
(** [alloc_float m k n] allocates [n] doubles, zero-initialized. Raises
    [Out_of_device_memory] when the capacity would be exceeded. *)

val alloc_int : t -> klass -> int -> buf
val alloc_raw : t -> klass -> int -> buf
val free : t -> buf -> unit
(** Double frees are ignored. *)

val float_data : buf -> float array
(** The backing store. Raises [Invalid_argument] on a non-float or freed
    buffer. *)

val int_data : buf -> int array
val reset_peaks : t -> unit
