type klass = [ `User | `System ]

type payload = Float_data of float array | Int_data of int array | Raw_bytes of int

type buf = {
  buf_id : int;
  device_id : int;
  klass : klass;
  payload : payload;
  size_bytes : int;
  mutable freed : bool;
}

type t = {
  dev : int;
  cap : int;
  mutable next_id : int;
  mutable used_user : int;
  mutable used_system : int;
  mutable peak_user : int;
  mutable peak_system : int;
}

exception Out_of_device_memory of { device_id : int; requested : int; available : int }

let create ~device_id ~capacity =
  {
    dev = device_id;
    cap = capacity;
    next_id = 0;
    used_user = 0;
    used_system = 0;
    peak_user = 0;
    peak_system = 0;
  }

let capacity t = t.cap
let used t = t.used_user + t.used_system
let used_class t = function `User -> t.used_user | `System -> t.used_system
let peak_class t = function `User -> t.peak_user | `System -> t.peak_system

let account t klass bytes =
  let avail = t.cap - used t in
  if bytes > avail then raise (Out_of_device_memory { device_id = t.dev; requested = bytes; available = avail });
  (match klass with
  | `User ->
      t.used_user <- t.used_user + bytes;
      t.peak_user <- max t.peak_user t.used_user
  | `System ->
      t.used_system <- t.used_system + bytes;
      t.peak_system <- max t.peak_system t.used_system)

let mk t klass payload size_bytes =
  account t klass size_bytes;
  let id = t.next_id in
  t.next_id <- id + 1;
  { buf_id = id; device_id = t.dev; klass; payload; size_bytes; freed = false }

let alloc_float t klass n =
  if n < 0 then invalid_arg "Memory.alloc_float";
  mk t klass (Float_data (Array.make (max n 0) 0.0)) (8 * n)

let alloc_int t klass n =
  if n < 0 then invalid_arg "Memory.alloc_int";
  mk t klass (Int_data (Array.make (max n 0) 0)) (4 * n)

let alloc_raw t klass bytes =
  if bytes < 0 then invalid_arg "Memory.alloc_raw";
  mk t klass (Raw_bytes bytes) bytes

let free t buf =
  if not buf.freed then begin
    buf.freed <- true;
    match buf.klass with
    | `User -> t.used_user <- t.used_user - buf.size_bytes
    | `System -> t.used_system <- t.used_system - buf.size_bytes
  end

let float_data buf =
  if buf.freed then invalid_arg "Memory.float_data: use after free";
  match buf.payload with
  | Float_data a -> a
  | Int_data _ | Raw_bytes _ -> invalid_arg "Memory.float_data: not a float buffer"

let int_data buf =
  if buf.freed then invalid_arg "Memory.int_data: use after free";
  match buf.payload with
  | Int_data a -> a
  | Float_data _ | Raw_bytes _ -> invalid_arg "Memory.int_data: not an int buffer"

let reset_peaks t =
  t.peak_user <- t.used_user;
  t.peak_system <- t.used_system
