open Mgacc

type t = { name : string; source : string; result_arrays : string list }

let parse app = parse_string ~name:(app.name ^ ".c") app.source

let sequential app = run_sequential (parse app)

let openmp ?threads ~machine app =
  run_openmp ?threads ~machine (parse app)

let pgi ~machine app =
  let options =
    {
      Kernel_plan.enable_distribution = false;
      enable_layout_transform = false;
      enable_miss_check_elim = false;
      enable_fusion = false;
      enable_decomp2d = false;
    }
  in
  let config = Rt_config.make ~num_gpus:1 ~translator:options machine in
  run_acc ~config ~variant:"pgi(1)" ~machine (parse app)

let proposal ?chunk_bytes ?two_level_dirty ?overlap ?schedule ?coherence ?collective ?fuse
    ?(options = Kernel_plan.default_options) ~num_gpus ~machine app =
  let options =
    match fuse with Some b -> { options with Kernel_plan.enable_fusion = b } | None -> options
  in
  let config =
    Rt_config.make ~num_gpus ?chunk_bytes ?two_level_dirty ?overlap ?schedule ?coherence
      ?collective ~translator:options machine
  in
  run_acc ~config
    ~variant:(Printf.sprintf "proposal(%d)" num_gpus)
    ~machine (parse app)

let compare_floats name expected got =
  let n = Array.length expected in
  if Array.length got <> n then Error (Printf.sprintf "%s: length %d vs %d" name (Array.length got) n)
  else begin
    let bad = ref None in
    for i = 0 to n - 1 do
      if !bad = None then begin
        let e = expected.(i) and g = got.(i) in
        let tol = 1e-6 *. Float.max 1.0 (Float.abs e) in
        if Float.abs (e -. g) > tol then bad := Some (i, e, g)
      end
    done;
    match !bad with
    | None -> Ok ()
    | Some (i, e, g) -> Error (Printf.sprintf "%s[%d]: expected %.12g, got %.12g" name i e g)
  end

let compare_ints name expected got =
  let n = Array.length expected in
  if Array.length got <> n then Error (Printf.sprintf "%s: length %d vs %d" name (Array.length got) n)
  else begin
    let bad = ref None in
    for i = 0 to n - 1 do
      if !bad = None && expected.(i) <> got.(i) then bad := Some i
    done;
    match !bad with
    | None -> Ok ()
    | Some i -> Error (Printf.sprintf "%s[%d]: expected %d, got %d" name i expected.(i) got.(i))
  end

let verify app ~against env =
  List.fold_left
    (fun acc name ->
      match acc with
      | Error _ -> acc
      | Ok () -> (
          let view = Host_interp.find_array against name in
          match view.View.elem with
          | Ast.Edouble ->
              compare_floats name (float_results against name) (float_results env name)
          | Ast.Eint -> compare_ints name (int_results against name) (int_results env name)))
    (Ok ()) app.result_arrays

let check_exn app ~against env =
  match verify app ~against env with Ok () -> () | Error msg -> failwith (app.name ^ ": " ^ msg)
