open Mgacc

type params = { points : int; features : int; clusters : int; iterations : int; seed : int }

let default_params = { points = 20000; features = 16; clusters = 5; iterations = 10; seed = 11 }
let paper_params = { points = 494020; features = 34; clusters = 5; iterations = 37; seed = 11 }

let source p =
  Printf.sprintf
    {|
void main() {
  int n = %d;
  int f = %d;
  int k = %d;
  int iters = %d;
  int seed = %d;
  double x[n*f];
  int membership[n];
  double centers[k*f];
  double newcenters[k*f];
  int counts[k];
  int i;
  int j;
  for (i = 0; i < n; i++) {
    %s
    int c = seed %% k;
    for (j = 0; j < f; j++) {
      %s
      x[i*f + j] = 10.0 * c + (seed %% 1000) / 100.0;
    }
  }
  for (i = 0; i < n; i++) { membership[i] = -1; }
  for (i = 0; i < k*f; i++) { centers[i] = x[i]; }
  #pragma acc data copyin(x[0:n*f]) copy(membership[0:n]) copy(centers[0:k*f])
  {
    int it;
    for (it = 0; it < iters; it++) {
      int delta = 0;
      #pragma acc parallel loop reduction(+: delta) localaccess(x: stride(f), membership: stride(1))
      for (i = 0; i < n; i++) {
        double best = 1.0e30;
        int bc = 0;
        int c;
        int j2;
        for (c = 0; c < k; c++) {
          double dist = 0.0;
          for (j2 = 0; j2 < f; j2++) {
            double d = x[i*f + j2] - centers[c*f + j2];
            dist = dist + d*d;
          }
          if (dist < best) { best = dist; bc = c; }
        }
        if (bc != membership[i]) { delta = delta + 1; membership[i] = bc; }
      }
      int z;
      for (z = 0; z < k*f; z++) { newcenters[z] = 0.0; }
      for (z = 0; z < k; z++) { counts[z] = 0; }
      #pragma acc update device(newcenters[0:k*f], counts[0:k])
      ;
      #pragma acc parallel loop localaccess(x: stride(f), membership: stride(1))
      for (i = 0; i < n; i++) {
        int c = membership[i];
        int j3;
        #pragma acc reductiontoarray(+: counts)
        counts[c] = counts[c] + 1;
        for (j3 = 0; j3 < f; j3++) {
          #pragma acc reductiontoarray(+: newcenters)
          newcenters[c*f + j3] = newcenters[c*f + j3] + x[i*f + j3];
        }
      }
      #pragma acc update host(newcenters[0:k*f], counts[0:k])
      ;
      for (z = 0; z < k; z++) {
        if (counts[z] > 0) {
          int j4;
          for (j4 = 0; j4 < f; j4++) {
            centers[z*f + j4] = newcenters[z*f + j4] / counts[z];
          }
        }
      }
      #pragma acc update device(centers[0:k*f])
      ;
    }
  }
}
|}
    p.points p.features p.clusters p.iterations p.seed Workloads.lcg_c_snippet
    Workloads.lcg_c_snippet

let app p =
  {
    App_common.name = "kmeans";
    source = source p;
    result_arrays = [ "membership"; "centers" ];
  }

(* ------------------------------------------------------------------ *)
(* Hand-written CUDA baseline (single GPU).                            *)
(* ------------------------------------------------------------------ *)

let run_cuda ~machine p =
  let n = p.points and f = p.features and k = p.clusters in
  let x = Workloads.kmeans_points ~seed:p.seed ~points:n ~features:f ~clusters:k in
  let ctx = Cuda.init machine in
  let profiler = Mgacc_runtime.Profiler.create () in
  (* An expert transposes the feature matrix on the host so device reads
     coalesce — the optimization the localaccess layout transform mimics. *)
  let xt = Array.make (n * f) 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to f - 1 do
      xt.((j * n) + i) <- x.((i * f) + j)
    done
  done;
  let d_x = Cuda.malloc_floats ctx (n * f) in
  let d_membership = Cuda.malloc_ints ctx n in
  let d_centers = Cuda.malloc_floats ctx (k * f) in
  let t0 = Cuda.now ctx in
  Cuda.memcpy_h2d_floats ctx ~dst:d_x xt;
  Cuda.memcpy_h2d_ints ctx ~dst:d_membership (Array.make n (-1));
  Cuda.memcpy_h2d_floats ctx ~dst:d_centers (Array.sub x 0 (k * f));
  let t1 = Cuda.now ctx in
  Mgacc_runtime.Profiler.add_cpu_gpu profiler ~seconds:(t1 -. t0)
    ~bytes:((n * f * 8) + (n * 4) + (k * f * 8));
  Mgacc_runtime.Profiler.incr_loops profiler;
  let newcenters = Array.make (k * f) 0.0 in
  let counts = Array.make k 0 in
  (* Persistent host mirror of the centers (device copy stays in sync). *)
  let centers = Array.sub x 0 (k * f) in
  for _it = 1 to p.iterations do
    let t_start = Cuda.now ctx in
    (* Assignment kernel. *)
    Cuda.launch ctx ~threads:n ~label:"kmeans-assign" (fun () ->
        let cost = Cost.zero () in
        let xd = Memory.float_data d_x in
        let md = Memory.int_data d_membership in
        let cd = Memory.float_data d_centers in
        for i = 0 to n - 1 do
          let best = ref 1.0e30 and bc = ref 0 in
          for c = 0 to k - 1 do
            let dist = ref 0.0 in
            for j = 0 to f - 1 do
              let d = xd.((j * n) + i) -. cd.((c * f) + j) in
              dist := !dist +. (d *. d)
            done;
            cost.Cost.coalesced_bytes <- cost.Cost.coalesced_bytes + (8 * f);
            cost.Cost.broadcast_bytes <- cost.Cost.broadcast_bytes + (8 * f);
            cost.Cost.flops <- cost.Cost.flops + (3 * f) + 1;
            if !dist < !best then begin
              best := !dist;
              bc := c
            end
          done;
          cost.Cost.int_ops <- cost.Cost.int_ops + (4 * k);
          cost.Cost.coalesced_bytes <- cost.Cost.coalesced_bytes + 8 (* membership r/w *);
          md.(i) <- !bc
        done;
        cost);
    (* Accumulation kernel: atomics into global sums. *)
    Cuda.launch ctx ~threads:n ~label:"kmeans-accum" (fun () ->
        let cost = Cost.zero () in
        let xd = Memory.float_data d_x in
        let md = Memory.int_data d_membership in
        Array.fill newcenters 0 (k * f) 0.0;
        Array.fill counts 0 k 0;
        for i = 0 to n - 1 do
          let c = md.(i) in
          counts.(c) <- counts.(c) + 1;
          for j = 0 to f - 1 do
            newcenters.((c * f) + j) <- newcenters.((c * f) + j) +. xd.((j * n) + i)
          done;
          cost.Cost.coalesced_bytes <- cost.Cost.coalesced_bytes + 4 + (8 * f);
          cost.Cost.flops <- cost.Cost.flops + f;
          (* Hierarchical shared-memory reduction: roughly one extra
             combine per element. *)
          cost.Cost.random_accesses <- cost.Cost.random_accesses + 1 + f;
          cost.Cost.random_bytes <- cost.Cost.random_bytes + 4 + (8 * f)
        done;
        cost);
    let t_kernels_done = Cuda.now ctx in
    Mgacc_runtime.Profiler.add_kernel profiler ~seconds:(t_kernels_done -. t_start);
    Mgacc_runtime.Profiler.incr_kernel_launches profiler;
    Mgacc_runtime.Profiler.incr_kernel_launches profiler;
    (* Host pulls the sums, recomputes centers, pushes them back. The sums
       and counts conceptually live on the device; account their D2H. *)
    Cuda.charge_d2h ctx ~bytes:((k * f * 8) + (k * 4)) ~label:"kmeans-sums";
    for c = 0 to k - 1 do
      if counts.(c) > 0 then
        for j = 0 to f - 1 do
          centers.((c * f) + j) <- newcenters.((c * f) + j) /. float_of_int counts.(c)
        done
    done;
    Cuda.memcpy_h2d_floats ctx ~dst:d_centers centers;
    let t_update_done = Cuda.now ctx in
    Mgacc_runtime.Profiler.add_cpu_gpu profiler
      ~seconds:(t_update_done -. t_kernels_done)
      ~bytes:((k * f * 8) + (k * 4) + (k * f * 8))
  done;
  let membership = Array.make n 0 in
  let td = Cuda.now ctx in
  Cuda.memcpy_d2h_ints ctx ~src:d_membership membership;
  let te = Cuda.now ctx in
  Mgacc_runtime.Profiler.add_cpu_gpu profiler ~seconds:(te -. td) ~bytes:(n * 4);
  Mgacc_runtime.Profiler.record_memory_peaks profiler machine ~num_gpus:1;
  ( centers,
    membership,
    Mgacc_runtime.Report.of_profiler profiler ~machine:machine.Machine.name ~variant:"cuda(1)"
      ~num_gpus:1 )
