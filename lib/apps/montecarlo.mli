(** Monte Carlo option pricing (the monte-carlo member of the paper's
    motivating application classes; not part of the paper's benchmark
    trio).

    Embarrassingly parallel: every path runs an independent per-thread LCG
    and geometric-Brownian walk, so there are no input arrays, no
    inter-GPU data dependencies, and scaling is bounded only by the
    reductions — a scalar [+] for the price estimate and a
    [reductiontoarray] histogram of payoffs. *)

type params = {
  paths : int;
  steps : int;
  bins : int;  (** payoff histogram size *)
  seed : int;
}

val default_params : params
val app : params -> App_common.t
val source : params -> string
