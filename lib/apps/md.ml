open Mgacc

type params = { atoms : int; max_neighbors : int; seed : int }

let default_params = { atoms = 8192; max_neighbors = 32; seed = 42 }
let paper_params = { atoms = 73728; max_neighbors = 128; seed = 42 }

let source p =
  Printf.sprintf
    {|
void main() {
  int n = %d;
  int maxn = %d;
  int seed = %d;
  double pos[3*n];
  int nl[n*maxn];
  double force[3*n];
  int i;
  int k;
  for (i = 0; i < 3*n; i++) {
    %s
    pos[i] = 100.0 * seed / 2147483648.0;
  }
  for (i = 0; i < n; i++) {
    for (k = 0; k < maxn; k++) {
      %s
      int r = seed %% 4;
      %s
      int j;
      if (r == 0) { j = seed %% n; } else { j = (i + 1 + seed %% 64) %% n; }
      nl[i*maxn + k] = j;
    }
  }
  double cutoff2 = 16.0;
  double lj1 = 1.5;
  #pragma acc data copyin(pos[0:3*n], nl[0:n*maxn]) copyout(force[0:3*n])
  {
    #pragma acc parallel loop localaccess(nl: stride(maxn), force: stride(3))
    for (i = 0; i < n; i++) {
      double px = pos[3*i];
      double py = pos[3*i + 1];
      double pz = pos[3*i + 2];
      double fx = 0.0;
      double fy = 0.0;
      double fz = 0.0;
      int k2;
      for (k2 = 0; k2 < maxn; k2++) {
        int j = nl[i*maxn + k2];
        double dx = px - pos[3*j];
        double dy = py - pos[3*j + 1];
        double dz = pz - pos[3*j + 2];
        double r2 = dx*dx + dy*dy + dz*dz;
        if (r2 < cutoff2 && r2 > 0.000001) {
          double r2inv = 1.0 / r2;
          double r6inv = r2inv * r2inv * r2inv;
          double fc = r6inv * (r6inv - 0.5) * r2inv * lj1;
          fx = fx + dx * fc;
          fy = fy + dy * fc;
          fz = fz + dz * fc;
        }
      }
      force[3*i] = fx;
      force[3*i + 1] = fy;
      force[3*i + 2] = fz;
    }
  }
}
|}
    p.atoms p.max_neighbors p.seed Workloads.lcg_c_snippet Workloads.lcg_c_snippet
    Workloads.lcg_c_snippet

let app p = { App_common.name = "md"; source = source p; result_arrays = [ "force" ] }

(* ------------------------------------------------------------------ *)
(* Hand-written CUDA baseline (single GPU).                            *)
(* ------------------------------------------------------------------ *)

let compute_forces_range ~(cost : Cost.t) ~pos ~nl ~force ~lo ~hi ~max_neighbors =
  let cutoff2 = 16.0 and lj1 = 1.5 in
  for i = lo to hi - 1 do
    (* SoA layout + transposed neighbor list: an expert CUDA programmer's
       accesses to pos[3i..] and the neighbor list coalesce. *)
    let px = pos.(3 * i) and py = pos.((3 * i) + 1) and pz = pos.((3 * i) + 2) in
    cost.Cost.coalesced_bytes <- cost.Cost.coalesced_bytes + 24;
    let fx = ref 0.0 and fy = ref 0.0 and fz = ref 0.0 in
    for k = 0 to max_neighbors - 1 do
      let j = nl.((i * max_neighbors) + k) in
      cost.Cost.coalesced_bytes <- cost.Cost.coalesced_bytes + 4;
      let dx = px -. pos.(3 * j) in
      let dy = py -. pos.((3 * j) + 1) in
      let dz = pz -. pos.((3 * j) + 2) in
      cost.Cost.random_accesses <- cost.Cost.random_accesses + 3;
      cost.Cost.random_bytes <- cost.Cost.random_bytes + 24;
      let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
      (* 3 subs + 5 mul/add for r2 + compare. *)
      cost.Cost.flops <- cost.Cost.flops + 9;
      cost.Cost.int_ops <- cost.Cost.int_ops + 4 (* index math *);
      if r2 < cutoff2 && r2 > 1e-6 then begin
        let r2inv = 1.0 /. r2 in
        let r6inv = r2inv *. r2inv *. r2inv in
        let fc = r6inv *. (r6inv -. 0.5) *. r2inv *. lj1 in
        fx := !fx +. (dx *. fc);
        fy := !fy +. (dy *. fc);
        fz := !fz +. (dz *. fc);
        cost.Cost.flops <- cost.Cost.flops + 14
      end
    done;
    force.(3 * i) <- !fx;
    force.((3 * i) + 1) <- !fy;
    force.((3 * i) + 2) <- !fz;
    cost.Cost.coalesced_bytes <- cost.Cost.coalesced_bytes + 24
  done

(* The mini-C source draws position values and then neighbor values from
   one LCG stream; reproduce that exact order. *)
let inputs p =
  let pos = Workloads.md_positions ~seed:p.seed ~atoms:p.atoms in
  let nl_seed =
    (* Position generation consumed 3*atoms draws; continue the stream. *)
    let s = ref p.seed in
    for _ = 1 to 3 * p.atoms do
      s := Workloads.lcg_next !s
    done;
    !s
  in
  let nl = Workloads.md_neighbors ~seed:nl_seed ~atoms:p.atoms ~max_neighbors:p.max_neighbors in
  (pos, nl)

let compute_forces ~cost ~pos ~nl ~force ~atoms ~max_neighbors =
  compute_forces_range ~cost ~pos ~nl ~force ~lo:0 ~hi:atoms ~max_neighbors

let cuda_reference_forces p =
  let pos, nl = inputs p in
  let force = Array.make (3 * p.atoms) 0.0 in
  compute_forces ~cost:(Cost.zero ()) ~pos ~nl ~force ~atoms:p.atoms
    ~max_neighbors:p.max_neighbors;
  force

let run_cuda_multi ~machine ~gpus p =
  if gpus < 1 || gpus > Machine.num_gpus machine then invalid_arg "Md.run_cuda_multi";
  let pos, nl = inputs p in
  let n = p.atoms and maxn = p.max_neighbors in
  let profiler = Mgacc_runtime.Profiler.create () in
  let blocks =
    Array.init gpus (fun g ->
        let lo = g * n / gpus and hi = (g + 1) * n / gpus in
        (lo, hi))
  in
  (* Allocate per GPU: full positions (gathers are unstructured), the
     block's neighbor rows and force rows. *)
  let mem g = (Machine.device machine g).Mgacc_gpusim.Device.memory in
  let d_pos = Array.init gpus (fun g -> Memory.alloc_float (mem g) `User (3 * n)) in
  let d_nl =
    Array.init gpus (fun g ->
        let lo, hi = blocks.(g) in
        Memory.alloc_int (mem g) `User ((hi - lo) * maxn))
  in
  let d_force =
    Array.init gpus (fun g ->
        let lo, hi = blocks.(g) in
        Memory.alloc_float (mem g) `User (3 * (hi - lo)))
  in
  (* Concurrent loads on all links (the expert uses async copies). *)
  let reqs =
    List.concat
      (List.init gpus (fun g ->
           let lo, hi = blocks.(g) in
           [
             { Mgacc_gpusim.Fabric.direction = Mgacc_gpusim.Fabric.H2d g; bytes = 3 * n * 8; ready = 0.0; tag = "pos" };
             { Mgacc_gpusim.Fabric.direction = Mgacc_gpusim.Fabric.H2d g; bytes = (hi - lo) * maxn * 4; ready = 0.0; tag = "nl" };
           ]))
  in
  let completions = Machine.run_transfers machine ~label:"md-multi-load" reqs in
  let t_loaded =
    List.fold_left
      (fun acc (c : Mgacc_gpusim.Fabric.completion) -> Float.max acc c.Mgacc_gpusim.Fabric.finish)
      0.0 completions
  in
  Mgacc_runtime.Profiler.add_cpu_gpu profiler ~seconds:t_loaded
    ~bytes:(List.fold_left (fun a (r : Mgacc_gpusim.Fabric.request) -> a + r.Mgacc_gpusim.Fabric.bytes) 0 reqs);
  Mgacc_runtime.Profiler.incr_loops profiler;
  (* Functional data movement + per-GPU kernels. *)
  let force = Array.make (3 * n) 0.0 in
  let t_kernels =
    Array.to_list
      (Array.init gpus (fun g ->
           let lo, hi = blocks.(g) in
           Array.blit pos 0 (Memory.float_data d_pos.(g)) 0 (3 * n);
           Array.blit nl (lo * maxn) (Memory.int_data d_nl.(g)) 0 ((hi - lo) * maxn);
           let cost = Cost.zero () in
           (* Compute the block into a window of the global force array,
              then copy into the device block buffer. *)
           let local = Array.make (3 * n) 0.0 in
           compute_forces_range ~cost ~pos ~nl ~force:local ~lo ~hi ~max_neighbors:maxn;
           Array.blit local (3 * lo) (Memory.float_data d_force.(g)) 0 (3 * (hi - lo));
           Array.blit local (3 * lo) force (3 * lo) (3 * (hi - lo));
           Mgacc_runtime.Profiler.incr_kernel_launches profiler;
           let _, finish =
             Machine.launch_kernel machine ~dev:g ~ready:t_loaded ~threads:(hi - lo)
               ~label:"md-multi" cost
           in
           finish))
  in
  let t_done = List.fold_left Float.max t_loaded t_kernels in
  Mgacc_runtime.Profiler.add_kernel profiler ~seconds:(t_done -. t_loaded);
  (* Gather force blocks concurrently. *)
  let reqs_out =
    List.init gpus (fun g ->
        let lo, hi = blocks.(g) in
        {
          Mgacc_gpusim.Fabric.direction = Mgacc_gpusim.Fabric.D2h g;
          bytes = 3 * (hi - lo) * 8;
          ready = t_done;
          tag = "force";
        })
  in
  let completions = Machine.run_transfers machine ~label:"md-multi-out" reqs_out in
  let t_out =
    List.fold_left
      (fun acc (c : Mgacc_gpusim.Fabric.completion) -> Float.max acc c.Mgacc_gpusim.Fabric.finish)
      t_done completions
  in
  Mgacc_runtime.Profiler.add_cpu_gpu profiler ~seconds:(t_out -. t_done) ~bytes:(3 * n * 8);
  Mgacc_runtime.Profiler.record_memory_peaks profiler machine ~num_gpus:gpus;
  Array.iteri (fun g buf -> Memory.free (mem g) buf) d_pos;
  Array.iteri (fun g buf -> Memory.free (mem g) buf) d_nl;
  Array.iteri (fun g buf -> Memory.free (mem g) buf) d_force;
  ( force,
    Mgacc_runtime.Report.of_profiler profiler ~machine:machine.Machine.name
      ~variant:(Printf.sprintf "cuda-multi(%d)" gpus)
      ~num_gpus:gpus )

let run_cuda ~machine p =
  let pos, nl = inputs p in
  let ctx = Cuda.init machine in
  let profiler = Mgacc_runtime.Profiler.create () in
  let d_pos = Cuda.malloc_floats ctx (3 * p.atoms) in
  let d_nl = Cuda.malloc_ints ctx (p.atoms * p.max_neighbors) in
  let d_force = Cuda.malloc_floats ctx (3 * p.atoms) in
  let t0 = Cuda.now ctx in
  Cuda.memcpy_h2d_floats ctx ~dst:d_pos pos;
  Cuda.memcpy_h2d_ints ctx ~dst:d_nl nl;
  let t1 = Cuda.now ctx in
  Mgacc_runtime.Profiler.add_cpu_gpu profiler ~seconds:(t1 -. t0)
    ~bytes:((3 * p.atoms * 8) + (p.atoms * p.max_neighbors * 4));
  Cuda.launch ctx ~threads:p.atoms ~label:"md-forces" (fun () ->
      let cost = Cost.zero () in
      compute_forces ~cost ~pos:(Memory.float_data d_pos) ~nl:(Memory.int_data d_nl)
        ~force:(Memory.float_data d_force) ~atoms:p.atoms ~max_neighbors:p.max_neighbors;
      cost);
  let t2 = Cuda.now ctx in
  Mgacc_runtime.Profiler.add_kernel profiler ~seconds:(t2 -. t1);
  Mgacc_runtime.Profiler.incr_kernel_launches profiler;
  Mgacc_runtime.Profiler.incr_loops profiler;
  let force = Array.make (3 * p.atoms) 0.0 in
  Cuda.memcpy_d2h_floats ctx ~src:d_force force;
  let t3 = Cuda.now ctx in
  Mgacc_runtime.Profiler.add_cpu_gpu profiler ~seconds:(t3 -. t2) ~bytes:(3 * p.atoms * 8);
  Mgacc_runtime.Profiler.record_memory_peaks profiler machine ~num_gpus:1;
  Cuda.free ctx d_pos;
  Cuda.free ctx d_nl;
  Cuda.free ctx d_force;
  ( force,
    Mgacc_runtime.Report.of_profiler profiler ~machine:machine.Machine.name ~variant:"cuda(1)"
      ~num_gpus:1 )
