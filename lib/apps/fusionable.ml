(* Fusion-friendly variants of two paper applications (docs/FUSION.md).

   The main app sources (md.ml, kmeans.ml) lean on the extension
   directives — localaccess, reductiontoarray — whose clauses pin their
   loops (the fusion pass only touches bare [parallel loop]s). These
   variants express the same computations as short chains of adjacent
   clause-free parallel loops over identical iteration spaces, the shape
   the pass targets:

   - [md]: the velocity-Verlet update as three loops per time step
     (acceleration from force, velocity, position). The acceleration
     array is a [create] temporary that dies inside the fused group, so
     contraction removes it from the device entirely.
   - [kmeans]: assignment as two loops (per-point best cluster into
     [create] temporaries, then membership), with the feature count
     baked in as a literal so the point matrix reads are [Strided 2] —
     the pattern the fusion-mode layout transposition repairs. The
     centers are recomputed on the host between iterations.

   Both run unchanged (and produce bit-identical plans and reports) with
   the pass off; they exist so benchmarks and tests can measure what
   [--fuse on] changes. *)

type md_params = { particles : int; steps : int }
type kmeans_params = { points : int; clusters : int; iterations : int }

let default_md = { particles = 30000; steps = 12 }
let default_kmeans = { points = 24000; clusters = 6; iterations = 8 }

let md_source p =
  Printf.sprintf
    {|
void main() {
  int n = %d;
  int steps = %d;
  double dt = 0.001;
  double frc[n];
  double vel[n];
  double newpos[n];
  double acc3[n];
  int i;
  for (i = 0; i < n; i++) {
    frc[i] = (i %% 7) + 0.5;
    vel[i] = (i %% 3) * 0.25;
    newpos[i] = i * 1.0;
  }
  #pragma acc data copyin(frc[0:n]) copy(vel[0:n]) copy(newpos[0:n]) create(acc3[0:n])
  {
    int s;
    for (s = 0; s < steps; s++) {
      #pragma acc parallel loop
      for (i = 0; i < n; i++) {
        acc3[i] = frc[i] / 2.0;
      }
      #pragma acc parallel loop
      for (i = 0; i < n; i++) {
        vel[i] = vel[i] + acc3[i] * dt;
      }
      #pragma acc parallel loop
      for (i = 0; i < n; i++) {
        newpos[i] = newpos[i] + vel[i] * dt;
      }
    }
  }
}
|}
    p.particles p.steps

let md p =
  { App_common.name = "md"; source = md_source p; result_arrays = [ "vel"; "newpos" ] }

let kmeans_source p =
  Printf.sprintf
    {|
void main() {
  int n = %d;
  int k = %d;
  int iters = %d;
  double x[n*2];
  double cx[k*2];
  double sums[k*2];
  int cnt[k];
  int member[n];
  double bestd[n];
  int bestc[n];
  int i;
  for (i = 0; i < n; i++) {
    x[i*2 + 0] = ((i * 13) %% 97) * 0.1;
    x[i*2 + 1] = ((i * 7) %% 89) * 0.1;
    member[i] = 0;
  }
  for (i = 0; i < k; i++) {
    cx[i*2 + 0] = i * 1.5;
    cx[i*2 + 1] = i * 0.5 + 0.25;
  }
  #pragma acc data copyin(x[0:n*2]) copy(cx[0:k*2]) copy(member[0:n]) create(bestd[0:n]) create(bestc[0:n])
  {
    int it;
    for (it = 0; it < iters; it++) {
      #pragma acc parallel loop
      for (i = 0; i < n; i++) {
        double bd = 1.0e30;
        int bc = 0;
        int c;
        for (c = 0; c < k; c++) {
          double d0 = x[i*2 + 0] - cx[c*2 + 0];
          double d1 = x[i*2 + 1] - cx[c*2 + 1];
          double dist = d0*d0 + d1*d1;
          if (dist < bd) { bd = dist; bc = c; }
        }
        bestd[i] = bd;
        bestc[i] = bc;
      }
      #pragma acc parallel loop
      for (i = 0; i < n; i++) {
        member[i] = bestc[i];
      }
      #pragma acc update host(member[0:n])
      ;
      int z;
      for (z = 0; z < k*2; z++) { sums[z] = 0.0; }
      for (z = 0; z < k; z++) { cnt[z] = 0; }
      int q;
      for (q = 0; q < n; q++) {
        int c2 = member[q];
        cnt[c2] = cnt[c2] + 1;
        sums[c2*2 + 0] = sums[c2*2 + 0] + x[q*2 + 0];
        sums[c2*2 + 1] = sums[c2*2 + 1] + x[q*2 + 1];
      }
      for (z = 0; z < k; z++) {
        if (cnt[z] > 0) {
          cx[z*2 + 0] = sums[z*2 + 0] / cnt[z];
          cx[z*2 + 1] = sums[z*2 + 1] / cnt[z];
        }
      }
      #pragma acc update device(cx[0:k*2])
      ;
    }
  }
}
|}
    p.points p.clusters p.iterations

let kmeans p =
  { App_common.name = "kmeans"; source = kmeans_source p; result_arrays = [ "member"; "cx" ] }
