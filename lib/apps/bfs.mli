(** BFS: level-synchronized breadth-first search over a padded adjacency
    structure (modeled on the SHOC graph-traversal benchmark).

    One parallel loop executed once per frontier level (~10 kernel
    executions on the default graph). The adjacency array carries
    [localaccess stride(max_degree)] and the degree array [stride(1)] — 2
    of the 3 arrays, matching the paper's Table II — while the levels
    array is written through data-dependent indices and must stay
    replicated: its dirty-chunk reconciliation is the heavy irregular
    GPU-GPU traffic that makes BFS the paper's hardest case.

    Note on determinism: the final [levels] array is deterministic (every
    same-sweep writer stores the same value), but the [changed] counter can
    exceed the sequential count when several GPUs discover the same node —
    it is only used as a continue flag, exactly as in SHOC. *)

type params = { nodes : int; max_degree : int; seed : int }

val default_params : params
(** 50000 nodes, max degree 16. *)

val paper_params : params
(** ~1M nodes x 112 max degree: the paper's 444.9 MB footprint. *)

val app : params -> App_common.t
val source : params -> string

val run_cuda : machine:Mgacc.Machine.t -> params -> int array * Mgacc.Report.t
(** Hand-written single-GPU CUDA baseline; returns the levels array. *)
