(** Fusion-friendly variants of two paper applications.

    The same computations as md and kmeans, restructured as chains of
    adjacent clause-free [parallel loop]s over identical iteration
    spaces — the shape the translator's fusion pass ([--fuse on],
    docs/FUSION.md) targets. Each carries a [create] temporary that is
    written by one loop and consumed by the next, so fusing also
    contracts it away from the device; the kmeans point matrix is read
    with a literal stride so the fusion-mode layout transposition fires.
    With the pass off they run as ordinary one-loop-one-kernel apps. *)

type md_params = { particles : int; steps : int }
type kmeans_params = { points : int; clusters : int; iterations : int }

val default_md : md_params
val default_kmeans : kmeans_params

val md : md_params -> App_common.t
(** Velocity-Verlet step as three fusable loops; the acceleration array
    [acc3] is the contractible temporary. Results: [vel], [newpos]. *)

val kmeans : kmeans_params -> App_common.t
(** Cluster assignment as two fusable loops; [bestd]/[bestc] are the
    contractible temporaries and [x] the relayout candidate. Results:
    [member], [cx]. *)
