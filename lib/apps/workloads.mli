(** Deterministic synthetic workload generation.

    The benchmark programs generate their inputs *inside* the mini-C source
    with this exact LCG, so the OpenMP, PGI-style and proposal versions all
    see identical data; the hand-written CUDA baselines regenerate the same
    data here in OCaml. {!lcg_next} must therefore match the mini-C
    expression [seed = (seed * 1103515245 + 12345) % 2147483648] bit for
    bit (all values fit OCaml's 63-bit ints). *)

val lcg_next : int -> int
(** One LCG step; the state is also the output (in [\[0, 2^31)]). *)

val lcg_stream : seed:int -> int -> int array
(** [lcg_stream ~seed n] is the first [n] outputs starting from [seed]. *)

val lcg_c_snippet : string
(** The mini-C statement implementing one step (for embedding in sources,
    assumes an int variable [seed]). *)

(** {1 MD (Lennard-Jones with fixed-size neighbor lists)} *)

val md_positions : seed:int -> atoms:int -> float array
(** [3*atoms] coordinates in a cubic box, matching the mini-C generator. *)

val md_neighbors : seed:int -> atoms:int -> max_neighbors:int -> int array
(** Padded neighbor lists: mostly near-ring neighbors with random jumps,
    matching the mini-C generator. *)

(** {1 KMEANS} *)

val kmeans_points : seed:int -> points:int -> features:int -> clusters:int -> float array
(** Clustered feature vectors ([points*features], row-major), matching the
    mini-C generator. *)

(** {1 BFS (padded adjacency)} *)

val bfs_graph :
  seed:int -> nodes:int -> max_degree:int -> int array * int array
(** [(edges, degree)] with [edges] sized [nodes*max_degree] (padded with
    -1) and power-law-ish degrees, matching the mini-C generator. *)
