open Mgacc

type row = {
  app : string;
  policy : Sched_policy.t;
  report : Report.t;
  ok : bool;
}

(* Smoke sizes keep the interpreted run fast but stay above the occupancy
   saturation point (~cores x latency factor threads): below it the
   roofline charges the same duration to any split and weighted
   partitioning has nothing to win. *)
let md_params ~smoke =
  if smoke then { Md.atoms = 9000; max_neighbors = 8; seed = 42 } else Md.default_params

let kmeans_params ~smoke =
  if smoke then { Kmeans.points = 8000; features = 8; clusters = 4; iterations = 3; seed = 11 }
  else Kmeans.default_params

let bfs_params ~smoke =
  if smoke then { Bfs.nodes = 12000; max_degree = 8; seed = 5 } else Bfs.default_params

let apps ~smoke =
  [
    Md.app (md_params ~smoke);
    Kmeans.app (kmeans_params ~smoke);
    Bfs.app (bfs_params ~smoke);
  ]

let policies = [ Sched_policy.Equal; Sched_policy.Proportional; Sched_policy.Adaptive ]

let run ?(smoke = false) ?machine () =
  let fresh () = match machine with Some m -> m | None -> Machine.desktop_mixed () in
  List.concat_map
    (fun app ->
      let reference = App_common.sequential app in
      List.map
        (fun policy ->
          let machine = fresh () in
          Machine.reset machine;
          let config = Rt_config.make ~schedule:policy machine in
          let env, report =
            run_acc ~config
              ~variant:(Printf.sprintf "%s(%s)" app.App_common.name (Sched_policy.to_string policy))
              ~machine
              (parse_string ~name:(app.App_common.name ^ ".c") app.App_common.source)
          in
          let ok = App_common.verify app ~against:reference env = Ok () in
          { app = app.App_common.name; policy; report; ok })
        policies)
    (apps ~smoke)

let print rows =
  let t =
    Table.create
      ~headers:
        [
          "app"; "schedule"; "total"; "KERNELS"; "CPU-GPU"; "GPU-GPU"; "rebal"; "imbal"; "results";
        ]
  in
  let last_app = ref "" in
  List.iter
    (fun r ->
      if !last_app <> "" && !last_app <> r.app then Table.add_separator t;
      last_app := r.app;
      Table.add_row t
        [
          r.app;
          Sched_policy.to_string r.policy;
          Printf.sprintf "%.6fs" r.report.Report.total_time;
          Printf.sprintf "%.6fs" r.report.Report.kernel_time;
          Printf.sprintf "%.6fs" r.report.Report.cpu_gpu_time;
          Printf.sprintf "%.6fs" r.report.Report.gpu_gpu_time;
          string_of_int r.report.Report.rebalances;
          Printf.sprintf "%.3f" r.report.Report.mean_imbalance;
          (if r.ok then "ok" else "MISMATCH");
        ])
    rows;
  Table.print t
