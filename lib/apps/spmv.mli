(** SPMV: iterated sparse matrix-vector product in ELLPACK layout (the
    linear-algebra member of the paper's motivating "MapReduce dwarf"
    applications; not part of the paper's own benchmark trio).

    The padded value/column arrays carry [localaccess stride(width)] and
    distribute by rows; the dense vector is gathered through data-dependent
    column indices, so it stays replicated — and because each iteration
    overwrites it everywhere, its dirty reconciliation gives SPMV a
    communication intensity between KMEANS and BFS. Each outer iteration
    also normalizes with a scalar [+] reduction (power-iteration style). *)

type params = {
  rows : int;
  width : int;  (** padded entries per row *)
  iterations : int;
  seed : int;
}

val default_params : params
val app : params -> App_common.t
val source : params -> string
