type params = { rows : int; width : int; iterations : int; seed : int }

let default_params = { rows = 20000; width = 12; iterations = 8; seed = 19 }

let source p =
  Printf.sprintf
    {|
void main() {
  int n = %d;
  int k = %d;
  int iters = %d;
  int seed = %d;
  double vals[n*k];
  int cols[n*k];
  double x[n];
  double y[n];
  int i;
  int e;
  for (i = 0; i < n; i++) {
    for (e = 0; e < k; e++) {
      %s
      int pad = seed %% 8;
      %s
      if (pad == 0) {
        cols[i*k + e] = 0 - 1;
        vals[i*k + e] = 0.0;
      } else {
        cols[i*k + e] = (i + 1 + seed %% 500) %% n;
        vals[i*k + e] = 0.001 + (seed %% 1000) / 1000.0;
      }
    }
    x[i] = 1.0;
    y[i] = 0.0;
  }
  #pragma acc data copyin(vals[0:n*k], cols[0:n*k]) copy(x[0:n]) copy(y[0:n])
  {
    int it;
    for (it = 0; it < iters; it++) {
      double norm2 = 0.0;
      #pragma acc parallel loop reduction(+: norm2) localaccess(vals: stride(k), cols: stride(k), y: stride(1))
      for (i = 0; i < n; i++) {
        double s = 0.0;
        int e2;
        for (e2 = 0; e2 < k; e2++) {
          int c = cols[i*k + e2];
          if (c >= 0) { s = s + vals[i*k + e2] * x[c]; }
        }
        y[i] = s;
        norm2 += s * s;
      }
      double inv = 1.0 / sqrt(norm2);
      #pragma acc parallel loop localaccess(y: stride(1))
      for (i = 0; i < n; i++) { x[i] = y[i] * inv; }
    }
  }
}
|}
    p.rows p.width p.iterations p.seed Workloads.lcg_c_snippet Workloads.lcg_c_snippet

let app p = { App_common.name = "spmv"; source = source p; result_arrays = [ "x"; "y" ] }
