open Mgacc

type params = { nodes : int; max_degree : int; seed : int }

let default_params = { nodes = 50000; max_degree = 16; seed = 5 }
let paper_params = { nodes = 1000000; max_degree = 112; seed = 5 }

let source p =
  Printf.sprintf
    {|
void main() {
  int n = %d;
  int maxdeg = %d;
  int seed = %d;
  int edges[n*maxdeg];
  int degree[n];
  int levels[n];
  int i;
  int e;
  for (i = 0; i < n; i++) {
    %s
    int deg = 1 + seed %% maxdeg;
    degree[i] = deg;
    for (e = 0; e < deg; e++) {
      if (e == 0) {
        edges[i*maxdeg] = (i + 1) %% n;
      } else {
        %s
        int j;
        if (seed %% 10 < 8) { j = (i + 1 + seed %% 2000) %% n; } else { j = seed %% n; }
        edges[i*maxdeg + e] = j;
      }
    }
    for (e = deg; e < maxdeg; e++) { edges[i*maxdeg + e] = 0 - 1; }
  }
  for (i = 0; i < n; i++) { levels[i] = 0 - 1; }
  levels[0] = 0;
  int level = 0;
  int changed = 1;
  #pragma acc data copyin(edges[0:n*maxdeg], degree[0:n]) copy(levels[0:n])
  {
    while (changed > 0) {
      changed = 0;
      #pragma acc parallel loop reduction(+: changed) localaccess(edges: stride(maxdeg), degree: stride(1))
      for (i = 0; i < n; i++) {
        if (levels[i] == level) {
          int deg = degree[i];
          int e2;
          for (e2 = 0; e2 < deg; e2++) {
            int j = edges[i*maxdeg + e2];
            if (levels[j] == 0 - 1) {
              levels[j] = level + 1;
              changed = changed + 1;
            }
          }
        }
      }
      level = level + 1;
    }
  }
}
|}
    p.nodes p.max_degree p.seed Workloads.lcg_c_snippet Workloads.lcg_c_snippet

let app p =
  { App_common.name = "bfs"; source = source p; result_arrays = [ "levels" ] }

(* ------------------------------------------------------------------ *)
(* Hand-written CUDA baseline (single GPU).                            *)
(* ------------------------------------------------------------------ *)

let run_cuda ~machine p =
  let n = p.nodes and maxdeg = p.max_degree in
  let edges, degree = Workloads.bfs_graph ~seed:p.seed ~nodes:n ~max_degree:maxdeg in
  let ctx = Cuda.init machine in
  let profiler = Mgacc_runtime.Profiler.create () in
  let d_edges = Cuda.malloc_ints ctx (n * maxdeg) in
  let d_degree = Cuda.malloc_ints ctx n in
  let d_levels = Cuda.malloc_ints ctx n in
  let levels0 = Array.make n (-1) in
  levels0.(0) <- 0;
  let t0 = Cuda.now ctx in
  Cuda.memcpy_h2d_ints ctx ~dst:d_edges edges;
  Cuda.memcpy_h2d_ints ctx ~dst:d_degree degree;
  Cuda.memcpy_h2d_ints ctx ~dst:d_levels levels0;
  let t1 = Cuda.now ctx in
  Mgacc_runtime.Profiler.add_cpu_gpu profiler ~seconds:(t1 -. t0)
    ~bytes:(4 * ((n * maxdeg) + n + n));
  Mgacc_runtime.Profiler.incr_loops profiler;
  let level = ref 0 in
  let changed = ref 1 in
  while !changed > 0 do
    changed := 0;
    let t_start = Cuda.now ctx in
    Cuda.launch ctx ~threads:n ~label:"bfs-sweep" (fun () ->
        let cost = Cost.zero () in
        let ed = Memory.int_data d_edges in
        let dd = Memory.int_data d_degree in
        let ld = Memory.int_data d_levels in
        for i = 0 to n - 1 do
          cost.Cost.coalesced_bytes <- cost.Cost.coalesced_bytes + 4 (* levels[i] *);
          cost.Cost.int_ops <- cost.Cost.int_ops + 2;
          if ld.(i) = !level then begin
            let deg = dd.(i) in
            cost.Cost.coalesced_bytes <- cost.Cost.coalesced_bytes + 4;
            for e = 0 to deg - 1 do
              let j = ed.((i * maxdeg) + e) in
              (* Padded adjacency reads coalesce thread-wise in the expert
                 version (edge list transposed). *)
              cost.Cost.coalesced_bytes <- cost.Cost.coalesced_bytes + 4;
              cost.Cost.random_accesses <- cost.Cost.random_accesses + 1;
              cost.Cost.random_bytes <- cost.Cost.random_bytes + 4;
              cost.Cost.int_ops <- cost.Cost.int_ops + 4;
              if ld.(j) = -1 then begin
                ld.(j) <- !level + 1;
                changed := !changed + 1;
                cost.Cost.random_accesses <- cost.Cost.random_accesses + 1;
                cost.Cost.random_bytes <- cost.Cost.random_bytes + 4
              end
            done
          end
        done;
        cost);
    let t_end = Cuda.now ctx in
    Mgacc_runtime.Profiler.add_kernel profiler ~seconds:(t_end -. t_start);
    Mgacc_runtime.Profiler.incr_kernel_launches profiler;
    (* The continue flag travels back each sweep. *)
    Cuda.charge_d2h ctx ~bytes:4 ~label:"bfs-flag";
    let t_flag = Cuda.now ctx in
    Mgacc_runtime.Profiler.add_cpu_gpu profiler ~seconds:(t_flag -. t_end) ~bytes:4;
    incr level
  done;
  let levels = Array.make n 0 in
  let td = Cuda.now ctx in
  Cuda.memcpy_d2h_ints ctx ~src:d_levels levels;
  let te = Cuda.now ctx in
  Mgacc_runtime.Profiler.add_cpu_gpu profiler ~seconds:(te -. td) ~bytes:(4 * n);
  Mgacc_runtime.Profiler.record_memory_peaks profiler machine ~num_gpus:1;
  (levels, Mgacc_runtime.Report.of_profiler profiler ~machine:machine.Machine.name
     ~variant:"cuda(1)" ~num_gpus:1)
