let lcg_next seed = ((seed * 1103515245) + 12345) mod 2147483648

let lcg_stream ~seed n =
  let out = Array.make n 0 in
  let s = ref seed in
  for i = 0 to n - 1 do
    s := lcg_next !s;
    out.(i) <- !s
  done;
  out

let lcg_c_snippet = "seed = (seed * 1103515245 + 12345) % 2147483648;"

(* The float expressions below must mirror the mini-C sources exactly
   (same operation order) so the CUDA baselines see identical inputs. *)

let md_positions ~seed ~atoms =
  let pos = Array.make (3 * atoms) 0.0 in
  let s = ref seed in
  for i = 0 to (3 * atoms) - 1 do
    s := lcg_next !s;
    pos.(i) <- 100.0 *. float_of_int !s /. 2147483648.0
  done;
  pos

let md_neighbors ~seed ~atoms ~max_neighbors =
  let nl = Array.make (atoms * max_neighbors) 0 in
  let s = ref seed in
  for i = 0 to atoms - 1 do
    for k = 0 to max_neighbors - 1 do
      s := lcg_next !s;
      let r = !s mod 4 in
      s := lcg_next !s;
      let j = if r = 0 then !s mod atoms else (i + 1 + (!s mod 64)) mod atoms in
      nl.((i * max_neighbors) + k) <- j
    done
  done;
  nl

let kmeans_points ~seed ~points ~features ~clusters =
  let x = Array.make (points * features) 0.0 in
  let s = ref seed in
  for i = 0 to points - 1 do
    s := lcg_next !s;
    let c = !s mod clusters in
    for j = 0 to features - 1 do
      s := lcg_next !s;
      x.((i * features) + j) <- (10.0 *. float_of_int c) +. (float_of_int (!s mod 1000) /. 100.0)
    done
  done;
  x

let bfs_graph ~seed ~nodes ~max_degree =
  let edges = Array.make (nodes * max_degree) (-1) in
  let degree = Array.make nodes 0 in
  let s = ref seed in
  for i = 0 to nodes - 1 do
    s := lcg_next !s;
    let deg = 1 + (!s mod max_degree) in
    degree.(i) <- deg;
    for e = 0 to deg - 1 do
      if e = 0 then edges.(i * max_degree) <- (i + 1) mod nodes
      else begin
        s := lcg_next !s;
        let j =
          if !s mod 10 < 8 then (i + 1 + (!s mod 2000)) mod nodes else !s mod nodes
        in
        edges.((i * max_degree) + e) <- j
      end
    done
  done;
  (edges, degree)
