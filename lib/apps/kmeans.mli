(** KMEANS clustering (modeled on the Rodinia benchmark, kddcup-style
    synthetic input).

    Two parallel loops per iteration: assignment (nearest center, with a
    scalar [+] reduction counting membership changes) and accumulation
    (per-cluster feature sums and counts via [reductiontoarray]). Feature
    vectors carry [localaccess stride(features)] — they distribute across
    GPUs and qualify for the coalescing layout transformation; the centers
    stay replicated and are the array-reduction destination, producing the
    small GPU-GPU traffic the paper describes. *)

type params = {
  points : int;
  features : int;
  clusters : int;
  iterations : int;  (** fixed iteration count (convergence-independent timing) *)
  seed : int;
}

val default_params : params
(** Scaled down: 20000 x 16, 5 clusters, 10 iterations. *)

val paper_params : params
(** kddcup scale: 494020 x 34, 5 clusters, 37 iterations (74 kernels). *)

val app : params -> App_common.t
val source : params -> string

val run_cuda :
  machine:Mgacc.Machine.t -> params -> float array * int array * Mgacc.Report.t
(** Hand-written single-GPU CUDA baseline; returns (centers, membership)
    and the report. *)
