(** MD: Lennard-Jones force computation with fixed-size neighbor lists
    (modeled on the SHOC MD benchmark the paper uses).

    One parallel loop, one kernel execution. [localaccess] is declared on
    the neighbor-list array (stride [max_neighbors]) and the force array
    (stride 3); positions are gathered through the neighbor list, so they
    stay replicated — and being read-only, they cause no inter-GPU
    communication at all, which is why the paper reports zero GPU-GPU
    traffic for MD. *)

type params = { atoms : int; max_neighbors : int; seed : int }

val default_params : params
(** Scaled down for interpreted execution (8192 atoms x 32 neighbors). *)

val paper_params : params
(** The paper's SHOC input: 73728 atoms x 128 neighbors (~40 MB). *)

val app : params -> App_common.t
val source : params -> string

val run_cuda : machine:Mgacc.Machine.t -> params -> float array * Mgacc.Report.t
(** Hand-written single-GPU CUDA baseline; returns the force array and the
    timing report. Inputs are regenerated identically to the mini-C
    source. *)

val cuda_reference_forces : params -> float array
(** The forces the CUDA kernel computes (for cross-checking against the
    sequential mini-C run). *)

val run_cuda_multi :
  machine:Mgacc.Machine.t -> gpus:int -> params -> float array * Mgacc.Report.t
(** Hand-written *multi-GPU* CUDA: the expert manually replicates the
    positions, splits the neighbor lists and forces, overlaps the loads,
    and gathers the force blocks — everything the paper's runtime automates
    (§II-B). The gap between this and the proposal on the same GPU count is
    the runtime's overhead. *)
