(** Shared harness for the three benchmark applications.

    Each application exposes a parameterized mini-C source; this module
    runs it as the paper's four variants — OpenMP baseline, "PGI"-style
    single-GPU OpenACC (extension directives ignored), hand-written CUDA
    (provided by the app), and the proposal on N GPUs — and checks GPU
    results against the sequential reference. *)

open Mgacc

type t = {
  name : string;
  source : string;
  result_arrays : string list;
      (** arrays whose final contents define correctness (compared
          element-wise against the sequential reference) *)
}

val sequential : t -> Host_interp.env
(** The semantic reference run. *)

val openmp : ?threads:int -> machine:Machine.t -> t -> Host_interp.env * Report.t

val pgi : machine:Machine.t -> t -> Host_interp.env * Report.t
(** Single GPU, [localaccess]/[reductiontoarray]-driven optimizations
    disabled except basic replication (models a stock OpenACC compiler).
    Array reductions still execute (the program would not compile
    otherwise) but placement and layout optimizations are off. *)

val proposal :
  ?chunk_bytes:int ->
  ?two_level_dirty:bool ->
  ?overlap:bool ->
  ?schedule:Sched_policy.t ->
  ?coherence:Rt_config.coherence ->
  ?collective:Rt_config.collective ->
  ?fuse:bool ->
  ?options:Kernel_plan.options ->
  num_gpus:int ->
  machine:Machine.t ->
  t ->
  Host_interp.env * Report.t

val verify : t -> against:Host_interp.env -> Host_interp.env -> (unit, string) result
(** Compare the result arrays element-wise (1e-6 relative tolerance for
    doubles). *)

val check_exn : t -> against:Host_interp.env -> Host_interp.env -> unit
(** Like {!verify} but raises [Failure]. *)
