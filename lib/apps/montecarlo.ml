type params = { paths : int; steps : int; bins : int; seed : int }

let default_params = { paths = 20000; steps = 16; bins = 32; seed = 29 }

(* Geometric Brownian walk with a crude uniform-sum gaussian (the sum of 4
   uniforms, shifted): everything stays in deterministic integer LCG land
   so the sequential oracle matches exactly. *)
let source p =
  Printf.sprintf
    {|
void main() {
  int n = %d;
  int m = %d;
  int bins = %d;
  int seed0 = %d;
  double hist[bins];
  double total = 0.0;
  double strike = 105.0;
  int i;
  for (i = 0; i < bins; i++) { hist[i] = 0.0; }
  #pragma acc data copy(hist[0:bins])
  {
    #pragma acc parallel loop reduction(+: total)
    for (i = 0; i < n; i++) {
      int s = (seed0 + i * 2654435761) %% 2147483648;
      if (s < 0) { s = 0 - s; }
      double price = 100.0;
      int j;
      for (j = 0; j < m; j++) {
        double g = 0.0 - 2.0;
        int u;
        for (u = 0; u < 4; u++) {
          s = (s * 1103515245 + 12345) %% 2147483648;
          g = g + s / 2147483648.0;
        }
        price = price * (1.0 + 0.002 + 0.04 * g);
      }
      double payoff = fmax(price - strike, 0.0);
      total += payoff;
      int b = (int)(payoff / 4.0);
      int b2 = min(b, bins - 1);
      #pragma acc reductiontoarray(+: hist)
      hist[b2] += 1.0;
    }
  }
}
|}
    p.paths p.steps p.bins p.seed

let app p = { App_common.name = "montecarlo"; source = source p; result_arrays = [ "hist" ] }
