(** The scheduler balance study: MD, KMEANS and BFS on the heterogeneous
    {!Mgacc.Machine.desktop_mixed} preset under each iteration-partitioning
    policy, with every run verified against the sequential reference.

    This is the evaluation for the adaptive scheduler: on a mixed machine
    the equal split leaves the faster GPU idle at every barrier, and the
    proportional/adaptive policies should recover that kernel time while
    producing bit-identical functional results. *)

type row = {
  app : string;
  policy : Mgacc.Sched_policy.t;
  report : Mgacc.Report.t;
  ok : bool;  (** outputs match the sequential reference *)
}

val run : ?smoke:bool -> ?machine:Mgacc.Machine.t -> unit -> row list
(** Nine rows (3 apps x 3 policies). [smoke] shrinks the inputs for test
    suites while staying above GPU occupancy saturation — below it a
    weighted split cannot change simulated kernel time. The machine
    defaults to a fresh {!Mgacc.Machine.desktop_mixed}. *)

val print : row list -> unit
