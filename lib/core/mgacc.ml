module Ast = Mgacc_minic.Ast
module Loc = Mgacc_minic.Loc
module Parser = Mgacc_minic.Parser
module Pretty = Mgacc_minic.Pretty
module Typecheck = Mgacc_minic.Typecheck
module Loop_info = Mgacc_analysis.Loop_info
module Access = Mgacc_analysis.Access
module Array_config = Mgacc_analysis.Array_config
module Coalesce = Mgacc_analysis.Coalesce
module Kernel_plan = Mgacc_translator.Kernel_plan
module Program_plan = Mgacc_translator.Program_plan
module Host_interp = Mgacc_exec.Host_interp
module View = Mgacc_exec.View
module Spec = Mgacc_gpusim.Spec
module Machine = Mgacc_gpusim.Machine
module Cuda = Mgacc_gpusim.Cuda
module Cost = Mgacc_gpusim.Cost
module Memory = Mgacc_gpusim.Memory
module Trace = Mgacc_sim.Trace
module Metrics = Mgacc_obs.Metrics
module Critical_path = Mgacc_obs.Critical_path
module Blame = Mgacc_obs.Blame
module Sched_policy = Mgacc_sched.Policy
module Sched_feedback = Mgacc_sched.Feedback
module Scheduler = Mgacc_sched.Scheduler
module Rt_config = Mgacc_runtime.Rt_config
module Session = Mgacc_runtime.Session
module Fleet = Mgacc_fleet.Fleet
module Fleet_job = Mgacc_fleet.Job
module Plan_cache = Mgacc_fleet.Plan_cache
module Admission = Mgacc_fleet.Admission
module Collective = Mgacc_runtime.Collective
module Comm_manager = Mgacc_runtime.Comm_manager
module Fabric = Mgacc_gpusim.Fabric
module Report = Mgacc_runtime.Report
module Acc_runtime = Mgacc_runtime.Acc_runtime
module Launch = Mgacc_runtime.Launch
module Profiler = Mgacc_runtime.Profiler
module Openmp = Mgacc_runtime.Openmp
module Xorshift = Mgacc_util.Xorshift
module Table = Mgacc_util.Table
module Bytesize = Mgacc_util.Bytesize

let parse_string ~name src = Parser.parse ~file:name src

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  Parser.parse ~file:path src

let compile ?options program = Program_plan.build ?options program

let run_sequential program = Host_interp.run_program program

let run_openmp ?threads ~machine program = Openmp.run ?threads ~machine program

let run_acc ?config ?variant ?with_blame ~machine program =
  Acc_runtime.run ?config ?variant ?with_blame ~machine program

let float_results env name = View.snapshot_f (Host_interp.find_array env name)
let int_results env name = View.snapshot_i (Host_interp.find_array env name)
