(** Mgacc: a multi-GPU OpenACC compiler and runtime on a simulated GPU
    substrate.

    OCaml reproduction of Komoda, Miwa, Nakamura & Maruyama, "Integrating
    Multi-GPU Execution in an OpenACC Compiler" (ICPP 2013). Programs are
    written in a C subset with OpenACC directives plus the paper's two
    extensions — [localaccess] (per-iteration read windows, enabling the
    distribution-based placement policy) and [reductiontoarray]
    (hierarchical reductions into dynamically indexed array elements) — and
    execute on one or more simulated GPUs, on the simulated multicore CPU
    (OpenMP baseline), or sequentially (semantic reference).

    Quickstart:
    {[
      let program = Mgacc.parse_string ~name:"vecadd.c" source in
      let machine = Mgacc.Machine.desktop () in
      let _env, report = Mgacc.run_acc ~machine program in
      Format.printf "%a@." Mgacc.Report.pp report
    ]} *)

(** {1 Re-exported components} *)

module Ast = Mgacc_minic.Ast
module Loc = Mgacc_minic.Loc
module Parser = Mgacc_minic.Parser
module Pretty = Mgacc_minic.Pretty
module Typecheck = Mgacc_minic.Typecheck
module Loop_info = Mgacc_analysis.Loop_info
module Access = Mgacc_analysis.Access
module Array_config = Mgacc_analysis.Array_config
module Coalesce = Mgacc_analysis.Coalesce
module Kernel_plan = Mgacc_translator.Kernel_plan
module Program_plan = Mgacc_translator.Program_plan
module Host_interp = Mgacc_exec.Host_interp
module View = Mgacc_exec.View
module Spec = Mgacc_gpusim.Spec
module Machine = Mgacc_gpusim.Machine
module Cuda = Mgacc_gpusim.Cuda
module Cost = Mgacc_gpusim.Cost
module Memory = Mgacc_gpusim.Memory
module Trace = Mgacc_sim.Trace
module Metrics = Mgacc_obs.Metrics
module Critical_path = Mgacc_obs.Critical_path
module Blame = Mgacc_obs.Blame
module Sched_policy = Mgacc_sched.Policy
module Sched_feedback = Mgacc_sched.Feedback
module Scheduler = Mgacc_sched.Scheduler
module Rt_config = Mgacc_runtime.Rt_config
module Session = Mgacc_runtime.Session
module Fleet = Mgacc_fleet.Fleet
module Fleet_job = Mgacc_fleet.Job
module Plan_cache = Mgacc_fleet.Plan_cache
module Admission = Mgacc_fleet.Admission
module Collective = Mgacc_runtime.Collective
module Comm_manager = Mgacc_runtime.Comm_manager
module Fabric = Mgacc_gpusim.Fabric
module Report = Mgacc_runtime.Report
module Acc_runtime = Mgacc_runtime.Acc_runtime
module Launch = Mgacc_runtime.Launch
module Profiler = Mgacc_runtime.Profiler
module Openmp = Mgacc_runtime.Openmp
module Xorshift = Mgacc_util.Xorshift
module Table = Mgacc_util.Table
module Bytesize = Mgacc_util.Bytesize

(** {1 Front door} *)

val parse_string : name:string -> string -> Ast.program
(** Parse a translation unit from a string. Raises {!Loc.Error}. *)

val parse_file : string -> Ast.program

val compile : ?options:Kernel_plan.options -> Ast.program -> Program_plan.t
(** Typecheck and plan every parallel loop. *)

val run_sequential : Ast.program -> Host_interp.env
(** Execute with directives reduced to their sequential semantics: the
    correctness oracle. *)

val run_openmp :
  ?threads:int -> machine:Machine.t -> Ast.program -> Host_interp.env * Report.t
(** The OpenMP baseline on the machine's CPU model. *)

val run_acc :
  ?config:Rt_config.t ->
  ?variant:string ->
  ?with_blame:bool ->
  machine:Machine.t ->
  Ast.program ->
  Host_interp.env * Report.t
(** The multi-GPU OpenACC runtime (the paper's proposal). [config] selects
    GPU count, dirty-bit chunk size and the ablation switches.
    [with_blame] attaches the critical-path blame summary to the report
    (see {!Report.pp_blame}); it never changes the timings. *)

val float_results : Host_interp.env -> string -> float array
(** Snapshot a host array after a run (raises [Not_found] if absent). *)

val int_results : Host_interp.env -> string -> int array
