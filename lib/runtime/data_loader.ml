open Mgacc_minic
module Kernel_plan = Mgacc_translator.Kernel_plan
module Program_plan = Mgacc_translator.Program_plan
module Array_config = Mgacc_analysis.Array_config
module Interval = Mgacc_util.Interval

type prepared = {
  xfers : Darray.xfer list;
  reductions : (string * Reduction.t) list;
  reused : string list;
}

(* Lazy coherence: make exactly what this launch reads valid, pulling any
   stale interval inside the demand from a valid peer. Reduction
   destinations fold partials into replica 0's base values, so GPU 0 must
   be fully valid there; other replicated inputs pull only each GPU's own
   read window of the launch (resolved from the plan's affine read
   summary over the iteration split). Stale data outside the windows
   stays deferred — a later consumer, copyout or update pulls it then. *)
let pull_for_launch cfg plan ~(ranges : Task_map.range array) ~get_darray =
  if not (Rt_config.lazy_coherence cfg) then []
  else
    List.concat_map
      (fun (c : Array_config.t) ->
        let name = c.Array_config.array in
        let da = get_darray name in
        match c.Array_config.reduction with
        | Some _ -> Darray.pull_valid cfg da ~gpu:0 ~want:(Darray.full_set da)
        | None -> (
            match Kernel_plan.placement_of plan name with
            | Array_config.Distributed -> []
            | Array_config.Replicated -> (
                match Program_plan.read_window_of plan ~array:name with
                | None -> []
                | Some window ->
                    let want g =
                      match window with
                      | Program_plan.Whole_array -> Darray.full_set da
                      | Program_plan.Affine_window { coeff; cmin; cmax } ->
                          let rg = ranges.(g) in
                          if rg.Task_map.stop_ <= rg.Task_map.start_ then Interval.Set.empty
                          else begin
                            let lo_it = rg.Task_map.start_ and hi_it = rg.Task_map.stop_ - 1 in
                            let lo, hi =
                              if coeff >= 0 then
                                ((coeff * lo_it) + cmin, (coeff * hi_it) + cmax + 1)
                              else ((coeff * hi_it) + cmin, (coeff * lo_it) + cmax + 1)
                            in
                            Interval.Set.of_interval (Interval.make (max 0 lo) hi)
                          end
                    in
                    List.concat
                      (List.init (Array.length ranges) (fun g ->
                           Darray.pull_valid cfg da ~gpu:g ~want:(want g))))))
      plan.Kernel_plan.configs

let prepare cfg ?grid plan ~ranges ~eval_int ~get_darray ~arrays =
  let xfers = ref [] in
  let reductions = ref [] in
  let reused = ref [] in
  (* An array already on the device in the right placement produces no
     transfers: the reload-skip reuse iterative applications live on. Under
     overlap this is a prefetch hit — the previous launch's reconciliation,
     gated only on its own producers, already refreshed the copy while the
     host ran ahead to this launch. *)
  let note_reuse name (da : Darray.t) emitted =
    if emitted = [] && da.Darray.state <> Darray.Unallocated then reused := name :: !reused;
    emitted
  in
  List.iter
    (fun (c : Array_config.t) ->
      let name = c.Array_config.array in
      let da = get_darray name in
      match c.Array_config.reduction with
      | Some op ->
          (* Reduction destinations stay replicated; partials are private. *)
          xfers := !xfers @ note_reuse name da (Darray.ensure_replicated cfg da ~dirty_tracking:false);
          reductions := (name, Reduction.allocate cfg da op) :: !reductions
      | None -> (
          match Kernel_plan.placement_of plan name with
          | Array_config.Replicated ->
              let dirty_tracking =
                Kernel_plan.needs_dirty_tracking plan ~num_gpus:cfg.Rt_config.num_gpus name
              in
              xfers := !xfers @ note_reuse name da (Darray.ensure_replicated cfg da ~dirty_tracking)
          | Array_config.Distributed ->
              let spec =
                match c.Array_config.localaccess with
                | Some la ->
                    let stride = eval_int la.Ast.la_stride in
                    if stride <= 0 then
                      Loc.error la.Ast.la_stride.Ast.eloc
                        "localaccess stride for %s must be positive (got %d)" name stride;
                    let left = max 0 (eval_int la.Ast.la_left) in
                    let right = max 0 (eval_int la.Ast.la_right) in
                    (* Under a 2-D launch every distributed array carries
                       its tile grid and exact per-array stencil halos
                       (the launch gate already checked divisibility). *)
                    let tile =
                      match (grid, plan.Kernel_plan.tile2d) with
                      | Some (pr, pc), Some t2 when da.Darray.length mod stride = 0 ->
                          let h = Mgacc_analysis.Tile2d.halo_of t2 name in
                          Some
                            {
                              Darray.pr;
                              pc;
                              row_left = h.Mgacc_analysis.Tile2d.row_l;
                              row_right = h.Mgacc_analysis.Tile2d.row_r;
                              col_left = h.Mgacc_analysis.Tile2d.col_l;
                              col_right = h.Mgacc_analysis.Tile2d.col_r;
                            }
                      | _ -> None
                    in
                    { Darray.stride; left; right; tile }
                | None -> assert false (* Distributed implies a localaccess spec *)
              in
              xfers := !xfers @ note_reuse name da (Darray.ensure_distributed cfg da ~spec ~ranges)))
    plan.Kernel_plan.configs;
  (* Arrays referenced only through __length never appear in the access
     summaries, so they have no config; they still need device presence
     because a view is bound for every array parameter. *)
  List.iter
    (fun name ->
      if Kernel_plan.config_for plan name = None then
        xfers := !xfers @ Darray.ensure_replicated cfg (get_darray name) ~dirty_tracking:false)
    arrays;
  xfers := !xfers @ pull_for_launch cfg plan ~ranges ~get_darray;
  { xfers = !xfers; reductions = List.rev !reductions; reused = List.rev !reused }
