open Mgacc_minic
module Kernel_plan = Mgacc_translator.Kernel_plan
module Array_config = Mgacc_analysis.Array_config

type prepared = {
  xfers : Darray.xfer list;
  reductions : (string * Reduction.t) list;
  reused : string list;
}

let prepare cfg plan ~ranges ~eval_int ~get_darray ~arrays =
  let xfers = ref [] in
  let reductions = ref [] in
  let reused = ref [] in
  (* An array already on the device in the right placement produces no
     transfers: the reload-skip reuse iterative applications live on. Under
     overlap this is a prefetch hit — the previous launch's reconciliation,
     gated only on its own producers, already refreshed the copy while the
     host ran ahead to this launch. *)
  let note_reuse name (da : Darray.t) emitted =
    if emitted = [] && da.Darray.state <> Darray.Unallocated then reused := name :: !reused;
    emitted
  in
  List.iter
    (fun (c : Array_config.t) ->
      let name = c.Array_config.array in
      let da = get_darray name in
      match c.Array_config.reduction with
      | Some op ->
          (* Reduction destinations stay replicated; partials are private. *)
          xfers := !xfers @ note_reuse name da (Darray.ensure_replicated cfg da ~dirty_tracking:false);
          reductions := (name, Reduction.allocate cfg da op) :: !reductions
      | None -> (
          match Kernel_plan.placement_of plan name with
          | Array_config.Replicated ->
              let dirty_tracking =
                Kernel_plan.needs_dirty_tracking plan ~num_gpus:cfg.Rt_config.num_gpus name
              in
              xfers := !xfers @ note_reuse name da (Darray.ensure_replicated cfg da ~dirty_tracking)
          | Array_config.Distributed ->
              let spec =
                match c.Array_config.localaccess with
                | Some la ->
                    let stride = eval_int la.Ast.la_stride in
                    if stride <= 0 then
                      Loc.error la.Ast.la_stride.Ast.eloc
                        "localaccess stride for %s must be positive (got %d)" name stride;
                    let left = max 0 (eval_int la.Ast.la_left) in
                    let right = max 0 (eval_int la.Ast.la_right) in
                    { Darray.stride; left; right }
                | None -> assert false (* Distributed implies a localaccess spec *)
              in
              xfers := !xfers @ note_reuse name da (Darray.ensure_distributed cfg da ~spec ~ranges)))
    plan.Kernel_plan.configs;
  (* Arrays referenced only through __length never appear in the access
     summaries, so they have no config; they still need device presence
     because a view is bound for every array parameter. *)
  List.iter
    (fun name ->
      if Kernel_plan.config_for plan name = None then
        xfers := !xfers @ Darray.ensure_replicated cfg (get_darray name) ~dirty_tracking:false)
    arrays;
  { xfers = !xfers; reductions = List.rev !reductions; reused = List.rev !reused }
