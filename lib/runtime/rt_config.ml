type coherence = Eager | Lazy

type t = {
  machine : Mgacc_gpusim.Machine.t;
  num_gpus : int;
  chunk_bytes : int;
  two_level_dirty : bool;
  overlap : bool;
  coherence : coherence;
  translator : Mgacc_translator.Kernel_plan.options;
  schedule : Mgacc_sched.Policy.t;
  sched_knobs : Mgacc_sched.Feedback.knobs;
}

let make ?num_gpus ?(chunk_bytes = 1024 * 1024) ?(two_level_dirty = true) ?(overlap = false)
    ?(coherence = Eager) ?(translator = Mgacc_translator.Kernel_plan.default_options)
    ?(schedule = Mgacc_sched.Policy.Equal)
    ?(sched_knobs = Mgacc_sched.Feedback.default_knobs) machine =
  let available = Mgacc_gpusim.Machine.num_gpus machine in
  let num_gpus = Option.value ~default:available num_gpus in
  if num_gpus < 1 || num_gpus > available then invalid_arg "Rt_config.make: bad num_gpus";
  if chunk_bytes < 8 then invalid_arg "Rt_config.make: chunk_bytes too small";
  {
    machine;
    num_gpus;
    chunk_bytes;
    two_level_dirty;
    overlap;
    coherence;
    translator;
    schedule;
    sched_knobs;
  }

let lazy_coherence t = t.coherence = Lazy && t.num_gpus > 1
