type coherence = Eager | Lazy
type collective = Direct | Ring | Auto

let collective_of_string = function
  | "direct" -> Ok Direct
  | "ring" -> Ok Ring
  | "auto" -> Ok Auto
  | other -> Error (Printf.sprintf "unknown collective mode %S (direct|ring|auto)" other)

let collective_name = function Direct -> "direct" | Ring -> "ring" | Auto -> "auto"

type t = {
  machine : Mgacc_gpusim.Machine.t;
  num_gpus : int;
  chunk_bytes : int;
  two_level_dirty : bool;
  overlap : bool;
  coherence : coherence;
  collective : collective;
  collective_seg_bytes : int;
  translator : Mgacc_translator.Kernel_plan.options;
  schedule : Mgacc_sched.Policy.t;
  sched_knobs : Mgacc_sched.Feedback.knobs;
  keep_resident : bool;
      (** fleet warm-pool mode: keep device allocations alive across data
          regions and at session finish (flushing only copyout data), so a
          later eviction pays real spill traffic *)
}

let make ?num_gpus ?(chunk_bytes = 1024 * 1024) ?(two_level_dirty = true) ?(overlap = false)
    ?(coherence = Eager) ?(collective = Direct) ?(collective_seg_bytes = 256 * 1024)
    ?(translator = Mgacc_translator.Kernel_plan.default_options)
    ?(schedule = Mgacc_sched.Policy.Equal)
    ?(sched_knobs = Mgacc_sched.Feedback.default_knobs) ?(keep_resident = false) machine =
  let available = Mgacc_gpusim.Machine.num_gpus machine in
  let num_gpus = Option.value ~default:available num_gpus in
  if num_gpus < 1 || num_gpus > available then invalid_arg "Rt_config.make: bad num_gpus";
  if chunk_bytes < 8 then invalid_arg "Rt_config.make: chunk_bytes too small";
  if collective_seg_bytes < 1024 then invalid_arg "Rt_config.make: collective_seg_bytes too small";
  {
    machine;
    num_gpus;
    chunk_bytes;
    two_level_dirty;
    overlap;
    coherence;
    collective;
    collective_seg_bytes;
    translator;
    schedule;
    sched_knobs;
    keep_resident;
  }

let lazy_coherence t = t.coherence = Lazy && t.num_gpus > 1
let planned_collectives t = t.collective <> Direct && t.num_gpus > 1
