(** The data loader (paper §IV-C).

    Called before every kernel launch: decides each array's placement from
    the array configuration information (replica-based by default,
    distribution-based for [localaccess] arrays), makes the device copies
    valid — skipping reloads when the placement and windows match the
    previous launch, the reuse that iterative applications live on — and
    allocates reduction partials for [reductiontoarray] destinations.

    Returns the transfer descriptors to charge (a mix of D2H flushes from
    placement transitions and H2D loads), plus the arrays whose device
    copies were still valid — the reload-skip reuse that the overlap
    engine counts as prefetch hits. *)

open Mgacc_minic

type prepared = {
  xfers : Darray.xfer list;
  reductions : (string * Reduction.t) list;
  reused : string list;  (** configured arrays that needed no transfer *)
}

val prepare :
  Rt_config.t ->
  ?grid:int * int ->
  Mgacc_translator.Kernel_plan.t ->
  ranges:Task_map.range array ->
  eval_int:(Ast.expr -> int) ->
  get_darray:(string -> Darray.t) ->
  arrays:string list ->
  prepared
(** [eval_int] evaluates [localaccess] window parameters in the host
    environment; [arrays] lists every array parameter of the kernel (a view
    is bound for each, so each needs device presence even if only its
    length is read). [grid] is the [(pr, pc)] GPU grid of a 2-D launch:
    distributed arrays then carry a {!Darray.tile_spec} built from the
    plan's stencil halos. Raises {!Mgacc_minic.Loc.Error} when a declared
    stride is non-positive. *)
