(** Accounting of simulated time and device memory for the evaluation.

    Time is accumulated per category exactly as the paper's Fig. 8 reports
    it: wall-clock of the load phases (CPU-GPU), of the kernel phases
    (KERNELS), and of the inter-GPU reconciliation phases (GPU-GPU).
    Byte counters and event counts feed the analysis tables, and the
    memory report splits device usage into User and System (Fig. 9). *)

type t

val create : unit -> t

val metrics : t -> Mgacc_obs.Metrics.t
(** The registry backing every scalar counter of this profiler (names
    under the [rt_] prefix; see docs/OBSERVABILITY.md). Rendering it with
    {!Mgacc_obs.Metrics.to_prometheus} exports the run's counters without
    any extra bookkeeping — the profiler accumulates directly into the
    registry cells. *)

val add_cpu_gpu : t -> seconds:float -> bytes:int -> unit
val add_gpu_gpu : t -> seconds:float -> bytes:int -> unit
val add_kernel : t -> seconds:float -> unit
val add_overhead : t -> seconds:float -> unit
val incr_kernel_launches : t -> unit
val incr_loops : t -> unit

val incr_rebalances : t -> unit
(** One committed scheduler re-split (adaptive policy only). *)

val add_imbalance : t -> ratio:float -> unit
(** Per-GPU kernel-time imbalance of one multi-GPU launch:
    [(slowest - fastest) / slowest], in [\[0, 1)]. *)

val add_hidden : t -> seconds:float -> unit
(** Overlap engine only: seconds of transfer/kernel activity that ran in
    the shadow of the critical path (the category counters get only the
    exposed share, so they sum to the makespan). *)

val add_prefetch_hits : t -> count:int -> unit
(** Arrays whose device copies were still valid at a launch, so the loader
    skipped the reload — under overlap, the previous launch's exchange
    already prefetched exactly these for the next launch. *)

val add_coh : t -> array:string -> shipped:int -> deferred:int -> unit
(** Per-array coherence traffic of one reconciliation: bytes shipped to
    consumers vs. bytes whose transfer was deferred (left stale). *)

val add_coh_pulled : t -> array:string -> bytes:int -> unit
(** Bytes of previously deferred intervals pulled on demand. *)

val coh_rows : t -> (string * int * int * int) list
(** Per-array (shipped, deferred, pulled) byte counters, sorted by array
    name. Bytes deferred but never pulled were elided outright. *)

val cpu_gpu_time : t -> float
val gpu_gpu_time : t -> float
val kernel_time : t -> float
val overhead_time : t -> float
val total_time : t -> float
(** Sum of all categories: the parallel-region execution time. Under the
    overlap engine the categories hold exposed (critical-path) time only,
    so this is the makespan; hidden time is reported separately. *)

val hidden_time : t -> float
val prefetch_hits : t -> int

val add_fused_kernels : t -> count:int -> unit
(** Kernel launches saved by loop fusion at one fused launch: one fused
    group of [k] constituent loops counts [k - 1] per execution. *)

val add_contracted_arrays : t -> count:int -> unit
(** Temporary arrays the fusion pass contracted to per-iteration scalars
    (recorded once per session from the plan, not per launch). *)

val add_relayout : t -> unit
(** One array's transposed device copy materialized (one-time repack for
    a fusion-mode layout transformation). *)

val fused_kernels : t -> int
val contracted_arrays : t -> int
val relayouts : t -> int

val add_spill : t -> bytes:int -> unit
(** Fleet memory pressure: one eviction of this session's warm device
    data, with [bytes] of dirty data written back to the host (0 when
    everything evicted was clean — writeback semantics). *)

val spilled_bytes : t -> int
val spills : t -> int

val add_wire_bytes : t -> bytes:int -> unit
(** Bytes that crossed the inter-node network (always 0 on single-node
    machines). A subset of whichever byte counter the transfer landed
    in; the collective planner's whole job is shrinking this. *)

val add_collective : t -> rings:int -> hierarchies:int -> direct_groups:int -> segments:int -> unit
(** One reconciliation's collective-planner decisions (see
    {!Collective.stats}). *)

val cpu_gpu_bytes : t -> int
val gpu_gpu_bytes : t -> int
val wire_bytes : t -> int
val collective_rings : t -> int
val collective_hierarchies : t -> int
val collective_direct_groups : t -> int
val collective_segments : t -> int
val kernel_launches : t -> int
val loops_executed : t -> int
val rebalances : t -> int

val mean_imbalance : t -> float
(** Mean recorded launch imbalance; 0 when no multi-GPU launch happened. *)

type memory_report = { user_bytes : int; system_bytes : int }

val record_memory_peaks : t -> Mgacc_gpusim.Machine.t -> num_gpus:int -> unit
(** Capture the current per-class peak usage summed over the first
    [num_gpus] devices. *)

val memory : t -> memory_report

val pp : Format.formatter -> t -> unit
