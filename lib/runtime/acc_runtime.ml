open Mgacc_minic
module Machine = Mgacc_gpusim.Machine
module Fabric = Mgacc_gpusim.Fabric
module Event = Mgacc_gpusim.Event
module Host_interp = Mgacc_exec.Host_interp
module View = Mgacc_exec.View
module Kernel_plan = Mgacc_translator.Kernel_plan
module Program_plan = Mgacc_translator.Program_plan
module Loop_info = Mgacc_analysis.Loop_info

let log_src = Logs.Src.create "mgacc.runtime" ~doc:"multi-GPU OpenACC runtime"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* All mutable execution state lives in the explicit [Session.t]; this
   module is the single-job driver over it. *)
open Session

type t = Session.t

let create cfg plans = Session.create cfg plans
let profiler = Session.profiler
let now = Session.now

(* ---------------- transfer charging ---------------- *)

type batch_kind = Cpu_gpu | Gpu_gpu

let fabric_of t = t.cfg.Rt_config.machine.Machine.fabric

(* Inter-node traffic of a batch: the share of its bytes that crosses
   the network wire (0 on single-node machines). *)
let count_wire_bytes t (reqs : Fabric.request list) =
  let fabric = fabric_of t in
  let bytes =
    List.fold_left
      (fun acc (r : Fabric.request) ->
        match r.Fabric.direction with
        | Fabric.P2p (a, b) when not (Fabric.same_node fabric a b) -> acc + r.Fabric.bytes
        | Fabric.P2p _ | Fabric.H2d _ | Fabric.D2h _ -> acc)
      0 reqs
  in
  if bytes > 0 then Profiler.add_wire_bytes t.profiler ~bytes

let count_collective_stats t (st : Collective.stats) =
  Profiler.add_collective t.profiler ~rings:st.Collective.rings
    ~hierarchies:st.Collective.hierarchies ~direct_groups:st.Collective.direct_groups
    ~segments:st.Collective.segments

let blame_of_kind = function
  | Cpu_gpu -> Mgacc_obs.Blame.Cpu_gpu
  | Gpu_gpu -> Mgacc_obs.Blame.Gpu_gpu

let charge_xfers ?(causes = fun (_ : Darray.xfer) -> []) t ~label ~kind ~ready
    (xfers : Darray.xfer list) =
  if xfers = [] then begin
    t.last_xfer_spans <- [];
    ready
  end
  else begin
    let reqs =
      List.map
        (fun (x : Darray.xfer) ->
          ( { Fabric.direction = x.Darray.dir; bytes = x.Darray.bytes; ready; tag = x.Darray.tag },
            causes x ))
        xfers
    in
    count_wire_bytes t (List.map fst reqs);
    let completions = Machine.run_transfers_spans t.cfg.Rt_config.machine ~label reqs in
    let finish =
      List.fold_left (fun acc ((c : Fabric.completion), _) -> Float.max acc c.Fabric.finish) ready
        completions
    in
    let bytes = List.fold_left (fun acc (x : Darray.xfer) -> acc + x.Darray.bytes) 0 xfers in
    (match kind with
    | Cpu_gpu -> Profiler.add_cpu_gpu t.profiler ~seconds:(finish -. ready) ~bytes
    | Gpu_gpu -> Profiler.add_gpu_gpu t.profiler ~seconds:(finish -. ready) ~bytes);
    let spans = List.filter_map snd completions in
    Mgacc_obs.Blame.charge t.ledger (blame_of_kind kind) ~label ~exposed:(finish -. ready)
      ~hidden:0.0 ~spans;
    t.last_xfer_spans <- spans;
    finish
  end

(* Overlap-mode accounting: each batch of activity spans [start, finish].
   Only the part past the current makespan cursor is exposed critical-path
   time and lands in its category; the part running in the shadow of
   earlier work is hidden. A gap between the cursor and [start] means the
   machine sat waiting on a host-side dependency (a dirty-bit scan) and is
   charged as overhead. The invariant "category times sum to the makespan"
   makes Fig. 8-style breakdowns read as a critical path. *)
let account t ~label ~spans ~kind ~bytes ~start ~finish =
  let gap = Float.max 0.0 (start -. t.horizon) in
  if gap > 0.0 then begin
    Profiler.add_overhead t.profiler ~seconds:gap;
    Mgacc_obs.Blame.charge t.ledger Mgacc_obs.Blame.Overhead ~label:("wait:" ^ label) ~exposed:gap
      ~hidden:0.0 ~spans:[]
  end;
  let exposed = Float.max 0.0 (finish -. Float.max t.horizon start) in
  let hidden = Float.max 0.0 (finish -. start -. exposed) in
  (match kind with
  | `Cpu_gpu -> Profiler.add_cpu_gpu t.profiler ~seconds:exposed ~bytes
  | `Gpu_gpu -> Profiler.add_gpu_gpu t.profiler ~seconds:exposed ~bytes
  | `Kernel -> Profiler.add_kernel t.profiler ~seconds:exposed);
  if hidden > 0.0 then Profiler.add_hidden t.profiler ~seconds:hidden;
  let cat =
    match kind with
    | `Cpu_gpu -> Mgacc_obs.Blame.Cpu_gpu
    | `Gpu_gpu -> Mgacc_obs.Blame.Gpu_gpu
    | `Kernel -> Mgacc_obs.Blame.Kernel
  in
  Mgacc_obs.Blame.charge t.ledger cat ~label ~exposed ~hidden ~spans;
  if finish > t.horizon then t.horizon <- finish

let run_batch_overlap t ~label ~kind (reqs : (Fabric.request * int list) list) =
  if reqs = [] then []
  else begin
    count_wire_bytes t (List.map fst reqs);
    let completions = Machine.run_transfers_spans t.cfg.Rt_config.machine ~label reqs in
    let start =
      List.fold_left
        (fun acc ((r : Fabric.request), _) -> Float.min acc r.Fabric.ready)
        infinity reqs
    in
    let finish =
      List.fold_left (fun acc ((c : Fabric.completion), _) -> Float.max acc c.Fabric.finish) start
        completions
    in
    let bytes = List.fold_left (fun acc ((r : Fabric.request), _) -> acc + r.Fabric.bytes) 0 reqs in
    account t ~label ~spans:(List.filter_map snd completions) ~kind ~bytes ~start ~finish;
    completions
  end

(* Overlap mode: advance a GPU's readiness timeline and remember which
   trace span did it, so downstream gated ops can cite their producer. *)
let record_ev t g fin sid =
  if fin > Event.gpu_ready t.events g then
    t.ev_spans.(g) <- (match sid with Some id -> id | None -> -1);
  Event.record t.events g fin

let ev_cause t g = if t.ev_spans.(g) >= 0 then [ t.ev_spans.(g) ] else []

(* Deferred intervals pulled on demand carry a ":pull" tag; count their
   bytes into the per-array coherence counters. *)
let count_pulls t (xfers : Darray.xfer list) =
  List.iter
    (fun (x : Darray.xfer) ->
      match String.rindex_opt x.Darray.tag ':' with
      | Some i when String.sub x.Darray.tag i (String.length x.Darray.tag - i) = ":pull" ->
          Profiler.add_coh_pulled t.profiler ~array:(String.sub x.Darray.tag 0 i)
            ~bytes:x.Darray.bytes
      | _ -> ())
    xfers

(* Host-driven transfers (copyin/copyout/update) are host-visible sync
   points: in overlap mode they first drain everything in flight, then run
   fully exposed; in barrier mode this is exactly the original charge.
   Under lazy coherence a flush list may lead with on-demand P2p pulls
   (replica 0 turning coherent); those ride the interconnect before the
   host copy and are charged as GPU-GPU traffic. Eager mode never
   produces them, so its charge sequence is unchanged. *)
let charge_host_xfers t ~label xfers =
  if xfers = [] then ()
  else begin
    let pulls, host =
      List.partition
        (fun (x : Darray.xfer) ->
          match x.Darray.dir with Fabric.P2p _ -> true | Fabric.H2d _ | Fabric.D2h _ -> false)
        xfers
    in
    count_pulls t pulls;
    if not t.cfg.Rt_config.overlap then begin
      let ready = charge_xfers t ~label ~kind:Gpu_gpu ~ready:t.clock pulls in
      t.clock <- charge_xfers t ~label ~kind:Cpu_gpu ~ready host
    end
    else begin
      let ready = Float.max t.clock t.horizon in
      let ready = charge_xfers t ~label ~kind:Gpu_gpu ~ready pulls in
      let pull_spans = t.last_xfer_spans in
      let finish = charge_xfers t ~label ~kind:Cpu_gpu ~ready host in
      t.horizon <- Float.max t.horizon finish;
      let barrier_span =
        (* the last span of the drain is what every GPU now waits behind *)
        match List.fold_left (fun acc id -> max acc id) (-1) (t.last_xfer_spans @ pull_spans) with
        | -1 -> None
        | id -> Some id
      in
      for g = 0 to t.cfg.Rt_config.num_gpus - 1 do
        record_ev t g finish barrier_span
      done;
      Event.record_host t.events finish;
      t.clock <- finish
    end
  end

(* ---------------- present table ---------------- *)

let get_darray t env name =
  let host = Host_interp.find_array env name in
  match Hashtbl.find_opt t.darrays name with
  | Some da when da.Darray.host == host -> da
  | Some da ->
      (* The host array was re-declared (new scope/iteration): the old
         device copy belongs to a dead array. Drop it and start fresh. *)
      let xfers = Darray.release t.cfg da in
      charge_host_xfers t ~label:(name ^ ":stale-release") xfers;
      let da = Darray.create t.cfg ~name ~host in
      Hashtbl.replace t.darrays name da;
      da
  | None ->
      let da = Darray.create t.cfg ~name ~host in
      Hashtbl.replace t.darrays name da;
      da

(* ---------------- data regions ---------------- *)

let subarrays_of_clauses clauses =
  List.concat_map
    (function
      | Ast.Cdata (kind, subs) -> List.map (fun s -> (kind, s)) subs
      | Ast.Creduction _ | Ast.Cgang _ | Ast.Cworker _ | Ast.Cvector _ | Ast.Cindependent
      | Ast.Clocalaccess _ | Ast.Cif _ ->
          [])
    clauses

let on_data_enter t env clauses =
  List.iter
    (fun ((kind : Ast.data_kind), (sub : Ast.subarray)) ->
      let da = get_darray t env sub.Ast.sub_array in
      da.Darray.region_depth <- da.Darray.region_depth + 1;
      (* Warm-pool mode keeps device storage alive across regions, but
         the host may have written between them — reload on re-entry so
         the device never computes on stale values. *)
      if
        t.cfg.Rt_config.keep_resident
        && da.Darray.region_depth = 1
        && da.Darray.state <> Darray.Unallocated
      then begin
        let xfers = Darray.load_from_host t.cfg da in
        charge_host_xfers t ~label:(sub.Ast.sub_array ^ ":re-enter") xfers
      end;
      match kind with
      | Ast.Copy | Ast.Copyout -> da.Darray.needs_copyout <- true
      | Ast.Copyin | Ast.Create -> ()
      | Ast.Present ->
          if da.Darray.state = Darray.Unallocated && da.Darray.region_depth <= 1 then
            Loc.error Loc.dummy "present(%s): array is not on the device" sub.Ast.sub_array)
    (subarrays_of_clauses clauses)

let on_data_exit t env clauses =
  List.iter
    (fun ((kind : Ast.data_kind), (sub : Ast.subarray)) ->
      let da = get_darray t env sub.Ast.sub_array in
      (* "exit data copyout(a)" requests the copy at the exit point even if
         the matching enter only did copyin. *)
      (match kind with
      | Ast.Copy | Ast.Copyout -> da.Darray.needs_copyout <- true
      | Ast.Copyin | Ast.Create | Ast.Present -> ());
      da.Darray.region_depth <- da.Darray.region_depth - 1;
      if da.Darray.region_depth <= 0 then
        if t.cfg.Rt_config.keep_resident then begin
          (* Warm-pool mode: satisfy the copyout contract but keep the
             device storage allocated for a possible next region; the
             fleet's admission controller evicts it under pressure. *)
          let xfers = if da.Darray.needs_copyout then Darray.flush_to_host t.cfg da else [] in
          da.Darray.needs_copyout <- false;
          charge_host_xfers t ~label:(sub.Ast.sub_array ^ ":copyout") xfers
        end
        else begin
          let xfers = Darray.release t.cfg da in
          charge_host_xfers t ~label:(sub.Ast.sub_array ^ ":copyout") xfers;
          Hashtbl.remove t.darrays sub.Ast.sub_array
        end)
    (subarrays_of_clauses clauses)

let on_update_host t env subs =
  List.iter
    (fun (sub : Ast.subarray) ->
      let da = get_darray t env sub.Ast.sub_array in
      let xfers = Darray.flush_to_host t.cfg da in
      charge_host_xfers t ~label:(sub.Ast.sub_array ^ ":update-host") xfers)
    subs

let on_update_device t env subs =
  List.iter
    (fun (sub : Ast.subarray) ->
      let da = get_darray t env sub.Ast.sub_array in
      let xfers = Darray.load_from_host t.cfg da in
      charge_host_xfers t ~label:(sub.Ast.sub_array ^ ":update-device") xfers)
    subs

(* ---------------- parallel loops ---------------- *)

let param_types_of env plan =
  List.map
    (fun name ->
      match Host_interp.find_array_opt env name with
      | Some view -> (name, Ast.Tarray view.View.elem)
      | None -> (
          match Host_interp.get_scalar env name with
          | Host_interp.Vint _ -> (name, Ast.Tint)
          | Host_interp.Vfloat _ -> (name, Ast.Tdouble)))
    plan.Kernel_plan.free_vars

let compiled_for t env plan =
  let loc = plan.Kernel_plan.loop.Loop_info.loop_loc in
  match Hashtbl.find_opt t.compiled loc with
  | Some c -> c
  | None ->
      let c = Launch.compile_kernel plan ~param_types:(param_types_of env plan) in
      Hashtbl.replace t.compiled loc c;
      c

(* An [if(cond)] clause that evaluates to zero sends the loop to the host:
   device-fresh data used by the loop flushes out first and the host's
   results push back afterwards, both charged as CPU-GPU traffic — the
   textbook cost of bouncing between memories. *)
let run_on_host t env (loop : Loop_info.t) plan =
  Log.debug (fun m -> m "loop %d: if-clause false, executing on the host" loop.Loop_info.loop_id);
  let arrays =
    List.filter
      (fun name -> Host_interp.find_array_opt env name <> None)
      plan.Kernel_plan.free_vars
  in
  List.iter
    (fun name ->
      let da = get_darray t env name in
      let xfers = Darray.flush_to_host t.cfg da in
      charge_host_xfers t ~label:(name ^ ":if-flush") xfers)
    arrays;
  Host_interp.run_loop_sequentially env loop;
  List.iter
    (fun name ->
      let da = get_darray t env name in
      let xfers = Darray.load_from_host t.cfg da in
      charge_host_xfers t ~label:(name ^ ":if-reload") xfers)
    arrays

let offload_condition env clauses =
  List.for_all
    (function Ast.Cif cond -> Host_interp.eval_float env cond <> 0.0 | _ -> true)
    clauses

(* Everything both launch paths need, computed in the exact order the
   original runtime did (the loader may itself charge a stale-release). *)
type launch_setup = {
  lo : int;
  hi : int;
  iterations : int;
  thread_multiplier : int;
  ranges : Task_map.range array;
  tiling : (int * int * int) option;
      (** [(stride, pr, pc)] when this launch runs 2-D decomposed *)
  col_bounds : (int * int) array option;
      (** per-GPU owned column block of a 2-D launch *)
  arrays : string list;
  prep : Data_loader.prepared;
  t0 : float;  (** clock at region entry, before the loader ran *)
}

(* 2-D launch gate. The plan's static eligibility ([tile2d]) must be met
   by the runtime shape: more than one GPU arranged into a non-trivial
   grid, a row width above 1, every distributed array's length a whole
   number of rows, and no scheduler weights in play (a weighted 1-D split
   and a 2-D grid answer the same question differently — the pinned 1-D
   path wins whenever the scheduler has an opinion). *)
let tiling_of t env plan ~num_gpus ~weighted =
  match plan.Kernel_plan.tile2d with
  | Some t2 when num_gpus > 1 && not weighted -> (
      let stride = Host_interp.eval_int env t2.Mgacc_analysis.Tile2d.stride in
      let pr, pc = Mgacc_analysis.Tile2d.grid_of ~num_gpus in
      if stride <= 1 || pc < 2 then None
      else
        let rows_ok =
          List.for_all
            (fun (c : Mgacc_analysis.Array_config.t) ->
              match Kernel_plan.placement_of plan c.Mgacc_analysis.Array_config.array with
              | Mgacc_analysis.Array_config.Distributed ->
                  let da = get_darray t env c.Mgacc_analysis.Array_config.array in
                  da.Darray.length mod stride = 0 && da.Darray.length / stride >= 1
              | Mgacc_analysis.Array_config.Replicated -> true)
            plan.Kernel_plan.configs
        in
        if rows_ok then Some (stride, pr, pc) else None)
  | _ -> None

let prepare_launch t env (loop : Loop_info.t) plan =
  let lo = Host_interp.eval_int env loop.Loop_info.lower in
  let hi = Host_interp.eval_int env loop.Loop_info.upper in
  let num_gpus = t.cfg.Rt_config.num_gpus in
  Log.debug (fun m ->
      m "loop %d at %s: %d iterations on %d GPU(s)" loop.Loop_info.loop_id
        (Loc.to_string loop.Loop_info.loop_loc) (max 0 (hi - lo)) num_gpus);
  let iterations = max 0 (hi - lo) in
  let thread_multiplier = Kernel_plan.thread_multiplier plan in
  let weights =
    let workload =
      match Kernel_plan.schedule_hint plan with
      | `Uniform -> Mgacc_sched.Scheduler.Uniform
      | `Irregular -> Mgacc_sched.Scheduler.Irregular
    in
    Mgacc_sched.Scheduler.weights_for t.scheduler ~loop_id:loop.Loop_info.loop_id ~iterations
      ~threads_per_iter:thread_multiplier
      ~iter_cost:(Kernel_plan.static_iter_cost plan)
      ~workload
  in
  let tiling = tiling_of t env plan ~num_gpus ~weighted:(weights <> None) in
  let ranges =
    match (weights, tiling) with
    | Some weights, _ -> Task_map.split_weighted ~lower:lo ~upper:(max lo hi) ~weights
    | None, Some (_, pr, pc) ->
        (* Row ranges, duplicated across each row's [pc] column blocks:
           GPU g = (row_block * pc + col_block) iterates its row share
           with the kernel's column restriction selecting its columns. *)
        let row_split = Task_map.split ~lower:lo ~upper:(max lo hi) ~parts:pr in
        Array.init num_gpus (fun g -> row_split.(g / pc))
    | None, None -> Task_map.split ~lower:lo ~upper:(max lo hi) ~parts:num_gpus
  in
  let col_bounds =
    match tiling with
    | Some (stride, _, pc) ->
        let cs = Task_map.split ~lower:0 ~upper:stride ~parts:pc in
        Some
          (Array.init num_gpus (fun g ->
               (cs.(g mod pc).Task_map.start_, cs.(g mod pc).Task_map.stop_)))
    | None -> None
  in
  (match tiling with
  | Some (stride, pr, pc) ->
      Log.debug (fun m ->
          m "loop %d: 2-D launch on a %dx%d grid (row width %d)" loop.Loop_info.loop_id pr pc
            stride)
  | None -> ());
  Hashtbl.replace t.seen_ranges loop.Loop_info.loop_loc ranges;
  let t0 = t.clock in
  (* Phase 1: the data loader makes device copies valid (CPU-GPU). *)
  let arrays =
    List.filter
      (fun name -> Host_interp.find_array_opt env name <> None)
      plan.Kernel_plan.free_vars
  in
  let prep =
    Data_loader.prepare t.cfg
      ?grid:(Option.map (fun (_, pr, pc) -> (pr, pc)) tiling)
      plan ~ranges ~eval_int:(Host_interp.eval_int env) ~get_darray:(get_darray t env) ~arrays
  in
  count_pulls t prep.Data_loader.xfers;
  Log.debug (fun m ->
      m "loop %d: loader moved %d bytes in %d transfer(s)" loop.Loop_info.loop_id
        (List.fold_left
           (fun acc (x : Darray.xfer) -> acc + x.Darray.bytes)
           0 prep.Data_loader.xfers)
        (List.length prep.Data_loader.xfers));
  { lo; hi; iterations; thread_multiplier; ranges; tiling; col_bounds; arrays; prep; t0 }

let bytes_per_iter_of t env arrays =
  List.fold_left
    (fun acc name ->
      let da = get_darray t env name in
      match da.Darray.state with
      | Darray.Distributed d -> acc + (d.Darray.spec.Darray.stride * Darray.elem_bytes da)
      | Darray.Unallocated | Darray.Replicated _ -> acc)
    0 arrays

(* Resolve the translator's static lookahead into a concrete consumer
   window for the communication manager: the next reader's affine
   subscript form evaluated over that loop's last-observed per-GPU
   iteration split. Iterative applications re-run their loops with
   stable bounds, so the memoized split predicts the true windows; a
   reader that never launched yet falls back to ship-everything. Wrong
   predictions cost nothing in correctness — unshipped intervals stay
   stale and are pulled on demand. *)
let next_window_for t plan name =
  if not (Rt_config.lazy_coherence t.cfg) then Comm_manager.Cw_all
  else
    let after = plan.Kernel_plan.loop.Loop_info.loop_loc in
    match Program_plan.next_read t.plans ~after ~array:name with
    | Program_plan.No_future_read -> Comm_manager.Cw_none
    | Program_plan.Reads_next { loop_loc; window } -> (
        match window with
        | Program_plan.Whole_array -> Comm_manager.Cw_all
        | Program_plan.Affine_window { coeff; cmin; cmax } -> (
            match Hashtbl.find_opt t.seen_ranges loop_loc with
            | None -> Comm_manager.Cw_all
            | Some ranges ->
                Comm_manager.Cw_windows
                  (Array.map
                     (fun (rg : Task_map.range) ->
                       if rg.Task_map.stop_ <= rg.Task_map.start_ then
                         Mgacc_util.Interval.Set.empty
                       else begin
                         let lo_it = rg.Task_map.start_ and hi_it = rg.Task_map.stop_ - 1 in
                         let lo, hi =
                           if coeff >= 0 then ((coeff * lo_it) + cmin, (coeff * hi_it) + cmax + 1)
                           else ((coeff * hi_it) + cmin, (coeff * lo_it) + cmax + 1)
                         in
                         Mgacc_util.Interval.Set.of_interval
                           (Mgacc_util.Interval.make (max 0 lo) hi)
                       end)
                     ranges)))

let count_coh t (r : Comm_manager.result) =
  List.iter
    (fun (a, shipped, deferred) -> Profiler.add_coh t.profiler ~array:a ~shipped ~deferred)
    r.Comm_manager.coh

(* Fusion-mode layout transposition: the first launch whose plan reads a
   transposed array materializes the packed copy — a small repack kernel
   per GPU streaming the original layout in and the new one out (~16
   bytes per element). Later launches read the array coalesced at no
   further cost; [t.repacked] makes the charge one-time per session. *)
let relayout_cost elems =
  let c = Mgacc_gpusim.Cost.zero () in
  c.Mgacc_gpusim.Cost.coalesced_bytes <- 16 * elems;
  c

let pending_relayouts t plan =
  List.filter (fun name -> not (Hashtbl.mem t.repacked name)) (Kernel_plan.relayout_arrays plan)

(* Barrier path: repacks run right after the loads, and the launch's
   kernels wait behind them (they read the packed copies). Returns the
   new kernel-ready time and the repack spans as the kernels' causes. *)
let charge_relayouts_barrier t env plan ~ready ~causes =
  List.fold_left
    (fun (ready, causes) name ->
      Hashtbl.replace t.repacked name ();
      Profiler.add_relayout t.profiler;
      let elems = (get_darray t env name).Darray.length in
      let label = "relayout:" ^ name in
      let fin = ref ready and spans = ref [] in
      for g = 0 to t.cfg.Rt_config.num_gpus - 1 do
        let _, finish, sid =
          Machine.launch_kernel_span ~causes t.cfg.Rt_config.machine ~dev:g ~ready ~threads:elems
            ~label (relayout_cost elems)
        in
        fin := Float.max !fin finish;
        spans := sid :: !spans
      done;
      Profiler.add_kernel t.profiler ~seconds:(!fin -. ready);
      Mgacc_obs.Blame.charge t.ledger Mgacc_obs.Blame.Kernel ~label ~exposed:(!fin -. ready)
        ~hidden:0.0 ~spans:!spans;
      (!fin, !spans))
    (ready, causes) (pending_relayouts t plan)

(* Overlap path: each GPU's repack is gated on that device's own
   readiness and advances its event timeline, so only kernels on that
   GPU wait for their local copy. *)
let charge_relayouts_overlap t env plan =
  List.iter
    (fun name ->
      Hashtbl.replace t.repacked name ();
      Profiler.add_relayout t.profiler;
      let elems = (get_darray t env name).Darray.length in
      let label = "relayout:" ^ name in
      let bstart = ref infinity and bfinish = ref 0.0 and spans = ref [] in
      for g = 0 to t.cfg.Rt_config.num_gpus - 1 do
        let ready = Float.max t.clock (Event.gpu_ready t.events g) in
        let start, finish, sid =
          Machine.launch_kernel_span ~causes:(ev_cause t g) t.cfg.Rt_config.machine ~dev:g ~ready
            ~threads:elems ~label (relayout_cost elems)
        in
        record_ev t g finish (Some sid);
        bstart := Float.min !bstart start;
        bfinish := Float.max !bfinish finish;
        spans := sid :: !spans
      done;
      account t ~label ~spans:!spans ~kind:`Kernel ~bytes:0 ~start:!bstart ~finish:!bfinish)
    (pending_relayouts t plan)

let rec on_parallel_loop t env loop =
  Profiler.incr_loops t.profiler;
  let plan = Program_plan.plan_for t.plans loop in
  if not (offload_condition env loop.Loop_info.clauses) then run_on_host t env loop plan
  else begin
    (* One fused launch stands in for all its constituent loops; count
       the launches it saved (k-1 for a group of k) each execution. *)
    (match Program_plan.fused_members t.plans loop with
    | _ :: _ :: _ as members ->
        Profiler.add_fused_kernels t.profiler ~count:(List.length members - 1)
    | _ -> ());
    if t.cfg.Rt_config.overlap then on_parallel_loop_gpu_overlap t env loop plan
    else on_parallel_loop_gpu t env loop plan
  end

(* The original bulk-synchronous launch: every phase is a barrier across
   all GPUs. Kept bit-for-bit — [--overlap off] must reproduce the seed's
   simulated timings exactly. *)
and on_parallel_loop_gpu t env loop plan =
  let s = prepare_launch t env loop plan in
  let num_gpus = t.cfg.Rt_config.num_gpus in
  let reductions = s.prep.Data_loader.reductions in
  (* A scheduler re-split moves deltas directly GPU-to-GPU; those peer
     transfers are inter-GPU traffic, not part of the host load. Under the
     equal-split policy the peer list is always empty and the charge
     sequence is exactly the original one. *)
  let repart_xfers, host_xfers =
    List.partition
      (fun (x : Darray.xfer) ->
        match x.Darray.dir with Fabric.P2p _ -> true | Fabric.H2d _ | Fabric.D2h _ -> false)
      s.prep.Data_loader.xfers
  in
  let t1 = charge_xfers t ~label:"load" ~kind:Cpu_gpu ~ready:s.t0 host_xfers in
  let load_spans = t.last_xfer_spans in
  let t1 = charge_xfers t ~label:"rebalance" ~kind:Gpu_gpu ~ready:t1 repart_xfers in
  let load_spans = load_spans @ t.last_xfer_spans in
  let t1, load_spans = charge_relayouts_barrier t env plan ~ready:t1 ~causes:load_spans in
  (* Phase 2: kernels on all GPUs concurrently (KERNELS). *)
  let compiled = compiled_for t env plan in
  let runs, scalar_partials =
    Launch.run_on_gpus t.cfg ?col_bounds:s.col_bounds plan compiled ~ranges:s.ranges
      ~get_scalar:(Host_interp.get_scalar env)
      ~get_darray:(get_darray t env)
      ~get_reduction:(fun name -> List.assoc_opt name reductions)
  in
  let kspan = Array.make num_gpus (-1) in
  let run_times =
    List.map
      (fun (run : Launch.gpu_run) ->
        assert (run.Launch.iterations > 0);
        Profiler.incr_kernel_launches t.profiler;
        let _, finish, sid =
          Machine.launch_kernel_span ~causes:load_spans t.cfg.Rt_config.machine
            ~dev:run.Launch.gpu ~ready:t1
            ~threads:(run.Launch.iterations * s.thread_multiplier)
            ~label:(Program_plan.kernel_label t.plans loop)
            run.Launch.cost
        in
        kspan.(run.Launch.gpu) <- sid;
        (run.Launch.gpu, run.Launch.iterations, finish -. t1))
      runs
  in
  let kernel_spans = Array.to_list kspan |> List.filter (fun id -> id >= 0) in
  let t2 = List.fold_left (fun acc (_, _, sec) -> Float.max acc (t1 +. sec)) t1 run_times in
  Profiler.add_kernel t.profiler ~seconds:(t2 -. t1);
  Mgacc_obs.Blame.charge t.ledger Mgacc_obs.Blame.Kernel ~label:"kernels" ~exposed:(t2 -. t1)
    ~hidden:0.0 ~spans:kernel_spans;
  (* Feed the scheduler: per-GPU rates and the launch's imbalance. *)
  (match run_times with
  | _ :: _ :: _ ->
      let slow = List.fold_left (fun acc (_, _, sec) -> Float.max acc sec) 0.0 run_times in
      let fast = List.fold_left (fun acc (_, _, sec) -> Float.min acc sec) infinity run_times in
      if slow > 0.0 then Profiler.add_imbalance t.profiler ~ratio:((slow -. fast) /. slow)
  | [] | [ _ ] -> ());
  let iters_per_gpu = Array.make num_gpus 0 and secs_per_gpu = Array.make num_gpus 0.0 in
  List.iter
    (fun (g, n, sec) ->
      iters_per_gpu.(g) <- n;
      secs_per_gpu.(g) <- sec)
    run_times;
  let bytes_per_iter = bytes_per_iter_of t env s.arrays in
  (* A 2-D launch duplicates row ranges across column blocks; feeding
     those to the scheduler would teach it weights that disable tiling on
     the next launch (and flip-flop after). The 2-D grid is static. *)
  if
    s.tiling = None
    && Mgacc_sched.Scheduler.observe t.scheduler ~loop_id:loop.Loop_info.loop_id
         ~iterations:iters_per_gpu ~seconds:secs_per_gpu ~total_iterations:s.iterations
         ~bytes_per_iter
  then Profiler.incr_rebalances t.profiler;
  (* Phase 3: inter-GPU reconciliation (GPU-GPU). *)
  let wrote _ = s.hi > s.lo in
  let rec_result =
    Comm_manager.reconcile t.cfg plan ~get_darray:(get_darray t env) ~reductions ~wrote
      ~next_window:(next_window_for t plan)
  in
  count_coh t rec_result;
  let rec_xfers = Comm_manager.xfers_of rec_result in
  let t2', scan_span =
    Machine.overhead_span ~causes:kernel_spans t.cfg.Rt_config.machine ~ready:t2
      ~seconds:rec_result.Comm_manager.scan_seconds ~label:"dirty-scan"
  in
  Profiler.add_overhead t.profiler ~seconds:(t2' -. t2);
  Mgacc_obs.Blame.charge t.ledger Mgacc_obs.Blame.Overhead ~label:"dirty-scan"
    ~exposed:(t2' -. t2) ~hidden:0.0 ~spans:(Option.to_list scan_span);
  (* Reconciliation transfers are gated (by the barrier) on the writer's
     kernel and the dirty scan; cite both so the trace DAG shows it. *)
  let barrier_cause src =
    (if src >= 0 && src < num_gpus && kspan.(src) >= 0 then [ kspan.(src) ] else [])
    @ Option.to_list scan_span
  in
  let xfer_causes (x : Darray.xfer) =
    match x.Darray.dir with
    | Fabric.P2p (a, _) -> barrier_cause a
    | Fabric.H2d g | Fabric.D2h g -> barrier_cause g
  in
  Log.debug (fun m ->
      m "loop %d: reconciliation ships %d bytes in %d transfer(s)" loop.Loop_info.loop_id
        (List.fold_left (fun acc (x : Darray.xfer) -> acc + x.Darray.bytes) 0 rec_xfers)
        (List.length rec_xfers));
  let t3 =
    if not (Rt_config.planned_collectives t.cfg) then
      charge_xfers ~causes:xfer_causes t ~label:"comm" ~kind:Gpu_gpu ~ready:t2' rec_xfers
    else begin
      (* Collective planning: broadcast groups among the ops reshape into
         ring / hierarchical / segmented schedules; the whole plan charges
         as one GPU-GPU phase spanning its wavefront batches. *)
      let cplan, cstats =
        Collective.plan ~cfg:t.cfg ~fabric:(fabric_of t) rec_result.Comm_manager.ops
      in
      count_collective_stats t cstats;
      if Array.length cplan = 0 then t2'
      else begin
        let bytes = ref 0 in
        let comm_spans = ref [] in
        let fin =
          Collective.execute ~plan:cplan
            ~base_causes:(fun (it : Collective.item) ->
              match it.Collective.dir with
              | Fabric.P2p (a, _) -> barrier_cause a
              | Fabric.H2d g | Fabric.D2h g -> barrier_cause g)
            ~base_ready:(fun _ -> t2')
            ~run:(fun reqs ->
              bytes :=
                List.fold_left (fun a ((r : Fabric.request), _) -> a + r.Fabric.bytes) !bytes reqs;
              count_wire_bytes t (List.map fst reqs);
              Machine.run_transfers_spans t.cfg.Rt_config.machine ~label:"comm" reqs)
            ~on_complete:(fun _ _ sid ->
              match sid with Some id -> comm_spans := id :: !comm_spans | None -> ())
            ()
        in
        Profiler.add_gpu_gpu t.profiler ~seconds:(Float.max 0.0 (fin -. t2')) ~bytes:!bytes;
        Mgacc_obs.Blame.charge t.ledger Mgacc_obs.Blame.Gpu_gpu ~label:"comm"
          ~exposed:(Float.max 0.0 (fin -. t2'))
          ~hidden:0.0 ~spans:(List.rev !comm_spans);
        Float.max t2' fin
      end
    end
  in
  let replay_spans = ref [] in
  let t4 =
    List.fold_left
      (fun acc (gpu, cost, label) ->
        let _, finish, sid =
          Machine.launch_kernel_span ~causes:(barrier_cause gpu) t.cfg.Rt_config.machine ~dev:gpu
            ~ready:t3 ~threads:1024 ~label cost
        in
        replay_spans := sid :: !replay_spans;
        Float.max acc finish)
      t3
      (Comm_manager.gpu_kernel_costs_of rec_result)
  in
  Profiler.add_gpu_gpu t.profiler ~seconds:(t4 -. t3) ~bytes:0;
  Mgacc_obs.Blame.charge t.ledger Mgacc_obs.Blame.Gpu_gpu ~label:"replay" ~exposed:(t4 -. t3)
    ~hidden:0.0 ~spans:(List.rev !replay_spans);
  (* Phase 4: fold scalar-reduction partials into the host scalars. *)
  let t5 =
    if scalar_partials = [] then t4
    else begin
      let reqs =
        List.concat_map
          (fun (run : Launch.gpu_run) ->
            List.map
              (fun (name, _, _) ->
                ( {
                    Fabric.direction = Fabric.D2h run.Launch.gpu;
                    bytes = 8;
                    ready = t4;
                    tag = name ^ ":scalar-red";
                  },
                  barrier_cause run.Launch.gpu ))
              scalar_partials)
          runs
      in
      let completions =
        Machine.run_transfers_spans t.cfg.Rt_config.machine ~label:"scalar-red" reqs
      in
      let finish =
        List.fold_left (fun acc ((c : Fabric.completion), _) -> Float.max acc c.Fabric.finish) t4
          completions
      in
      Profiler.add_cpu_gpu t.profiler ~seconds:(finish -. t4) ~bytes:(8 * List.length reqs);
      Mgacc_obs.Blame.charge t.ledger Mgacc_obs.Blame.Cpu_gpu ~label:"scalar-red"
        ~exposed:(finish -. t4) ~hidden:0.0 ~spans:(List.filter_map snd completions);
      fold_scalar_partials env scalar_partials;
      finish
    end
  in
  t.clock <- t5;
  Profiler.record_memory_peaks t.profiler t.cfg.Rt_config.machine ~num_gpus

(* The overlap engine (docs/OVERLAP.md): instead of barriers between the
   load / kernel / reconcile / replay phases, every operation is gated on
   the completion events it actually depends on. Per-GPU event timelines
   persist across launches, so a launch's reconciliation drains while the
   host runs ahead and the next launch's fast GPUs start early. *)
and on_parallel_loop_gpu_overlap t env loop plan =
  let s = prepare_launch t env loop plan in
  let num_gpus = t.cfg.Rt_config.num_gpus in
  let machine = t.cfg.Rt_config.machine in
  let reductions = s.prep.Data_loader.reductions in
  Profiler.add_prefetch_hits t.profiler ~count:(List.length s.prep.Data_loader.reused);
  (* Phase 1: loads, each gated on its own endpoints — a GPU whose copy is
     still streaming in does not hold back the others. *)
  let ready_for (x : Darray.xfer) =
    match x.Darray.dir with
    | Fabric.H2d g | Fabric.D2h g -> Float.max t.clock (Event.gpu_ready t.events g)
    | Fabric.P2p (a, b) ->
        Float.max t.clock
          (Float.max (Event.gpu_ready t.events a) (Event.gpu_ready t.events b))
  in
  let mk_req (x : Darray.xfer) =
    let causes =
      match x.Darray.dir with
      | Fabric.H2d g | Fabric.D2h g -> ev_cause t g
      | Fabric.P2p (a, b) -> List.sort_uniq compare (ev_cause t a @ ev_cause t b)
    in
    ( { Fabric.direction = x.Darray.dir; bytes = x.Darray.bytes; ready = ready_for x; tag = x.Darray.tag },
      causes )
  in
  let record_endpoints ((c : Fabric.completion), sid) =
    match c.Fabric.req.Fabric.direction with
    | Fabric.H2d g | Fabric.D2h g -> record_ev t g c.Fabric.finish sid
    | Fabric.P2p (a, b) ->
        record_ev t a c.Fabric.finish sid;
        record_ev t b c.Fabric.finish sid
  in
  let repart_xfers, host_xfers =
    List.partition
      (fun (x : Darray.xfer) ->
        match x.Darray.dir with Fabric.P2p _ -> true | Fabric.H2d _ | Fabric.D2h _ -> false)
      s.prep.Data_loader.xfers
  in
  List.iter record_endpoints
    (run_batch_overlap t ~label:"load" ~kind:`Cpu_gpu (List.map mk_req host_xfers));
  List.iter record_endpoints
    (run_batch_overlap t ~label:"rebalance" ~kind:`Gpu_gpu (List.map mk_req repart_xfers));
  charge_relayouts_overlap t env plan;
  (* Phase 2: kernels, each starting as soon as its own device is ready. *)
  let compiled = compiled_for t env plan in
  let runs, scalar_partials =
    Launch.run_on_gpus t.cfg ?col_bounds:s.col_bounds plan compiled ~ranges:s.ranges
      ~get_scalar:(Host_interp.get_scalar env)
      ~get_darray:(get_darray t env)
      ~get_reduction:(fun name -> List.assoc_opt name reductions)
  in
  let kfin = Array.init num_gpus (fun g -> Float.max t.clock (Event.gpu_ready t.events g)) in
  let kstart = Array.copy kfin in
  let kspan = Array.make num_gpus (-1) in
  let spans =
    List.map
      (fun (run : Launch.gpu_run) ->
        assert (run.Launch.iterations > 0);
        Profiler.incr_kernel_launches t.profiler;
        let g = run.Launch.gpu in
        let start, finish, sid =
          Machine.launch_kernel_span ~causes:(ev_cause t g) machine ~dev:g
            ~ready:(Float.max t.clock (Event.gpu_ready t.events g))
            ~threads:(run.Launch.iterations * s.thread_multiplier)
            ~label:(Program_plan.kernel_label t.plans loop)
            run.Launch.cost
        in
        kstart.(g) <- start;
        kfin.(g) <- finish;
        kspan.(g) <- sid;
        record_ev t g finish (Some sid);
        (run, start, finish))
      runs
  in
  (match spans with
  | [] -> ()
  | _ ->
      let bstart = List.fold_left (fun acc (_, st, _) -> Float.min acc st) infinity spans in
      let bfinish = List.fold_left (fun acc (_, _, fi) -> Float.max acc fi) 0.0 spans in
      let kids = Array.to_list kspan |> List.filter (fun id -> id >= 0) in
      account t ~label:"kernels" ~spans:kids ~kind:`Kernel ~bytes:0 ~start:bstart ~finish:bfinish);
  (* Feed the scheduler from events: per-GPU busy spans, not a shared t1. *)
  (match spans with
  | _ :: _ :: _ ->
      let slow = List.fold_left (fun acc (_, st, fi) -> Float.max acc (fi -. st)) 0.0 spans in
      let fast =
        List.fold_left (fun acc (_, st, fi) -> Float.min acc (fi -. st)) infinity spans
      in
      if slow > 0.0 then Profiler.add_imbalance t.profiler ~ratio:((slow -. fast) /. slow)
  | [] | [ _ ] -> ());
  let iters_per_gpu = Array.make num_gpus 0 in
  List.iter (fun (run, _, _) -> iters_per_gpu.(run.Launch.gpu) <- run.Launch.iterations) spans;
  let bytes_per_iter = bytes_per_iter_of t env s.arrays in
  (* Like the barrier path: duplicated 2-D row ranges must not train the
     scheduler's weights (they would disable tiling on the next launch). *)
  if
    s.tiling = None
    && Mgacc_sched.Scheduler.observe_events t.scheduler ~loop_id:loop.Loop_info.loop_id
         ~iterations:iters_per_gpu ~starts:kstart ~finishes:kfin ~total_iterations:s.iterations
         ~bytes_per_iter
  then Profiler.incr_rebalances t.profiler;
  (* Phase 3: reconciliation as a dependency DAG. Wave 1 carries every op
     whose inputs exist at its source's kernel finish: dirty chunks (after
     that array's scan on the writing GPU), miss shipments, reduction
     gathers, and halos of arrays with no pending replay. Replay and
     combine kernels run gated on the arrival of exactly their inputs.
     Wave 2 carries what those kernels produce: halos of replayed arrays
     and reduction broadcasts. *)
  let wrote _ = s.hi > s.lo in
  let r =
    Comm_manager.reconcile t.cfg plan ~get_darray:(get_darray t env) ~reductions ~wrote
      ~next_window:(next_window_for t plan)
  in
  count_coh t r;
  let scan_tbl = Hashtbl.create 8 in
  List.iter (fun (g, a, sec) -> Hashtbl.replace scan_tbl (g, a) sec) r.Comm_manager.scans;
  let scan_of g a = Option.value ~default:0.0 (Hashtbl.find_opt scan_tbl (g, a)) in
  let miss_arrival = Hashtbl.create 8 in
  let gather_arrival = Hashtbl.create 8 in
  let replay_fin = Hashtbl.create 8 in
  let combine_fin = Hashtbl.create 8 in
  let bcast_arrival = Hashtbl.create 8 in
  (* Span mirrors of the arrival tables: the trace span id that set each
     arrival time, so dependents can cite their actual producer. *)
  let miss_span = Hashtbl.create 8 in
  let gather_span = Hashtbl.create 8 in
  let replay_span = Hashtbl.create 8 in
  let combine_span = Hashtbl.create 8 in
  let bcast_span = Hashtbl.create 8 in
  let bump2 tbl stbl key v sid =
    match Hashtbl.find_opt tbl key with
    | Some x when x >= v -> ()
    | _ ->
        Hashtbl.replace tbl key v;
        (match sid with Some id -> Hashtbl.replace stbl key id | None -> Hashtbl.remove stbl key)
  in
  let span_find stbl key =
    match Hashtbl.find_opt stbl key with Some id -> [ id ] | None -> []
  in
  let kcause g = if kspan.(g) >= 0 then [ kspan.(g) ] else [] in
  let has_replay a =
    List.exists (fun (k : Comm_manager.gpu_kernel) -> k.Comm_manager.array = a) r.Comm_manager.replays
  in
  let wave1, wave2 =
    List.partition
      (fun (op : Comm_manager.op) ->
        match op.Comm_manager.kind with
        | Comm_manager.Red_bcast -> false
        | Comm_manager.Halo_segment -> not (has_replay op.Comm_manager.array)
        | Comm_manager.Dirty_chunk | Comm_manager.Miss_ship | Comm_manager.Red_gather -> true)
      r.Comm_manager.ops
  in
  let op_req ~wave (op : Comm_manager.op) =
    let src, dst =
      match op.Comm_manager.dir with
      | Fabric.P2p (a, b) -> (a, b)
      | Fabric.H2d g | Fabric.D2h g -> (g, g)
    in
    let a = op.Comm_manager.array in
    let ready =
      match op.Comm_manager.kind with
      | Comm_manager.Dirty_chunk ->
          (* Staged at the source, so only the producer gates it: its own
             kernel finish plus this array's dirty-bit scan. *)
          kfin.(src) +. scan_of src a
      | Comm_manager.Miss_ship | Comm_manager.Red_gather -> kfin.(src)
      | Comm_manager.Red_bcast ->
          let base =
            match Hashtbl.find_opt combine_fin a with
            | Some f -> f
            | None -> (
                match Hashtbl.find_opt gather_arrival a with Some f -> f | None -> kfin.(src))
          in
          (* A binomial-tree edge (lazy coherence, round > 0) additionally
             waits for its source to have received the result in the
             previous round; star broadcasts never populate this table
             before their single batch runs, so eager timing is
             untouched. *)
          let parent = Option.value ~default:0.0 (Hashtbl.find_opt bcast_arrival (a, src)) in
          Float.max (Float.max base kfin.(src)) parent
      | Comm_manager.Halo_segment ->
          (* No staging: the owner's live partition is read while the
             consumer's halo region is overwritten, so both ends gate. *)
          let base = Float.max kfin.(src) kfin.(dst) in
          if wave = 2 then
            Float.max base (Option.value ~default:0.0 (Hashtbl.find_opt replay_fin (src, a)))
          else base
    in
    { Fabric.direction = op.Comm_manager.dir; bytes = op.Comm_manager.bytes; ready; tag = op.Comm_manager.tag }
  in
  (* Span-level mirror of [op_req]'s readiness: the producer spans whose
     finish times the op's ready instant was computed from. *)
  let op_causes ~wave (op : Comm_manager.op) =
    let src, dst =
      match op.Comm_manager.dir with
      | Fabric.P2p (a, b) -> (a, b)
      | Fabric.H2d g | Fabric.D2h g -> (g, g)
    in
    let a = op.Comm_manager.array in
    let causes =
      match op.Comm_manager.kind with
      | Comm_manager.Dirty_chunk | Comm_manager.Miss_ship | Comm_manager.Red_gather -> kcause src
      | Comm_manager.Red_bcast ->
          let base =
            match span_find combine_span a with
            | [] -> ( match span_find gather_span a with [] -> kcause src | l -> l)
            | l -> l
          in
          base @ kcause src @ span_find bcast_span (a, src)
      | Comm_manager.Halo_segment ->
          let base = kcause src @ kcause dst in
          if wave = 2 then base @ span_find replay_span (src, a) else base
    in
    List.sort_uniq compare causes
  in
  let handle_completion (op : Comm_manager.op) ((c : Fabric.completion), sid) =
    let fin = c.Fabric.finish in
    match (op.Comm_manager.kind, op.Comm_manager.dir) with
    | Comm_manager.Dirty_chunk, Fabric.P2p (_, dst) -> record_ev t dst fin sid
    | Comm_manager.Miss_ship, Fabric.P2p (_, dst) ->
        bump2 miss_arrival miss_span (dst, op.Comm_manager.array) fin sid
    | Comm_manager.Red_gather, Fabric.P2p _ ->
        bump2 gather_arrival gather_span op.Comm_manager.array fin sid
    | Comm_manager.Red_bcast, Fabric.P2p (_, dst) ->
        bump2 bcast_arrival bcast_span (op.Comm_manager.array, dst) fin sid;
        record_ev t dst fin sid
    | Comm_manager.Halo_segment, Fabric.P2p (src, dst) ->
        record_ev t src fin sid;
        record_ev t dst fin sid
    | _, (Fabric.H2d g | Fabric.D2h g) -> record_ev t g fin sid
  in
  (* Base readiness of a planned item: the op_req logic, applied to the
     item's actual path. First hops gate like their logical op; forwarded
     hops are gated by their explicit plan dependencies (a forwarding GPU
     ships a staged payload, not its own kernel output), with the
     forwarder's kernel finish kept for broadcast results — mirroring the
     direct tree, where an edge waits on its source GPU's kernel. *)
  let planned_ready ~wave (it : Collective.item) =
    let op = it.Collective.op in
    let isrc, idst =
      match it.Collective.dir with
      | Fabric.P2p (a, b) -> (a, b)
      | Fabric.H2d g | Fabric.D2h g -> (g, g)
    in
    let osrc =
      match op.Comm_manager.dir with
      | Fabric.P2p (a, _) -> a
      | Fabric.H2d g | Fabric.D2h g -> g
    in
    let a = op.Comm_manager.array in
    match op.Comm_manager.kind with
    | Comm_manager.Dirty_chunk ->
        if isrc = osrc then kfin.(isrc) +. scan_of isrc a else t.clock
    | Comm_manager.Miss_ship | Comm_manager.Red_gather -> kfin.(isrc)
    | Comm_manager.Red_bcast ->
        let base =
          match Hashtbl.find_opt combine_fin a with
          | Some f -> f
          | None -> (
              match Hashtbl.find_opt gather_arrival a with Some f -> f | None -> kfin.(osrc))
        in
        Float.max base kfin.(isrc)
    | Comm_manager.Halo_segment ->
        let base = Float.max kfin.(isrc) kfin.(idst) in
        if wave = 2 then
          Float.max base (Option.value ~default:0.0 (Hashtbl.find_opt replay_fin (isrc, a)))
        else base
  in
  (* Span-level mirror of [planned_ready], per hop of the item's path. *)
  let planned_causes ~wave (it : Collective.item) =
    let op = it.Collective.op in
    let isrc, idst =
      match it.Collective.dir with
      | Fabric.P2p (a, b) -> (a, b)
      | Fabric.H2d g | Fabric.D2h g -> (g, g)
    in
    let osrc =
      match op.Comm_manager.dir with
      | Fabric.P2p (a, _) -> a
      | Fabric.H2d g | Fabric.D2h g -> g
    in
    let a = op.Comm_manager.array in
    let causes =
      match op.Comm_manager.kind with
      | Comm_manager.Dirty_chunk -> if isrc = osrc then kcause isrc else []
      | Comm_manager.Miss_ship | Comm_manager.Red_gather -> kcause isrc
      | Comm_manager.Red_bcast ->
          let base =
            match span_find combine_span a with
            | [] -> ( match span_find gather_span a with [] -> kcause osrc | l -> l)
            | l -> l
          in
          base @ kcause isrc
      | Comm_manager.Halo_segment ->
          let base = kcause isrc @ kcause idst in
          if wave = 2 then base @ span_find replay_span (isrc, a) else base
    in
    List.sort_uniq compare causes
  in
  let run_planned ~wave ops =
    let cplan, cstats = Collective.plan ~cfg:t.cfg ~fabric:(fabric_of t) ops in
    count_collective_stats t cstats;
    ignore
      (Collective.execute ~plan:cplan ~base_causes:(planned_causes ~wave)
         ~base_ready:(planned_ready ~wave)
         ~run:(run_batch_overlap t ~label:"comm" ~kind:`Gpu_gpu)
         ~on_complete:(fun (it : Collective.item) c sid ->
           handle_completion it.Collective.op (c, sid))
         ())
  in
  let planned = Rt_config.planned_collectives t.cfg in
  if planned then run_planned ~wave:1 wave1
  else
    List.iter2 handle_completion wave1
      (run_batch_overlap t ~label:"comm" ~kind:`Gpu_gpu
         (List.map (fun op -> (op_req ~wave:1 op, op_causes ~wave:1 op)) wave1));
  (* Replay and combine kernels, each gated on its own inputs. *)
  let small_spans = ref [] in
  List.iter
    (fun (k : Comm_manager.gpu_kernel) ->
      let g = k.Comm_manager.gpu in
      let ready =
        Float.max kfin.(g)
          (Option.value ~default:0.0 (Hashtbl.find_opt miss_arrival (g, k.Comm_manager.array)))
      in
      let causes =
        List.sort_uniq compare (kcause g @ span_find miss_span (g, k.Comm_manager.array))
      in
      let start, finish, sid =
        Machine.launch_kernel_span ~causes machine ~dev:g ~ready ~threads:1024
          ~label:k.Comm_manager.label k.Comm_manager.cost
      in
      Hashtbl.replace replay_fin (g, k.Comm_manager.array) finish;
      Hashtbl.replace replay_span (g, k.Comm_manager.array) sid;
      record_ev t g finish (Some sid);
      small_spans := (start, finish, sid) :: !small_spans)
    r.Comm_manager.replays;
  List.iter
    (fun (k : Comm_manager.gpu_kernel) ->
      let g = k.Comm_manager.gpu in
      let ready =
        Float.max kfin.(g)
          (Option.value ~default:0.0 (Hashtbl.find_opt gather_arrival k.Comm_manager.array))
      in
      let causes =
        List.sort_uniq compare (kcause g @ span_find gather_span k.Comm_manager.array)
      in
      let start, finish, sid =
        Machine.launch_kernel_span ~causes machine ~dev:g ~ready ~threads:1024
          ~label:k.Comm_manager.label k.Comm_manager.cost
      in
      Hashtbl.replace combine_fin k.Comm_manager.array finish;
      Hashtbl.replace combine_span k.Comm_manager.array sid;
      record_ev t g finish (Some sid);
      small_spans := (start, finish, sid) :: !small_spans)
    r.Comm_manager.combines;
  (match !small_spans with
  | [] -> ()
  | spans ->
      let st = List.fold_left (fun acc (a, _, _) -> Float.min acc a) infinity spans in
      let fi = List.fold_left (fun acc (_, b, _) -> Float.max acc b) 0.0 spans in
      let ids = List.rev_map (fun (_, _, id) -> id) spans in
      account t ~label:"replay" ~spans:ids ~kind:`Gpu_gpu ~bytes:0 ~start:st ~finish:fi);
  (* Wave 2 runs in broadcast-round order: ops of round [r+1] (binomial
     tree edges) only become ready once round [r] completions have been
     recorded. Eager mode puts every op in round 0, reproducing the
     original single batch exactly. *)
  if planned then run_planned ~wave:2 wave2
  else begin
    let wave2_rounds =
      List.sort_uniq compare (List.map (fun (op : Comm_manager.op) -> op.Comm_manager.round) wave2)
    in
    List.iter
      (fun round ->
        let ops =
          List.filter (fun (op : Comm_manager.op) -> op.Comm_manager.round = round) wave2
        in
        List.iter2 handle_completion ops
          (run_batch_overlap t ~label:"comm" ~kind:`Gpu_gpu
             (List.map (fun op -> (op_req ~wave:2 op, op_causes ~wave:2 op)) ops)))
      wave2_rounds
  end;
  (* Phase 4: scalar-reduction partials. Only these block the host — a
     launch with no scalar result returns control immediately, which is
     where the cross-launch overlap comes from. *)
  if scalar_partials <> [] then begin
    let reqs =
      List.concat_map
        (fun (run : Launch.gpu_run) ->
          List.map
            (fun (name, _, _) ->
              ( {
                  Fabric.direction = Fabric.D2h run.Launch.gpu;
                  bytes = 8;
                  ready = kfin.(run.Launch.gpu);
                  tag = name ^ ":scalar-red";
                },
                kcause run.Launch.gpu ))
            scalar_partials)
        runs
    in
    let completions = run_batch_overlap t ~label:"scalar-red" ~kind:`Cpu_gpu reqs in
    let finish =
      List.fold_left
        (fun acc ((c : Fabric.completion), _) -> Float.max acc c.Fabric.finish)
        t.clock completions
    in
    fold_scalar_partials env scalar_partials;
    Event.record_host t.events finish;
    t.clock <- Float.max t.clock finish
  end;
  Profiler.record_memory_peaks t.profiler t.cfg.Rt_config.machine ~num_gpus

and fold_scalar_partials env scalar_partials =
  List.iter
    (fun (name, op, partials) ->
      let current = Host_interp.get_scalar env name in
      let result =
        List.fold_left
          (fun acc v ->
            match (acc, v) with
            | Host_interp.Vfloat a, Host_interp.Vfloat b ->
                Host_interp.Vfloat (View.apply_redop_f op a b)
            | Host_interp.Vint a, Host_interp.Vint b -> Host_interp.Vint (View.apply_redop_i op a b)
            | Host_interp.Vfloat a, Host_interp.Vint b ->
                Host_interp.Vfloat (View.apply_redop_f op a (float_of_int b))
            | Host_interp.Vint a, Host_interp.Vfloat b ->
                Host_interp.Vfloat (View.apply_redop_f op (float_of_int a) b))
          current partials
      in
      Host_interp.set_scalar env name result)
    scalar_partials

(* ---------------- wiring ---------------- *)

let hooks t =
  {
    Host_interp.on_parallel_loop = (fun env loop -> on_parallel_loop t env loop);
    on_data_enter = (fun env clauses -> on_data_enter t env clauses);
    on_data_exit = (fun env clauses -> on_data_exit t env clauses);

    on_update_host = (fun env subs -> on_update_host t env subs);
    on_update_device = (fun env subs -> on_update_device t env subs);
  }

let finish ?(keep_resident = false) t =
  if keep_resident then
    (* Warm-pool finish: flush what must reach the host, keep everything
       allocated. The session's present table survives as the fleet's
       warm entry — the admission controller spills it under pressure. *)
    Hashtbl.iter
      (fun name da ->
        if da.Darray.needs_copyout then begin
          let xfers = Darray.flush_to_host t.cfg da in
          da.Darray.needs_copyout <- false;
          charge_host_xfers t ~label:(name ^ ":final") xfers
        end)
      t.darrays
  else begin
    Hashtbl.iter
      (fun name da ->
        (* Arrays that never sat in a data region flush their results back so
           host code can read them after the program. *)
        da.Darray.needs_copyout <- da.Darray.needs_copyout || da.Darray.device_fresh;
        let xfers = Darray.release t.cfg da in
        charge_host_xfers t ~label:(name ^ ":final") xfers)
      t.darrays;
    Hashtbl.reset t.darrays
  end;
  (* In overlap mode the program ends when the last in-flight op lands. *)
  if t.cfg.Rt_config.overlap then t.clock <- Float.max t.clock t.horizon;
  Profiler.record_memory_peaks t.profiler t.cfg.Rt_config.machine ~num_gpus:t.cfg.Rt_config.num_gpus

let execute t program =
  (* Run the plans' own program: when fusion rewrote the source, the host
     must interpret the rewritten loops the plans were built from (with
     the pass off this is physically the program that was passed in). *)
  ignore (program : Mgacc_minic.Ast.program);
  let env = Host_interp.run_program ~hooks:(hooks t) (Program_plan.program t.plans) in
  finish ~keep_resident:t.cfg.Rt_config.keep_resident t;
  env

let blame t =
  Mgacc_obs.Blame.summarize t.ledger ~trace:t.cfg.Rt_config.machine.Machine.trace

let report ?variant t =
  let variant =
    match variant with
    | Some v -> v
    | None -> Printf.sprintf "proposal(%d)" t.cfg.Rt_config.num_gpus
  in
  let r =
    Report.of_profiler t.profiler ~machine:t.cfg.Rt_config.machine.Machine.name ~variant
      ~num_gpus:t.cfg.Rt_config.num_gpus
  in
  Report.with_queue r ~seconds:(Session.queue_seconds t)

let run ?config ?variant ?(with_blame = false) ~machine program =
  let cfg = match config with Some c -> c | None -> Rt_config.make machine in
  (* A reused machine carries timeline availability from earlier runs;
     reset so back-to-back runs in one process match fresh-process runs
     (shared-machine contention is the fleet's job, not [run]'s). *)
  Machine.reset cfg.Rt_config.machine;
  let plans = Program_plan.build ~options:cfg.Rt_config.translator program in
  let t = create cfg plans in
  (* Interpret the plans' program, not the input: fusion may have
     rewritten it (identical when the pass is off). *)
  let env = Host_interp.run_program ~hooks:(hooks t) (Program_plan.program plans) in
  finish t;
  let variant =
    match variant with
    | Some v -> v
    | None -> Printf.sprintf "proposal(%d)" cfg.Rt_config.num_gpus
  in
  let r =
    Report.of_profiler t.profiler ~machine:machine.Machine.name ~variant
      ~num_gpus:cfg.Rt_config.num_gpus
  in
  let r = if with_blame then Report.with_blame r (blame t) else r in
  (env, r)
