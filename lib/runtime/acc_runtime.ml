open Mgacc_minic
module Machine = Mgacc_gpusim.Machine
module Fabric = Mgacc_gpusim.Fabric
module Host_interp = Mgacc_exec.Host_interp
module View = Mgacc_exec.View
module Kernel_plan = Mgacc_translator.Kernel_plan
module Program_plan = Mgacc_translator.Program_plan
module Loop_info = Mgacc_analysis.Loop_info

let log_src = Logs.Src.create "mgacc.runtime" ~doc:"multi-GPU OpenACC runtime"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  cfg : Rt_config.t;
  plans : Program_plan.t;
  profiler : Profiler.t;
  scheduler : Mgacc_sched.Scheduler.t;
  darrays : (string, Darray.t) Hashtbl.t;
  compiled : (Loc.t, Launch.compiled) Hashtbl.t;
  mutable clock : float;
}

let create cfg plans =
  {
    cfg;
    plans;
    profiler = Profiler.create ();
    scheduler =
      Mgacc_sched.Scheduler.create ~machine:cfg.Rt_config.machine
        ~num_gpus:cfg.Rt_config.num_gpus ~policy:cfg.Rt_config.schedule
        ~knobs:cfg.Rt_config.sched_knobs;
    darrays = Hashtbl.create 16;
    compiled = Hashtbl.create 16;
    clock = 0.0;
  }

let profiler t = t.profiler
let now t = t.clock

(* ---------------- transfer charging ---------------- *)

type batch_kind = Cpu_gpu | Gpu_gpu

let charge_xfers t ~label ~kind ~ready (xfers : Darray.xfer list) =
  if xfers = [] then ready
  else begin
    let reqs =
      List.map
        (fun (x : Darray.xfer) ->
          { Fabric.direction = x.Darray.dir; bytes = x.Darray.bytes; ready; tag = x.Darray.tag })
        xfers
    in
    let completions = Machine.run_transfers t.cfg.Rt_config.machine ~label reqs in
    let finish =
      List.fold_left (fun acc (c : Fabric.completion) -> Float.max acc c.Fabric.finish) ready
        completions
    in
    let bytes = List.fold_left (fun acc (x : Darray.xfer) -> acc + x.Darray.bytes) 0 xfers in
    (match kind with
    | Cpu_gpu -> Profiler.add_cpu_gpu t.profiler ~seconds:(finish -. ready) ~bytes
    | Gpu_gpu -> Profiler.add_gpu_gpu t.profiler ~seconds:(finish -. ready) ~bytes);
    finish
  end

(* ---------------- present table ---------------- *)

let get_darray t env name =
  let host = Host_interp.find_array env name in
  match Hashtbl.find_opt t.darrays name with
  | Some da when da.Darray.host == host -> da
  | Some da ->
      (* The host array was re-declared (new scope/iteration): the old
         device copy belongs to a dead array. Drop it and start fresh. *)
      let xfers = Darray.release t.cfg da in
      t.clock <- charge_xfers t ~label:(name ^ ":stale-release") ~kind:Cpu_gpu ~ready:t.clock xfers;
      let da = Darray.create t.cfg ~name ~host in
      Hashtbl.replace t.darrays name da;
      da
  | None ->
      let da = Darray.create t.cfg ~name ~host in
      Hashtbl.replace t.darrays name da;
      da

(* ---------------- data regions ---------------- *)

let subarrays_of_clauses clauses =
  List.concat_map
    (function
      | Ast.Cdata (kind, subs) -> List.map (fun s -> (kind, s)) subs
      | Ast.Creduction _ | Ast.Cgang _ | Ast.Cworker _ | Ast.Cvector _ | Ast.Cindependent
      | Ast.Clocalaccess _ | Ast.Cif _ ->
          [])
    clauses

let on_data_enter t env clauses =
  List.iter
    (fun ((kind : Ast.data_kind), (sub : Ast.subarray)) ->
      let da = get_darray t env sub.Ast.sub_array in
      da.Darray.region_depth <- da.Darray.region_depth + 1;
      match kind with
      | Ast.Copy | Ast.Copyout -> da.Darray.needs_copyout <- true
      | Ast.Copyin | Ast.Create -> ()
      | Ast.Present ->
          if da.Darray.state = Darray.Unallocated && da.Darray.region_depth <= 1 then
            Loc.error Loc.dummy "present(%s): array is not on the device" sub.Ast.sub_array)
    (subarrays_of_clauses clauses)

let on_data_exit t env clauses =
  List.iter
    (fun ((kind : Ast.data_kind), (sub : Ast.subarray)) ->
      let da = get_darray t env sub.Ast.sub_array in
      (* "exit data copyout(a)" requests the copy at the exit point even if
         the matching enter only did copyin. *)
      (match kind with
      | Ast.Copy | Ast.Copyout -> da.Darray.needs_copyout <- true
      | Ast.Copyin | Ast.Create | Ast.Present -> ());
      da.Darray.region_depth <- da.Darray.region_depth - 1;
      if da.Darray.region_depth <= 0 then begin
        let xfers = Darray.release t.cfg da in
        t.clock <-
          charge_xfers t ~label:(sub.Ast.sub_array ^ ":copyout") ~kind:Cpu_gpu ~ready:t.clock xfers;
        Hashtbl.remove t.darrays sub.Ast.sub_array
      end)
    (subarrays_of_clauses clauses)

let on_update_host t env subs =
  List.iter
    (fun (sub : Ast.subarray) ->
      let da = get_darray t env sub.Ast.sub_array in
      let xfers = Darray.flush_to_host t.cfg da in
      t.clock <-
        charge_xfers t ~label:(sub.Ast.sub_array ^ ":update-host") ~kind:Cpu_gpu ~ready:t.clock
          xfers)
    subs

let on_update_device t env subs =
  List.iter
    (fun (sub : Ast.subarray) ->
      let da = get_darray t env sub.Ast.sub_array in
      let xfers = Darray.load_from_host t.cfg da in
      t.clock <-
        charge_xfers t ~label:(sub.Ast.sub_array ^ ":update-device") ~kind:Cpu_gpu ~ready:t.clock
          xfers)
    subs

(* ---------------- parallel loops ---------------- *)

let param_types_of env plan =
  List.map
    (fun name ->
      match Host_interp.find_array_opt env name with
      | Some view -> (name, Ast.Tarray view.View.elem)
      | None -> (
          match Host_interp.get_scalar env name with
          | Host_interp.Vint _ -> (name, Ast.Tint)
          | Host_interp.Vfloat _ -> (name, Ast.Tdouble)))
    plan.Kernel_plan.free_vars

let compiled_for t env plan =
  let loc = plan.Kernel_plan.loop.Loop_info.loop_loc in
  match Hashtbl.find_opt t.compiled loc with
  | Some c -> c
  | None ->
      let c = Launch.compile_kernel plan ~param_types:(param_types_of env plan) in
      Hashtbl.replace t.compiled loc c;
      c

(* An [if(cond)] clause that evaluates to zero sends the loop to the host:
   device-fresh data used by the loop flushes out first and the host's
   results push back afterwards, both charged as CPU-GPU traffic — the
   textbook cost of bouncing between memories. *)
let run_on_host t env (loop : Loop_info.t) plan =
  Log.debug (fun m -> m "loop %d: if-clause false, executing on the host" loop.Loop_info.loop_id);
  let arrays =
    List.filter
      (fun name -> Host_interp.find_array_opt env name <> None)
      plan.Kernel_plan.free_vars
  in
  List.iter
    (fun name ->
      let da = get_darray t env name in
      let xfers = Darray.flush_to_host t.cfg da in
      t.clock <- charge_xfers t ~label:(name ^ ":if-flush") ~kind:Cpu_gpu ~ready:t.clock xfers)
    arrays;
  Host_interp.run_loop_sequentially env loop;
  List.iter
    (fun name ->
      let da = get_darray t env name in
      let xfers = Darray.load_from_host t.cfg da in
      t.clock <- charge_xfers t ~label:(name ^ ":if-reload") ~kind:Cpu_gpu ~ready:t.clock xfers)
    arrays

let offload_condition env clauses =
  List.for_all
    (function Ast.Cif cond -> Host_interp.eval_float env cond <> 0.0 | _ -> true)
    clauses

let rec on_parallel_loop t env loop =
  Profiler.incr_loops t.profiler;
  let plan = Program_plan.plan_for t.plans loop in
  if not (offload_condition env loop.Loop_info.clauses) then run_on_host t env loop plan
  else on_parallel_loop_gpu t env loop plan

and on_parallel_loop_gpu t env loop plan =
  let lo = Host_interp.eval_int env loop.Loop_info.lower in
  let hi = Host_interp.eval_int env loop.Loop_info.upper in
  let num_gpus = t.cfg.Rt_config.num_gpus in
  Log.debug (fun m ->
      m "loop %d at %s: %d iterations on %d GPU(s)" loop.Loop_info.loop_id
        (Loc.to_string loop.Loop_info.loop_loc) (max 0 (hi - lo)) num_gpus);
  let iterations = max 0 (hi - lo) in
  let thread_multiplier = Kernel_plan.thread_multiplier plan in
  let ranges =
    let workload =
      match Kernel_plan.schedule_hint plan with
      | `Uniform -> Mgacc_sched.Scheduler.Uniform
      | `Irregular -> Mgacc_sched.Scheduler.Irregular
    in
    match
      Mgacc_sched.Scheduler.weights_for t.scheduler ~loop_id:loop.Loop_info.loop_id ~iterations
        ~threads_per_iter:thread_multiplier
        ~iter_cost:(Kernel_plan.static_iter_cost plan)
        ~workload
    with
    | Some weights -> Task_map.split_weighted ~lower:lo ~upper:(max lo hi) ~weights
    | None -> Task_map.split ~lower:lo ~upper:(max lo hi) ~parts:num_gpus
  in
  let t0 = t.clock in
  (* Phase 1: the data loader makes device copies valid (CPU-GPU). *)
  let arrays =
    List.filter
      (fun name -> Host_interp.find_array_opt env name <> None)
      plan.Kernel_plan.free_vars
  in
  let load_xfers, reductions =
    Data_loader.prepare t.cfg plan ~ranges ~eval_int:(Host_interp.eval_int env)
      ~get_darray:(get_darray t env) ~arrays
  in
  Log.debug (fun m ->
      m "loop %d: loader moved %d bytes in %d transfer(s)" loop.Loop_info.loop_id
        (List.fold_left (fun acc (x : Darray.xfer) -> acc + x.Darray.bytes) 0 load_xfers)
        (List.length load_xfers));
  (* A scheduler re-split moves deltas directly GPU-to-GPU; those peer
     transfers are inter-GPU traffic, not part of the host load. Under the
     equal-split policy the peer list is always empty and the charge
     sequence is exactly the original one. *)
  let repart_xfers, host_xfers =
    List.partition
      (fun (x : Darray.xfer) ->
        match x.Darray.dir with Fabric.P2p _ -> true | Fabric.H2d _ | Fabric.D2h _ -> false)
      load_xfers
  in
  let t1 = charge_xfers t ~label:"load" ~kind:Cpu_gpu ~ready:t0 host_xfers in
  let t1 = charge_xfers t ~label:"rebalance" ~kind:Gpu_gpu ~ready:t1 repart_xfers in
  (* Phase 2: kernels on all GPUs concurrently (KERNELS). *)
  let compiled = compiled_for t env plan in
  let runs, scalar_partials =
    Launch.run_on_gpus t.cfg plan compiled ~ranges
      ~get_scalar:(Host_interp.get_scalar env)
      ~get_darray:(get_darray t env)
      ~get_reduction:(fun name -> List.assoc_opt name reductions)
  in
  let run_times =
    List.map
      (fun (run : Launch.gpu_run) ->
        assert (run.Launch.iterations > 0);
        Profiler.incr_kernel_launches t.profiler;
        let _, finish =
          Machine.launch_kernel t.cfg.Rt_config.machine ~dev:run.Launch.gpu ~ready:t1
            ~threads:(run.Launch.iterations * thread_multiplier)
            ~label:(Printf.sprintf "loop%d" loop.Loop_info.loop_id)
            run.Launch.cost
        in
        (run.Launch.gpu, run.Launch.iterations, finish -. t1))
      runs
  in
  let t2 = List.fold_left (fun acc (_, _, s) -> Float.max acc (t1 +. s)) t1 run_times in
  Profiler.add_kernel t.profiler ~seconds:(t2 -. t1);
  (* Feed the scheduler: per-GPU rates and the launch's imbalance. *)
  (match run_times with
  | _ :: _ :: _ ->
      let slow = List.fold_left (fun acc (_, _, s) -> Float.max acc s) 0.0 run_times in
      let fast = List.fold_left (fun acc (_, _, s) -> Float.min acc s) infinity run_times in
      if slow > 0.0 then Profiler.add_imbalance t.profiler ~ratio:((slow -. fast) /. slow)
  | [] | [ _ ] -> ());
  let iters_per_gpu = Array.make num_gpus 0 and secs_per_gpu = Array.make num_gpus 0.0 in
  List.iter
    (fun (g, n, s) ->
      iters_per_gpu.(g) <- n;
      secs_per_gpu.(g) <- s)
    run_times;
  let bytes_per_iter =
    List.fold_left
      (fun acc name ->
        let da = get_darray t env name in
        match da.Darray.state with
        | Darray.Distributed d -> acc + (d.Darray.spec.Darray.stride * Darray.elem_bytes da)
        | Darray.Unallocated | Darray.Replicated _ -> acc)
      0 arrays
  in
  if
    Mgacc_sched.Scheduler.observe t.scheduler ~loop_id:loop.Loop_info.loop_id
      ~iterations:iters_per_gpu ~seconds:secs_per_gpu ~total_iterations:iterations ~bytes_per_iter
  then Profiler.incr_rebalances t.profiler;
  (* Phase 3: inter-GPU reconciliation (GPU-GPU). *)
  let wrote _ = hi > lo in
  let rec_result =
    Comm_manager.reconcile t.cfg plan ~get_darray:(get_darray t env) ~reductions ~wrote
  in
  let t2' =
    Machine.overhead t.cfg.Rt_config.machine ~ready:t2 ~seconds:rec_result.Comm_manager.scan_seconds
      ~label:"dirty-scan"
  in
  Profiler.add_overhead t.profiler ~seconds:(t2' -. t2);
  Log.debug (fun m ->
      m "loop %d: reconciliation ships %d bytes in %d transfer(s)" loop.Loop_info.loop_id
        (List.fold_left
           (fun acc (x : Darray.xfer) -> acc + x.Darray.bytes)
           0 rec_result.Comm_manager.xfers)
        (List.length rec_result.Comm_manager.xfers));
  let t3 = charge_xfers t ~label:"comm" ~kind:Gpu_gpu ~ready:t2' rec_result.Comm_manager.xfers in
  let t4 =
    List.fold_left
      (fun acc (gpu, cost, label) ->
        let _, finish =
          Machine.launch_kernel t.cfg.Rt_config.machine ~dev:gpu ~ready:t3 ~threads:1024 ~label cost
        in
        Float.max acc finish)
      t3 rec_result.Comm_manager.gpu_kernel_costs
  in
  Profiler.add_gpu_gpu t.profiler ~seconds:(t4 -. t3) ~bytes:0;
  (* Phase 4: fold scalar-reduction partials into the host scalars. *)
  let t5 =
    if scalar_partials = [] then t4
    else begin
      let reqs =
        List.concat_map
          (fun (run : Launch.gpu_run) ->
            List.map
              (fun (name, _, _) ->
                {
                  Fabric.direction = Fabric.D2h run.Launch.gpu;
                  bytes = 8;
                  ready = t4;
                  tag = name ^ ":scalar-red";
                })
              scalar_partials)
          runs
      in
      let completions = Machine.run_transfers t.cfg.Rt_config.machine ~label:"scalar-red" reqs in
      let finish =
        List.fold_left (fun acc (c : Fabric.completion) -> Float.max acc c.Fabric.finish) t4
          completions
      in
      Profiler.add_cpu_gpu t.profiler ~seconds:(finish -. t4) ~bytes:(8 * List.length reqs);
      List.iter
        (fun (name, op, partials) ->
          let current = Host_interp.get_scalar env name in
          let result =
            List.fold_left
              (fun acc v ->
                match (acc, v) with
                | Host_interp.Vfloat a, Host_interp.Vfloat b ->
                    Host_interp.Vfloat (View.apply_redop_f op a b)
                | Host_interp.Vint a, Host_interp.Vint b ->
                    Host_interp.Vint (View.apply_redop_i op a b)
                | Host_interp.Vfloat a, Host_interp.Vint b ->
                    Host_interp.Vfloat (View.apply_redop_f op a (float_of_int b))
                | Host_interp.Vint a, Host_interp.Vfloat b ->
                    Host_interp.Vfloat (View.apply_redop_f op (float_of_int a) b))
              current partials
          in
          Host_interp.set_scalar env name result)
        scalar_partials;
      finish
    end
  in
  t.clock <- t5;
  Profiler.record_memory_peaks t.profiler t.cfg.Rt_config.machine ~num_gpus

(* ---------------- wiring ---------------- *)

let hooks t =
  {
    Host_interp.on_parallel_loop = (fun env loop -> on_parallel_loop t env loop);
    on_data_enter = (fun env clauses -> on_data_enter t env clauses);
    on_data_exit = (fun env clauses -> on_data_exit t env clauses);
    on_update_host = (fun env subs -> on_update_host t env subs);
    on_update_device = (fun env subs -> on_update_device t env subs);
  }

let finish t =
  Hashtbl.iter
    (fun name da ->
      (* Arrays that never sat in a data region flush their results back so
         host code can read them after the program. *)
      da.Darray.needs_copyout <- da.Darray.needs_copyout || da.Darray.device_fresh;
      let xfers = Darray.release t.cfg da in
      t.clock <- charge_xfers t ~label:(name ^ ":final") ~kind:Cpu_gpu ~ready:t.clock xfers)
    t.darrays;
  Hashtbl.reset t.darrays;
  Profiler.record_memory_peaks t.profiler t.cfg.Rt_config.machine ~num_gpus:t.cfg.Rt_config.num_gpus

let run ?config ?variant ~machine program =
  let cfg = match config with Some c -> c | None -> Rt_config.make machine in
  let plans = Program_plan.build ~options:cfg.Rt_config.translator program in
  let t = create cfg plans in
  let env = Host_interp.run_program ~hooks:(hooks t) program in
  finish t;
  let variant =
    match variant with
    | Some v -> v
    | None -> Printf.sprintf "proposal(%d)" cfg.Rt_config.num_gpus
  in
  ( env,
    Report.of_profiler t.profiler ~machine:machine.Machine.name ~variant
      ~num_gpus:cfg.Rt_config.num_gpus )
