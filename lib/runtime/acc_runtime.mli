(** The multi-GPU OpenACC runtime: the system of paper §IV-A.

    Wires the data loader, the kernel launcher and the inter-GPU
    communication manager into the host interpreter's hooks. Each parallel
    loop executes as one BSP step — load, compute, reconcile — with every
    movement charged to the simulated machine and accumulated in the
    profiler under the Fig. 8 categories.

    Arrays not covered by any [data] region stay resident on the devices
    until {!finish}, which flushes written data back to the host (real
    OpenACC would copy such arrays around every parallel region; keeping
    them resident matches how the paper's tuned benchmarks behave, and the
    benchmarks here always use explicit [data] regions anyway). *)

val run :
  ?config:Rt_config.t ->
  ?variant:string ->
  ?with_blame:bool ->
  machine:Mgacc_gpusim.Machine.t ->
  Mgacc_minic.Ast.program ->
  Mgacc_exec.Host_interp.env * Report.t
(** Compile (plan) and execute a program on the simulated machine with the
    OpenACC multi-GPU runtime; returns the final host environment (for
    result inspection) and the run report. [config] defaults to all GPUs
    with the paper's settings; [variant] labels the report. The machine is
    reset first, so back-to-back runs in one process match fresh-process
    runs bit for bit. With [with_blame] the report carries the
    critical-path blame summary ({!Report.pp_blame}, the [--blame]
    flag); timings are unaffected. *)

type t = Session.t
(** An open runtime session, for callers that need to drive the host
    interpreter themselves (the fleet creates these directly with
    [Session.create ~tenant ~start] on a shared machine). *)

val create : Rt_config.t -> Mgacc_translator.Program_plan.t -> t
val hooks : t -> Mgacc_exec.Host_interp.hooks

val finish : ?keep_resident:bool -> t -> unit
(** Flush and free every remaining device array; charge the transfers.
    With [keep_resident] (fleet warm-pool mode) only copyout data is
    flushed and allocations stay live for {!Session.spill_all}. *)

val execute : t -> Mgacc_minic.Ast.program -> Mgacc_exec.Host_interp.env
(** Drive one program through an existing session ([hooks] + interpret +
    [finish], honoring the session's [keep_resident] config). *)

val report : ?variant:string -> t -> Report.t
(** Snapshot the session's profiler into a report (queue wait included). *)

val blame : t -> Mgacc_obs.Blame.summary
(** Summarize the session's blame ledger against the machine trace:
    critical path, per-category exposed/hidden split (reconciling with
    the profiler by construction) and the per-label blame rows. *)

val profiler : t -> Profiler.t
val now : t -> float
