(** The multi-GPU OpenACC runtime: the system of paper §IV-A.

    Wires the data loader, the kernel launcher and the inter-GPU
    communication manager into the host interpreter's hooks. Each parallel
    loop executes as one BSP step — load, compute, reconcile — with every
    movement charged to the simulated machine and accumulated in the
    profiler under the Fig. 8 categories.

    Arrays not covered by any [data] region stay resident on the devices
    until {!finish}, which flushes written data back to the host (real
    OpenACC would copy such arrays around every parallel region; keeping
    them resident matches how the paper's tuned benchmarks behave, and the
    benchmarks here always use explicit [data] regions anyway). *)

val run :
  ?config:Rt_config.t ->
  ?variant:string ->
  machine:Mgacc_gpusim.Machine.t ->
  Mgacc_minic.Ast.program ->
  Mgacc_exec.Host_interp.env * Report.t
(** Compile (plan) and execute a program on the simulated machine with the
    OpenACC multi-GPU runtime; returns the final host environment (for
    result inspection) and the run report. [config] defaults to all GPUs
    with the paper's settings; [variant] labels the report. *)

type t
(** An open runtime instance, for callers that need to drive the host
    interpreter themselves. *)

val create : Rt_config.t -> Mgacc_translator.Program_plan.t -> t
val hooks : t -> Mgacc_exec.Host_interp.hooks
val finish : t -> unit
(** Flush and free every remaining device array; charge the transfers. *)

val profiler : t -> Profiler.t
val now : t -> float
