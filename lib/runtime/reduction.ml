open Mgacc_minic
module Memory = Mgacc_gpusim.Memory
module Machine = Mgacc_gpusim.Machine
module Device = Mgacc_gpusim.Device
module Fabric = Mgacc_gpusim.Fabric
module Cost = Mgacc_gpusim.Cost
module View = Mgacc_exec.View

type partial = Pf of float array | Pi of int array

type t = {
  name : string;
  op : Ast.redop;
  elem : Ast.elem_ty;
  length : int;
  partials : partial array;  (* per GPU *)
  bufs : Memory.buf array;  (* accounted system storage *)
  mutable touched : bool array;  (* GPU contributed at least once *)
}

let allocate (cfg : Rt_config.t) (da : Darray.t) op =
  ignore (Darray.replica_of da);
  let g_count = cfg.Rt_config.num_gpus in
  let elem = da.Darray.elem and length = da.Darray.length in
  let mem g = (Machine.device cfg.Rt_config.machine g).Device.memory in
  let partials =
    Array.init g_count (fun _ ->
        match elem with
        | Ast.Edouble -> Pf (Array.make length (View.redop_identity_f op))
        | Ast.Eint -> Pi (Array.make length (View.redop_identity_i op)))
  in
  let bufs =
    Array.init g_count (fun g ->
        Memory.alloc_raw (mem g) `System (length * Ast.elem_ty_size elem))
  in
  {
    name = da.Darray.name;
    op;
    elem;
    length;
    partials;
    bufs;
    touched = Array.make g_count false;
  }

let array_name t = t.name
let op t = t.op

let reduce_f t ~gpu i v =
  match t.partials.(gpu) with
  | Pf a ->
      a.(i) <- View.apply_redop_f t.op a.(i) v;
      t.touched.(gpu) <- true
  | Pi _ -> invalid_arg "Reduction.reduce_f: int reduction array"

let reduce_i t ~gpu i v =
  match t.partials.(gpu) with
  | Pi a ->
      a.(i) <- View.apply_redop_i t.op a.(i) v;
      t.touched.(gpu) <- true
  | Pf _ -> invalid_arg "Reduction.reduce_i: double reduction array"

type xfer_role = Gather | Bcast

type merge_result = { xfers : (Darray.xfer * xfer_role) list; combine_cost : Cost.t }

type lazy_merge_result = {
  rounds : (Darray.xfer * xfer_role * int) list;
  lazy_combine_cost : Cost.t;
  deferred_bytes : int;
}

let merge (cfg : Rt_config.t) t (da : Darray.t) =
  let r = Darray.replica_of da in
  let g_count = cfg.Rt_config.num_gpus in
  let width = Ast.elem_ty_size t.elem in
  let bytes = t.length * width in
  (* Functional fold into every replica copy (they stay consistent). *)
  (match t.elem with
  | Ast.Edouble ->
      let idf = View.redop_identity_f t.op in
      Array.iter
        (fun buf ->
          let d = Memory.float_data buf in
          Array.iter
            (function
              | Pf p ->
                  for i = 0 to t.length - 1 do
                    if p.(i) <> idf then d.(i) <- View.apply_redop_f t.op d.(i) p.(i)
                  done
              | Pi _ -> assert false)
            t.partials)
        r.Darray.bufs
  | Ast.Eint ->
      let idi = View.redop_identity_i t.op in
      Array.iter
        (fun buf ->
          let d = Memory.int_data buf in
          Array.iter
            (function
              | Pi p ->
                  for i = 0 to t.length - 1 do
                    if p.(i) <> idi then d.(i) <- View.apply_redop_i t.op d.(i) p.(i)
                  done
              | Pf _ -> assert false)
            t.partials)
        r.Darray.bufs);
  (* Traffic: gather each contributing partial to GPU 0, broadcast result. *)
  let xfers = ref [] in
  for g = 1 to g_count - 1 do
    if t.touched.(g) then
      xfers :=
        ({ Darray.dir = Fabric.P2p (g, 0); bytes; tag = t.name ^ ":red-gather" }, Gather) :: !xfers
  done;
  for g = 1 to g_count - 1 do
    xfers := ({ Darray.dir = Fabric.P2p (0, g); bytes; tag = t.name ^ ":red-bcast" }, Bcast) :: !xfers
  done;
  (* Merge kernel on GPU 0: one combine + one load/store pair per element
     per contributing partial. *)
  let contributors = Array.fold_left (fun n x -> if x then n + 1 else n) 1 t.touched in
  let combine_cost = Cost.zero () in
  combine_cost.Cost.flops <- t.length * contributors;
  combine_cost.Cost.coalesced_bytes <- t.length * width * (contributors + 1);
  (* Release the partials. *)
  let mem g = (Machine.device cfg.Rt_config.machine g).Device.memory in
  Array.iteri (fun g buf -> Memory.free (mem g) buf) t.bufs;
  Darray.mark_device_written da;
  { xfers = List.rev !xfers; combine_cost }

(* Lazy-coherence merge: gather the partials and fold them into GPU 0's
   replica only. When the lookahead proves no kernel reads the array
   ([`Defer]), the peers are simply marked stale — the broadcast is
   elided entirely and a later [update host]/copyout pulls from replica
   0 for free (it is the flush source anyway). Otherwise the result
   ships down a binomial tree whose per-edge ops carry their round
   number, so the overlap DAG can start round [r+1] edges as soon as
   their source received round [r] instead of serializing a star from
   GPU 0. *)
let merge_lazy (cfg : Rt_config.t) t (da : Darray.t) ~ship =
  let r = Darray.replica_of da in
  let g_count = cfg.Rt_config.num_gpus in
  let width = Ast.elem_ty_size t.elem in
  let bytes = t.length * width in
  (* Fold into replica 0 only; replica 0 must be fully valid here (the
     data loader guarantees it before the reduction kernel launches). *)
  (match t.elem with
  | Ast.Edouble ->
      let idf = View.redop_identity_f t.op in
      let d = Memory.float_data r.Darray.bufs.(0) in
      Array.iter
        (function
          | Pf p ->
              for i = 0 to t.length - 1 do
                if p.(i) <> idf then d.(i) <- View.apply_redop_f t.op d.(i) p.(i)
              done
          | Pi _ -> assert false)
        t.partials
  | Ast.Eint ->
      let idi = View.redop_identity_i t.op in
      let d = Memory.int_data r.Darray.bufs.(0) in
      Array.iter
        (function
          | Pi p ->
              for i = 0 to t.length - 1 do
                if p.(i) <> idi then d.(i) <- View.apply_redop_i t.op d.(i) p.(i)
              done
          | Pf _ -> assert false)
        t.partials);
  let xfers = ref [] in
  for g = 1 to g_count - 1 do
    if t.touched.(g) then
      xfers :=
        ({ Darray.dir = Fabric.P2p (g, 0); bytes; tag = t.name ^ ":red-gather" }, Gather, 0)
        :: !xfers
  done;
  let full = Darray.full_set da in
  let deferred = ref 0 in
  (match ship with
  | `Defer ->
      r.Darray.valid.(0) <- full;
      for g = 1 to g_count - 1 do
        r.Darray.valid.(g) <- Mgacc_util.Interval.Set.empty;
        deferred := !deferred + bytes
      done
  | `Tree ->
      (* Functional broadcast (copy replica 0 into every peer) plus the
         tree-edge transfer descriptors: in round [r] every GPU < 2^r
         that holds the result forwards it to its partner 2^r away. *)
      for g = 1 to g_count - 1 do
        Darray.copy_replica_seg da r ~src:0 ~dst:g (Mgacc_util.Interval.make 0 t.length);
        r.Darray.valid.(g) <- full
      done;
      r.Darray.valid.(0) <- full;
      let round = ref 0 in
      let span = ref 1 in
      while !span < g_count do
        for src = 0 to !span - 1 do
          let dst = src + !span in
          if dst < g_count then
            xfers :=
              ( { Darray.dir = Fabric.P2p (src, dst); bytes; tag = t.name ^ ":red-bcast" },
                Bcast,
                !round )
              :: !xfers
        done;
        span := 2 * !span;
        incr round
      done);
  let contributors = Array.fold_left (fun n x -> if x then n + 1 else n) 1 t.touched in
  let combine_cost = Cost.zero () in
  combine_cost.Cost.flops <- t.length * contributors;
  combine_cost.Cost.coalesced_bytes <- t.length * width * (contributors + 1);
  let mem g = (Machine.device cfg.Rt_config.machine g).Device.memory in
  Array.iteri (fun g buf -> Memory.free (mem g) buf) t.bufs;
  Darray.mark_device_written da;
  { rounds = List.rev !xfers; lazy_combine_cost = combine_cost; deferred_bytes = !deferred }
