type memory_report = { user_bytes : int; system_bytes : int }

type coh_cell = { mutable shipped : int; mutable deferred : int; mutable pulled : int }

type t = {
  coh : (string, coh_cell) Hashtbl.t;
  mutable cpu_gpu : float;
  mutable gpu_gpu : float;
  mutable kernel : float;
  mutable overhead : float;
  mutable cpu_gpu_bytes : int;
  mutable gpu_gpu_bytes : int;
  mutable wire_bytes : int;
  mutable coll_rings : int;
  mutable coll_hierarchies : int;
  mutable coll_direct_groups : int;
  mutable coll_segments : int;
  mutable launches : int;
  mutable loops : int;
  mutable rebalances : int;
  mutable imbalance_sum : float;
  mutable imbalance_samples : int;
  mutable hidden : float;
  mutable prefetch_hits : int;
  mutable mem : memory_report;
  mutable spilled_bytes : int;
  mutable spills : int;
}

let create () =
  {
    coh = Hashtbl.create 8;
    cpu_gpu = 0.0;
    gpu_gpu = 0.0;
    kernel = 0.0;
    overhead = 0.0;
    cpu_gpu_bytes = 0;
    gpu_gpu_bytes = 0;
    wire_bytes = 0;
    coll_rings = 0;
    coll_hierarchies = 0;
    coll_direct_groups = 0;
    coll_segments = 0;
    launches = 0;
    loops = 0;
    rebalances = 0;
    imbalance_sum = 0.0;
    imbalance_samples = 0;
    hidden = 0.0;
    prefetch_hits = 0;
    mem = { user_bytes = 0; system_bytes = 0 };
    spilled_bytes = 0;
    spills = 0;
  }

let add_cpu_gpu t ~seconds ~bytes =
  t.cpu_gpu <- t.cpu_gpu +. seconds;
  t.cpu_gpu_bytes <- t.cpu_gpu_bytes + bytes

let add_gpu_gpu t ~seconds ~bytes =
  t.gpu_gpu <- t.gpu_gpu +. seconds;
  t.gpu_gpu_bytes <- t.gpu_gpu_bytes + bytes

let add_wire_bytes t ~bytes = t.wire_bytes <- t.wire_bytes + bytes

let add_collective t ~rings ~hierarchies ~direct_groups ~segments =
  t.coll_rings <- t.coll_rings + rings;
  t.coll_hierarchies <- t.coll_hierarchies + hierarchies;
  t.coll_direct_groups <- t.coll_direct_groups + direct_groups;
  t.coll_segments <- t.coll_segments + segments

let add_kernel t ~seconds = t.kernel <- t.kernel +. seconds
let add_overhead t ~seconds = t.overhead <- t.overhead +. seconds
let incr_kernel_launches t = t.launches <- t.launches + 1
let incr_loops t = t.loops <- t.loops + 1
let incr_rebalances t = t.rebalances <- t.rebalances + 1

let add_imbalance t ~ratio =
  t.imbalance_sum <- t.imbalance_sum +. ratio;
  t.imbalance_samples <- t.imbalance_samples + 1

let add_hidden t ~seconds = t.hidden <- t.hidden +. seconds
let add_prefetch_hits t ~count = t.prefetch_hits <- t.prefetch_hits + count

(* Fleet memory pressure: one eviction of this session's warm data,
   writing [bytes] of dirty device data back to the host (0 when the
   evicted arrays were clean — writeback semantics). *)
let add_spill t ~bytes =
  t.spills <- t.spills + 1;
  t.spilled_bytes <- t.spilled_bytes + bytes

let coh_cell t array =
  match Hashtbl.find_opt t.coh array with
  | Some c -> c
  | None ->
      let c = { shipped = 0; deferred = 0; pulled = 0 } in
      Hashtbl.replace t.coh array c;
      c

let add_coh t ~array ~shipped ~deferred =
  if shipped <> 0 || deferred <> 0 then begin
    let c = coh_cell t array in
    c.shipped <- c.shipped + shipped;
    c.deferred <- c.deferred + deferred
  end

let add_coh_pulled t ~array ~bytes =
  if bytes <> 0 then begin
    let c = coh_cell t array in
    c.pulled <- c.pulled + bytes
  end

let coh_rows t =
  Hashtbl.fold (fun array c acc -> (array, c.shipped, c.deferred, c.pulled) :: acc) t.coh []
  |> List.sort compare

let cpu_gpu_time t = t.cpu_gpu
let gpu_gpu_time t = t.gpu_gpu
let kernel_time t = t.kernel
let overhead_time t = t.overhead
let total_time t = t.cpu_gpu +. t.gpu_gpu +. t.kernel +. t.overhead
let cpu_gpu_bytes t = t.cpu_gpu_bytes
let gpu_gpu_bytes t = t.gpu_gpu_bytes
let wire_bytes t = t.wire_bytes
let collective_rings t = t.coll_rings
let collective_hierarchies t = t.coll_hierarchies
let collective_direct_groups t = t.coll_direct_groups
let collective_segments t = t.coll_segments
let kernel_launches t = t.launches
let loops_executed t = t.loops
let rebalances t = t.rebalances
let hidden_time t = t.hidden
let prefetch_hits t = t.prefetch_hits
let spilled_bytes t = t.spilled_bytes
let spills t = t.spills

let mean_imbalance t =
  if t.imbalance_samples = 0 then 0.0 else t.imbalance_sum /. float_of_int t.imbalance_samples

let record_memory_peaks t machine ~num_gpus =
  let user = ref 0 and system = ref 0 in
  for g = 0 to num_gpus - 1 do
    let mem = (Mgacc_gpusim.Machine.device machine g).Mgacc_gpusim.Device.memory in
    user := !user + Mgacc_gpusim.Memory.peak_class mem `User;
    system := !system + Mgacc_gpusim.Memory.peak_class mem `System
  done;
  t.mem <- { user_bytes = max t.mem.user_bytes !user; system_bytes = max t.mem.system_bytes !system }

let memory t = t.mem

let pp ppf t =
  Format.fprintf ppf
    "time: total=%.6fs kernels=%.6fs cpu-gpu=%.6fs gpu-gpu=%.6fs overhead=%.6fs hidden=%.6fs; \
     bytes: h<->d=%s p2p=%s; launches=%d loops=%d; mem user=%s system=%s"
    (total_time t) t.kernel t.cpu_gpu t.gpu_gpu t.overhead t.hidden
    (Mgacc_util.Bytesize.to_string t.cpu_gpu_bytes)
    (Mgacc_util.Bytesize.to_string t.gpu_gpu_bytes)
    t.launches t.loops
    (Mgacc_util.Bytesize.to_string t.mem.user_bytes)
    (Mgacc_util.Bytesize.to_string t.mem.system_bytes)
