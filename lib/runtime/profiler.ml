module Metrics = Mgacc_obs.Metrics

type memory_report = { user_bytes : int; system_bytes : int }

type coh_cell = { mutable shipped : int; mutable deferred : int; mutable pulled : int }

(* All scalar counters live in the metrics registry; integer counts are
   stored as float counters (exact below 2^53, far above anything the
   simulator produces) and converted back at the getters. The float
   accumulation order of the time categories is unchanged from the
   pre-registry profiler, so reports stay bit-identical. *)
type t = {
  metrics : Metrics.t;
  coh : (string, coh_cell) Hashtbl.t;
  c_cpu_gpu : Metrics.counter;
  c_gpu_gpu : Metrics.counter;
  c_kernel : Metrics.counter;
  c_overhead : Metrics.counter;
  c_hidden : Metrics.counter;
  c_cpu_gpu_bytes : Metrics.counter;
  c_gpu_gpu_bytes : Metrics.counter;
  c_wire_bytes : Metrics.counter;
  c_coll_rings : Metrics.counter;
  c_coll_hierarchies : Metrics.counter;
  c_coll_direct_groups : Metrics.counter;
  c_coll_segments : Metrics.counter;
  c_launches : Metrics.counter;
  c_loops : Metrics.counter;
  c_rebalances : Metrics.counter;
  c_imbalance_sum : Metrics.counter;
  c_imbalance_samples : Metrics.counter;
  h_imbalance : Metrics.histogram;
  c_prefetch_hits : Metrics.counter;
  c_fused_kernels : Metrics.counter;
  c_contracted_arrays : Metrics.counter;
  c_relayouts : Metrics.counter;
  c_spilled_bytes : Metrics.counter;
  c_spills : Metrics.counter;
  g_mem_user : Metrics.gauge;
  g_mem_system : Metrics.gauge;
  mutable mem : memory_report;
}

let create () =
  let m = Metrics.create () in
  {
    metrics = m;
    coh = Hashtbl.create 8;
    c_cpu_gpu =
      Metrics.counter m ~help:"exposed host<->device transfer seconds" "rt_cpu_gpu_seconds_total";
    c_gpu_gpu =
      Metrics.counter m ~help:"exposed inter-GPU reconciliation seconds" "rt_gpu_gpu_seconds_total";
    c_kernel = Metrics.counter m ~help:"exposed kernel seconds" "rt_kernel_seconds_total";
    c_overhead = Metrics.counter m ~help:"runtime bookkeeping seconds" "rt_overhead_seconds_total";
    c_hidden =
      Metrics.counter m ~help:"seconds hidden behind the critical path (overlap engine)"
        "rt_hidden_seconds_total";
    c_cpu_gpu_bytes = Metrics.counter m ~help:"host<->device bytes" "rt_cpu_gpu_bytes_total";
    c_gpu_gpu_bytes = Metrics.counter m ~help:"inter-GPU bytes" "rt_gpu_gpu_bytes_total";
    c_wire_bytes = Metrics.counter m ~help:"bytes across the inter-node wire" "rt_wire_bytes_total";
    c_coll_rings = Metrics.counter m "rt_collective_rings_total";
    c_coll_hierarchies = Metrics.counter m "rt_collective_hierarchies_total";
    c_coll_direct_groups = Metrics.counter m "rt_collective_direct_groups_total";
    c_coll_segments = Metrics.counter m "rt_collective_segments_total";
    c_launches = Metrics.counter m ~help:"multi-GPU kernel launches" "rt_kernel_launches_total";
    c_loops = Metrics.counter m ~help:"parallel loops executed" "rt_loops_total";
    c_rebalances = Metrics.counter m ~help:"committed scheduler re-splits" "rt_rebalances_total";
    c_imbalance_sum = Metrics.counter m "rt_imbalance_ratio_sum_total";
    c_imbalance_samples = Metrics.counter m "rt_imbalance_samples_total";
    h_imbalance =
      Metrics.histogram m ~help:"per-launch kernel-time imbalance ratio"
        ~buckets:[| 0.01; 0.02; 0.05; 0.1; 0.2; 0.5; 1.0 |]
        "rt_imbalance_ratio";
    c_prefetch_hits = Metrics.counter m "rt_prefetch_hits_total";
    c_fused_kernels =
      Metrics.counter m ~help:"kernel launches saved by loop fusion" "rt_fused_kernels_total";
    c_contracted_arrays =
      Metrics.counter m ~help:"temporaries contracted to scalars by fusion"
        "rt_contracted_arrays_total";
    c_relayouts =
      Metrics.counter m ~help:"one-time layout repacks materialized" "rt_relayouts_total";
    c_spilled_bytes =
      Metrics.counter m ~help:"dirty bytes written back on fleet evictions" "rt_spilled_bytes_total";
    c_spills = Metrics.counter m ~help:"fleet evictions of this session" "rt_spills_total";
    g_mem_user = Metrics.gauge m ~help:"peak user device bytes" "rt_mem_user_bytes";
    g_mem_system = Metrics.gauge m ~help:"peak system device bytes" "rt_mem_system_bytes";
    mem = { user_bytes = 0; system_bytes = 0 };
  }

let metrics t = t.metrics
let int_count c = int_of_float (Metrics.counter_value c)

let add_cpu_gpu t ~seconds ~bytes =
  Metrics.inc t.c_cpu_gpu seconds;
  Metrics.inc t.c_cpu_gpu_bytes (float_of_int bytes)

let add_gpu_gpu t ~seconds ~bytes =
  Metrics.inc t.c_gpu_gpu seconds;
  Metrics.inc t.c_gpu_gpu_bytes (float_of_int bytes)

let add_wire_bytes t ~bytes = Metrics.inc t.c_wire_bytes (float_of_int bytes)

let add_collective t ~rings ~hierarchies ~direct_groups ~segments =
  Metrics.inc t.c_coll_rings (float_of_int rings);
  Metrics.inc t.c_coll_hierarchies (float_of_int hierarchies);
  Metrics.inc t.c_coll_direct_groups (float_of_int direct_groups);
  Metrics.inc t.c_coll_segments (float_of_int segments)

let add_kernel t ~seconds = Metrics.inc t.c_kernel seconds
let add_overhead t ~seconds = Metrics.inc t.c_overhead seconds
let incr_kernel_launches t = Metrics.inc t.c_launches 1.
let incr_loops t = Metrics.inc t.c_loops 1.
let incr_rebalances t = Metrics.inc t.c_rebalances 1.

let add_imbalance t ~ratio =
  Metrics.inc t.c_imbalance_sum ratio;
  Metrics.inc t.c_imbalance_samples 1.;
  Metrics.observe t.h_imbalance ratio

let add_hidden t ~seconds = Metrics.inc t.c_hidden seconds
let add_prefetch_hits t ~count = Metrics.inc t.c_prefetch_hits (float_of_int count)
let add_fused_kernels t ~count = Metrics.inc t.c_fused_kernels (float_of_int count)
let add_contracted_arrays t ~count = Metrics.inc t.c_contracted_arrays (float_of_int count)
let add_relayout t = Metrics.inc t.c_relayouts 1.

(* Fleet memory pressure: one eviction of this session's warm data,
   writing [bytes] of dirty device data back to the host (0 when the
   evicted arrays were clean — writeback semantics). *)
let add_spill t ~bytes =
  Metrics.inc t.c_spills 1.;
  Metrics.inc t.c_spilled_bytes (float_of_int bytes)

let coh_cell t array =
  match Hashtbl.find_opt t.coh array with
  | Some c -> c
  | None ->
      let c = { shipped = 0; deferred = 0; pulled = 0 } in
      Hashtbl.replace t.coh array c;
      c

let add_coh t ~array ~shipped ~deferred =
  if shipped <> 0 || deferred <> 0 then begin
    let c = coh_cell t array in
    c.shipped <- c.shipped + shipped;
    c.deferred <- c.deferred + deferred
  end

let add_coh_pulled t ~array ~bytes =
  if bytes <> 0 then begin
    let c = coh_cell t array in
    c.pulled <- c.pulled + bytes
  end

let coh_rows t =
  Hashtbl.fold (fun array c acc -> (array, c.shipped, c.deferred, c.pulled) :: acc) t.coh []
  |> List.sort compare

let cpu_gpu_time t = Metrics.counter_value t.c_cpu_gpu
let gpu_gpu_time t = Metrics.counter_value t.c_gpu_gpu
let kernel_time t = Metrics.counter_value t.c_kernel
let overhead_time t = Metrics.counter_value t.c_overhead
let total_time t = cpu_gpu_time t +. gpu_gpu_time t +. kernel_time t +. overhead_time t
let cpu_gpu_bytes t = int_count t.c_cpu_gpu_bytes
let gpu_gpu_bytes t = int_count t.c_gpu_gpu_bytes
let wire_bytes t = int_count t.c_wire_bytes
let collective_rings t = int_count t.c_coll_rings
let collective_hierarchies t = int_count t.c_coll_hierarchies
let collective_direct_groups t = int_count t.c_coll_direct_groups
let collective_segments t = int_count t.c_coll_segments
let kernel_launches t = int_count t.c_launches
let loops_executed t = int_count t.c_loops
let rebalances t = int_count t.c_rebalances
let hidden_time t = Metrics.counter_value t.c_hidden
let prefetch_hits t = int_count t.c_prefetch_hits
let fused_kernels t = int_count t.c_fused_kernels
let contracted_arrays t = int_count t.c_contracted_arrays
let relayouts t = int_count t.c_relayouts
let spilled_bytes t = int_count t.c_spilled_bytes
let spills t = int_count t.c_spills

let mean_imbalance t =
  let samples = Metrics.counter_value t.c_imbalance_samples in
  if samples = 0. then 0.0 else Metrics.counter_value t.c_imbalance_sum /. samples

let record_memory_peaks t machine ~num_gpus =
  let user = ref 0 and system = ref 0 in
  for g = 0 to num_gpus - 1 do
    let mem = (Mgacc_gpusim.Machine.device machine g).Mgacc_gpusim.Device.memory in
    user := !user + Mgacc_gpusim.Memory.peak_class mem `User;
    system := !system + Mgacc_gpusim.Memory.peak_class mem `System
  done;
  t.mem <- { user_bytes = max t.mem.user_bytes !user; system_bytes = max t.mem.system_bytes !system };
  Metrics.set t.g_mem_user (float_of_int t.mem.user_bytes);
  Metrics.set t.g_mem_system (float_of_int t.mem.system_bytes)

let memory t = t.mem

let pp ppf t =
  Format.fprintf ppf
    "time: total=%.6fs kernels=%.6fs cpu-gpu=%.6fs gpu-gpu=%.6fs overhead=%.6fs hidden=%.6fs; \
     bytes: h<->d=%s p2p=%s; launches=%d loops=%d; mem user=%s system=%s"
    (total_time t) (kernel_time t) (cpu_gpu_time t) (gpu_gpu_time t) (overhead_time t)
    (hidden_time t)
    (Mgacc_util.Bytesize.to_string (cpu_gpu_bytes t))
    (Mgacc_util.Bytesize.to_string (gpu_gpu_bytes t))
    (kernel_launches t) (loops_executed t)
    (Mgacc_util.Bytesize.to_string t.mem.user_bytes)
    (Mgacc_util.Bytesize.to_string t.mem.system_bytes)
