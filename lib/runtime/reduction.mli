(** Hierarchical array reductions (the [reductiontoarray] extension).

    Each GPU accumulates its contributions into a private partial buffer
    (identity-initialized, [`System] memory). After the kernels, the
    partials are shipped to GPU 0, combined there with the base values, and
    the result is broadcast back to every replica — the top level of the
    paper's three-level reduction (shared memory and intra-GPU levels are
    already folded into the kernel cost model).

    With a single GPU the partial is still used (the kernel must not see
    its own partial results through the replica), but no transfers occur. *)

open Mgacc_minic

type t

val allocate : Rt_config.t -> Darray.t -> Ast.redop -> t
(** The destination array must currently be replicated. *)

val array_name : t -> string
val op : t -> Ast.redop

val reduce_f : t -> gpu:int -> int -> float -> unit
(** Accumulate a double contribution on the given GPU's partial. *)

val reduce_i : t -> gpu:int -> int -> int -> unit

type xfer_role = Gather | Bcast
(** Whether a merge transfer carries a partial toward GPU 0 or the
    combined result back out — explicit, so downstream consumers never
    have to sniff the destination endpoint. *)

type merge_result = {
  xfers : (Darray.xfer * xfer_role) list;
      (** gather to GPU 0 + broadcast to replicas *)
  combine_cost : Mgacc_gpusim.Cost.t;  (** the merge kernel on GPU 0 *)
}

val merge : Rt_config.t -> t -> Darray.t -> merge_result
(** Fold all partials into every replica buffer (functionally) and return
    the traffic and merge-kernel cost to charge. Frees the partials. *)

type lazy_merge_result = {
  rounds : (Darray.xfer * xfer_role * int) list;
      (** gathers (round 0) and binomial-tree broadcast edges tagged
          with their tree round, so the overlap DAG can pipeline
          round [r+1] edges behind their round-[r] source arrival *)
  lazy_combine_cost : Mgacc_gpusim.Cost.t;
  deferred_bytes : int;  (** broadcast bytes elided by deferral *)
}

val merge_lazy : Rt_config.t -> t -> Darray.t -> ship:[ `Defer | `Tree ] -> lazy_merge_result
(** Lazy-coherence merge: fold the partials into replica 0 only.
    [`Defer] (no future device read) marks the peers stale and elides
    the broadcast entirely; [`Tree] broadcasts the combined result down
    a binomial tree. Replica 0 must be fully valid on entry (the data
    loader pulls it coherent before a reduction launches). Frees the
    partials. *)
