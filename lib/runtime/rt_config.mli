(** Runtime configuration: the machine, the GPU count, and the knobs the
    evaluation ablates. *)

type coherence =
  | Eager  (** reconcile every replica after every kernel (paper §IV-D) *)
  | Lazy
      (** consumer-driven: ship only the intervals the next reader's
          window covers, defer the rest and pull on demand
          (docs/COHERENCE.md) *)

type collective =
  | Direct  (** every logical transfer ships point-to-point, bit-identical
                to the original runtime *)
  | Ring
      (** broadcast-shaped transfer groups are lowered to node-grouped,
          segment-pipelined rings (docs/MODEL.md "Collectives") *)
  | Auto
      (** per-group NCCL-style cost model picks direct, ring or
          hierarchical staging from payload size and topology *)

val collective_of_string : string -> (collective, string) result
val collective_name : collective -> string

type t = {
  machine : Mgacc_gpusim.Machine.t;
  num_gpus : int;  (** devices actually used (<= machine's) *)
  chunk_bytes : int;  (** second-level dirty-bit chunk payload size *)
  two_level_dirty : bool;  (** ablation B: false = single-level dirty bits *)
  overlap : bool;
      (** dependency-driven communication/computation overlap: gate each
          transfer and replay on the events it actually depends on instead
          of the bulk-synchronous barrier chain (docs/OVERLAP.md). [false]
          keeps the original barrier semantics bit-for-bit. *)
  coherence : coherence;
      (** replica-reconciliation policy. [Eager] keeps the legacy
          all-pairs exchange bit-for-bit; [Lazy] tracks per-replica
          validity intervals and defers unread chunks. *)
  collective : collective;
      (** how broadcast-shaped transfer groups are scheduled on the
          fabric. [Direct] keeps the legacy point-to-point stars
          bit-for-bit. *)
  collective_seg_bytes : int;
      (** pipelining segment size for ring/hierarchical schedules: each
          hop forwards segment [k] while segment [k+1] still streams in *)
  translator : Mgacc_translator.Kernel_plan.options;
  schedule : Mgacc_sched.Policy.t;
      (** iteration-partitioning policy (default: the paper's equal split) *)
  sched_knobs : Mgacc_sched.Feedback.knobs;
      (** damping/hysteresis of the adaptive controller *)
  keep_resident : bool;
      (** fleet warm-pool mode: keep device allocations alive across data
          regions and at session finish (flushing only copyout data), so
          the fleet's admission controller can later evict them with real
          spill traffic. [false] keeps the classic release-at-region-exit
          semantics bit-for-bit. *)
}

val make :
  ?num_gpus:int ->
  ?chunk_bytes:int ->
  ?two_level_dirty:bool ->
  ?overlap:bool ->
  ?coherence:coherence ->
  ?collective:collective ->
  ?collective_seg_bytes:int ->
  ?translator:Mgacc_translator.Kernel_plan.options ->
  ?schedule:Mgacc_sched.Policy.t ->
  ?sched_knobs:Mgacc_sched.Feedback.knobs ->
  ?keep_resident:bool ->
  Mgacc_gpusim.Machine.t ->
  t
(** Defaults: all of the machine's GPUs, 1 MB chunks (the paper's choice),
    two-level dirty bits, overlap off (barrier semantics), eager
    coherence (legacy all-pairs reconciliation), direct collectives
    (legacy point-to-point schedules) with 256 KB pipelining segments,
    all translator optimizations on, the equal-split schedule with
    default controller knobs. *)

val lazy_coherence : t -> bool
(** [coherence = Lazy] and more than one GPU (with a single replica the
    eager and lazy protocols coincide, so the lazy bookkeeping is
    skipped). *)

val planned_collectives : t -> bool
(** [collective <> Direct] and more than one GPU (no collective exists
    on one device). *)
