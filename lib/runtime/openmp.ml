open Mgacc_minic
module Machine = Mgacc_gpusim.Machine
module Cpu_model = Mgacc_gpusim.Cpu_model
module Cost = Mgacc_gpusim.Cost
module Host_interp = Mgacc_exec.Host_interp
module Frame = Mgacc_exec.Frame
module View = Mgacc_exec.View
module Kernel_compile = Mgacc_exec.Kernel_compile
module Loop_info = Mgacc_analysis.Loop_info
module Coalesce = Mgacc_analysis.Coalesce

type state = {
  machine : Machine.t;
  threads : int;
  profiler : Profiler.t;
  compiled : (Loc.t, Kernel_compile.t) Hashtbl.t;
  mutable clock : float;
}

let param_types env loop =
  List.map
    (fun name ->
      match Host_interp.find_array_opt env name with
      | Some view -> (name, Ast.Tarray view.View.elem)
      | None -> (
          match Host_interp.get_scalar env name with
          | Host_interp.Vint _ -> (name, Ast.Tint)
          | Host_interp.Vfloat _ -> (name, Ast.Tdouble)))
    (Loop_info.free_vars loop)

let compiled_for st env (loop : Loop_info.t) =
  match Hashtbl.find_opt st.compiled loop.Loop_info.loop_loc with
  | Some kc -> kc
  | None ->
      let classify_site = Coalesce.make loop in
      (* CPU hardware prefetchers stream constant-stride accesses as well
         as unit-stride ones; only data-dependent gathers miss. *)
      let classify _array idx =
        match classify_site idx with Coalesce.Strided _ -> Coalesce.Coalesced | m -> m
      in
      let kc = Kernel_compile.compile ~loop ~params:(param_types env loop) ~classify in
      Hashtbl.replace st.compiled loop.Loop_info.loop_loc kc;
      kc

let snapshot (c : Cost.t) = Cost.scale c 1

let delta ~(before : Cost.t) ~(after : Cost.t) =
  {
    Cost.flops = after.Cost.flops - before.Cost.flops;
    int_ops = after.Cost.int_ops - before.Cost.int_ops;
    coalesced_bytes = after.Cost.coalesced_bytes - before.Cost.coalesced_bytes;
    broadcast_bytes = after.Cost.broadcast_bytes - before.Cost.broadcast_bytes;
    random_accesses = after.Cost.random_accesses - before.Cost.random_accesses;
    random_bytes = after.Cost.random_bytes - before.Cost.random_bytes;
  }

let on_parallel_loop st env (loop : Loop_info.t) =
  Profiler.incr_loops st.profiler;
  let kc = compiled_for st env loop in
  let lo = Host_interp.eval_int env loop.Loop_info.lower in
  let hi = Host_interp.eval_int env loop.Loop_info.upper in
  let frame = kc.Kernel_compile.make_frame () in
  List.iter
    (fun (name, slot, ty) ->
      match ty with
      | Ast.Tarray _ -> Frame.set_view frame slot (Host_interp.find_array env name)
      | Ast.Tint -> (
          match Host_interp.get_scalar env name with
          | Host_interp.Vint n -> Frame.set_int frame slot n
          | Host_interp.Vfloat f -> Frame.set_int frame slot (int_of_float f))
      | Ast.Tdouble -> (
          match Host_interp.get_scalar env name with
          | Host_interp.Vfloat f -> Frame.set_float frame slot f
          | Host_interp.Vint n -> Frame.set_float frame slot (float_of_int n))
      | Ast.Tvoid -> assert false)
    kc.Kernel_compile.params;
  let before = snapshot kc.Kernel_compile.cost in
  for i = lo to hi - 1 do
    kc.Kernel_compile.run_iter frame i
  done;
  let after = snapshot kc.Kernel_compile.cost in
  (* Sequential in-order execution makes shared-scalar semantics exact:
     write every scalar parameter back (covers reduction variables). *)
  List.iter
    (fun (name, slot, ty) ->
      match ty with
      | Ast.Tint -> Host_interp.set_scalar env name (Host_interp.Vint (Frame.get_int frame slot))
      | Ast.Tdouble ->
          Host_interp.set_scalar env name (Host_interp.Vfloat (Frame.get_float frame slot))
      | Ast.Tarray _ | Ast.Tvoid -> ())
    kc.Kernel_compile.params;
  let cost = delta ~before ~after in
  let _, finish =
    Machine.host_compute st.machine ~ready:st.clock ~threads:st.threads
      ~label:(Printf.sprintf "omp-loop%d" loop.Loop_info.loop_id)
      cost
  in
  Profiler.add_kernel st.profiler ~seconds:(finish -. st.clock);
  st.clock <- finish

let run ?threads ~machine program =
  let threads = Option.value ~default:machine.Machine.default_omp_threads threads in
  let st =
    { machine; threads; profiler = Profiler.create (); compiled = Hashtbl.create 8; clock = 0.0 }
  in
  let hooks =
    {
      Host_interp.on_parallel_loop = (fun env loop -> on_parallel_loop st env loop);
      on_data_enter = (fun _ _ -> ());
      on_data_exit = (fun _ _ -> ());
      on_update_host = (fun _ _ -> ());
      on_update_device = (fun _ _ -> ());
    }
  in
  let env = Host_interp.run_program ~hooks program in
  ( env,
    Report.of_profiler st.profiler ~machine:machine.Machine.name
      ~variant:(Printf.sprintf "openmp(%d)" threads)
      ~num_gpus:0 )
