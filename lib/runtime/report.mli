(** Result of one simulated application run: the numbers the paper's
    evaluation plots. *)

type t = {
  machine : string;
  variant : string;  (** e.g. "openmp(12)", "cuda(1)", "proposal(2)" *)
  num_gpus : int;
  total_time : float;  (** parallel-region execution time, seconds *)
  kernel_time : float;
  cpu_gpu_time : float;
  gpu_gpu_time : float;
  overhead_time : float;
  cpu_gpu_bytes : int;
  gpu_gpu_bytes : int;
  wire_bytes : int;
      (** bytes that crossed the inter-node network (0 on one node);
          counted inside whichever byte counter the transfer landed in *)
  collective_rings : int;  (** broadcast groups lowered to ring schedules *)
  collective_hierarchies : int;  (** groups lowered to hierarchical staging *)
  collective_direct_groups : int;  (** eligible groups kept on direct schedules *)
  collective_segments : int;  (** total pipelining segments across planned groups *)
  loops : int;
  launches : int;
  rebalances : int;  (** adaptive-scheduler re-splits committed *)
  mean_imbalance : float;  (** mean per-launch (slowest-fastest)/slowest *)
  hidden_seconds : float;
      (** overlap engine: activity that ran off the critical path; the
          per-category times then sum to the makespan *)
  prefetch_hits : int;  (** launches' arrays already valid on device (reload skipped) *)
  fused_kernels : int;
      (** kernel launches saved by loop fusion ([--fuse on]); 0 with the
          pass off, so default reports are unchanged *)
  contracted_arrays : int;
      (** temporaries the fusion pass contracted to per-iteration scalars
          (they never allocate device storage or reconcile) *)
  relayouts : int;  (** one-time transposed-copy repacks materialized *)
  mem_user_bytes : int;  (** peak user data across used GPUs *)
  mem_system_bytes : int;  (** peak runtime-system data across used GPUs *)
  coh_shipped_bytes : int;  (** replicated/reduction bytes shipped at reconciles *)
  coh_deferred_bytes : int;  (** bytes left stale instead of shipped (lazy coherence) *)
  coh_pulled_bytes : int;  (** deferred bytes later pulled on demand *)
  coh_arrays : (string * int * int * int) list;
      (** per-array (name, shipped, deferred, pulled), sorted by name *)
  queue_seconds : float;
      (** fleet mode: simulated time the job waited in the admission
          queue before execution started (0 for direct runs) *)
  spills : int;  (** fleet mode: warm-pool evictions of this job's data *)
  spilled_bytes : int;  (** dirty bytes those evictions wrote back *)
  blame : Mgacc_obs.Blame.summary option;
      (** critical-path blame attribution ([--blame]); [None] by default
          so existing report output is byte-identical *)
}

val of_profiler : Profiler.t -> machine:string -> variant:string -> num_gpus:int -> t

val host_only : machine:string -> variant:string -> seconds:float -> t
(** A CPU-baseline report: all time in [total_time]/[kernel_time]. *)

val with_queue : t -> seconds:float -> t
(** The same report with [queue_seconds] set (clamped at 0). *)

val with_blame : t -> Mgacc_obs.Blame.summary -> t
(** The same report carrying a critical-path blame summary; [to_json]
    gains a ["blame"] sub-object and {!pp_blame} renders the table. *)

val pp_blame : Format.formatter -> t -> unit
(** Render the blame tables when present; prints nothing otherwise
    (kept separate from {!pp} so the one-line report stays stable). *)

val speedup_vs : t -> baseline:t -> float
(** [baseline.total /. t.total]. *)

val coh_elided_bytes : t -> int
(** Deferred bytes never pulled: transfers lazy coherence avoided outright. *)

val to_json : t -> string
(** One-line JSON object with every field, including a ["coherence"]
    sub-object with totals, elided bytes and the per-array breakdown. *)

val pp : Format.formatter -> t -> unit
