(** Result of one simulated application run: the numbers the paper's
    evaluation plots. *)

type t = {
  machine : string;
  variant : string;  (** e.g. "openmp(12)", "cuda(1)", "proposal(2)" *)
  num_gpus : int;
  total_time : float;  (** parallel-region execution time, seconds *)
  kernel_time : float;
  cpu_gpu_time : float;
  gpu_gpu_time : float;
  overhead_time : float;
  cpu_gpu_bytes : int;
  gpu_gpu_bytes : int;
  loops : int;
  launches : int;
  rebalances : int;  (** adaptive-scheduler re-splits committed *)
  mean_imbalance : float;  (** mean per-launch (slowest-fastest)/slowest *)
  hidden_seconds : float;
      (** overlap engine: activity that ran off the critical path; the
          per-category times then sum to the makespan *)
  prefetch_hits : int;  (** launches' arrays already valid on device (reload skipped) *)
  mem_user_bytes : int;  (** peak user data across used GPUs *)
  mem_system_bytes : int;  (** peak runtime-system data across used GPUs *)
}

val of_profiler : Profiler.t -> machine:string -> variant:string -> num_gpus:int -> t

val host_only : machine:string -> variant:string -> seconds:float -> t
(** A CPU-baseline report: all time in [total_time]/[kernel_time]. *)

val speedup_vs : t -> baseline:t -> float
(** [baseline.total /. t.total]. *)

val pp : Format.formatter -> t -> unit
