module Memory = Mgacc_gpusim.Memory

type value = Vf of float | Vi of int

type t = {
  mem : Memory.t;
  name : string;
  record_bytes : int;  (* 4-byte index + element payload *)
  mutable entries_rev : (int * value) list;
  mutable count : int;
  mutable buf : Memory.buf option;  (* current accounted allocation *)
  mutable peak : int;
}

(* Device-side buffering is accounted in pages so the simulated allocator
   is not hit on every record. *)
let page_bytes = 64 * 1024

let create mem ~name ~elem_bytes =
  { mem; name; record_bytes = 4 + elem_bytes; entries_rev = []; count = 0; buf = None; peak = 0 }

let accounted t = match t.buf with Some b -> b.Memory.size_bytes | None -> 0

let ensure_capacity t =
  let needed = t.count * t.record_bytes in
  if needed > accounted t then begin
    (match t.buf with Some b -> Memory.free t.mem b | None -> ());
    let pages = (needed + page_bytes - 1) / page_bytes in
    t.buf <- Some (Memory.alloc_raw t.mem `System (pages * page_bytes))
  end

let record t idx v =
  t.entries_rev <- (idx, v) :: t.entries_rev;
  t.count <- t.count + 1;
  ensure_capacity t;
  t.peak <- max t.peak (t.count * t.record_bytes)

let count t = t.count
let is_empty t = t.count = 0
let entries t = List.rev t.entries_rev
let payload_bytes t = t.count * t.record_bytes

let drain t =
  t.entries_rev <- [];
  t.count <- 0;
  match t.buf with
  | Some b ->
      Memory.free t.mem b;
      t.buf <- None
  | None -> ()

let peak_bytes t = t.peak

let release t = drain t
