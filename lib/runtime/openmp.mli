(** The OpenMP baseline: the same annotated program executed on the host
    CPU model.

    Parallel loops run functionally (in iteration order, which matches the
    sequential-equivalence OpenMP guarantees for race-free loops) against
    the host arrays while dynamic cost is counted; the CPU roofline model
    converts each loop's cost into an OpenMP wall-clock estimate at the
    requested thread count. Everything outside parallel loops executes
    without charge, mirroring the paper's measurement of time spent in
    parallel regions only. Data and update directives are no-ops on a
    shared-memory machine. *)

val run :
  ?threads:int ->
  machine:Mgacc_gpusim.Machine.t ->
  Mgacc_minic.Ast.program ->
  Mgacc_exec.Host_interp.env * Report.t
(** [threads] defaults to the machine's OpenMP default (12 on the desktop,
    24 on the supercomputer node). *)
