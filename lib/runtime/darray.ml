open Mgacc_minic
module Interval = Mgacc_util.Interval
module Memory = Mgacc_gpusim.Memory
module Fabric = Mgacc_gpusim.Fabric
module Machine = Mgacc_gpusim.Machine
module Device = Mgacc_gpusim.Device
module View = Mgacc_exec.View

let log_src = Logs.Src.create "mgacc.darray" ~doc:"device-array placement"

module Log = (val Logs.src_log log_src : Logs.LOG)

type xfer = { dir : Fabric.direction; bytes : int; tag : string }

type tile = {
  trows : Interval.t;
  tcols : Interval.t;
  trow_win : Interval.t;
  tcol_win : Interval.t;
}

type part = {
  window : Interval.t;
  own : Interval.t;
  tile : tile option;
  buf : Memory.buf;
  miss : Miss_buffer.t;
}

type tile_spec = {
  pr : int;
  pc : int;
  row_left : int;
  row_right : int;
  col_left : int;
  col_right : int;
}

type dist_spec = { stride : int; left : int; right : int; tile : tile_spec option }

type dist = { parts : part array; spec : dist_spec; ranges : Task_map.range array }

type replica = {
  bufs : Memory.buf array;
  mutable dirty : Dirty.t option array;
  valid : Interval.Set.t array;
}

type state = Unallocated | Replicated of replica | Distributed of dist

type t = {
  name : string;
  elem : Ast.elem_ty;
  length : int;
  host : View.t;
  mutable state : state;
  mutable device_fresh : bool;
  mutable region_depth : int;
  mutable needs_copyout : bool;
  mutable written_since_halo_sync : bool;
}

let create (_cfg : Rt_config.t) ~name ~(host : View.t) =
  {
    name;
    elem = host.View.elem;
    length = host.View.length;
    host;
    state = Unallocated;
    device_fresh = false;
    region_depth = 0;
    needs_copyout = false;
    written_since_halo_sync = false;
  }

let elem_bytes t = Ast.elem_ty_size t.elem

let state_name t =
  match t.state with
  | Unallocated -> "unallocated"
  | Replicated _ -> "replicated"
  | Distributed _ -> "distributed"

let mem_of cfg g = (Machine.device cfg.Rt_config.machine g).Device.memory

(* ---------------- functional copies host <-> device ---------------- *)

let copy_host_to_buf t buf ~win_lo (iv : Interval.t) =
  if not (Interval.is_empty iv) then
    match t.elem with
    | Ast.Edouble ->
        let d = Memory.float_data buf in
        for i = iv.Interval.lo to iv.Interval.hi - 1 do
          d.(i - win_lo) <- t.host.View.get_f i
        done
    | Ast.Eint ->
        let d = Memory.int_data buf in
        for i = iv.Interval.lo to iv.Interval.hi - 1 do
          d.(i - win_lo) <- t.host.View.get_i i
        done

let copy_buf_to_host t buf ~win_lo (iv : Interval.t) =
  if not (Interval.is_empty iv) then
    match t.elem with
    | Ast.Edouble ->
        let d = Memory.float_data buf in
        for i = iv.Interval.lo to iv.Interval.hi - 1 do
          t.host.View.set_f i d.(i - win_lo)
        done
    | Ast.Eint ->
        let d = Memory.int_data buf in
        for i = iv.Interval.lo to iv.Interval.hi - 1 do
          t.host.View.set_i i d.(i - win_lo)
        done

(* Box copies between the host view and a tiled part's packed buffer.
   [rows]/[cols] are absolute row/column intervals inside the tile's
   resident window. *)
let copy_host_to_tile t buf ~stride tl ~(rows : Interval.t) ~(cols : Interval.t) =
  if not (Interval.is_empty rows || Interval.is_empty cols) then
    let w = Interval.length tl.tcol_win in
    match t.elem with
    | Ast.Edouble ->
        let d = Memory.float_data buf in
        for r = rows.Interval.lo to rows.Interval.hi - 1 do
          let base = ((r - tl.trow_win.Interval.lo) * w) - tl.tcol_win.Interval.lo in
          for c = cols.Interval.lo to cols.Interval.hi - 1 do
            d.(base + c) <- t.host.View.get_f ((r * stride) + c)
          done
        done
    | Ast.Eint ->
        let d = Memory.int_data buf in
        for r = rows.Interval.lo to rows.Interval.hi - 1 do
          let base = ((r - tl.trow_win.Interval.lo) * w) - tl.tcol_win.Interval.lo in
          for c = cols.Interval.lo to cols.Interval.hi - 1 do
            d.(base + c) <- t.host.View.get_i ((r * stride) + c)
          done
        done

let copy_tile_to_host t buf ~stride tl ~(rows : Interval.t) ~(cols : Interval.t) =
  if not (Interval.is_empty rows || Interval.is_empty cols) then
    let w = Interval.length tl.tcol_win in
    match t.elem with
    | Ast.Edouble ->
        let d = Memory.float_data buf in
        for r = rows.Interval.lo to rows.Interval.hi - 1 do
          let base = ((r - tl.trow_win.Interval.lo) * w) - tl.tcol_win.Interval.lo in
          for c = cols.Interval.lo to cols.Interval.hi - 1 do
            t.host.View.set_f ((r * stride) + c) d.(base + c)
          done
        done
    | Ast.Eint ->
        let d = Memory.int_data buf in
        for r = rows.Interval.lo to rows.Interval.hi - 1 do
          let base = ((r - tl.trow_win.Interval.lo) * w) - tl.tcol_win.Interval.lo in
          for c = cols.Interval.lo to cols.Interval.hi - 1 do
            t.host.View.set_i ((r * stride) + c) d.(base + c)
          done
        done

let alloc_buf cfg g t n =
  match t.elem with
  | Ast.Edouble -> Memory.alloc_float (mem_of cfg g) `User n
  | Ast.Eint -> Memory.alloc_int (mem_of cfg g) `User n

(* ---------------- state teardown ---------------- *)

let free_state cfg t =
  (match t.state with
  | Unallocated -> ()
  | Replicated r ->
      Array.iteri
        (fun g buf ->
          Memory.free (mem_of cfg g) buf;
          match r.dirty.(g) with Some d -> Dirty.free (mem_of cfg g) d | None -> ())
        r.bufs
  | Distributed d ->
      Array.iteri
        (fun g p ->
          Memory.free (mem_of cfg g) p.buf;
          Miss_buffer.release p.miss)
        d.parts);
  t.state <- Unallocated

(* ---------------- validity (lazy coherence) ---------------- *)

let full_set t = Interval.Set.of_interval (Interval.make 0 t.length)

(* Functional copy between two replica buffers over [seg] (absolute
   element indices; replica buffers span the whole array). *)
let copy_replica_seg t r ~src ~dst (seg : Interval.t) =
  if not (Interval.is_empty seg) then
    match t.elem with
    | Ast.Edouble ->
        let s = Memory.float_data r.bufs.(src) and d = Memory.float_data r.bufs.(dst) in
        for i = seg.Interval.lo to seg.Interval.hi - 1 do
          d.(i) <- s.(i)
        done
    | Ast.Eint ->
        let s = Memory.int_data r.bufs.(src) and d = Memory.int_data r.bufs.(dst) in
        for i = seg.Interval.lo to seg.Interval.hi - 1 do
          d.(i) <- s.(i)
        done

let pull_valid (cfg : Rt_config.t) t ~gpu ~(want : Interval.Set.t) =
  match t.state with
  | Replicated r ->
      let missing = Interval.Set.diff want r.valid.(gpu) in
      if Interval.Set.is_empty missing then []
      else begin
        Log.debug (fun m ->
            m "%s: GPU %d pulls stale %a on demand" t.name gpu Interval.Set.pp missing);
        let xfers = ref [] in
        let remaining = ref missing in
        let n = Array.length r.bufs in
        (* With collective planning on, prefer peers on the puller's own
           node — any valid copy is equivalent, and a same-node source
           keeps the pull off the inter-node wire. The direct mode keeps
           the original lowest-id-first order bit for bit. *)
        let order =
          if not (Rt_config.planned_collectives cfg) then List.init n (fun i -> i)
          else
            let fabric = cfg.Rt_config.machine.Mgacc_gpusim.Machine.fabric in
            List.sort
              (fun a b ->
                let far g = if Fabric.same_node fabric gpu g then 0 else 1 in
                compare (far a, a) (far b, b))
              (List.init n (fun i -> i))
        in
        List.iter (fun src ->
          if src <> gpu && not (Interval.Set.is_empty !remaining) then begin
            let grab = Interval.Set.inter r.valid.(src) !remaining in
            List.iter
              (fun seg ->
                copy_replica_seg t r ~src ~dst:gpu seg;
                xfers :=
                  {
                    dir = Fabric.P2p (src, gpu);
                    bytes = Interval.length seg * elem_bytes t;
                    tag = t.name ^ ":pull";
                  }
                  :: !xfers)
              (Interval.Set.to_list grab);
            remaining := Interval.Set.diff !remaining grab
          end)
          order;
        (* The validity invariant (every element valid somewhere)
           guarantees all stale intervals found a source. *)
        if not (Interval.Set.is_empty !remaining) then
          invalid_arg
            (Printf.sprintf "Darray.pull_valid: %s: no valid source for a stale range" t.name);
        r.valid.(gpu) <- Interval.Set.union r.valid.(gpu) want;
        List.rev !xfers
      end
  | Unallocated | Distributed _ -> []

(* ---------------- flush / load ---------------- *)

let flush_to_host (cfg : Rt_config.t) t =
  if not t.device_fresh then []
  else begin
    let xfers =
      match t.state with
      | Unallocated -> assert false
      | Replicated r ->
          (* Under eager coherence replicas are consistent between
             kernels, so any copy serves. Under lazy coherence replica 0
             may hold stale intervals: pull them from valid peers first
             (this is the on-demand path behind copyout, [update host]
             and placement transitions). *)
          let pulls =
            if Rt_config.lazy_coherence cfg then pull_valid cfg t ~gpu:0 ~want:(full_set t)
            else []
          in
          let full = Interval.make 0 t.length in
          copy_buf_to_host t r.bufs.(0) ~win_lo:0 full;
          pulls
          @ [ { dir = Fabric.D2h 0; bytes = t.length * elem_bytes t; tag = t.name ^ ":flush" } ]
      | Distributed d ->
          Array.to_list
            (Array.mapi
               (fun g (p : part) ->
                 let bytes =
                   match p.tile with
                   | None ->
                       copy_buf_to_host t p.buf ~win_lo:p.window.Interval.lo p.own;
                       Interval.length p.own * elem_bytes t
                   | Some tl ->
                       copy_tile_to_host t p.buf ~stride:d.spec.stride tl ~rows:tl.trows
                         ~cols:tl.tcols;
                       Interval.length tl.trows * Interval.length tl.tcols * elem_bytes t
                 in
                 { dir = Fabric.D2h g; bytes; tag = t.name ^ ":flush" })
               d.parts)
          |> List.filter (fun x -> x.bytes > 0)
    in
    t.device_fresh <- false;
    xfers
  end

let load_from_host _cfg t =
  match t.state with
  | Unallocated -> []
  | Replicated r ->
      let full = Interval.make 0 t.length in
      Array.iter (fun buf -> copy_host_to_buf t buf ~win_lo:0 full) r.bufs;
      Array.iter (function Some d -> Dirty.clear d | None -> ()) r.dirty;
      Array.iteri (fun g _ -> r.valid.(g) <- full_set t) r.bufs;
      t.device_fresh <- false;
      Array.to_list
        (Array.mapi
           (fun g _ ->
             { dir = Fabric.H2d g; bytes = t.length * elem_bytes t; tag = t.name ^ ":load" })
           r.bufs)
  | Distributed d ->
      t.device_fresh <- false;
      Array.to_list
        (Array.mapi
           (fun g (p : part) ->
             let bytes =
               match p.tile with
               | None ->
                   copy_host_to_buf t p.buf ~win_lo:p.window.Interval.lo p.window;
                   Interval.length p.window * elem_bytes t
               | Some tl ->
                   copy_host_to_tile t p.buf ~stride:d.spec.stride tl ~rows:tl.trow_win
                     ~cols:tl.tcol_win;
                   Interval.length tl.trow_win * Interval.length tl.tcol_win * elem_bytes t
             in
             { dir = Fabric.H2d g; bytes; tag = t.name ^ ":load" })
           d.parts)
      |> List.filter (fun x -> x.bytes > 0)

(* ---------------- placement ---------------- *)

let ensure_replicated cfg t ~dirty_tracking =
  let num_gpus = cfg.Rt_config.num_gpus in
  let add_dirty r =
    if dirty_tracking then
      Array.iteri
        (fun g d ->
          if d = None then
            r.dirty.(g) <-
              Some
                (Dirty.create (mem_of cfg g) ~elem_bytes:(elem_bytes t) ~length:t.length
                   ~chunk_bytes:cfg.Rt_config.chunk_bytes ~two_level:cfg.Rt_config.two_level_dirty))
        r.dirty
  in
  match t.state with
  | Replicated r ->
      add_dirty r;
      []
  | Unallocated | Distributed _ ->
      Log.debug (fun m -> m "%s: %s -> replicated on %d GPU(s)" t.name (state_name t) num_gpus);
      let flush = flush_to_host cfg t in
      free_state cfg t;
      let bufs = Array.init num_gpus (fun g -> alloc_buf cfg g t t.length) in
      let r = { bufs; dirty = Array.make num_gpus None; valid = Array.make num_gpus (full_set t) } in
      add_dirty r;
      t.state <- Replicated r;
      t.written_since_halo_sync <- false;
      flush @ load_from_host cfg t

let window_of_range spec range ~length ~g ~num_gpus =
  let own_lo = if g = 0 then 0 else spec.stride * range.Task_map.start_ in
  let own_hi = if g = num_gpus - 1 then length else spec.stride * range.Task_map.stop_ in
  let own = Interval.clamp (Interval.make own_lo own_hi) ~lo:0 ~hi:length in
  let read =
    Task_map.window range ~stride:spec.stride ~left:spec.left ~right:spec.right ~max_len:length
  in
  let window = Interval.hull read own in
  (window, own)

(* 2-D tile of one GPU in a [pr x pc] grid: rows come from the (shared,
   duplicated-per-column-block) iteration range, columns from the
   deterministic split of [0, stride). Boundary blocks extend to the array
   edges exactly like the 1-D split, so the owned boxes tile the whole
   index space. Row halos translate element halos to whole rows. *)
let tile_of_range spec ts range ~length ~g =
  let stride = spec.stride in
  let rows_total = length / stride in
  let pr_i = g / ts.pc and pc_i = g mod ts.pc in
  let row_lo = if pr_i = 0 then 0 else range.Task_map.start_ in
  let row_hi = if pr_i = ts.pr - 1 then rows_total else range.Task_map.stop_ in
  let trows = Interval.clamp (Interval.make row_lo (max row_lo row_hi)) ~lo:0 ~hi:rows_total in
  let hl = ts.row_left and hr = ts.row_right in
  let trow_win =
    if Interval.is_empty trows then trows
    else
      Interval.clamp
        (Interval.make (trows.Interval.lo - hl) (trows.Interval.hi + hr))
        ~lo:0 ~hi:rows_total
  in
  let cs = (Task_map.split ~lower:0 ~upper:stride ~parts:ts.pc).(pc_i) in
  let tcols = Interval.make cs.Task_map.start_ cs.Task_map.stop_ in
  let tcol_win =
    if Interval.is_empty tcols then tcols
    else
      Interval.clamp
        (Interval.make (tcols.Interval.lo - ts.col_left) (tcols.Interval.hi + ts.col_right))
        ~lo:0 ~hi:stride
  in
  { trows; tcols; trow_win; tcol_win }

(* Shape of GPU [g]'s part: 1-D (window, own) intervals plus, when the
   spec carries a tile grid, the 2-D box. For tiled parts the interval
   fields hold the row hulls (used only for logging / quick rejection;
   every precise consumer branches on [tile]). *)
let part_shape spec range ~length ~g ~num_gpus =
  match spec.tile with
  | None ->
      let window, own = window_of_range spec range ~length ~g ~num_gpus in
      (window, own, None)
  | Some ts ->
      let tl = tile_of_range spec ts range ~length ~g in
      let window =
        Interval.make (tl.trow_win.Interval.lo * spec.stride) (tl.trow_win.Interval.hi * spec.stride)
      in
      let own =
        Interval.make (tl.trows.Interval.lo * spec.stride) (tl.trows.Interval.hi * spec.stride)
      in
      (window, own, Some tl)

let part_size window = function
  | None -> Interval.length window
  | Some tl -> Interval.length tl.trow_win * Interval.length tl.tcol_win

let offset_in_part spec (p : part) idx =
  match p.tile with
  | None -> idx - p.window.Interval.lo
  | Some tl ->
      let r = idx / spec.stride and c = idx mod spec.stride in
      ((r - tl.trow_win.Interval.lo) * Interval.length tl.tcol_win)
      + (c - tl.tcol_win.Interval.lo)

let part_contains spec (p : part) idx =
  match p.tile with
  | None -> Interval.contains p.window idx
  | Some tl ->
      let r = idx / spec.stride and c = idx mod spec.stride in
      Interval.contains tl.trow_win r && Interval.contains tl.tcol_win c

let part_owns spec (p : part) idx =
  match p.tile with
  | None -> Interval.contains p.own idx
  | Some tl ->
      let r = idx / spec.stride and c = idx mod spec.stride in
      Interval.contains tl.trows r && Interval.contains tl.tcols c

(* The existing distribution serves the request when the split is the
   same, ownership is identical, and every resident window covers the
   requested one. Wider resident halos are fine: the communication manager
   refreshes them after writes, so alternating stencil loops with
   different halo widths keep reusing one allocation instead of
   reshaping through the host. *)
let covers t d spec ranges ~num_gpus =
  Array.length d.ranges = Array.length ranges
  && d.spec.stride = spec.stride
  && (match (d.spec.tile, spec.tile) with
     | None, None -> true
     | Some a, Some b -> a.pr = b.pr && a.pc = b.pc
     | _ -> false)
  && Array.for_all2 (fun a b -> a = b) d.ranges ranges
  &&
  let ok = ref true in
  Array.iteri
    (fun g (p : part) ->
      let window, own, tile = part_shape spec ranges.(g) ~length:t.length ~g ~num_gpus in
      match (p.tile, tile) with
      | None, None ->
          if
            not
              (Interval.equal own p.own
              && Interval.equal (Interval.hull window p.window) p.window)
          then ok := false
      | Some pt, Some nt ->
          (* Same ownership, resident windows at least as wide: wider
             resident halos keep being refreshed, like the 1-D case. *)
          if
            not
              (Interval.equal nt.trows pt.trows
              && Interval.equal nt.tcols pt.tcols
              && Interval.equal (Interval.hull nt.trow_win pt.trow_win) pt.trow_win
              && Interval.equal (Interval.hull nt.tcol_win pt.tcol_win) pt.tcol_win)
          then ok := false
      | _ -> ok := false)
    d.parts;
  !ok

let owner_of d idx =
  let n = Array.length d.parts in
  let rec go g =
    if g >= n then
      invalid_arg (Printf.sprintf "Darray.owner_of: index %d owned by no GPU" idx)
    else if part_owns d.spec d.parts.(g) idx then g
    else go (g + 1)
  in
  go 0

(* Functional copy between two parts' buffers over [seg] (absolute
   element indices; both windows must contain it). *)
let copy_part_to_part t ~src ~dst (seg : Interval.t) =
  let slo = src.window.Interval.lo and dlo = dst.window.Interval.lo in
  match t.elem with
  | Ast.Edouble ->
      let s = Memory.float_data src.buf and d = Memory.float_data dst.buf in
      for i = seg.Interval.lo to seg.Interval.hi - 1 do
        d.(i - dlo) <- s.(i - slo)
      done
  | Ast.Eint ->
      let s = Memory.int_data src.buf and d = Memory.int_data dst.buf in
      for i = seg.Interval.lo to seg.Interval.hi - 1 do
        d.(i - dlo) <- s.(i - slo)
      done

(* Tile-aware variant: copies one absolute-index segment between two parts
   through [offset_in_part], so either side may be tiled (a tiled segment
   must stay within one row). The 1-D [copy_part_to_part] above is kept
   verbatim for the untiled halo/repartition paths. *)
let copy_seg_part_to_part t spec ~src ~dst (seg : Interval.t) =
  match t.elem with
  | Ast.Edouble ->
      let s = Memory.float_data src.buf and d = Memory.float_data dst.buf in
      for i = seg.Interval.lo to seg.Interval.hi - 1 do
        d.(offset_in_part spec dst i) <- s.(offset_in_part spec src i)
      done
  | Ast.Eint ->
      let s = Memory.int_data src.buf and d = Memory.int_data dst.buf in
      for i = seg.Interval.lo to seg.Interval.hi - 1 do
        d.(offset_in_part spec dst i) <- s.(offset_in_part spec src i)
      done

(* Re-split a live distribution without bouncing through the host: each
   new window fills from the old owners' authoritative blocks, and only
   the cross-GPU segments ride the fabric (as peer transfers — exactly
   the movement the rebalance planner priced). The old parts' [own]
   blocks tile [0, length), so every element has one source of truth. *)
let repartition cfg t (d : dist) ~spec ~ranges ~num_gpus =
  Log.debug (fun m ->
      m "%s: repartitioning %d parts GPU-to-GPU (scheduler re-split)" t.name (Array.length ranges));
  let new_parts =
    Array.init num_gpus (fun g ->
        let window, own = window_of_range spec ranges.(g) ~length:t.length ~g ~num_gpus in
        {
          window;
          own;
          tile = None;
          buf = alloc_buf cfg g t (Interval.length window);
          miss = Miss_buffer.create (mem_of cfg g) ~name:t.name ~elem_bytes:(elem_bytes t);
        })
  in
  let xfers = ref [] in
  Array.iteri
    (fun dst p ->
      let iv = p.window in
      let cursor = ref iv.Interval.lo in
      while !cursor < iv.Interval.hi do
        let owner = owner_of d !cursor in
        let oown = d.parts.(owner).own in
        let seg_hi = min iv.Interval.hi oown.Interval.hi in
        let seg = Interval.make !cursor seg_hi in
        if not (Interval.is_empty seg) then begin
          copy_part_to_part t ~src:d.parts.(owner) ~dst:p seg;
          if owner <> dst then
            xfers :=
              {
                dir = Fabric.P2p (owner, dst);
                bytes = Interval.length seg * elem_bytes t;
                tag = t.name ^ ":repart";
              }
              :: !xfers
        end;
        cursor := max seg_hi (!cursor + 1)
      done)
    new_parts;
  Array.iteri
    (fun g p ->
      Memory.free (mem_of cfg g) p.buf;
      Miss_buffer.release p.miss)
    d.parts;
  t.state <- Distributed { parts = new_parts; spec; ranges = Array.copy ranges };
  t.written_since_halo_sync <- false;
  List.rev !xfers

let ensure_distributed cfg t ~spec ~ranges =
  let num_gpus = cfg.Rt_config.num_gpus in
  if Array.length ranges <> num_gpus then invalid_arg "Darray.ensure_distributed: ranges size";
  match t.state with
  | Distributed d when covers t d spec ranges ~num_gpus -> []
  | Distributed d
    when cfg.Rt_config.schedule <> Mgacc_sched.Policy.Equal
         && t.device_fresh
         && Array.length d.ranges = Array.length ranges
         && d.spec = spec
         && spec.tile = None ->
      repartition cfg t d ~spec ~ranges ~num_gpus
  | _ ->
      Log.debug (fun m ->
          m "%s: %s -> distributed (stride %d, halo %d/%d%s)" t.name (state_name t) spec.stride
            spec.left spec.right
            (match spec.tile with
            | None -> ""
            | Some ts -> Printf.sprintf ", tile %dx%d" ts.pr ts.pc));
      let flush = flush_to_host cfg t in
      free_state cfg t;
      let parts =
        Array.init num_gpus (fun g ->
            let window, own, tile = part_shape spec ranges.(g) ~length:t.length ~g ~num_gpus in
            {
              window;
              own;
              tile;
              buf = alloc_buf cfg g t (part_size window tile);
              miss = Miss_buffer.create (mem_of cfg g) ~name:t.name ~elem_bytes:(elem_bytes t);
            })
      in
      t.state <- Distributed { parts; spec; ranges = Array.copy ranges };
      t.written_since_halo_sync <- false;
      flush @ load_from_host cfg t

let release cfg t =
  let xfers = if t.needs_copyout then flush_to_host cfg t else [] in
  free_state cfg t;
  t.device_fresh <- false;
  xfers

(* Eviction under fleet memory pressure: write dirty data back to the
   host view and free the device storage. A clean array evicts for free
   (writeback-cache semantics — only the D2h of dirty data costs wire
   time); the array stays usable, a later [ensure_*] reloads it. The
   flush descriptors are retagged ":spill" so eviction traffic is
   distinguishable from program copyout in traces. *)
let spill_to_host cfg t =
  let retag (x : xfer) =
    match String.index_opt x.tag ':' with
    | Some i when String.sub x.tag i (String.length x.tag - i) = ":flush" ->
        { x with tag = String.sub x.tag 0 i ^ ":spill" }
    | _ -> x
  in
  let xfers = List.map retag (flush_to_host cfg t) in
  free_state cfg t;
  xfers

let mark_device_written t =
  t.device_fresh <- true;
  t.written_since_halo_sync <- true

let mark_halo_synced t = t.written_since_halo_sync <- false

let buf_for t ~gpu =
  match t.state with
  | Unallocated -> invalid_arg (Printf.sprintf "Darray.buf_for: %s unallocated" t.name)
  | Replicated r -> r.bufs.(gpu)
  | Distributed d -> d.parts.(gpu).buf

let part_for t ~gpu =
  match t.state with
  | Distributed d -> d.parts.(gpu)
  | Unallocated | Replicated _ ->
      invalid_arg (Printf.sprintf "Darray.part_for: %s not distributed" t.name)

let replica_of t =
  match t.state with
  | Replicated r -> r
  | Unallocated | Distributed _ ->
      invalid_arg (Printf.sprintf "Darray.replica_of: %s not replicated" t.name)

