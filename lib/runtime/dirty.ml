module Memory = Mgacc_gpusim.Memory
module Bitset = Mgacc_util.Bitset

type t = {
  elem_bytes : int;
  length : int;
  chunk_elems : int;
  two_level : bool;
  first : Bitset.t;
  second : Bitset.t;  (* one bit per chunk *)
  first_buf : Memory.buf;
  second_buf : Memory.buf;
  mutable dirty_elems : int;
  mutable dirty_bytes : int;
      (* two-level transfer payload of the currently dirty chunks,
         maintained incrementally by [mark] so [transfer_bytes] is O(1) *)
}

(* Payload one dirty chunk contributes to a transfer: its (clamped)
   elements plus its slice of first-level bits. *)
let chunk_payload_bytes t chunk =
  let lo = chunk * t.chunk_elems in
  let hi = min t.length (lo + t.chunk_elems) in
  let elems = hi - lo in
  (elems * t.elem_bytes) + ((elems + 7) / 8)

let create mem ~elem_bytes ~length ~chunk_bytes ~two_level =
  if elem_bytes <= 0 || length < 0 || chunk_bytes < elem_bytes then
    invalid_arg "Dirty.create: bad geometry";
  let chunk_elems = max 1 (chunk_bytes / elem_bytes) in
  let nchunks = (length + chunk_elems - 1) / chunk_elems in
  let first_bytes = (length + 7) / 8 in
  let second_bytes = (nchunks + 7) / 8 in
  {
    elem_bytes;
    length;
    chunk_elems;
    two_level;
    first = Bitset.create length;
    second = Bitset.create (max nchunks 1);
    first_buf = Memory.alloc_raw mem `System first_bytes;
    second_buf = Memory.alloc_raw mem `System (if two_level then second_bytes else 0);
    dirty_elems = 0;
    dirty_bytes = 0;
  }

let mark t i =
  if not (Bitset.get t.first i) then begin
    Bitset.set t.first i;
    t.dirty_elems <- t.dirty_elems + 1;
    let chunk = i / t.chunk_elems in
    if not (Bitset.get t.second chunk) then begin
      Bitset.set t.second chunk;
      t.dirty_bytes <- t.dirty_bytes + chunk_payload_bytes t chunk
    end
  end

let any_dirty t = t.dirty_elems > 0
let dirty_element_count t = t.dirty_elems
let dirty_chunk_count t = Bitset.count t.second
let total_chunks t = (t.length + t.chunk_elems - 1) / t.chunk_elems
let dirty_runs t = Bitset.runs t.first

let transfer_bytes t =
  if t.dirty_elems = 0 then 0
  else if t.two_level then t.dirty_bytes
  else (t.length * t.elem_bytes) + ((t.length + 7) / 8)

let clear t =
  Bitset.clear_all t.first;
  Bitset.clear_all t.second;
  t.dirty_elems <- 0;
  t.dirty_bytes <- 0

let footprint_bytes t = t.first_buf.Memory.size_bytes + t.second_buf.Memory.size_bytes

let free mem t =
  Memory.free mem t.first_buf;
  Memory.free mem t.second_buf
